DEVICE molecular_gradients

LAYER FLOW
    PORT inA r=100 ;
    PORT inB r=100 ;
    GRADIENT g_l2_0 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l2_1 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l3_0 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l3_1 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l3_2 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l4_0 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l4_1 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l4_2 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l4_3 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l5_0 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l5_1 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l5_2 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l5_3 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l5_4 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l6_0 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l6_1 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l6_2 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l6_3 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l6_4 w=2000 h=1000 in=2 out=2 ;
    GRADIENT g_l6_5 w=2000 h=1000 in=2 out=2 ;
    PORT out1 r=100 ;
    PORT out2 r=100 ;
    PORT out3 r=100 ;
    PORT out4 r=100 ;
    PORT out5 r=100 ;
    PORT out6 r=100 ;
    CHANNEL f_inA from inA 1 to g_l2_0 1 w=100 ;
    CHANNEL f_inB from inB 1 to g_l2_1 2 w=100 ;
    CHANNEL f_g_l2_0_l from g_l2_0 3 to g_l3_0 2 w=100 ;
    CHANNEL f_g_l2_0_r from g_l2_0 4 to g_l3_1 1 w=100 ;
    CHANNEL f_g_l2_1_l from g_l2_1 3 to g_l3_1 2 w=100 ;
    CHANNEL f_g_l2_1_r from g_l2_1 4 to g_l3_2 1 w=100 ;
    CHANNEL f_g_l3_0_l from g_l3_0 3 to g_l4_0 2 w=100 ;
    CHANNEL f_g_l3_0_r from g_l3_0 4 to g_l4_1 1 w=100 ;
    CHANNEL f_g_l3_1_l from g_l3_1 3 to g_l4_1 2 w=100 ;
    CHANNEL f_g_l3_1_r from g_l3_1 4 to g_l4_2 1 w=100 ;
    CHANNEL f_g_l3_2_l from g_l3_2 3 to g_l4_2 2 w=100 ;
    CHANNEL f_g_l3_2_r from g_l3_2 4 to g_l4_3 1 w=100 ;
    CHANNEL f_g_l4_0_l from g_l4_0 3 to g_l5_0 2 w=100 ;
    CHANNEL f_g_l4_0_r from g_l4_0 4 to g_l5_1 1 w=100 ;
    CHANNEL f_g_l4_1_l from g_l4_1 3 to g_l5_1 2 w=100 ;
    CHANNEL f_g_l4_1_r from g_l4_1 4 to g_l5_2 1 w=100 ;
    CHANNEL f_g_l4_2_l from g_l4_2 3 to g_l5_2 2 w=100 ;
    CHANNEL f_g_l4_2_r from g_l4_2 4 to g_l5_3 1 w=100 ;
    CHANNEL f_g_l4_3_l from g_l4_3 3 to g_l5_3 2 w=100 ;
    CHANNEL f_g_l4_3_r from g_l4_3 4 to g_l5_4 1 w=100 ;
    CHANNEL f_g_l5_0_l from g_l5_0 3 to g_l6_0 2 w=100 ;
    CHANNEL f_g_l5_0_r from g_l5_0 4 to g_l6_1 1 w=100 ;
    CHANNEL f_g_l5_1_l from g_l5_1 3 to g_l6_1 2 w=100 ;
    CHANNEL f_g_l5_1_r from g_l5_1 4 to g_l6_2 1 w=100 ;
    CHANNEL f_g_l5_2_l from g_l5_2 3 to g_l6_2 2 w=100 ;
    CHANNEL f_g_l5_2_r from g_l5_2 4 to g_l6_3 1 w=100 ;
    CHANNEL f_g_l5_3_l from g_l5_3 3 to g_l6_3 2 w=100 ;
    CHANNEL f_g_l5_3_r from g_l5_3 4 to g_l6_4 1 w=100 ;
    CHANNEL f_g_l5_4_l from g_l5_4 3 to g_l6_4 2 w=100 ;
    CHANNEL f_g_l5_4_r from g_l5_4 4 to g_l6_5 1 w=100 ;
    CHANNEL f_out1 from g_l6_0 3 to out1 1 w=100 ;
    CHANNEL f_out2 from g_l6_1 3 to out2 1 w=100 ;
    CHANNEL f_out3 from g_l6_2 3 to out3 1 w=100 ;
    CHANNEL f_out4 from g_l6_3 3 to out4 1 w=100 ;
    CHANNEL f_out5 from g_l6_4 3 to out5 1 w=100 ;
    CHANNEL f_out6 from g_l6_5 3 to out6 1 w=100 ;
END LAYER

LAYER CONTROL
END LAYER
