// Golden-corpus tests: the committed testdata/golden files pin both the
// wire format and the generators. Any unintended change to the JSON
// encoding, the MINT printer, the PRNG, or a benchmark generator shows up
// here as a byte-level diff — the determinism promise of the suite, made
// enforceable. Regenerate intentionally with:
//
//	go run ./cmd/parchmint-gen -all -dir testdata/golden
//	go run ./cmd/parchmint-convert -to mint -o testdata/golden/<name>.mint bench:<name>
package repro_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mint"
)

func TestGoldenJSON(t *testing.T) {
	for _, b := range bench.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", b.Name+".json"))
			if err != nil {
				t.Fatalf("golden file missing: %v", err)
			}
			got, err := core.Marshal(b.Build())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("generator output differs from golden (%d vs %d bytes); "+
					"if intentional, regenerate with parchmint-gen -all -dir testdata/golden",
					len(got), len(want))
			}
		})
	}
}

func TestGoldenJSONParsesAndValidates(t *testing.T) {
	// The golden files themselves are usable artifacts: they parse into
	// devices equal to the generated ones.
	entries, err := filepath.Glob(filepath.Join("testdata", "golden", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no golden JSON files: %v", err)
	}
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Unmarshal(data)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		bm, err := bench.ByName(d.Name)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if !core.Equal(d, bm.Build()) {
			t.Errorf("%s: parsed device differs from generator output", path)
		}
	}
}

func TestGoldenMint(t *testing.T) {
	for _, name := range []string{"molecular_gradients", "planar_synthetic_1"} {
		name := name
		t.Run(name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".mint"))
			if err != nil {
				t.Fatalf("golden file missing: %v", err)
			}
			b, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			f, _, err := mint.FromDevice(b.Build())
			if err != nil {
				t.Fatal(err)
			}
			if got := mint.Print(f); got != string(want) {
				t.Error("MINT printer output differs from golden; regenerate with parchmint-convert if intentional")
			}
			// And the golden text itself parses.
			if _, err := mint.Parse(string(want)); err != nil {
				t.Errorf("golden MINT does not parse: %v", err)
			}
		})
	}
}
