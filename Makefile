# CI entry points. `make check` is the full gate a commit should pass:
# build, vet, tests, the race detector over the parallel runner, and a
# short fuzz smoke of the parser and JSON codec.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test test-short race fuzz-smoke vet bench artifacts check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast loop: skips the full artifact regeneration and other slow sweeps.
test-short:
	$(GO) test -short ./...

# Race detector across the tree; -short keeps it focused on the
# concurrency-bearing paths (worker pool, device cache, parallel
# experiment loops) instead of re-running the slow artifact regeneration
# under the race scheduler.
race:
	$(GO) test -race -short ./...

# Full-fat race run, including the complete golden-artifact regeneration.
race-full:
	$(GO) test -race ./...

# Each fuzz target for a short burst; any crasher fails the target.
fuzz-smoke:
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) -run '^$$' ./internal/mint
	$(GO) test -fuzz FuzzDeviceJSON -fuzztime $(FUZZTIME) -run '^$$' ./internal/core

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Regenerate the committed golden artifacts (intentional drift only).
artifacts:
	$(GO) run ./cmd/parchmint-bench -exp all -outdir results

check: build vet test race fuzz-smoke
