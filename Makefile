# CI entry points. `make check` is the full gate a commit should pass:
# build, vet, tests, the race detector over the parallel runner, and a
# short fuzz smoke of the parser and JSON codec.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test test-short race fuzz-smoke vet bench bench-pnr bench-serve bench-smoke artifacts serve-smoke cache-smoke jobs-smoke trace-smoke obs-smoke cluster-smoke hammer hammer-full check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast loop: skips the full artifact regeneration and other slow sweeps.
test-short:
	$(GO) test -short ./...

# Race detector across the tree; -short keeps it focused on the
# concurrency-bearing paths (worker pool, device cache, parallel
# experiment loops) instead of re-running the slow artifact regeneration
# under the race scheduler.
race:
	$(GO) test -race -short ./...

# Full-fat race run, including the complete golden-artifact regeneration.
race-full:
	$(GO) test -race ./...

# Each fuzz target for a short burst; any crasher fails the target.
fuzz-smoke:
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) -run '^$$' ./internal/mint
	$(GO) test -fuzz FuzzDeviceJSON -fuzztime $(FUZZTIME) -run '^$$' ./internal/core
	$(GO) test -fuzz FuzzCanonCodec -fuzztime $(FUZZTIME) -run '^$$' ./internal/core

vet:
	$(GO) vet ./...

# Hot-path benchmarks plus the ablation suite. For regression hunting use
# benchstat: run `go test -bench . -benchmem -count 10 -run '^$$'
# ./internal/place ./internal/route ./internal/pnr | tee old.txt` before a
# change, the same into new.txt after, then `benchstat old.txt new.txt`.
# The per-PR snapshot lives in BENCH_pnr.json (see bench-pnr).
bench: bench-pnr
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) test -bench . -benchmem -benchtime 3x -run '^$$' ./internal/place ./internal/route ./internal/pnr

# Regenerate the committed perf snapshot. parchmint-perf preserves the
# existing file's "baseline" block, so the before/after trajectory of the
# current optimization round survives regeneration. REPLICAS sets the
# annealing replica count for the paired seq/par flow kernels and is
# recorded in the snapshot's environment block.
REPLICAS ?= 2
bench-pnr:
	$(GO) run ./cmd/parchmint-perf -replicas $(REPLICAS) -o BENCH_pnr.json

# Regenerate the committed serving-tier snapshot: request→response kernels
# through the real handler stack (decode, execute, cache, encode) with no
# network or httptest overhead. Same baseline-preservation rules as
# bench-pnr.
bench-serve:
	$(GO) run ./cmd/parchmint-perf -suite serve -o BENCH_serve.json

# Determinism hammer under the race detector: parallel replicas,
# speculative net routing, and starved CPU budgets must reproduce the
# sequential golden byte for byte. -short trims the matrix to the small
# devices so the race scheduler stays affordable in the commit gate;
# hammer-full sweeps every bench device at replicas {1,2,4,8}.
hammer:
	$(GO) test -race -short -run TestDeterminismHammer ./internal/pnr

hammer-full:
	PARCHMINT_HAMMER_FULL=1 $(GO) test -run TestDeterminismHammer -timeout 60m ./internal/pnr

# CI gate: one quick iteration per kernel into a throwaway file, then
# schema-validate it and the committed snapshot. Catches a broken
# benchmark harness or a malformed BENCH_pnr.json without paying for a
# full measurement.
bench-smoke:
	@set -e; \
	tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/parchmint-perf -quick -o "$$tmp"; \
	$(GO) run ./cmd/parchmint-perf -check "$$tmp"; \
	$(GO) run ./cmd/parchmint-perf -suite serve -quick -o "$$tmp"; \
	$(GO) run ./cmd/parchmint-perf -check "$$tmp"; \
	$(GO) run ./cmd/parchmint-perf -check BENCH_pnr.json; \
	$(GO) run ./cmd/parchmint-perf -check BENCH_serve.json; \
	echo "bench-smoke: ok"

# Regenerate the committed golden artifacts (intentional drift only).
artifacts:
	$(GO) run ./cmd/parchmint-bench -exp all -outdir results

# Boot parchmint-serve on an ephemeral port, poke /healthz and one
# pipeline endpoint with curl, and shut it down. Catches wiring problems
# (routing, flags, listener, graceful shutdown) that handler-level tests
# cannot see. Skips quietly when curl is unavailable.
serve-smoke: build
	@command -v curl >/dev/null 2>&1 || { echo "serve-smoke: curl not found, skipping"; exit 0; }
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/parchmint-serve" ./cmd/parchmint-serve; \
	"$$tmp/parchmint-serve" -addr 127.0.0.1:0 -port-file "$$tmp/port" & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 50); do [ -s "$$tmp/port" ] && break; sleep 0.1; done; \
	port=$$(cat "$$tmp/port"); \
	curl -sfS "http://127.0.0.1:$$port/healthz" | grep -q '"status":"ok"'; \
	curl -sfS "http://127.0.0.1:$$port/healthz?pretty=1" | grep -q '"status": "ok"'; \
	curl -sfS -X POST -d '{"bench":"rotary_pcr"}' "http://127.0.0.1:$$port/v1/validate" | grep -q '"ok":true'; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	echo "serve-smoke: ok"

# Boot parchmint-serve with the result cache on and send the same stats
# request twice: the first response must be a cache miss, the second a
# byte-identical hit. Catches cache wiring that tests with in-process
# handlers cannot see (header casing over real HTTP, flag plumbing).
# Skips quietly when curl is unavailable.
cache-smoke: build
	@command -v curl >/dev/null 2>&1 || { echo "cache-smoke: curl not found, skipping"; exit 0; }
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/parchmint-serve" ./cmd/parchmint-serve; \
	"$$tmp/parchmint-serve" -addr 127.0.0.1:0 -cache-bytes 67108864 -port-file "$$tmp/port" & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 50); do [ -s "$$tmp/port" ] && break; sleep 0.1; done; \
	port=$$(cat "$$tmp/port"); \
	curl -sfS -D "$$tmp/h1" -o "$$tmp/b1" -X POST -d '{"bench":"rotary_pcr"}' "http://127.0.0.1:$$port/v1/stats"; \
	curl -sfS -D "$$tmp/h2" -o "$$tmp/b2" -X POST -d '{"bench":"rotary_pcr"}' "http://127.0.0.1:$$port/v1/stats"; \
	grep -qi '^x-parchmint-cache: miss' "$$tmp/h1"; \
	grep -qi '^x-parchmint-cache: hit' "$$tmp/h2"; \
	cmp -s "$$tmp/b1" "$$tmp/b2"; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	echo "cache-smoke: ok"

# Durability end to end: boot parchmint-serve with a job journal, submit
# a pnr job, stream its SSE events to the terminal "done" event, capture
# the result bytes, kill the server with SIGKILL (no shutdown, no flush
# beyond the journal's own fsyncs), reboot from the same journal, and
# assert the replayed job serves byte-identical bytes as a durable cache
# hit. This is the acceptance scenario the in-process tests approximate;
# here it crosses a real unclean process death. Skips without curl.
jobs-smoke: build
	@command -v curl >/dev/null 2>&1 || { echo "jobs-smoke: curl not found, skipping"; exit 0; }
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/parchmint-serve" ./cmd/parchmint-serve; \
	"$$tmp/parchmint-serve" -addr 127.0.0.1:0 -cache-bytes 67108864 \
		-journal "$$tmp/journal.jsonl" -port-file "$$tmp/port" & pid=$$!; \
	trap 'kill -9 $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 50); do [ -s "$$tmp/port" ] && break; sleep 0.1; done; \
	port=$$(cat "$$tmp/port"); \
	curl -sfS -X POST -d '{"op":"pnr","bench":"rotary_pcr"}' \
		"http://127.0.0.1:$$port/v1/jobs" > "$$tmp/submit.json"; \
	id=$$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$$tmp/submit.json"); \
	[ -n "$$id" ] || { echo "jobs-smoke: no job id in $$(cat $$tmp/submit.json)"; exit 1; }; \
	curl -sfS -N --max-time 60 "http://127.0.0.1:$$port/v1/jobs/$$id/events" \
		| sed '/^event: done/,/^$$/{/^$$/q;}' > "$$tmp/events"; \
	grep -q '^event: done' "$$tmp/events"; \
	grep -q '"status":"completed"' "$$tmp/events"; \
	curl -sfS -o "$$tmp/b1" "http://127.0.0.1:$$port/v1/jobs/$$id/result"; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	"$$tmp/parchmint-serve" -addr 127.0.0.1:0 -cache-bytes 67108864 \
		-journal "$$tmp/journal.jsonl" -port-file "$$tmp/port2" & pid=$$!; \
	trap 'kill -9 $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 50); do [ -s "$$tmp/port2" ] && break; sleep 0.1; done; \
	port=$$(cat "$$tmp/port2"); \
	curl -sfS -D "$$tmp/h2" -o "$$tmp/b2" "http://127.0.0.1:$$port/v1/jobs/$$id/result"; \
	grep -qi '^x-parchmint-cache: hit' "$$tmp/h2"; \
	cmp -s "$$tmp/b1" "$$tmp/b2"; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	echo "jobs-smoke: ok"

# Run the full flow with span tracing on, then validate the emitted
# Chrome trace_event JSON: well-formed, and every pipeline stage span
# present. Catches a telemetry layer that silently stopped recording.
trace-smoke:
	@set -e; \
	tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/parchmint-pnr -trace "$$tmp" -o /dev/null bench:rotary_pcr 2>/dev/null; \
	$(GO) run ./cmd/parchmint-perf -check-trace "$$tmp" \
		-trace-spans "bench.build,pnr.flow,place.anneal,route.astar,pnr.attach"; \
	echo "trace-smoke: ok"

# Distributed-trace round trip over real HTTP: boot parchmint-serve with
# the flight recorder keeping everything, send a fixed W3C traceparent,
# and assert the trace ID (with a fresh span ID) comes back on the
# response header, lands in the JSON request log, and is retrievable
# from /debug/requests — plus byte-identity with and without the header,
# and the OpenMetrics exemplar exposition. Skips without curl.
TRACE_TP = 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
TRACE_ID = 4bf92f3577b34da6a3ce929d0e0e4736
obs-smoke: build
	@command -v curl >/dev/null 2>&1 || { echo "obs-smoke: curl not found, skipping"; exit 0; }
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/parchmint-serve" ./cmd/parchmint-serve; \
	"$$tmp/parchmint-serve" -addr 127.0.0.1:0 -trace-sample 1 -log-format json \
		-port-file "$$tmp/port" 2> "$$tmp/log" & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 50); do [ -s "$$tmp/port" ] && break; sleep 0.1; done; \
	port=$$(cat "$$tmp/port"); \
	curl -sfS -o "$$tmp/b2" -X POST -d '{"bench":"rotary_pcr"}' "http://127.0.0.1:$$port/v1/stats"; \
	curl -sfS -D "$$tmp/h1" -o "$$tmp/b1" -H 'traceparent: $(TRACE_TP)' \
		-X POST -d '{"bench":"rotary_pcr"}' "http://127.0.0.1:$$port/v1/stats"; \
	grep -qi '^traceparent: 00-$(TRACE_ID)-' "$$tmp/h1"; \
	grep -qi '^traceparent: $(TRACE_TP)' "$$tmp/h1" && { echo "obs-smoke: span id not re-minted"; exit 1; } || true; \
	cmp -s "$$tmp/b1" "$$tmp/b2" || { echo "obs-smoke: response bytes depend on traceparent"; exit 1; }; \
	grep -q '"trace":"$(TRACE_ID)"' "$$tmp/log"; \
	curl -sfS "http://127.0.0.1:$$port/debug/requests" | grep -q '"trace_id":"$(TRACE_ID)"'; \
	curl -sfS "http://127.0.0.1:$$port/metrics?openmetrics=1" > "$$tmp/om"; \
	grep -q '^# EOF' "$$tmp/om"; \
	grep -q 'trace_id="$(TRACE_ID)"' "$$tmp/om"; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	echo "obs-smoke: ok"

# Three-node consistent-hash cluster over real HTTP with a race-enabled
# binary: a request sent to the wrong shard is forwarded to the owner
# (X-Parchmint-Shard / X-Parchmint-Forwarded) and answers byte-identical
# to the owner's own response, the repeat answers from the owner's cache
# through the relay, a job submitted through the wrong shard routes to
# the owner, and after SIGKILLing the owner a replacement booted from
# its journal with the same -self serves the job's bytes as a durable
# hit. See scripts/cluster_smoke.sh for the full scenario. Skips quietly
# when curl is unavailable.
cluster-smoke: build
	@GO="$(GO)" ./scripts/cluster_smoke.sh

check: build vet test race hammer fuzz-smoke bench-smoke serve-smoke cache-smoke jobs-smoke trace-smoke obs-smoke cluster-smoke
