// Command parchmint-sim runs the steady-state hydraulic simulation of a
// ParchMint device's flow layer: pressures at every port node, flow rates
// through every channel, and optionally steady-state concentrations.
//
// Boundary conditions are "-p node=pascals" flags; concentration sources
// are "-c node=value" flags. Nodes are written "component.port".
//
// Usage:
//
//	parchmint-sim -p in1.port1=5000 -p out.port1=0 bench:aquaflex_3b
//	parchmint-sim -p inA.port1=1e4 -p inB.port1=1e4 \
//	    -p out1.port1=0 ... -c inA.port1=1 -c inB.port1=0 device.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/sim"
)

// kvFlag collects repeated "key=value" flags.
type kvFlag struct {
	keys []string
	vals []float64
}

func (f *kvFlag) String() string { return fmt.Sprint(f.keys) }

func (f *kvFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected node=value, got %q", s)
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	f.keys = append(f.keys, k)
	f.vals = append(f.vals, x)
	return nil
}

func main() {
	var pressures, concs kvFlag
	flag.Var(&pressures, "p", "pressure boundary condition node=Pa (repeatable)")
	flag.Var(&concs, "c", "concentration source node=value (repeatable)")
	viscosity := flag.Float64("viscosity", 0, "fluid viscosity in Pa*s (0 = water)")
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Fatalf("usage: parchmint-sim -p node=Pa -p node=Pa [...] [-c node=val] <file.json|bench:NAME|->")
	}
	if len(pressures.keys) < 2 {
		cli.Fatalf("need at least two -p boundary conditions")
	}

	loaded, err := cli.LoadArg(context.Background(), flag.Arg(0))
	if err != nil {
		cli.Fatalf("%s: %v", flag.Arg(0), err)
	}
	loaded.PrintNotes(os.Stderr)
	d := loaded.Device
	n, err := sim.Build(d, sim.Options{Viscosity: *viscosity})
	if err != nil {
		cli.Fatalf("%v", err)
	}
	var bcs []sim.BC
	for i, k := range pressures.keys {
		bcs = append(bcs, sim.BC{Node: sim.NodeID(k), Pressure: pressures.vals[i]})
	}
	sol, err := n.Solve(bcs)
	if err != nil {
		cli.Fatalf("%v", err)
	}

	fmt.Printf("hydraulic network of %q: %d nodes, %d resistors (solved in %d iterations)\n",
		d.Name, n.NumNodes(), n.NumResistors(), sol.Iterations)
	fmt.Println("\nchannel flows (positive = source to sink direction):")
	for _, f := range sol.Flows {
		// nL/min is the natural LoC unit: 1 m³/s = 6e13 nL/min.
		fmt.Printf("  %-16s %10.3f nL/min  (%s -> %s)\n",
			f.Channel, f.Q*6e13, f.From, f.To)
	}

	if len(concs.keys) > 0 {
		sources := map[sim.NodeID]float64{}
		for i, k := range concs.keys {
			sources[sim.NodeID(k)] = concs.vals[i]
		}
		conc, err := n.Concentrations(sol, sources)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		fmt.Println("\nsteady-state concentrations at port nodes:")
		nodes := make([]string, 0, len(conc))
		for id := range conc {
			if !strings.Contains(string(id), "~") { // skip internal hubs
				nodes = append(nodes, string(id))
			}
		}
		sort.Strings(nodes)
		for _, id := range nodes {
			fmt.Printf("  %-20s %.4f\n", id, conc[sim.NodeID(id)])
		}
	}
}
