// CLI contract tests for parchmint-bench: the built binary's -list output
// carries one-line titles, unknown experiment IDs exit non-zero with a
// usage message, and the -j flag never changes artifact bytes.
package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// buildBinary compiles parchmint-bench into a temp dir once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "parchmint-bench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestListIncludesTitles(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatalf("-list failed: %v", err)
	}
	text := string(out)
	for _, in := range experiments.Describe() {
		if !strings.Contains(text, in.ID) {
			t.Errorf("-list output missing ID %q", in.ID)
		}
		if !strings.Contains(text, in.Title) {
			t.Errorf("-list output missing title %q for %s", in.Title, in.ID)
		}
	}
	if !strings.Contains(text, "timing") {
		t.Error("-list output missing the timing pseudo-experiment")
	}
}

func TestUnknownExperimentExitsNonZeroWithUsage(t *testing.T) {
	bin := buildBinary(t)
	var stderr bytes.Buffer
	cmd := exec.Command(bin, "-exp", "bogus")
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("err = %v, want non-zero exit", err)
	}
	if ee.ExitCode() == 0 {
		t.Error("unknown experiment exited zero")
	}
	msg := stderr.String()
	if !strings.Contains(msg, "bogus") {
		t.Errorf("stderr does not name the unknown ID:\n%s", msg)
	}
	if !strings.Contains(msg, "usage:") {
		t.Errorf("stderr carries no usage message:\n%s", msg)
	}
	if !strings.Contains(msg, "table1") {
		t.Errorf("usage does not list the valid IDs:\n%s", msg)
	}
}

func TestNoArgumentsExitsNonZeroWithUsage(t *testing.T) {
	bin := buildBinary(t)
	var stderr bytes.Buffer
	cmd := exec.Command(bin)
	cmd.Stderr = &stderr
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("err = %v, want non-zero exit", err)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("stderr carries no usage message:\n%s", stderr.String())
	}
}

func TestWorkerCountDoesNotChangeArtifactBytes(t *testing.T) {
	bin := buildBinary(t)
	var outputs []string
	for _, j := range []string{"1", "8"} {
		out, err := exec.Command(bin, "-exp", "table1", "-j", j).Output()
		if err != nil {
			t.Fatalf("-exp table1 -j %s: %v", j, err)
		}
		outputs = append(outputs, string(out))
	}
	if outputs[0] != outputs[1] {
		t.Error("-j 1 and -j 8 produced different table1 bytes")
	}
	if !strings.Contains(outputs[0], "Table 1") {
		t.Errorf("unexpected table1 output:\n%s", outputs[0])
	}
}
