// Command parchmint-bench regenerates the paper's evaluation artifacts:
// every table and figure in DESIGN.md's per-experiment index, plus the
// wall-clock "timing" pseudo-experiment of the parallel runner.
//
// Usage:
//
//	parchmint-bench -list
//	parchmint-bench -exp table1
//	parchmint-bench -exp all -j 8 -outdir results/
//	parchmint-bench -exp timing -trace timing-trace.json
//
// -j sets the worker count (default: all CPUs). Artifacts are
// byte-identical at every worker count; only wall time changes. -trace
// records a Chrome trace_event span timeline of the run (experiment
// spans, and per-stage pipeline spans under -exp timing) without
// affecting the artifacts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
)

// timingID is the runner's pseudo-experiment: wall-clock stage profiling.
// It is not part of "-exp all" because its output is machine- and
// run-specific, and "all" is the byte-reproducible golden set.
const timingID = "timing"

func usage() {
	fmt.Fprintf(os.Stderr, "usage: parchmint-bench -list | -exp <id|all|%s> [-j N] [-outdir DIR]\n", timingID)
	fmt.Fprintf(os.Stderr, "experiments: %v\n", experiments.IDs())
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs with their titles")
	exp := flag.String("exp", "", `experiment ID, "all", or "timing"`)
	outdir := flag.String("outdir", "", "write artifacts to files in this directory instead of stdout")
	jobs := flag.Int("j", runtime.NumCPU(), "worker count for parallel execution (0 = all CPUs)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON span trace of the run to this file")
	flag.Usage = usage
	flag.Parse()

	if *jobs < 1 {
		*jobs = runtime.NumCPU()
	}
	runner.SetParallelism(*jobs)
	ctx, flushTrace := cli.TraceContext(context.Background(), *traceOut)

	switch {
	case *list:
		for _, in := range experiments.Describe() {
			fmt.Printf("%-14s%s\n", in.ID, in.Title)
		}
		fmt.Printf("%-14s%s\n", timingID, `pipeline stage wall-time profile (pseudo-experiment, not in "all")`)
	case *exp == "all":
		_, sp := obs.Start(ctx, "exp.all")
		var arts []experiments.Artifact
		if *jobs > 1 {
			arts = experiments.AllParallel(*jobs)
		} else {
			arts = experiments.All()
		}
		sp.End()
		for _, a := range arts {
			if err := emit(a, *outdir); err != nil {
				cli.Fatalf("%s: %v", a.ID, err)
			}
		}
	case *exp == timingID:
		tb := runner.TimingTableContext(ctx, bench.Suite(), runner.TimingOptions{
			Workers: *jobs,
			Seed:    experiments.Seed,
		})
		if err := emit(experiments.Artifact{ID: timingID, Text: tb.Render()}, *outdir); err != nil {
			cli.Fatalf("%s: %v", timingID, err)
		}
	case *exp != "":
		_, sp := obs.Start(ctx, "exp."+*exp)
		text, err := experiments.Run(*exp)
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "parchmint-bench: %v\n", err)
			usage()
			os.Exit(2)
		}
		if err := emit(experiments.Artifact{ID: *exp, Text: text}, *outdir); err != nil {
			cli.Fatalf("%s: %v", *exp, err)
		}
	default:
		usage()
		os.Exit(2)
	}
	if err := flushTrace(); err != nil {
		cli.Fatalf("trace: %v", err)
	}
}

func emit(a experiments.Artifact, outdir string) error {
	if outdir == "" {
		fmt.Println(a.Text)
		return nil
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outdir, a.ID+".txt")
	if err := os.WriteFile(path, []byte(a.Text), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
