// Command parchmint-bench regenerates the paper's evaluation artifacts:
// every table and figure in DESIGN.md's per-experiment index.
//
// Usage:
//
//	parchmint-bench -list
//	parchmint-bench -exp table1
//	parchmint-bench -exp all -outdir results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	exp := flag.String("exp", "", `experiment ID, or "all"`)
	outdir := flag.String("outdir", "", "write artifacts to files in this directory instead of stdout")
	flag.Parse()

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case *exp == "all":
		arts := experiments.All()
		for _, a := range arts {
			if err := emit(a, *outdir); err != nil {
				cli.Fatalf("%s: %v", a.ID, err)
			}
		}
	case *exp != "":
		text, err := experiments.Run(*exp)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		if err := emit(experiments.Artifact{ID: *exp, Text: text}, *outdir); err != nil {
			cli.Fatalf("%s: %v", *exp, err)
		}
	default:
		cli.Fatalf("usage: parchmint-bench -list | -exp <id|all> [-outdir DIR]")
	}
}

func emit(a experiments.Artifact, outdir string) error {
	if outdir == "" {
		fmt.Println(a.Text)
		return nil
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outdir, a.ID+".txt")
	if err := os.WriteFile(path, []byte(a.Text), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
