// Command parchmint-validate checks ParchMint JSON files: first the
// structural schema (required keys, types), then the semantic rule set
// (reference integrity, layer consistency, geometry). It prints every
// diagnostic and exits non-zero if any file has errors.
//
// Usage:
//
//	parchmint-validate [-q] [-schema-only] [-trace FILE] file.json [file2.json ...]
//	parchmint-validate bench:aquaflex_3b
//	cat device.json | parchmint-validate -
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/validate"
)

func main() {
	quiet := flag.Bool("q", false, "suppress warnings, report only errors")
	schemaOnly := flag.Bool("schema-only", false, "run only the structural schema check")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON span trace to this file")
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Fatalf("usage: parchmint-validate [-q] [-schema-only] [-trace FILE] <file.json|bench:NAME|-> ...")
	}
	ctx, flushTrace := cli.TraceContext(context.Background(), *traceOut)
	failed := false
	for _, src := range flag.Args() {
		if !checkOne(ctx, src, *quiet, *schemaOnly) {
			failed = true
		}
	}
	if err := flushTrace(); err != nil {
		cli.Fatalf("trace: %v", err)
	}
	if failed {
		os.Exit(1)
	}
}

// checkOne validates a single source and reports whether it passed.
func checkOne(ctx context.Context, src string, quiet, schemaOnly bool) bool {
	// Benchmark sources skip the schema stage (they are built, not parsed).
	if !strings.HasPrefix(src, "bench:") && src != "-" {
		data, err := cli.ReadAll(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", src, err)
			return false
		}
		_, ssp := obs.Start(ctx, "schema.check")
		sr := schema.Check(data)
		ssp.End()
		if !sr.OK() {
			fmt.Printf("%s: structural check failed\n%s", src, sr)
			return false
		}
		if schemaOnly {
			fmt.Printf("%s: schema ok\n", src)
			return true
		}
		d, err := core.Unmarshal(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", src, err)
			return false
		}
		return report(ctx, src, d, quiet)
	}
	loaded, err := cli.LoadArg(ctx, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", src, err)
		return false
	}
	loaded.PrintNotes(os.Stderr)
	d := loaded.Device
	return report(ctx, src, d, quiet)
}

func report(ctx context.Context, src string, d *core.Device, quiet bool) bool {
	_, sp := obs.Start(ctx, "validate.semantic")
	sp.SetAttr("device", d.Name)
	r := validate.ValidateWith(d, validate.Options{SkipWarnings: quiet})
	sp.End()
	fmt.Printf("%s: %s", src, r)
	return r.OK()
}
