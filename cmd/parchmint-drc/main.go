// Command parchmint-drc runs physical design-rule checks on a
// feature-annotated ParchMint device: minimum channel width, channel
// spacing and crossings, component incursions, and component clearance.
// Exits non-zero when any rule fires.
//
// Usage:
//
//	parchmint-drc placed.json
//	parchmint-drc -min-width 80 -min-spacing 100 placed.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/drc"
)

func main() {
	minWidth := flag.Int64("min-width", 0, "minimum channel width in um (0 = default 50)")
	minSpacing := flag.Int64("min-spacing", 0, "minimum channel spacing in um (0 = default 50)")
	minClearance := flag.Int64("min-clearance", 0, "minimum component clearance in um (0 = default 100)")
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Fatalf("usage: parchmint-drc [flags] <file.json|bench:NAME|-> ...")
	}
	rules := drc.Rules{
		MinChannelWidth:       *minWidth,
		MinChannelSpacing:     *minSpacing,
		MinComponentClearance: *minClearance,
	}
	failed := false
	for _, src := range flag.Args() {
		loaded, err := cli.LoadArg(context.Background(), src)
		if err != nil {
			cli.Fatalf("%s: %v", src, err)
		}
		loaded.PrintNotes(os.Stderr)
		d := loaded.Device
		if !d.HasFeatures() {
			fmt.Fprintf(os.Stderr, "%s: no features to check (run parchmint-pnr first)\n", src)
			failed = true
			continue
		}
		report := drc.Check(d, rules)
		fmt.Print(report)
		if !report.Clean() {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
