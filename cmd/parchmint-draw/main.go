// Command parchmint-draw renders a feature-annotated ParchMint device as
// SVG. Devices without features are placed and routed first with the
// default flow (annealer + A*) unless -no-pnr is set.
//
// Usage:
//
//	parchmint-draw bench:rotary_pcr -o rotary.svg
//	parchmint-draw -labels -layer flow placed.json -o flow.svg
package main

import (
	"context"
	"flag"
	"os"

	"repro/internal/cli"
	"repro/internal/pnr"
	"repro/internal/render"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	labels := flag.Bool("labels", false, "draw component IDs")
	scale := flag.Float64("scale", 0, "micrometers-to-pixels scale (0 = default)")
	layer := flag.String("layer", "", "render only this layer ID")
	noPnr := flag.Bool("no-pnr", false, "fail instead of auto-running place-and-route")
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Fatalf("usage: parchmint-draw [flags] <file.json|bench:NAME|->")
	}
	loaded, err := cli.LoadArg(context.Background(), flag.Arg(0))
	if err != nil {
		cli.Fatalf("%s: %v", flag.Arg(0), err)
	}
	loaded.PrintNotes(os.Stderr)
	d := loaded.Device
	if !d.HasFeatures() {
		if *noPnr {
			cli.Fatalf("device %q has no features (and -no-pnr is set)", d.Name)
		}
		res, err := pnr.Run(d, pnr.NewOptions())
		if err != nil {
			cli.Fatalf("auto place-and-route: %v", err)
		}
		d = res.Device
		os.Stderr.WriteString("note: device had no features; ran default place-and-route\n")
	}
	opts := render.Options{Scale: *scale, ShowLabels: *labels}
	if *layer != "" {
		opts.Layers = []string{*layer}
	}
	svg, err := render.SVG(d, opts)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	if err := cli.WriteOutput(*out, []byte(svg)); err != nil {
		cli.Fatalf("%v", err)
	}
}
