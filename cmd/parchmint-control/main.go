// Command parchmint-control synthesizes valve actuation plans: for each
// "-move from:to" step, the valves to open (on the flow path), the valves
// to close (adjoining branches), and peristaltic cycles for pumps on the
// path, each traced to its chip control port.
//
// With -simulate, the plan is additionally executed symbolically: fluids
// seeded by -fluid flags move through the device, and the trace reports
// mixing, contamination through un-flushed paths, and transfers from
// empty components.
//
// Usage:
//
//	parchmint-control -move in1:react1 -move react1:out bench:aquaflex_3b
//	parchmint-control -simulate -fluid in1=sample -fluid in2=reagent \
//	    -move in1:react1 -move in2:react1 -move react1:out bench:aquaflex_3b
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/control"
)

// movesFlag collects repeated "-move from:to" flags.
type movesFlag []control.Step

func (m *movesFlag) String() string { return fmt.Sprint([]control.Step(*m)) }

func (m *movesFlag) Set(s string) error {
	from, to, ok := strings.Cut(s, ":")
	if !ok || from == "" || to == "" {
		return fmt.Errorf("expected from:to, got %q", s)
	}
	*m = append(*m, control.Step{From: from, To: to})
	return nil
}

// fluidsFlag collects repeated "-fluid component=name" flags.
type fluidsFlag map[string]control.Fluid

func (f fluidsFlag) String() string { return fmt.Sprint(map[string]control.Fluid(f)) }

func (f fluidsFlag) Set(s string) error {
	comp, name, ok := strings.Cut(s, "=")
	if !ok || comp == "" || name == "" {
		return fmt.Errorf("expected component=fluid, got %q", s)
	}
	f[comp] = control.Fluid(name)
	return nil
}

func main() {
	var moves movesFlag
	fluids := fluidsFlag{}
	flag.Var(&moves, "move", "fluid transfer from:to (repeatable)")
	flag.Var(fluids, "fluid", "initial fluid component=name (repeatable, with -simulate)")
	simulate := flag.Bool("simulate", false, "symbolically execute the protocol and print the trace")
	flag.Parse()
	if flag.NArg() != 1 || len(moves) == 0 {
		cli.Fatalf("usage: parchmint-control -move from:to [-move from:to ...] <file.json|bench:NAME|->")
	}
	loaded, err := cli.LoadArg(context.Background(), flag.Arg(0))
	if err != nil {
		cli.Fatalf("%s: %v", flag.Arg(0), err)
	}
	loaded.PrintNotes(os.Stderr)
	d := loaded.Device
	p, err := control.NewPlanner(d)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	plan, err := p.Schedule(moves)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	fmt.Print(plan.Render())
	if *simulate {
		tr, err := p.Simulate(fluids, moves)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		fmt.Println("\n--- protocol simulation ---")
		fmt.Print(tr.String())
		if !tr.OK() {
			cli.Fatalf("protocol has %d error(s)", len(tr.Errors()))
		}
	}
}
