// Command parchmint-diff compares two ParchMint devices structurally by
// element ID, independent of ordering and formatting — the review tool
// for exchanged benchmark revisions. Exits 1 when the devices differ.
//
// Usage:
//
//	parchmint-diff old.json new.json
//	parchmint-diff bench:aquaflex_3b modified.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/diff"
)

func main() {
	quiet := flag.Bool("q", false, "print nothing; exit status only")
	flag.Parse()
	if flag.NArg() != 2 {
		cli.Fatalf("usage: parchmint-diff [-q] <deviceA> <deviceB>")
	}
	loadedA, err := cli.LoadArg(context.Background(), flag.Arg(0))
	if err != nil {
		cli.Fatalf("%s: %v", flag.Arg(0), err)
	}
	loadedA.PrintNotes(os.Stderr)
	a := loadedA.Device
	loadedB, err := cli.LoadArg(context.Background(), flag.Arg(1))
	if err != nil {
		cli.Fatalf("%s: %v", flag.Arg(1), err)
	}
	loadedB.PrintNotes(os.Stderr)
	b := loadedB.Device
	report := diff.Devices(a, b)
	if !*quiet {
		fmt.Print(report)
	}
	if !report.Same() {
		os.Exit(1)
	}
}
