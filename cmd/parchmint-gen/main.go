// Command parchmint-gen materializes the benchmark suite as ParchMint JSON
// files, and generates parameterized synthetic circuits beyond the fixed
// suite.
//
// Usage:
//
//	parchmint-gen -list
//	parchmint-gen -name rotary_pcr -o rotary_pcr.json
//	parchmint-gen -all -dir benchmarks/
//	parchmint-gen -synthetic -inputs 16 -gates 80 -levels 5 -seed 7 -o big.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	list := flag.Bool("list", false, "list the suite benchmarks")
	name := flag.String("name", "", "generate one named benchmark")
	all := flag.Bool("all", false, "generate the whole suite")
	dir := flag.String("dir", ".", "output directory for -all")
	out := flag.String("o", "", "output file (default stdout)")
	synthetic := flag.Bool("synthetic", false, "generate a parameterized synthetic circuit")
	inputs := flag.Int("inputs", 8, "synthetic: primary inputs")
	gates := flag.Int("gates", 20, "synthetic: gate count")
	levels := flag.Int("levels", 4, "synthetic: circuit depth")
	inverters := flag.Int("inverters", 25, "synthetic: inverter percentage")
	seed := flag.Uint64("seed", 1, "synthetic: PRNG seed")
	flag.Parse()

	switch {
	case *list:
		for _, b := range bench.Suite() {
			fmt.Printf("%-32s %-9s %s\n", b.Name, b.Class, b.Description)
		}
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			cli.Fatalf("creating %s: %v", *dir, err)
		}
		for _, b := range bench.Suite() {
			path := filepath.Join(*dir, b.Name+".json")
			if err := writeDevice(b.Build(), path); err != nil {
				cli.Fatalf("%s: %v", path, err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	case *synthetic:
		d := bench.SyntheticCircuit(fmt.Sprintf("synthetic_i%d_g%d_s%d", *inputs, *gates, *seed),
			bench.CircuitParams{
				Inputs: *inputs, Gates: *gates, Levels: *levels,
				InverterRatio: *inverters, Seed: *seed,
			})
		if err := writeDevice(d, *out); err != nil {
			cli.Fatalf("%v", err)
		}
	case *name != "":
		b, err := bench.ByName(*name)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		if err := writeDevice(b.Build(), *out); err != nil {
			cli.Fatalf("%v", err)
		}
	default:
		cli.Fatalf("usage: parchmint-gen -list | -name NAME [-o FILE] | -all [-dir DIR] | -synthetic [flags]")
	}
}

func writeDevice(d *core.Device, path string) error {
	data, err := core.Marshal(d)
	if err != nil {
		return err
	}
	return cli.WriteOutput(path, data)
}
