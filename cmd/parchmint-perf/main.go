// Command parchmint-perf measures the PnR hot paths — annealing
// placement, the three maze-router searches, full-device routing, and the
// end-to-end flow — and writes the numbers to a JSON snapshot
// (BENCH_pnr.json). The snapshot is the repository's perf trajectory:
// each PR that touches a hot path regenerates it, and the committed
// "baseline" block preserves the numbers the current optimization round
// started from.
//
// Usage:
//
//	parchmint-perf -o BENCH_pnr.json          # full measurement
//	parchmint-perf -quick -o /tmp/smoke.json  # one iteration per kernel
//	parchmint-perf -check BENCH_pnr.json      # validate an existing snapshot
//	parchmint-perf -check-trace trace.json -trace-spans "pnr.flow,place.anneal"
//	parchmint-perf -suite serve -o BENCH_serve.json  # HTTP serving-tier kernels
//
// An existing output file's "baseline" block is preserved across
// regenerations; -baseline FILE installs the "results" of another
// snapshot as the baseline instead. -check-trace validates that a file
// is well-formed Chrome trace_event JSON containing every span named in
// -trace-spans (the make trace-smoke assertion).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/route"
)

// Result is one kernel's measurement.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Environment pins the machine context the numbers were measured in, so
// snapshot diffs across machines are recognizable as such. NumReplicas is
// the annealing replica count the parallel-flow kernels ran with — a
// snapshot measured at a different count is a different workload, not a
// regression.
type Environment struct {
	Go          string `json:"go"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`
	NumCPU      int    `json:"num_cpu"`
	NumReplicas int    `json:"num_replicas"`
}

// Snapshot is the BENCH_pnr.json document.
type Snapshot struct {
	Schema      string      `json:"schema"`
	Go          string      `json:"go"`
	Environment Environment `json:"environment"`
	Quick       bool        `json:"quick"`
	Results     []Result    `json:"results"`
	Baseline    []Result    `json:"baseline,omitempty"`
}

const schemaID = "parchmint-perf/v1"

func main() {
	out := flag.String("o", "BENCH_pnr.json", "output snapshot file")
	suite := flag.String("suite", "pnr", "kernel family to measure: pnr (solver hot paths) or serve (HTTP request→response)")
	quick := flag.Bool("quick", false, "one iteration per kernel (CI smoke)")
	baseline := flag.String("baseline", "", "snapshot file whose results become this snapshot's baseline")
	replicas := flag.Int("replicas", 2, "annealing replica count for the paired parallel-flow kernels")
	check := flag.String("check", "", "validate the given snapshot and exit")
	checkTrace := flag.String("check-trace", "", "validate the given Chrome trace_event JSON file and exit")
	traceSpans := flag.String("trace-spans", "", "comma-separated span names -check-trace requires to be present")
	flag.Parse()

	if *check != "" {
		if err := checkSnapshot(*check); err != nil {
			cli.Fatalf("parchmint-perf: %v", err)
		}
		fmt.Printf("parchmint-perf: %s is a well-formed %s snapshot\n", *check, schemaID)
		return
	}
	if *checkTrace != "" {
		if err := checkTraceFile(*checkTrace, *traceSpans); err != nil {
			cli.Fatalf("parchmint-perf: %v", err)
		}
		fmt.Printf("parchmint-perf: %s is a well-formed trace\n", *checkTrace)
		return
	}

	snap := Snapshot{
		Schema: schemaID,
		Go:     runtime.Version(),
		Environment: Environment{
			Go:          runtime.Version(),
			OS:          runtime.GOOS,
			Arch:        runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
			NumReplicas: *replicas,
		},
		Quick: *quick,
	}
	snap.Baseline = loadBaseline(*baseline, *out)
	var ks []kernel
	switch *suite {
	case "pnr":
		ks = kernels(*replicas)
	case "serve":
		ks = serveKernels()
	default:
		cli.Fatalf("parchmint-perf: unknown suite %q (want pnr or serve)", *suite)
	}
	for _, k := range ks {
		iters := k.iters
		if *quick {
			iters = 1
		}
		snap.Results = append(snap.Results, measure(k, iters))
		fmt.Fprintf(os.Stderr, "parchmint-perf: %-34s %12d ns/op %8d allocs/op\n",
			k.name, snap.Results[len(snap.Results)-1].NsPerOp,
			snap.Results[len(snap.Results)-1].AllocsPerOp)
	}
	if *suite == "pnr" {
		enforcePairs(snap.Results)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		cli.Fatalf("parchmint-perf: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		cli.Fatalf("parchmint-perf: %v", err)
	}
}

// loadBaseline resolves the baseline block: an explicit -baseline file's
// results win; otherwise an existing output file's baseline is carried
// forward so regeneration never loses the trajectory anchor.
func loadBaseline(baselineFile, outFile string) []Result {
	if baselineFile != "" {
		var s Snapshot
		if err := readSnapshot(baselineFile, &s); err != nil {
			cli.Fatalf("parchmint-perf: baseline: %v", err)
		}
		return s.Results
	}
	var prev Snapshot
	if err := readSnapshot(outFile, &prev); err == nil {
		return prev.Baseline
	}
	return nil
}

func readSnapshot(path string, s *Snapshot) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, s); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func checkSnapshot(path string) error {
	var s Snapshot
	if err := readSnapshot(path, &s); err != nil {
		return err
	}
	if s.Schema != schemaID {
		return fmt.Errorf("%s: schema %q, want %q", path, s.Schema, schemaID)
	}
	if len(s.Results) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	for _, r := range s.Results {
		if r.Name == "" || r.Iterations <= 0 || r.NsPerOp <= 0 {
			return fmt.Errorf("%s: malformed result %+v", path, r)
		}
	}
	return nil
}

// checkTraceFile validates a Chrome trace_event JSON file, optionally
// requiring a comma-separated set of span names to be present.
func checkTraceFile(path, spans string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want []string
	for _, s := range strings.Split(spans, ",") {
		if s = strings.TrimSpace(s); s != "" {
			want = append(want, s)
		}
	}
	if err := obs.CheckTrace(data, want...); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// kernel is one measured hot path. fn runs a single operation and returns
// optional work metrics (moves, expansions) for the snapshot.
type kernel struct {
	name  string
	iters int
	fn    func() map[string]float64
}

// measure times iters runs of the kernel and reads allocation deltas from
// runtime.MemStats — the same counters testing.Benchmark reports.
func measure(k kernel, iters int) Result {
	k.fn() // warm caches (device build, arena pool) outside the window
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var metrics map[string]float64
	for i := 0; i < iters; i++ {
		metrics = k.fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{
		Name:        k.name,
		Iterations:  iters,
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		Metrics:     metrics,
	}
}

var perfDevices = []string{"aquaflex_3b", "rotary_pcr", "general_purpose_mfd"}

func device(name string) *core.Device {
	b, err := bench.ByName(name)
	if err != nil {
		cli.Fatalf("parchmint-perf: %v", err)
	}
	return b.Build()
}

// searchGrid mirrors the congested field grid of the route package's
// BenchmarkSearch: blocked component footprints with channel gaps.
func searchGrid() *geom.Grid {
	g, err := geom.NewGrid(geom.R(0, 0, 16000, 16000), 100)
	if err != nil {
		cli.Fatalf("parchmint-perf: %v", err)
	}
	for row := 10; row < 150; row += 20 {
		for col := 10; col < 150; col += 20 {
			g.BlockRect(geom.R(int64(col)*100, int64(row)*100,
				int64(col+8)*100, int64(row+8)*100))
		}
	}
	return g
}

// pairSuffixSeq/Par name the paired parallel-flow kernels: the same
// (device, seed, replicas) workload measured under a drained CPU budget
// (strictly sequential schedule) and at full width with speculative net
// routing. The determinism contract says the pair performs the identical
// search, so enforcePairs fails the run if their work counters diverge —
// the perf tool doubles as a determinism check on every regeneration.
const (
	pairSuffixSeq = "/seq"
	pairSuffixPar = "/par"
)

// enforcePairs verifies that every seq/par kernel pair reports identical
// work metrics (moves, expansions). A divergence means the parallel
// schedule changed the computation, which no speedup is allowed to buy.
func enforcePairs(results []Result) {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	for _, r := range results {
		if !strings.HasSuffix(r.Name, pairSuffixSeq) {
			continue
		}
		parName := strings.TrimSuffix(r.Name, pairSuffixSeq) + pairSuffixPar
		p, ok := byName[parName]
		if !ok {
			cli.Fatalf("parchmint-perf: %s has no paired %s kernel", r.Name, parName)
		}
		for key, want := range r.Metrics {
			if got := p.Metrics[key]; got != want {
				cli.Fatalf("parchmint-perf: determinism violation: %s %s=%v but %s %s=%v",
					r.Name, key, want, parName, key, got)
			}
		}
	}
}

// flowMetrics reduces one flow run to its work counters.
func flowMetrics(res *pnr.Result) map[string]float64 {
	return map[string]float64{
		"moves":      float64(res.Placement.Moves),
		"expansions": float64(res.RouteReport.TotalExpansions()),
	}
}

// drainedContext returns a context whose CPU budget has no free tokens,
// forcing every parallel section down to width 1 — the sequential
// schedule the /seq kernels measure.
func drainedContext() context.Context {
	b := par.NewBudget(1)
	b.TryAcquire(1)
	return par.ContextWithBudget(context.Background(), b)
}

// parallelKernels builds the paired seq/par flow kernels for each perf
// device at the given replica count.
func parallelKernels(replicas int) []kernel {
	var ks []kernel
	for _, name := range perfDevices {
		d := device(name)
		opts := pnr.NewOptions(pnr.WithSeed(1), pnr.WithReplicas(replicas))
		parOpts := pnr.NewOptions(pnr.WithSeed(1), pnr.WithReplicas(replicas),
			pnr.WithParallelNets(-1))
		base := fmt.Sprintf("pnr/flow/%s/replicas=%d", name, replicas)
		seqCtx := drainedContext()
		ks = append(ks,
			kernel{
				name:  base + pairSuffixSeq,
				iters: 3,
				fn: func() map[string]float64 {
					res, err := pnr.RunContext(seqCtx, d, opts)
					if err != nil {
						cli.Fatalf("parchmint-perf: %v", err)
					}
					return flowMetrics(res)
				},
			},
			kernel{
				name:  base + pairSuffixPar,
				iters: 3,
				fn: func() map[string]float64 {
					res, err := pnr.RunContext(context.Background(), d, parOpts)
					if err != nil {
						cli.Fatalf("parchmint-perf: %v", err)
					}
					return flowMetrics(res)
				},
			})
	}
	return ks
}

func kernels(replicas int) []kernel {
	var ks []kernel
	for _, name := range perfDevices {
		d := device(name)
		ks = append(ks, kernel{
			name:  "place/anneal/" + name,
			iters: 3,
			fn: func() map[string]float64 {
				p, err := (place.Annealer{}).Place(context.Background(), d, place.NewOptions(place.WithSeed(1)))
				if err != nil {
					cli.Fatalf("parchmint-perf: %v", err)
				}
				return map[string]float64{"moves": float64(p.Moves)}
			},
		})
	}
	for _, r := range route.Engines() {
		r := r
		g := searchGrid()
		sources := []geom.Cell{{Col: 0, Row: 0}, {Col: 0, Row: 159}}
		target := geom.Cell{Col: 159, Row: 80}
		ks = append(ks, kernel{
			name:  "route/search/" + r.Name(),
			iters: 50,
			fn: func() map[string]float64 {
				_, exp, ok := r.Search(context.Background(), g, sources, target)
				if !ok {
					cli.Fatalf("parchmint-perf: no path on search grid")
				}
				return map[string]float64{"expansions": float64(exp)}
			},
		})
	}
	for _, name := range perfDevices {
		d := device(name)
		p, err := (place.Greedy{}).Place(context.Background(), d, place.NewOptions())
		if err != nil {
			cli.Fatalf("parchmint-perf: %v", err)
		}
		ks = append(ks, kernel{
			name:  "route/routeall/" + name,
			iters: 5,
			fn: func() map[string]float64 {
				report, err := route.RouteAll(context.Background(), p, route.AStar{}, route.Options{})
				if err != nil {
					cli.Fatalf("parchmint-perf: %v", err)
				}
				return map[string]float64{"expansions": float64(report.TotalExpansions())}
			},
		})
	}
	for _, name := range perfDevices {
		d := device(name)
		ks = append(ks, kernel{
			name:  "pnr/flow/" + name,
			iters: 3,
			fn: func() map[string]float64 {
				res, err := pnr.Run(d, pnr.NewOptions(pnr.WithSeed(1)))
				if err != nil {
					cli.Fatalf("parchmint-perf: %v", err)
				}
				return map[string]float64{"expansions": float64(res.RouteReport.TotalExpansions())}
			},
		})
	}
	ks = append(ks, parallelKernels(replicas)...)
	return ks
}
