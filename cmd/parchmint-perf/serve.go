package main

import (
	"bytes"
	"io"
	"net/http"

	"repro/internal/cli"
	"repro/internal/serve"
)

// The serve kernel family measures the HTTP serving tier end to end:
// one full request→response cycle through the service handler, with the
// response body discarded. "warm" kernels run against a pre-warmed
// content-addressed cache — the dominant regime for repeated traffic,
// where the JSON codec and middleware are the entire cost. "cold"
// kernels run with the cache disabled, so every request pays the full
// pipeline computation. The numbers land in BENCH_serve.json with the
// same before/after baseline discipline as BENCH_pnr.json.

// serveCase is one measured endpoint/body/cache-regime combination.
type serveCase struct {
	name  string
	path  string
	body  string
	warm  bool
	iters int
}

var serveCases = []serveCase{
	{"serve/validate/rotary_pcr/warm", "/v1/validate", `{"bench":"rotary_pcr"}`, true, 20000},
	{"serve/validate/rotary_pcr/cold", "/v1/validate", `{"bench":"rotary_pcr"}`, false, 200},
	{"serve/stats/aquaflex_3b/warm", "/v1/stats", `{"bench":"aquaflex_3b"}`, true, 20000},
	{"serve/stats/aquaflex_3b/cold", "/v1/stats", `{"bench":"aquaflex_3b"}`, false, 200},
	{"serve/pnr/rotary_pcr/warm", "/v1/pnr", `{"bench":"rotary_pcr","placer":"greedy"}`, true, 20000},
	{"serve/pnr/rotary_pcr/cold", "/v1/pnr", `{"bench":"rotary_pcr","placer":"greedy"}`, false, 20},
	{"serve/convert/aquaflex_3b/warm", "/v1/convert", `{"bench":"aquaflex_3b","to":"mint"}`, true, 20000},
}

// discardWriter is the minimal ResponseWriter: headers land in one reused
// map and bodies are dropped, so the harness contributes the same small
// fixed overhead to every kernel instead of an httptest recorder's
// buffering.
type discardWriter struct{ h http.Header }

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *discardWriter) WriteHeader(int)             {}

// reusableBody is an io.ReadCloser over a resettable bytes.Reader, so the
// per-request body costs no allocation in the measurement loop.
type reusableBody struct{ bytes.Reader }

func (*reusableBody) Close() error { return nil }

var _ io.ReadCloser = (*reusableBody)(nil)

// serveKernels builds the request→response kernels. Warm kernels share
// one cache-enabled server (each endpoint's entry is materialized by the
// measure warm-up call before its window opens); cold kernels share one
// cache-disabled server.
func serveKernels() []kernel {
	warmSrv := serve.New(serve.Config{Workers: 2, BaseSeed: serve.BaseSeedDefault,
		CacheBytes: 64 << 20, TraceEvents: 256})
	coldSrv := serve.New(serve.Config{Workers: 2, BaseSeed: serve.BaseSeedDefault,
		TraceEvents: 256})
	warm, cold := warmSrv.Handler(), coldSrv.Handler()

	var ks []kernel
	for _, c := range serveCases {
		c := c
		h := cold
		if c.warm {
			h = warm
		}
		body := []byte(c.body)
		req, err := http.NewRequest("POST", "http://perf.local"+c.path, nil)
		if err != nil {
			cli.Fatalf("parchmint-perf: %v", err)
		}
		rb := &reusableBody{}
		w := &discardWriter{h: make(http.Header)}
		ks = append(ks, kernel{
			name:  c.name,
			iters: c.iters,
			fn: func() map[string]float64 {
				rb.Reset(body)
				req.Body = rb
				h.ServeHTTP(w, req)
				return nil
			},
		})
	}
	return ks
}
