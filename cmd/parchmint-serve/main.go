// Command parchmint-serve runs the benchmark suite's pipeline as a
// concurrent HTTP JSON service: validation, MINT conversion,
// place-and-route, characterization, and SVG rendering, plus the suite
// device catalog, health, and Prometheus metrics. Pipeline work is bounded
// by a worker gate and seeded deterministically, so identical request
// bodies produce byte-identical responses at any worker count — which also
// makes results content-addressable: repeated requests replay from an LRU
// result cache (X-Parchmint-Cache: hit|miss|coalesced), and admission
// sheds with 429 + Retry-After instead of queueing past -queue-depth.
//
// Usage:
//
//	parchmint-serve [-addr :8080] [-j N] [-seed N] [-max-body BYTES]
//	                [-timeout D] [-cache-bytes BYTES] [-queue-depth N]
//	                [-port-file PATH] [-log-format text|json]
//	                [-trace-events N] [-replicas N] [-route-workers N]
//	                [-journal PATH] [-job-timeout D] [-max-jobs N]
//	                [-flight-requests N] [-trace-sample P]
//	                [-peers URL,URL,... -self URL] [-peer-health D]
//
// Endpoints:
//
//	POST   /v1/validate    semantic + schema diagnostics
//	POST   /v1/convert     MINT <-> ParchMint JSON
//	POST   /v1/pnr         place-and-route, metrics + annotated device
//	POST   /v1/stats       characterization profile (paper Table 1)
//	POST   /v1/render.svg  SVG drawing
//	POST   /v1/batch       many pipeline requests in one body, fanned through the pool
//	POST   /v1/jobs        submit any operation as a durable async job
//	GET    /v1/jobs        job listing (?status= filters)
//	GET    /v1/jobs/{id}   job status document
//	GET    /v1/jobs/{id}/result  completed job's bytes (X-Parchmint-Cache outcome)
//	GET    /v1/jobs/{id}/events  live progress as Server-Sent Events
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/bench       suite catalog ({items, total}; ?prefix= filters)
//	GET    /v1/bench/{name} one benchmark's ParchMint document
//	GET    /healthz        liveness, build info, uptime
//	GET    /metrics        Prometheus text metrics (?openmetrics=1 for exemplars)
//	GET    /debug/trace    span ring buffer as Chrome trace_event JSON (?n= last n)
//	GET    /debug/requests tail-sampled request flight records (?n= last n)
//	GET    /debug/requests/{id}  one flight record with its span tree
//
// Every request carries W3C trace context: an inbound traceparent header
// is continued (same trace-id, fresh span-id), a missing or malformed one
// is replaced by a fresh root, and the resulting traceparent is echoed on
// the response and stamped into spans, logs, error bodies, job journal
// records, and flight-recorder entries. Response bytes never change.
//
// With -journal, job submissions append to a JSONL transition log that is
// replayed on boot: completed jobs answer from their journaled bytes
// (a durable cache hit) and interrupted jobs re-run deterministically.
//
// With -peers/-self, the node joins a consistent-hash cluster: every
// request is sharded by its content address, requests landing on a
// non-owner take one forwarding hop to the owner (X-Parchmint-Shard names
// it, X-Parchmint-Forwarded marks the hop), cache misses probe the
// owner's cache before computing, and job submissions route to the key's
// owner so its journal is a complete handoff unit. Determinism makes all
// of it transparent: response bytes are identical wherever they compute.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/serve"
)

// flagOrDisabled maps the CLI's "0 disables" convention onto the Config's
// "negative disables, 0 means default" convention.
func flagOrDisabled(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

// flagOrNever does the same for the sampling probability: 0 on the
// command line means "never keep ordinary requests", which Config spells
// as a negative value (0 would select the default).
func flagOrNever(p float64) float64 {
	if p <= 0 {
		return -1
	}
	return p
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("j", 0, "max concurrent pipeline computations (0 = NumCPU)")
	seed := flag.Uint64("seed", serve.BaseSeedDefault, "base seed for derived per-device seeds")
	maxBody := flag.Int64("max-body", 8<<20, "request body size limit in bytes")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request pipeline timeout")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache size in bytes (0 disables caching)")
	queueDepth := flag.Int("queue-depth", 256, "max requests queued for a worker slot before shedding with 429 (0 = unbounded)")
	portFile := flag.String("port-file", "", "write the bound port number to this file (for scripts using :0)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling only; keep off on untrusted networks)")
	logFormat := flag.String("log-format", "text", "request log format: text or json")
	traceEvents := flag.Int("trace-events", 0, "span ring buffer capacity for /debug/trace (0 = default)")
	replicas := flag.Int("replicas", 0, "default annealing replica count for pnr requests (<2 = single-replica; requests may override with \"replicas\")")
	routeWorkers := flag.Int("route-workers", 0, "speculative net-search workers for routing (<2 = sequential, -1 = NumCPU; never changes response bytes)")
	flightRequests := flag.Int("flight-requests", obs.DefaultFlightRequests, "flight recorder capacity for /debug/requests (0 disables the recorder)")
	traceSample := flag.Float64("trace-sample", obs.DefaultTraceSample, "probability an ordinary request is kept by the flight recorder (errors, shed, and slow requests are always kept; 0 = only those)")
	journalPath := flag.String("journal", "", "append job transitions to this JSONL file and replay it on boot (empty = in-memory jobs only)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job execution timeout (0 = unbounded)")
	maxJobs := flag.Int("max-jobs", 0, "max retained jobs before oldest terminal ones are evicted (0 = default)")
	peersFlag := flag.String("peers", "", "comma-separated full cluster membership as absolute URLs, including this node (empty = single-node)")
	selfFlag := flag.String("self", "", "this node's own peer URL, exactly as it appears in -peers")
	peerHealth := flag.Duration("peer-health", 0, "peer health probe interval (0 = default 2s)")
	flag.Parse()
	if *logFormat != "text" && *logFormat != "json" {
		cli.Fatalf("parchmint-serve: -log-format must be text or json, got %q", *logFormat)
	}
	var peers []string
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	if (len(peers) > 0) != (*selfFlag != "") {
		cli.Fatalf("parchmint-serve: -peers and -self must be set together")
	}
	if len(peers) > 0 {
		if err := cluster.ValidateMembership(*selfFlag, peers); err != nil {
			cli.Fatalf("parchmint-serve: %v", err)
		}
	}

	var journal *job.Journal
	if *journalPath != "" {
		var err error
		journal, err = job.OpenJournal(*journalPath)
		if err != nil {
			cli.Fatalf("parchmint-serve: %v", err)
		}
		defer journal.Close()
		for _, d := range journal.DroppedLines() {
			fmt.Fprintf(os.Stderr, "parchmint-serve: journal %s: skipped unparseable line %d: %s\n", *journalPath, d.Line, d.Reason)
		}
	}

	s := serve.New(serve.Config{
		Workers:            *workers,
		BaseSeed:           *seed,
		MaxBodyBytes:       *maxBody,
		RequestTimeout:     *timeout,
		CacheBytes:         *cacheBytes,
		QueueDepth:         *queueDepth,
		Logger:             obs.NewLogger(*logFormat, os.Stderr),
		TraceEvents:        *traceEvents,
		Replicas:           *replicas,
		RouteWorkers:       *routeWorkers,
		Journal:            journal,
		JobTimeout:         *jobTimeout,
		MaxJobs:            *maxJobs,
		FlightRequests:     flagOrDisabled(*flightRequests),
		TraceSample:        flagOrNever(*traceSample),
		Peers:              peers,
		Self:               *selfFlag,
		PeerHealthInterval: *peerHealth,
	})
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fatalf("parchmint-serve: %v", err)
	}
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portFile, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			cli.Fatalf("parchmint-serve: writing port file: %v", err)
		}
	}

	handler := s.Handler()
	if *pprofFlag {
		// Profiling endpoints ride on the same listener so the hot paths
		// can be profiled in situ under real request load; the service
		// handler keeps everything that is not /debug/pprof/.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "parchmint-serve: listening on %s (workers=%d seed=%d)\n",
		ln.Addr(), *workers, *seed)

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cli.Fatalf("parchmint-serve: %v", err)
		}
	case <-ctx.Done():
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			cli.Fatalf("parchmint-serve: shutdown: %v", err)
		}
	}
}
