// Command parchmint-convert translates between the MINT hardware
// description language and ParchMint JSON, reporting any fidelity notes
// (constructs outside the common subset) on stderr.
//
// Usage:
//
//	parchmint-convert -to json device.mint -o device.json
//	parchmint-convert -to mint device.json -o device.mint
//	parchmint-convert -to mint -trace trace.json bench:planar_synthetic_1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/mint"
	"repro/internal/obs"
)

func main() {
	to := flag.String("to", "", `target format: "json" or "mint"`)
	out := flag.String("o", "", "output file (default stdout)")
	strict := flag.Bool("strict", false, "fail when the conversion is lossy")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON span trace to this file")
	flag.Parse()
	if flag.NArg() != 1 || (*to != "json" && *to != "mint") {
		cli.Fatalf("usage: parchmint-convert -to json|mint [-strict] [-trace FILE] [-o FILE] <input>")
	}
	src := flag.Arg(0)

	ctx, flushTrace := cli.TraceContext(context.Background(), *traceOut)
	loaded, err := cli.LoadArg(ctx, src)
	if err != nil {
		cli.Fatalf("%s: %v", src, err)
	}
	loaded.PrintNotes(os.Stderr)
	d := loaded.Device

	var data []byte
	_, sp := obs.Start(ctx, "convert."+*to)
	sp.SetAttr("device", d.Name)
	switch *to {
	case "json":
		data, err = core.Marshal(d)
		if err != nil {
			cli.Fatalf("%v", err)
		}
	case "mint":
		f, fid, err := mint.FromDevice(d)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		for _, n := range fid.Notes {
			fmt.Fprintf(os.Stderr, "note: %s\n", n)
		}
		if *strict && !fid.Lossless() {
			cli.Fatalf("conversion is lossy (%d notes) and -strict is set", len(fid.Notes))
		}
		data = []byte(mint.Print(f))
	}
	sp.End()
	if err := flushTrace(); err != nil {
		cli.Fatalf("trace: %v", err)
	}
	if err := cli.WriteOutput(*out, data); err != nil {
		cli.Fatalf("%v", err)
	}
}
