// Command parchmint-convert translates between the MINT hardware
// description language and ParchMint JSON, reporting any fidelity notes
// (constructs outside the common subset) on stderr.
//
// Usage:
//
//	parchmint-convert -to json device.mint -o device.json
//	parchmint-convert -to mint device.json -o device.mint
//	parchmint-convert -to mint bench:planar_synthetic_1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/mint"
)

func main() {
	to := flag.String("to", "", `target format: "json" or "mint"`)
	out := flag.String("o", "", "output file (default stdout)")
	strict := flag.Bool("strict", false, "fail when the conversion is lossy")
	flag.Parse()
	if flag.NArg() != 1 || (*to != "json" && *to != "mint") {
		cli.Fatalf("usage: parchmint-convert -to json|mint [-strict] [-o FILE] <input>")
	}
	src := flag.Arg(0)

	loaded, err := cli.LoadArg(context.Background(), src)
	if err != nil {
		cli.Fatalf("%s: %v", src, err)
	}
	loaded.PrintNotes(os.Stderr)
	d := loaded.Device

	var data []byte
	switch *to {
	case "json":
		data, err = core.Marshal(d)
		if err != nil {
			cli.Fatalf("%v", err)
		}
	case "mint":
		f, fid, err := mint.FromDevice(d)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		for _, n := range fid.Notes {
			fmt.Fprintf(os.Stderr, "note: %s\n", n)
		}
		if *strict && !fid.Lossless() {
			cli.Fatalf("conversion is lossy (%d notes) and -strict is set", len(fid.Notes))
		}
		data = []byte(mint.Print(f))
	}
	if err := cli.WriteOutput(*out, data); err != nil {
		cli.Fatalf("%v", err)
	}
}
