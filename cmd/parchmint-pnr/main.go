// Command parchmint-pnr runs the full physical design flow — placement
// then routing — on a ParchMint device and writes the feature-annotated
// result. The stage metrics (HPWL, area, completion, channel length) print
// to stderr so the JSON output stays pipeable.
//
// Usage:
//
//	parchmint-pnr bench:aquaflex_3b -o placed.json
//	parchmint-pnr -placer greedy -router lee device.json
//	parchmint-pnr -seed 7 -utilization 0.25 bench:planar_synthetic_2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/route"
)

func main() {
	placerName := flag.String("placer", "anneal", "placement engine: greedy, force, anneal")
	routerName := flag.String("router", "astar", "routing engine: lee, astar, hadlock")
	seed := flag.Uint64("seed", 1, "seed for randomized stages")
	utilization := flag.Float64("utilization", 0, "die utilization (0 = default)")
	ordering := flag.String("order", "", "net order: short-first, long-first, as-given")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Fatalf("usage: parchmint-pnr [flags] <file.json|bench:NAME|->")
	}

	placer, err := placerByName(*placerName)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	router, err := routerByName(*routerName)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	d, err := cli.LoadDevice(flag.Arg(0))
	if err != nil {
		cli.Fatalf("%s: %v", flag.Arg(0), err)
	}

	res, err := pnr.Run(d, pnr.Options{
		Placer: placer,
		Router: router,
		Place:  place.Options{Seed: *seed, Utilization: *utilization},
		Route:  route.Options{Ordering: route.Order(*ordering)},
	})
	if err != nil {
		cli.Fatalf("%v", err)
	}

	fmt.Fprintf(os.Stderr, "placement (%s): HPWL %d um, area %.2f mm2\n",
		placer.Name(), res.PlaceMetrics.HPWL, float64(res.PlaceMetrics.Area)/1e6)
	fmt.Fprintf(os.Stderr, "routing (%s): %d/%d nets (%.1f%%), %d um channel, %d expansions, %d rounds\n",
		router.Name(), res.RouteReport.Routed(), res.RouteReport.Total(),
		100*res.RouteReport.CompletionRate(), res.RouteReport.TotalLength(),
		res.RouteReport.TotalExpansions(), res.RouteReport.Rounds)

	data, err := core.Marshal(res.Device)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	if err := cli.WriteOutput(*out, data); err != nil {
		cli.Fatalf("%v", err)
	}
}

func placerByName(name string) (place.Placer, error) {
	for _, e := range place.Engines() {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("unknown placer %q (greedy, force, anneal)", name)
}

func routerByName(name string) (route.Router, error) {
	for _, e := range route.Engines() {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("unknown router %q (lee, astar, hadlock)", name)
}
