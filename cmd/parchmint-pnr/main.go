// Command parchmint-pnr runs the full physical design flow — placement
// then routing — on a ParchMint device and writes the feature-annotated
// result. The stage metrics (HPWL, area, completion, channel length) print
// to stderr so the JSON output stays pipeable.
//
// Usage:
//
//	parchmint-pnr bench:aquaflex_3b -o placed.json
//	parchmint-pnr -placer greedy -router lee device.json
//	parchmint-pnr -seed 7 -utilization 0.25 bench:planar_synthetic_2
//	parchmint-pnr -trace trace.json -o /dev/null bench:rotary_pcr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/route"
)

func main() {
	placerName := flag.String("placer", "anneal", "placement engine: greedy, force, anneal")
	routerName := flag.String("router", "astar", "routing engine: lee, astar, hadlock")
	seed := flag.Uint64("seed", 1, "seed for randomized stages")
	utilization := flag.Float64("utilization", 0, "die utilization (0 = default)")
	ordering := flag.String("order", "", "net order: short-first, long-first, as-given")
	replicas := flag.Int("replicas", 0, "parallel-tempering replicas for the annealer (<2 = single-replica)")
	routeWorkers := flag.Int("route-workers", 0, "speculative net-search workers (<2 = sequential, -1 = NumCPU; output is identical at any width)")
	out := flag.String("o", "", "output file (default stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the flow to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the flow) to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON span trace of the flow to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Fatalf("usage: parchmint-pnr [flags] <file.json|bench:NAME|->")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			cli.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			cli.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	placer, err := place.EngineByName(*placerName)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	router, err := route.EngineByName(*routerName)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	ctx, flushTrace := cli.TraceContext(context.Background(), *traceOut)
	loaded, err := cli.LoadArg(ctx, flag.Arg(0))
	if err != nil {
		cli.Fatalf("%s: %v", flag.Arg(0), err)
	}
	loaded.PrintNotes(os.Stderr)

	opts := []pnr.Option{
		pnr.WithPlacer(placer),
		pnr.WithRouter(router),
		pnr.WithSeed(*seed),
		pnr.WithOrdering(route.Order(*ordering)),
		pnr.WithReplicas(*replicas),
		pnr.WithParallelNets(*routeWorkers),
	}
	if *utilization > 0 {
		opts = append(opts, pnr.WithUtilization(*utilization))
	}
	res, err := pnr.RunContext(ctx, loaded.Device, pnr.NewOptions(opts...))
	if err != nil {
		cli.Fatalf("%v", err)
	}
	if err := flushTrace(); err != nil {
		cli.Fatalf("trace: %v", err)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			cli.Fatalf("memprofile: %v", err)
		}
		runtime.GC() // settle the heap so the profile shows retained allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			cli.Fatalf("memprofile: %v", err)
		}
		f.Close()
	}

	fmt.Fprintf(os.Stderr, "placement (%s): HPWL %d um, area %.2f mm2\n",
		placer.Name(), res.PlaceMetrics.HPWL, float64(res.PlaceMetrics.Area)/1e6)
	fmt.Fprintf(os.Stderr, "routing (%s): %d/%d nets (%.1f%%), %d um channel, %d expansions, %d rounds\n",
		router.Name(), res.RouteReport.Routed(), res.RouteReport.Total(),
		100*res.RouteReport.CompletionRate(), res.RouteReport.TotalLength(),
		res.RouteReport.TotalExpansions(), res.RouteReport.Rounds)

	data, err := core.Marshal(res.Device)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	if err := cli.WriteOutput(*out, data); err != nil {
		cli.Fatalf("%v", err)
	}
}
