// Command parchmint-stats prints the characterization profile of one or
// more devices: size counts, entity distribution, degree statistics, and
// connectivity — the per-device view of the suite characterization table.
//
// Usage:
//
//	parchmint-stats device.json
//	parchmint-stats bench:rotary_pcr bench:aquaflex_3b
//	parchmint-stats -suite
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	suite := flag.Bool("suite", false, "profile every suite benchmark")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON span trace to this file")
	flag.Parse()
	srcs := flag.Args()
	if *suite {
		for _, name := range bench.Names() {
			srcs = append(srcs, "bench:"+name)
		}
	}
	if len(srcs) == 0 {
		cli.Fatalf("usage: parchmint-stats [-suite] [-trace FILE] <file.json|bench:NAME|-> ...")
	}
	ctx, flushTrace := cli.TraceContext(context.Background(), *traceOut)
	for _, src := range srcs {
		loaded, err := cli.LoadArg(ctx, src)
		if err != nil {
			cli.Fatalf("%s: %v", src, err)
		}
		loaded.PrintNotes(os.Stderr)
		d := loaded.Device
		printProfile(ctx, d)
	}
	if err := flushTrace(); err != nil {
		cli.Fatalf("trace: %v", err)
	}
}

func printProfile(ctx context.Context, d *core.Device) {
	_, sp := obs.Start(ctx, "stats.profile")
	sp.SetAttr("device", d.Name)
	p := stats.ProfileDevice(d, "")
	g := netlist.Build(d)
	sp.End()
	fmt.Printf("device %q\n", d.Name)
	fmt.Printf("  layers           %d\n", p.Layers)
	fmt.Printf("  components       %d\n", p.Components)
	fmt.Printf("  connections      %d (%d multi-sink)\n", p.Connections, p.MultiSink)
	fmt.Printf("  io ports         %d\n", p.Ports)
	fmt.Printf("  valves+pumps     %d\n", p.Valves)
	fmt.Printf("  degree           avg %.2f, max %d\n", p.AvgDegree, p.MaxDegree)
	fmt.Printf("  diameter         %d hops\n", p.Diameter)
	fmt.Printf("  connected        %v (%d classes)\n", g.IsConnected(), len(g.ConnectedComponents()))
	if arts := g.ArticulationPoints(); len(arts) > 0 {
		fmt.Printf("  cut components   %d: %v\n", len(arts), arts)
	} else {
		fmt.Printf("  cut components   none (2-connected)\n")
	}
	if d.HasFeatures() {
		fmt.Printf("  features         %d (physical geometry present)\n", len(d.Features))
	}
	counts := g.EntityCounts()
	entities := make([]string, 0, len(counts))
	for e := range counts {
		entities = append(entities, e)
	}
	sort.Strings(entities)
	fmt.Printf("  entities:\n")
	for _, e := range entities {
		fmt.Printf("    %-18s %d\n", e, counts[e])
	}
	fmt.Println()
}
