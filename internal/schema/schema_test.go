package schema

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// validDoc is a minimal structurally valid ParchMint document.
const validDoc = `{
  "name": "doc",
  "layers": [{"id": "flow", "name": "flow", "type": "FLOW"}],
  "components": [{
    "id": "p1", "name": "p1", "entity": "PORT", "layers": ["flow"],
    "x-span": 200, "y-span": 200,
    "ports": [{"label": "port1", "layer": "flow", "x": 100, "y": 100}]
  }],
  "connections": [{
    "id": "c1", "name": "c1", "layer": "flow",
    "source": {"component": "p1", "port": "port1"},
    "sinks": [{"component": "p1"}]
  }]
}`

func TestValidDocument(t *testing.T) {
	r := Check([]byte(validDoc))
	if !r.OK() {
		t.Fatalf("valid document rejected:\n%s", r)
	}
	if got := r.String(); got != "schema: ok" {
		t.Errorf("String = %q", got)
	}
}

func TestCoreOutputPassesSchema(t *testing.T) {
	// Whatever the typed encoder emits must satisfy the structural checker.
	b := core.NewBuilder("emitted")
	flow := b.FlowLayer()
	b.IOPort("in", flow, 200)
	b.IOPort("out", flow, 200)
	b.Connect("c1", flow, "in.port1", "out.port1")
	b.Param("channelWidth", 100)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := core.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	r := Check(data)
	if !r.OK() {
		t.Fatalf("encoder output fails schema:\n%s\n%s", r, data)
	}
}

// expectIssue checks that doc produces an issue whose path contains
// pathFrag and message contains msgFrag.
func expectIssue(t *testing.T, doc, pathFrag, msgFrag string) {
	t.Helper()
	r := Check([]byte(doc))
	for _, i := range r.Issues {
		if strings.Contains(i.Path, pathFrag) && strings.Contains(i.Message, msgFrag) {
			return
		}
	}
	t.Errorf("no issue at %q mentioning %q; got:\n%s", pathFrag, msgFrag, r)
}

func TestNotJSON(t *testing.T) {
	expectIssue(t, `{{{`, "/", "not valid JSON")
}

func TestNonObjectRoot(t *testing.T) {
	expectIssue(t, `[1,2,3]`, "/", "must be a JSON object")
	expectIssue(t, `"hello"`, "/", "must be a JSON object")
}

func TestMissingRequiredArrays(t *testing.T) {
	expectIssue(t, `{"name":"d"}`, "/layers", "missing")
	expectIssue(t, `{"name":"d"}`, "/components", "missing")
	expectIssue(t, `{"name":"d"}`, "/connections", "missing")
}

func TestMissingName(t *testing.T) {
	expectIssue(t, `{"layers":[],"components":[],"connections":[]}`, "/name", "missing")
}

func TestEmptyName(t *testing.T) {
	expectIssue(t, `{"name":"","layers":[],"components":[],"connections":[]}`, "/name", "empty")
}

func TestUnknownTopLevelKey(t *testing.T) {
	expectIssue(t, `{"name":"d","layers":[],"components":[],"connections":[],"bogus":1}`,
		"/bogus", "unknown")
}

func TestArrayTypeErrors(t *testing.T) {
	expectIssue(t, `{"name":"d","layers":42,"components":[],"connections":[]}`,
		"/layers", "must be an array")
	expectIssue(t, `{"name":"d","layers":[7],"components":[],"connections":[]}`,
		"/layers/0", "must be an object")
}

func TestLayerChecks(t *testing.T) {
	doc := `{"name":"d","components":[],"connections":[],
		"layers":[{"id":"l","name":"l","type":"SIDEWAYS"}]}`
	expectIssue(t, doc, "/layers/0/type", "FLOW or CONTROL")

	doc = `{"name":"d","components":[],"connections":[],"layers":[{"name":"l"}]}`
	expectIssue(t, doc, "/layers/0/id", "missing")
}

func TestComponentChecks(t *testing.T) {
	base := `{"name":"d","layers":[],"connections":[],"components":[%s]}`
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","entity":"PORT","layers":["f"],"y-span":1,"ports":[]}`, 1),
		"/components/0/x-span", "missing")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","entity":"PORT","layers":["f"],"x-span":1.5,"y-span":1,"ports":[]}`, 1),
		"/components/0/x-span", "integer")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","entity":"PORT","layers":"f","x-span":1,"y-span":1,"ports":[]}`, 1),
		"/components/0/layers", "must be an array")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","entity":"PORT","layers":[3],"x-span":1,"y-span":1,"ports":[]}`, 1),
		"/components/0/layers/0", "must be a string")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","entity":"PORT","layers":["f"],"x-span":1,"y-span":1}`, 1),
		"/components/0/ports", "missing")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","entity":"PORT","layers":["f"],"x-span":1,"y-span":1,"ports":[{"label":"p","layer":"f","x":"far","y":0}]}`, 1),
		"/components/0/ports/0/x", "must be a number")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","entity":"PORT","layers":["f"],"x-span":1,"y-span":1,"ports":["p"]}`, 1),
		"/components/0/ports/0", "must be an object")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","layers":["f"],"x-span":1,"y-span":1,"ports":[]}`, 1),
		"/components/0/entity", "missing")
}

func TestConnectionChecks(t *testing.T) {
	base := `{"name":"d","layers":[],"components":[],"connections":[%s]}`
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","layer":"f","sinks":[]}`, 1),
		"/connections/0/source", "missing")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","layer":"f","source":{"component":"a"}}`, 1),
		"/connections/0/sinks", "missing")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","layer":"f","source":"a","sinks":[]}`, 1),
		"/connections/0/source", "must be an object")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","layer":"f","source":{"component":"a"},"sinks":[{"port":"p"}]}`, 1),
		"/connections/0/sinks/0/component", "missing")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","layer":"f","source":{"component":"a","port":9},"sinks":[]}`, 1),
		"/connections/0/source/port", "must be a string")
	expectIssue(t, strings.Replace(base, "%s", `{"id":"c","name":"c","layer":"f","source":{"component":"a"},"sinks":"x"}`, 1),
		"/connections/0/sinks", "must be an array")
}

func TestFeatureChecks(t *testing.T) {
	base := `{"name":"d","layers":[],"components":[],"connections":[],"features":[%s]}`
	// Component feature missing location.
	expectIssue(t, strings.Replace(base, "%s", `{"id":"f","name":"f","layer":"l","x-span":1,"y-span":1,"depth":1}`, 1),
		"/features/0/location", "missing")
	// Channel feature missing endpoints.
	expectIssue(t, strings.Replace(base, "%s", `{"id":"f","name":"f","layer":"l","connection":"c","width":10,"depth":1}`, 1),
		"/features/0/source", "missing")
	// Channel recognized via type tag alone — then "connection" is required.
	expectIssue(t, strings.Replace(base, "%s", `{"id":"f","name":"f","layer":"l","type":"channel","width":10,"source":{"x":0,"y":0},"sink":{"x":1,"y":0},"depth":1}`, 1),
		"/features/0/connection", "missing")
	// Point with non-integer coordinate.
	expectIssue(t, strings.Replace(base, "%s", `{"id":"f","name":"f","layer":"l","location":{"x":0.25,"y":0},"x-span":1,"y-span":1,"depth":1}`, 1),
		"/features/0/location/x", "integer")
	// Point that is not an object.
	expectIssue(t, strings.Replace(base, "%s", `{"id":"f","name":"f","layer":"l","location":[0,0],"x-span":1,"y-span":1,"depth":1}`, 1),
		"/features/0/location", "must be an object")
}

func TestParamsChecks(t *testing.T) {
	expectIssue(t, `{"name":"d","layers":[],"components":[],"connections":[],"params":7}`,
		"/params", "must be an object")
	expectIssue(t, `{"name":"d","layers":[],"components":[],"connections":[],"params":{"w":"wide"}}`,
		"/params/w", "must be a number")
	r := Check([]byte(`{"name":"d","layers":[],"components":[],"connections":[],"params":{"w":10.5}}`))
	if !r.OK() {
		t.Errorf("fractional params are legal:\n%s", r)
	}
}

func TestIssueString(t *testing.T) {
	i := Issue{Path: "/x", Message: "boom"}
	if i.String() != "/x: boom" {
		t.Errorf("Issue.String = %q", i.String())
	}
	r := &Result{Issues: []Issue{i}}
	if !strings.Contains(r.String(), "1 issue") {
		t.Errorf("Result.String = %q", r.String())
	}
}

func TestTypeNames(t *testing.T) {
	cases := map[string]any{
		"null": nil, "boolean": true, "number": 1.5,
		"string": "s", "array": []any{}, "object": map[string]any{},
	}
	for want, v := range cases {
		if got := typeName(v); got != want {
			t.Errorf("typeName(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestV12Checks(t *testing.T) {
	// Valid v1.2 document passes.
	valid := `{
	  "name": "d", "layers": [], "components": [], "connections": [{
	    "id": "c", "name": "c", "layer": "f",
	    "source": {"component": "a"}, "sinks": [{"component": "b"}],
	    "paths": [{"source": {"x":0,"y":0}, "sink": {"x":10,"y":0},
	               "wayPoints": [[5, 0]]}]
	  }],
	  "valveMap": {"v1": "c"},
	  "valveTypeMap": {"v1": "NORMALLY_OPEN"}
	}`
	if r := Check([]byte(valid)); !r.OK() {
		t.Fatalf("valid v1.2 rejected:\n%s", r)
	}

	base := `{"name":"d","layers":[],"components":[],"connections":[],%s}`
	expectIssue(t, strings.Replace(base, "%s", `"valveMap": 7`, 1),
		"/valveMap", "must be an object")
	expectIssue(t, strings.Replace(base, "%s", `"valveMap": {"v1": 7}`, 1),
		"/valveMap/v1", "must be a string")
	expectIssue(t, strings.Replace(base, "%s", `"valveTypeMap": {"v1": "SIDEWAYS"}`, 1),
		"/valveTypeMap/v1", "unknown value")

	connBase := `{"name":"d","layers":[],"components":[],"connections":[{
	  "id":"c","name":"c","layer":"f","source":{"component":"a"},"sinks":[],%s}]}`
	expectIssue(t, strings.Replace(connBase, "%s", `"paths": 9`, 1),
		"/connections/0/paths", "must be an array")
	expectIssue(t, strings.Replace(connBase, "%s", `"paths": [7]`, 1),
		"/connections/0/paths/0", "must be an object")
	expectIssue(t, strings.Replace(connBase, "%s", `"paths": [{"sink":{"x":0,"y":0}}]`, 1),
		"/connections/0/paths/0/source", "missing")
	expectIssue(t, strings.Replace(connBase, "%s",
		`"paths": [{"source":{"x":0,"y":0},"sink":{"x":1,"y":0},"wayPoints":[[1]]}]`, 1),
		"wayPoints/0", "pair")
	expectIssue(t, strings.Replace(connBase, "%s",
		`"paths": [{"source":{"x":0,"y":0},"sink":{"x":1,"y":0},"wayPoints":[[0.5, 1]]}]`, 1),
		"wayPoints/0", "integers")

	compBase := `{"name":"d","layers":[],"connections":[],"components":[{
	  "id":"c","name":"c","entity":"PORT","layers":["f"],"x-span":1,"y-span":1,"ports":[],%s}]}`
	expectIssue(t, strings.Replace(compBase, "%s", `"params": {"rot": "east"}`, 1),
		"/components/0/params/rot", "must be a number")
}
