// Package schema performs structural validation of raw ParchMint JSON —
// the checks a JSON-Schema document would express — before the bytes are
// decoded into the typed model. It catches the class of interchange errors
// the typed decoder either tolerates silently (missing required keys become
// zero values) or reports poorly (a type error half-way through a stream).
//
// Structural checks run on the generic JSON tree, so they can report every
// problem in a file at once with a JSON-pointer-like path to each.
package schema

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Issue is one structural problem in a ParchMint document.
type Issue struct {
	// Path is a JSON-pointer-like location, e.g. "/components/3/x-span".
	Path string
	// Message says what is wrong there.
	Message string
}

// String renders "path: message".
func (i Issue) String() string { return i.Path + ": " + i.Message }

// Result collects the issues found in one document.
type Result struct {
	Issues []Issue
}

// OK reports whether the document is structurally valid.
func (r *Result) OK() bool { return len(r.Issues) == 0 }

// String renders all issues, one per line.
func (r *Result) String() string {
	if r.OK() {
		return "schema: ok"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "schema: %d issue(s)\n", len(r.Issues))
	for _, i := range r.Issues {
		sb.WriteString("  ")
		sb.WriteString(i.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (r *Result) addf(path, format string, args ...any) {
	r.Issues = append(r.Issues, Issue{Path: path, Message: fmt.Sprintf(format, args...)})
}

// Check parses data as JSON and validates it against the ParchMint v1
// structure. A parse failure is reported as a single issue at "/".
func Check(data []byte) *Result {
	r := &Result{}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		r.addf("/", "not valid JSON: %v", err)
		return r
	}
	root, ok := doc.(map[string]any)
	if !ok {
		r.addf("/", "document must be a JSON object, got %s", typeName(doc))
		return r
	}
	c := checker{result: r}
	c.checkRoot(root)
	return r
}

type checker struct {
	result *Result
}

// knownRootKeys are the keys a v1 document may carry.
var knownRootKeys = map[string]bool{
	"name": true, "layers": true, "components": true, "connections": true,
	"features": true, "params": true, "version": true,
	"valveMap": true, "valveTypeMap": true,
}

func (c *checker) checkRoot(root map[string]any) {
	c.requireString(root, "/", "name")
	for _, key := range []string{"layers", "components", "connections"} {
		if _, ok := root[key]; !ok {
			c.result.addf("/"+key, "required array is missing")
		}
	}
	for key := range root {
		if !knownRootKeys[key] {
			c.result.addf("/"+key, "unknown top-level key")
		}
	}
	c.eachObject(root, "layers", c.checkLayer)
	c.eachObject(root, "components", c.checkComponent)
	c.eachObject(root, "connections", c.checkConnection)
	c.eachObject(root, "features", c.checkFeature)
	if v, ok := root["params"]; ok {
		c.checkParams("/params", v)
	}
	if v, ok := root["valveMap"]; ok {
		c.checkStringMap("/valveMap", v, nil)
	}
	if v, ok := root["valveTypeMap"]; ok {
		c.checkStringMap("/valveTypeMap", v, map[string]bool{
			"NORMALLY_OPEN": true, "NORMALLY_CLOSED": true,
		})
	}
}

// checkStringMap demands an object with string values, optionally drawn
// from an allowed set.
func (c *checker) checkStringMap(path string, v any, allowed map[string]bool) {
	obj, ok := v.(map[string]any)
	if !ok {
		c.result.addf(path, "must be an object, got %s", typeName(v))
		return
	}
	for k, mv := range obj {
		s, isStr := mv.(string)
		if !isStr {
			c.result.addf(path+"/"+k, "must be a string, got %s", typeName(mv))
			continue
		}
		if allowed != nil && !allowed[s] {
			c.result.addf(path+"/"+k, "unknown value %q", s)
		}
	}
}

// eachObject applies fn to each element of root[key] when that key is an
// array; non-array and non-object elements are reported.
func (c *checker) eachObject(root map[string]any, key string, fn func(path string, obj map[string]any)) {
	v, ok := root[key]
	if !ok {
		return
	}
	arr, ok := v.([]any)
	if !ok {
		c.result.addf("/"+key, "must be an array, got %s", typeName(v))
		return
	}
	for i, el := range arr {
		path := fmt.Sprintf("/%s/%d", key, i)
		obj, ok := el.(map[string]any)
		if !ok {
			c.result.addf(path, "must be an object, got %s", typeName(el))
			continue
		}
		fn(path, obj)
	}
}

func (c *checker) checkLayer(path string, obj map[string]any) {
	c.requireString(obj, path, "id")
	c.requireString(obj, path, "name")
	if t, ok := obj["type"]; ok {
		if s, isStr := t.(string); !isStr {
			c.result.addf(path+"/type", "must be a string, got %s", typeName(t))
		} else if s != "FLOW" && s != "CONTROL" {
			c.result.addf(path+"/type", "should be FLOW or CONTROL, got %q", s)
		}
	}
}

func (c *checker) checkComponent(path string, obj map[string]any) {
	c.requireString(obj, path, "id")
	c.requireString(obj, path, "name")
	c.requireString(obj, path, "entity")
	c.requireStringArray(obj, path, "layers")
	c.requireInteger(obj, path, "x-span")
	c.requireInteger(obj, path, "y-span")
	if v, ok := obj["params"]; ok {
		c.checkParams(path+"/params", v)
	}
	ports, ok := obj["ports"]
	if !ok {
		c.result.addf(path+"/ports", "required array is missing")
		return
	}
	arr, ok := ports.([]any)
	if !ok {
		c.result.addf(path+"/ports", "must be an array, got %s", typeName(ports))
		return
	}
	for i, el := range arr {
		ppath := fmt.Sprintf("%s/ports/%d", path, i)
		p, ok := el.(map[string]any)
		if !ok {
			c.result.addf(ppath, "must be an object, got %s", typeName(el))
			continue
		}
		c.requireString(p, ppath, "label")
		c.requireString(p, ppath, "layer")
		c.requireInteger(p, ppath, "x")
		c.requireInteger(p, ppath, "y")
	}
}

func (c *checker) checkConnection(path string, obj map[string]any) {
	c.requireString(obj, path, "id")
	c.requireString(obj, path, "name")
	c.requireString(obj, path, "layer")
	src, ok := obj["source"]
	if !ok {
		c.result.addf(path+"/source", "required object is missing")
	} else {
		c.checkTarget(path+"/source", src)
	}
	if v, ok := obj["paths"]; ok {
		c.checkPaths(path+"/paths", v)
	}
	sinks, ok := obj["sinks"]
	if !ok {
		c.result.addf(path+"/sinks", "required array is missing")
		return
	}
	arr, ok := sinks.([]any)
	if !ok {
		c.result.addf(path+"/sinks", "must be an array, got %s", typeName(sinks))
		return
	}
	for i, el := range arr {
		c.checkTarget(fmt.Sprintf("%s/sinks/%d", path, i), el)
	}
}

func (c *checker) checkTarget(path string, v any) {
	obj, ok := v.(map[string]any)
	if !ok {
		c.result.addf(path, "must be an object, got %s", typeName(v))
		return
	}
	c.requireString(obj, path, "component")
	if p, ok := obj["port"]; ok {
		if _, isStr := p.(string); !isStr {
			c.result.addf(path+"/port", "must be a string, got %s", typeName(p))
		}
	}
}

// checkPaths validates the v1.2 connection "paths" array.
func (c *checker) checkPaths(path string, v any) {
	arr, ok := v.([]any)
	if !ok {
		c.result.addf(path, "must be an array, got %s", typeName(v))
		return
	}
	for i, el := range arr {
		ppath := fmt.Sprintf("%s/%d", path, i)
		obj, ok := el.(map[string]any)
		if !ok {
			c.result.addf(ppath, "must be an object, got %s", typeName(el))
			continue
		}
		c.requirePoint(obj, ppath, "source")
		c.requirePoint(obj, ppath, "sink")
		if wp, ok := obj["wayPoints"]; ok {
			wArr, isArr := wp.([]any)
			if !isArr {
				c.result.addf(ppath+"/wayPoints", "must be an array, got %s", typeName(wp))
				continue
			}
			for j, w := range wArr {
				pair, isPair := w.([]any)
				if !isPair || len(pair) != 2 {
					c.result.addf(fmt.Sprintf("%s/wayPoints/%d", ppath, j),
						"must be an [x, y] pair")
					continue
				}
				for _, coord := range pair {
					if f, isNum := coord.(float64); !isNum || f != math.Trunc(f) {
						c.result.addf(fmt.Sprintf("%s/wayPoints/%d", ppath, j),
							"coordinates must be integers")
						break
					}
				}
			}
		}
	}
}

func (c *checker) checkFeature(path string, obj map[string]any) {
	c.requireString(obj, path, "id")
	c.requireString(obj, path, "layer")
	_, isChannel := obj["connection"]
	if t, ok := obj["type"].(string); ok && t == "channel" {
		isChannel = true
	}
	if isChannel {
		c.requireString(obj, path, "connection")
		c.requireInteger(obj, path, "width")
		c.requirePoint(obj, path, "source")
		c.requirePoint(obj, path, "sink")
	} else {
		c.requirePoint(obj, path, "location")
		c.requireInteger(obj, path, "x-span")
		c.requireInteger(obj, path, "y-span")
	}
}

func (c *checker) checkParams(path string, v any) {
	obj, ok := v.(map[string]any)
	if !ok {
		c.result.addf(path, "must be an object, got %s", typeName(v))
		return
	}
	for k, pv := range obj {
		if _, isNum := pv.(float64); !isNum {
			c.result.addf(path+"/"+k, "must be a number, got %s", typeName(pv))
		}
	}
}

func (c *checker) requireString(obj map[string]any, path, key string) {
	v, ok := obj[key]
	if !ok {
		c.result.addf(path+"/"+key, "required string is missing")
		return
	}
	s, isStr := v.(string)
	if !isStr {
		c.result.addf(path+"/"+key, "must be a string, got %s", typeName(v))
		return
	}
	if s == "" {
		c.result.addf(path+"/"+key, "must not be empty")
	}
}

func (c *checker) requireStringArray(obj map[string]any, path, key string) {
	v, ok := obj[key]
	if !ok {
		c.result.addf(path+"/"+key, "required array is missing")
		return
	}
	arr, isArr := v.([]any)
	if !isArr {
		c.result.addf(path+"/"+key, "must be an array, got %s", typeName(v))
		return
	}
	for i, el := range arr {
		if _, isStr := el.(string); !isStr {
			c.result.addf(fmt.Sprintf("%s/%s/%d", path, key, i),
				"must be a string, got %s", typeName(el))
		}
	}
}

// requireInteger demands a JSON number with no fractional part: ParchMint
// coordinates are micrometers and integral by construction.
func (c *checker) requireInteger(obj map[string]any, path, key string) {
	v, ok := obj[key]
	if !ok {
		c.result.addf(path+"/"+key, "required number is missing")
		return
	}
	f, isNum := v.(float64)
	if !isNum {
		c.result.addf(path+"/"+key, "must be a number, got %s", typeName(v))
		return
	}
	if f != math.Trunc(f) {
		c.result.addf(path+"/"+key, "must be an integer number of micrometers, got %v", f)
	}
}

func (c *checker) requirePoint(obj map[string]any, path, key string) {
	v, ok := obj[key]
	if !ok {
		c.result.addf(path+"/"+key, "required point is missing")
		return
	}
	p, isObj := v.(map[string]any)
	if !isObj {
		c.result.addf(path+"/"+key, "must be an object, got %s", typeName(v))
		return
	}
	c.requireInteger(p, path+"/"+key, "x")
	c.requireInteger(p, path+"/"+key, "y")
}

// typeName names a decoded JSON value's type for error messages.
func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	default:
		return fmt.Sprintf("%T", v)
	}
}
