package pnr

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/place"
)

// stageCounter counts Observe calls per stage, so the exactly-once
// contract is checkable on both the success and the cancellation path.
type stageCounter struct {
	mu sync.Mutex
	n  map[string]int
}

func (sc *stageCounter) hook() func(stage string, d time.Duration) {
	return func(stage string, d time.Duration) {
		sc.mu.Lock()
		defer sc.mu.Unlock()
		if sc.n == nil {
			sc.n = make(map[string]int)
		}
		sc.n[stage]++
	}
}

func (sc *stageCounter) count(stage string) int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.n[stage]
}

// cancellingPlacer cancels its own request mid-placement.
type cancellingPlacer struct{ cancel context.CancelFunc }

func (cancellingPlacer) Name() string { return "cancelling" }

func (p cancellingPlacer) Place(ctx context.Context, d *core.Device, o place.Options) (*place.Placement, error) {
	p.cancel()
	return nil, ctx.Err()
}

// cancellingRouter cancels its own request on the first search.
type cancellingRouter struct{ cancel context.CancelFunc }

func (cancellingRouter) Name() string { return "cancelling" }

func (r cancellingRouter) Search(ctx context.Context, g *geom.Grid, sources []geom.Cell, target geom.Cell) ([]geom.Cell, int, bool) {
	r.cancel()
	return nil, 0, false
}

func TestObserveExactlyOnceOnSuccess(t *testing.T) {
	b, err := bench.ByName("rotary_pcr")
	if err != nil {
		t.Fatal(err)
	}
	var sc stageCounter
	if _, err := RunContext(context.Background(), b.Build(),
		NewOptions(WithSeed(7), WithObserver(sc.hook()))); err != nil {
		t.Fatal(err)
	}
	for _, stage := range Stages() {
		if got := sc.count(stage); got != 1 {
			t.Errorf("stage %q observed %d times, want 1", stage, got)
		}
	}
}

func TestObserveExactlyOnceOnPlaceCancel(t *testing.T) {
	b, err := bench.ByName("rotary_pcr")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sc stageCounter
	_, err = RunContext(ctx, b.Build(), NewOptions(WithObserver(sc.hook()),
		WithPlacer(cancellingPlacer{cancel: cancel})))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	// The aborted place stage reports its partial duration exactly once;
	// the stages never started report nothing.
	if got := sc.count(StagePlace); got != 1 {
		t.Errorf("cancelled place stage observed %d times, want 1", got)
	}
	if got := sc.count(StageRoute); got != 0 {
		t.Errorf("unreached route stage observed %d times, want 0", got)
	}
	if got := sc.count(StageAttach); got != 0 {
		t.Errorf("unreached attach stage observed %d times, want 0", got)
	}
}

func TestObserveExactlyOnceOnRouteCancel(t *testing.T) {
	b, err := bench.ByName("rotary_pcr")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sc stageCounter
	_, err = RunContext(ctx, b.Build(), NewOptions(WithObserver(sc.hook()),
		WithPlacer(place.Greedy{}), WithRouter(cancellingRouter{cancel: cancel})))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if got := sc.count(StagePlace); got != 1 {
		t.Errorf("place stage observed %d times, want 1", got)
	}
	if got := sc.count(StageRoute); got != 1 {
		t.Errorf("cancelled route stage observed %d times, want 1", got)
	}
	if got := sc.count(StageAttach); got != 0 {
		t.Errorf("unreached attach stage observed %d times, want 0", got)
	}
}

// encode renders a result's device in wire form for byte comparison.
func encodeDevice(t *testing.T, d *core.Device) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestOutputsByteIdenticalWithTracing(t *testing.T) {
	b, err := bench.ByName("aquaflex_3b")
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions(WithSeed(2018))
	plain, err := RunContext(context.Background(), b.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer(0)
	reg := obs.NewRegistry()
	ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(tracer, reg, nil))
	traced, err := RunContext(ctx, b.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(encodeDevice(t, plain.Device), encodeDevice(t, traced.Device)) {
		t.Errorf("device output diverges with tracing enabled")
	}
	if plain.PlaceMetrics != traced.PlaceMetrics {
		t.Errorf("placement metrics diverge with tracing: %+v vs %+v",
			plain.PlaceMetrics, traced.PlaceMetrics)
	}
	if plain.RouteReport.TotalExpansions() != traced.RouteReport.TotalExpansions() {
		t.Errorf("route expansions diverge with tracing: %d vs %d",
			plain.RouteReport.TotalExpansions(), traced.RouteReport.TotalExpansions())
	}

	// The traced run recorded the flow's stage spans...
	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckTrace(buf.Bytes(), "pnr.flow", "place.anneal", "route.astar", "pnr.attach"); err != nil {
		t.Errorf("trace: %v", err)
	}
	// ...and the algorithm metrics flowed into the registry.
	var scrape bytes.Buffer
	reg.WritePrometheus(&scrape)
	for _, needle := range []string{
		"parchmint_anneal_moves_total",
		`parchmint_route_expansions_total{engine="astar"}`,
		`parchmint_route_pushes_total{engine="astar"}`,
	} {
		if !bytes.Contains(scrape.Bytes(), []byte(needle)) {
			t.Errorf("metrics scrape missing %s:\n%s", needle, scrape.String())
		}
	}
}
