package pnr

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/par"
)

// The determinism hammer pins the parallel PnR contract end to end: for a
// fixed (device, options, seed, replica count), the flow's artifact is
// byte-identical whether the replicas and net searches run wide, run under
// a starved CPU budget, or run strictly sequentially — and not just the
// artifact: the search-effort counters (anneal moves, maze expansions)
// must match too, because the contract is "same computation, reordered",
// not "equivalent result".
//
// Matrix size is calibrated against measured flow cost (the two largest
// synthetics cost 1.8 s and 5.5 s per run):
//
//   - default `go test`: small/medium devices, replicas {1,2,4,8}
//   - `-short` (make hammer / make check, under -race): small devices,
//     replicas {1,4}
//   - PARCHMINT_HAMMER_FULL=1 (make hammer-full): every bench device,
//     replicas {1,2,4,8}
const hammerFullEnv = "PARCHMINT_HAMMER_FULL"

// hammerPrint is the identity a flow run is reduced to for comparison.
// Device bytes carry the placement origins and every routed path; the
// counters pin that the parallel schedules performed the same search, not
// merely an equally good one.
type hammerPrint struct {
	Device     json.RawMessage `json:"device"`
	Moves      int             `json:"moves"`
	Expansions int             `json:"expansions"`
	Routed     int             `json:"routed"`
	Length     int64           `json:"length"`
}

// hammerRun executes one flow and fingerprints it.
func hammerRun(t *testing.T, ctx context.Context, d *core.Device, opts Options) []byte {
	t.Helper()
	res, err := RunContext(ctx, d, opts)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	dev, err := core.Marshal(res.Device)
	if err != nil {
		t.Fatalf("marshal device: %v", err)
	}
	fp, err := json.Marshal(hammerPrint{
		Device:     dev,
		Moves:      res.Placement.Moves,
		Expansions: res.RouteReport.TotalExpansions(),
		Routed:     res.RouteReport.Routed(),
		Length:     res.RouteReport.TotalLength(),
	})
	if err != nil {
		t.Fatalf("marshal fingerprint: %v", err)
	}
	return fp
}

// drainedContext returns a context whose CPU budget has zero free tokens,
// which forces every parallel section in the flow down to width 1: the
// replica loop and the net searches run on the calling goroutine in plain
// program order. This is the sequential golden schedule.
func drainedContext(t *testing.T) context.Context {
	t.Helper()
	b := par.NewBudget(1)
	if b.TryAcquire(1) != 1 {
		t.Fatal("could not drain budget")
	}
	t.Cleanup(func() { b.Release(1) })
	return par.ContextWithBudget(context.Background(), b)
}

// hammerVariant is one parallel schedule that must reproduce the golden.
type hammerVariant struct {
	name string
	// budgetCap sizes the context budget: 0 = no budget (full width),
	// otherwise a budget with budgetCap-1 extra tokens.
	budgetCap int
	// routeWorkers is the speculative net-search width (0 = sequential).
	routeWorkers int
	// runs repeats the variant to catch scheduling-dependent flakiness.
	runs int
}

func (v hammerVariant) context() context.Context {
	if v.budgetCap <= 0 {
		return context.Background()
	}
	return par.ContextWithBudget(context.Background(), par.NewBudget(v.budgetCap-1))
}

// hammerMatrix picks the device list, replica counts, and variants for the
// current test mode.
func hammerMatrix(t *testing.T) (devices []string, reps []int, variants []hammerVariant) {
	t.Helper()
	variants = []hammerVariant{
		{name: "wide", budgetCap: 0, routeWorkers: 0, runs: 1},
		{name: "wide+nets", budgetCap: 0, routeWorkers: 4, runs: 2},
		{name: "budget2+nets", budgetCap: 2, routeWorkers: 8, runs: 1},
	}
	switch {
	case os.Getenv(hammerFullEnv) != "":
		for _, b := range bench.Suite() {
			devices = append(devices, b.Name)
		}
		reps = []int{1, 2, 4, 8}
	case testing.Short():
		devices = []string{"rotary_pcr", "aquaflex_3b", "hiv_diagnostics"}
		reps = []int{1, 4}
		variants = variants[1:] // keep the two widest schedules
		variants[0].runs = 1
	default:
		devices = []string{
			"rotary_pcr", "hiv_diagnostics", "aquaflex_3b",
			"molecular_gradients", "aquaflex_5a", "planar_synthetic_1",
		}
		reps = []int{1, 2, 4, 8}
	}
	return devices, reps, variants
}

// TestDeterminismHammer runs the matrix: for each device and replica
// count, compute the sequential golden under a drained budget, then
// demand that every parallel schedule — full-width replicas, speculative
// net routing, a starved two-slot budget, repeated runs — reproduces it
// byte for byte, counters included.
func TestDeterminismHammer(t *testing.T) {
	devices, reps, variants := hammerMatrix(t)
	for _, name := range devices {
		d := device(t, name)
		for _, n := range reps {
			t.Run(fmt.Sprintf("%s/replicas=%d", name, n), func(t *testing.T) {
				t.Parallel()
				golden := hammerRun(t, drainedContext(t), d,
					NewOptions(WithSeed(1), WithReplicas(n)))
				for _, v := range variants {
					opts := NewOptions(WithSeed(1), WithReplicas(n),
						WithParallelNets(v.routeWorkers))
					for run := 0; run < v.runs; run++ {
						got := hammerRun(t, v.context(), d, opts)
						if !bytes.Equal(got, golden) {
							t.Errorf("%s run %d diverged from sequential golden\n got: %.200s\nwant: %.200s",
								v.name, run, got, golden)
						}
					}
				}
			})
		}
	}
}
