package pnr

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/validate"
)

func device(t testing.TB, name string) *core.Device {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestRunDefaults(t *testing.T) {
	d := device(t, "rotary_pcr")
	res, err := Run(d, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Placement == nil || res.RouteReport == nil {
		t.Fatal("missing stage outputs")
	}
	if res.PlaceMetrics.Placed != len(d.Components) {
		t.Errorf("placed %d of %d", res.PlaceMetrics.Placed, len(d.Components))
	}
	if res.RouteReport.Router != "astar" {
		t.Errorf("default router = %q", res.RouteReport.Router)
	}
	// Output carries component features for every component plus channel
	// segments for routed nets.
	comp, chan_ := 0, 0
	for _, f := range res.Device.Features {
		switch f.Kind {
		case core.FeatureComponent:
			comp++
		case core.FeatureChannel:
			chan_++
		}
	}
	if comp != len(d.Components) {
		t.Errorf("component features = %d, want %d", comp, len(d.Components))
	}
	if chan_ == 0 {
		t.Error("no channel features attached")
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	d := device(t, "rotary_pcr")
	ref := d.Clone()
	if _, err := Run(d, Options{}); err != nil {
		t.Fatal(err)
	}
	if !core.Equal(d, ref) {
		t.Error("Run mutated its input device")
	}
}

func TestRunOutputValidates(t *testing.T) {
	d := device(t, "aquaflex_3b")
	res, err := Run(d, Options{Placer: place.Greedy{}, Router: route.Lee{}})
	if err != nil {
		t.Fatal(err)
	}
	// The feature-annotated device must still pass the full rule set,
	// including placed-feature overlap and channel feature consistency.
	r := validate.Validate(res.Device)
	if !r.OK() {
		t.Errorf("annotated device invalid:\n%s", r)
	}
}

func TestRunEngineSelection(t *testing.T) {
	d := device(t, "hiv_diagnostics")
	res, err := Run(d, Options{Placer: place.ForceDirected{}, Router: route.Hadlock{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteReport.Router != "hadlock" {
		t.Errorf("router = %q", res.RouteReport.Router)
	}
}

func TestRunRoundTripsThroughJSON(t *testing.T) {
	d := device(t, "rotary_pcr")
	res, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := core.Marshal(res.Device)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Equal(res.Device, back) {
		t.Error("annotated device does not survive JSON")
	}
}

func TestRunErrorsPropagate(t *testing.T) {
	// A device with no layers cannot be routed (empty die after placement
	// of zero components still works, but routing rejects the empty die
	// only when there are no layers... use an unplaceable device instead).
	d := &core.Device{Name: "empty"}
	if _, err := Run(d, Options{}); err == nil {
		// Empty device: placement succeeds trivially; routing gets an
		// empty-but-valid die. Accept either outcome but require
		// determinism: a second run must agree.
		if _, err2 := Run(d, Options{}); err2 != nil {
			t.Error("Run on empty device is nondeterministic")
		}
	}
}

func TestObserveHookReportsEveryStage(t *testing.T) {
	d := device(t, "rotary_pcr")
	got := map[string]time.Duration{}
	var order []string
	_, err := Run(d, Options{
		Placer: place.Greedy{},
		Router: route.AStar{},
		Observe: func(stage string, dur time.Duration) {
			got[stage] = dur
			order = append(order, stage)
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := Stages()
	if len(order) != len(want) {
		t.Fatalf("observed stages %v, want %v", order, want)
	}
	for i, s := range want {
		if order[i] != s {
			t.Errorf("stage %d = %s, want %s", i, order[i], s)
		}
		if got[s] < 0 {
			t.Errorf("stage %s has negative duration %v", s, got[s])
		}
	}
}

func TestObserveNilIsSilent(t *testing.T) {
	d := device(t, "rotary_pcr")
	if _, err := Run(d, Options{Placer: place.Greedy{}, Router: route.AStar{}}); err != nil {
		t.Fatalf("Run without observer: %v", err)
	}
}
