package pnr

import (
	"testing"
)

// BenchmarkPnR is the end-to-end flow number — anneal placement, A*
// routing, feature attach — on three suite devices spanning the size
// range. make bench snapshots it into BENCH_pnr.json so every PR leaves
// a perf trajectory.
func BenchmarkPnR(b *testing.B) {
	for _, name := range []string{"aquaflex_3b", "rotary_pcr", "general_purpose_mfd"} {
		d := device(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(d, NewOptions(WithSeed(1)))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.RouteReport.TotalExpansions()), "expansions/op")
			}
		})
	}
}
