package pnr

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bench"
)

func TestRunContextPreCancelled(t *testing.T) {
	b, err := bench.ByName("rotary_pcr")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, b.Build(), NewOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext = %v, want context.Canceled", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	b, err := bench.ByName("planar_synthetic_3")
	if err != nil {
		t.Fatal(err)
	}
	// A deadline that expires mid-flow: already in the past so even the
	// first batch poll observes it, regardless of machine speed.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := RunContext(ctx, b.Build(), NewOptions(WithSeed(3))); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("RunContext = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunMatchesRunContextBackground(t *testing.T) {
	b, err := bench.ByName("aquaflex_3b")
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions(WithSeed(11))
	r1, err := Run(b.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunContext(context.Background(), b.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PlaceMetrics != r2.PlaceMetrics {
		t.Errorf("Run and RunContext diverge: %+v vs %+v", r1.PlaceMetrics, r2.PlaceMetrics)
	}
}
