// Package pnr combines placement and routing into the end-to-end physical
// design flow for ParchMint devices: place the components, route the
// channels, and write the resulting geometry back into the device as
// ParchMint features. This is the algorithmic consumer the benchmark suite
// exists to exercise.
package pnr

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/route"
)

// Flow stage names reported to Options.Observe, in execution order.
const (
	StagePlace  = "place"
	StageRoute  = "route"
	StageAttach = "attach"
)

// Stages lists the flow's stage names in execution order.
func Stages() []string { return []string{StagePlace, StageRoute, StageAttach} }

// Options configures the flow.
type Options struct {
	// Placer is the placement engine; nil means the annealer.
	Placer place.Placer
	// Router is the routing engine; nil means A*.
	Router route.Router
	// Place and Route tune the respective stages.
	Place place.Options
	Route route.Options
	// SkipPaths suppresses the ParchMint v1.2 connection paths normally
	// derived from the routed segments.
	SkipPaths bool
	// SkipValveMap suppresses the ParchMint v1.2 valve map normally
	// synthesized for the device's valves and pumps.
	SkipValveMap bool
	// Observe, when non-nil, receives each stage's wall-clock duration as
	// the stage completes (stage names: StagePlace, StageRoute,
	// StageAttach). A stage aborted by an error or cancellation reports
	// its partial duration — every started stage is observed exactly once.
	// The runner's timing harness and the benchmark service use this to
	// profile the flow without the flow knowing about them.
	Observe func(stage string, d time.Duration)
}

// Option mutates an Options value; see NewOptions.
type Option func(*Options)

// NewOptions builds flow options from functional settings over the
// defaults (annealer + A*). It is the constructor call sites should
// prefer to positional struct literals: the server, the CLIs, and the
// experiment harness all describe a flow the same way, and new knobs
// never break existing constructors.
func NewOptions(opts ...Option) Options {
	o := Options{Place: place.NewOptions()}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithPlacer selects the placement engine (nil keeps the annealer).
func WithPlacer(p place.Placer) Option { return func(o *Options) { o.Placer = p } }

// WithRouter selects the routing engine (nil keeps A*).
func WithRouter(r route.Router) Option { return func(o *Options) { o.Router = r } }

// WithSeed seeds the randomized placement stage.
func WithSeed(seed uint64) Option { return func(o *Options) { o.Place.Seed = seed } }

// WithUtilization sets the die utilization fraction (0 < u <= 1).
func WithUtilization(u float64) Option { return func(o *Options) { o.Place.Utilization = u } }

// WithOrdering selects the net routing order.
func WithOrdering(ord route.Order) Option { return func(o *Options) { o.Route.Ordering = ord } }

// WithReplicas sets the annealer's parallel-tempering replica count.
// Values below 2 keep the classic single-replica schedule. The replica
// count selects the search — N replicas give a different (usually better)
// placement than one — but for a fixed N the artifact is byte-identical
// at any worker count or CPU budget.
func WithReplicas(n int) Option { return func(o *Options) { o.Place.Replicas = n } }

// WithParallelNets sets the router's speculative net-search worker count.
// Values above 1 search that many nets concurrently; negative selects
// runtime.NumCPU(); 0 and 1 keep the sequential flow. Unlike replicas
// this knob never changes the artifact — parallel routing commits in net
// order and is byte-identical to sequential at any width.
func WithParallelNets(workers int) Option { return func(o *Options) { o.Route.Workers = workers } }

// WithPlaceOptions replaces the whole placement option block.
func WithPlaceOptions(po place.Options) Option { return func(o *Options) { o.Place = po } }

// WithRouteOptions replaces the whole routing option block.
func WithRouteOptions(ro route.Options) Option { return func(o *Options) { o.Route = ro } }

// WithSkipPaths suppresses the v1.2 connection paths.
func WithSkipPaths(skip bool) Option { return func(o *Options) { o.SkipPaths = skip } }

// WithSkipValveMap suppresses the v1.2 valve map.
func WithSkipValveMap(skip bool) Option { return func(o *Options) { o.SkipValveMap = skip } }

// WithObserver installs a stage-duration hook.
func WithObserver(fn func(stage string, d time.Duration)) Option {
	return func(o *Options) { o.Observe = fn }
}

// observe times one stage when a hook is installed.
func (o Options) observe(stage string, start time.Time) {
	if o.Observe != nil {
		o.Observe(stage, time.Since(start))
	}
}

// Result is the outcome of one flow run.
type Result struct {
	// Device is a copy of the input with physical features attached.
	Device *core.Device
	// Placement is the legal placement used.
	Placement *place.Placement
	// PlaceMetrics are the placement quality numbers.
	PlaceMetrics place.Metrics
	// RouteReport is the routing outcome.
	RouteReport *route.Report
}

// Run executes place-then-route with a background context; see RunContext.
func Run(d *core.Device, opts Options) (*Result, error) {
	return RunContext(context.Background(), d, opts)
}

// RunContext executes place-then-route on a device and returns a
// feature-annotated copy. The input device is not modified. The context is
// request-scoped: cancellation aborts annealing within one move batch and
// maze searches within one expansion batch, and the returned error then
// wraps ctx.Err().
func RunContext(ctx context.Context, d *core.Device, opts Options) (*Result, error) {
	placer := opts.Placer
	if placer == nil {
		placer = place.Annealer{}
	}
	router := opts.Router
	if router == nil {
		router = route.AStar{}
	}
	ctx, flow := obs.Start(ctx, "pnr.flow")
	flow.SetAttr("device", d.Name)
	defer flow.End()

	// Each started stage is observed exactly once: on success with its full
	// duration, on error or cancellation with the partial duration up to the
	// abort. Telemetry spans mirror the same timing but are a separate sink,
	// so stage seconds are never counted twice.
	start := time.Now()
	pctx, sp := obs.Start(ctx, "place."+placer.Name())
	p, err := placer.Place(pctx, d, opts.Place)
	if err == nil {
		sp.SetAttr("moves", p.Moves)
	}
	sp.End()
	opts.observe(StagePlace, start)
	if err != nil {
		return nil, fmt.Errorf("pnr: placement (%s): %w", placer.Name(), err)
	}

	start = time.Now()
	rctx, sr := obs.Start(ctx, "route."+router.Name())
	report, err := route.RouteAll(rctx, p, router, opts.Route)
	if err == nil {
		sr.SetAttr("routed", report.Routed())
		sr.SetAttr("expansions", report.TotalExpansions())
	}
	sr.End()
	opts.observe(StageRoute, start)
	if err != nil {
		return nil, fmt.Errorf("pnr: routing (%s): %w", router.Name(), err)
	}

	start = time.Now()
	_, sa := obs.Start(ctx, "pnr.attach")
	out := d.Clone()
	out.Features = append(place.ToFeatures(p), report.Features()...)
	if !opts.SkipPaths {
		out.AttachPaths()
	}
	if !opts.SkipValveMap {
		attachValveMap(out)
	}
	sa.End()
	opts.observe(StageAttach, start)
	return &Result{
		Device:       out,
		Placement:    p,
		PlaceMetrics: place.Evaluate(p),
		RouteReport:  report,
	}, nil
}

// attachValveMap synthesizes the v1.2 valve map: each valve or pump is
// recorded as actuating the connection feeding its first flow port.
// Monolithic membrane valves are normally open (actuation closes them).
func attachValveMap(d *core.Device) {
	// Connection arriving at each (component, port).
	feeds := make(map[string]string)
	for i := range d.Connections {
		cn := &d.Connections[i]
		for _, t := range cn.Sinks {
			key := t.Component + "\x00" + t.Port
			if _, ok := feeds[key]; !ok {
				feeds[key] = cn.ID
			}
		}
	}
	for i := range d.Components {
		c := &d.Components[i]
		if !core.IsControlEntity(c.Entity) {
			continue
		}
		for _, port := range c.Ports {
			if cn, ok := feeds[c.ID+"\x00"+port.Label]; ok {
				// SetValve validates both references; ignore failures on
				// malformed devices (the validator reports them).
				_ = d.SetValve(c.ID, cn, core.ValveNormallyOpen)
				break
			}
		}
	}
}
