// Package netlist provides a graph view over a ParchMint device: components
// become nodes and connections become hyperedges (one source, many sinks).
// It supplies the structural analytics the benchmark characterization
// experiments report — degree statistics, connectivity, fanout — and the
// traversals the placement engines use for net evaluation.
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Node is one component in the graph.
type Node struct {
	// ID is the component ID.
	ID string
	// Entity is the component's entity type.
	Entity string
	// Degree counts connection endpoints touching this component
	// (a connection that both starts and ends here counts twice).
	Degree int
	// Nets lists the indices (into Graph.Nets) of nets touching this node.
	Nets []int
}

// Net is one connection viewed as a hyperedge.
type Net struct {
	// ID is the connection ID.
	ID string
	// Layer is the connection's layer ID.
	Layer string
	// Pins lists the component IDs on the net, source first. Components
	// appearing more than once (self loops) are kept as-is.
	Pins []string
	// Fanout is the number of sinks.
	Fanout int
}

// Graph is the hypergraph view of one device.
type Graph struct {
	nodes  []Node
	nets   []Net
	byID   map[string]int // component id -> node index
	adj    map[string][]string
	device *core.Device
}

// Build constructs the graph view of d. Connections whose endpoints
// reference missing components are kept on the net pin list (the validator
// reports them); they simply have no node to attach to.
func Build(d *core.Device) *Graph {
	g := &Graph{
		byID:   make(map[string]int, len(d.Components)),
		adj:    make(map[string][]string),
		device: d,
	}
	g.nodes = make([]Node, len(d.Components))
	for i := range d.Components {
		c := &d.Components[i]
		g.nodes[i] = Node{ID: c.ID, Entity: c.Entity}
		if _, dup := g.byID[c.ID]; !dup {
			g.byID[c.ID] = i
		}
	}
	g.nets = make([]Net, len(d.Connections))
	for i := range d.Connections {
		cn := &d.Connections[i]
		net := Net{ID: cn.ID, Layer: cn.Layer, Fanout: len(cn.Sinks)}
		net.Pins = append(net.Pins, cn.Source.Component)
		for _, s := range cn.Sinks {
			net.Pins = append(net.Pins, s.Component)
		}
		g.nets[i] = net
		for _, pin := range net.Pins {
			if ni, ok := g.byID[pin]; ok {
				g.nodes[ni].Degree++
				g.nodes[ni].Nets = append(g.nodes[ni].Nets, i)
			}
		}
		// Adjacency: source connects to each sink (directionless storage).
		for _, s := range cn.Sinks {
			g.link(cn.Source.Component, s.Component)
		}
	}
	return g
}

func (g *Graph) link(a, b string) {
	if a == b {
		return
	}
	g.adj[a] = appendUnique(g.adj[a], b)
	g.adj[b] = appendUnique(g.adj[b], a)
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// NumNodes returns the component count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumNets returns the connection count.
func (g *Graph) NumNets() int { return len(g.nets) }

// Nodes returns the nodes in device order. The slice is shared; treat it
// as read-only.
func (g *Graph) Nodes() []Node { return g.nodes }

// Nets returns the nets in device order. The slice is shared; treat it as
// read-only.
func (g *Graph) Nets() []Net { return g.nets }

// Node returns the node for a component ID, or nil.
func (g *Graph) Node(id string) *Node {
	if i, ok := g.byID[id]; ok {
		return &g.nodes[i]
	}
	return nil
}

// Neighbors returns the distinct components adjacent to id, in first-seen
// order. The slice is shared; treat it as read-only.
func (g *Graph) Neighbors(id string) []string { return g.adj[id] }

// Degree returns the endpoint count of component id (0 when unknown).
func (g *Graph) Degree(id string) int {
	if n := g.Node(id); n != nil {
		return n.Degree
	}
	return 0
}

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// Histogram maps degree -> node count.
	Histogram map[int]int
}

// Degrees computes the degree distribution over all nodes. A graph with no
// nodes yields zeroed stats with an empty histogram.
func (g *Graph) Degrees() DegreeStats {
	s := DegreeStats{Histogram: make(map[int]int)}
	if len(g.nodes) == 0 {
		return s
	}
	s.Min = g.nodes[0].Degree
	total := 0
	for _, n := range g.nodes {
		s.Histogram[n.Degree]++
		total += n.Degree
		if n.Degree < s.Min {
			s.Min = n.Degree
		}
		if n.Degree > s.Max {
			s.Max = n.Degree
		}
	}
	s.Mean = float64(total) / float64(len(g.nodes))
	return s
}

// FanoutStats summarizes connection fanouts.
type FanoutStats struct {
	Max       int
	Mean      float64
	MultiSink int // nets with more than one sink
}

// Fanouts computes fanout statistics over all nets.
func (g *Graph) Fanouts() FanoutStats {
	s := FanoutStats{}
	if len(g.nets) == 0 {
		return s
	}
	total := 0
	for _, n := range g.nets {
		total += n.Fanout
		if n.Fanout > s.Max {
			s.Max = n.Fanout
		}
		if n.Fanout > 1 {
			s.MultiSink++
		}
	}
	s.Mean = float64(total) / float64(len(g.nets))
	return s
}

// ConnectedComponents partitions component IDs into connectivity classes,
// each sorted, with classes ordered by their smallest member. Components
// with no connections form singleton classes.
func (g *Graph) ConnectedComponents() [][]string {
	seen := make(map[string]bool, len(g.nodes))
	var classes [][]string
	for _, n := range g.nodes {
		if seen[n.ID] {
			continue
		}
		class := g.bfsFrom(n.ID, seen)
		sort.Strings(class)
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	return classes
}

func (g *Graph) bfsFrom(start string, seen map[string]bool) []string {
	queue := []string{start}
	seen[start] = true
	var out []string
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, nb := range g.adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return out
}

// IsConnected reports whether every component is reachable from every
// other. The empty graph counts as connected.
func (g *Graph) IsConnected() bool {
	return len(g.nodes) == 0 || len(g.ConnectedComponents()) == 1
}

// ShortestPath returns the hop-minimal component path from a to b
// (inclusive), or nil when unreachable. Hop count is the number of
// connections crossed.
func (g *Graph) ShortestPath(a, b string) []string {
	if g.Node(a) == nil || g.Node(b) == nil {
		return nil
	}
	if a == b {
		return []string{a}
	}
	prev := map[string]string{a: a}
	queue := []string{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if _, ok := prev[nb]; ok {
				continue
			}
			prev[nb] = cur
			if nb == b {
				return unwind(prev, a, b)
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

func unwind(prev map[string]string, a, b string) []string {
	var rev []string
	for cur := b; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == a {
			break
		}
	}
	out := make([]string, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// Diameter returns the longest shortest-path hop count over the largest
// connected class, or 0 for graphs with fewer than two nodes. It is
// O(V·E); benchmark-suite devices are small enough for this to be instant.
func (g *Graph) Diameter() int {
	best := 0
	for _, n := range g.nodes {
		dist := g.eccentricity(n.ID)
		if dist > best {
			best = dist
		}
	}
	return best
}

func (g *Graph) eccentricity(start string) int {
	depth := map[string]int{start: 0}
	queue := []string{start}
	maxd := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if _, ok := depth[nb]; ok {
				continue
			}
			depth[nb] = depth[cur] + 1
			if depth[nb] > maxd {
				maxd = depth[nb]
			}
			queue = append(queue, nb)
		}
	}
	return maxd
}

// EntityCounts returns entity -> component count.
func (g *Graph) EntityCounts() map[string]int {
	out := make(map[string]int)
	for _, n := range g.nodes {
		out[n.Entity]++
	}
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("netlist{%d components, %d nets}", len(g.nodes), len(g.nets))
}

// ArticulationPoints returns the component IDs whose removal would
// disconnect the netlist — the single points of failure of a device
// (a clogged mixer at an articulation point splits the chip). Computed
// with Tarjan's low-link algorithm (iterative); result sorted.
func (g *Graph) ArticulationPoints() []string {
	index := make(map[string]int, len(g.nodes))
	low := make(map[string]int, len(g.nodes))
	parent := make(map[string]string, len(g.nodes))
	isArt := make(map[string]bool)
	counter := 0

	type frame struct {
		node string
		next int // next neighbor index to visit
	}
	for _, start := range g.nodes {
		if _, seen := index[start.ID]; seen {
			continue
		}
		rootChildren := 0
		stack := []frame{{node: start.ID}}
		index[start.ID] = counter
		low[start.ID] = counter
		counter++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nbs := g.adj[f.node]
			if f.next < len(nbs) {
				nb := nbs[f.next]
				f.next++
				if _, seen := index[nb]; !seen {
					parent[nb] = f.node
					if f.node == start.ID {
						rootChildren++
					}
					index[nb] = counter
					low[nb] = counter
					counter++
					stack = append(stack, frame{node: nb})
				} else if nb != parent[f.node] && index[nb] < low[f.node] {
					low[f.node] = index[nb] // back edge
				}
				continue
			}
			// Post-order: propagate low-link to the parent.
			node := f.node
			stack = stack[:len(stack)-1]
			if p, hasParent := parent[node]; hasParent {
				if low[node] < low[p] {
					low[p] = low[node]
				}
				if p != start.ID && low[node] >= index[p] {
					isArt[p] = true
				}
			}
		}
		if rootChildren > 1 {
			isArt[start.ID] = true
		}
	}
	out := make([]string, 0, len(isArt))
	for id := range isArt {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
