package netlist

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// chainDevice builds in -> a -> b -> out plus a multi-sink net a -> {b, out}.
func chainDevice(t testing.TB) *core.Device {
	t.Helper()
	b := core.NewBuilder("chain")
	flow := b.FlowLayer()
	b.IOPort("in", flow, 100)
	b.IOPort("out", flow, 100)
	b.TwoPort("a", core.EntityMixer, flow, 1000, 500)
	b.Component("bb", core.EntityChamber, []string{flow}, 1000, 500,
		core.Port{Label: "port1", Layer: flow, X: 0, Y: 250},
		core.Port{Label: "port2", Layer: flow, X: 1000, Y: 250},
		core.Port{Label: "port3", Layer: flow, X: 500, Y: 0},
	)
	b.Connect("n1", flow, "in.port1", "a.port1")
	b.Connect("n2", flow, "a.port2", "bb.port1")
	b.Connect("n3", flow, "bb.port2", "out.port1")
	b.Connect("n4", flow, "a.port2", "bb.port3", "out.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildCounts(t *testing.T) {
	g := Build(chainDevice(t))
	if g.NumNodes() != 4 || g.NumNets() != 4 {
		t.Errorf("graph = %v, want 4 nodes 4 nets", g)
	}
}

func TestDegrees(t *testing.T) {
	g := Build(chainDevice(t))
	// in: n1 source = 1. a: n1 sink + n2 source + n4 source = 3.
	// bb: n2 sink + n3 source + n4 sink = 3. out: n3 sink + n4 sink = 2.
	want := map[string]int{"in": 1, "a": 3, "bb": 3, "out": 2}
	for id, deg := range want {
		if got := g.Degree(id); got != deg {
			t.Errorf("Degree(%s) = %d, want %d", id, got, deg)
		}
	}
	if g.Degree("ghost") != 0 {
		t.Error("unknown component should have degree 0")
	}
	s := g.Degrees()
	if s.Min != 1 || s.Max != 3 {
		t.Errorf("Degrees = %+v", s)
	}
	if s.Mean != (1+3+3+2)/4.0 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Histogram[3] != 2 || s.Histogram[1] != 1 || s.Histogram[2] != 1 {
		t.Errorf("Histogram = %v", s.Histogram)
	}
}

func TestDegreesEmptyGraph(t *testing.T) {
	g := Build(&core.Device{})
	s := g.Degrees()
	if s.Min != 0 || s.Max != 0 || s.Mean != 0 {
		t.Errorf("empty Degrees = %+v", s)
	}
	f := g.Fanouts()
	if f.Max != 0 || f.Mean != 0 {
		t.Errorf("empty Fanouts = %+v", f)
	}
	if !g.IsConnected() {
		t.Error("empty graph counts as connected")
	}
}

func TestFanouts(t *testing.T) {
	g := Build(chainDevice(t))
	f := g.Fanouts()
	if f.Max != 2 {
		t.Errorf("Max fanout = %d, want 2", f.Max)
	}
	if f.MultiSink != 1 {
		t.Errorf("MultiSink = %d, want 1", f.MultiSink)
	}
	if f.Mean != (1+1+1+2)/4.0 {
		t.Errorf("Mean fanout = %v", f.Mean)
	}
}

func TestNeighbors(t *testing.T) {
	g := Build(chainDevice(t))
	nb := g.Neighbors("a")
	want := map[string]bool{"in": true, "bb": true, "out": true}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(a) = %v", nb)
	}
	for _, n := range nb {
		if !want[n] {
			t.Errorf("unexpected neighbor %q", n)
		}
	}
	// Adjacency deduplicates: bb and a touch via n2 and n4 but appear once.
	count := 0
	for _, n := range g.Neighbors("bb") {
		if n == "a" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("a appears %d times in Neighbors(bb)", count)
	}
}

func TestNodeLookup(t *testing.T) {
	g := Build(chainDevice(t))
	n := g.Node("a")
	if n == nil || n.Entity != core.EntityMixer {
		t.Fatalf("Node(a) = %+v", n)
	}
	if len(n.Nets) != 3 {
		t.Errorf("a touches %d nets, want 3", len(n.Nets))
	}
	if g.Node("ghost") != nil {
		t.Error("unknown node should be nil")
	}
}

func TestNetPins(t *testing.T) {
	g := Build(chainDevice(t))
	var n4 *Net
	for i := range g.Nets() {
		if g.Nets()[i].ID == "n4" {
			n4 = &g.Nets()[i]
		}
	}
	if n4 == nil {
		t.Fatal("n4 missing")
	}
	if len(n4.Pins) != 3 || n4.Pins[0] != "a" || n4.Fanout != 2 {
		t.Errorf("n4 = %+v", n4)
	}
	if n4.Layer != "flow" {
		t.Errorf("n4 layer = %q", n4.Layer)
	}
}

func TestConnectedComponents(t *testing.T) {
	d := chainDevice(t)
	// Add a disconnected island: x -> y.
	d.Components = append(d.Components,
		core.Component{ID: "x", Entity: core.EntityPort, Layers: []string{"flow"}, XSpan: 100, YSpan: 100,
			Ports: []core.Port{{Label: "port1", Layer: "flow", X: 50, Y: 50}}},
		core.Component{ID: "y", Entity: core.EntityPort, Layers: []string{"flow"}, XSpan: 100, YSpan: 100,
			Ports: []core.Port{{Label: "port1", Layer: "flow", X: 50, Y: 50}}},
		core.Component{ID: "z", Entity: core.EntityPort, Layers: []string{"flow"}, XSpan: 100, YSpan: 100},
	)
	d.Connections = append(d.Connections, core.Connection{
		ID: "island", Layer: "flow",
		Source: core.Target{Component: "x", Port: "port1"},
		Sinks:  []core.Target{{Component: "y", Port: "port1"}},
	})
	g := Build(d)
	classes := g.ConnectedComponents()
	if len(classes) != 3 {
		t.Fatalf("classes = %v, want 3", classes)
	}
	if g.IsConnected() {
		t.Error("graph with islands reported connected")
	}
	// Classes ordered by smallest member: [a bb in out], [x y], [z].
	if classes[0][0] != "a" || classes[1][0] != "x" || classes[2][0] != "z" {
		t.Errorf("class order = %v", classes)
	}
	if len(classes[2]) != 1 {
		t.Errorf("isolated z should be singleton: %v", classes[2])
	}
}

func TestShortestPath(t *testing.T) {
	g := Build(chainDevice(t))
	p := g.ShortestPath("in", "out")
	// in-a (n1), a-out direct via n4: path length 3.
	if len(p) != 3 || p[0] != "in" || p[1] != "a" || p[2] != "out" {
		t.Errorf("ShortestPath = %v", p)
	}
	if p := g.ShortestPath("in", "in"); len(p) != 1 || p[0] != "in" {
		t.Errorf("self path = %v", p)
	}
	if g.ShortestPath("in", "ghost") != nil {
		t.Error("path to unknown node should be nil")
	}
	if g.ShortestPath("ghost", "in") != nil {
		t.Error("path from unknown node should be nil")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	d := chainDevice(t)
	d.Components = append(d.Components, core.Component{ID: "solo", Layers: []string{"flow"}, XSpan: 1, YSpan: 1})
	g := Build(d)
	if g.ShortestPath("in", "solo") != nil {
		t.Error("unreachable path should be nil")
	}
}

func TestDiameter(t *testing.T) {
	g := Build(chainDevice(t))
	// Longest shortest path: in -> a -> {bb,out} = 2 hops.
	if got := g.Diameter(); got != 2 {
		t.Errorf("Diameter = %d, want 2", got)
	}
	if got := Build(&core.Device{}).Diameter(); got != 0 {
		t.Errorf("empty Diameter = %d", got)
	}
}

func TestEntityCounts(t *testing.T) {
	g := Build(chainDevice(t))
	ec := g.EntityCounts()
	if ec[core.EntityPort] != 2 || ec[core.EntityMixer] != 1 || ec[core.EntityChamber] != 1 {
		t.Errorf("EntityCounts = %v", ec)
	}
}

func TestSelfLoopNet(t *testing.T) {
	b := core.NewBuilder("loop")
	flow := b.FlowLayer()
	b.TwoPort("m", core.EntityMixer, flow, 100, 100)
	b.Connect("n", flow, "m.port1", "m.port2")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(d)
	// Self loop: degree counts both endpoints, adjacency stays empty.
	if g.Degree("m") != 2 {
		t.Errorf("self-loop degree = %d, want 2", g.Degree("m"))
	}
	if len(g.Neighbors("m")) != 0 {
		t.Errorf("self loop should not create adjacency: %v", g.Neighbors("m"))
	}
	if !g.IsConnected() {
		t.Error("single-node graph is connected")
	}
}

func TestDanglingPinsTolerated(t *testing.T) {
	d := &core.Device{
		Layers:     []core.Layer{{ID: "flow", Name: "flow", Type: core.LayerFlow}},
		Components: []core.Component{{ID: "a", Layers: []string{"flow"}, XSpan: 1, YSpan: 1}},
		Connections: []core.Connection{{
			ID: "n", Layer: "flow",
			Source: core.Target{Component: "a"},
			Sinks:  []core.Target{{Component: "ghost"}},
		}},
	}
	g := Build(d) // must not panic
	if g.Degree("a") != 1 {
		t.Errorf("Degree(a) = %d", g.Degree("a"))
	}
	if g.NumNets() != 1 {
		t.Errorf("NumNets = %d", g.NumNets())
	}
}

func TestGraphString(t *testing.T) {
	g := Build(chainDevice(t))
	if got := g.String(); got != "netlist{4 components, 4 nets}" {
		t.Errorf("String = %q", got)
	}
}

func TestArticulationPoints(t *testing.T) {
	// chainDevice: in - a - bb - out with an extra a->{bb,out} net.
	// Removing a disconnects in; removing bb disconnects nothing (a-out
	// edge exists via n4). So: only "a" is an articulation point.
	g := Build(chainDevice(t))
	if got := g.ArticulationPoints(); len(got) != 1 || got[0] != "a" {
		t.Errorf("ArticulationPoints = %v, want [a]", got)
	}
}

func TestArticulationPointsChain(t *testing.T) {
	// Pure chain p1 - m - p2: the middle is a cut vertex.
	b := core.NewBuilder("chain3")
	flow := b.FlowLayer()
	b.IOPort("p1", flow, 100)
	b.IOPort("p2", flow, 100)
	b.TwoPort("m", core.EntityMixer, flow, 100, 100)
	b.Connect("n1", flow, "p1.port1", "m.port1")
	b.Connect("n2", flow, "m.port2", "p2.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(d)
	if got := g.ArticulationPoints(); len(got) != 1 || got[0] != "m" {
		t.Errorf("ArticulationPoints = %v, want [m]", got)
	}
}

func TestArticulationPointsCycle(t *testing.T) {
	// A ring has no cut vertices.
	b := core.NewBuilder("ring")
	flow := b.FlowLayer()
	for i := 0; i < 4; i++ {
		b.Component(fmt.Sprintf("r%d", i), core.EntityNode, []string{flow}, 100, 100,
			core.Port{Label: "port1", Layer: flow, X: 0, Y: 50},
			core.Port{Label: "port2", Layer: flow, X: 100, Y: 50},
		)
	}
	for i := 0; i < 4; i++ {
		b.Connect(fmt.Sprintf("e%d", i), flow,
			fmt.Sprintf("r%d.port2", i), fmt.Sprintf("r%d.port1", (i+1)%4))
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(d)
	if got := g.ArticulationPoints(); len(got) != 0 {
		t.Errorf("ring ArticulationPoints = %v, want none", got)
	}
}

func TestArticulationPointsDisconnected(t *testing.T) {
	// Two disjoint chains: each middle is a cut vertex; the islands do not
	// confuse the root handling.
	b := core.NewBuilder("two")
	flow := b.FlowLayer()
	for _, grp := range []string{"x", "y"} {
		b.IOPort(grp+"1", flow, 100)
		b.IOPort(grp+"2", flow, 100)
		b.TwoPort(grp+"m", core.EntityMixer, flow, 100, 100)
		b.Connect(grp+"n1", flow, grp+"1.port1", grp+"m.port1")
		b.Connect(grp+"n2", flow, grp+"m.port2", grp+"2.port1")
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(d)
	got := g.ArticulationPoints()
	if len(got) != 2 || got[0] != "xm" || got[1] != "ym" {
		t.Errorf("ArticulationPoints = %v, want [xm ym]", got)
	}
}

func TestArticulationPointsSuiteSanity(t *testing.T) {
	// The gradient lattice is 2-connected in its interior but the inlets
	// funnel through the top mixers: some articulation points must exist,
	// and removing any reported one must actually disconnect the graph.
	bm, err := bench.ByName("molecular_gradients")
	if err != nil {
		t.Fatal(err)
	}
	d := bm.Build()
	g := Build(d)
	arts := g.ArticulationPoints()
	if len(arts) == 0 {
		t.Fatal("expected articulation points in the gradient generator")
	}
	for _, art := range arts {
		reduced := d.Clone()
		kept := reduced.Components[:0]
		for _, c := range reduced.Components {
			if c.ID != art {
				kept = append(kept, c)
			}
		}
		reduced.Components = kept
		conns := reduced.Connections[:0]
		for _, cn := range reduced.Connections {
			touches := cn.Source.Component == art
			for _, s := range cn.Sinks {
				if s.Component == art {
					touches = true
				}
			}
			if !touches {
				conns = append(conns, cn)
			}
		}
		reduced.Connections = conns
		if Build(reduced).IsConnected() {
			t.Errorf("removing %q does not disconnect the device", art)
		}
	}
}
