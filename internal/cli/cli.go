// Package cli holds the device-loading layer shared by the command-line
// tools and the benchmark service: a Source abstraction that separates
// format classification from I/O, a context-aware io.Reader-based loader
// that reports conversion notes as values, and the small output helpers
// the commands share.
package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mint"
	"repro/internal/obs"
)

// Format classifies a device input's encoding.
type Format string

// The input formats the loader understands.
const (
	// FormatAuto sniffs the format from the source name (see SniffFormat).
	FormatAuto Format = ""
	// FormatJSON is ParchMint JSON.
	FormatJSON Format = "json"
	// FormatMINT is MINT hardware-description text.
	FormatMINT Format = "mint"
	// FormatBench names a built-in suite benchmark; no reader is consumed.
	FormatBench Format = "bench"
)

// SniffFormat classifies a source name without touching I/O: "bench:"
// prefixes select the suite, ".mint"/".uf" suffixes select MINT text, and
// everything else (including "-" for stdin) is ParchMint JSON.
func SniffFormat(name string) Format {
	switch {
	case strings.HasPrefix(name, "bench:"):
		return FormatBench
	case strings.HasSuffix(name, ".mint"), strings.HasSuffix(name, ".uf"):
		return FormatMINT
	default:
		return FormatJSON
	}
}

// Source describes one device input: a name (for errors and notes), an
// explicit format hint, and the reader carrying the bytes. Benchmark
// sources carry no reader — the name selects the generator.
type Source struct {
	// Name labels the input: a path, "stdin", a request tag, or (for
	// FormatBench) the benchmark name, with or without the "bench:" prefix.
	Name string
	// Format is the explicit encoding; FormatAuto sniffs from Name.
	Format Format
	// Reader supplies the input text for FormatJSON and FormatMINT.
	Reader io.Reader
}

// Result is a loaded device plus everything the loader used to say on
// stderr: the format actually decoded and any MINT conversion fidelity
// notes, returned as values so servers and tests can route them.
type Result struct {
	Device *core.Device
	Format Format
	// Notes lists MINT→ParchMint conversion fidelity notes (constructs
	// outside the common subset); empty for JSON and benchmark sources.
	Notes []string
}

// PrintNotes writes each note as a "note: ..." line, the rendering the
// CLIs historically produced on stderr.
func (r *Result) PrintNotes(w io.Writer) {
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Load decodes one device from an explicit source. It is the single entry
// point the server, the CLIs, and tests share: I/O comes only from
// src.Reader (or the benchmark generators), syntax failures surface as
// *core.ParseError, unknown benchmarks match bench.ErrNotFound, and the
// context is honored before each decode phase.
func Load(ctx context.Context, src Source) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	format := src.Format
	if format == FormatAuto {
		format = SniffFormat(src.Name)
	}
	switch format {
	case FormatBench:
		name := strings.TrimPrefix(src.Name, "bench:")
		b, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		_, sp := obs.Start(ctx, "bench.build")
		sp.SetAttr("bench", name)
		d := b.Build()
		sp.End()
		return &Result{Device: d, Format: FormatBench}, nil
	case FormatJSON:
		_, sp := obs.Start(ctx, "parse.json")
		sp.SetAttr("source", src.Name)
		d, err := core.Decode(src.Reader)
		sp.End()
		if err != nil {
			return nil, named(err, src.Name)
		}
		return &Result{Device: d, Format: FormatJSON}, nil
	case FormatMINT:
		data, err := io.ReadAll(src.Reader)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, sp := obs.Start(ctx, "parse.mint")
		sp.SetAttr("source", src.Name)
		f, err := mint.Parse(string(data))
		sp.End()
		if err != nil {
			return nil, &core.ParseError{Format: "mint", Source: src.Name, Err: err}
		}
		_, sc := obs.Start(ctx, "convert.mint")
		d, fid, err := mint.ToDevice(f)
		sc.End()
		if err != nil {
			return nil, &core.ParseError{Format: "mint", Source: src.Name, Err: err}
		}
		return &Result{Device: d, Format: FormatMINT, Notes: fid.Notes}, nil
	default:
		return nil, fmt.Errorf("cli: unknown format %q", format)
	}
}

// named stamps the source name onto a parse error that lacks one.
func named(err error, name string) error {
	if pe, ok := err.(*core.ParseError); ok && pe.Source == "" {
		pe.Source = name
	}
	return err
}

// LoadArg loads a device from a command-line argument:
//
//   - "bench:<name>" builds the named suite benchmark;
//   - "-" reads ParchMint JSON from stdin;
//   - a path ending in .mint or .uf parses MINT text;
//   - any other path parses ParchMint JSON.
func LoadArg(ctx context.Context, arg string) (*Result, error) {
	format := SniffFormat(arg)
	if format == FormatBench {
		return Load(ctx, Source{Name: arg, Format: FormatBench})
	}
	if arg == "-" {
		return Load(ctx, Source{Name: "stdin", Format: FormatJSON, Reader: os.Stdin})
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(ctx, Source{Name: arg, Format: format, Reader: f})
}

// LoadDevice reads a device from the given source argument (see LoadArg),
// printing MINT conversion notes to stderr.
//
// Deprecated: new call sites should use LoadArg (notes as values) or Load
// (explicit source and format) instead.
func LoadDevice(src string) (*core.Device, error) {
	res, err := LoadArg(context.Background(), src)
	if err != nil {
		return nil, err
	}
	res.PrintNotes(os.Stderr)
	return res.Device, nil
}

// WriteOutput writes data to the path, or to stdout when path is "" or "-".
func WriteOutput(path string, data []byte) error {
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Fatalf prints an error to stderr and exits 1.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// ReadAll reads a whole source ("-" for stdin, else a file path).
func ReadAll(src string) ([]byte, error) {
	if src == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(src)
}
