// Package cli holds the small helpers shared by the command-line tools:
// loading devices from files, stdin, or benchmark names, and writing
// outputs.
package cli

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mint"
)

// LoadDevice reads a device from the given source:
//
//   - "bench:<name>" builds the named suite benchmark;
//   - "-" reads ParchMint JSON from stdin;
//   - a path ending in .mint or .uf parses MINT text;
//   - any other path parses ParchMint JSON.
func LoadDevice(src string) (*core.Device, error) {
	if name, ok := strings.CutPrefix(src, "bench:"); ok {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		return b.Build(), nil
	}
	if src == "-" {
		return core.Decode(os.Stdin)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(src, ".mint") || strings.HasSuffix(src, ".uf") {
		f, err := mint.Parse(string(data))
		if err != nil {
			return nil, err
		}
		d, fid, err := mint.ToDevice(f)
		if err != nil {
			return nil, err
		}
		for _, n := range fid.Notes {
			fmt.Fprintf(os.Stderr, "note: %s\n", n)
		}
		return d, nil
	}
	return core.Unmarshal(data)
}

// WriteOutput writes data to the path, or to stdout when path is "" or "-".
func WriteOutput(path string, data []byte) error {
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Fatalf prints an error to stderr and exits 1.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// ReadAll reads a whole source ("-" for stdin, else a file path).
func ReadAll(src string) ([]byte, error) {
	if src == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(src)
}
