package cli

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

func TestLoadDeviceFromBenchmark(t *testing.T) {
	d, err := LoadDevice("bench:rotary_pcr")
	if err != nil {
		t.Fatalf("LoadDevice: %v", err)
	}
	if d.Name != "rotary_pcr" {
		t.Errorf("name = %q", d.Name)
	}
	if _, err := LoadDevice("bench:nope"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestLoadDeviceFromJSONFile(t *testing.T) {
	b, err := bench.ByName("aquaflex_3b")
	if err != nil {
		t.Fatal(err)
	}
	want := b.Build()
	data, err := core.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dev.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDevice(path)
	if err != nil {
		t.Fatalf("LoadDevice: %v", err)
	}
	if !core.Equal(want, got) {
		t.Error("loaded device differs")
	}
}

func TestLoadDeviceFromMintFile(t *testing.T) {
	src := "DEVICE demo\nLAYER FLOW\nPORT a, b r=100 ;\nCHANNEL c from a 1 to b 1 w=120 ;\nEND LAYER\n"
	path := filepath.Join(t.TempDir(), "dev.mint")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDevice(path)
	if err != nil {
		t.Fatalf("LoadDevice: %v", err)
	}
	if d.Name != "demo" || len(d.Components) != 2 {
		t.Errorf("device = %q with %d components", d.Name, len(d.Components))
	}
}

func TestLoadDeviceErrors(t *testing.T) {
	if _, err := LoadDevice("/does/not/exist.json"); err == nil {
		t.Error("missing file should fail")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte("not json"), 0o644)
	if _, err := LoadDevice(path); err == nil {
		t.Error("bad JSON should fail")
	}
	mintPath := filepath.Join(t.TempDir(), "bad.mint")
	os.WriteFile(mintPath, []byte("not mint"), 0o644)
	if _, err := LoadDevice(mintPath); err == nil {
		t.Error("bad MINT should fail")
	}
}

func TestWriteOutputToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteOutput(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Errorf("read back %q, %v", data, err)
	}
}

func TestReadAllFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.txt")
	os.WriteFile(path, []byte("abc"), 0o644)
	data, err := ReadAll(path)
	if err != nil || string(data) != "abc" {
		t.Errorf("ReadAll = %q, %v", data, err)
	}
}

func TestSniffFormat(t *testing.T) {
	cases := map[string]Format{
		"bench:rotary_pcr": FormatBench,
		"dev.mint":         FormatMINT,
		"dev.uf":           FormatMINT,
		"dev.json":         FormatJSON,
		"-":                FormatJSON,
		"no-extension":     FormatJSON,
	}
	for name, want := range cases {
		if got := SniffFormat(name); got != want {
			t.Errorf("SniffFormat(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestLoadFromReaderWithHint(t *testing.T) {
	src := "DEVICE demo\nLAYER FLOW\nPORT a, b r=100 ;\nCHANNEL c from a 1 to b 1 w=120 ;\nEND LAYER\n"
	res, err := Load(context.Background(), Source{Name: "req-1", Format: FormatMINT, Reader: strings.NewReader(src)})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if res.Format != FormatMINT || res.Device.Name != "demo" {
		t.Errorf("got format %q, device %q", res.Format, res.Device.Name)
	}
}

func TestLoadErrorTypes(t *testing.T) {
	ctx := context.Background()
	_, err := Load(ctx, Source{Name: "req", Format: FormatJSON, Reader: strings.NewReader("not json")})
	var pe *core.ParseError
	if !errors.As(err, &pe) || pe.Format != "json" || pe.Source != "req" {
		t.Errorf("bad JSON: got %v, want *core.ParseError with source", err)
	}
	_, err = Load(ctx, Source{Name: "req.mint", Format: FormatMINT, Reader: strings.NewReader("not mint")})
	if !errors.Is(err, core.ErrParse) {
		t.Errorf("bad MINT: got %v, want ErrParse", err)
	}
	if errors.As(err, &pe) && pe.Format != "mint" {
		t.Errorf("bad MINT: format = %q", pe.Format)
	}
	_, err = Load(ctx, Source{Name: "bench:nope", Format: FormatBench})
	if !errors.Is(err, bench.ErrNotFound) {
		t.Errorf("unknown benchmark: got %v, want ErrNotFound", err)
	}
}

func TestLoadHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Load(ctx, Source{Name: "bench:rotary_pcr"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled load: got %v, want context.Canceled", err)
	}
}

func TestLoadReturnsNotesAsValues(t *testing.T) {
	// Unknown parameters are outside the lossless MINT<->ParchMint subset,
	// so converting them must yield fidelity notes.
	src := "DEVICE demo\nLAYER FLOW\nMIXER m w=10 h=10 bogus=3 ;\nCHANNEL c from m 1 to m 2 q=1 ;\nEND LAYER\n"
	res, err := Load(context.Background(), Source{Name: "demo.mint", Reader: strings.NewReader(src)})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(res.Notes) == 0 {
		t.Skip("conversion produced no notes for this construct")
	}
	var buf strings.Builder
	res.PrintNotes(&buf)
	if !strings.HasPrefix(buf.String(), "note: ") {
		t.Errorf("PrintNotes output = %q", buf.String())
	}
}
