package cli

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

func TestLoadDeviceFromBenchmark(t *testing.T) {
	d, err := LoadDevice("bench:rotary_pcr")
	if err != nil {
		t.Fatalf("LoadDevice: %v", err)
	}
	if d.Name != "rotary_pcr" {
		t.Errorf("name = %q", d.Name)
	}
	if _, err := LoadDevice("bench:nope"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestLoadDeviceFromJSONFile(t *testing.T) {
	b, err := bench.ByName("aquaflex_3b")
	if err != nil {
		t.Fatal(err)
	}
	want := b.Build()
	data, err := core.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dev.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDevice(path)
	if err != nil {
		t.Fatalf("LoadDevice: %v", err)
	}
	if !core.Equal(want, got) {
		t.Error("loaded device differs")
	}
}

func TestLoadDeviceFromMintFile(t *testing.T) {
	src := "DEVICE demo\nLAYER FLOW\nPORT a, b r=100 ;\nCHANNEL c from a 1 to b 1 w=120 ;\nEND LAYER\n"
	path := filepath.Join(t.TempDir(), "dev.mint")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDevice(path)
	if err != nil {
		t.Fatalf("LoadDevice: %v", err)
	}
	if d.Name != "demo" || len(d.Components) != 2 {
		t.Errorf("device = %q with %d components", d.Name, len(d.Components))
	}
}

func TestLoadDeviceErrors(t *testing.T) {
	if _, err := LoadDevice("/does/not/exist.json"); err == nil {
		t.Error("missing file should fail")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte("not json"), 0o644)
	if _, err := LoadDevice(path); err == nil {
		t.Error("bad JSON should fail")
	}
	mintPath := filepath.Join(t.TempDir(), "bad.mint")
	os.WriteFile(mintPath, []byte("not mint"), 0o644)
	if _, err := LoadDevice(mintPath); err == nil {
		t.Error("bad MINT should fail")
	}
}

func TestWriteOutputToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteOutput(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Errorf("read back %q, %v", data, err)
	}
}

func TestReadAllFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.txt")
	os.WriteFile(path, []byte("abc"), 0o644)
	data, err := ReadAll(path)
	if err != nil || string(data) != "abc" {
		t.Errorf("ReadAll = %q, %v", data, err)
	}
}
