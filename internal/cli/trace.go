package cli

import (
	"context"

	"repro/internal/obs"
)

// TraceContext implements the CLIs' shared -trace flag: when path is
// non-empty it attaches a span recorder to the context and returns a flush
// that writes the collected trace to path as Chrome trace_event JSON. An
// empty path returns ctx unchanged and a no-op flush, so commands call
// both unconditionally:
//
//	ctx, flush := cli.TraceContext(ctx, *traceOut)
//	... run the pipeline under ctx ...
//	if err := flush(); err != nil { ... }
func TraceContext(ctx context.Context, path string) (context.Context, func() error) {
	if path == "" {
		return ctx, func() error { return nil }
	}
	tracer := obs.NewTracer(0)
	ctx = obs.WithRecorder(ctx, obs.NewRecorder(tracer, nil, nil))
	return ctx, func() error { return tracer.WriteFile(path) }
}
