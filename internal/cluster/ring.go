// Package cluster is the multi-node front door: a consistent-hash ring
// that shards every request by its content address (cache.Key), a
// zero-dependency peer HTTP client with health checks, bounded retries,
// and hedged cache probes, and the routing decisions the serving layer
// consults before computing anything locally.
//
// The whole package leans on the repository's determinism contract: a
// result is a pure function of its cache key, so *where* it is computed
// or stored is unobservable. Sharding by key concentrates each key's
// cache entries, singleflight coalescing, and journal records on one
// owner; peering between replicas is correct for free because a peer's
// bytes are indistinguishable from locally recomputed ones.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-peer virtual node count. 128 points per
// peer keeps the largest/smallest arc ratio within a few percent for
// small clusters while the ring stays a few KiB.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a peer set. Every peer
// contributes VirtualNodes points; a key is owned by the peer whose
// point is first at or clockwise of the key's hash. Construction sorts
// the peer list, so rings built from the same membership in any order
// assign identically — replicas agree on ownership without coordination.
// Membership change moves only the keys whose owning arc changed: adding
// a node steals ≤ K/n keys (its share) and removing one reassigns only
// the keys it owned.
type Ring struct {
	peers  []string // sorted, deduplicated membership
	points []point  // sorted by hash
}

// point is one virtual node: a position on the 64-bit circle and the
// index (into peers) of the peer that owns it.
type point struct {
	hash uint64
	peer int32
}

// ringHash maps a byte string onto the 64-bit circle. SHA-256 (truncated)
// rather than a fast non-cryptographic hash: ring points are computed
// once per membership and key hashes once per request, and the uniformity
// matters more than the nanoseconds — cache keys are themselves hex
// SHA-256, but virtual-node labels are short structured strings that
// cheap hashes spread poorly.
func ringHash(b []byte) uint64 {
	sum := sha256.Sum256(b)
	return binary.LittleEndian.Uint64(sum[:8])
}

// NewRing builds a ring over peers with vnodes virtual nodes per peer
// (<=0 selects DefaultVirtualNodes). Peers are deduplicated and sorted,
// so any permutation of the same membership yields an identical ring.
// An empty membership is rejected.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	dedup := sorted[:0]
	for i, p := range sorted {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer name")
		}
		if i > 0 && p == sorted[i-1] {
			continue
		}
		dedup = append(dedup, p)
	}
	if len(dedup) == 0 {
		return nil, fmt.Errorf("cluster: ring requires at least one peer")
	}
	r := &Ring{peers: dedup, points: make([]point, 0, len(dedup)*vnodes)}
	var label []byte
	for pi, p := range dedup {
		for v := 0; v < vnodes; v++ {
			// The label framing (name length prefix) keeps adversarially
			// similar names — "node1"+"#10" vs "node1#1"+"0" — distinct.
			label = label[:0]
			label = binary.LittleEndian.AppendUint64(label, uint64(len(p)))
			label = append(label, p...)
			label = binary.LittleEndian.AppendUint64(label, uint64(v))
			r.points = append(r.points, point{hash: ringHash(label), peer: int32(pi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by peer index so the
		// ordering — and therefore ownership — stays deterministic.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// Peers returns the sorted membership. The slice is owned by the ring.
func (r *Ring) Peers() []string { return r.peers }

// Contains reports whether peer is part of the membership.
func (r *Ring) Contains(peer string) bool {
	i := sort.SearchStrings(r.peers, peer)
	return i < len(r.peers) && r.peers[i] == peer
}

// Owner returns the peer that owns key: the peer of the first ring point
// at or clockwise of the key's hash, wrapping at the top of the circle.
func (r *Ring) Owner(key string) string {
	return r.peers[r.ownerIndex(ringHash([]byte(key)))]
}

func (r *Ring) ownerIndex(h uint64) int32 {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// OwnerAvoiding returns the first peer at or clockwise of the key's hash
// for which avoid returns false — the deterministic successor rule used
// for failover: when a key's owner is unhealthy, every replica that
// shares the same health view hands the key to the same survivor. When
// every peer is avoided, the raw owner is returned.
func (r *Ring) OwnerAvoiding(key string, avoid func(peer string) bool) string {
	h := ringHash([]byte(key))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	tried := make(map[int32]bool, len(r.peers))
	for i := 0; i < len(r.points) && len(tried) < len(r.peers); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.peer] {
			continue
		}
		tried[p.peer] = true
		if peer := r.peers[p.peer]; !avoid(peer) {
			return peer
		}
	}
	return r.peers[r.ownerIndex(h)]
}
