package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// peerState is one remote peer's live view: an atomic health bit flipped
// by the background checker and by passive observation (a failed forward
// marks the peer down immediately; any success marks it up).
type peerState struct {
	name    string
	healthy atomic.Bool
	// failures counts consecutive health-check failures, for logging the
	// first transition rather than every probe.
	failures atomic.Int64
}

// backoff computes the jittered exponential delay before retry attempt n
// (0-based): base·2^n, each with ±50% uniform jitter, capped at max. The
// jitter is deliberately non-deterministic — it desynchronizes retry
// storms across replicas and never influences response bytes.
func backoff(rng *rand.Rand, base, max time.Duration, attempt int) time.Duration {
	d := base << attempt
	if d > max || d <= 0 {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// retryable classifies transport-level failures worth retrying: the
// request never produced a response (connection refused, reset, timeout
// of the attempt) and the caller's deadline still has room. A response
// with any status code is never retried here — the peer spoke, and its
// answer (including 5xx) is the caller's to interpret.
func retryable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// client is the zero-dependency peer HTTP client: stdlib transport,
// bounded retries with jittered exponential backoff, and deadline-aware
// hedging for idempotent probes.
type client struct {
	http        *http.Client
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	hedgeDelay  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func newClient(transport http.RoundTripper, retries int, hedgeDelay time.Duration) *client {
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &client{
		http:        &http.Client{Transport: transport},
		retries:     retries,
		backoffBase: 25 * time.Millisecond,
		backoffMax:  500 * time.Millisecond,
		hedgeDelay:  hedgeDelay,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (c *client) jitter(attempt int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return backoff(c.rng, c.backoffBase, c.backoffMax, attempt)
}

// do issues one request built by build, retrying transport failures up to
// the retry budget with jittered backoff. build is called per attempt so
// each retry gets a fresh body; onRetry (may be nil) observes each retry
// for metrics. The caller owns the returned response body.
func (c *client) do(ctx context.Context, build func() (*http.Request, error), onRetry func()) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req.WithContext(ctx))
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt >= c.retries || !retryable(ctx, err) {
			return nil, lastErr
		}
		if onRetry != nil {
			onRetry()
		}
		select {
		case <-time.After(c.jitter(attempt)):
		case <-ctx.Done():
			return nil, lastErr
		}
	}
}

// hedged races two copies of an idempotent GET: the first attempt starts
// immediately, and if it has not answered within the hedge delay a second
// identical attempt launches; the first response wins and the loser is
// canceled. Hedging is deadline-aware — when the context's remaining
// budget is too small to make a second attempt useful (less than twice
// the hedge delay), the request degrades to a single attempt — and kicks
// in only for the tail, so the steady-state cost is one request.
func (c *client) hedged(ctx context.Context, url string, onRetry, onHedge func()) (*http.Response, error) {
	build := func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	}
	hedge := c.hedgeDelay
	if hedge <= 0 {
		return c.do(ctx, build, onRetry)
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < 2*hedge {
		return c.do(ctx, build, onRetry)
	}

	results := make(chan outcome, 2)
	attemptCtx, cancelAll := context.WithCancel(ctx)
	launch := func() {
		resp, err := c.do(attemptCtx, build, onRetry)
		results <- outcome{resp, err}
	}
	go launch()
	launched := 1
	timer := time.NewTimer(hedge)
	defer timer.Stop()

	var firstErr error
	for received := 0; received < launched; {
		select {
		case <-timer.C:
			if launched == 1 {
				if onHedge != nil {
					onHedge()
				}
				go launch()
				launched = 2
			}
		case out := <-results:
			received++
			if out.err == nil {
				// Winner takes the response; the straggler (if any) is
				// canceled and its body reaped by the drain goroutine.
				cancelAll()
				go drainLosers(results, launched-received)
				return out.resp, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
		case <-ctx.Done():
			cancelAll()
			go drainLosers(results, launched-received)
			return nil, ctx.Err()
		}
	}
	cancelAll()
	return nil, firstErr
}

// outcome is one hedge attempt's result.
type outcome struct {
	resp *http.Response
	err  error
}

// drainLosers closes the responses of hedge attempts that lost the race,
// so their connections return to the transport pool.
func drainLosers(results chan outcome, n int) {
	for i := 0; i < n; i++ {
		out := <-results
		if out.resp != nil {
			io.Copy(io.Discard, out.resp.Body)
			out.resp.Body.Close()
		}
	}
}

// discardBody drains and closes a response body so the underlying
// connection is reusable.
func discardBody(resp *http.Response) {
	if resp == nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// readAllLimited reads a peer response body under a hard cap, failing
// loudly rather than buffering without bound if a peer misbehaves.
func readAllLimited(r io.Reader, limit int64) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(b)) > limit {
		return nil, fmt.Errorf("cluster: peer response exceeds %d bytes", limit)
	}
	return b, nil
}
