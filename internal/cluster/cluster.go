package cluster

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config assembles a cluster view for one node.
type Config struct {
	// Self is this node's own peer address (scheme://host:port), exactly
	// as it appears in Peers.
	Self string
	// Peers is the full cluster membership, including Self. Order does
	// not matter: the ring sorts it, so every node agrees on ownership.
	Peers []string
	// VirtualNodes tunes the ring; <=0 selects DefaultVirtualNodes.
	VirtualNodes int
	// HealthInterval is the per-peer health probe period; <=0 means 2s.
	HealthInterval time.Duration
	// ProbeTimeout bounds one peer cache probe; <=0 means 2s.
	ProbeTimeout time.Duration
	// HedgeDelay is how long a cache probe waits before racing a second
	// attempt; <=0 means 30ms. Negative-like disabling is spelled by
	// setting it larger than ProbeTimeout.
	HedgeDelay time.Duration
	// Retries bounds transport-level retry attempts beyond the first;
	// <0 means 0, default 2 when zero value is used via New.
	Retries int
	// MaxProbeBytes caps a peer cache probe body; <=0 means 64 MiB.
	MaxProbeBytes int64
	// Transport overrides the HTTP transport (tests); nil selects
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Registry, when non-nil, receives the parchmint_peer_* metric
	// families.
	Registry *obs.Registry
	// Logger, when non-nil, records peer health transitions.
	Logger *slog.Logger
}

func (c Config) healthInterval() time.Duration {
	if c.HealthInterval <= 0 {
		return 2 * time.Second
	}
	return c.HealthInterval
}

func (c Config) probeTimeout() time.Duration {
	if c.ProbeTimeout <= 0 {
		return 2 * time.Second
	}
	return c.ProbeTimeout
}

func (c Config) hedgeDelay() time.Duration {
	if c.HedgeDelay <= 0 {
		return 30 * time.Millisecond
	}
	return c.HedgeDelay
}

func (c Config) maxProbeBytes() int64 {
	if c.MaxProbeBytes <= 0 {
		return 64 << 20
	}
	return c.MaxProbeBytes
}

// ProbePath is the peer cache probe endpoint: GET ProbePath + "/" + key
// answers the stored entry bytes (Content-Type preserved) or 404.
const ProbePath = "/internal/cache"

// Forwarded headers. ForwardedHeader on a request marks it as having
// already taken its one allowed hop (the loop guard); on a response it
// names the node that relayed it. ShardHeader names the key's owner on
// every sharded response.
const (
	ForwardedHeader = "X-Parchmint-Forwarded"
	ShardHeader     = "X-Parchmint-Shard"
)

// Cluster is one node's view of the peer set: the shared ring, per-peer
// health, and the peer client. All methods are safe for concurrent use.
type Cluster struct {
	cfg    Config
	ring   *Ring
	self   string
	client *client
	peers  map[string]*peerState
	// others is the stable iteration order for fan-outs: sorted
	// membership minus self.
	others []string

	stop    chan struct{}
	stopped sync.WaitGroup
	once    sync.Once

	mForward *obs.Counter // {peer, outcome}
	mProbe   *obs.Counter // {peer, outcome}
	mRetry   *obs.Counter // {peer}
	mHedge   *obs.Counter // {peer}
	mHealth  *obs.Gauge   // {peer}
}

// ValidateMembership checks a (self, peers) pair the way New will: the
// membership must be non-empty, self must appear in it, and every peer
// must parse as an absolute URL. Exported so the CLI can reject a bad
// -peers/-self combination with a clean error before constructing the
// server.
func ValidateMembership(self string, peers []string) error {
	ring, err := NewRing(peers, 1)
	if err != nil {
		return err
	}
	if !ring.Contains(self) {
		return fmt.Errorf("cluster: -self %q is not in the peer list %v", self, ring.Peers())
	}
	for _, p := range ring.Peers() {
		u, err := url.Parse(p)
		if err != nil || !u.IsAbs() || u.Host == "" {
			return fmt.Errorf("cluster: peer %q is not an absolute URL (want scheme://host:port)", p)
		}
	}
	return nil
}

// New validates the membership, builds the ring, and starts the health
// loop. Self must appear in Peers and every peer must parse as an
// absolute URL.
func New(cfg Config) (*Cluster, error) {
	if err := ValidateMembership(cfg.Self, cfg.Peers); err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Peers, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	retries := cfg.Retries
	if retries < 0 {
		retries = 0
	} else if retries == 0 {
		retries = 2
	}
	c := &Cluster{
		cfg:    cfg,
		ring:   ring,
		self:   cfg.Self,
		client: newClient(cfg.Transport, retries, cfg.hedgeDelay()),
		peers:  make(map[string]*peerState, len(ring.Peers())),
		stop:   make(chan struct{}),
	}
	for _, p := range ring.Peers() {
		st := &peerState{name: p}
		// Peers start healthy: the first forward either works or marks
		// them down passively, which beats refusing to route until the
		// first health probe lands.
		st.healthy.Store(true)
		c.peers[p] = st
		if p != c.self {
			c.others = append(c.others, p)
		}
	}
	if reg := cfg.Registry; reg != nil {
		c.mForward = reg.Counter("parchmint_peer_forward_total",
			"Requests forwarded to the owning shard, by peer and outcome (ok, error).", "peer", "outcome")
		c.mProbe = reg.Counter("parchmint_peer_probe_total",
			"Peer cache probes, by peer and outcome (hit, miss, error).", "peer", "outcome")
		c.mRetry = reg.Counter("parchmint_peer_retries_total",
			"Transport-level retries against peers.", "peer")
		c.mHedge = reg.Counter("parchmint_peer_hedges_total",
			"Cache probes that launched a hedged second attempt.", "peer")
		c.mHealth = reg.Gauge("parchmint_peer_healthy",
			"Peer health as seen by this node (1 healthy, 0 down).", "peer")
		for _, p := range c.others {
			c.mHealth.Set(1, p)
		}
	}
	for _, p := range c.others {
		c.stopped.Add(1)
		go c.healthLoop(c.peers[p])
	}
	return c, nil
}

// Close stops the health loop. In-flight forwards and probes are not
// interrupted; their contexts bound them.
func (c *Cluster) Close() {
	c.once.Do(func() { close(c.stop) })
	c.stopped.Wait()
}

// Self returns this node's peer address.
func (c *Cluster) Self() string { return c.self }

// Peers returns the sorted full membership.
func (c *Cluster) Peers() []string { return c.ring.Peers() }

// Others returns the sorted membership excluding self.
func (c *Cluster) Others() []string { return c.others }

// Owner returns the raw ring owner of key, ignoring health. Every node
// computes the same answer for the same membership.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Route returns the node that should serve key right now: the ring owner
// when it is healthy (or is self), else the first healthy successor
// clockwise — the deterministic failover rule, so nodes sharing a health
// view agree on the stand-in owner.
func (c *Cluster) Route(key string) string {
	return c.ring.OwnerAvoiding(key, func(peer string) bool {
		return peer != c.self && !c.Healthy(peer)
	})
}

// Healthy reports this node's current view of peer. Self is always
// healthy.
func (c *Cluster) Healthy(peer string) bool {
	if peer == c.self {
		return true
	}
	st, ok := c.peers[peer]
	return ok && st.healthy.Load()
}

// MarkDown records a peer as unhealthy, exactly as a failed probe or
// forward would. Routing skips it until the health checker revives it.
// Useful for tests and for operators draining a node.
func (c *Cluster) MarkDown(peer string) {
	if st, ok := c.peers[peer]; ok {
		c.markHealth(st, false)
	}
}

// markHealth records a health observation (active probe or passive
// forward outcome), updating the gauge and logging transitions.
func (c *Cluster) markHealth(st *peerState, up bool) {
	was := st.healthy.Swap(up)
	if c.mHealth != nil {
		v := 0.0
		if up {
			v = 1
		}
		c.mHealth.Set(v, st.name)
	}
	if was != up && c.cfg.Logger != nil {
		if up {
			c.cfg.Logger.Info("peer up", "peer", st.name)
		} else {
			c.cfg.Logger.Warn("peer down", "peer", st.name)
		}
	}
}

// healthLoop probes one peer's /healthz on the configured interval.
func (c *Cluster) healthLoop(st *peerState) {
	defer c.stopped.Done()
	tick := time.NewTicker(c.cfg.healthInterval())
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.probeTimeout())
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, st.name+"/healthz", nil)
			if err != nil {
				cancel()
				continue
			}
			resp, err := c.client.http.Do(req)
			ok := err == nil && resp.StatusCode == http.StatusOK
			discardBody(resp)
			cancel()
			if ok {
				st.failures.Store(0)
			} else {
				st.failures.Add(1)
			}
			c.markHealth(st, ok)
		}
	}
}

// ProbeEntry is a peer cache probe result: the owner's stored bytes and
// content type, exactly as the owner would have served them.
type ProbeEntry struct {
	ContentType string
	Body        []byte
}

// ProbeOwner asks the node that owns key whether its cache already holds
// the entry. It returns (entry, true) only on a definite hit; misses,
// probe errors, owning the key ourselves, and an unhealthy owner all
// report false, in which case the caller computes locally. The probe is
// hedged: a second attempt races the first after the hedge delay, so one
// slow owner cannot stall the request for the full probe timeout.
func (c *Cluster) ProbeOwner(ctx context.Context, key string) (ProbeEntry, bool) {
	owner := c.Route(key)
	if owner == c.self {
		return ProbeEntry{}, false
	}
	st := c.peers[owner]
	ctx, span := obs.Start(ctx, "cluster.probe")
	span.SetAttr("peer", owner)
	defer span.End()
	pctx, cancel := context.WithTimeout(ctx, c.cfg.probeTimeout())
	defer cancel()
	resp, err := c.client.hedged(pctx, owner+ProbePath+"/"+key,
		func() { c.retryObserved(owner) }, func() { c.hedgeObserved(owner) })
	if err != nil {
		span.SetAttr("outcome", "error")
		c.probeOutcome(owner, "error")
		c.markHealth(st, false)
		return ProbeEntry{}, false
	}
	defer resp.Body.Close()
	c.markHealth(st, true)
	if resp.StatusCode != http.StatusOK {
		discardBody(resp)
		span.SetAttr("outcome", "miss")
		c.probeOutcome(owner, "miss")
		return ProbeEntry{}, false
	}
	body, err := readAllLimited(resp.Body, c.cfg.maxProbeBytes())
	if err != nil {
		span.SetAttr("outcome", "error")
		c.probeOutcome(owner, "error")
		return ProbeEntry{}, false
	}
	span.SetAttr("outcome", "hit")
	c.probeOutcome(owner, "hit")
	return ProbeEntry{ContentType: resp.Header.Get("Content-Type"), Body: body}, true
}

func (c *Cluster) probeOutcome(peer, outcome string) {
	if c.mProbe != nil {
		c.mProbe.Inc(peer, outcome)
	}
}

func (c *Cluster) retryObserved(peer string) {
	if c.mRetry != nil {
		c.mRetry.Inc(peer)
	}
}

func (c *Cluster) hedgeObserved(peer string) {
	if c.mHedge != nil {
		c.mHedge.Inc(peer)
	}
}

// Forward relays one request body to peer at path (with rawQuery), marking
// the hop with the forwarded header and propagating the caller's trace
// context. The caller owns the returned response (and must close its
// body). A transport-level failure marks the peer down and returns the
// error so the caller can fall back to serving locally.
func (c *Cluster) Forward(ctx context.Context, peer, method, path, rawQuery, contentType string, body []byte) (*http.Response, error) {
	st := c.peers[peer]
	ctx, span := obs.Start(ctx, "cluster.forward")
	span.SetAttr("peer", peer)
	span.SetAttr("path", path)
	defer span.End()
	u := peer + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	tp := obs.Traceparent(ctx)
	build := func() (*http.Request, error) {
		var req *http.Request
		var err error
		if body != nil {
			req, err = http.NewRequest(method, u, bytes.NewReader(body))
		} else {
			req, err = http.NewRequest(method, u, nil)
		}
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		req.Header.Set(ForwardedHeader, c.self)
		if tp != "" {
			req.Header.Set("Traceparent", tp)
		}
		return req, nil
	}
	resp, err := c.client.do(ctx, build, func() { c.retryObserved(peer) })
	if err != nil {
		span.SetAttr("outcome", "error")
		if c.mForward != nil {
			c.mForward.Inc(peer, "error")
		}
		if st != nil {
			c.markHealth(st, false)
		}
		return nil, err
	}
	span.SetAttr("outcome", "ok")
	span.SetAttr("status", resp.StatusCode)
	if c.mForward != nil {
		c.mForward.Inc(peer, "ok")
	}
	if st != nil {
		c.markHealth(st, true)
	}
	return resp, nil
}
