package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys derives n deterministic hex-ish keys shaped like cache keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

func TestRingOrderIndependentAssignment(t *testing.T) {
	peers := []string{
		"http://127.0.0.1:9001",
		"http://127.0.0.1:9002",
		"http://127.0.0.1:9003",
		"http://127.0.0.1:9004",
	}
	base, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(500)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r, err := NewRing(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if got, want := r.Owner(k), base.Owner(k); got != want {
				t.Fatalf("permutation %d: Owner(%s) = %s, want %s", trial, k, got, want)
			}
		}
	}
}

func TestRingDeduplicatesAndRejectsBadMembership(t *testing.T) {
	r, err := NewRing([]string{"b", "a", "b", "a"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Peers(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Peers() = %v, want [a b]", got)
	}
	if _, err := NewRing(nil, 4); err == nil {
		t.Error("NewRing(nil) succeeded, want error")
	}
	if _, err := NewRing([]string{"a", ""}, 4); err == nil {
		t.Error("NewRing with empty peer name succeeded, want error")
	}
}

// TestRingRemovalMovesOnlyOrphanedKeys is the consistent-hashing
// contract: removing a node reassigns only the keys it owned — every
// other key keeps its owner.
func TestRingRemovalMovesOnlyOrphanedKeys(t *testing.T) {
	peers := []string{"node-a", "node-b", "node-c", "node-d", "node-e"}
	before, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(peers[:4], 0) // node-e removed
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(2000) {
		was, is := before.Owner(k), after.Owner(k)
		if was != "node-e" && was != is {
			t.Fatalf("key %s moved %s -> %s though its owner stayed in the ring", k, was, is)
		}
		if was == "node-e" && is == "node-e" {
			t.Fatalf("key %s still assigned to removed node", k)
		}
	}
}

// TestRingAdditionStealsBoundedShare: a joining node takes roughly K/n
// keys (its fair share) and every moved key moves *to* it — no key
// shuffles between surviving nodes.
func TestRingAdditionStealsBoundedShare(t *testing.T) {
	peers := []string{"node-a", "node-b", "node-c", "node-d"}
	before, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(append(peers, "node-e"), 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(2000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		if is != "node-e" {
			t.Fatalf("key %s moved %s -> %s, not to the joining node", k, was, is)
		}
		moved++
	}
	// Fair share is K/n = 400; virtual nodes keep the imbalance modest.
	// 2x fair share is a loose ceiling that still catches a broken ring
	// (naive mod-hashing would move ~80% of keys).
	if fair := len(keys) / 5; moved > 2*fair {
		t.Errorf("adding one node moved %d of %d keys, want <= %d (2x fair share)", moved, len(keys), 2*fair)
	}
	if moved == 0 {
		t.Error("adding a node moved no keys; ring is not redistributing")
	}
}

// TestRingDistribution checks virtual nodes spread keys across peers
// without a grossly starved or overloaded member.
func TestRingDistribution(t *testing.T) {
	peers := []string{"node-a", "node-b", "node-c"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(peers)
	for _, p := range peers {
		if c := counts[p]; c < fair/3 || c > 3*fair {
			t.Errorf("peer %s owns %d of %d keys (fair %d); distribution is pathological", p, c, len(keys), fair)
		}
	}
}

func TestOwnerAvoidingDeterministicFailover(t *testing.T) {
	peers := []string{"node-a", "node-b", "node-c"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		owner := r.Owner(k)
		// Nothing avoided: same as Owner.
		if got := r.OwnerAvoiding(k, func(string) bool { return false }); got != owner {
			t.Fatalf("OwnerAvoiding(no avoid) = %s, want %s", got, owner)
		}
		// Avoiding the owner hands the key to a different peer, stably.
		avoid := func(p string) bool { return p == owner }
		stand := r.OwnerAvoiding(k, avoid)
		if stand == owner {
			t.Fatalf("OwnerAvoiding still chose the avoided owner %s", owner)
		}
		if again := r.OwnerAvoiding(k, avoid); again != stand {
			t.Fatalf("failover not deterministic: %s then %s", stand, again)
		}
		// Avoiding everyone falls back to the raw owner.
		if got := r.OwnerAvoiding(k, func(string) bool { return true }); got != owner {
			t.Fatalf("OwnerAvoiding(all avoided) = %s, want raw owner %s", got, owner)
		}
	}
}

func TestValidateMembership(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2"}
	if err := ValidateMembership("http://a:1", peers); err != nil {
		t.Errorf("valid membership rejected: %v", err)
	}
	if err := ValidateMembership("http://c:3", peers); err == nil {
		t.Error("self outside membership accepted")
	}
	if err := ValidateMembership("a", []string{"a", "b"}); err == nil {
		t.Error("relative peer URLs accepted")
	}
	if err := ValidateMembership("", nil); err == nil {
		t.Error("empty membership accepted")
	}
}
