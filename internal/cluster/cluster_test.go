package cluster

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestBackoffBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, max := 25*time.Millisecond, 500*time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		for i := 0; i < 100; i++ {
			d := backoff(rng, base, max, attempt)
			lo := base << attempt / 2
			if base<<attempt > max || base<<attempt <= 0 {
				lo = max / 2
			}
			if d < lo || d > 3*max/2 {
				t.Fatalf("backoff(attempt=%d) = %v outside [%v, %v]", attempt, d, lo, 3*max/2)
			}
		}
	}
}

// twoNode builds a two-peer cluster whose "other" peer is the given test
// server, with self as a syntactically valid but unserved address.
func twoNode(t *testing.T, peer string, cfg Config) *Cluster {
	t.Helper()
	cfg.Self = "http://127.0.0.1:1"
	cfg.Peers = []string{cfg.Self, peer}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = time.Hour // keep the active checker quiet
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestProbeOwnerHitMissAndSelf(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		switch r.URL.Path {
		case ProbePath + "/deadbeef":
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"cached":true}` + "\n"))
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Config{})

	// Force ownership by the remote peer: probe a key it owns. Keys hash
	// arbitrarily, so find one owned by the peer.
	hitKey, missKey := "", ""
	for i := 0; hitKey == "" || missKey == ""; i++ {
		k := testKeys(i + 1)[i]
		if c.Owner(k) == ts.URL {
			if hitKey == "" {
				hitKey = k
			} else {
				missKey = k
			}
		}
	}

	// The peer only answers /deadbeef, so a hit needs the exact path: use
	// a rewriting probe — instead, check the miss path first.
	if _, ok := c.ProbeOwner(context.Background(), missKey); ok {
		t.Error("probe of uncached key reported a hit")
	}

	// Self-owned keys never probe.
	selfKey := ""
	for i := 0; selfKey == ""; i++ {
		k := testKeys(i + 1)[i]
		if c.Owner(k) == c.Self() {
			selfKey = k
		}
	}
	before := calls.Load()
	if _, ok := c.ProbeOwner(context.Background(), selfKey); ok {
		t.Error("probe of self-owned key reported a hit")
	}
	if calls.Load() != before {
		t.Error("probing a self-owned key contacted the peer")
	}
}

func TestProbeOwnerReturnsEntry(t *testing.T) {
	body := `{"cached":true}` + "\n"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Config{})
	key := ""
	for i := 0; key == ""; i++ {
		k := testKeys(i + 1)[i]
		if c.Owner(k) == ts.URL {
			key = k
		}
	}
	ent, ok := c.ProbeOwner(context.Background(), key)
	if !ok {
		t.Fatal("probe of cached key missed")
	}
	if string(ent.Body) != body || ent.ContentType != "application/json" {
		t.Errorf("probe entry = (%q, %q), want (%q, application/json)", ent.Body, ent.ContentType, body)
	}
}

func TestProbeOwnerErrorMarksPeerDown(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	peerURL := ts.URL
	ts.Close() // connection refused from here on
	c := twoNode(t, peerURL, Config{Retries: -1, ProbeTimeout: 500 * time.Millisecond})
	key := ""
	for i := 0; key == ""; i++ {
		k := testKeys(i + 1)[i]
		if c.Owner(k) == peerURL {
			key = k
		}
	}
	if !c.Healthy(peerURL) {
		t.Fatal("peer should start healthy")
	}
	if _, ok := c.ProbeOwner(context.Background(), key); ok {
		t.Error("probe against dead peer reported a hit")
	}
	if c.Healthy(peerURL) {
		t.Error("failed probe did not mark the peer down")
	}
	// With the only other peer down, routing falls back to self.
	if got := c.Route(key); got != c.Self() {
		t.Errorf("Route with dead owner = %s, want self %s", got, c.Self())
	}
	// And a probe now short-circuits: self-owned after failover.
	if _, ok := c.ProbeOwner(context.Background(), key); ok {
		t.Error("probe after failover-to-self reported a hit")
	}
}

func TestForwardPropagatesHopHeaders(t *testing.T) {
	var gotForwarded, gotTrace, gotCT string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotForwarded = r.Header.Get(ForwardedHeader)
		gotTrace = r.Header.Get("Traceparent")
		gotCT = r.Header.Get("Content-Type")
		w.WriteHeader(http.StatusTeapot)
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Config{})
	tp := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	ctx := obs.WithTraceparent(context.Background(), tp)
	resp, err := c.Forward(ctx, ts.URL, http.MethodPost, "/v1/pnr", "pretty=1", "application/json", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Errorf("status = %d, want 418", resp.StatusCode)
	}
	if gotForwarded != c.Self() {
		t.Errorf("forwarded header = %q, want self %q", gotForwarded, c.Self())
	}
	if gotTrace != tp {
		t.Errorf("traceparent = %q, want %q (propagated across the hop)", gotTrace, tp)
	}
	if gotCT != "application/json" {
		t.Errorf("content type = %q", gotCT)
	}
}

func TestForwardRetriesTransportFailures(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Kill the first connection without a response.
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Config{Retries: 2})
	resp, err := c.Forward(context.Background(), ts.URL, http.MethodGet, "/healthz", "", "", nil)
	if err != nil {
		t.Fatalf("forward with one torn connection failed: %v (hits=%d)", err, hits.Load())
	}
	resp.Body.Close()
	if hits.Load() < 2 {
		t.Errorf("hits = %d, want >= 2 (a retry)", hits.Load())
	}
	if !c.Healthy(ts.URL) {
		t.Error("successful retried forward left the peer marked down")
	}
}

func TestHedgedSecondAttemptWins(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first attempt stalls until the test ends
		}
		w.Write([]byte("fast"))
	}))
	defer ts.Close()
	defer close(release)
	cl := newClient(nil, 0, 10*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var hedges atomic.Int64
	resp, err := cl.hedged(ctx, ts.URL, nil, func() { hedges.Add(1) })
	if err != nil {
		t.Fatalf("hedged: %v", err)
	}
	defer resp.Body.Close()
	if hedges.Load() != 1 {
		t.Errorf("hedges = %d, want 1", hedges.Load())
	}
	if calls.Load() < 2 {
		t.Errorf("calls = %d, want 2 (hedge launched)", calls.Load())
	}
}

func TestHedgeSkippedNearDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	cl := newClient(nil, 0, time.Hour) // hedge delay far past any deadline
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	hedged := false
	resp, err := cl.hedged(ctx, ts.URL, nil, func() { hedged = true })
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hedged {
		t.Error("hedge launched though the deadline ruled it out")
	}
}

func TestHealthLoopRecoversPeer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.NotFound(w, r)
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Config{HealthInterval: 10 * time.Millisecond})
	// Passively mark the peer down, then let the active checker revive it.
	c.markHealth(c.peers[ts.URL], false)
	deadline := time.Now().Add(5 * time.Second)
	for !c.Healthy(ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("health loop never marked the live peer back up")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
