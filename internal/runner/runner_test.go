package runner

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
)

func TestDeriveSeedDeterministicAndSeparated(t *testing.T) {
	a := DeriveSeed(2018, "table1")
	if a != DeriveSeed(2018, "table1") {
		t.Error("same (base, id) produced different seeds")
	}
	seen := map[uint64]string{}
	for _, id := range []string{"table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "ext-gradient", ""} {
		s := DeriveSeed(2018, id)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between %q and %q", prev, id)
		}
		seen[s] = id
	}
	if DeriveSeed(2018, "table1") == DeriveSeed(2019, "table1") {
		t.Error("base seed does not separate")
	}
}

func TestPoolRunsAllTasksOrderIndependent(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		results := make([]int, 50)
		tasks := make([]Task, 50)
		var ran atomic.Int64
		for i := range tasks {
			i := i
			tasks[i] = Task{ID: "t", Run: func(Task) error {
				results[i] = i * i
				ran.Add(1)
				return nil
			}}
		}
		if err := NewPool(workers).Run(tasks); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 50 {
			t.Fatalf("workers=%d: ran %d/50 tasks", workers, ran.Load())
		}
		for i, v := range results {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
}

func TestPoolSeedsFromBaseAndID(t *testing.T) {
	p := NewPool(4)
	p.BaseSeed = 2018
	seeds := make([]uint64, 20)
	tasks := make([]Task, 20)
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j",
		"k", "l", "m", "n", "o", "p", "q", "r", "s", "u"}
	for i := range tasks {
		i := i
		tasks[i] = Task{ID: ids[i], Run: func(tk Task) error {
			seeds[i] = tk.Seed
			return nil
		}}
	}
	if err := p.Run(tasks); err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if want := DeriveSeed(2018, ids[i]); seeds[i] != want {
			t.Errorf("task %s seed = %d, want %d", ids[i], seeds[i], want)
		}
	}
}

func TestPoolFirstErrorInTaskOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	tasks := []Task{
		{ID: "ok", Run: func(Task) error { return nil }},
		{ID: "slow-fail", Run: func(Task) error { time.Sleep(10 * time.Millisecond); return errA }},
		{ID: "fast-fail", Run: func(Task) error { return errB }},
	}
	if err := NewPool(3).Run(tasks); !errors.Is(err, errA) {
		t.Errorf("err = %v, want first error in task order (%v)", err, errA)
	}
}

func TestPoolPropagatesPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") || !strings.Contains(r.(string), "bad-task") {
			t.Errorf("panic value %q lacks task context", r)
		}
	}()
	NewPool(2).Run([]Task{
		{ID: "fine", Run: func(Task) error { return nil }},
		{ID: "bad-task", Run: func(Task) error { panic("boom") }},
	})
}

func TestForEachMatchesSequential(t *testing.T) {
	seq := make([]int, 100)
	for i := range seq {
		seq[i] = 3 * i
	}
	for _, workers := range []int{1, 2, 7} {
		got := make([]int, 100)
		ForEach(workers, 100, func(i int) { got[i] = 3 * i })
		for i := range got {
			if got[i] != seq[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], seq[i])
			}
		}
	}
}

func TestSetParallelismRoundTrip(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	if Parallelism() != 4 {
		t.Errorf("Parallelism = %d, want 4", Parallelism())
	}
	if got := SetParallelism(prev); got != 4 {
		t.Errorf("SetParallelism returned %d, want 4", got)
	}
}

func TestTimingsCollector(t *testing.T) {
	tm := &Timings{}
	obs := tm.Observer("job")
	obs("place", 2*time.Millisecond)
	obs("place", 3*time.Millisecond)
	tm.Record("job", "route", time.Millisecond)
	if got := tm.Get("job", "place"); got != 5*time.Millisecond {
		t.Errorf("place = %v, want 5ms", got)
	}
	if got := tm.Get("job", "route"); got != time.Millisecond {
		t.Errorf("route = %v, want 1ms", got)
	}
	if got := tm.Get("other", "place"); got != 0 {
		t.Errorf("absent = %v, want 0", got)
	}
}

func TestTimingTableProfilesPipeline(t *testing.T) {
	var subset []bench.Benchmark
	for _, name := range []string{"rotary_pcr", "planar_synthetic_1"} {
		b, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		subset = append(subset, b)
	}
	tb := TimingTable(subset, TimingOptions{Workers: 2, Seed: 2018})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	// Rows keep benchmark order regardless of completion order.
	if tb.Rows[0][0] != "rotary_pcr" || tb.Rows[1][0] != "planar_synthetic_1" {
		t.Errorf("row order: %v, %v", tb.Rows[0][0], tb.Rows[1][0])
	}
	// Every stage column parses as a number and the route stage did work.
	for _, row := range tb.Rows {
		if row[4] == "0.00" && row[3] == "0.00" {
			t.Errorf("%s: place and route both report zero time", row[0])
		}
	}
}
