// Package runner is the parallel execution engine behind the experiment
// harness: a bounded worker pool, order-preserving parallel loops, a
// seed-derivation rule that keeps randomized work deterministic no matter
// how the scheduler interleaves tasks, plus the fairness gate and the
// timing harness built on them.
//
// The primitives themselves live in package par — the solvers (place,
// route) need them for their internal fan-out, and this package imports
// the solvers for the timing harness, so the primitives sit one level
// below. runner re-exports them under their historical names; existing
// call sites (and the determinism contract documented on par) are
// unchanged.
package runner

import (
	"context"

	"repro/internal/par"
)

// Task is one unit of pool work. Alias of par.Task.
type Task = par.Task

// Pool executes tasks over a fixed set of worker goroutines. Alias of
// par.Pool.
type Pool = par.Pool

// Budget is the shared CPU ledger for nested parallelism. Alias of
// par.Budget.
type Budget = par.Budget

// SetParallelism sets the process default worker count; see
// par.SetParallelism.
func SetParallelism(n int) int { return par.SetParallelism(n) }

// Parallelism reports the current default worker count.
func Parallelism() int { return par.Parallelism() }

// DeriveSeed maps (base, id) to a task seed; see par.DeriveSeed. This is
// the only sanctioned way to seed randomized work inside a parallel
// region.
func DeriveSeed(base uint64, id string) uint64 { return par.DeriveSeed(base, id) }

// NewPool creates a pool. Worker counts below 1 select runtime.NumCPU().
func NewPool(workers int) *Pool { return par.NewPool(workers) }

// ForEach runs fn(0..n-1) over a worker pool; see par.ForEach.
func ForEach(workers, n int, fn func(i int)) { par.ForEach(workers, n, fn) }

// NewBudget creates a budget of n extra-worker tokens; see par.NewBudget.
func NewBudget(n int) *Budget { return par.NewBudget(n) }

// ContextWithBudget attaches a CPU budget to the context; see
// par.ContextWithBudget.
func ContextWithBudget(ctx context.Context, b *Budget) context.Context {
	return par.ContextWithBudget(ctx, b)
}

// BudgetFrom returns the context's budget, or nil; see par.BudgetFrom.
func BudgetFrom(ctx context.Context) *Budget { return par.BudgetFrom(ctx) }

// IsBudgetKey reports whether key is the budget context key; see
// par.IsBudgetKey.
func IsBudgetKey(key any) bool { return par.IsBudgetKey(key) }

// AcquireWorkers resolves the worker count for a budgeted parallel
// section; see par.AcquireWorkers.
func AcquireWorkers(ctx context.Context, want int) (int, func()) {
	return par.AcquireWorkers(ctx, want)
}
