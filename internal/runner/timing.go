// The timing harness: per-benchmark, per-stage wall-time and allocation
// profiling of the full pipeline (build → validate → place → route →
// attach → profile), collected concurrently and rendered as a stats.Table.
// This is the "timing" pseudo-experiment of parchmint-bench — deliberately
// NOT part of "-exp all": its numbers are wall-clock measurements of this
// machine and run, so it is excluded from the byte-reproducible artifact
// set the golden tests pin.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/validate"
)

// Timings accumulates per-(task, stage) durations from concurrent workers.
// The zero value is ready to use.
type Timings struct {
	mu sync.Mutex
	d  map[string]map[string]time.Duration
}

// Record adds a stage duration for a task (summing repeated observations).
func (tm *Timings) Record(task, stage string, d time.Duration) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.d == nil {
		tm.d = make(map[string]map[string]time.Duration)
	}
	if tm.d[task] == nil {
		tm.d[task] = make(map[string]time.Duration)
	}
	tm.d[task][stage] += d
}

// Observer adapts Record to the pnr stage-hook signature for one task.
func (tm *Timings) Observer(task string) func(stage string, d time.Duration) {
	return func(stage string, d time.Duration) { tm.Record(task, stage, d) }
}

// Get returns the recorded duration for (task, stage); zero when absent.
func (tm *Timings) Get(task, stage string) time.Duration {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.d[task][stage]
}

// Snapshot returns a deep copy of every recorded (task, stage) duration,
// safe to iterate while workers keep recording. The metrics exporter of
// the benchmark service renders these as stage-timing gauges.
func (tm *Timings) Snapshot() map[string]map[string]time.Duration {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make(map[string]map[string]time.Duration, len(tm.d))
	for task, stages := range tm.d {
		cp := make(map[string]time.Duration, len(stages))
		for s, d := range stages {
			cp[s] = d
		}
		out[task] = cp
	}
	return out
}

// timed runs fn and records its wall time under (task, stage).
func (tm *Timings) timed(task, stage string, fn func()) {
	start := time.Now()
	fn()
	tm.Record(task, stage, time.Since(start))
}

// TimingOptions configures the timing pseudo-experiment.
type TimingOptions struct {
	// Workers is the pool size; values below 1 select runtime.NumCPU().
	Workers int
	// Seed is the base seed; each benchmark's flow runs with
	// DeriveSeed(Seed, benchmark-name), the runner's standard rule.
	Seed uint64
	// Placer and Router select the engines; nil means the fast baseline
	// pair (greedy + A*), keeping the default timing run quick.
	Placer place.Placer
	Router route.Router
}

// timingStages is the column order of the timing table.
var timingStages = []string{"build", "validate", pnr.StagePlace, pnr.StageRoute, pnr.StageAttach, "profile"}

// TimingTable profiles the pipeline with a background context; see
// TimingTableContext.
func TimingTable(benchmarks []bench.Benchmark, opts TimingOptions) *stats.Table {
	return TimingTableContext(context.Background(), benchmarks, opts)
}

// TimingTableContext profiles the full pipeline over the given benchmarks
// on a worker pool and reports per-stage wall time in milliseconds plus
// the process-wide allocation delta attributed to each benchmark's task
// (approximate under concurrency: allocation is sampled around the whole
// task, not per goroutine). Rows appear in benchmark order regardless of
// completion order. A telemetry recorder on ctx sees one span per
// benchmark wrapping the flow's stage spans.
func TimingTableContext(ctx context.Context, benchmarks []bench.Benchmark, opts TimingOptions) *stats.Table {
	placer := opts.Placer
	if placer == nil {
		placer = place.Greedy{}
	}
	router := opts.Router
	if router == nil {
		router = route.AStar{}
	}
	pool := NewPool(opts.Workers)
	tm := &Timings{}
	allocs := make([]uint64, len(benchmarks))
	tasks := make([]Task, len(benchmarks))
	for i, b := range benchmarks {
		i, b := i, b
		tasks[i] = Task{
			ID:   b.Name,
			Seed: DeriveSeed(opts.Seed, b.Name),
			Run: func(t Task) error {
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				tctx, span := obs.Start(ctx, "timing."+b.Name)
				defer span.End()
				var d *core.Device
				tm.timed(b.Name, "build", func() { d = b.Build() })
				tm.timed(b.Name, "validate", func() {
					if vr := validate.Validate(d); !vr.OK() {
						panic(fmt.Sprintf("runner: %s fails validation: %s", b.Name, vr))
					}
				})
				if _, err := pnr.RunContext(tctx, d, pnr.Options{
					Placer:  placer,
					Router:  router,
					Place:   place.Options{Seed: t.Seed},
					Observe: tm.Observer(b.Name),
				}); err != nil {
					return fmt.Errorf("runner: %s: %w", b.Name, err)
				}
				tm.timed(b.Name, "profile", func() {
					stats.ProfileDevice(d, string(b.Class))
				})
				runtime.ReadMemStats(&after)
				allocs[i] = after.TotalAlloc - before.TotalAlloc
				return nil
			},
		}
	}
	if err := pool.Run(tasks); err != nil {
		panic(err)
	}
	cols := []string{"benchmark"}
	for _, s := range timingStages {
		cols = append(cols, s+"(ms)")
	}
	cols = append(cols, "total(ms)", "alloc(mb)")
	t := stats.NewTable(
		fmt.Sprintf("Timing: pipeline stage profile (%s + %s, %d workers; wall-clock, not byte-reproducible)",
			placer.Name(), router.Name(), pool.Workers()),
		cols...,
	)
	for i, b := range benchmarks {
		row := []string{b.Name}
		var total time.Duration
		for _, s := range timingStages {
			d := tm.Get(b.Name, s)
			total += d
			row = append(row, stats.F2(msOf(d)))
		}
		row = append(row, stats.F2(msOf(total)), stats.F2(float64(allocs[i])/(1<<20)))
		t.AddRow(row...)
	}
	return t
}

func msOf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
