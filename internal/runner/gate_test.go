package runner

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestGateDerivesSeeds(t *testing.T) {
	g := NewGate(2, 2018)
	var got uint64
	if err := g.Do(context.Background(), "rotary_pcr", func(seed uint64) error {
		got = seed
		return nil
	}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if want := DeriveSeed(2018, "rotary_pcr"); got != want {
		t.Errorf("seed = %d, want DeriveSeed = %d", got, want)
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	const workers = 3
	g := NewGate(workers, 1)
	if g.Workers() != workers {
		t.Fatalf("Workers = %d", g.Workers())
	}
	var mu sync.Mutex
	inflight, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = g.Do(context.Background(), "t", func(uint64) error {
				mu.Lock()
				inflight++
				if inflight > peak {
					peak = inflight
				}
				mu.Unlock()
				mu.Lock()
				inflight--
				mu.Unlock()
				return nil
			})
		}()
	}
	wg.Wait()
	if peak > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", peak, workers)
	}
	if g.InFlight() != 0 {
		t.Errorf("InFlight = %d after drain", g.InFlight())
	}
}

func TestGateHonorsCancelledContext(t *testing.T) {
	g := NewGate(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := g.Do(ctx, "t", func(uint64) error {
		t.Error("fn ran despite cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Do = %v, want context.Canceled", err)
	}
}

func TestGateReleasesSlotOnError(t *testing.T) {
	g := NewGate(1, 1)
	boom := errors.New("boom")
	if err := g.Do(context.Background(), "a", func(uint64) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v", err)
	}
	// The slot must be free again: a second call succeeds immediately.
	if err := g.Do(context.Background(), "b", func(uint64) error { return nil }); err != nil {
		t.Fatalf("second Do = %v", err)
	}
}
