package runner

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateDerivesSeeds(t *testing.T) {
	g := NewGate(2, 2018)
	var got uint64
	if err := g.Do(context.Background(), "rotary_pcr", func(seed uint64) error {
		got = seed
		return nil
	}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if want := DeriveSeed(2018, "rotary_pcr"); got != want {
		t.Errorf("seed = %d, want DeriveSeed = %d", got, want)
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	const workers = 3
	g := NewGate(workers, 1)
	if g.Workers() != workers {
		t.Fatalf("Workers = %d", g.Workers())
	}
	var mu sync.Mutex
	inflight, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = g.Do(context.Background(), "t", func(uint64) error {
				mu.Lock()
				inflight++
				if inflight > peak {
					peak = inflight
				}
				mu.Unlock()
				mu.Lock()
				inflight--
				mu.Unlock()
				return nil
			})
		}()
	}
	wg.Wait()
	if peak > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", peak, workers)
	}
	if g.InFlight() != 0 {
		t.Errorf("InFlight = %d after drain", g.InFlight())
	}
}

func TestGateHonorsCancelledContext(t *testing.T) {
	g := NewGate(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := g.Do(ctx, "t", func(uint64) error {
		t.Error("fn ran despite cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Do = %v, want context.Canceled", err)
	}
}

func TestGateReleasesSlotOnError(t *testing.T) {
	g := NewGate(1, 1)
	boom := errors.New("boom")
	if err := g.Do(context.Background(), "a", func(uint64) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v", err)
	}
	// The slot must be free again: a second call succeeds immediately.
	if err := g.Do(context.Background(), "b", func(uint64) error { return nil }); err != nil {
		t.Fatalf("second Do = %v", err)
	}
}

// hold occupies one gate slot until release is closed, reporting on held
// once the slot is acquired.
func hold(t *testing.T, g *Gate, held, release chan struct{}) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = g.Do(context.Background(), "hold", func(uint64) error {
			close(held)
			<-release
			return nil
		})
	}()
	return &wg
}

func TestBoundedGateShedsWhenQueueFull(t *testing.T) {
	g := NewBoundedGate(1, 0, 1)
	held, release := make(chan struct{}), make(chan struct{})
	wg := hold(t, g, held, release)
	<-held
	err := g.Do(context.Background(), "t", func(uint64) error {
		t.Error("fn ran on a saturated gate with queue depth 0")
		return nil
	})
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("Do = %v, want ErrSaturated", err)
	}
	var sat *SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("Do = %T, want *SaturatedError", err)
	}
	if sat.Workers != 1 {
		t.Errorf("SaturatedError.Workers = %d, want 1", sat.Workers)
	}
	close(release)
	wg.Wait()
	// With the slot free again the same call is admitted.
	if err := g.Do(context.Background(), "t", func(uint64) error { return nil }); err != nil {
		t.Errorf("Do after drain = %v", err)
	}
}

func TestBoundedGateQueuesUpToDepth(t *testing.T) {
	g := NewBoundedGate(1, 1, 1)
	held, release := make(chan struct{}), make(chan struct{})
	wg := hold(t, g, held, release)
	<-held
	// One waiter fits in the queue.
	waiterErr := make(chan error, 1)
	go func() {
		waiterErr <- g.Do(context.Background(), "w", func(uint64) error { return nil })
	}()
	for i := 0; i < 200 && g.Waiting() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.Waiting() != 1 {
		t.Fatalf("Waiting = %d, want 1", g.Waiting())
	}
	// A second would-be waiter is refused.
	if err := g.Do(context.Background(), "x", func(uint64) error { return nil }); !errors.Is(err, ErrSaturated) {
		t.Errorf("second waiter Do = %v, want ErrSaturated", err)
	}
	close(release)
	wg.Wait()
	if err := <-waiterErr; err != nil {
		t.Errorf("queued waiter Do = %v, want nil", err)
	}
}

func TestGateShedsWhenDeadlineShorterThanEstimate(t *testing.T) {
	g := NewGate(1, 1)
	// Seed the service-time estimator with one slow call.
	if err := g.Do(context.Background(), "seed", func(uint64) error {
		time.Sleep(120 * time.Millisecond)
		return nil
	}); err != nil {
		t.Fatalf("seed Do = %v", err)
	}
	if g.EstimatedWait() <= 0 {
		t.Fatalf("EstimatedWait = %v after a served call, want > 0", g.EstimatedWait())
	}
	held, release := make(chan struct{}), make(chan struct{})
	wg := hold(t, g, held, release)
	<-held
	// A deadline far shorter than the ~120ms estimate is refused at
	// admission instead of queueing to certain failure.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := g.Do(ctx, "t", func(uint64) error {
		t.Error("fn ran despite a hopeless deadline")
		return nil
	})
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("Do = %v, want ErrSaturated", err)
	}
	var sat *SaturatedError
	if errors.As(err, &sat) && sat.EstimatedWait <= 0 {
		t.Errorf("EstimatedWait = %v, want > 0", sat.EstimatedWait)
	}
	// A generous deadline still queues: deadline-aware shedding must not
	// turn into unconditional shedding.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- g.Do(ctx, "ok", func(uint64) error { return nil })
	}()
	for i := 0; i < 200 && g.Waiting() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if err := <-done; err != nil {
		t.Errorf("patient waiter Do = %v, want nil", err)
	}
}

func TestUnboundedGateNeverShedsOnDepth(t *testing.T) {
	g := NewGate(1, 1)
	if g.QueueDepth() >= 0 {
		t.Fatalf("NewGate queue depth = %d, want unbounded (negative)", g.QueueDepth())
	}
	held, release := make(chan struct{}), make(chan struct{})
	wg := hold(t, g, held, release)
	<-held
	const waiters = 5
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			errs <- g.Do(context.Background(), "w", func(uint64) error { return nil })
		}()
	}
	for i := 0; i < 500 && g.Waiting() < waiters; i++ {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if err := <-errs; err != nil {
			t.Errorf("waiter %d: %v", i, err)
		}
	}
}
