package runner

import (
	"context"
	"runtime"
)

// Gate is the admission side of the worker pool for long-lived services:
// where Pool runs a fixed batch of tasks, a Gate bounds how many
// independently arriving requests may compute at once. Work admitted
// through a Gate inherits the package's determinism contract — the seed
// passed to fn is DeriveSeed(baseSeed, id), a pure function of the gate's
// base seed and the caller-chosen task ID, never of arrival order or of
// which requests happen to be in flight. Identical requests therefore
// compute identical results at any concurrency level.
type Gate struct {
	slots    chan struct{}
	baseSeed uint64
}

// NewGate creates a gate admitting at most workers concurrent calls.
// Worker counts below 1 select runtime.NumCPU().
func NewGate(workers int, baseSeed uint64) *Gate {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	return &Gate{slots: make(chan struct{}, workers), baseSeed: baseSeed}
}

// Workers reports the gate's admission limit.
func (g *Gate) Workers() int { return cap(g.slots) }

// InFlight reports how many calls currently hold a slot.
func (g *Gate) InFlight() int { return len(g.slots) }

// Do waits for a free slot, then runs fn with the task's derived seed.
// It returns ctx.Err() without running fn when the context is cancelled
// while waiting (or already expired on admission), so queued requests
// abandon the line as soon as their caller gives up.
func (g *Gate) Do(ctx context.Context, id string, fn func(seed uint64) error) error {
	select {
	case g.slots <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-g.slots }()
	if err := ctx.Err(); err != nil {
		return err
	}
	return fn(DeriveSeed(g.baseSeed, id))
}
