package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// ErrSaturated reports that a gate refused admission instead of queueing.
// Match it with errors.Is; the concrete *SaturatedError carries the wait
// estimate callers can surface as client guidance (Retry-After).
var ErrSaturated = errors.New("runner: gate saturated")

// SaturatedError is the typed form of an admission refusal: the gate
// judged that queueing was pointless, either because the bounded queue is
// full or because the estimated wait already exceeds the caller's
// deadline.
type SaturatedError struct {
	// Workers and Waiting snapshot the gate at refusal time.
	Workers int
	Waiting int
	// EstimatedWait is the projected queueing delay (zero when the gate
	// has no service-time history yet).
	EstimatedWait time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("runner: gate saturated (%d workers busy, %d waiting, ~%s estimated wait)",
		e.Workers, e.Waiting, e.EstimatedWait.Round(time.Millisecond))
}

// Is makes errors.Is(err, ErrSaturated) match.
func (e *SaturatedError) Is(target error) bool { return target == ErrSaturated }

// Gate is the admission side of the worker pool for long-lived services:
// where Pool runs a fixed batch of tasks, a Gate bounds how many
// independently arriving requests may compute at once. Work admitted
// through a Gate inherits the package's determinism contract — the seed
// passed to fn is DeriveSeed(baseSeed, id), a pure function of the gate's
// base seed and the caller-chosen task ID, never of arrival order or of
// which requests happen to be in flight. Identical requests therefore
// compute identical results at any concurrency level.
//
// A gate may additionally bound its queue (NewBoundedGate): when every
// worker slot is busy, a caller that would wait behind a full queue — or
// longer than its own context deadline, judged against an exponentially
// weighted average of recent service times — is refused immediately with
// a *SaturatedError instead of blocking. Shedding changes only whether a
// request runs, never what an admitted request computes.
type Gate struct {
	slots    chan struct{}
	baseSeed uint64
	// queueDepth bounds callers blocked waiting for a slot; negative
	// means unbounded (never shed on depth).
	queueDepth int
	waiting    atomic.Int64
	// ewmaNanos tracks recent fn service time; 0 means no history.
	ewmaNanos atomic.Int64
}

// NewGate creates a gate admitting at most workers concurrent calls with
// an unbounded wait queue. Worker counts below 1 select runtime.NumCPU().
func NewGate(workers int, baseSeed uint64) *Gate {
	return NewBoundedGate(workers, -1, baseSeed)
}

// NewBoundedGate creates a gate admitting at most workers concurrent
// calls and at most queueDepth callers waiting for a slot; further
// arrivals are refused with *SaturatedError. queueDepth 0 sheds whenever
// every slot is busy; negative queueDepth means unbounded (NewGate).
func NewBoundedGate(workers, queueDepth int, baseSeed uint64) *Gate {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	return &Gate{
		slots:      make(chan struct{}, workers),
		baseSeed:   baseSeed,
		queueDepth: queueDepth,
	}
}

// Workers reports the gate's admission limit.
func (g *Gate) Workers() int { return cap(g.slots) }

// InFlight reports how many calls currently hold a slot.
func (g *Gate) InFlight() int { return len(g.slots) }

// Waiting reports how many calls are blocked waiting for a slot.
func (g *Gate) Waiting() int { return int(g.waiting.Load()) }

// QueueDepth reports the queue bound; negative means unbounded.
func (g *Gate) QueueDepth() int { return g.queueDepth }

// EstimatedWait projects how long a new arrival would queue: the average
// recent service time times the number of full drain rounds ahead of it.
// Zero until the gate has served at least one call.
func (g *Gate) EstimatedWait() time.Duration {
	avg := time.Duration(g.ewmaNanos.Load())
	if avg <= 0 {
		return 0
	}
	rounds := 1 + int(g.waiting.Load())/cap(g.slots)
	return avg * time.Duration(rounds)
}

// observe folds one service duration into the wait estimator. The first
// sample seeds the average directly; later samples decay with a 1/8
// weight, so the estimate tracks load shifts within a few requests.
func (g *Gate) observe(d time.Duration) {
	for {
		old := g.ewmaNanos.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/8
		}
		if g.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// Do waits for a free slot, then runs fn with the task's derived seed.
// It returns ctx.Err() without running fn when the context is cancelled
// while waiting (or already expired on admission), so queued requests
// abandon the line as soon as their caller gives up. On a bounded gate it
// returns *SaturatedError without queueing when the wait queue is full;
// on any gate it refuses when the caller's deadline is closer than the
// estimated queueing delay, since admitting such a request only burns a
// slot on work whose client will have timed out.
func (g *Gate) Do(ctx context.Context, id string, fn func(seed uint64) error) error {
	select {
	case g.slots <- struct{}{}:
	default:
		if err := g.admit(ctx); err != nil {
			return err
		}
		g.waiting.Add(1)
		select {
		case g.slots <- struct{}{}:
			g.waiting.Add(-1)
		case <-ctx.Done():
			g.waiting.Add(-1)
			return ctx.Err()
		}
	}
	defer func() { <-g.slots }()
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now()
	err := fn(DeriveSeed(g.baseSeed, id))
	g.observe(time.Since(start))
	return err
}

// admit decides whether a caller that found no free slot may queue. The
// waiting count is read without joining the queue first, so the depth
// bound is approximate under heavy contention — by at most a handful of
// racing arrivals, never unboundedly.
func (g *Gate) admit(ctx context.Context) error {
	waiting := int(g.waiting.Load())
	if g.queueDepth >= 0 && waiting >= g.queueDepth {
		return &SaturatedError{Workers: cap(g.slots), Waiting: waiting, EstimatedWait: g.EstimatedWait()}
	}
	if deadline, ok := ctx.Deadline(); ok {
		if est := g.EstimatedWait(); est > 0 && time.Until(deadline) < est {
			return &SaturatedError{Workers: cap(g.slots), Waiting: waiting, EstimatedWait: est}
		}
	}
	return nil
}
