package runner

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBudgetTryAcquireNeverExceedsCap(t *testing.T) {
	b := NewBudget(3)
	if b.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", b.Cap())
	}
	if got := b.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) = %d, want 2", got)
	}
	if got := b.TryAcquire(5); got != 1 {
		t.Fatalf("TryAcquire(5) with 1 left = %d, want 1", got)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on empty budget = %d, want 0", got)
	}
	if b.InUse() != 3 {
		t.Fatalf("InUse = %d, want 3", b.InUse())
	}
	b.Release(3)
	if b.InUse() != 0 {
		t.Fatalf("InUse after release = %d, want 0", b.InUse())
	}
	if got := b.TryAcquire(3); got != 3 {
		t.Fatalf("TryAcquire after full release = %d, want 3", got)
	}
	b.Release(3)
}

func TestBudgetReleaseBeyondCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release beyond capacity did not panic")
		}
	}()
	NewBudget(1).Release(1)
}

func TestBudgetZeroCapacity(t *testing.T) {
	b := NewBudget(0) // resolves to NumCPU-1, may legitimately be 0
	got := b.TryAcquire(4)
	if got > b.Cap() {
		t.Fatalf("acquired %d tokens from a %d-token budget", got, b.Cap())
	}
	b.Release(got)
}

// TestBudgetPoolInPool is the nested-parallelism regression: an outer pool
// of tasks each opening an inner budgeted parallel section must never run
// more than outer+Cap() worker goroutines at once, and the total extra
// width (inner workers beyond each task's own goroutine) must never exceed
// the budget.
func TestBudgetPoolInPool(t *testing.T) {
	const (
		outer     = 4
		budgetCap = 2
		innerWant = 8
	)
	b := NewBudget(budgetCap)
	ctx := ContextWithBudget(context.Background(), b)

	var extraInFlight atomic.Int64
	var maxExtra atomic.Int64

	tasks := make([]Task, outer)
	for i := range tasks {
		tasks[i] = Task{
			ID: "outer",
			Run: func(Task) error {
				workers, release := AcquireWorkers(ctx, innerWant)
				defer release()
				extra := int64(workers - 1)
				cur := extraInFlight.Add(extra)
				for {
					prev := maxExtra.Load()
					if cur <= prev || maxExtra.CompareAndSwap(prev, cur) {
						break
					}
				}
				// Hold the tokens across a real inner parallel loop so
				// sections genuinely overlap.
				ForEach(workers, innerWant, func(int) {
					time.Sleep(time.Millisecond)
				})
				extraInFlight.Add(-extra)
				return nil
			},
		}
	}
	if err := NewPool(outer).Run(tasks); err != nil {
		t.Fatal(err)
	}
	if got := maxExtra.Load(); got > budgetCap {
		t.Fatalf("max concurrent extra workers = %d, exceeds budget %d", got, budgetCap)
	}
	if b.InUse() != 0 {
		t.Fatalf("tokens leaked: InUse = %d after all sections released", b.InUse())
	}
}

// TestBudgetNoDeadlockUnderSaturatedGate pins the non-blocking guarantee:
// work admitted through a fully saturated 1-slot gate that then opens an
// inner budgeted section on an empty budget must complete (degrading to
// sequential), not wait for tokens that can never arrive.
func TestBudgetNoDeadlockUnderSaturatedGate(t *testing.T) {
	gate := NewGate(1, 42)
	b := NewBudget(1)
	// Exhaust the budget from outside so the gated work finds it empty.
	if got := b.TryAcquire(1); got != 1 {
		t.Fatal("failed to drain budget")
	}
	defer b.Release(1)

	ctx := ContextWithBudget(context.Background(), b)
	done := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done <- gate.Do(ctx, "req", func(uint64) error {
				workers, release := AcquireWorkers(ctx, 8)
				defer release()
				if workers != 1 {
					t.Errorf("workers = %d on an empty budget, want 1", workers)
				}
				var n atomic.Int64
				ForEach(workers, 16, func(int) { n.Add(1) })
				if n.Load() != 16 {
					t.Errorf("inner loop ran %d of 16 iterations", n.Load())
				}
				return nil
			})
		}()
	}

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: gated budgeted work did not complete")
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("gate.Do: %v", err)
		}
	}
}

func TestAcquireWorkersWithoutBudget(t *testing.T) {
	workers, release := AcquireWorkers(context.Background(), 6)
	defer release()
	if workers != 6 {
		t.Fatalf("unbudgeted AcquireWorkers(6) = %d, want 6", workers)
	}
	if w, rel := AcquireWorkers(context.Background(), 0); w != 1 {
		t.Fatalf("AcquireWorkers(0) = %d, want 1", w)
	} else {
		rel()
	}
}
