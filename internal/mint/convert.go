package mint

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// DefaultChannelWidth is used for channels that do not declare w=.
const DefaultChannelWidth = 100

// widthParamPrefix namespaces per-channel widths inside device params so a
// MINT -> ParchMint -> MINT round trip preserves them (ParchMint v1
// connections carry no width of their own; widths normally live in routed
// features).
const widthParamPrefix = "channelWidth."

// Fidelity reports how faithful a conversion was. Conversions always
// produce output; Notes records anything that could not be represented.
type Fidelity struct {
	Notes []string
}

// Lossless reports whether the conversion preserved everything.
func (f *Fidelity) Lossless() bool { return len(f.Notes) == 0 }

func (f *Fidelity) notef(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// defaultSpans returns the conventional footprint for an entity when the
// MINT statement does not size it.
func defaultSpans(entity string) (x, y int64) {
	switch entity {
	case core.EntityPort:
		return 200, 200
	case core.EntityValve, core.EntityValve3D:
		return 300, 300
	case core.EntityMixer:
		return 2000, 1000
	default:
		return 1000, 1000
	}
}

// ConventionPorts generates the MINT port convention for an entity with the
// given footprint: PORT gets a single centered "port1"; every other entity
// gets `in` ports evenly spaced on the west edge labeled port1..port{in}
// followed by `out` ports on the east edge.
func ConventionPorts(entity, layerID string, xSpan, ySpan int64, in, out int) []core.Port {
	if entity == core.EntityPort {
		return []core.Port{{Label: "port1", Layer: layerID, X: xSpan / 2, Y: ySpan / 2}}
	}
	ports := make([]core.Port, 0, in+out)
	for i := 1; i <= in; i++ {
		ports = append(ports, core.Port{
			Label: "port" + strconv.Itoa(i),
			Layer: layerID,
			X:     0,
			Y:     ySpan * int64(i) / int64(in+1),
		})
	}
	for j := 1; j <= out; j++ {
		ports = append(ports, core.Port{
			Label: "port" + strconv.Itoa(in+j),
			Layer: layerID,
			X:     xSpan,
			Y:     ySpan * int64(j) / int64(out+1),
		})
	}
	return ports
}

// ToDevice converts a parsed MINT file to a ParchMint device.
func ToDevice(f *File) (*core.Device, *Fidelity, error) {
	fid := &Fidelity{}
	d := &core.Device{Name: f.DeviceName, Params: core.Params{}}

	flowCount, ctrlCount := 0, 0
	for _, block := range f.Layers {
		layerID := ""
		switch block.Type {
		case core.LayerFlow:
			flowCount++
			layerID = layerName("flow", flowCount)
		case core.LayerControl:
			ctrlCount++
			layerID = layerName("control", ctrlCount)
		default:
			return nil, nil, fmt.Errorf("mint: unsupported layer type %q", block.Type)
		}
		d.Layers = append(d.Layers, core.Layer{ID: layerID, Name: layerID, Type: block.Type})

		for _, stmt := range block.Components {
			for _, id := range stmt.IDs {
				comp, err := statementComponent(&stmt, id, layerID, fid)
				if err != nil {
					return nil, nil, err
				}
				d.Components = append(d.Components, comp)
			}
		}
		for _, ch := range block.Channels {
			conn := core.Connection{
				ID:     ch.ID,
				Name:   ch.ID,
				Layer:  layerID,
				Source: refTarget(ch.From),
				Sinks:  []core.Target{refTarget(ch.To)},
			}
			d.Connections = append(d.Connections, conn)
			// Only non-default widths are worth a param entry; recording
			// the default would make MINT->ParchMint->MINT round trips
			// grow params the original device never had.
			if w, ok := ch.Params["w"]; ok && w != DefaultChannelWidth {
				d.Params[widthParamPrefix+ch.ID] = float64(w)
			}
			for k := range ch.Params {
				if k != "w" {
					fid.notef("channel %s: parameter %q dropped", ch.ID, k)
				}
			}
		}
	}
	if len(d.Params) == 0 {
		d.Params = nil
	}
	return d, fid, nil
}

func layerName(base string, n int) string {
	if n == 1 {
		return base
	}
	return base + strconv.Itoa(n)
}

// statementComponent realizes one instance of a component statement.
func statementComponent(stmt *ComponentStmt, id, layerID string, fid *Fidelity) (core.Component, error) {
	x, y := defaultSpans(stmt.Entity)
	if r, ok := stmt.Params["r"]; ok {
		if r <= 0 {
			return core.Component{}, errf(stmt.Line, "component %s: non-positive radius %d", id, r)
		}
		x, y = 2*r, 2*r
	}
	if w, ok := stmt.Params["w"]; ok {
		x = w
	}
	if h, ok := stmt.Params["h"]; ok {
		y = h
	}
	if x <= 0 || y <= 0 {
		return core.Component{}, errf(stmt.Line, "component %s: non-positive footprint %dx%d", id, x, y)
	}
	in, out := 1, 1
	if v, ok := stmt.Params["in"]; ok {
		in = int(v)
	}
	if v, ok := stmt.Params["out"]; ok {
		out = int(v)
	}
	if in < 0 || out < 0 || in+out == 0 {
		return core.Component{}, errf(stmt.Line, "component %s: invalid port counts in=%d out=%d", id, in, out)
	}
	for k := range stmt.Params {
		switch k {
		case "w", "h", "r", "in", "out":
		default:
			fid.notef("component %s: parameter %q dropped", id, k)
		}
	}
	return core.Component{
		ID:     id,
		Name:   id,
		Entity: stmt.Entity,
		Layers: []string{layerID},
		XSpan:  x,
		YSpan:  y,
		Ports:  ConventionPorts(stmt.Entity, layerID, x, y, in, out),
	}, nil
}

func refTarget(r Ref) core.Target {
	t := core.Target{Component: r.Component}
	if r.PortNum > 0 {
		t.Port = "port" + strconv.Itoa(r.PortNum)
	}
	return t
}

// FromDevice converts a ParchMint device to a MINT file. Devices that use
// constructs outside the MINT subset (multi-layer components, multi-sink
// connections, off-convention ports) still convert, with the degradations
// recorded in the returned Fidelity.
func FromDevice(d *core.Device) (*File, *Fidelity, error) {
	fid := &Fidelity{}
	f := &File{DeviceName: d.Name}
	if f.DeviceName == "" {
		f.DeviceName = "unnamed"
		fid.notef("device has no name; using %q", f.DeviceName)
	}

	blockOf := make(map[string]int, len(d.Layers))
	for _, l := range d.Layers {
		typ := l.Type
		if typ != core.LayerFlow && typ != core.LayerControl {
			fid.notef("layer %s: type %q not expressible; emitting FLOW", l.ID, l.Type)
			typ = core.LayerFlow
		}
		blockOf[l.ID] = len(f.Layers)
		f.Layers = append(f.Layers, LayerBlock{Type: typ})
	}
	if len(f.Layers) == 0 {
		return nil, nil, fmt.Errorf("mint: device %q has no layers", d.Name)
	}

	for i := range d.Components {
		c := &d.Components[i]
		bi, stmt := componentStatement(c, blockOf, fid)
		f.Layers[bi].Components = append(f.Layers[bi].Components, stmt)
	}
	for i := range d.Connections {
		cn := &d.Connections[i]
		bi, ok := blockOf[cn.Layer]
		if !ok {
			fid.notef("connection %s: undeclared layer %q; emitting in first block", cn.ID, cn.Layer)
			bi = 0
		}
		width := int64(d.Params.GetDefault(widthParamPrefix+cn.ID,
			d.Params.GetDefault("channelWidth", DefaultChannelWidth)))
		if len(cn.Sinks) == 0 {
			fid.notef("connection %s: no sinks; dropped", cn.ID)
			continue
		}
		for si, sink := range cn.Sinks {
			id := cn.ID
			if len(cn.Sinks) > 1 {
				id = fmt.Sprintf("%s_s%d", cn.ID, si)
				if si == 0 {
					fid.notef("connection %s: fanout %d split into %d channels", cn.ID, len(cn.Sinks), len(cn.Sinks))
				}
			}
			f.Layers[bi].Channels = append(f.Layers[bi].Channels, ChannelStmt{
				ID:     id,
				From:   targetRef(d, cn.Source, cn.ID, fid),
				To:     targetRef(d, sink, cn.ID, fid),
				Params: map[string]int64{"w": width},
			})
		}
	}
	if len(d.Features) > 0 {
		fid.notef("%d physical features dropped (MINT is pre-placement)", len(d.Features))
	}
	if len(d.ValveMap) > 0 {
		fid.notef("v1.2 valve map (%d entries) dropped", len(d.ValveMap))
	}
	nPaths := 0
	for i := range d.Connections {
		nPaths += len(d.Connections[i].Paths)
	}
	if nPaths > 0 {
		fid.notef("v1.2 connection paths (%d) dropped", nPaths)
	}
	return f, fid, nil
}

// componentStatement renders one component as a MINT statement, noting any
// geometry outside the convention.
func componentStatement(c *core.Component, blockOf map[string]int, fid *Fidelity) (int, ComponentStmt) {
	bi := 0
	if len(c.Layers) == 0 {
		fid.notef("component %s: no layers; emitting in first block", c.ID)
	} else {
		if idx, ok := blockOf[c.Layers[0]]; ok {
			bi = idx
		} else {
			fid.notef("component %s: undeclared layer %q; emitting in first block", c.ID, c.Layers[0])
		}
		if len(c.Layers) > 1 {
			fid.notef("component %s: spans %d layers; MINT keeps only %q", c.ID, len(c.Layers), c.Layers[0])
		}
	}
	entity := c.Entity
	if !knownMintEntity(entity) {
		fid.notef("component %s: entity %q not in MINT vocabulary; emitting CHAMBER", c.ID, c.Entity)
		entity = core.EntityChamber
	}
	stmt := ComponentStmt{Entity: entity, IDs: []string{c.ID}, Params: map[string]int64{}}

	if entity == core.EntityPort && c.XSpan == c.YSpan && c.XSpan%2 == 0 {
		stmt.Params["r"] = c.XSpan / 2
	} else {
		stmt.Params["w"] = c.XSpan
		stmt.Params["h"] = c.YSpan
	}

	in, out := classifyPorts(c)
	if in >= 0 {
		if in != 1 {
			stmt.Params["in"] = int64(in)
		}
		if out != 1 {
			stmt.Params["out"] = int64(out)
		}
	} else {
		fid.notef("component %s: port geometry is off-convention; regenerated ports will differ", c.ID)
	}
	return bi, stmt
}

// classifyPorts checks whether c's ports follow the MINT convention and
// returns (in, out) counts; (-1, -1) when off-convention.
func classifyPorts(c *core.Component) (in, out int) {
	layer := ""
	if len(c.Layers) > 0 {
		layer = c.Layers[0]
	}
	if c.Entity == core.EntityPort {
		want := ConventionPorts(c.Entity, layer, c.XSpan, c.YSpan, 1, 1)
		if portsEqual(c.Ports, want) {
			return 1, 1
		}
		return -1, -1
	}
	nIn, nOut := 0, 0
	for _, p := range c.Ports {
		switch {
		case p.X == 0:
			nIn++
		case p.X == c.XSpan:
			nOut++
		default:
			return -1, -1
		}
	}
	want := ConventionPorts(c.Entity, layer, c.XSpan, c.YSpan, nIn, nOut)
	if portsEqual(c.Ports, want) {
		return nIn, nOut
	}
	return -1, -1
}

func portsEqual(a, b []core.Port) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func knownMintEntity(entity string) bool {
	if _, ok := twoWordEntities[entity]; ok {
		return true
	}
	_, ok := oneWordEntities[strings.ToUpper(entity)]
	return ok
}

// targetRef converts a ParchMint target to a MINT endpoint reference. Port
// labels outside the "portN" convention degrade to any-port references.
func targetRef(d *core.Device, t core.Target, connID string, fid *Fidelity) Ref {
	r := Ref{Component: t.Component}
	if t.Port == "" {
		return r
	}
	if n, ok := strings.CutPrefix(t.Port, "port"); ok {
		if v, err := strconv.Atoi(n); err == nil && v > 0 {
			r.PortNum = v
			return r
		}
	}
	fid.notef("connection %s: port label %q not numeric; emitting any-port reference", connID, t.Port)
	return r
}
