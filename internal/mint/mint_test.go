package mint

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/validate"
)

const sample = `# A small two-layer device.
DEVICE demo

LAYER FLOW
    PORT in, out r=100 ;
    MIXER m1 w=2000 h=1000 ;
    TREE t1 w=1500 h=1500 in=1 out=4 ;
    CHANNEL c1 from in 1 to m1 1 w=120 ;
    CHANNEL c2 from m1 2 to t1 1 w=120 ;
    CHANNEL c3 from t1 2 to out 1 ;
END LAYER

LAYER CONTROL
    PORT cp r=100 ;
    VALVE v1 w=300 h=300 ;
    CHANNEL cc1 from cp 1 to v1 1 w=80 ;
END LAYER
`

func TestParseSample(t *testing.T) {
	f, err := Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.DeviceName != "demo" {
		t.Errorf("DeviceName = %q", f.DeviceName)
	}
	if len(f.Layers) != 2 {
		t.Fatalf("layers = %d", len(f.Layers))
	}
	flow := f.Layers[0]
	if flow.Type != core.LayerFlow || len(flow.Components) != 3 || len(flow.Channels) != 3 {
		t.Errorf("flow block = %+v", flow)
	}
	// Grouped declaration keeps both IDs.
	if got := flow.Components[0].IDs; len(got) != 2 || got[0] != "in" || got[1] != "out" {
		t.Errorf("grouped PORT ids = %v", got)
	}
	if flow.Components[0].Params["r"] != 100 {
		t.Errorf("PORT params = %v", flow.Components[0].Params)
	}
	tree := flow.Components[2]
	if tree.Entity != core.EntityTree || tree.Params["out"] != 4 {
		t.Errorf("TREE stmt = %+v", tree)
	}
	c1 := flow.Channels[0]
	if c1.From != (Ref{Component: "in", PortNum: 1}) || c1.To != (Ref{Component: "m1", PortNum: 1}) {
		t.Errorf("c1 = %+v", c1)
	}
	if c1.Params["w"] != 120 {
		t.Errorf("c1 width = %v", c1.Params)
	}
	// c3 has no params.
	if f.Layers[0].Channels[2].Params != nil {
		t.Errorf("c3 params = %v", f.Layers[0].Channels[2].Params)
	}
	ctrl := f.Layers[1]
	if ctrl.Type != core.LayerControl || len(ctrl.Components) != 2 {
		t.Errorf("control block = %+v", ctrl)
	}
}

func TestParseTwoWordEntity(t *testing.T) {
	src := `DEVICE d
LAYER FLOW
    ROTARY PUMP rp1 w=1200 h=1200 ;
    DIAMOND CHAMBER dc1 ;
    CELL TRAP ct1, ct2 ;
END LAYER
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	comps := f.Layers[0].Components
	if comps[0].Entity != core.EntityRotaryPump {
		t.Errorf("entity = %q", comps[0].Entity)
	}
	if comps[1].Entity != core.EntityDiamondChamber || comps[1].IDs[0] != "dc1" {
		t.Errorf("diamond = %+v", comps[1])
	}
	if comps[2].Entity != core.EntityCellTrap || len(comps[2].IDs) != 2 {
		t.Errorf("cell trap = %+v", comps[2])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	src := "device d\nlayer flow\n  port p1 r=50 ;\n  channel c from p1 To p1 ;\nend layer\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.DeviceName != "d" || len(f.Layers[0].Channels) != 1 {
		t.Errorf("parsed = %+v", f)
	}
}

func TestParseAnyPortRef(t *testing.T) {
	src := "DEVICE d\nLAYER FLOW\nPORT a, b r=50 ;\nCHANNEL c from a to b ;\nEND LAYER\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ch := f.Layers[0].Channels[0]
	if ch.From.PortNum != 0 || ch.To.PortNum != 0 {
		t.Errorf("any-port refs = %+v", ch)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"missing DEVICE", "LAYER FLOW\nEND LAYER", "DEVICE"},
		{"no layers", "DEVICE d\n", "no LAYER blocks"},
		{"bad layer type", "DEVICE d\nLAYER SIDEWAYS\nEND LAYER", "FLOW or CONTROL"},
		{"unterminated layer", "DEVICE d\nLAYER FLOW\nPORT p r=10 ;", "END LAYER"},
		{"unknown entity", "DEVICE d\nLAYER FLOW\nWIDGET w1 ;\nEND LAYER", "unknown entity"},
		{"missing semi", "DEVICE d\nLAYER FLOW\nPORT p r=10\nEND LAYER", "end of statement"},
		{"bad param", "DEVICE d\nLAYER FLOW\nPORT p r ;\nEND LAYER", "'='"},
		{"dup param", "DEVICE d\nLAYER FLOW\nPORT p r=1 r=2 ;\nEND LAYER", "duplicate parameter"},
		{"zero port num", "DEVICE d\nLAYER FLOW\nPORT a,b r=1 ;\nCHANNEL c from a 0 to b ;\nEND LAYER", "1-based"},
		{"missing to", "DEVICE d\nLAYER FLOW\nPORT a,b r=1 ;\nCHANNEL c from a 1 b 1 ;\nEND LAYER", "to"},
		{"bad char", "DEVICE d\nLAYER FLOW\nPORT p r=1 @ ;\nEND LAYER", "unexpected character"},
		{"dangling minus", "DEVICE d\nLAYER FLOW\nPORT p r=- ;\nEND LAYER", "digits"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("Parse succeeded, want error")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not mention %q", err, c.frag)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("DEVICE d\nLAYER FLOW\nWIDGET w1 ;\nEND LAYER")
	var me *Error
	if !errors.As(err, &me) {
		t.Fatalf("error type = %T", err)
	}
	if me.Line != 3 {
		t.Errorf("error line = %d, want 3", me.Line)
	}
}

func TestToDevice(t *testing.T) {
	f, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	d, fid, err := ToDevice(f)
	if err != nil {
		t.Fatalf("ToDevice: %v", err)
	}
	if !fid.Lossless() {
		t.Errorf("sample should convert losslessly: %v", fid.Notes)
	}
	if d.Name != "demo" || len(d.Layers) != 2 {
		t.Errorf("device = %+v", d)
	}
	if got := d.Stats(); got.Components != 6 || got.Connections != 4 {
		t.Errorf("Stats = %+v", got)
	}
	ix := d.Index()
	// r=100 becomes a 200x200 PORT with a centered port.
	in := ix.Component("in")
	if in.XSpan != 200 || in.YSpan != 200 {
		t.Errorf("in spans = %dx%d", in.XSpan, in.YSpan)
	}
	if p := in.Ports[0]; p.Label != "port1" || p.X != 100 || p.Y != 100 {
		t.Errorf("in port = %+v", p)
	}
	// TREE in=1 out=4 gets 5 convention ports.
	tree := ix.Component("t1")
	if len(tree.Ports) != 5 {
		t.Fatalf("tree ports = %d", len(tree.Ports))
	}
	if tree.Ports[0].X != 0 || tree.Ports[0].Y != 750 {
		t.Errorf("tree in port = %+v", tree.Ports[0])
	}
	if tree.Ports[1].X != 1500 || tree.Ports[1].Y != 300 {
		t.Errorf("tree out port1 = %+v", tree.Ports[1])
	}
	// Channel widths preserved via namespaced params.
	if w := d.Params.GetDefault("channelWidth.c1", 0); w != 120 {
		t.Errorf("c1 width param = %v", w)
	}
	// Default widths are not recorded: absent param means the default.
	if _, ok := d.Params.Get("channelWidth.c3"); ok {
		t.Error("default-width channel should not get a param entry")
	}
	// The converted device must validate cleanly.
	r := validate.Validate(d)
	if !r.OK() {
		t.Errorf("converted device invalid:\n%s", r)
	}
}

func TestToDeviceErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"bad radius", "DEVICE d\nLAYER FLOW\nPORT p r=0 ;\nEND LAYER", "radius"},
		{"bad footprint", "DEVICE d\nLAYER FLOW\nMIXER m w=0 h=10 ;\nEND LAYER", "footprint"},
		{"bad ports", "DEVICE d\nLAYER FLOW\nMIXER m in=0 out=0 ;\nEND LAYER", "port counts"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := Parse(c.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if _, _, err := ToDevice(f); err == nil || !strings.Contains(err.Error(), c.frag) {
				t.Errorf("ToDevice error = %v, want mention of %q", err, c.frag)
			}
		})
	}
}

func TestToDeviceDropsUnknownParams(t *testing.T) {
	f, err := Parse("DEVICE d\nLAYER FLOW\nMIXER m w=10 h=10 bogus=3 ;\nCHANNEL c from m 1 to m 2 q=1 ;\nEND LAYER")
	if err != nil {
		t.Fatal(err)
	}
	_, fid, err := ToDevice(f)
	if err != nil {
		t.Fatal(err)
	}
	if fid.Lossless() || len(fid.Notes) != 2 {
		t.Errorf("Notes = %v", fid.Notes)
	}
}

func TestToDeviceRepeatedLayers(t *testing.T) {
	src := "DEVICE d\nLAYER FLOW\nPORT a r=50 ;\nEND LAYER\nLAYER FLOW\nPORT b r=50 ;\nEND LAYER"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := ToDevice(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Layers[0].ID != "flow" || d.Layers[1].ID != "flow2" {
		t.Errorf("layer ids = %v", d.Layers)
	}
}

func TestMintRoundTripThroughDevice(t *testing.T) {
	// MINT -> Device -> MINT must be canonically byte-identical for files
	// inside the subset.
	f1, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	d, fid, err := ToDevice(f1)
	if err != nil {
		t.Fatal(err)
	}
	if !fid.Lossless() {
		t.Fatalf("forward notes: %v", fid.Notes)
	}
	f2, fid2, err := FromDevice(d)
	if err != nil {
		t.Fatal(err)
	}
	if !fid2.Lossless() {
		t.Fatalf("backward notes: %v", fid2.Notes)
	}
	f1.Canonicalize()
	f2.Canonicalize()
	t1, t2 := Print(f1), Print(f2)
	if t1 != t2 {
		t.Errorf("round trip text differs:\n--- original\n%s\n--- round trip\n%s", t1, t2)
	}
}

func TestDeviceRoundTripThroughMint(t *testing.T) {
	// Device -> MINT -> Device must reproduce the device for in-subset
	// devices built with the convention helpers.
	f, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	d1, _, err := ToDevice(f)
	if err != nil {
		t.Fatal(err)
	}
	m, fid, err := FromDevice(d1)
	if err != nil {
		t.Fatal(err)
	}
	if !fid.Lossless() {
		t.Fatalf("FromDevice notes: %v", fid.Notes)
	}
	d2, _, err := ToDevice(m)
	if err != nil {
		t.Fatal(err)
	}
	d1.Canonicalize()
	d2.Canonicalize()
	if !core.Equal(d1, d2) {
		a, _ := core.Marshal(d1)
		b, _ := core.Marshal(d2)
		t.Errorf("device round trip differs:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestFromDeviceDegradations(t *testing.T) {
	b := core.NewBuilder("odd")
	flow := b.FlowLayer()
	ctrl := b.ControlLayer()
	// Multi-layer valve with an off-convention control port.
	b.Component("v1", core.EntityValve, []string{flow, ctrl}, 300, 300,
		core.Port{Label: "port1", Layer: flow, X: 0, Y: 150},
		core.Port{Label: "port2", Layer: flow, X: 300, Y: 150},
		core.Port{Label: "ctl", Layer: ctrl, X: 150, Y: 0},
	)
	b.IOPort("in", flow, 200)
	// Multi-sink connection and a symbolic port label.
	b.Connect("n1", flow, "in.port1", "v1.port1", "v1.port2")
	b.Connect("n2", ctrl, "v1.ctl", "in.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, fid, err := FromDevice(d)
	if err != nil {
		t.Fatalf("FromDevice: %v", err)
	}
	if fid.Lossless() {
		t.Fatal("off-subset device should produce notes")
	}
	joined := strings.Join(fid.Notes, "\n")
	for _, frag := range []string{"spans 2 layers", "fanout 2", "port geometry", "not numeric"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("notes missing %q:\n%s", frag, joined)
		}
	}
	// Output still parses.
	if _, err := Parse(Print(m)); err != nil {
		t.Errorf("degraded output does not re-parse: %v\n%s", err, Print(m))
	}
}

func TestFromDeviceErrors(t *testing.T) {
	if _, _, err := FromDevice(&core.Device{Name: "bare"}); err == nil {
		t.Error("device without layers should fail")
	}
}

func TestFromDeviceUnknownEntity(t *testing.T) {
	d := &core.Device{
		Name:   "d",
		Layers: []core.Layer{{ID: "flow", Name: "flow", Type: core.LayerFlow}},
		Components: []core.Component{{
			ID: "x", Entity: "CUSTOM THING", Layers: []string{"flow"}, XSpan: 10, YSpan: 10,
		}},
	}
	m, fid, err := FromDevice(d)
	if err != nil {
		t.Fatal(err)
	}
	if fid.Lossless() {
		t.Error("unknown entity should be noted")
	}
	if m.Layers[0].Components[0].Entity != core.EntityChamber {
		t.Errorf("fallback entity = %q", m.Layers[0].Components[0].Entity)
	}
}

func TestPrintIsStableAndReparses(t *testing.T) {
	f, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	f.Canonicalize()
	text := Print(f)
	f2, err := Parse(text)
	if err != nil {
		t.Fatalf("printed text does not parse: %v\n%s", err, text)
	}
	f2.Canonicalize()
	if Print(f2) != text {
		t.Error("print -> parse -> print is not a fixed point")
	}
}

func TestCanonicalizeExplodesGroups(t *testing.T) {
	f, err := Parse("DEVICE d\nLAYER FLOW\nPORT b, a r=10 ;\nEND LAYER")
	if err != nil {
		t.Fatal(err)
	}
	f.Canonicalize()
	comps := f.Layers[0].Components
	if len(comps) != 2 || comps[0].IDs[0] != "a" || comps[1].IDs[0] != "b" {
		t.Errorf("canonical components = %+v", comps)
	}
}

func TestConventionPorts(t *testing.T) {
	ports := ConventionPorts(core.EntityMux, "flow", 1000, 900, 2, 3)
	if len(ports) != 5 {
		t.Fatalf("port count = %d", len(ports))
	}
	// Inputs on west edge at 1/3 and 2/3 height.
	if ports[0] != (core.Port{Label: "port1", Layer: "flow", X: 0, Y: 300}) {
		t.Errorf("port1 = %+v", ports[0])
	}
	if ports[1] != (core.Port{Label: "port2", Layer: "flow", X: 0, Y: 600}) {
		t.Errorf("port2 = %+v", ports[1])
	}
	// Outputs on east edge at 1/4, 2/4, 3/4.
	if ports[2] != (core.Port{Label: "port3", Layer: "flow", X: 1000, Y: 225}) {
		t.Errorf("port3 = %+v", ports[2])
	}
	if ports[4].Label != "port5" || ports[4].Y != 675 {
		t.Errorf("port5 = %+v", ports[4])
	}
}
