package mint

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/xrand"
)

// randomMintDevice builds a random device inside the MINT subset: single
// layer per component, convention ports, single-sink channels.
func randomMintDevice(seed uint64) *core.Device {
	r := xrand.New(seed*31 + 7)
	b := core.NewBuilder(fmt.Sprintf("mintfuzz_%d", seed))
	flow := b.FlowLayer()
	entities := []string{core.EntityMixer, core.EntityChamber, core.EntityTree, core.EntityMux}

	type sig struct{ comp, port string }
	var outs []sig // unconsumed output ports
	var ins []sig  // unconsumed input ports
	nComps := 2 + r.Intn(8)
	for i := 0; i < nComps; i++ {
		id := fmt.Sprintf("u%d", i)
		if r.Intn(3) == 0 {
			size := int64(100+r.Intn(5)*50) * 2 // even for r= encoding
			b.IOPort(id, flow, size)
			outs = append(outs, sig{id, "port1"})
			ins = append(ins, sig{id, "port1"})
			continue
		}
		entity := entities[r.Intn(len(entities))]
		in := 1 + r.Intn(3)
		out := 1 + r.Intn(3)
		x := int64(600 + r.Intn(15)*100)
		y := int64(400 + r.Intn(10)*100)
		b.Component(id, entity, []string{flow}, x, y,
			ConventionPorts(entity, flow, x, y, in, out)...)
		for k := 1; k <= in; k++ {
			ins = append(ins, sig{id, fmt.Sprintf("port%d", k)})
		}
		for k := 1; k <= out; k++ {
			outs = append(outs, sig{id, fmt.Sprintf("port%d", in+k)})
		}
	}
	nConns := 1 + r.Intn(6)
	for i := 0; i < nConns && len(ins) > 0 && len(outs) > 0; i++ {
		src := outs[r.Intn(len(outs))]
		dst := ins[r.Intn(len(ins))]
		b.Connect(fmt.Sprintf("w%d", i), flow,
			src.comp+"."+src.port, dst.comp+"."+dst.port)
	}
	return b.MustBuild()
}

// TestQuickDeviceMintRoundTrip: in-subset devices survive
// Device -> MINT -> Device losslessly.
func TestQuickDeviceMintRoundTrip(t *testing.T) {
	prop := func(seed uint64) bool {
		d1 := randomMintDevice(seed)
		f, fid, err := FromDevice(d1)
		if err != nil || !fid.Lossless() {
			t.Logf("seed %d: FromDevice err=%v notes=%v", seed, err, fid.Notes)
			return false
		}
		d2, fid2, err := ToDevice(f)
		if err != nil || !fid2.Lossless() {
			t.Logf("seed %d: ToDevice err=%v notes=%v", seed, err, fid2.Notes)
			return false
		}
		a, b := d1.Clone(), d2
		a.Canonicalize()
		b.Canonicalize()
		if !core.Equal(a, b) {
			t.Logf("seed %d: devices differ", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickPrintParseFixedPoint: canonical print -> parse -> print is a
// fixed point for generated files.
func TestQuickPrintParseFixedPoint(t *testing.T) {
	prop := func(seed uint64) bool {
		d := randomMintDevice(seed)
		f, _, err := FromDevice(d)
		if err != nil {
			return false
		}
		f.Canonicalize()
		text := Print(f)
		f2, err := Parse(text)
		if err != nil {
			t.Logf("seed %d: reparse failed: %v\n%s", seed, err, text)
			return false
		}
		f2.Canonicalize()
		return Print(f2) == text
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
