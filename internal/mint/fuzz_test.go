// Go-native fuzzing of the MINT lexer/parser, seeded from the suite's
// twelve benchmark devices. Two properties: Parse never panics on any
// input, and printing is a fixpoint — once a file has been printed and
// reparsed, printing it again reproduces the same bytes.
package mint_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/mint"
)

func FuzzParse(f *testing.F) {
	for _, b := range bench.Suite() {
		if mf, _, err := mint.FromDevice(b.Device()); err == nil {
			f.Add(mint.Print(mf))
		}
	}
	f.Add("")
	f.Add("DEVICE d\n")
	f.Add("DEVICE d\nLAYER FLOW\nPORT p1 r=500;\nEND LAYER\n")
	f.Add("DEVICE d\nLAYER FLOW\nCHANNEL c from a 2 to b 1 w=400;\nEND LAYER\n")
	f.Add("LAYER FLOW without a device header")
	f.Add("DEVICE \x00\nLAYER\n")
	f.Fuzz(func(t *testing.T, src string) {
		f1, err := mint.Parse(src)
		if err != nil {
			return // rejected input; only panics are failures
		}
		p1 := mint.Print(f1)
		f2, err := mint.Parse(p1)
		if err != nil {
			t.Fatalf("printer emitted unparseable MINT: %v\ninput: %q\nprinted: %q", err, src, p1)
		}
		p2 := mint.Print(f2)
		if p1 != p2 {
			t.Errorf("print is not a fixpoint\nfirst:  %q\nsecond: %q", p1, p2)
		}
	})
}
