package mint

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Print renders the file as MINT source text. Printing a canonicalized
// file is byte-stable; Parse(Print(f)) reproduces f up to statement
// grouping (see Canonicalize).
func Print(f *File) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DEVICE %s\n", f.DeviceName)
	for _, block := range f.Layers {
		sb.WriteByte('\n')
		kind := "FLOW"
		if block.Type == core.LayerControl {
			kind = "CONTROL"
		}
		fmt.Fprintf(&sb, "LAYER %s\n", kind)
		for _, c := range block.Components {
			sb.WriteString("    ")
			sb.WriteString(EntityKeyword(c.Entity))
			sb.WriteByte(' ')
			sb.WriteString(strings.Join(c.IDs, ", "))
			writeParams(&sb, c.Params)
			sb.WriteString(" ;\n")
		}
		for _, ch := range block.Channels {
			fmt.Fprintf(&sb, "    CHANNEL %s from %s to %s", ch.ID, refString(ch.From), refString(ch.To))
			writeParams(&sb, ch.Params)
			sb.WriteString(" ;\n")
		}
		sb.WriteString("END LAYER\n")
	}
	return sb.String()
}

func writeParams(sb *strings.Builder, params map[string]int64) {
	for _, k := range sortedParamKeys(params) {
		fmt.Fprintf(sb, " %s=%d", k, params[k])
	}
}

func refString(r Ref) string {
	if r.PortNum > 0 {
		return fmt.Sprintf("%s %d", r.Component, r.PortNum)
	}
	return r.Component
}
