// Package mint implements a reader, writer, and ParchMint converter for the
// MINT hardware description language — the textual netlist format of the
// Fluigi CAD flow from which the ParchMint suite's synthetic benchmarks
// originate. The package supports the structural subset of MINT needed for
// interchange: device/layer blocks, component declarations with numeric
// parameters, and CHANNEL statements.
//
//	DEVICE demo
//
//	LAYER FLOW
//	    PORT in, out r=100 ;
//	    MIXER m1 w=2000 h=1000 ;
//	    CHANNEL c1 from in 1 to m1 1 w=100 ;
//	    CHANNEL c2 from m1 2 to out 1 w=100 ;
//	END LAYER
//
// Comments run from '#' to end of line. Keywords are case-insensitive;
// identifiers are case-sensitive.
package mint

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokComma
	tokSemi
	tokEq
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokEq:
		return "'='"
	default:
		return fmt.Sprintf("tokenKind(%d)", int(k))
	}
}

// token is one lexical unit with its source line for error reporting.
type token struct {
	kind tokenKind
	text string
	num  int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokIdent:
		return fmt.Sprintf("%q", t.text)
	case tokNumber:
		return fmt.Sprintf("%d", t.num)
	default:
		return t.kind.String()
	}
}

// Error is a MINT syntax error with a line number.
type Error struct {
	Line    int
	Message string
}

// Error renders "mint: line N: message".
func (e *Error) Error() string { return fmt.Sprintf("mint: line %d: %s", e.Line, e.Message) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Message: fmt.Sprintf(format, args...)}
}

// lexer tokenizes MINT source.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// next returns the next token, skipping whitespace and comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) lexToken() (token, error) {
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{kind: tokComma, line: l.line}, nil
	case c == ';':
		l.pos++
		return token{kind: tokSemi, line: l.line}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, line: l.line}, nil
	case c >= '0' && c <= '9' || c == '-':
		return l.lexNumber()
	case isIdentStart(rune(c)):
		return l.lexIdent(), nil
	default:
		return token{}, errf(l.line, "unexpected character %q", c)
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
		if l.pos >= len(l.src) || l.src[l.pos] < '0' || l.src[l.pos] > '9' {
			return token{}, errf(l.line, "'-' not followed by digits")
		}
	}
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	text := l.src[start:l.pos]
	var n int64
	neg := false
	for i, ch := range text {
		if i == 0 && ch == '-' {
			neg = true
			continue
		}
		n = n*10 + int64(ch-'0')
		if n < 0 {
			return token{}, errf(l.line, "number %s overflows", text)
		}
	}
	if neg {
		n = -n
	}
	return token{kind: tokNumber, num: n, line: l.line}, nil
}

func (l *lexer) lexIdent() token {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// isKeyword reports whether an identifier equals the keyword,
// case-insensitively, so "from", "FROM" and "From" all parse.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
