package mint

import (
	"sort"
	"strings"

	"repro/internal/core"
)

// File is a parsed MINT source file.
type File struct {
	// DeviceName is the name after the DEVICE keyword.
	DeviceName string
	// Layers holds the layer blocks in source order.
	Layers []LayerBlock
}

// LayerBlock is one LAYER ... END LAYER region.
type LayerBlock struct {
	// Type is FLOW or CONTROL.
	Type core.LayerType
	// Components holds the component declarations in source order.
	Components []ComponentStmt
	// Channels holds the CHANNEL statements in source order.
	Channels []ChannelStmt
}

// ComponentStmt declares one or more components of a single entity:
//
//	MIXER m1, m2 w=2000 h=1000 ;
type ComponentStmt struct {
	// Entity is the MINT entity keyword phrase, e.g. "MIXER" or
	// "ROTARY PUMP" (already joined with a single space).
	Entity string
	// IDs lists the declared instance names.
	IDs []string
	// Params holds the numeric key=value parameters.
	Params map[string]int64
	// Line is the source line of the statement head.
	Line int
}

// ChannelStmt declares a channel:
//
//	CHANNEL c1 from m1 2 to out 1 w=100 ;
type ChannelStmt struct {
	ID     string
	From   Ref
	To     Ref
	Params map[string]int64
	Line   int
}

// Ref is a channel endpoint: a component and an optional 1-based port
// number (0 means "any port").
type Ref struct {
	Component string
	PortNum   int
}

// entityWords is the two-level lookup the parser uses to greedily match
// multi-word entities ("ROTARY PUMP", "DIAMOND CHAMBER", "CELL TRAP")
// before single-word ones.
var twoWordEntities = map[string]string{
	"ROTARY PUMP":     core.EntityRotaryPump,
	"DIAMOND CHAMBER": core.EntityDiamondChamber,
	"CELL TRAP":       core.EntityCellTrap,
}

var oneWordEntities = map[string]string{
	"PORT":       core.EntityPort,
	"MIXER":      core.EntityMixer,
	"VALVE":      core.EntityValve,
	"VALVE3D":    core.EntityValve3D,
	"PUMP":       core.EntityPump,
	"MUX":        core.EntityMux,
	"TREE":       core.EntityTree,
	"GRADIENT":   core.EntityGradient,
	"CHAMBER":    core.EntityChamber,
	"TRANSPOSER": core.EntityTransposer,
	"NODE":       core.EntityNode,
}

// EntityKeyword returns the MINT keyword phrase for a core entity. Every
// suite entity has a MINT spelling (the identity mapping, upper-cased).
func EntityKeyword(entity string) string { return entity }

// sortedParamKeys returns a statement's parameter keys in canonical order:
// the conventional w, h, r, in, out first, the rest alphabetically.
func sortedParamKeys(params map[string]int64) []string {
	preferred := []string{"w", "h", "r", "in", "out"}
	keys := make([]string, 0, len(params))
	for _, p := range preferred {
		if _, ok := params[p]; ok {
			keys = append(keys, p)
		}
	}
	var rest []string
	for k := range params {
		if !contains(preferred, k) {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	return append(keys, rest...)
}

// normalizeComponentParams copies params, dropping in=1/out=1 (the
// defaults) so explicit and implicit defaults canonicalize identically.
func normalizeComponentParams(params map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(params))
	for k, v := range params {
		if (k == "in" || k == "out") && v == 1 {
			continue
		}
		out[k] = v
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// normalizeChannelParams copies params, materializing the default channel
// width so "no w=" and "w=<default>" canonicalize identically.
func normalizeChannelParams(params map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(params)+1)
	for k, v := range params {
		out[k] = v
	}
	if _, ok := out["w"]; !ok {
		out["w"] = DefaultChannelWidth
	}
	return out
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Canonicalize rewrites the file into a deterministic normal form: grouped
// component statements ("PORT a, b r=100;") are exploded into one statement
// per instance, component statements are sorted by entity then ID, and
// channels are sorted by ID. Printing a canonicalized file yields
// byte-stable text, which is what the interchange-fidelity experiment
// compares.
func (f *File) Canonicalize() {
	for li := range f.Layers {
		l := &f.Layers[li]
		exploded := make([]ComponentStmt, 0, len(l.Components))
		for _, stmt := range l.Components {
			for _, id := range stmt.IDs {
				single := stmt
				single.IDs = []string{id}
				single.Params = normalizeComponentParams(stmt.Params)
				exploded = append(exploded, single)
			}
		}
		l.Components = exploded
		for ci := range l.Channels {
			l.Channels[ci].Params = normalizeChannelParams(l.Channels[ci].Params)
		}
		sort.SliceStable(l.Components, func(i, j int) bool {
			a, b := l.Components[i], l.Components[j]
			if a.Entity != b.Entity {
				return a.Entity < b.Entity
			}
			return strings.Join(a.IDs, ",") < strings.Join(b.IDs, ",")
		})
		sort.SliceStable(l.Channels, func(i, j int) bool {
			return l.Channels[i].ID < l.Channels[j].ID
		})
	}
}
