package mint

import (
	"strings"

	"repro/internal/core"
)

// Parse parses MINT source text into a File.
func Parse(src string) (*File, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseFile()
}

type parser struct {
	lex *lexer
	tok token // current token
}

// isReserved reports whether a token is a structural keyword that can never
// start a parameter; param parsing stops there so a missing semicolon is
// reported at the statement boundary rather than swallowing the keyword.
func isReserved(t token) bool {
	for _, kw := range [...]string{"DEVICE", "LAYER", "END", "CHANNEL", "from", "to"} {
		if isKeyword(t, kw) {
			return true
		}
	}
	return false
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, errf(p.tok.line, "expected %s (%s), got %s", kind, what, p.tok)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// expectKeyword consumes the given case-insensitive keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !isKeyword(p.tok, kw) {
		return errf(p.tok.line, "expected keyword %s, got %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) parseFile() (*File, error) {
	if err := p.expectKeyword("DEVICE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "device name")
	if err != nil {
		return nil, err
	}
	f := &File{DeviceName: name.text}
	for p.tok.kind != tokEOF {
		layer, err := p.parseLayer()
		if err != nil {
			return nil, err
		}
		f.Layers = append(f.Layers, layer)
	}
	if len(f.Layers) == 0 {
		return nil, errf(p.tok.line, "device %q has no LAYER blocks", f.DeviceName)
	}
	return f, nil
}

func (p *parser) parseLayer() (LayerBlock, error) {
	var block LayerBlock
	if err := p.expectKeyword("LAYER"); err != nil {
		return block, err
	}
	switch {
	case isKeyword(p.tok, "FLOW"):
		block.Type = core.LayerFlow
	case isKeyword(p.tok, "CONTROL"):
		block.Type = core.LayerControl
	default:
		return block, errf(p.tok.line, "expected FLOW or CONTROL after LAYER, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return block, err
	}
	for {
		switch {
		case isKeyword(p.tok, "END"):
			if err := p.advance(); err != nil {
				return block, err
			}
			if err := p.expectKeyword("LAYER"); err != nil {
				return block, err
			}
			return block, nil
		case p.tok.kind == tokEOF:
			return block, errf(p.tok.line, "unexpected end of input inside LAYER block (missing END LAYER)")
		case isKeyword(p.tok, "CHANNEL"):
			ch, err := p.parseChannel()
			if err != nil {
				return block, err
			}
			block.Channels = append(block.Channels, ch)
		default:
			comp, err := p.parseComponent()
			if err != nil {
				return block, err
			}
			block.Components = append(block.Components, comp)
		}
	}
}

// parseComponent parses "ENTITY [ENTITY2] id(, id)* (key=value)* ;".
func (p *parser) parseComponent() (ComponentStmt, error) {
	var stmt ComponentStmt
	stmt.Line = p.tok.line
	head, err := p.expect(tokIdent, "entity keyword")
	if err != nil {
		return stmt, err
	}
	first := strings.ToUpper(head.text)
	// Greedy two-word entity match: "ROTARY PUMP p1 ..." — the second word
	// must combine with the first into a known phrase, otherwise it is the
	// instance name.
	if p.tok.kind == tokIdent {
		phrase := first + " " + strings.ToUpper(p.tok.text)
		if entity, ok := twoWordEntities[phrase]; ok {
			stmt.Entity = entity
			if err := p.advance(); err != nil {
				return stmt, err
			}
		}
	}
	if stmt.Entity == "" {
		entity, ok := oneWordEntities[first]
		if !ok {
			return stmt, errf(head.line, "unknown entity keyword %q", head.text)
		}
		stmt.Entity = entity
	}
	// Instance names.
	for {
		id, err := p.expect(tokIdent, "component name")
		if err != nil {
			return stmt, err
		}
		stmt.IDs = append(stmt.IDs, id.text)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return stmt, err
		}
	}
	params, err := p.parseParams()
	if err != nil {
		return stmt, err
	}
	stmt.Params = params
	_, err = p.expect(tokSemi, "end of statement")
	return stmt, err
}

// parseChannel parses "CHANNEL id from ref to ref (key=value)* ;".
func (p *parser) parseChannel() (ChannelStmt, error) {
	var stmt ChannelStmt
	stmt.Line = p.tok.line
	if err := p.expectKeyword("CHANNEL"); err != nil {
		return stmt, err
	}
	id, err := p.expect(tokIdent, "channel name")
	if err != nil {
		return stmt, err
	}
	stmt.ID = id.text
	if err := p.expectKeyword("from"); err != nil {
		return stmt, err
	}
	if stmt.From, err = p.parseRef(); err != nil {
		return stmt, err
	}
	if err := p.expectKeyword("to"); err != nil {
		return stmt, err
	}
	if stmt.To, err = p.parseRef(); err != nil {
		return stmt, err
	}
	if stmt.Params, err = p.parseParams(); err != nil {
		return stmt, err
	}
	_, err = p.expect(tokSemi, "end of statement")
	return stmt, err
}

// parseRef parses "component [portnumber]".
func (p *parser) parseRef() (Ref, error) {
	comp, err := p.expect(tokIdent, "component reference")
	if err != nil {
		return Ref{}, err
	}
	ref := Ref{Component: comp.text}
	if p.tok.kind == tokNumber {
		if p.tok.num <= 0 {
			return ref, errf(p.tok.line, "port numbers are 1-based, got %d", p.tok.num)
		}
		ref.PortNum = int(p.tok.num)
		if err := p.advance(); err != nil {
			return ref, err
		}
	}
	return ref, nil
}

// parseParams parses zero or more "key=value" pairs. A nil map is returned
// when there are none.
func (p *parser) parseParams() (map[string]int64, error) {
	var params map[string]int64
	for p.tok.kind == tokIdent && !isReserved(p.tok) {
		key := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokEq {
			return nil, errf(key.line, "expected '=' after parameter %q, got %s", key.text, p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.expect(tokNumber, "parameter value")
		if err != nil {
			return nil, err
		}
		if params == nil {
			params = make(map[string]int64)
		}
		if _, dup := params[key.text]; dup {
			return nil, errf(key.line, "duplicate parameter %q", key.text)
		}
		params[key.text] = val.num
	}
	return params, nil
}
