package experiments

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/runner"
)

// cheapIDs are the experiments fast enough to regenerate several times in
// a unit test. The full artifact set (including the annealing-heavy
// figures) is covered by the root-level golden/determinism test.
var cheapIDs = []string{"table1", "table2", "fig2", "fig6", "ext-gradient"}

func renderCheap(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string, len(cheapIDs))
	for _, id := range cheapIDs {
		text, err := Run(id)
		if err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		out[id] = text
	}
	return out
}

// TestCheapExperimentsDeterministic regenerates the cheap artifacts twice
// sequentially and twice with the worker-pool parallelism raised, and
// requires all four renderings to be byte-identical.
func TestCheapExperimentsDeterministic(t *testing.T) {
	prev := runner.SetParallelism(1)
	defer runner.SetParallelism(prev)
	seq1 := renderCheap(t)
	seq2 := renderCheap(t)
	runner.SetParallelism(8)
	par1 := renderCheap(t)
	par2 := renderCheap(t)
	for _, id := range cheapIDs {
		if seq1[id] != seq2[id] {
			t.Errorf("%s: sequential rendering differs across runs", id)
		}
		if par1[id] != par2[id] {
			t.Errorf("%s: parallel rendering differs across runs", id)
		}
		if seq1[id] != par1[id] {
			t.Errorf("%s: parallel rendering differs from sequential", id)
		}
	}
}

// TestFigSubsetParallelMatchesSequential runs the placement and routing
// comparisons — the experiments with real parallel inner loops — on a
// small subset at 1 and at 8 workers and requires byte-identical output.
func TestFigSubsetParallelMatchesSequential(t *testing.T) {
	subset := fig3Subset(t)
	prev := runner.SetParallelism(1)
	defer runner.SetParallelism(prev)
	f1, t1 := Fig3On(subset)
	r1 := Fig4On(subset).Render()
	runner.SetParallelism(8)
	f2, t2 := Fig3On(subset)
	r2 := Fig4On(subset).Render()
	if f1.Render() != f2.Render() {
		t.Error("Fig3 figure differs between 1 and 8 workers")
	}
	if t1.Render() != t2.Render() {
		t.Error("Fig3 companion table differs between 1 and 8 workers")
	}
	if r1 != r2 {
		t.Error("Fig4 table differs between 1 and 8 workers")
	}
}

// TestCheapExperimentsBuildEachBenchmarkOnce asserts the memoization
// contract: regenerating several suite-wide artifacts builds each
// benchmark's device exactly once.
func TestCheapExperimentsBuildEachBenchmarkOnce(t *testing.T) {
	bench.ResetBuildCache()
	defer bench.ResetBuildCache()
	prev := runner.SetParallelism(4)
	defer runner.SetParallelism(prev)
	renderCheap(t)
	renderCheap(t)
	for _, name := range bench.Names() {
		if n := bench.BuildCount(name); n != 1 {
			t.Errorf("%s: generator ran %d times, want 1", name, n)
		}
	}
	if total := bench.TotalBuildCount(); total != len(bench.Names()) {
		t.Errorf("TotalBuildCount = %d, want %d", total, len(bench.Names()))
	}
}
