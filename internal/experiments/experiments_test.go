package experiments

import (
	"strconv"
	"testing"

	"repro/internal/bench"
)

func TestTable1Shape(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tb.Rows))
	}
	// Suite order and class split.
	if tb.Rows[0][0] != "aquaflex_3b" || tb.Rows[11][0] != "planar_synthetic_5" {
		t.Errorf("row order: %v ... %v", tb.Rows[0][0], tb.Rows[11][0])
	}
	// Synthetic sizes grow monotonically in the components column.
	prev := 0
	for _, name := range []string{"planar_synthetic_1", "planar_synthetic_2", "planar_synthetic_3", "planar_synthetic_4", "planar_synthetic_5"} {
		row := tb.RowByFirst(name)
		if row == nil {
			t.Fatalf("missing row %s", name)
		}
		n, err := strconv.Atoi(row[3])
		if err != nil || n <= prev {
			t.Errorf("%s components = %q (prev %d)", name, row[3], prev)
		}
		prev = n
	}
	// Assay devices are two-layer; synthetics single-layer.
	if tb.RowByFirst("rotary_pcr")[2] != "2" || tb.RowByFirst("planar_synthetic_1")[2] != "1" {
		t.Error("layer counts wrong")
	}
}

func TestTable2Shape(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Columns[0] != "benchmark" || len(tb.Columns) < 6 {
		t.Errorf("columns = %v", tb.Columns)
	}
	// Every benchmark has at least one PORT.
	portCol := -1
	for i, c := range tb.Columns {
		if c == "PORT" {
			portCol = i
		}
	}
	if portCol < 0 {
		t.Fatalf("no PORT column in %v", tb.Columns)
	}
	for _, row := range tb.Rows {
		if row[portCol] == "0" {
			t.Errorf("%s has no ports", row[0])
		}
	}
}

func TestTable3AllDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection sweep is slow in -short mode")
	}
	tb := Table3()
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 mutation classes", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[4] != "100.0%" {
			t.Errorf("class %s detection rate = %s, want 100.0%%", row[0], row[4])
		}
		app, _ := strconv.Atoi(row[2])
		if app == 0 {
			t.Errorf("class %s never applicable", row[0])
		}
	}
}

func TestFig2Shape(t *testing.T) {
	f := Fig2()
	for _, class := range []string{"assay", "synthetic"} {
		s := f.ByName(class)
		if s == nil || len(s.X) == 0 {
			t.Fatalf("series %s missing or empty", class)
		}
		var total float64
		for _, y := range s.Y {
			total += y
		}
		if total < 10 {
			t.Errorf("series %s counts only %v components", class, total)
		}
	}
}

// fig3Subset keeps the placement comparison fast in tests.
func fig3Subset(t *testing.T) []bench.Benchmark {
	t.Helper()
	var out []bench.Benchmark
	for _, name := range []string{"aquaflex_5a", "rotary_pcr", "planar_synthetic_2"} {
		b, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func TestFig3AnnealNeverWorseThanGreedy(t *testing.T) {
	f, tb := Fig3On(fig3Subset(t))
	anneal := f.ByName("anneal")
	if anneal == nil {
		t.Fatal("anneal series missing")
	}
	for i, y := range anneal.Y {
		if y > 1.0+1e-9 {
			t.Errorf("benchmark %d: anneal normalized HPWL %v > 1 (worse than greedy)", i, y)
		}
	}
	// Companion table has 3 benchmarks x 3 engines rows.
	if len(tb.Rows) != 9 {
		t.Errorf("companion rows = %d", len(tb.Rows))
	}
	// At least one strict improvement.
	improved := false
	for _, y := range anneal.Y {
		if y < 0.999 {
			improved = true
		}
	}
	if !improved {
		t.Error("anneal never improved on greedy in the subset")
	}
}

func TestFig4RoutersProduceResults(t *testing.T) {
	var subset []bench.Benchmark
	for _, name := range []string{"rotary_pcr", "aquaflex_3b"} {
		b, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		subset = append(subset, b)
	}
	tb := Fig4On(subset)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 2 benchmarks x 3 routers", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		routed, _ := strconv.Atoi(row[2])
		total, _ := strconv.Atoi(row[3])
		if total == 0 || routed == 0 {
			t.Errorf("%s/%s routed %d/%d", row[0], row[1], routed, total)
		}
		if float64(routed)/float64(total) < 0.8 {
			t.Errorf("%s/%s completion below 0.8", row[0], row[1])
		}
	}
	// Lee expands at least as many nodes as A* in aggregate.
	expansions := map[string]int{}
	for _, row := range tb.Rows {
		n, _ := strconv.Atoi(row[6])
		expansions[row[1]] += n
	}
	if expansions["astar"] > expansions["lee"] {
		t.Errorf("A* aggregate expansions %d exceed Lee %d", expansions["astar"], expansions["lee"])
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("work-scaling sweep is slow in -short mode")
	}
	f := Fig5()
	for _, name := range []string{"parse", "validate", "place", "route"} {
		s := f.ByName(name)
		if s == nil {
			t.Fatalf("series %s missing", name)
		}
		if len(s.X) != Fig5Points {
			t.Errorf("series %s has %d points, want %d", name, len(s.X), Fig5Points)
		}
		// Sizes and per-stage work must grow monotonically with the sweep.
		for i := 1; i < len(s.X); i++ {
			if s.X[i] <= s.X[i-1] {
				t.Errorf("series %s x not increasing: %v", name, s.X)
			}
			if s.Y[i] <= s.Y[i-1] {
				t.Errorf("series %s work not increasing: %v", name, s.Y)
			}
		}
		if s.Y[0] <= 0 {
			t.Errorf("series %s reports no work at the smallest size: %v", name, s.Y)
		}
	}
	// Shape: placement (annealing moves) dominates parsing (bytes) at the
	// largest size, mirroring the wall-clock asymmetry it stands in for.
	pl := f.ByName("place")
	pa := f.ByName("parse")
	if pl.Y[len(pl.Y)-1] <= pa.Y[len(pa.Y)-1] {
		t.Errorf("place work (%v) does not dominate parse work (%v) at max size",
			pl.Y[len(pl.Y)-1], pa.Y[len(pa.Y)-1])
	}
	// The work metrics are deterministic: a second sweep is identical.
	g := Fig5()
	for _, name := range []string{"parse", "validate", "place", "route"} {
		a, b := f.ByName(name), g.ByName(name)
		for i := range a.Y {
			if a.Y[i] != b.Y[i] {
				t.Errorf("series %s not deterministic at point %d: %v vs %v", name, i, a.Y[i], b.Y[i])
			}
		}
	}
}

func TestFig6Fidelity(t *testing.T) {
	tb := Fig6()
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		// JSON round trips are always lossless.
		if row[2] != "yes" {
			t.Errorf("%s: json-lossless = %s", row[0], row[2])
		}
		// No suite benchmark fits the MINT subset exactly: assay devices
		// use multi-layer valves, and every benchmark has some fanout,
		// which MINT must split. Lossless "yes" therefore implies 0 notes,
		// and every suite row today is lossy with a note trail.
		if row[3] == "yes" && row[4] != "0" {
			t.Errorf("%s: lossless but %s notes", row[0], row[4])
		}
		if row[3] == "no" && row[4] == "0" {
			t.Errorf("%s: lossy conversion must explain itself with notes", row[0])
		}
	}
}

func TestRunAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 9 {
		t.Fatalf("IDs = %v", ids)
	}
	// Cheap experiments run through the dispatcher.
	for _, id := range []string{"table1", "table2", "fig2", "fig6"} {
		text, err := Run(id)
		if err != nil || text == "" {
			t.Errorf("Run(%s) = %v", id, err)
		}
	}
	if _, err := Run("bogus"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestExtGradientMonotone(t *testing.T) {
	f := ExtGradient()
	s := f.ByName("profile")
	if s == nil || len(s.Y) != 6 {
		t.Fatalf("profile series = %+v", s)
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1]+1e-9 {
			t.Errorf("profile not monotone: %v", s.Y)
		}
	}
	if s.Y[0] < 0.9 || s.Y[5] > 0.1 {
		t.Errorf("profile endpoints = %v and %v", s.Y[0], s.Y[5])
	}
}
