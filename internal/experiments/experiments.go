// Package experiments regenerates every table and figure of the paper's
// evaluation from the systems in this repository. Each experiment returns
// a renderable artifact (stats.Table or stats.Figure) so the same code
// backs the parchmint-bench command, the testing.B benchmarks, and
// EXPERIMENTS.md. The experiment IDs follow DESIGN.md's per-experiment
// index.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mint"
	"repro/internal/mutate"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/validate"
)

// Seed is the fixed seed all randomized experiment stages use, so every
// regeneration of a table or figure is byte-identical.
const Seed = 2018 // the paper's publication year

// Table1 characterizes the benchmark suite: the per-device size and
// topology statistics of the paper's suite-overview table.
func Table1() *stats.Table {
	t := stats.NewTable(
		"Table 1: ParchMint benchmark suite characterization",
		"benchmark", "class", "layers", "components", "connections",
		"io-ports", "valves+pumps", "multi-sink", "avg-deg", "max-deg", "diameter",
	)
	for _, b := range bench.Suite() {
		d := b.Device()
		p := stats.ProfileDevice(d, string(b.Class))
		t.AddRow(p.Name, p.Class, stats.Itoa(p.Layers), stats.Itoa(p.Components),
			stats.Itoa(p.Connections), stats.Itoa(p.Ports), stats.Itoa(p.Valves),
			stats.Itoa(p.MultiSink), stats.F2(p.AvgDegree), stats.Itoa(p.MaxDegree),
			stats.Itoa(p.Diameter))
	}
	return t
}

// Table2 reports the component entity distribution of each benchmark.
func Table2() *stats.Table {
	suite := bench.Suite()
	// Column per entity actually present in the suite, in vocabulary order.
	present := map[string]bool{}
	devices := make([]*core.Device, len(suite))
	for i, b := range suite {
		devices[i] = b.Device()
		for _, c := range devices[i].Components {
			present[c.Entity] = true
		}
	}
	var entities []string
	for _, e := range core.KnownEntities() {
		if present[e] {
			entities = append(entities, e)
		}
	}
	cols := append([]string{"benchmark"}, entities...)
	t := stats.NewTable("Table 2: component entity distribution", cols...)
	for i, b := range suite {
		row := []string{b.Name}
		for _, e := range entities {
			row = append(row, stats.Itoa(devices[i].CountEntity(e)))
		}
		t.AddRow(row...)
	}
	return t
}

// Table3Trials is the per-class injection count for Table 3.
const Table3Trials = 25

// Table3 measures validator coverage: for every mutation class, the
// fraction of injections (across all benchmarks and seeds) the expected
// rule detects.
func Table3() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Table 3: validator fault-injection coverage (%d seeds x 12 benchmarks)", Table3Trials),
		"mutation-class", "expected-rule", "applicable", "detected", "rate",
	)
	suite := bench.Suite()
	for _, m := range mutate.Classes() {
		m := m
		// One injection sweep per benchmark, fanned out on the worker
		// pool; per-benchmark tallies land in slots indexed by suite
		// position, so the totals are scheduling-independent.
		type tally struct{ applicable, detected int }
		tallies := make([]tally, len(suite))
		runner.ForEach(0, len(suite), func(i int) {
			d := suite[i].Device()
			for seed := uint64(0); seed < Table3Trials; seed++ {
				res := mutate.Trial(d, m, Seed+seed)
				if res.Applicable {
					tallies[i].applicable++
					if res.Detected {
						tallies[i].detected++
					}
				}
			}
		})
		applicable, detected := 0, 0
		for _, c := range tallies {
			applicable += c.applicable
			detected += c.detected
		}
		rate := 1.0
		if applicable > 0 {
			rate = float64(detected) / float64(applicable)
		}
		t.AddRow(string(m.Class), string(m.Expect),
			stats.Itoa(applicable), stats.Itoa(detected), stats.Pct(rate))
	}
	return t
}

// Fig2 is the netlist degree distribution across the whole suite: one
// series per class, x = degree, y = component count.
func Fig2() *stats.Figure {
	f := &stats.Figure{
		Title:  "Fig 2: component degree distribution across the suite",
		XLabel: "degree",
		YLabel: "components",
	}
	hist := map[string]map[int]int{}
	for _, b := range bench.Suite() {
		g := netlist.Build(b.Device())
		class := string(b.Class)
		if hist[class] == nil {
			hist[class] = map[int]int{}
		}
		for deg, n := range g.Degrees().Histogram {
			hist[class][deg] += n
		}
	}
	for _, class := range []string{string(bench.Assay), string(bench.Synthetic)} {
		h := hist[class]
		degrees := make([]int, 0, len(h))
		for d := range h {
			degrees = append(degrees, d)
		}
		sort.Ints(degrees)
		s := stats.Series{Name: class}
		for _, d := range degrees {
			s.X = append(s.X, float64(d))
			s.Y = append(s.Y, float64(h[d]))
		}
		f.Add(s)
	}
	return f
}

// Fig3 compares placement engines on every benchmark: HPWL normalized to
// the greedy baseline (series per engine) plus an absolute-area table
// companion. x indexes benchmarks in suite order.
func Fig3() (*stats.Figure, *stats.Table) {
	return Fig3On(bench.Suite())
}

// Fig3On runs the placement comparison on a subset of the suite.
func Fig3On(benchmarks []bench.Benchmark) (*stats.Figure, *stats.Table) {
	f := &stats.Figure{
		Title:  "Fig 3: placement quality, HPWL normalized to greedy baseline",
		XLabel: "benchmark index (suite order)",
		YLabel: "HPWL / greedy HPWL",
	}
	t := stats.NewTable(
		"Fig 3 companion: absolute placement metrics",
		"benchmark", "engine", "hpwl(um)", "area(mm2)",
	)
	engines := place.Engines()
	series := make([]stats.Series, len(engines))
	for i, eng := range engines {
		series[i].Name = eng.Name()
	}
	// Each benchmark's engine comparison is independent; fan out on the
	// worker pool and assemble series points and table rows in benchmark
	// order afterwards, so the artifact bytes never depend on scheduling.
	perBench := make([][]place.Metrics, len(benchmarks))
	runner.ForEach(0, len(benchmarks), func(bi int) {
		b := benchmarks[bi]
		d := b.Device()
		perBench[bi] = make([]place.Metrics, len(engines))
		for ei, eng := range engines {
			var p *place.Placement
			if _, isAnneal := eng.(place.Annealer); isAnneal {
				p = annealedPlacement(b)
			} else {
				var err error
				p, err = eng.Place(context.Background(), d, place.NewOptions(place.WithSeed(Seed)))
				if err != nil {
					panic(fmt.Sprintf("experiments: placement %s/%s: %v", b.Name, eng.Name(), err))
				}
			}
			perBench[bi][ei] = place.Evaluate(p)
		}
	})
	for bi, b := range benchmarks {
		greedyHPWL := perBench[bi][0].HPWL
		for ei, eng := range engines {
			m := perBench[bi][ei]
			norm := 1.0
			if greedyHPWL > 0 {
				norm = float64(m.HPWL) / float64(greedyHPWL)
			}
			series[ei].X = append(series[ei].X, float64(bi))
			series[ei].Y = append(series[ei].Y, norm)
			t.AddRow(b.Name, eng.Name(), stats.I64(m.HPWL),
				stats.F2(float64(m.Area)/1e6))
		}
	}
	for _, s := range series {
		f.Add(s)
	}
	return f, t
}

// Fig4 compares routing engines on every benchmark (on the annealed
// placement): completion rate, total channel length, and node expansions.
func Fig4() *stats.Table {
	return Fig4On(bench.Suite())
}

// Fig4On runs the routing comparison on a subset of the suite.
func Fig4On(benchmarks []bench.Benchmark) *stats.Table {
	t := stats.NewTable(
		"Fig 4: routing quality per engine (annealed placements)",
		"benchmark", "router", "routed", "total", "completion",
		"length(um)", "expansions",
	)
	// Route every benchmark on its memoized annealed placement (shared
	// with Fig 3), fanned out per benchmark; rows are emitted in benchmark
	// order afterwards.
	routers := route.Engines()
	reports := make([][]*route.Report, len(benchmarks))
	runner.ForEach(0, len(benchmarks), func(bi int) {
		b := benchmarks[bi]
		p := annealedPlacement(b)
		reports[bi] = make([]*route.Report, len(routers))
		for ri, router := range routers {
			report, err := route.RouteAll(context.Background(), p, router, route.Options{})
			if err != nil {
				panic(fmt.Sprintf("experiments: routing %s/%s: %v", b.Name, router.Name(), err))
			}
			reports[bi][ri] = report
		}
	})
	for bi, b := range benchmarks {
		for ri, router := range routers {
			report := reports[bi][ri]
			t.AddRow(b.Name, router.Name(),
				stats.Itoa(report.Routed()), stats.Itoa(report.Total()),
				stats.Pct(report.CompletionRate()),
				stats.I64(report.TotalLength()),
				stats.Itoa(report.TotalExpansions()))
		}
	}
	return t
}

// Fig5Points is the number of sweep sizes in the runtime-scaling figure:
// 10, 20, 40, 80, 160 components.
const Fig5Points = 5

// Fig5 measures pipeline cost scaling against netlist size on a synthetic
// sweep doubling from 10 components. Cost is reported in deterministic
// work units per stage — parse: canonical JSON bytes; validate: netlist
// elements examined; place: annealing moves proposed; route: search-node
// expansions — so the figure is byte-reproducible across machines, runs,
// and worker counts, and can sit in the golden artifact set. The
// wall-clock equivalent is the runner's "timing" pseudo-experiment
// (parchmint-bench -exp timing), which is deliberately excluded from it.
func Fig5() *stats.Figure {
	f := &stats.Figure{
		Title:  "Fig 5: pipeline work scaling on the synthetic sweep",
		XLabel: "components",
		YLabel: "work units (parse: bytes, validate: elements, place: moves, route: expansions)",
	}
	pts := bench.Sweep(10, Fig5Points, Seed)
	type point struct {
		x, parse, validate, place, route float64
	}
	points := make([]point, len(pts))
	runner.ForEach(0, len(pts), func(i int) {
		pt := pts[i]
		x := float64(pt.Device.Stats().Components)
		data, err := core.Marshal(pt.Device)
		if err != nil {
			panic(err)
		}
		if _, err := core.Unmarshal(data); err != nil {
			panic(err)
		}
		if vr := validate.Validate(pt.Device); !vr.OK() {
			panic(fmt.Sprintf("experiments: sweep device %d invalid: %s", i, vr))
		}
		placed, err := (place.Annealer{}).Place(context.Background(), pt.Device, place.NewOptions(place.WithSeed(Seed)))
		if err != nil {
			panic(err)
		}
		report, err := route.RouteAll(context.Background(), placed, route.AStar{}, route.Options{})
		if err != nil {
			panic(err)
		}
		points[i] = point{
			x:        x,
			parse:    float64(len(data)),
			validate: float64(elementCount(pt.Device)),
			place:    float64(placed.Moves),
			route:    float64(report.TotalExpansions()),
		}
	})
	parse := stats.Series{Name: "parse"}
	val := stats.Series{Name: "validate"}
	pl := stats.Series{Name: "place"}
	rt := stats.Series{Name: "route"}
	for _, p := range points {
		parse.X, parse.Y = append(parse.X, p.x), append(parse.Y, p.parse)
		val.X, val.Y = append(val.X, p.x), append(val.Y, p.validate)
		pl.X, pl.Y = append(pl.X, p.x), append(pl.Y, p.place)
		rt.X, rt.Y = append(rt.X, p.x), append(rt.Y, p.route)
	}
	f.Add(parse)
	f.Add(val)
	f.Add(pl)
	f.Add(rt)
	return f
}

// elementCount is the number of netlist elements a validation pass
// examines: layers, components and their ports, connections and their
// endpoints, and features — the size driver of the validator's linear
// rules.
func elementCount(d *core.Device) int {
	n := len(d.Layers) + len(d.Components) + len(d.Connections) + len(d.Features)
	for i := range d.Components {
		n += len(d.Components[i].Ports)
	}
	for i := range d.Connections {
		n += 1 + len(d.Connections[i].Sinks)
	}
	return n
}

// Fig6 measures interchange fidelity across the suite: JSON round-trip
// losslessness and size, and MINT conversion losslessness (assay
// benchmarks use multi-layer valves and fanout outside the MINT subset, so
// their conversions degrade with notes; synthetics convert cleanly).
func Fig6() *stats.Table {
	t := stats.NewTable(
		"Fig 6: interchange fidelity per benchmark",
		"benchmark", "json-bytes", "json-lossless", "mint-lossless", "mint-notes",
	)
	for _, b := range bench.Suite() {
		d := b.Device()
		data, err := core.Marshal(d)
		if err != nil {
			panic(err)
		}
		back, err := core.Unmarshal(data)
		if err != nil {
			panic(err)
		}
		jsonLossless := core.Equal(d, back)

		mintLossless := false
		notes := 0
		if f, fid, err := mint.FromDevice(d); err == nil {
			notes = len(fid.Notes)
			if d2, fid2, err := mint.ToDevice(f); err == nil {
				notes += len(fid2.Notes)
				c1, c2 := d.Clone(), d2
				c1.Canonicalize()
				c2.Canonicalize()
				mintLossless = fid.Lossless() && fid2.Lossless() && core.Equal(c1, c2)
			}
		}
		t.AddRow(b.Name, stats.Itoa(len(data)),
			boolCell(jsonLossless), boolCell(mintLossless), stats.Itoa(notes))
	}
	return t
}

func boolCell(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

// ExtGradient is an extension experiment beyond the paper: the hydraulic
// simulator's dilution profile across the molecular gradient generator's
// six outlets. A correct generator yields a monotone profile from 1.0 on
// the species side to 0.0 on the buffer side — functional evidence that
// an exchanged benchmark behaves like the device it models.
func ExtGradient() *stats.Figure {
	f := &stats.Figure{
		Title:  "Ext: simulated dilution profile of molecular_gradients",
		XLabel: "outlet index",
		YLabel: "steady-state concentration",
	}
	b, err := bench.ByName("molecular_gradients")
	if err != nil {
		panic(err)
	}
	d := b.Device()
	network, err := sim.Build(d, sim.Options{})
	if err != nil {
		panic(fmt.Sprintf("experiments: gradient network: %v", err))
	}
	bcs := []sim.BC{
		{Node: "inA.port1", Pressure: 10000},
		{Node: "inB.port1", Pressure: 10000},
	}
	for i := 1; i <= 6; i++ {
		bcs = append(bcs, sim.BC{Node: sim.NodeID(fmt.Sprintf("out%d.port1", i))})
	}
	sol, err := network.Solve(bcs)
	if err != nil {
		panic(fmt.Sprintf("experiments: gradient solve: %v", err))
	}
	conc, err := network.Concentrations(sol, map[sim.NodeID]float64{
		"inA.port1": 1,
		"inB.port1": 0,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: gradient transport: %v", err))
	}
	s := stats.Series{Name: "profile"}
	for i := 1; i <= 6; i++ {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, conc[sim.NodeID(fmt.Sprintf("out%d.port1", i))])
	}
	f.Add(s)
	return f
}

// All runs every experiment and returns (id, rendered artifact) pairs in
// DESIGN.md order.
func All() []Artifact {
	fig3, fig3t := Fig3()
	return []Artifact{
		{"table1", Table1().Render()},
		{"table2", Table2().Render()},
		{"table3", Table3().Render()},
		{"fig2", Fig2().Render()},
		{"fig3", fig3.Render() + "\n" + fig3t.Render()},
		{"fig4", Fig4().Render()},
		{"fig5", Fig5().Render()},
		{"fig6", Fig6().Render()},
		{"ext-gradient", ExtGradient().Render()},
	}
}

// Artifact is one rendered experiment output.
type Artifact struct {
	ID   string
	Text string
}

// Info pairs an experiment ID with its one-line title.
type Info struct {
	ID    string
	Title string
}

// Describe lists every experiment with its one-line title, in DESIGN.md
// order — the paper's eight plus the extension experiments.
func Describe() []Info {
	return []Info{
		{"table1", "benchmark suite characterization"},
		{"table2", "component entity distribution"},
		{"table3", "validator fault-injection coverage"},
		{"fig2", "component degree distribution across the suite"},
		{"fig3", "placement quality per engine, normalized to greedy"},
		{"fig4", "routing quality per engine on annealed placements"},
		{"fig5", "pipeline work scaling on the synthetic sweep"},
		{"fig6", "interchange fidelity per benchmark"},
		{"ext-gradient", "simulated dilution profile of molecular_gradients"},
	}
}

// IDs lists the experiment identifiers in DESIGN.md order.
func IDs() []string {
	infos := Describe()
	out := make([]string, len(infos))
	for i, in := range infos {
		out[i] = in.ID
	}
	return out
}

// Run renders a single experiment by ID.
func Run(id string) (string, error) {
	switch id {
	case "table1":
		return Table1().Render(), nil
	case "table2":
		return Table2().Render(), nil
	case "table3":
		return Table3().Render(), nil
	case "fig2":
		return Fig2().Render(), nil
	case "fig3":
		f, t := Fig3()
		return f.Render() + "\n" + t.Render(), nil
	case "fig4":
		return Fig4().Render(), nil
	case "fig5":
		return Fig5().Render(), nil
	case "fig6":
		return Fig6().Render(), nil
	case "ext-gradient":
		return ExtGradient().Render(), nil
	default:
		return "", fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
}
