// Parallel execution of the experiment harness. The sequential path
// (All) and the pooled path (AllParallel) must produce byte-identical
// artifacts: every randomized stage is seeded by the fixed experiment Seed
// (or a runner.DeriveSeed of it), never by scheduling order, and every
// parallel loop writes into slots indexed by task position. The
// determinism tests pin this equivalence.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/place"
	"repro/internal/runner"
)

// AllParallel runs every experiment over a worker pool and returns the
// same artifacts as All, in the same order, with the same bytes. workers
// below 1 selects runtime.NumCPU(). Inner per-benchmark loops (placement
// and routing comparisons, the fault-injection sweep) also fan out onto
// the pool's worker budget. AllParallel adjusts the process-wide
// parallelism default for its duration; concurrent calls with different
// worker counts are not supported (artifacts would still be correct, but
// the worker budget would be whichever call set it last).
func AllParallel(workers int) []Artifact {
	prev := runner.SetParallelism(workers)
	defer runner.SetParallelism(prev)
	ids := IDs()
	arts := make([]Artifact, len(ids))
	tasks := make([]runner.Task, len(ids))
	for i, id := range ids {
		i, id := i, id
		tasks[i] = runner.Task{
			ID: id,
			Run: func(runner.Task) error {
				text, err := Run(id)
				if err != nil {
					return fmt.Errorf("experiments: %s: %w", id, err)
				}
				arts[i] = Artifact{ID: id, Text: text}
				return nil
			},
		}
	}
	pool := runner.NewPool(workers)
	pool.BaseSeed = Seed
	if err := pool.Run(tasks); err != nil {
		panic(err) // only unknown IDs error, and IDs() is the source of truth
	}
	return arts
}

// annealCache memoizes the annealed placement each benchmark gets under
// the experiment seed. Fig 3 (engine comparison) and Fig 4 (routing on the
// annealed placement) both need it; annealing is the harness's most
// expensive stage, so computing it once per benchmark roughly halves a
// full regeneration. Placements are read-only downstream (evaluation and
// routing never mutate them).
var annealCache = struct {
	mu      sync.Mutex
	entries map[string]*annealEntry
}{entries: make(map[string]*annealEntry)}

type annealEntry struct {
	once sync.Once
	p    *place.Placement
}

// annealedPlacement returns the benchmark's annealed placement under the
// experiment seed, computing it at most once per process.
func annealedPlacement(b bench.Benchmark) *place.Placement {
	annealCache.mu.Lock()
	e, ok := annealCache.entries[b.Name]
	if !ok {
		e = &annealEntry{}
		annealCache.entries[b.Name] = e
	}
	annealCache.mu.Unlock()
	e.once.Do(func() {
		p, err := (place.Annealer{}).Place(context.Background(), b.Device(), place.NewOptions(place.WithSeed(Seed)))
		if err != nil {
			panic(fmt.Sprintf("experiments: placement %s: %v", b.Name, err))
		}
		e.p = p
	})
	return e.p
}
