package obs

import (
	"crypto/rand"
	"encoding/binary"
	"sync/atomic"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/): the
// correlation primitive that survives a network hop. A request arrives
// with (or without) a `traceparent` header; the service joins the trace
// as a child (same trace-id, fresh span-id) or mints a fresh root, and
// the identity is stamped — out of band, never into response bodies —
// onto spans, request logs, flight-recorder records, job journal lines,
// and metric exemplars, and echoed on the response so the caller can
// correlate too.
//
// Parsing and formatting are append-style and allocation-free, like the
// rest of the serving hot path: ParseTraceparent reads a fixed-shape
// header into a value, AppendTraceparent renders into a caller buffer.

// TraceContext is one W3C trace-context identity: the 128-bit trace ID
// shared by every participant in a distributed operation, the 64-bit
// span ID of the current participant, the sampled flag byte, and the
// validated tracestate list propagated unchanged.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
	// State is the inbound `tracestate` header, kept verbatim when it
	// validates and dropped otherwise (the spec permits discarding it).
	State string
}

// Valid reports whether the context carries usable identifiers: the spec
// forbids all-zero trace and span IDs.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// Sampled reports the sampled bit of the flags byte.
func (tc TraceContext) Sampled() bool { return tc.Flags&0x01 != 0 }

// traceparentLen is the fixed length of a version-00 traceparent:
// "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex.
const traceparentLen = 55

const hexDigits = "0123456789abcdef"

// hexVal decodes one lowercase hex digit; 255 marks an invalid byte.
// The spec requires lowercase: "A" in any hex field makes the header
// invalid, so this table deliberately rejects uppercase.
func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	}
	return 255
}

// parseHex decodes exactly len(dst)*2 lowercase hex digits from s.
func parseHex(dst []byte, s string) bool {
	for i := range dst {
		hi, lo := hexVal(s[2*i]), hexVal(s[2*i+1])
		if hi == 255 || lo == 255 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// ParseTraceparent parses a traceparent header value per the W3C
// recommendation: version-00 headers must be exactly 55 bytes; headers
// with an unknown (forward-compatible) version are accepted when their
// version-00 prefix parses and the extra content is '-'-separated.
// Version 0xff, uppercase hex, malformed shapes, and all-zero trace or
// span IDs all report ok=false — per spec the receiver then restarts the
// trace with a fresh root instead of propagating garbage. The parse
// allocates nothing.
func ParseTraceparent(s string) (tc TraceContext, ok bool) {
	if len(s) < traceparentLen {
		return TraceContext{}, false
	}
	var ver [1]byte
	if !parseHex(ver[:], s) || ver[0] == 0xff {
		return TraceContext{}, false
	}
	if ver[0] == 0 && len(s) != traceparentLen {
		return TraceContext{}, false
	}
	if ver[0] != 0 && len(s) > traceparentLen && s[traceparentLen] != '-' {
		return TraceContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	if !parseHex(tc.TraceID[:], s[3:]) || !parseHex(tc.SpanID[:], s[36:]) {
		return TraceContext{}, false
	}
	var flags [1]byte
	if !parseHex(flags[:], s[53:]) {
		return TraceContext{}, false
	}
	tc.Flags = flags[0]
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// appendHex renders src as lowercase hex.
func appendHex(dst []byte, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0x0f])
	}
	return dst
}

// AppendTraceparent renders the context as a version-00 traceparent
// header value, appending to dst — the same append-style contract as the
// serve response encoders, so formatting into a stack buffer allocates
// nothing.
func AppendTraceparent(dst []byte, tc TraceContext) []byte {
	dst = append(dst, '0', '0', '-')
	dst = appendHex(dst, tc.TraceID[:])
	dst = append(dst, '-')
	dst = appendHex(dst, tc.SpanID[:])
	dst = append(dst, '-')
	return appendHex(dst, []byte{tc.Flags})
}

// Traceparent renders the header value as a string (one allocation).
func (tc TraceContext) Traceparent() string {
	var buf [traceparentLen]byte
	return string(AppendTraceparent(buf[:0], tc))
}

// AppendTraceID renders the 32-hex-digit trace ID, appending to dst.
func AppendTraceID(dst []byte, tc TraceContext) []byte {
	return appendHex(dst, tc.TraceID[:])
}

// TraceIDString renders the trace ID as a string (one allocation).
func (tc TraceContext) TraceIDString() string {
	var buf [32]byte
	return string(AppendTraceID(buf[:0], tc))
}

// rngState backs the ID minting: a splitmix64 stream over an atomically
// advancing counter seeded once per process from crypto/rand. Splitmix
// is a bijection, so within one boot every draw is distinct (IDs never
// collide locally), and the random base keeps boots disjoint — the same
// uniqueness argument as the request-ID boot nonce, without a lock or an
// allocation per draw.
var rngState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("obs: reading trace RNG seed: " + err.Error())
	}
	rngState.Store(binary.LittleEndian.Uint64(b[:]))
}

// randU64 draws the next pseudo-random word (splitmix64).
func randU64() uint64 {
	z := rngState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewSpanID mints a non-zero 64-bit span ID.
func NewSpanID() (id [8]byte) {
	for {
		binary.BigEndian.PutUint64(id[:], randU64())
		if id != [8]byte{} {
			return id
		}
	}
}

// NewTraceContext mints a fresh root: new trace ID, new span ID, sampled
// flag set. This is what a request without (or with a malformed)
// traceparent gets.
func NewTraceContext() TraceContext {
	tc := TraceContext{Flags: 0x01, SpanID: NewSpanID()}
	for {
		binary.BigEndian.PutUint64(tc.TraceID[0:8], randU64())
		binary.BigEndian.PutUint64(tc.TraceID[8:16], randU64())
		if tc.TraceID != [16]byte{} {
			return tc
		}
	}
}

// Child derives this service's own identity inside an inbound trace:
// same trace ID, flags, and state, fresh span ID. The inbound span ID
// becomes the conceptual parent; the child's ID is what the response
// header, spans, and logs carry.
func (tc TraceContext) Child() TraceContext {
	tc.SpanID = NewSpanID()
	return tc
}

// maxTracestateMembers and maxTracestateLen bound the tracestate the
// service is willing to propagate; the spec allows dropping the header
// entirely rather than forwarding an oversized or malformed one.
const (
	maxTracestateMembers = 32
	maxTracestateLen     = 512
)

// ValidTracestate reports whether s is a propagatable tracestate value:
// at most 32 comma-separated non-empty `key=value` members within a
// bounded total size, with keys in the spec's lowercase vocabulary and
// values free of control characters, commas, and equals signs. The check
// allocates nothing.
func ValidTracestate(s string) bool {
	if s == "" || len(s) > maxTracestateLen {
		return false
	}
	members := 0
	for i := 0; i < len(s); {
		// One member up to the next comma.
		j := i
		for j < len(s) && s[j] != ',' {
			j++
		}
		m := s[i:j]
		// OWS around members is legal.
		for len(m) > 0 && (m[0] == ' ' || m[0] == '\t') {
			m = m[1:]
		}
		for len(m) > 0 && (m[len(m)-1] == ' ' || m[len(m)-1] == '\t') {
			m = m[:len(m)-1]
		}
		if m != "" {
			eq := -1
			for k := 0; k < len(m); k++ {
				if m[k] == '=' {
					eq = k
					break
				}
			}
			if eq <= 0 || eq == len(m)-1 {
				return false
			}
			if !validTracestateKey(m[:eq]) || !validTracestateValue(m[eq+1:]) {
				return false
			}
			members++
			if members > maxTracestateMembers {
				return false
			}
		}
		i = j + 1
		if j == len(s) {
			break
		}
	}
	return members > 0
}

func validTracestateKey(k string) bool {
	if len(k) > 256 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '_' || c == '-' || c == '*' || c == '/' || c == '@':
		default:
			return false
		}
	}
	return true
}

func validTracestateValue(v string) bool {
	if len(v) > 256 {
		return false
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c < 0x20 || c > 0x7e || c == ',' || c == '=' {
			return false
		}
	}
	return true
}
