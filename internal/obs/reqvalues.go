package obs

// RequestValues is a flat, allocation-free carrier of the per-request
// telemetry values — recorder, request ID, root span — that would
// otherwise ride the context as three nested WithValue wrappers (three
// allocations per request). A custom context implementation embeds a
// pointer to one and answers ValueFor from its Value method; FromContext,
// RequestID, and Start then see exactly what the WithValue chain would
// have shown them, and spans opened below still nest under Span.
type RequestValues struct {
	// Rec is the recorder WithRecorder would have attached.
	Rec *Recorder
	// Span is the request's root span; Start calls under the context
	// parent to it.
	Span *Span

	id    string
	idVal any // id boxed once, so lookups never re-box

	tp     string // formatted traceparent header value
	tid    string // 32-hex-digit trace ID (substring of tp, no extra alloc)
	tidVal any    // tid boxed once, so span stamps never re-box
}

// SetID stamps the request identifier, boxing it once for lookups.
func (v *RequestValues) SetID(id string) {
	v.id = id
	v.idVal = id
}

// ID returns the stamped request identifier.
func (v *RequestValues) ID() string { return v.id }

// IDVal returns the boxed request identifier (nil before SetID), so
// callers passing it into any-typed sinks reuse the one boxing SetID
// already paid for.
func (v *RequestValues) IDVal() any { return v.idVal }

// SetTrace stamps the request's W3C trace identity: the full traceparent
// header value and the trace ID (conventionally a substring of tp, so no
// second string is allocated). The trace ID is boxed once here.
func (v *RequestValues) SetTrace(tp, traceID string) {
	v.tp = tp
	v.tid = traceID
	v.tidVal = traceID
}

// Traceparent returns the stamped traceparent header value.
func (v *RequestValues) Traceparent() string { return v.tp }

// TraceID returns the stamped trace ID.
func (v *RequestValues) TraceID() string { return v.tid }

// TraceIDVal returns the boxed trace ID (nil before SetTrace).
func (v *RequestValues) TraceIDVal() any { return v.tidVal }

// Reset clears the carrier for reuse.
func (v *RequestValues) Reset() { *v = RequestValues{} }

// ValueFor answers the obs context keys for the values that are set,
// reporting ok=false otherwise so the caller can continue down its own
// chain — matching a WithValue chain, where an unset value defers to the
// parent context.
func (v *RequestValues) ValueFor(key any) (any, bool) {
	switch key.(type) {
	case recorderKey:
		if v.Rec != nil {
			return v.Rec, true
		}
	case spanKey:
		if v.Span != nil {
			return v.Span, true
		}
	case requestKey:
		if v.id != "" {
			return v.idVal, true
		}
	case traceparentKey:
		if v.tp != "" {
			return v.tp, true
		}
	case traceIDKey:
		if v.tid != "" {
			return v.tidVal, true
		}
	}
	return nil, false
}

// NewRootSpan opens a root span (a new trace lane) named name, stamped
// with the request ID, without deriving a context — the caller is
// expected to carry it in a RequestValues so child spans still find it.
// requestID is an already-boxed string (IDVal), so stamping it re-boxes
// nothing. Nil when tracing is disabled; End and SetAttr no-op on the
// nil span.
func (r *Recorder) NewRootSpan(name string, requestID any) *Span {
	if r == nil || r.tracer == nil {
		return nil
	}
	sp := r.tracer.start(name, nil)
	if requestID != nil {
		sp.SetAttr("request_id", requestID)
	}
	return sp
}
