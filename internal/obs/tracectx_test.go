package obs

import (
	"strings"
	"testing"
)

const sampleTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func TestParseTraceparentValid(t *testing.T) {
	tc, ok := ParseTraceparent(sampleTraceparent)
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if got := tc.TraceIDString(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", got)
	}
	if got := tc.Traceparent(); got != sampleTraceparent {
		t.Errorf("round trip = %s, want %s", got, sampleTraceparent)
	}
	if !tc.Sampled() {
		t.Error("flags 01 should report sampled")
	}
	if tc2, ok := ParseTraceparent(strings.Replace(sampleTraceparent, "-01", "-00", 1)); !ok || tc2.Sampled() {
		t.Error("flags 00 should parse and report unsampled")
	}
}

func TestParseTraceparentForwardCompatVersions(t *testing.T) {
	// An unknown version with the version-00 shape is accepted (the spec's
	// forward-compatibility rule), with or without trailing '-' fields.
	base := "cc" + sampleTraceparent[2:]
	if _, ok := ParseTraceparent(base); !ok {
		t.Error("future version with v00 shape rejected")
	}
	if _, ok := ParseTraceparent(base + "-extra-fields"); !ok {
		t.Error("future version with extra dash-separated fields rejected")
	}
	if _, ok := ParseTraceparent(base + "junk"); ok {
		t.Error("future version with non-dash suffix accepted")
	}
	// Version 00 must be exactly 55 bytes.
	if _, ok := ParseTraceparent(sampleTraceparent + "-extra"); ok {
		t.Error("version 00 with trailing fields accepted")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		sampleTraceparent[:54],                                  // truncated
		"ff" + sampleTraceparent[2:],                             // version ff is forbidden
		"0" + sampleTraceparent[2:],                              // bad length
		strings.ToUpper(sampleTraceparent),                       // uppercase hex
		"00-" + strings.Repeat("0", 32) + sampleTraceparent[35:], // all-zero trace id
		sampleTraceparent[:36] + "0000000000000000" + "-01",      // all-zero span id
		strings.Replace(sampleTraceparent, "-", "_", 1),          // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", // non-hex digit
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", s)
		}
	}
}

func TestChildKeepsTraceMintsSpan(t *testing.T) {
	tc, _ := ParseTraceparent(sampleTraceparent)
	child := tc.Child()
	if child.TraceID != tc.TraceID || child.Flags != tc.Flags {
		t.Error("child must keep trace id and flags")
	}
	if child.SpanID == tc.SpanID {
		t.Error("child must mint a fresh span id")
	}
	if !child.Valid() {
		t.Error("child must be valid")
	}
}

func TestNewTraceContextUniqueAndValid(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tc := NewTraceContext()
		if !tc.Valid() || !tc.Sampled() {
			t.Fatalf("fresh root invalid: %+v", tc)
		}
		id := tc.TraceIDString()
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
	}
}

func TestValidTracestate(t *testing.T) {
	good := []string{
		"vendor=value",
		"a=b,c=d",
		"rojo=00f067aa0ba902b7, congo=t61rcWkgMzE",
		"k_y-1*@/x=anything but commas",
	}
	for _, s := range good {
		if !ValidTracestate(s) {
			t.Errorf("ValidTracestate(%q) = false, want true", s)
		}
	}
	bad := []string{
		"",
		"noequals",
		"=value",
		"key=",
		"UPPER=x",
		"a=b,c",
		"k=v\x00",
		"k=v1,k2=v=2",
		strings.Repeat("a=b,", 200) + "a=b", // too many members / too long
	}
	for _, s := range bad {
		if ValidTracestate(s) {
			t.Errorf("ValidTracestate(%q) = true, want false", s)
		}
	}
}

// The parse and append paths run per request before the worker gate, so
// they must not allocate.
func TestTraceparentParseAppendAllocFree(t *testing.T) {
	var buf [traceparentLen]byte
	allocs := testing.AllocsPerRun(200, func() {
		tc, ok := ParseTraceparent(sampleTraceparent)
		if !ok {
			t.Fatal("parse failed")
		}
		tc = tc.Child()
		if got := AppendTraceparent(buf[:0], tc); len(got) != traceparentLen {
			t.Fatalf("append length %d", len(got))
		}
		if !ValidTracestate("rojo=00f067aa0ba902b7") {
			t.Fatal("tracestate rejected")
		}
	})
	if allocs != 0 {
		t.Errorf("parse+append allocated %.1f times per run, want 0", allocs)
	}
}
