package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// IDSource mints process-unique request identifiers of the form
// req-<nonce>-<seq>: an 8-hex-digit per-boot nonce followed by a
// monotonically increasing sequence number. A bare sequence would restart
// at 1 on every process boot and collide across restarts in aggregated
// logs and traces; the random nonce keeps IDs from different boots (and
// from concurrently running replicas) disjoint while the sequence keeps
// them orderable within one boot.
type IDSource struct {
	nonce string
	seq   atomic.Uint64
}

// NewIDSource creates a source with a fresh random boot nonce.
func NewIDSource() *IDSource {
	var b [4]byte
	// crypto/rand.Read never fails on supported platforms (it aborts the
	// program instead), so the error path is unreachable; the check keeps
	// the contract explicit.
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("obs: reading boot nonce: %v", err))
	}
	return &IDSource{nonce: hex.EncodeToString(b[:])}
}

// Nonce returns the source's per-boot nonce (8 lowercase hex digits).
func (s *IDSource) Nonce() string { return s.nonce }

// Next returns the next identifier. It is safe for concurrent use; the
// first call returns sequence 1. The formatting is hand-rolled (one
// allocation, the returned string) because the service mints an ID per
// request; it must stay byte-identical to
// fmt.Sprintf("req-%s-%08d", nonce, seq).
func (s *IDSource) Next() string {
	n := s.seq.Add(1)
	var buf [32]byte
	b := append(buf[:0], "req-"...)
	b = append(b, s.nonce...)
	b = append(b, '-')
	// Decimal digits, zero-padded to 8, widening past 99,999,999 exactly
	// as %08d does.
	var d [20]byte
	i := len(d)
	for n > 0 {
		i--
		d[i] = byte('0' + n%10)
		n /= 10
	}
	for len(d)-i < 8 {
		i--
		d[i] = '0'
	}
	b = append(b, d[i:]...)
	return string(b)
}
