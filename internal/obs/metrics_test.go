package obs

import (
	"bytes"
	"strings"
	"testing"
)

func scrape(reg *Registry) string {
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	return buf.String()
}

func TestCounterRendering(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "Requests served.", "endpoint", "status")
	c.Inc("validate", "200")
	c.Inc("validate", "200")
	c.Inc("pnr", "499")
	out := scrape(reg)
	want := `# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total{endpoint="pnr",status="499"} 1
requests_total{endpoint="validate",status="200"} 2
`
	if out != want {
		t.Fatalf("scrape:\n%s\nwant:\n%s", out, want)
	}
	if got := c.Value("validate", "200"); got != 2 {
		t.Fatalf("Value = %v, want 2", got)
	}
}

func TestGaugeAndValueFormat(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("workers", "Configured workers.")
	g.Set(2)
	s := reg.Counter("seconds_total", "Seconds.", "endpoint")
	s.Add(0.1234567, "pnr")
	out := scrape(reg)
	if !strings.Contains(out, "workers 2\n") {
		t.Errorf("whole value should render as integer, got:\n%s", out)
	}
	if !strings.Contains(out, `seconds_total{endpoint="pnr"} 0.123457`+"\n") {
		t.Errorf("fractional value should render with 6 decimals, got:\n%s", out)
	}
}

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := 3.0
	reg.GaugeFunc("inflight", "In-flight requests.", func() float64 { return v })
	if !strings.Contains(scrape(reg), "inflight 3\n") {
		t.Fatalf("gauge func value missing:\n%s", scrape(reg))
	}
	v = 5
	if !strings.Contains(scrape(reg), "inflight 5\n") {
		t.Fatalf("gauge func should re-read at scrape:\n%s", scrape(reg))
	}
}

func TestHistogramRendering(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "endpoint")
	h.Observe(0.005, "pnr")
	h.Observe(0.05, "pnr")
	h.Observe(5, "pnr")
	out := scrape(reg)
	want := `# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{endpoint="pnr",le="0.01"} 1
latency_seconds_bucket{endpoint="pnr",le="0.1"} 2
latency_seconds_bucket{endpoint="pnr",le="1"} 2
latency_seconds_bucket{endpoint="pnr",le="+Inf"} 3
latency_seconds_sum{endpoint="pnr"} 5.055000
latency_seconds_count{endpoint="pnr"} 3
`
	if out != want {
		t.Fatalf("scrape:\n%s\nwant:\n%s", out, want)
	}
}

func TestDefaultBucketsAndFamilyOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_first", "First registered.")
	reg.Gauge("aa_second", "Second registered.")
	h := reg.Histogram("lat", "Latency.", nil)
	h.Observe(0.002)
	out := scrape(reg)
	if strings.Index(out, "zz_first") > strings.Index(out, "aa_second") {
		t.Errorf("families must render in registration order, got:\n%s", out)
	}
	if !strings.Contains(out, `lat_bucket{le="0.001"} 0`) || !strings.Contains(out, `lat_bucket{le="60"} 1`) {
		t.Errorf("default latency buckets missing:\n%s", out)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("hits", "Hits.", "k")
	b := reg.Counter("hits", "Hits.", "k")
	a.Inc("x")
	b.Inc("x")
	if got := a.Value("x"); got != 2 {
		t.Fatalf("re-registered counter split state: %v", got)
	}
	if strings.Count(scrape(reg), "# TYPE hits counter") != 1 {
		t.Fatalf("family duplicated:\n%s", scrape(reg))
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("type-mismatched re-registration should panic")
		}
	}()
	reg.Gauge("hits", "Hits.", "k")
}

func TestLabelMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits", "Hits.", "endpoint")
	defer func() {
		if recover() == nil {
			t.Fatalf("wrong label cardinality should panic")
		}
	}()
	c.Inc("a", "b")
}
