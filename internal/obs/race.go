//go:build race

package obs

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-guard tests skip under race: the instrumentation
// itself allocates, which would fail the zero-alloc assertions for
// reasons unrelated to the code under test.
const RaceEnabled = true
