package obs

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestRuntimeMetricsScrape(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	runtime.GC() // guarantee at least one completed cycle
	out := scrape(reg)
	for _, name := range []string{
		"parchmint_go_goroutines",
		"parchmint_go_heap_objects_bytes",
		"parchmint_go_memory_total_bytes",
		"parchmint_go_gc_heap_goal_bytes",
		"parchmint_go_gc_cycles_total",
	} {
		v, ok := sampleValue(out, name)
		if !ok {
			t.Errorf("series %s missing from scrape", name)
			continue
		}
		if v <= 0 {
			t.Errorf("%s = %v, want > 0 in a live process", name, v)
		}
	}
	// Quantile series carry the q label; the pause histogram has data
	// after the forced GC above.
	for _, q := range []string{"p50", "p99", "max"} {
		if !strings.Contains(out, `parchmint_go_gc_pause_seconds{q="`+q+`"}`) {
			t.Errorf("gc pause quantile %s missing:\n%s", q, out)
		}
	}
}

func TestRuntimeMetricsRefreshPerScrape(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	before, _ := sampleValue(scrape(reg), "parchmint_go_gc_cycles_total")
	runtime.GC()
	runtime.GC()
	after, _ := sampleValue(scrape(reg), "parchmint_go_gc_cycles_total")
	if after < before+2 {
		t.Errorf("gc cycle counter did not advance across scrapes: %v -> %v", before, after)
	}
}

// sampleValue extracts the value of an unlabeled sample line.
func sampleValue(scrape, name string) (float64, bool) {
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		return v, err == nil
	}
	return 0, false
}
