// Package obs is the unified telemetry layer of the repository: one span
// tracer, one metrics registry, and one structured-logging convention
// shared by the CLIs, the HTTP service, and the PnR engines.
//
// Telemetry is strictly out-of-band. A Recorder travels in the context;
// the default — no recorder attached — is a nil *Recorder whose every
// method is a nil-check and a return, so hot paths (the annealer's move
// loop, the maze routers' expansion loops) pay nothing when telemetry is
// disabled, and algorithm outputs are byte-identical with telemetry on or
// off: the recorder only ever reads the computation, never feeds it.
//
// The three instruments:
//
//   - Spans (trace.go): obs.Start(ctx, "place.anneal") opens a nested
//     span; End records it into the Tracer's ring buffer, exportable as a
//     Chrome trace_event JSON file (chrome://tracing, Perfetto).
//   - Metrics (metrics.go): a Registry of counters, gauges, and
//     fixed-bucket histograms rendered in the Prometheus text format.
//   - Logs (log.go): log/slog with request IDs propagated through the
//     context into handler logs and span attributes.
package obs

import (
	"context"
	"io"
	"log/slog"
)

// BatchTap observes the algorithm batch telemetry of one computation:
// the same anneal/route deltas the engines flush to the Recorder at their
// MoveBatch/ExpansionBatch poll points, delivered to a per-computation
// sink instead of the process-wide registry. The async job layer uses a
// tap to stream live progress for a single job; the tap, like the
// registry, only ever reads the computation and never feeds it.
type BatchTap interface {
	AnnealBatch(temp float64, moves, accepted int)
	RouteBatch(engine string, expansions, pushes int)
}

// Recorder bundles the telemetry sinks one run records into. Any field
// may be nil: a Recorder with only a tracer records spans and drops
// metrics, and vice versa. The nil *Recorder is the disabled state — all
// methods are safe and free on it.
type Recorder struct {
	tracer *Tracer
	reg    *Registry
	logger *slog.Logger
	tap    BatchTap

	// Pre-resolved algorithm instruments, so the per-batch hot-loop hooks
	// never do registry lookups.
	annealTemp        *Gauge
	annealRatio       *Gauge
	annealMoves       *Counter
	annealAccepted    *Counter
	annealRepMoves    *Counter
	annealRepAccepted *Counter
	routeExp          *Counter
	routePush         *Counter
}

// NewRecorder builds a recorder over the given sinks; any may be nil.
// When a registry is supplied, the algorithm-level instrument families
// (anneal temperature/acceptance, route expansions/pushes) are registered
// on it immediately so they appear in scrapes even before the first run.
func NewRecorder(tracer *Tracer, reg *Registry, logger *slog.Logger) *Recorder {
	r := &Recorder{tracer: tracer, reg: reg, logger: logger}
	if reg != nil {
		r.annealTemp = reg.Gauge("parchmint_anneal_temperature",
			"Current temperature of the most recent annealing batch.")
		r.annealRatio = reg.Gauge("parchmint_anneal_accept_ratio",
			"Move acceptance ratio of the most recent annealing batch.")
		r.annealMoves = reg.Counter("parchmint_anneal_moves_total",
			"Annealing moves proposed.")
		r.annealAccepted = reg.Counter("parchmint_anneal_accepted_total",
			"Annealing moves accepted.")
		r.annealRepMoves = reg.Counter("parchmint_anneal_replica_moves_total",
			"Annealing moves proposed, by tempering replica.", "replica")
		r.annealRepAccepted = reg.Counter("parchmint_anneal_replica_accepted_total",
			"Annealing moves accepted, by tempering replica.", "replica")
		r.routeExp = reg.Counter("parchmint_route_expansions_total",
			"Maze-search node expansions, by engine.", "engine")
		r.routePush = reg.Counter("parchmint_route_pushes_total",
			"Maze-search frontier pushes, by engine.", "engine")
	}
	return r
}

// WithTap returns a recorder that records everything r records and
// additionally forwards anneal/route batch deltas to t. The original
// recorder is not modified, so one process-wide recorder can fan out to
// any number of per-computation taps concurrently. A nil receiver yields
// a tap-only recorder; a nil tap returns r unchanged.
func (r *Recorder) WithTap(t BatchTap) *Recorder {
	if t == nil {
		return r
	}
	if r == nil {
		return &Recorder{tap: t}
	}
	c := *r
	c.tap = t
	return &c
}

// Tracer returns the recorder's span sink; nil when tracing is disabled.
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Metrics returns the recorder's registry; nil when metrics are disabled.
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// discard swallows log records; Logger never returns nil so call sites
// need no guards.
var discard = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 128}))

// Logger returns the recorder's structured logger, or a discarding logger
// when none is configured.
func (r *Recorder) Logger() *slog.Logger {
	if r == nil || r.logger == nil {
		return discard
	}
	return r.logger
}

// AnnealBatch records one batch of simulated-annealing work: moves
// proposed and accepted at the given temperature. The annealer calls it
// at its MoveBatch cancellation polls, so a live scrape sees the cooling
// schedule as it runs. Free (one nil check) when telemetry is off.
func (r *Recorder) AnnealBatch(temp float64, moves, accepted int) {
	if r == nil || moves <= 0 {
		return
	}
	if r.reg != nil {
		r.annealTemp.Set(temp)
		r.annealRatio.Set(float64(accepted) / float64(moves))
		r.annealMoves.Add(float64(moves))
		r.annealAccepted.Add(float64(accepted))
	}
	if r.tap != nil {
		r.tap.AnnealBatch(temp, moves, accepted)
	}
}

// AnnealReplicaBatch records one batch of parallel-tempering work by the
// labeled replica: the per-replica counter series plus the aggregate
// move/accept counters the single-replica schedule feeds. Replicas run
// concurrently, so only mutex-guarded counters are touched — the
// last-write gauges (temperature, acceptance ratio) stay with the
// single-replica path where they are well-defined. Free (one nil check)
// when telemetry is off.
func (r *Recorder) AnnealReplicaBatch(replica string, temp float64, moves, accepted int) {
	if r == nil || moves <= 0 {
		return
	}
	if r.reg != nil {
		r.annealMoves.Add(float64(moves))
		r.annealAccepted.Add(float64(accepted))
		r.annealRepMoves.Add(float64(moves), replica)
		r.annealRepAccepted.Add(float64(accepted), replica)
	}
	if r.tap != nil {
		// Taps see the aggregate stream: per-replica attribution is a
		// registry concern, progress consumers want total work done.
		r.tap.AnnealBatch(temp, moves, accepted)
	}
}

// RouteBatch records one batch of maze-search work by the named engine:
// node expansions and frontier pushes since the previous batch. The
// routers call it at their ExpansionBatch cancellation polls. Free (one
// nil check) when telemetry is off.
func (r *Recorder) RouteBatch(engine string, expansions, pushes int) {
	if r == nil || (expansions == 0 && pushes == 0) {
		return
	}
	if r.reg != nil {
		if expansions > 0 {
			r.routeExp.Add(float64(expansions), engine)
		}
		if pushes > 0 {
			r.routePush.Add(float64(pushes), engine)
		}
	}
	if r.tap != nil {
		r.tap.RouteBatch(engine, expansions, pushes)
	}
}

// Context plumbing. Recorder, current span, request ID, and W3C trace
// context ride the context under unexported keys; absence is always a
// valid state.
type (
	recorderKey    struct{}
	spanKey        struct{}
	requestKey     struct{}
	traceparentKey struct{}
	traceIDKey     struct{}
)

// WithRecorder attaches a recorder to the context. Passing nil returns
// ctx unchanged, keeping the disabled path allocation-free.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, r)
}

// FromContext returns the context's recorder, or nil when telemetry is
// disabled. The nil result is safe to use directly: every Recorder method
// no-ops on it.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}

// WithRequestID stamps a request identifier onto the context; handlers
// set it once and every span and log line opened under the context
// carries it.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestKey{}, id)
}

// RequestID returns the context's request identifier, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestKey{}).(string)
	return id
}

// traceCtx carries a parsed traceparent plus the pre-boxed trace ID in
// one derived context, answering both obs trace keys without a WithValue
// chain.
type traceCtx struct {
	context.Context
	tp  string
	tid any
}

func (c *traceCtx) Value(key any) any {
	switch key.(type) {
	case traceparentKey:
		return c.tp
	case traceIDKey:
		return c.tid
	}
	return c.Context.Value(key)
}

// WithTraceparent attaches a W3C trace context, given as a traceparent
// header value, to the context: spans opened below carry its trace ID as
// a `trace_id` attribute and Traceparent returns the header for onward
// propagation. A value that does not parse returns ctx unchanged — the
// job layer uses this to re-adopt the submitting request's trace on
// execution and on journal replay, where an empty or legacy record is a
// valid state.
func WithTraceparent(ctx context.Context, traceparent string) context.Context {
	tc, ok := ParseTraceparent(traceparent)
	if !ok {
		return ctx
	}
	return &traceCtx{Context: ctx, tp: traceparent, tid: tc.TraceIDString()}
}

// Traceparent returns the context's traceparent header value, or "".
func Traceparent(ctx context.Context) string {
	tp, _ := ctx.Value(traceparentKey{}).(string)
	return tp
}

// TraceID returns the context's 32-hex-digit trace ID, or "".
func TraceID(ctx context.Context) string {
	tid, _ := ctx.Value(traceIDKey{}).(string)
	return tid
}

// Start opens a span named name under the context's recorder and returns
// a derived context carrying it, so child spans nest beneath it in the
// exported trace. Without a recorder (or without a tracer) it returns ctx
// unchanged and a nil span — End and SetAttr on a nil span are no-ops, so
// call sites never branch on the telemetry state.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	r := FromContext(ctx)
	if r == nil || r.tracer == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	sp := r.tracer.start(name, parent)
	if id := RequestID(ctx); id != "" {
		sp.SetAttr("request_id", id)
	}
	if tid := ctx.Value(traceIDKey{}); tid != nil {
		// Pre-boxed by the carrier (traceCtx or RequestValues), so the
		// stamp re-boxes nothing.
		sp.SetAttr("trace_id", tid)
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}
