package obs

import (
	"math"
	"runtime/metrics"
	"sync"
)

// Runtime telemetry bridge: a curated slice of runtime/metrics exported
// as parchmint_go_* series, sampled lazily at scrape time through the
// registry's OnScrape hook — the process pays one metrics.Read per
// scrape, nothing per request. Version-dependent keys are filtered
// against the running runtime's catalog at registration, so a toolchain
// that drops or renames a key degrades to "series absent", never to a
// panic.

var (
	runtimeQuantiles      = []float64{0.5, 0.99, 1}
	runtimeQuantileLabels = []string{"p50", "p99", "max"}
)

// RegisterRuntimeMetrics exports the Go runtime health series onto reg:
// goroutine count, heap in-use/total/goal bytes, cumulative GC cycles,
// and p50/p99/max of the GC stop-the-world pause and scheduler latency
// distributions. Values refresh on every scrape.
func RegisterRuntimeMetrics(reg *Registry) {
	available := make(map[string]metrics.Description)
	for _, d := range metrics.All() {
		available[d.Name] = d
	}

	type binding struct {
		key string
		set func(metrics.Value)
	}
	var (
		bindings []*binding
		mu       sync.Mutex
	)
	bind := func(key string, set func(metrics.Value)) {
		if _, ok := available[key]; !ok {
			return
		}
		bindings = append(bindings, &binding{key: key, set: set})
	}

	gGoroutines := reg.Gauge("parchmint_go_goroutines",
		"Live goroutines, sampled at scrape time.")
	bind("/sched/goroutines:goroutines", func(v metrics.Value) {
		gGoroutines.Set(float64(v.Uint64()))
	})

	gHeapObjects := reg.Gauge("parchmint_go_heap_objects_bytes",
		"Bytes occupied by live objects and dead objects not yet swept.")
	bind("/memory/classes/heap/objects:bytes", func(v metrics.Value) {
		gHeapObjects.Set(float64(v.Uint64()))
	})

	gMemTotal := reg.Gauge("parchmint_go_memory_total_bytes",
		"All memory mapped by the Go runtime into the current process.")
	bind("/memory/classes/total:bytes", func(v metrics.Value) {
		gMemTotal.Set(float64(v.Uint64()))
	})

	gHeapGoal := reg.Gauge("parchmint_go_gc_heap_goal_bytes",
		"Heap size target of the end of the current GC cycle.")
	bind("/gc/heap/goal:bytes", func(v metrics.Value) {
		gHeapGoal.Set(float64(v.Uint64()))
	})

	// Cumulative cycle count arrives as a runtime total; the counter
	// records deltas so restarts of the registry (tests) stay monotonic.
	cGC := reg.Counter("parchmint_go_gc_cycles_total",
		"Completed GC cycles.")
	var lastGC uint64
	var haveGC bool
	bind("/gc/cycles/total:gc-cycles", func(v metrics.Value) {
		n := v.Uint64()
		if haveGC && n >= lastGC {
			cGC.Add(float64(n - lastGC))
		} else if !haveGC {
			cGC.Add(float64(n))
		}
		lastGC, haveGC = n, true
	})

	gPause := reg.Gauge("parchmint_go_gc_pause_seconds",
		"GC stop-the-world pause latency quantiles, since process start.", "q")
	bind("/sched/pauses/total/gc:seconds", func(v metrics.Value) {
		setQuantiles(gPause, v)
	})

	gSched := reg.Gauge("parchmint_go_sched_latency_seconds",
		"Goroutine scheduling latency quantiles, since process start.", "q")
	bind("/sched/latencies:seconds", func(v metrics.Value) {
		setQuantiles(gSched, v)
	})

	samples := make([]metrics.Sample, len(bindings))
	for i, b := range bindings {
		samples[i].Name = b.key
	}
	reg.OnScrape(func() {
		// Scrapes can be concurrent; the sample slice is shared scratch.
		mu.Lock()
		defer mu.Unlock()
		metrics.Read(samples)
		for i, b := range bindings {
			if samples[i].Value.Kind() == metrics.KindBad {
				continue
			}
			b.set(samples[i].Value)
		}
	})
}

// setQuantiles distills a runtime Float64Histogram into p50/p99/max
// gauge series. Bucket upper bounds stand in for exact order statistics;
// +Inf falls back to the bucket's lower bound so the series stays
// finite.
func setQuantiles(g *Gauge, v metrics.Value) {
	if v.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := v.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return
	}
	for qi, q := range runtimeQuantiles {
		g.Set(histQuantile(h, q, total), runtimeQuantileLabels[qi])
	}
}

// histQuantile walks the cumulative counts to the bucket containing the
// q-quantile and reports its upper bound (Buckets[i+1]); when that bound
// is +Inf — the catch-all final bucket — the lower bound is the best
// finite answer.
func histQuantile(h *metrics.Float64Histogram, q float64, total uint64) float64 {
	want := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if c > 0 && float64(cum) >= want {
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) || math.IsNaN(ub) {
				ub = h.Buckets[i]
			}
			if math.IsNaN(ub) || math.IsInf(ub, 0) || ub < 0 {
				return 0
			}
			return ub
		}
	}
	return 0
}
