package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one finished span in the Chrome trace_event JSON format: a
// complete ("X") event with microsecond timestamp and duration relative
// to the tracer's start. Load the exported file in chrome://tracing or
// https://ui.perfetto.dev to see the nested flame view.
type Event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the trace_event JSON object form (the one with metadata,
// as opposed to the bare event array, which viewers also accept).
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Tracer records finished spans into a bounded ring buffer. It is safe
// for concurrent use: spans may start and end on any goroutine. Each root
// span gets its own trace_event "thread" lane (tid) and child spans
// inherit their parent's, which is what makes the viewer nest them.
type Tracer struct {
	begin   time.Time
	nextTID atomic.Uint64

	mu      sync.Mutex
	ring    []Event
	cap     int
	next    int    // write index once the ring is full
	dropped uint64 // events overwritten after the ring wrapped
}

// DefaultTraceEvents is the ring capacity NewTracer(0) selects — enough
// for thousands of requests' stage spans without unbounded growth in a
// long-lived server.
const DefaultTraceEvents = 16384

// NewTracer creates a tracer retaining the most recent capacity events;
// capacity <= 0 selects DefaultTraceEvents.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{begin: time.Now(), cap: capacity}
}

// Span is one in-flight span. It is owned by the goroutine that started
// it until End; SetAttr must not race with End.
type Span struct {
	tracer *Tracer
	name   string
	tid    uint64
	start  time.Time
	args   map[string]any
}

// start opens a span; parent may be nil (a new root lane).
func (t *Tracer) start(name string, parent *Span) *Span {
	tid := uint64(0)
	if parent != nil {
		tid = parent.tid
	} else {
		tid = t.nextTID.Add(1)
	}
	return &Span{tracer: t, name: name, tid: tid, start: time.Now()}
}

// SetAttr attaches an attribute rendered into the event's args. No-op on
// a nil span, so call sites never guard on the telemetry state.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = value
}

// End finishes the span and records it. No-op on a nil span. End must be
// called exactly once; the span must not be reused afterwards.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	e := Event{
		Name:  s.name,
		Phase: "X",
		TS:    s.start.Sub(t.begin).Microseconds(),
		Dur:   time.Since(s.start).Microseconds(),
		PID:   1,
		TID:   s.tid,
		Args:  s.args,
	}
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.next = (t.next + 1) % t.cap
		t.dropped++
	}
	t.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped reports how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the most recent n events in record order; n <= 0 means
// all retained events. The result is a copy, safe to hold while spans
// keep ending.
func (t *Tracer) Events(n int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var ordered []Event
	if len(t.ring) < t.cap {
		ordered = append(ordered, t.ring...)
	} else {
		ordered = append(ordered, t.ring[t.next:]...)
		ordered = append(ordered, t.ring[:t.next]...)
	}
	if n > 0 && n < len(ordered) {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// WriteJSON renders the most recent n events (n <= 0: all) as a Chrome
// trace_event JSON document.
func (t *Tracer) WriteJSON(w io.Writer, n int) error {
	doc := traceFile{TraceEvents: t.Events(n), DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []Event{}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile writes the full retained trace to path; the conventional
// export behind the CLIs' -trace flag.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := t.WriteJSON(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CheckTrace validates data as a Chrome trace_event document: it must
// parse, hold at least one event, every event must be well-formed (name,
// "X" phase, non-negative timing), and every name in want must appear.
// It backs `parchmint-perf -check-trace` and the trace-smoke CI gate.
func CheckTrace(data []byte, want ...string) error {
	var doc traceFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace does not parse: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace holds no events")
	}
	seen := make(map[string]bool, len(doc.TraceEvents))
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Phase != "X" || e.TS < 0 || e.Dur < 0 {
			return fmt.Errorf("obs: malformed event %d: %+v", i, e)
		}
		seen[e.Name] = true
	}
	for _, name := range want {
		if !seen[name] {
			return fmt.Errorf("obs: trace is missing span %q", name)
		}
	}
	return nil
}
