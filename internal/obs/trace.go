package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one finished span in the Chrome trace_event JSON format: a
// complete ("X") event with microsecond timestamp and duration relative
// to the tracer's start. Load the exported file in chrome://tracing or
// https://ui.perfetto.dev to see the nested flame view.
type Event struct {
	Name  string     `json:"name"`
	Phase string     `json:"ph"`
	TS    int64      `json:"ts"`
	Dur   int64      `json:"dur"`
	PID   int        `json:"pid"`
	TID   uint64     `json:"tid"`
	Args  *SpanAttrs `json:"args,omitempty"`
}

// spanAttr is one span attribute in insertion order.
type spanAttr struct {
	key   string
	value any
}

// spanAttrInline is the attribute capacity carried inside the span
// itself. Nearly every span in the system sets at most four attributes
// (a request span: request_id and status), so the common case writes
// into the span's own allocation; larger sets spill into a map.
const spanAttrInline = 4

// SpanAttrs is a span's attribute set. It renders as a JSON object with
// sorted keys — byte-identical to the map[string]any it replaced — but
// the first spanAttrInline attributes live inline in the span, costing
// no allocation of their own.
type SpanAttrs struct {
	kv    [spanAttrInline]spanAttr
	n     int
	spill map[string]any
}

func (a *SpanAttrs) set(key string, value any) {
	for i := range a.kv[:a.n] {
		if a.kv[i].key == key {
			a.kv[i].value = value
			return
		}
	}
	if a.spill != nil {
		if _, ok := a.spill[key]; ok {
			a.spill[key] = value
			return
		}
	}
	if a.n < spanAttrInline {
		a.kv[a.n] = spanAttr{key: key, value: value}
		a.n++
		return
	}
	if a.spill == nil {
		a.spill = make(map[string]any, 4)
	}
	a.spill[key] = value
}

func (a *SpanAttrs) empty() bool { return a.n == 0 && len(a.spill) == 0 }

// Get returns the attribute stored under key.
func (a *SpanAttrs) Get(key string) (any, bool) {
	if a == nil {
		return nil, false
	}
	for i := range a.kv[:a.n] {
		if a.kv[i].key == key {
			return a.kv[i].value, true
		}
	}
	v, ok := a.spill[key]
	return v, ok
}

// Len reports the number of attributes.
func (a *SpanAttrs) Len() int {
	if a == nil {
		return 0
	}
	return a.n + len(a.spill)
}

// MarshalJSON renders the attributes as an object with sorted keys,
// matching encoding/json's map rendering byte for byte.
func (a *SpanAttrs) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, a.Len())
	for i := range a.kv[:a.n] {
		keys = append(keys, a.kv[i].key)
	}
	for k := range a.spill {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := []byte{'{'}
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf = append(buf, kb...)
		buf = append(buf, ':')
		v, _ := a.Get(k)
		vb, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		buf = append(buf, vb...)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON accepts the object form; insertion order is not
// preserved (rendering sorts, so round-trips are stable).
func (a *SpanAttrs) UnmarshalJSON(data []byte) error {
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for k, v := range m {
		a.set(k, v)
	}
	return nil
}

// traceFile is the trace_event JSON object form (the one with metadata,
// as opposed to the bare event array, which viewers also accept).
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Tracer records finished spans into a bounded ring buffer. It is safe
// for concurrent use: spans may start and end on any goroutine. Each root
// span gets its own trace_event "thread" lane (tid) and child spans
// inherit their parent's, which is what makes the viewer nest them.
type Tracer struct {
	begin   time.Time
	nextTID atomic.Uint64

	mu      sync.Mutex
	ring    []Event
	cap     int
	next    int    // write index once the ring is full
	dropped uint64 // events overwritten after the ring wrapped
}

// DefaultTraceEvents is the ring capacity NewTracer(0) selects — enough
// for thousands of requests' stage spans without unbounded growth in a
// long-lived server.
const DefaultTraceEvents = 16384

// NewTracer creates a tracer retaining the most recent capacity events;
// capacity <= 0 selects DefaultTraceEvents.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{begin: time.Now(), cap: capacity}
}

// Span is one in-flight span. It is owned by the goroutine that started
// it until End; SetAttr must not race with End.
type Span struct {
	tracer *Tracer
	name   string
	tid    uint64
	start  time.Time
	args   SpanAttrs
	flight *FlightBuf
}

// start opens a span; parent may be nil (a new root lane). A child span
// inherits its parent's flight-recorder capture, so arming the request's
// root span is enough to collect the whole tree.
func (t *Tracer) start(name string, parent *Span) *Span {
	tid := uint64(0)
	sp := &Span{tracer: t, name: name, start: time.Now()}
	if parent != nil {
		tid = parent.tid
		sp.flight = parent.flight
	} else {
		tid = t.nextTID.Add(1)
	}
	sp.tid = tid
	return sp
}

// CaptureTo additionally records the span (and, transitively, every
// child span started under it) into fb when it ends. No-op on a nil span
// or buffer, so call sites never guard on the telemetry state.
func (s *Span) CaptureTo(fb *FlightBuf) {
	if s == nil || fb == nil {
		return
	}
	s.flight = fb
}

// SetAttr attaches an attribute rendered into the event's args. No-op on
// a nil span, so call sites never guard on the telemetry state. The
// attribute lands in the span's inline storage, so the typical span pays
// no allocation beyond the span itself.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.args.set(key, value)
}

// End finishes the span and records it. No-op on a nil span. End must be
// called exactly once; the span must not be reused afterwards.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	dur := time.Since(s.start)
	e := Event{
		Name:  s.name,
		Phase: "X",
		TS:    s.start.Sub(t.begin).Microseconds(),
		Dur:   dur.Microseconds(),
		PID:   1,
		TID:   s.tid,
	}
	if !s.args.empty() {
		// The span is already a heap object the ring retains through the
		// event; pointing at its inline attributes costs nothing.
		e.Args = &s.args
	}
	if s.flight != nil {
		// The flight record shares the same immutable attribute storage
		// the trace ring points at.
		s.flight.add(s.name, s.start, dur, e.Args)
	}
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.next = (t.next + 1) % t.cap
		t.dropped++
	}
	t.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped reports how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the most recent n events in record order; n <= 0 means
// all retained events. The result is a copy, safe to hold while spans
// keep ending.
func (t *Tracer) Events(n int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var ordered []Event
	if len(t.ring) < t.cap {
		ordered = append(ordered, t.ring...)
	} else {
		ordered = append(ordered, t.ring[t.next:]...)
		ordered = append(ordered, t.ring[:t.next]...)
	}
	if n > 0 && n < len(ordered) {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// WriteJSON renders the most recent n events (n <= 0: all) as a Chrome
// trace_event JSON document.
func (t *Tracer) WriteJSON(w io.Writer, n int) error {
	doc := traceFile{TraceEvents: t.Events(n), DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []Event{}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile writes the full retained trace to path; the conventional
// export behind the CLIs' -trace flag.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := t.WriteJSON(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CheckTrace validates data as a Chrome trace_event document: it must
// parse, hold at least one event, every event must be well-formed (name,
// "X" phase, non-negative timing), and every name in want must appear.
// It backs `parchmint-perf -check-trace` and the trace-smoke CI gate.
func CheckTrace(data []byte, want ...string) error {
	var doc traceFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace does not parse: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace holds no events")
	}
	seen := make(map[string]bool, len(doc.TraceEvents))
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Phase != "X" || e.TS < 0 || e.Dur < 0 {
			return fmt.Errorf("obs: malformed event %d: %+v", i, e)
		}
		seen[e.Name] = true
	}
	for _, name := range want {
		if !seen[name] {
			return fmt.Errorf("obs: trace is missing span %q", name)
		}
	}
	return nil
}
