package obs

import (
	"io"
	"log/slog"
)

// NewLogger builds the repository's standard structured logger writing to
// w: "json" selects slog's JSON handler (one object per line, for log
// shippers), anything else the human-readable text handler. This is the
// single point deciding log shape, so every CLI's -log-format flag and the
// server agree.
func NewLogger(format string, w io.Writer) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h)
}
