package obs

import (
	"context"
	"testing"
)

// The disabled-telemetry path must stay free: PR 3 drove the anneal and
// route hot loops to near-zero allocs/op, and these hooks sit inside them.

func TestDisabledHooksAllocFree(t *testing.T) {
	ctx := context.Background()
	var rec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		rec = FromContext(ctx)
		rec.AnnealBatch(1.0, 64, 32)
		rec.RouteBatch("astar", 1024, 2048)
	}); n != 0 {
		t.Fatalf("disabled telemetry hooks allocate %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		c, sp := Start(ctx, "place.anneal")
		_ = c
		sp.SetAttr("k", 1)
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled Start/End allocates %.1f allocs/op, want 0", n)
	}
}

func BenchmarkDisabledAnnealBatch(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.AnnealBatch(1.0, 64, 32)
	}
}

func BenchmarkDisabledRouteBatch(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.RouteBatch("astar", 1024, 2048)
	}
}

func BenchmarkDisabledStartEnd(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "place.anneal")
		sp.End()
	}
}
