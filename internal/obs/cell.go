package obs

import "fmt"

// Pre-resolved series handles. Counter.Add with label values pays a
// variadic slice allocation plus a label-key join on every call; hot
// paths that always hit the same series (one endpoint's latency counter,
// one endpoint/outcome pair) bind a cell once at wire-up time and pay
// only the family lock afterwards.
//
// Resolution is lazy: building a cell does not materialize the series, so
// instrumenting every endpoint at construction time adds nothing to the
// scrape output until a cell actually records. That preserves the
// registry's contract that a series appears in the exposition only once
// it has been written.

// CounterCell is a Counter bound to one label-value combination.
type CounterCell struct {
	f  *family
	lv []string
	s  *series
}

// Cell binds the counter to labelValues. The label count is checked here
// so a schema mismatch surfaces at wire-up, not on the first request.
func (c *Counter) Cell(labelValues ...string) *CounterCell {
	if len(labelValues) != len(c.f.labels) {
		panic(fmt.Sprintf("obs: metric %q cell with %d label values, schema has %d",
			c.f.name, len(labelValues), len(c.f.labels)))
	}
	return &CounterCell{f: c.f, lv: append([]string(nil), labelValues...)}
}

// Add increases the bound series by v (v >= 0).
func (c *CounterCell) Add(v float64) {
	c.f.mu.Lock()
	if c.s == nil {
		c.s = c.f.get(c.lv)
	}
	c.s.value += v
	c.f.mu.Unlock()
}

// Inc increases the bound series by one.
func (c *CounterCell) Inc() { c.Add(1) }

// Value reads the bound series' current value (0 when never written).
func (c *CounterCell) Value() float64 {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	if c.s == nil {
		c.s = c.f.get(c.lv)
	}
	return c.s.value
}

// HistogramCell is a Histogram bound to one label-value combination.
type HistogramCell struct {
	f  *family
	lv []string
	s  *series
}

// Cell binds the histogram to labelValues; see Counter.Cell.
func (h *Histogram) Cell(labelValues ...string) *HistogramCell {
	if len(labelValues) != len(h.f.labels) {
		panic(fmt.Sprintf("obs: metric %q cell with %d label values, schema has %d",
			h.f.name, len(labelValues), len(h.f.labels)))
	}
	return &HistogramCell{f: h.f, lv: append([]string(nil), labelValues...)}
}

// Observe records v into the bound series.
func (h *HistogramCell) Observe(v float64) {
	h.f.mu.Lock()
	if h.s == nil {
		h.s = h.f.get(h.lv)
	}
	h.f.observe(h.s, v, "")
	h.f.mu.Unlock()
}

// ObserveWithExemplar records v and remembers traceID as the exemplar of
// the bucket v lands in; an empty traceID degrades to a plain Observe.
func (h *HistogramCell) ObserveWithExemplar(v float64, traceID string) {
	h.f.mu.Lock()
	if h.s == nil {
		h.s = h.f.get(h.lv)
	}
	h.f.observe(h.s, v, traceID)
	h.f.mu.Unlock()
}
