package obs

import (
	"bytes"
	"strings"
	"testing"
)

func scrapeOM(reg *Registry) string {
	var buf bytes.Buffer
	reg.WriteOpenMetrics(&buf)
	return buf.String()
}

func TestExemplarAttachesToBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "endpoint")
	h.ObserveWithExemplar(0.05, "aaaabbbbccccddddaaaabbbbccccdddd", "pnr")
	h.ObserveWithExemplar(5, "11112222333344441111222233334444", "pnr")
	out := scrapeOM(reg)
	if !strings.Contains(out,
		`latency_seconds_bucket{endpoint="pnr",le="0.1"} 1 # {trace_id="aaaabbbbccccddddaaaabbbbccccdddd"} 0.050000`) {
		t.Errorf("0.05 exemplar missing from le=0.1 bucket:\n%s", out)
	}
	if !strings.Contains(out,
		`latency_seconds_bucket{endpoint="pnr",le="+Inf"} 2 # {trace_id="11112222333344441111222233334444"} 5`) {
		t.Errorf("overflow exemplar missing from +Inf bucket:\n%s", out)
	}
	// le=0.01 saw no observation, so it must carry no exemplar.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="0.01"`) && strings.Contains(line, "#") {
			t.Errorf("empty bucket carries an exemplar: %s", line)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics exposition must end with # EOF:\n%s", out)
	}
}

// An exemplar only annotates; it never changes the sample values, so the
// two expositions agree line for line once annotations are stripped.
func TestExemplarDoesNotChangeHistogram(t *testing.T) {
	plain, annotated := NewRegistry(), NewRegistry()
	hp := plain.Histogram("lat", "Latency.", []float64{0.01, 0.1, 1})
	ha := annotated.Histogram("lat", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.2, 7} {
		hp.Observe(v)
		ha.ObserveWithExemplar(v, "4bf92f3577b34da6a3ce929d0e0e4736")
	}
	if got, want := scrape(annotated), scrape(plain); got != want {
		t.Errorf("Prometheus exposition differs with exemplars recorded:\n%s\nwant:\n%s", got, want)
	}
	stripped := stripExemplars(scrapeOM(annotated))
	if want := stripExemplars(scrapeOM(plain)); stripped != want {
		t.Errorf("OpenMetrics sample values differ:\n%s\nwant:\n%s", stripped, want)
	}
}

func stripExemplars(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.Index(line, " # {"); i >= 0 {
			line = line[:i]
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func TestOpenMetricsCounterNaming(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "Requests served.", "endpoint")
	c.Inc("pnr")
	out := scrapeOM(reg)
	if !strings.Contains(out, "# HELP requests Requests served.\n# TYPE requests counter\n") {
		t.Errorf("counter metadata should drop the _total suffix:\n%s", out)
	}
	if !strings.Contains(out, `requests_total{endpoint="pnr"} 1`+"\n") {
		t.Errorf("counter samples keep the _total suffix:\n%s", out)
	}
}

func TestOnScrapeRunsPerExposition(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("sampled", "Scrape-time value.")
	n := 0.0
	reg.OnScrape(func() { n++; g.Set(n) })
	if !strings.Contains(scrape(reg), "sampled 1\n") {
		t.Fatal("hook did not run before the Prometheus render")
	}
	if !strings.Contains(scrapeOM(reg), "sampled 2\n") {
		t.Fatal("hook did not run before the OpenMetrics render")
	}
}

// The plain Observe path must stay allocation-free even on a series that
// has never seen an exemplar.
func TestHistogramObserveAllocFree(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "Latency.", nil).Cell()
	allocs := testing.AllocsPerRun(200, func() { h.Observe(0.01) })
	if allocs != 0 {
		t.Errorf("Observe allocated %.1f times per run, want 0", allocs)
	}
}
