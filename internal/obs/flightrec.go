package obs

import (
	"sync"
	"time"
)

// Tail-sampled request flight recorder: a bounded in-memory ring of
// complete per-request records (span tree, attrs, status, cache outcome,
// timings) that is always on, unlike the -trace flag's whole-process
// ring. Head sampling decides "record or not" before the request runs
// and therefore keeps a uniform slice of mostly-boring traffic; tail
// sampling decides after the outcome is known, so the ring is biased
// toward exactly the requests an operator asks about on a live box:
// errors, load-shed rejections, and the slow tail. The policy is
// "always keep errors/shed/slowest-p99, probabilistically keep the
// rest"; the slow threshold is a streaming P² estimate of the p99
// latency, so it adapts to the workload without configuration.
//
// The write path stays out of band: every request appends finished spans
// into a pooled per-request FlightBuf (two pointer-width stores and a
// bounds check per span), and the copy into ring-owned memory happens
// only for the small kept fraction.

// DefaultFlightRequests is the ring capacity when the server does not
// override it.
const DefaultFlightRequests = 256

// DefaultTraceSample is the probability that an ordinary (non-error,
// non-shed, non-slow) request is retained.
const DefaultTraceSample = 0.05

// maxFlightSpans bounds the per-request span capture so a pathological
// request (say a 256-item batch) cannot make its own record unbounded.
const maxFlightSpans = 64

// FlightSpan is one finished span inside a request record: name, offset
// from the request start, duration, and the span's attributes. Attrs
// aliases the same SpanAttrs the trace ring holds — spans are immutable
// after End, so sharing is safe.
type FlightSpan struct {
	Name    string     `json:"name"`
	StartUS int64      `json:"start_us"`
	DurUS   int64      `json:"dur_us"`
	Attrs   *SpanAttrs `json:"attrs,omitempty"`
}

// FlightBuf collects the spans of one in-flight request. It is owned by
// the request's pooled state and reused across requests; spans append to
// it concurrently (batch items finish on worker goroutines), so the
// append is mutex-guarded.
type FlightBuf struct {
	mu        sync.Mutex
	base      time.Time
	spans     []FlightSpan
	truncated bool
	active    bool
}

// Reset arms the buffer for a new request starting at base. Previous
// contents are dropped; retained Attrs pointers in the backing array are
// zeroed so the pool does not pin old span attributes alive.
func (b *FlightBuf) Reset(base time.Time) {
	b.mu.Lock()
	for i := range b.spans {
		b.spans[i] = FlightSpan{}
	}
	b.spans = b.spans[:0]
	b.truncated = false
	b.base = base
	b.active = true
	b.mu.Unlock()
}

// Disarm stops further captures (called when the pooled state is
// released, so a span leaked past the request's end cannot write into a
// buffer now owned by another request).
func (b *FlightBuf) Disarm() {
	b.mu.Lock()
	b.active = false
	b.mu.Unlock()
}

// add records one finished span. Called from Span.End.
func (b *FlightBuf) add(name string, start time.Time, dur time.Duration, attrs *SpanAttrs) {
	b.mu.Lock()
	if !b.active {
		b.mu.Unlock()
		return
	}
	if len(b.spans) >= maxFlightSpans {
		b.truncated = true
		b.mu.Unlock()
		return
	}
	b.spans = append(b.spans, FlightSpan{
		Name:    name,
		StartUS: start.Sub(b.base).Microseconds(),
		DurUS:   dur.Microseconds(),
		Attrs:   attrs,
	})
	b.mu.Unlock()
}

// Spans returns an owned copy of the collected spans and whether the
// capture overflowed.
func (b *FlightBuf) Spans() ([]FlightSpan, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]FlightSpan(nil), b.spans...), b.truncated
}

// RequestRecord is one complete kept request: identity, route, outcome,
// timing, and the captured span tree. Records are immutable once in the
// ring.
type RequestRecord struct {
	ID          string        `json:"request_id"`
	TraceID     string        `json:"trace_id"`
	Traceparent string        `json:"traceparent"`
	Endpoint    string        `json:"endpoint"`
	Method      string        `json:"method"`
	Path        string        `json:"path"`
	Status      int           `json:"status"`
	Start       time.Time     `json:"start"`
	Duration    time.Duration `json:"duration"`
	Cache       string        `json:"cache,omitempty"`
	Reason      string        `json:"reason"`
	Truncated   bool          `json:"truncated,omitempty"`
	Spans       []FlightSpan  `json:"spans"`
}

// FlightStats summarizes recorder activity for /debug/requests and the
// metrics gauge.
type FlightStats struct {
	Seen    uint64
	Kept    uint64
	Evicted uint64
	Records int
	P99     float64
}

// FlightRecorder is the bounded ring plus the retention policy. All
// methods are safe for concurrent use.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	sample  float64
	recs    []*RequestRecord // insertion order, oldest first
	byID    map[string]*RequestRecord
	seen    uint64
	kept    uint64
	evicted uint64
	p99     p2Quantile
}

// NewFlightRecorder builds a recorder holding up to capacity records,
// keeping ordinary requests with probability sample. capacity <= 0 or a
// sample outside [0,1] fall back to the defaults.
func NewFlightRecorder(capacity int, sample float64) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRequests
	}
	if sample < 0 || sample > 1 {
		sample = DefaultTraceSample
	}
	return &FlightRecorder{
		cap:    capacity,
		sample: sample,
		byID:   make(map[string]*RequestRecord, capacity),
		p99:    newP2Quantile(0.99),
	}
}

// p99Warmup is how many observations the latency estimator needs before
// the "slow" classification trusts it.
const p99Warmup = 64

// Offer presents a finished request to the retention policy. The span
// capture is read out of fb — copied into owned memory — only when the
// record is kept, so the dropped majority pays nothing; fb may be nil
// (the record then keeps whatever rec.Spans the caller set). Returns
// whether the record was retained and under which reason.
func (f *FlightRecorder) Offer(rec RequestRecord, fb *FlightBuf) (string, bool) {
	if f == nil {
		return "", false
	}
	d := rec.Duration.Seconds()
	f.mu.Lock()
	f.seen++
	reason := ""
	switch {
	case rec.Status == 429:
		reason = "shed"
	case rec.Status >= 400:
		reason = "error"
	case f.p99.count() >= p99Warmup && d > f.p99.estimate():
		reason = "slow"
	case f.sample > 0 && float64(randU64()>>11)/(1<<53) < f.sample:
		reason = "sampled"
	}
	f.p99.observe(d)
	if reason == "" {
		f.mu.Unlock()
		return "", false
	}
	rec.Reason = reason
	if fb != nil {
		rec.Spans, rec.Truncated = fb.Spans()
	}
	f.keepLocked(&rec)
	f.kept++
	f.mu.Unlock()
	return reason, true
}

// keepLocked inserts the record, evicting when full: the oldest
// probabilistically-sampled record goes first so the interesting tail
// survives; when the ring is all-interesting, plain oldest-first keeps
// it from pinning forever.
func (f *FlightRecorder) keepLocked(rec *RequestRecord) {
	if len(f.recs) >= f.cap {
		victim := 0
		for i, r := range f.recs {
			if r.Reason == "sampled" {
				victim = i
				break
			}
		}
		delete(f.byID, f.recs[victim].ID)
		f.recs = append(f.recs[:victim], f.recs[victim+1:]...)
		f.evicted++
	}
	f.recs = append(f.recs, rec)
	f.byID[rec.ID] = rec
}

// Snapshot returns up to n records, newest first (n <= 0 means all).
func (f *FlightRecorder) Snapshot(n int) []*RequestRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 || n > len(f.recs) {
		n = len(f.recs)
	}
	out := make([]*RequestRecord, n)
	for i := 0; i < n; i++ {
		out[i] = f.recs[len(f.recs)-1-i]
	}
	return out
}

// Get returns the record for one request ID, if still retained.
func (f *FlightRecorder) Get(id string) (*RequestRecord, bool) {
	if f == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.byID[id]
	return r, ok
}

// Stats reports recorder counters and the current latency estimate.
func (f *FlightRecorder) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FlightStats{
		Seen:    f.seen,
		Kept:    f.kept,
		Evicted: f.evicted,
		Records: len(f.recs),
	}
	if f.p99.count() >= p99Warmup {
		st.P99 = f.p99.estimate()
	}
	return st
}

// p2Quantile is the P² streaming quantile estimator (Jain & Chlamtac,
// 1985): five markers tracking min, the p/2, p, and (1+p)/2 quantiles,
// and max, adjusted with parabolic interpolation per observation. O(1)
// memory, no samples retained — exactly what an always-on latency
// threshold wants.
type p2Quantile struct {
	p    float64
	n    int
	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions, 1-based
	want [5]float64 // desired positions
	inc  [5]float64 // desired-position increments
}

func newP2Quantile(p float64) p2Quantile {
	return p2Quantile{
		p:   p,
		inc: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

func (e *p2Quantile) count() int { return e.n }

// estimate returns the current quantile estimate (the middle marker).
// Only meaningful once count() >= 5.
func (e *p2Quantile) estimate() float64 { return e.q[2] }

func (e *p2Quantile) observe(x float64) {
	if e.n < 5 {
		// Insertion-sort the first five observations into the markers.
		i := e.n
		for i > 0 && e.q[i-1] > x {
			e.q[i] = e.q[i-1]
			i--
		}
		e.q[i] = x
		e.n++
		if e.n == 5 {
			for j := range e.pos {
				e.pos[j] = float64(j + 1)
				e.want[j] = 1 + 4*e.inc[j]
			}
		}
		return
	}

	// Locate the cell containing x, clamping the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	e.n++
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] = 1 + float64(e.n-1)*e.inc[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			q := e.parabolic(i, s)
			if e.q[i-1] < q && q < e.q[i+1] {
				e.q[i] = q
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *p2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *p2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}
