package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registry is the shared metrics registry: named families of counters,
// gauges, and fixed-bucket histograms, rendered in the Prometheus text
// exposition format. Registration is idempotent (re-registering a name
// returns the existing instrument) and rendering is deterministic:
// families appear in registration order, series in sorted label order, so
// scrapes are stable byte-for-byte for a given state.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	hooks    []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with a fixed label-key schema.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	mu     sync.Mutex
	series map[string]*series
	order  []string // series keys in first-seen order (sorted at render)

	gaugeFn func() float64 // callback gauges (workers, inflight, uptime)
	buckets []float64      // histogram upper bounds, ascending
}

// series is one label-value combination's state.
type series struct {
	labelValues []string
	value       float64  // counter/gauge value, histogram sum
	count       uint64   // histogram observation count
	bucketN     []uint64 // cumulative per-bucket counts (histograms)
	exem        []exemplar // per-bucket exemplars, lazily allocated
}

// exemplar links one recent observation in a histogram bucket to the
// trace that produced it — the OpenMetrics mechanism for jumping from a
// latency bucket to a concrete request. The newest observation wins;
// sampling fairness is not a goal, recency is.
type exemplar struct {
	traceID string
	value   float64
	ts      float64 // unix seconds
}

// DefLatencyBuckets are the fixed latency histogram bounds, in seconds:
// 1ms to 60s, the span from a cached validation to a worst-case PnR.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// register returns the named family, creating it on first use and
// panicking on a type or label-schema mismatch — that is always a
// programming error, caught by the first scrape test.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...), series: make(map[string]*series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or fetches) a monotonically increasing metric.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{f: r.register(name, help, "counter", labels)}
}

// Gauge registers (or fetches) a settable metric.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{f: r.register(name, help, "gauge", labels)}
}

// GaugeFunc registers a label-less gauge whose value is read from fn at
// scrape time — for values another component already owns (gate workers,
// in-flight count, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram registers (or fetches) a fixed-bucket distribution metric.
// buckets must be ascending upper bounds; nil selects DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	f := r.register(name, help, "histogram", labels)
	f.mu.Lock()
	if f.buckets == nil {
		f.buckets = append([]float64(nil), buckets...)
	}
	f.mu.Unlock()
	return &Histogram{f: f}
}

// get returns the series for the label values, creating it on first use.
// Caller holds f.mu.
func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q called with %d label values, schema has %d",
			f.name, len(labelValues), len(f.labels)))
	}
	key := strings.Join(labelValues, "\xff")
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.typ == "histogram" {
			s.bucketN = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotonically increasing metric handle.
type Counter struct{ f *family }

// Add increases the series selected by labelValues by v (v >= 0).
func (c *Counter) Add(v float64, labelValues ...string) {
	c.f.mu.Lock()
	c.f.get(labelValues).value += v
	c.f.mu.Unlock()
}

// Inc increases the series by one.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Value reads the series' current value (0 when never written).
func (c *Counter) Value(labelValues ...string) float64 {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return c.f.get(labelValues).value
}

// Gauge is a settable metric handle.
type Gauge struct{ f *family }

// Set stores v into the series selected by labelValues.
func (g *Gauge) Set(v float64, labelValues ...string) {
	g.f.mu.Lock()
	g.f.get(labelValues).value = v
	g.f.mu.Unlock()
}

// Value reads the series' current value (0 when never written).
func (g *Gauge) Value(labelValues ...string) float64 {
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	return g.f.get(labelValues).value
}

// Histogram is a fixed-bucket distribution handle.
type Histogram struct{ f *family }

// Observe records v into the series selected by labelValues.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	h.f.mu.Lock()
	h.f.observe(h.f.get(labelValues), v, "")
	h.f.mu.Unlock()
}

// ObserveWithExemplar records v and remembers traceID as the exemplar of
// the bucket v lands in; an empty traceID degrades to a plain Observe.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string, labelValues ...string) {
	h.f.mu.Lock()
	h.f.observe(h.f.get(labelValues), v, traceID)
	h.f.mu.Unlock()
}

// observe applies one histogram observation; caller holds f.mu. The
// exemplar lands in the lowest bucket containing v (the one whose count
// the observation is attributed to in a non-cumulative reading); the
// exemplar slice is allocated once per series on the first exemplar, so
// the traceID=="" hot path allocates nothing.
func (f *family) observe(s *series, v float64, traceID string) {
	s.value += v
	s.count++
	slot := len(f.buckets) // the +Inf slot
	for i, ub := range f.buckets {
		if v <= ub {
			s.bucketN[i]++
			if i < slot {
				slot = i
			}
		}
	}
	if traceID != "" {
		if s.exem == nil {
			s.exem = make([]exemplar, len(f.buckets)+1)
		}
		s.exem[slot] = exemplar{
			traceID: traceID,
			value:   v,
			ts:      float64(time.Now().UnixMilli()) / 1000,
		}
	}
}

// OnScrape registers fn to run at the start of every exposition
// (WritePrometheus or WriteOpenMetrics), before any family renders —
// the hook point for values sampled lazily at scrape time, like the
// runtime/metrics bridge. Hooks must not register new metrics.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// snapshot runs the scrape hooks and returns the family list.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	return families
}

// WritePrometheus renders every family in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	var sb strings.Builder
	for _, f := range r.snapshot() {
		f.render(&sb)
	}
	_, _ = io.WriteString(w, sb.String())
}

// WriteOpenMetrics renders every family in the OpenMetrics text format:
// counter families announce their name without the `_total` suffix,
// histogram buckets carry `# {trace_id="..."} value timestamp` exemplar
// annotations when one was recorded, and the exposition ends with the
// mandatory `# EOF` marker. Gauges and the sample lines themselves are
// byte-compatible with the Prometheus rendering, so the two modes never
// disagree on values — only on annotations.
func (r *Registry) WriteOpenMetrics(w io.Writer) {
	var sb strings.Builder
	for _, f := range r.snapshot() {
		f.renderOpenMetrics(&sb)
	}
	sb.WriteString("# EOF\n")
	_, _ = io.WriteString(w, sb.String())
}

func (f *family) renderOpenMetrics(sb *strings.Builder) {
	f.mu.Lock()
	defer f.mu.Unlock()
	// OpenMetrics names a counter family without the `_total` suffix its
	// sample lines carry. A counter not following the convention keeps
	// its name untouched rather than inventing a new series name.
	omName := f.name
	if f.typ == "counter" {
		omName = strings.TrimSuffix(f.name, "_total")
	}
	fmt.Fprintf(sb, "# HELP %s %s\n", omName, f.help)
	fmt.Fprintf(sb, "# TYPE %s %s\n", omName, f.typ)
	if f.gaugeFn != nil {
		fmt.Fprintf(sb, "%s %s\n", f.name, formatValue(f.gaugeFn()))
		return
	}
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	for _, key := range keys {
		s := f.series[key]
		if f.typ == "histogram" {
			f.renderHistogramOM(sb, s)
			continue
		}
		fmt.Fprintf(sb, "%s%s %s\n", f.name, f.labelPairs(s.labelValues, "", ""), formatValue(s.value))
	}
}

func (f *family) renderHistogramOM(sb *strings.Builder, s *series) {
	for i := 0; i <= len(f.buckets); i++ {
		le := "+Inf"
		n := s.count
		if i < len(f.buckets) {
			le = strconv.FormatFloat(f.buckets[i], 'g', -1, 64)
			n = s.bucketN[i]
		}
		fmt.Fprintf(sb, "%s_bucket%s %d", f.name, f.labelPairs(s.labelValues, "le", le), n)
		if s.exem != nil && s.exem[i].traceID != "" {
			e := s.exem[i]
			fmt.Fprintf(sb, " # {trace_id=%q} %s %s",
				e.traceID, formatValue(e.value), strconv.FormatFloat(e.ts, 'f', 3, 64))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(sb, "%s_sum%s %s\n", f.name, f.labelPairs(s.labelValues, "", ""), formatValue(s.value))
	fmt.Fprintf(sb, "%s_count%s %d\n", f.name, f.labelPairs(s.labelValues, "", ""), s.count)
}

func (f *family) render(sb *strings.Builder) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fmt.Fprintf(sb, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.typ)
	if f.gaugeFn != nil {
		fmt.Fprintf(sb, "%s %s\n", f.name, formatValue(f.gaugeFn()))
		return
	}
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	for _, key := range keys {
		s := f.series[key]
		if f.typ == "histogram" {
			f.renderHistogram(sb, s)
			continue
		}
		fmt.Fprintf(sb, "%s%s %s\n", f.name, f.labelPairs(s.labelValues, "", ""), formatValue(s.value))
	}
}

func (f *family) renderHistogram(sb *strings.Builder, s *series) {
	for i, ub := range f.buckets {
		fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name,
			f.labelPairs(s.labelValues, "le", strconv.FormatFloat(ub, 'g', -1, 64)), s.bucketN[i])
	}
	fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name, f.labelPairs(s.labelValues, "le", "+Inf"), s.count)
	fmt.Fprintf(sb, "%s_sum%s %s\n", f.name, f.labelPairs(s.labelValues, "", ""), formatValue(s.value))
	fmt.Fprintf(sb, "%s_count%s %d\n", f.name, f.labelPairs(s.labelValues, "", ""), s.count)
}

// labelPairs renders {k="v",...} for the schema's keys plus an optional
// extra pair (the histogram "le" bound); "" for a label-less series.
func (f *family) labelPairs(values []string, extraKey, extraVal string) string {
	if len(f.labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range f.labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, values[i])
	}
	if extraKey != "" {
		if len(f.labels) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraKey, extraVal)
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders whole numbers without a fractional part (counts
// read as "3", matching the hand-rolled exporter this registry replaced)
// and everything else with microsecond precision (latency seconds).
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 6, 64)
}
