package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

func TestStartWithoutRecorder(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "noop")
	if sp != nil {
		t.Fatalf("Start without recorder returned a span: %+v", sp)
	}
	if ctx2 != ctx {
		t.Fatalf("Start without recorder derived a new context")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()
	if FromContext(ctx) != nil {
		t.Fatalf("FromContext on bare context != nil")
	}
}

func TestWithRecorderNil(t *testing.T) {
	ctx := context.Background()
	if WithRecorder(ctx, nil) != ctx {
		t.Fatalf("WithRecorder(ctx, nil) should return ctx unchanged")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithRecorder(context.Background(), NewRecorder(tr, nil, nil))

	ctx1, root := Start(ctx, "root")
	_, child := Start(ctx1, "child")
	child.End()
	root.End()
	_, other := Start(ctx, "other-root")
	other.End()

	evs := tr.Events(0)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	byName := map[string]Event{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	if byName["child"].TID != byName["root"].TID {
		t.Errorf("child tid %d != root tid %d", byName["child"].TID, byName["root"].TID)
	}
	if byName["other-root"].TID == byName["root"].TID {
		t.Errorf("independent roots share tid %d", byName["root"].TID)
	}
	// Children end before parents, so the child event records first.
	if evs[0].Name != "child" || evs[1].Name != "root" {
		t.Errorf("record order = %q, %q; want child, root", evs[0].Name, evs[1].Name)
	}
	if byName["root"].TS > byName["child"].TS {
		t.Errorf("root starts (ts=%d) after child (ts=%d)", byName["root"].TS, byName["child"].TS)
	}
}

func TestRequestIDOnSpans(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithRecorder(context.Background(), NewRecorder(tr, nil, nil))
	ctx = WithRequestID(ctx, "req-42")
	if got := RequestID(ctx); got != "req-42" {
		t.Fatalf("RequestID = %q, want req-42", got)
	}
	_, sp := Start(ctx, "handler")
	sp.End()
	evs := tr.Events(0)
	id, _ := evs[0].Args.Get("request_id")
	if len(evs) != 1 || id != "req-42" {
		t.Fatalf("span args = %+v, want request_id=req-42", evs[0].Args)
	}
	if WithRequestID(context.Background(), "") != context.Background() {
		t.Fatalf("WithRequestID with empty id should return ctx unchanged")
	}
}

func TestRingWrapAndEvents(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithRecorder(context.Background(), NewRecorder(tr, nil, nil))
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		_, sp := Start(ctx, n)
		sp.End()
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	var got []string
	for _, e := range tr.Events(0) {
		got = append(got, e.Name)
	}
	if strings.Join(got, "") != "cdef" {
		t.Fatalf("retained events = %v, want [c d e f]", got)
	}
	var last []string
	for _, e := range tr.Events(2) {
		last = append(last, e.Name)
	}
	if strings.Join(last, "") != "ef" {
		t.Fatalf("Events(2) = %v, want [e f]", last)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithRecorder(context.Background(), NewRecorder(tr, nil, nil))
	ctx1, root := Start(ctx, "pnr.flow")
	_, p := Start(ctx1, "place.anneal")
	p.SetAttr("moves", 128)
	p.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, 0); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := CheckTrace(buf.Bytes(), "pnr.flow", "place.anneal"); err != nil {
		t.Fatalf("CheckTrace: %v", err)
	}
	if err := CheckTrace(buf.Bytes(), "no.such.span"); err == nil {
		t.Fatalf("CheckTrace accepted a missing span name")
	}
	if err := CheckTrace([]byte("not json")); err == nil {
		t.Fatalf("CheckTrace accepted garbage")
	}
	if err := CheckTrace([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatalf("CheckTrace accepted an empty trace")
	}
}

func TestWriteJSONEmptyTracer(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer(0).WriteJSON(&buf, 0); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Fatalf("empty trace should render an empty array, got:\n%s", buf.String())
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(64)
	ctx := WithRecorder(context.Background(), NewRecorder(tr, nil, nil))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, sp := Start(ctx, "worker")
				_, inner := Start(c, "inner")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Fatalf("Len = %d, want full ring 64", tr.Len())
	}
	if tr.Dropped() != 8*50*2-64 {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped(), 8*50*2-64)
	}
}

func TestRecorderBatchHooks(t *testing.T) {
	reg := NewRegistry()
	r := NewRecorder(nil, reg, nil)
	r.AnnealBatch(12.5, 64, 16)
	r.AnnealBatch(6.25, 64, 8)
	r.RouteBatch("astar", 1024, 2048)
	r.RouteBatch("lee", 512, 512)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"parchmint_anneal_temperature 6.25",
		"parchmint_anneal_accept_ratio 0.125",
		"parchmint_anneal_moves_total 128",
		"parchmint_anneal_accepted_total 24",
		`parchmint_route_expansions_total{engine="astar"} 1024`,
		`parchmint_route_pushes_total{engine="astar"} 2048`,
		`parchmint_route_expansions_total{engine="lee"} 512`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}

	// The nil recorder and the metrics-less recorder both swallow batches.
	var nilRec *Recorder
	nilRec.AnnealBatch(1, 10, 5)
	nilRec.RouteBatch("astar", 1, 1)
	NewRecorder(nil, nil, nil).AnnealBatch(1, 10, 5)
}

func TestLoggerFallback(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Logger() == nil {
		t.Fatalf("nil recorder Logger() returned nil")
	}
	nilRec.Logger().Info("dropped") // must not panic
	if NewRecorder(nil, nil, nil).Logger() == nil {
		t.Fatalf("logger-less recorder Logger() returned nil")
	}
	var buf bytes.Buffer
	lg := NewLogger("json", &buf)
	if NewRecorder(nil, nil, lg).Logger() != lg {
		t.Fatalf("recorder did not return its configured logger")
	}
	lg.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), `"msg":"hello"`) {
		t.Fatalf("json logger output = %q", buf.String())
	}
	var tbuf bytes.Buffer
	NewLogger("text", &tbuf).Info("hello")
	if !strings.Contains(tbuf.String(), "msg=hello") {
		t.Fatalf("text logger output = %q", tbuf.String())
	}
}
