package obs

import (
	"regexp"
	"sync"
	"testing"
)

var reqIDPattern = regexp.MustCompile(`^req-[0-9a-f]{8}-\d{8,}$`)

func TestIDSourceFormatAndSequence(t *testing.T) {
	s := NewIDSource()
	first := s.Next()
	if !reqIDPattern.MatchString(first) {
		t.Errorf("Next() = %q, want req-<8 hex>-<seq>", first)
	}
	if want := "req-" + s.Nonce() + "-00000001"; first != want {
		t.Errorf("first ID = %q, want %q", first, want)
	}
	if second := s.Next(); second != "req-"+s.Nonce()+"-00000002" {
		t.Errorf("second ID = %q, want sequence 2", second)
	}
}

// TestIDSourcesUseDistinctNonces pins the cross-boot collision fix: two
// sources (two process boots) must not mint the same IDs even though both
// sequences restart at 1.
func TestIDSourcesUseDistinctNonces(t *testing.T) {
	a, b := NewIDSource(), NewIDSource()
	if a.Nonce() == b.Nonce() {
		t.Fatalf("two boots share nonce %q; IDs would collide across restarts", a.Nonce())
	}
	if a.Next() == b.Next() {
		t.Error("first IDs of two boots collide")
	}
}

func TestIDSourceConcurrentUniqueness(t *testing.T) {
	s := NewIDSource()
	const goroutines, per = 8, 100
	ids := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]string, per)
			for i := 0; i < per; i++ {
				ids[g][i] = s.Next()
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[string]bool, goroutines*per)
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate ID %q", id)
			}
			seen[id] = true
		}
	}
}
