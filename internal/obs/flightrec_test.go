package obs

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func offerStatus(f *FlightRecorder, id string, status int, d time.Duration) (string, bool) {
	return f.Offer(RequestRecord{ID: id, Status: status, Duration: d}, nil)
}

func TestFlightRecorderKeepsErrorsAndShed(t *testing.T) {
	f := NewFlightRecorder(8, 0) // sample 0: never keep ordinary requests
	if reason, kept := offerStatus(f, "a", 200, time.Millisecond); kept {
		t.Fatalf("ordinary request kept as %q with sampling off", reason)
	}
	if reason, kept := offerStatus(f, "b", 500, time.Millisecond); !kept || reason != "error" {
		t.Fatalf("500 kept=%v reason=%q, want error", kept, reason)
	}
	if reason, kept := offerStatus(f, "c", 429, time.Millisecond); !kept || reason != "shed" {
		t.Fatalf("429 kept=%v reason=%q, want shed", kept, reason)
	}
	if _, ok := f.Get("b"); !ok {
		t.Error("kept record not retrievable by id")
	}
	if _, ok := f.Get("a"); ok {
		t.Error("dropped record retrievable by id")
	}
	st := f.Stats()
	if st.Seen != 3 || st.Kept != 2 || st.Records != 2 {
		t.Errorf("stats = %+v, want seen=3 kept=2 records=2", st)
	}
}

func TestFlightRecorderSlowTail(t *testing.T) {
	f := NewFlightRecorder(512, 0)
	// Warm the estimator with a tight cluster, then offer an outlier.
	for i := 0; i < 2*p99Warmup; i++ {
		offerStatus(f, fmt.Sprintf("warm-%d", i), 200, time.Millisecond+time.Duration(i%5)*time.Microsecond)
	}
	reason, kept := offerStatus(f, "outlier", 200, time.Second)
	if !kept || reason != "slow" {
		t.Fatalf("10^3x outlier kept=%v reason=%q, want slow", kept, reason)
	}
}

func TestFlightRecorderSampling(t *testing.T) {
	f := NewFlightRecorder(10000, 1) // sample=1 keeps everything
	for i := 0; i < 50; i++ {
		if reason, kept := offerStatus(f, fmt.Sprintf("r%d", i), 200, time.Millisecond); !kept || reason != "sampled" {
			t.Fatalf("sample=1 dropped request %d (reason %q)", i, reason)
		}
	}
}

func TestFlightRecorderEvictionPrefersSampled(t *testing.T) {
	f := NewFlightRecorder(4, 1)
	offerStatus(f, "s1", 200, time.Millisecond)
	offerStatus(f, "e1", 500, time.Millisecond)
	offerStatus(f, "s2", 200, time.Millisecond)
	offerStatus(f, "e2", 503, time.Millisecond)
	// Ring full. The next keep should evict s1 (oldest sampled), not e1.
	offerStatus(f, "e3", 500, time.Millisecond)
	if _, ok := f.Get("s1"); ok {
		t.Error("oldest sampled record should have been evicted")
	}
	for _, id := range []string{"e1", "s2", "e2", "e3"} {
		if _, ok := f.Get(id); !ok {
			t.Errorf("record %s evicted, want retained", id)
		}
	}
	// All-interesting ring falls back to oldest-first.
	offerStatus(f, "e4", 500, time.Millisecond)
	offerStatus(f, "e5", 500, time.Millisecond)
	if _, ok := f.Get("e1"); ok {
		t.Error("with no sampled records the oldest overall should go")
	}
	if st := f.Stats(); st.Evicted != 3 || st.Records != 4 {
		t.Errorf("stats = %+v, want evicted=3 records=4", st)
	}
}

func TestFlightRecorderSnapshotNewestFirst(t *testing.T) {
	f := NewFlightRecorder(8, 1)
	for i := 0; i < 5; i++ {
		offerStatus(f, fmt.Sprintf("r%d", i), 200, time.Millisecond)
	}
	recs := f.Snapshot(0)
	if len(recs) != 5 || recs[0].ID != "r4" || recs[4].ID != "r0" {
		t.Fatalf("snapshot order wrong: %v", ids(recs))
	}
	if got := f.Snapshot(2); len(got) != 2 || got[0].ID != "r4" || got[1].ID != "r3" {
		t.Fatalf("snapshot(2) = %v", ids(got))
	}
}

func ids(recs []*RequestRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}

func TestFlightBufCaptureAndDisarm(t *testing.T) {
	var fb FlightBuf
	base := time.Now()
	fb.Reset(base)
	fb.add("a", base, time.Millisecond, nil)
	fb.add("b", base.Add(time.Millisecond), 2*time.Millisecond, nil)
	spans, truncated := fb.Spans()
	if len(spans) != 2 || truncated {
		t.Fatalf("spans = %d truncated = %v", len(spans), truncated)
	}
	if spans[1].StartUS != 1000 || spans[1].DurUS != 2000 {
		t.Errorf("span timing = %+v", spans[1])
	}
	fb.Disarm()
	fb.add("late", base, time.Millisecond, nil)
	if spans, _ := fb.Spans(); len(spans) != 2 {
		t.Error("disarmed buffer accepted a span")
	}
	// Overflow beyond maxFlightSpans truncates instead of growing.
	fb.Reset(base)
	for i := 0; i < maxFlightSpans+10; i++ {
		fb.add("s", base, time.Millisecond, nil)
	}
	spans, truncated = fb.Spans()
	if len(spans) != maxFlightSpans || !truncated {
		t.Errorf("overflowed capture: %d spans truncated=%v", len(spans), truncated)
	}
}

// The recorder takes concurrent Offers from request goroutines while
// debug handlers snapshot and metrics scrapes read stats; run the whole
// surface together under -race.
func TestFlightRecorderConcurrentHammer(t *testing.T) {
	f := NewFlightRecorder(32, 0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var fb FlightBuf
			for i := 0; i < 200; i++ {
				fb.Reset(time.Now())
				fb.add("span", time.Now(), time.Millisecond, nil)
				status := 200
				if i%7 == 0 {
					status = 500
				}
				f.Offer(RequestRecord{
					ID:       fmt.Sprintf("g%d-%d", g, i),
					Status:   status,
					Duration: time.Duration(i%10) * time.Millisecond,
				}, &fb)
				fb.Disarm()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				recs := f.Snapshot(0)
				for _, r := range recs {
					if r.ID == "" {
						t.Error("snapshot exposed a zero record")
						return
					}
					f.Get(r.ID)
				}
				f.Stats()
			}
		}()
	}
	wg.Wait()
	st := f.Stats()
	if st.Seen != 1600 {
		t.Errorf("seen = %d, want 1600", st.Seen)
	}
	if st.Records > 32 {
		t.Errorf("ring overflowed capacity: %d records", st.Records)
	}
}

// The P² estimate should land near the true quantile for a known
// distribution.
func TestP2QuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	est := newP2Quantile(0.99)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
		est.observe(xs[i])
	}
	sort.Float64s(xs)
	exact := xs[int(0.99*float64(n))]
	got := est.estimate()
	if got < exact*0.8 || got > exact*1.2 {
		t.Errorf("p99 estimate = %.4f, exact = %.4f (want within 20%%)", got, exact)
	}
	if est.count() != n {
		t.Errorf("count = %d, want %d", est.count(), n)
	}
}
