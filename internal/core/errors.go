package core

import (
	"errors"
	"fmt"
)

// ErrParse is the sentinel every parse failure matches via errors.Is,
// regardless of which format failed. Handlers that only care about
// "the input could not be parsed" branch on this; handlers that need the
// format or source use errors.As with *ParseError.
var ErrParse = errors.New("unparseable device input")

// ParseError reports that raw input could not be decoded into a Device.
// It is the structured form of every syntax-level failure in the
// repository — ParchMint JSON decoding here in core, and MINT text parsing
// wrapped by the loading layer — so API surfaces (HTTP handlers, CLIs) can
// distinguish "bad input" (client error) from "broken pipeline" (server
// error) without string matching.
type ParseError struct {
	// Format names the syntax that failed: "json" or "mint".
	Format string
	// Source names the input for messages: a file path, "stdin", or a
	// request label. May be empty.
	Source string
	// Err is the underlying decoder or parser error.
	Err error
}

// Error renders "parse <format> [<source>]: <cause>".
func (e *ParseError) Error() string {
	if e.Source != "" {
		return fmt.Sprintf("parse %s %s: %v", e.Format, e.Source, e.Err)
	}
	return fmt.Sprintf("parse %s: %v", e.Format, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ParseError) Unwrap() error { return e.Err }

// Is matches the ErrParse sentinel.
func (e *ParseError) Is(target error) bool { return target == ErrParse }

// Code returns the stable machine-readable code for this failure,
// e.g. "parse-json" or "parse-mint". Codes are API: error consumers key
// behavior (and HTTP status mapping) on them.
func (e *ParseError) Code() string { return "parse-" + e.Format }
