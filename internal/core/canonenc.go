package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Canonical compact encoder: writes a Device (and the JSON primitives the
// serving tier composes response bodies from) directly into a caller's
// byte slice, with no reflection and no intermediate values. The output
// contract is strict byte identity with encoding/json — the canonical
// bytes are cache addresses and journal replay units, so every escaping
// rule, float format quirk, and map-key ordering of json.Marshal is
// replicated here and pinned by differential fuzzing (FuzzCanonCodec).

const hexDigits = "0123456789abcdef"

// AppendJSONString appends s as a JSON string literal with encoding/json's
// escaping: HTML-significant bytes (<, >, &) and the JS line separators
// U+2028/U+2029 as \u escapes, invalid UTF-8 as U+FFFD, control characters
// as \n, \r, \t, \b, \f or \u00xx.
func AppendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// AppendJSONFloat appends f exactly as encoding/json renders float64
// values: shortest representation, 'e' format outside [1e-6, 1e21) with
// the exponent's leading zero stripped. NaN and infinities are
// unsupported, as in json.Marshal.
func AppendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, fmt.Errorf("core: unsupported float value %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// AppendCompactJSON appends a compacted copy of the valid JSON document
// src, replicating how encoding/json embeds a json.RawMessage: whitespace
// outside strings dropped, <, >, & and the byte sequences of U+2028/U+2029
// escaped, everything else byte-for-byte. src must already be valid JSON.
func AppendCompactJSON(dst, src []byte) []byte {
	inString := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '\\' && inString:
			dst = append(dst, c)
			if i+1 < len(src) {
				i++
				dst = append(dst, src[i])
			}
		case c == '"':
			inString = !inString
			dst = append(dst, c)
		case c == '<':
			dst = append(dst, '\\', 'u', '0', '0', '3', 'c')
		case c == '>':
			dst = append(dst, '\\', 'u', '0', '0', '3', 'e')
		case c == '&':
			dst = append(dst, '\\', 'u', '0', '0', '2', '6')
		case c == 0xE2 && i+2 < len(src) && src[i+1] == 0x80 && src[i+2]&^1 == 0xA8:
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[src[i+2]&0xF])
			i += 2
		case !inString && (c == ' ' || c == '\t' || c == '\n' || c == '\r'):
			// dropped
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// canonState holds the reusable map-key scratch of one encode.
type canonState struct {
	keys []string
}

var canonPool = sync.Pool{New: func() any { return new(canonState) }}

// MarshalCanonical returns the compact canonical JSON encoding of d,
// byte-identical to json.Marshal(d).
func MarshalCanonical(d *Device) ([]byte, error) {
	return AppendDeviceJSON(nil, d)
}

// AppendDeviceJSON appends the compact canonical JSON encoding of d to
// dst — byte-identical to json.Marshal(d), with no reflection.
func AppendDeviceJSON(dst []byte, d *Device) ([]byte, error) {
	st := canonPool.Get().(*canonState)
	dst, err := st.appendDevice(dst, d)
	canonPool.Put(st)
	return dst, err
}

func (st *canonState) appendDevice(dst []byte, d *Device) ([]byte, error) {
	var err error
	dst = append(dst, `{"name":`...)
	dst = AppendJSONString(dst, d.Name)
	dst = append(dst, `,"layers":[`...)
	for i := range d.Layers {
		if i > 0 {
			dst = append(dst, ',')
		}
		l := &d.Layers[i]
		dst = append(dst, `{"id":`...)
		dst = AppendJSONString(dst, l.ID)
		dst = append(dst, `,"name":`...)
		dst = AppendJSONString(dst, l.Name)
		dst = append(dst, `,"type":`...)
		dst = AppendJSONString(dst, string(l.Type))
		dst = append(dst, '}')
	}
	dst = append(dst, `],"components":[`...)
	for i := range d.Components {
		if i > 0 {
			dst = append(dst, ',')
		}
		if dst, err = st.appendComponent(dst, &d.Components[i]); err != nil {
			return dst, err
		}
	}
	dst = append(dst, `],"connections":[`...)
	for i := range d.Connections {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendConnection(dst, &d.Connections[i])
	}
	dst = append(dst, ']')
	if len(d.Features) > 0 {
		dst = append(dst, `,"features":[`...)
		for i := range d.Features {
			if i > 0 {
				dst = append(dst, ',')
			}
			if dst, err = appendFeature(dst, &d.Features[i]); err != nil {
				return dst, err
			}
		}
		dst = append(dst, ']')
	}
	if len(d.Params) > 0 {
		dst = append(dst, `,"params":`...)
		if dst, err = st.appendParams(dst, d.Params); err != nil {
			return dst, err
		}
	}
	if len(d.ValveMap) > 0 {
		dst = append(dst, `,"valveMap":`...)
		dst = st.appendStringMap(dst, d.ValveMap)
	}
	if len(d.ValveTypes) > 0 {
		dst = append(dst, `,"valveTypeMap":{`...)
		st.keys = st.keys[:0]
		for k := range d.ValveTypes {
			st.keys = append(st.keys, k)
		}
		sort.Strings(st.keys)
		for i, k := range st.keys {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = AppendJSONString(dst, k)
			dst = append(dst, ':')
			dst = AppendJSONString(dst, string(d.ValveTypes[k]))
		}
		dst = append(dst, '}')
	}
	version := VersionV1
	if d.UsesV12() {
		version = VersionV12
	}
	dst = append(dst, `,"version":`...)
	dst = AppendJSONString(dst, version)
	return append(dst, '}'), nil
}

func (st *canonState) appendComponent(dst []byte, c *Component) ([]byte, error) {
	dst = append(dst, `{"id":`...)
	dst = AppendJSONString(dst, c.ID)
	dst = append(dst, `,"name":`...)
	dst = AppendJSONString(dst, c.Name)
	dst = append(dst, `,"entity":`...)
	dst = AppendJSONString(dst, c.Entity)
	dst = append(dst, `,"layers":`...)
	if c.Layers == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i, l := range c.Layers {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = AppendJSONString(dst, l)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"x-span":`...)
	dst = strconv.AppendInt(dst, c.XSpan, 10)
	dst = append(dst, `,"y-span":`...)
	dst = strconv.AppendInt(dst, c.YSpan, 10)
	dst = append(dst, `,"ports":`...)
	if c.Ports == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i := range c.Ports {
			if i > 0 {
				dst = append(dst, ',')
			}
			p := &c.Ports[i]
			dst = append(dst, `{"label":`...)
			dst = AppendJSONString(dst, p.Label)
			dst = append(dst, `,"layer":`...)
			dst = AppendJSONString(dst, p.Layer)
			dst = append(dst, `,"x":`...)
			dst = strconv.AppendInt(dst, p.X, 10)
			dst = append(dst, `,"y":`...)
			dst = strconv.AppendInt(dst, p.Y, 10)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if len(c.Params) > 0 {
		dst = append(dst, `,"params":`...)
		var err error
		if dst, err = st.appendParams(dst, c.Params); err != nil {
			return dst, err
		}
	}
	return append(dst, '}'), nil
}

func appendTarget(dst []byte, t *Target) []byte {
	dst = append(dst, `{"component":`...)
	dst = AppendJSONString(dst, t.Component)
	if t.Port != "" {
		dst = append(dst, `,"port":`...)
		dst = AppendJSONString(dst, t.Port)
	}
	return append(dst, '}')
}

func appendXY(dst []byte, x, y int64) []byte {
	dst = append(dst, `{"x":`...)
	dst = strconv.AppendInt(dst, x, 10)
	dst = append(dst, `,"y":`...)
	dst = strconv.AppendInt(dst, y, 10)
	return append(dst, '}')
}

func appendConnection(dst []byte, c *Connection) []byte {
	dst = append(dst, `{"id":`...)
	dst = AppendJSONString(dst, c.ID)
	dst = append(dst, `,"name":`...)
	dst = AppendJSONString(dst, c.Name)
	dst = append(dst, `,"layer":`...)
	dst = AppendJSONString(dst, c.Layer)
	dst = append(dst, `,"source":`...)
	dst = appendTarget(dst, &c.Source)
	dst = append(dst, `,"sinks":`...)
	if c.Sinks == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i := range c.Sinks {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendTarget(dst, &c.Sinks[i])
		}
		dst = append(dst, ']')
	}
	if len(c.Paths) > 0 {
		dst = append(dst, `,"paths":[`...)
		for i := range c.Paths {
			if i > 0 {
				dst = append(dst, ',')
			}
			p := &c.Paths[i]
			dst = append(dst, `{"source":`...)
			dst = appendXY(dst, p.Source.X, p.Source.Y)
			dst = append(dst, `,"sink":`...)
			dst = appendXY(dst, p.Sink.X, p.Sink.Y)
			if len(p.Waypoints) > 0 {
				dst = append(dst, `,"wayPoints":[`...)
				for j, wp := range p.Waypoints {
					if j > 0 {
						dst = append(dst, ',')
					}
					dst = append(dst, '[')
					dst = strconv.AppendInt(dst, wp.X, 10)
					dst = append(dst, ',')
					dst = strconv.AppendInt(dst, wp.Y, 10)
					dst = append(dst, ']')
				}
				dst = append(dst, ']')
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

func appendFeature(dst []byte, f *Feature) ([]byte, error) {
	dst = append(dst, `{"name":`...)
	dst = AppendJSONString(dst, f.Name)
	dst = append(dst, `,"id":`...)
	dst = AppendJSONString(dst, f.ID)
	dst = append(dst, `,"layer":`...)
	dst = AppendJSONString(dst, f.Layer)
	switch f.Kind {
	case FeatureComponent:
		dst = append(dst, `,"location":`...)
		dst = appendXY(dst, f.Location.X, f.Location.Y)
		dst = append(dst, `,"x-span":`...)
		dst = strconv.AppendInt(dst, f.XSpan, 10)
		dst = append(dst, `,"y-span":`...)
		dst = strconv.AppendInt(dst, f.YSpan, 10)
	case FeatureChannel:
		if f.Connection != "" {
			dst = append(dst, `,"connection":`...)
			dst = AppendJSONString(dst, f.Connection)
		}
		dst = append(dst, `,"width":`...)
		dst = strconv.AppendInt(dst, f.Width, 10)
		dst = append(dst, `,"source":`...)
		dst = appendXY(dst, f.Source.X, f.Source.Y)
		dst = append(dst, `,"sink":`...)
		dst = appendXY(dst, f.Sink.X, f.Sink.Y)
		dst = append(dst, `,"type":"channel"`...)
	default:
		return dst, fmt.Errorf("core: cannot marshal feature %q: unknown kind %d", f.ID, int(f.Kind))
	}
	dst = append(dst, `,"depth":`...)
	dst = strconv.AppendInt(dst, f.Depth, 10)
	return append(dst, '}'), nil
}

func (st *canonState) appendParams(dst []byte, p Params) ([]byte, error) {
	st.keys = st.keys[:0]
	for k := range p {
		st.keys = append(st.keys, k)
	}
	sort.Strings(st.keys)
	dst = append(dst, '{')
	var err error
	for i, k := range st.keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = AppendJSONString(dst, k)
		dst = append(dst, ':')
		if dst, err = AppendJSONFloat(dst, p[k]); err != nil {
			return dst, err
		}
	}
	return append(dst, '}'), nil
}

func (st *canonState) appendStringMap(dst []byte, m map[string]string) []byte {
	st.keys = st.keys[:0]
	for k := range m {
		st.keys = append(st.keys, k)
	}
	sort.Strings(st.keys)
	dst = append(dst, '{')
	for i, k := range st.keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = AppendJSONString(dst, k)
		dst = append(dst, ':')
		dst = AppendJSONString(dst, m[k])
	}
	return append(dst, '}')
}
