package core

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"

	"repro/internal/geom"
)

// Allocation-lean JSON parser: a hand-rolled tokenizer plus a device
// decoder that together replace the encoding/json reflection path on the
// serving tier. The contract is accept/reject and value parity with the
// json.Decoder path this package used before (decodeStd keeps that path
// alive as the differential-test reference): the same bodies parse, the
// same bodies fail, and accepted bodies produce devices whose canonical
// encoding is byte-identical. That includes the obscure corners —
// case-folded field names (unicode.SimpleFold classes, so U+212A KELVIN
// matches "k"), duplicate keys merging into slices and maps the way
// reflect-driven decoding does, null semantics per target kind, surrogate
// pair repair, and the 10000-level nesting limit.
//
// Strings are interned per parser (parsers are pooled), so the component
// and connection IDs that repeat across a device — and across requests —
// collapse to shared allocations.

const (
	// maxParseDepth matches encoding/json's scanner nesting limit.
	maxParseDepth = 10000
	// maxInternLen bounds the strings worth interning; longer ones are
	// unlikely to repeat.
	maxInternLen = 64
	// maxInternBytes bounds one pooled parser's retained intern table so
	// adversarial ID churn cannot grow it without bound.
	maxInternBytes = 1 << 16
)

// Parser is a pooled, allocation-lean JSON tokenizer. Byte slices
// returned by NextKey are valid only until the next Parser call.
type Parser struct {
	data        []byte
	pos         int
	depth       int
	scratch     []byte
	intern      map[string]string
	internBytes int
}

var parserPool = sync.Pool{New: func() any { return new(Parser) }}

// NewParser returns a pooled parser positioned at the start of data.
func NewParser(data []byte) *Parser {
	p := parserPool.Get().(*Parser)
	p.data, p.pos, p.depth = data, 0, 0
	if p.internBytes > maxInternBytes {
		p.intern, p.internBytes = nil, 0
	}
	return p
}

// Release returns the parser to the pool. The intern table survives so
// repeated request vocabulary stays shared.
func (p *Parser) Release() {
	p.data = nil
	parserPool.Put(p)
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func (p *Parser) skipSpace() {
	for p.pos < len(p.data) && isSpace(p.data[p.pos]) {
		p.pos++
	}
}

// AtEOF reports whether only whitespace remains.
func (p *Parser) AtEOF() bool {
	p.skipSpace()
	return p.pos >= len(p.data)
}

func (p *Parser) syntaxErr() error {
	if p.pos >= len(p.data) {
		return fmt.Errorf("core: unexpected end of JSON input at offset %d", p.pos)
	}
	return fmt.Errorf("core: invalid character %q at offset %d", p.data[p.pos], p.pos)
}

func (p *Parser) peek() (byte, error) {
	p.skipSpace()
	if p.pos >= len(p.data) {
		return 0, p.syntaxErr()
	}
	return p.data[p.pos], nil
}

func (p *Parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != c {
		return p.syntaxErr()
	}
	p.pos++
	return nil
}

func (p *Parser) push() error {
	p.depth++
	if p.depth > maxParseDepth {
		return fmt.Errorf("core: exceeded max depth of %d", maxParseDepth)
	}
	return nil
}

// TryNull consumes a leading null literal, reporting whether it did.
func (p *Parser) TryNull() bool {
	p.skipSpace()
	if p.pos+4 <= len(p.data) && p.data[p.pos] == 'n' &&
		p.data[p.pos+1] == 'u' && p.data[p.pos+2] == 'l' && p.data[p.pos+3] == 'l' {
		p.pos += 4
		return true
	}
	return false
}

// BeginObject consumes '{'.
func (p *Parser) BeginObject() error {
	if err := p.expect('{'); err != nil {
		return err
	}
	return p.push()
}

// NextKey advances to the next object member: nil/false after consuming
// the closing '}', otherwise the unescaped key (valid until the next
// Parser call) with its ':' consumed. *first must start true.
func (p *Parser) NextKey(first *bool) ([]byte, bool, error) {
	c, err := p.peek()
	if err != nil {
		return nil, false, err
	}
	if c == '}' {
		p.pos++
		p.depth--
		return nil, false, nil
	}
	if !*first {
		if c != ',' {
			return nil, false, p.syntaxErr()
		}
		p.pos++
	}
	*first = false
	key, err := p.readStringBytes()
	if err != nil {
		return nil, false, err
	}
	if err := p.expect(':'); err != nil {
		return nil, false, err
	}
	return key, true, nil
}

// BeginArray consumes '['.
func (p *Parser) BeginArray() error {
	if err := p.expect('['); err != nil {
		return err
	}
	return p.push()
}

// ArrayNext reports whether another element follows, consuming the
// separating ',' or the closing ']'. *first must start true.
func (p *Parser) ArrayNext(first *bool) (bool, error) {
	c, err := p.peek()
	if err != nil {
		return false, err
	}
	if c == ']' {
		p.pos++
		p.depth--
		return false, nil
	}
	if !*first {
		if c != ',' {
			return false, p.syntaxErr()
		}
		p.pos++
	}
	*first = false
	return true, nil
}

// readStringBytes parses a string literal and returns its unescaped
// bytes — a direct slice of the input when no transformation is needed,
// the parser's scratch buffer otherwise.
func (p *Parser) readStringBytes() ([]byte, error) {
	if err := p.expect('"'); err != nil {
		return nil, err
	}
	start := p.pos
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c == '"' {
			b := p.data[start:p.pos]
			p.pos++
			return b, nil
		}
		if c == '\\' || c < 0x20 || c >= utf8.RuneSelf {
			break
		}
		p.pos++
	}
	return p.readStringSlow(start)
}

func (p *Parser) readStringSlow(start int) ([]byte, error) {
	s := append(p.scratch[:0], p.data[start:p.pos]...)
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			p.scratch = s
			return s, nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return nil, p.syntaxErr()
			}
			e := p.data[p.pos]
			p.pos++
			switch e {
			case '"', '\\', '/':
				s = append(s, e)
			case 'b':
				s = append(s, '\b')
			case 'f':
				s = append(s, '\f')
			case 'n':
				s = append(s, '\n')
			case 'r':
				s = append(s, '\r')
			case 't':
				s = append(s, '\t')
			case 'u':
				r, err := p.readHex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					// A valid high+low pair combines; anything else
					// becomes U+FFFD with the following escape (if any)
					// reprocessed on its own — encoding/json's repair.
					r2 := rune(-1)
					if p.pos+6 <= len(p.data) && p.data[p.pos] == '\\' && p.data[p.pos+1] == 'u' {
						if v, ok := hex4(p.data[p.pos+2:]); ok {
							r2 = v
						}
					}
					if dec := utf16.DecodeRune(r, r2); dec != unicode.ReplacementChar {
						p.pos += 6
						s = utf8.AppendRune(s, dec)
					} else {
						s = append(s, '\xef', '\xbf', '\xbd')
					}
					continue
				}
				s = utf8.AppendRune(s, r)
			default:
				p.pos -= 2
				return nil, p.syntaxErr()
			}
		case c < 0x20:
			return nil, p.syntaxErr()
		case c >= utf8.RuneSelf:
			r, size := utf8.DecodeRune(p.data[p.pos:])
			if r == utf8.RuneError && size == 1 {
				s = append(s, '\xef', '\xbf', '\xbd')
				p.pos++
			} else {
				s = append(s, p.data[p.pos:p.pos+size]...)
				p.pos += size
			}
		default:
			s = append(s, c)
			p.pos++
		}
	}
	p.scratch = s
	return nil, p.syntaxErr()
}

func hex4(b []byte) (rune, bool) {
	if len(b) < 4 {
		return -1, false
	}
	var r rune
	for _, c := range b[:4] {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1, false
		}
		r = r*16 + rune(c)
	}
	return r, true
}

func (p *Parser) readHex4() (rune, error) {
	r, ok := hex4(p.data[p.pos:])
	if !ok {
		return 0, p.syntaxErr()
	}
	p.pos += 4
	return r, nil
}

// internBytesToString returns b as a string, sharing storage with prior
// occurrences via the parser's intern table.
func (p *Parser) internBytesToString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) <= maxInternLen {
		if s, ok := p.intern[string(b)]; ok {
			return s
		}
	}
	s := string(b)
	if len(b) <= maxInternLen && p.internBytes+len(s) <= maxInternBytes {
		if p.intern == nil {
			p.intern = make(map[string]string, 64)
		}
		p.intern[s] = s
		p.internBytes += len(s)
	}
	return s
}

// ReadString parses a string literal into an interned string.
func (p *Parser) ReadString() (string, error) {
	b, err := p.readStringBytes()
	if err != nil {
		return "", err
	}
	return p.internBytesToString(b), nil
}

// scanNumber consumes one number literal and returns its bytes.
func (p *Parser) scanNumber() ([]byte, error) {
	p.skipSpace()
	start := p.pos
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		p.pos++
	}
	switch {
	case p.pos < len(p.data) && p.data[p.pos] == '0':
		p.pos++
	case p.pos < len(p.data) && '1' <= p.data[p.pos] && p.data[p.pos] <= '9':
		p.pos++
		for p.pos < len(p.data) && '0' <= p.data[p.pos] && p.data[p.pos] <= '9' {
			p.pos++
		}
	default:
		return nil, p.syntaxErr()
	}
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		p.pos++
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return nil, p.syntaxErr()
		}
		for p.pos < len(p.data) && '0' <= p.data[p.pos] && p.data[p.pos] <= '9' {
			p.pos++
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return nil, p.syntaxErr()
		}
		for p.pos < len(p.data) && '0' <= p.data[p.pos] && p.data[p.pos] <= '9' {
			p.pos++
		}
	}
	return p.data[start:p.pos], nil
}

// ReadInt64 parses a number into int64 with strconv.ParseInt's domain:
// fractions, exponents, and out-of-range values are errors, exactly as
// encoding/json treats integer targets.
func (p *Parser) ReadInt64() (int64, error) {
	lit, err := p.scanNumber()
	if err != nil {
		return 0, err
	}
	i, neg := 0, false
	if lit[0] == '-' {
		neg, i = true, 1
	}
	var n uint64
	for ; i < len(lit); i++ {
		c := lit[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("core: cannot unmarshal number %s into integer", lit)
		}
		if n > (math.MaxUint64-uint64(c-'0'))/10 {
			return 0, fmt.Errorf("core: number %s overflows int64", lit)
		}
		n = n*10 + uint64(c-'0')
	}
	if neg {
		if n > 1<<63 {
			return 0, fmt.Errorf("core: number %s overflows int64", lit)
		}
		return -int64(n), nil
	}
	if n > math.MaxInt64 {
		return 0, fmt.Errorf("core: number %s overflows int64", lit)
	}
	return int64(n), nil
}

// ReadUint64 parses a number into uint64 with strconv.ParseUint's domain.
func (p *Parser) ReadUint64() (uint64, error) {
	lit, err := p.scanNumber()
	if err != nil {
		return 0, err
	}
	var n uint64
	for _, c := range lit {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("core: cannot unmarshal number %s into unsigned integer", lit)
		}
		if n > (math.MaxUint64-uint64(c-'0'))/10 {
			return 0, fmt.Errorf("core: number %s overflows uint64", lit)
		}
		n = n*10 + uint64(c-'0')
	}
	return n, nil
}

// ReadFloat64 parses a number into float64; range errors reject, as in
// encoding/json.
func (p *Parser) ReadFloat64() (float64, error) {
	lit, err := p.scanNumber()
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(string(lit), 64)
	if err != nil {
		return 0, fmt.Errorf("core: cannot unmarshal number %s into float64: %w", lit, err)
	}
	return f, nil
}

// ReadBool parses a true/false literal.
func (p *Parser) ReadBool() (bool, error) {
	c, err := p.peek()
	if err != nil {
		return false, err
	}
	switch c {
	case 't':
		return true, p.literal("true")
	case 'f':
		return false, p.literal("false")
	}
	return false, p.syntaxErr()
}

func (p *Parser) literal(s string) error {
	if p.pos+len(s) > len(p.data) || string(p.data[p.pos:p.pos+len(s)]) != s {
		return p.syntaxErr()
	}
	p.pos += len(s)
	return nil
}

// RawValue consumes one value and returns its raw bytes, interior
// formatting preserved — the json.RawMessage capture rule.
func (p *Parser) RawValue() ([]byte, error) {
	p.skipSpace()
	start := p.pos
	if err := p.SkipValue(); err != nil {
		return nil, err
	}
	return p.data[start:p.pos], nil
}

// SkipValue consumes one value, validating syntax only.
func (p *Parser) SkipValue() error {
	c, err := p.peek()
	if err != nil {
		return err
	}
	switch c {
	case '{':
		p.pos++
		if err := p.push(); err != nil {
			return err
		}
		first := true
		for {
			c, err := p.peek()
			if err != nil {
				return err
			}
			if c == '}' {
				p.pos++
				p.depth--
				return nil
			}
			if !first {
				if c != ',' {
					return p.syntaxErr()
				}
				p.pos++
			}
			first = false
			if err := p.skipString(); err != nil {
				return err
			}
			if err := p.expect(':'); err != nil {
				return err
			}
			if err := p.SkipValue(); err != nil {
				return err
			}
		}
	case '[':
		p.pos++
		if err := p.push(); err != nil {
			return err
		}
		first := true
		for {
			c, err := p.peek()
			if err != nil {
				return err
			}
			if c == ']' {
				p.pos++
				p.depth--
				return nil
			}
			if !first {
				if c != ',' {
					return p.syntaxErr()
				}
				p.pos++
			}
			first = false
			if err := p.SkipValue(); err != nil {
				return err
			}
		}
	case '"':
		return p.skipString()
	case 't':
		return p.literal("true")
	case 'f':
		return p.literal("false")
	case 'n':
		return p.literal("null")
	default:
		_, err := p.scanNumber()
		return err
	}
}

// skipString validates a string literal without unescaping it.
func (p *Parser) skipString() error {
	if err := p.expect('"'); err != nil {
		return err
	}
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return p.syntaxErr()
			}
			switch p.data[p.pos] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				p.pos++
			case 'u':
				p.pos++
				if _, err := p.readHex4(); err != nil {
					return err
				}
			default:
				return p.syntaxErr()
			}
		case c < 0x20:
			return p.syntaxErr()
		default:
			p.pos++
		}
	}
	return p.syntaxErr()
}

// FoldEq reports whether key case-folds to upper, an ASCII-uppercase
// field name — the equivalence encoding/json's field matching uses
// (ASCII case plus unicode.SimpleFold classes).
func FoldEq(key []byte, upper string) bool {
	j := 0
	for i := 0; i < len(key); {
		if j >= len(upper) {
			return false
		}
		c := key[i]
		if c < utf8.RuneSelf {
			if 'a' <= c && c <= 'z' {
				c -= 'a' - 'A'
			}
			if c != upper[j] {
				return false
			}
			i++
			j++
			continue
		}
		r, n := utf8.DecodeRune(key[i:])
		i += n
		r = foldRune(r)
		if r >= utf8.RuneSelf || byte(r) != upper[j] {
			return false
		}
		j++
	}
	return j == len(upper)
}

// foldRune returns the smallest rune in r's SimpleFold class.
func foldRune(r rune) rune {
	for {
		r2 := unicode.SimpleFold(r)
		if r2 <= r {
			return r2
		}
		r = r2
	}
}

// ---- Device decoding ----

// unmarshalDevice is the fast path behind Unmarshal/Decode.
func unmarshalDevice(data []byte) (*Device, error) {
	p := NewParser(data)
	defer p.Release()
	d := &Device{}
	if p.AtEOF() {
		return nil, io.EOF
	}
	if p.TryNull() {
		// json.Decoder reads exactly one value and defers any
		// "after top-level value" complaint to the next Decode call,
		// so trailing bytes after a top-level null are not an error.
		return d, nil
	}
	if err := p.parseDeviceObject(d); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseDeviceObject(d *Device) error {
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch {
		case FoldEq(key, "NAME"):
			err = p.stringField(&d.Name)
		case FoldEq(key, "LAYERS"):
			err = parseSliceMerge(p, &d.Layers, (*Parser).parseLayer)
		case FoldEq(key, "COMPONENTS"):
			err = parseSliceMerge(p, &d.Components, (*Parser).parseComponent)
		case FoldEq(key, "CONNECTIONS"):
			err = parseSliceMerge(p, &d.Connections, (*Parser).parseConnection)
		case FoldEq(key, "FEATURES"):
			err = parseSliceMerge(p, &d.Features, (*Parser).parseFeatureElem)
		case FoldEq(key, "PARAMS"):
			err = p.parseParams(&d.Params)
		case FoldEq(key, "VALVEMAP"):
			err = p.parseStringMap(&d.ValveMap)
		case FoldEq(key, "VALVETYPEMAP"):
			err = p.parseValveTypes(&d.ValveTypes)
		case FoldEq(key, "VERSION"):
			var sink string
			err = p.stringField(&sink)
		default:
			err = p.SkipValue()
		}
		if err != nil {
			return err
		}
	}
}

// stringField decodes a string value; null leaves the target unchanged.
func (p *Parser) stringField(dst *string) error {
	if p.TryNull() {
		return nil
	}
	s, err := p.ReadString()
	if err != nil {
		return err
	}
	*dst = s
	return nil
}

// int64Field decodes an integer value; null leaves the target unchanged.
func (p *Parser) int64Field(dst *int64) error {
	if p.TryNull() {
		return nil
	}
	v, err := p.ReadInt64()
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

// parseSliceMerge decodes an array into the slice with encoding/json's
// reuse semantics: existing elements are decoded into (field merge),
// capacity is re-exposed before growing, and the result is truncated to
// the incoming length. null sets the slice to nil.
func parseSliceMerge[T any](p *Parser, dst *[]T, elem func(*Parser, *T) error) error {
	if p.TryNull() {
		*dst = nil
		return nil
	}
	if err := p.BeginArray(); err != nil {
		return err
	}
	s := *dst
	n := 0
	first := true
	for {
		more, err := p.ArrayNext(&first)
		if err != nil {
			return err
		}
		if !more {
			break
		}
		switch {
		case n < len(s):
		case n < cap(s):
			s = s[:n+1]
		default:
			var zero T
			s = append(s, zero)
		}
		if err := elem(p, &s[n]); err != nil {
			return err
		}
		n++
	}
	if n == 0 {
		// encoding/json replaces the slice with a fresh empty one for a
		// zero-element array, discarding any prior backing.
		*dst = make([]T, 0)
	} else {
		*dst = s[:n]
	}
	return nil
}

func (p *Parser) parseLayer(l *Layer) error {
	if p.TryNull() {
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch {
		case FoldEq(key, "ID"):
			err = p.stringField(&l.ID)
		case FoldEq(key, "NAME"):
			err = p.stringField(&l.Name)
		case FoldEq(key, "TYPE"):
			if p.TryNull() {
				continue
			}
			var s string
			if s, err = p.ReadString(); err == nil {
				l.Type = LayerType(s)
			}
		default:
			err = p.SkipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (p *Parser) parseComponent(c *Component) error {
	if p.TryNull() {
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch {
		case FoldEq(key, "ID"):
			err = p.stringField(&c.ID)
		case FoldEq(key, "NAME"):
			err = p.stringField(&c.Name)
		case FoldEq(key, "ENTITY"):
			err = p.stringField(&c.Entity)
		case FoldEq(key, "LAYERS"):
			err = parseSliceMerge(p, &c.Layers, (*Parser).stringField)
		case FoldEq(key, "X-SPAN"):
			err = p.int64Field(&c.XSpan)
		case FoldEq(key, "Y-SPAN"):
			err = p.int64Field(&c.YSpan)
		case FoldEq(key, "PORTS"):
			err = parseSliceMerge(p, &c.Ports, (*Parser).parsePort)
		case FoldEq(key, "PARAMS"):
			err = p.parseParams(&c.Params)
		default:
			err = p.SkipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (p *Parser) parsePort(pt *Port) error {
	if p.TryNull() {
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch {
		case FoldEq(key, "LABEL"):
			err = p.stringField(&pt.Label)
		case FoldEq(key, "LAYER"):
			err = p.stringField(&pt.Layer)
		case FoldEq(key, "X"):
			err = p.int64Field(&pt.X)
		case FoldEq(key, "Y"):
			err = p.int64Field(&pt.Y)
		default:
			err = p.SkipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (p *Parser) parseTarget(t *Target) error {
	if p.TryNull() {
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch {
		case FoldEq(key, "COMPONENT"):
			err = p.stringField(&t.Component)
		case FoldEq(key, "PORT"):
			err = p.stringField(&t.Port)
		default:
			err = p.SkipValue()
		}
		if err != nil {
			return err
		}
	}
}

func (p *Parser) parseConnection(c *Connection) error {
	if p.TryNull() {
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch {
		case FoldEq(key, "ID"):
			err = p.stringField(&c.ID)
		case FoldEq(key, "NAME"):
			err = p.stringField(&c.Name)
		case FoldEq(key, "LAYER"):
			err = p.stringField(&c.Layer)
		case FoldEq(key, "SOURCE"):
			err = p.parseTarget(&c.Source)
		case FoldEq(key, "SINKS"):
			err = parseSliceMerge(p, &c.Sinks, (*Parser).parseTarget)
		case FoldEq(key, "PATHS"):
			err = parseSliceMerge(p, &c.Paths, (*Parser).parsePathElem)
		default:
			err = p.SkipValue()
		}
		if err != nil {
			return err
		}
	}
}

// parseXYInto decodes a {"x":..,"y":..} object into coordinates that the
// caller keeps across duplicate keys (pointer-merge semantics).
func (p *Parser) parseXYInto(x, y *int64) error {
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch {
		case FoldEq(key, "X"):
			err = p.int64Field(x)
		case FoldEq(key, "Y"):
			err = p.int64Field(y)
		default:
			err = p.SkipValue()
		}
		if err != nil {
			return err
		}
	}
}

// parsePathElem rebuilds a ChannelPath from a fresh wire value — the
// element has an UnmarshalJSON, so encoding/json never merges into it.
func (p *Parser) parsePathElem(cp *ChannelPath) error {
	if p.TryNull() {
		*cp = ChannelPath{}
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	var srcX, srcY, snkX, snkY int64
	var way []geom.Point
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		switch {
		case FoldEq(key, "SOURCE"):
			if p.TryNull() {
				continue
			}
			err = p.parseXYInto(&srcX, &srcY)
		case FoldEq(key, "SINK"):
			if p.TryNull() {
				continue
			}
			err = p.parseXYInto(&snkX, &snkY)
		case FoldEq(key, "WAYPOINTS"):
			err = parseSliceMerge(p, &way, (*Parser).parseWayPoint)
		default:
			err = p.SkipValue()
		}
		if err != nil {
			return err
		}
	}
	out := ChannelPath{Source: geom.Pt(srcX, srcY), Sink: geom.Pt(snkX, snkY)}
	// The wire loop appends from nil, so an empty wayPoints array lands
	// as a nil slice, exactly like the reflect path.
	if len(way) > 0 {
		out.Waypoints = append([]geom.Point(nil), way...)
	}
	*cp = out
	return nil
}

// parseWayPoint decodes one [x, y] pair with [2]int64 array semantics:
// missing elements stay zero, extra elements are skipped after syntax
// validation, null elements leave values unchanged.
func (p *Parser) parseWayPoint(pt *geom.Point) error {
	if p.TryNull() {
		return nil
	}
	if err := p.BeginArray(); err != nil {
		return err
	}
	idx := 0
	first := true
	for {
		more, err := p.ArrayNext(&first)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		switch idx {
		case 0:
			err = p.int64Field(&pt.X)
		case 1:
			err = p.int64Field(&pt.Y)
		default:
			err = p.SkipValue()
		}
		if err != nil {
			return err
		}
		idx++
	}
}

// parseFeatureElem rebuilds a Feature from a fresh wire value (the
// element has an UnmarshalJSON) and resolves the tagged union exactly as
// Feature.UnmarshalJSON does.
func (p *Parser) parseFeatureElem(f *Feature) error {
	if p.TryNull() {
		*f = Feature{Kind: FeatureComponent}
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	var (
		name, id, layer, conn, typ        string
		depth                             int64
		locX, locY, srcX, srcY, snkX, snkY int64
		xspan, yspan, width               int64
		hasLoc, hasXSpan, hasYSpan        bool
		hasWidth, hasSrc, hasSnk          bool
	)
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		switch {
		case FoldEq(key, "NAME"):
			err = p.stringField(&name)
		case FoldEq(key, "ID"):
			err = p.stringField(&id)
		case FoldEq(key, "LAYER"):
			err = p.stringField(&layer)
		case FoldEq(key, "LOCATION"):
			if p.TryNull() {
				hasLoc = false
				continue
			}
			if !hasLoc {
				locX, locY = 0, 0
			}
			hasLoc = true
			err = p.parseXYInto(&locX, &locY)
		case FoldEq(key, "X-SPAN"):
			if p.TryNull() {
				hasXSpan = false
				continue
			}
			hasXSpan = true
			err = p.int64Field(&xspan)
		case FoldEq(key, "Y-SPAN"):
			if p.TryNull() {
				hasYSpan = false
				continue
			}
			hasYSpan = true
			err = p.int64Field(&yspan)
		case FoldEq(key, "CONNECTION"):
			err = p.stringField(&conn)
		case FoldEq(key, "WIDTH"):
			if p.TryNull() {
				hasWidth = false
				continue
			}
			hasWidth = true
			err = p.int64Field(&width)
		case FoldEq(key, "SOURCE"):
			if p.TryNull() {
				hasSrc = false
				continue
			}
			if !hasSrc {
				srcX, srcY = 0, 0
			}
			hasSrc = true
			err = p.parseXYInto(&srcX, &srcY)
		case FoldEq(key, "SINK"):
			if p.TryNull() {
				hasSnk = false
				continue
			}
			if !hasSnk {
				snkX, snkY = 0, 0
			}
			hasSnk = true
			err = p.parseXYInto(&snkX, &snkY)
		case FoldEq(key, "TYPE"):
			err = p.stringField(&typ)
		case FoldEq(key, "DEPTH"):
			err = p.int64Field(&depth)
		default:
			err = p.SkipValue()
		}
		if err != nil {
			return err
		}
	}
	*f = Feature{Name: name, ID: id, Layer: layer, Depth: depth}
	if conn != "" || typ == "channel" {
		f.Kind = FeatureChannel
		f.Connection = conn
		if hasWidth {
			f.Width = width
		}
		if hasSrc {
			f.Source = geom.Pt(srcX, srcY)
		}
		if hasSnk {
			f.Sink = geom.Pt(snkX, snkY)
		}
		return nil
	}
	f.Kind = FeatureComponent
	if hasLoc {
		f.Location = geom.Pt(locX, locY)
	}
	if hasXSpan {
		f.XSpan = xspan
	}
	if hasYSpan {
		f.YSpan = yspan
	}
	return nil
}

func (p *Parser) parseParams(dst *Params) error {
	if p.TryNull() {
		*dst = nil
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	if *dst == nil {
		*dst = make(Params)
	}
	m := *dst
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		k := p.internBytesToString(key)
		var v float64
		if !p.TryNull() {
			if v, err = p.ReadFloat64(); err != nil {
				return err
			}
		}
		m[k] = v
	}
}

func (p *Parser) parseStringMap(dst *map[string]string) error {
	if p.TryNull() {
		*dst = nil
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	if *dst == nil {
		*dst = make(map[string]string)
	}
	m := *dst
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		k := p.internBytesToString(key)
		var v string
		if !p.TryNull() {
			if v, err = p.ReadString(); err != nil {
				return err
			}
		}
		m[k] = v
	}
}

func (p *Parser) parseValveTypes(dst *map[string]ValveType) error {
	if p.TryNull() {
		*dst = nil
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	if *dst == nil {
		*dst = make(map[string]ValveType)
	}
	m := *dst
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		k := p.internBytesToString(key)
		var v string
		if !p.TryNull() {
			if v, err = p.ReadString(); err != nil {
				return err
			}
		}
		m[k] = ValveType(v)
	}
}
