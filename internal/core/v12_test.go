package core

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

// v12Device builds a device carrying every v1.2 construct.
func v12Device(t testing.TB) *Device {
	t.Helper()
	b := NewBuilder("v12")
	flow := b.FlowLayer()
	b.IOPort("in", flow, 200)
	b.IOPort("out", flow, 200)
	b.Component("v1", EntityValve, []string{flow}, 300, 300,
		Port{Label: "port1", Layer: flow, X: 0, Y: 150},
		Port{Label: "port2", Layer: flow, X: 300, Y: 150},
	)
	b.Connect("c1", flow, "in.port1", "v1.port1")
	b.Connect("c2", flow, "v1.port2", "out.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d.Components[2].Params = Params{"rotation": 90}
	d.Connections[0].Paths = []ChannelPath{{
		Source:    geom.Pt(100, 100),
		Sink:      geom.Pt(500, 300),
		Waypoints: []geom.Point{geom.Pt(500, 100)},
	}}
	if err := d.SetValve("v1", "c1", ValveNormallyClosed); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestUsesV12(t *testing.T) {
	plain := testDevice(t)
	if plain.UsesV12() {
		t.Error("v1 device claims v1.2 content")
	}
	if !v12Device(t).UsesV12() {
		t.Error("v1.2 device not detected")
	}
	// Each v1.2 construct alone triggers detection.
	d := testDevice(t)
	d.Components[0].Params = Params{"x": 1}
	if !d.UsesV12() {
		t.Error("component params not detected")
	}
	d = testDevice(t)
	d.Connections[0].Paths = []ChannelPath{{}}
	if !d.UsesV12() {
		t.Error("paths not detected")
	}
}

func TestV12VersionEmission(t *testing.T) {
	plain, err := Marshal(testDevice(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(plain), `"version": "1.0"`) {
		t.Error("v1 device should emit version 1.0")
	}
	rich, err := Marshal(v12Device(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rich), `"version": "1.2"`) {
		t.Error("v1.2 device should emit version 1.2")
	}
	for _, key := range []string{`"valveMap"`, `"valveTypeMap"`, `"paths"`, `"wayPoints"`, `"NORMALLY_CLOSED"`} {
		if !strings.Contains(string(rich), key) {
			t.Errorf("v1.2 output missing %s", key)
		}
	}
}

func TestV12RoundTrip(t *testing.T) {
	d := v12Device(t)
	data, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(d, back) {
		t.Errorf("v1.2 round trip changed the device:\n%s", data)
	}
}

func TestV12CloneDeep(t *testing.T) {
	d := v12Device(t)
	c := d.Clone()
	if !Equal(d, c) {
		t.Fatal("clone differs")
	}
	c.Components[2].Params["rotation"] = 180
	c.Connections[0].Paths[0].Waypoints[0] = geom.Pt(9, 9)
	c.ValveMap["v1"] = "c2"
	c.ValveTypes["v1"] = ValveNormallyOpen
	if d.Components[2].Params["rotation"] != 90 {
		t.Error("clone shares component params")
	}
	if d.Connections[0].Paths[0].Waypoints[0] == geom.Pt(9, 9) {
		t.Error("clone shares path waypoints")
	}
	if d.ValveMap["v1"] != "c1" || d.ValveTypes["v1"] != ValveNormallyClosed {
		t.Error("clone shares valve maps")
	}
}

func TestV12EqualDetectsChanges(t *testing.T) {
	base := v12Device(t)
	mutations := []struct {
		name string
		mut  func(d *Device)
	}{
		{"component param", func(d *Device) { d.Components[2].Params["rotation"] = 45 }},
		{"path waypoint", func(d *Device) { d.Connections[0].Paths[0].Waypoints[0].X++ }},
		{"path sink", func(d *Device) { d.Connections[0].Paths[0].Sink.Y++ }},
		{"extra path", func(d *Device) {
			d.Connections[0].Paths = append(d.Connections[0].Paths, ChannelPath{})
		}},
		{"valve map", func(d *Device) { d.ValveMap["v1"] = "c2" }},
		{"valve type", func(d *Device) { d.ValveTypes["v1"] = ValveNormallyOpen }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := base.Clone()
			m.mut(c)
			if Equal(base, c) {
				t.Error("mutation not detected")
			}
		})
	}
}

func TestChannelPathGeometry(t *testing.T) {
	p := ChannelPath{
		Source:    geom.Pt(0, 0),
		Sink:      geom.Pt(100, 50),
		Waypoints: []geom.Point{geom.Pt(100, 0)},
	}
	pts := p.Points()
	if len(pts) != 3 || pts[0] != geom.Pt(0, 0) || pts[2] != geom.Pt(100, 50) {
		t.Errorf("Points = %v", pts)
	}
	if p.Length() != 150 {
		t.Errorf("Length = %d, want 150", p.Length())
	}
	empty := ChannelPath{Source: geom.Pt(5, 5), Sink: geom.Pt(5, 5)}
	if empty.Length() != 0 {
		t.Errorf("degenerate Length = %d", empty.Length())
	}
}

func TestSetValveErrors(t *testing.T) {
	d := v12Device(t)
	if err := d.SetValve("ghost", "c1", ValveNormallyOpen); err == nil {
		t.Error("unknown valve should fail")
	}
	if err := d.SetValve("v1", "ghost", ValveNormallyOpen); err == nil {
		t.Error("unknown connection should fail")
	}
}

func TestPathsFromFeatures(t *testing.T) {
	d := testDevice(t)
	d.Features = []Feature{
		// Two chained segments of c1 (corner), then one segment of c2.
		{Kind: FeatureChannel, ID: "c1_seg0", Connection: "c1", Layer: "flow",
			Width: 100, Source: geom.Pt(0, 0), Sink: geom.Pt(100, 0)},
		{Kind: FeatureChannel, ID: "c1_seg1", Connection: "c1", Layer: "flow",
			Width: 100, Source: geom.Pt(100, 0), Sink: geom.Pt(100, 200)},
		{Kind: FeatureChannel, ID: "c2_seg0", Connection: "c2", Layer: "flow",
			Width: 100, Source: geom.Pt(500, 0), Sink: geom.Pt(700, 0)},
		// Disconnected second arm of c1: becomes a second path.
		{Kind: FeatureChannel, ID: "c1_seg2", Connection: "c1", Layer: "flow",
			Width: 100, Source: geom.Pt(300, 300), Sink: geom.Pt(400, 300)},
	}
	paths := d.PathsFromFeatures()
	if len(paths["c1"]) != 2 {
		t.Fatalf("c1 paths = %d, want 2", len(paths["c1"]))
	}
	first := paths["c1"][0]
	if first.Source != geom.Pt(0, 0) || first.Sink != geom.Pt(100, 200) {
		t.Errorf("chained path = %+v", first)
	}
	if len(first.Waypoints) != 1 || first.Waypoints[0] != geom.Pt(100, 0) {
		t.Errorf("waypoints = %v", first.Waypoints)
	}
	if len(paths["c2"]) != 1 {
		t.Errorf("c2 paths = %d", len(paths["c2"]))
	}

	n := d.AttachPaths()
	if n != 2 {
		t.Errorf("AttachPaths = %d connections, want 2", n)
	}
	ix := d.Index()
	if len(ix.Connection("c1").Paths) != 2 {
		t.Errorf("c1 connection paths = %d", len(ix.Connection("c1").Paths))
	}
	if !d.UsesV12() {
		t.Error("device with paths should be v1.2")
	}
}
