package core

// Entity vocabulary used across the benchmark suite. ParchMint itself
// leaves the entity namespace open; these are the types that appear in the
// suite's assay-derived and planar synthetic benchmarks, matching the
// component library of the Fluigi CAD flow.
const (
	EntityPort           = "PORT"            // fluid I/O port on the chip edge
	EntityMixer          = "MIXER"           // serpentine mixing channel
	EntityDiamondChamber = "DIAMOND CHAMBER" // diamond reaction chamber
	EntityValve          = "VALVE"           // monolithic membrane valve
	EntityValve3D        = "VALVE3D"         // 3D valve crossing layers
	EntityPump           = "PUMP"            // peristaltic pump (3 valves)
	EntityRotaryPump     = "ROTARY PUMP"     // rotary mixing pump loop
	EntityMux            = "MUX"             // binary demultiplexer tree
	EntityTree           = "TREE"            // channel splitting tree
	EntityGradient       = "GRADIENT"        // gradient generator lattice
	EntityCellTrap       = "CELL TRAP"       // cell trapping chamber row
	EntityChamber        = "CHAMBER"         // generic reaction chamber
	EntityTransposer     = "TRANSPOSER"      // channel crossing transposer
	EntityNode           = "NODE"            // zero-area channel junction
)

// KnownEntities lists the suite's entity vocabulary in a stable order.
// The validator warns (but does not fail) on entities outside this set,
// since the format itself leaves the namespace open.
func KnownEntities() []string {
	return []string{
		EntityPort,
		EntityMixer,
		EntityDiamondChamber,
		EntityValve,
		EntityValve3D,
		EntityPump,
		EntityRotaryPump,
		EntityMux,
		EntityTree,
		EntityGradient,
		EntityCellTrap,
		EntityChamber,
		EntityTransposer,
		EntityNode,
	}
}

// IsKnownEntity reports whether entity is in the suite vocabulary.
func IsKnownEntity(entity string) bool {
	for _, e := range KnownEntities() {
		if e == entity {
			return true
		}
	}
	return false
}

// IsControlEntity reports whether the entity belongs to the control
// infrastructure of a device (valves and pumps) rather than the flow path.
// Table 1 of the benchmark characterization counts these separately.
func IsControlEntity(entity string) bool {
	switch entity {
	case EntityValve, EntityValve3D, EntityPump, EntityRotaryPump:
		return true
	default:
		return false
	}
}
