// Differential verification of the hand-rolled JSON codec in
// canonenc.go/canondec.go against encoding/json. The serving tier derives
// cache keys, journal entries, and response bodies from these bytes, so
// the property under test is strict: the fast decoder accepts exactly
// what the reflect decoder accepts, produces the same device, and the
// canonical encoder emits byte-for-byte what json.Marshal emits.
package core_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
)

// edgeDevices exercises encoder paths the bench corpus misses: empty and
// nil collections, both feature kinds, hostile strings, and float formats
// near the 'e'-notation switchover.
func edgeDevices() map[string]*core.Device {
	return map[string]*core.Device{
		"zero": {},
		"nil-vs-empty": {
			Name:       "d",
			Layers:     []core.Layer{},
			Components: []core.Component{{ID: "c1", Layers: nil, Ports: []core.Port{}}},
			Connections: []core.Connection{
				{ID: "n1", Sinks: nil},
				{ID: "n2", Sinks: []core.Target{}, Paths: []core.ChannelPath{}},
			},
		},
		"strings": {
			Name: "a<b>&c d e\"f\\g\tnl\nfffd\xffend\x01",
			Layers: []core.Layer{
				{ID: "π-layer", Name: "emoji \U0001F600", Type: "FLOW"},
			},
			ValveMap:   map[string]string{"<k&>": "v ", "\xfe": "x"},
			ValveTypes: map[string]core.ValveType{"b": "NORMALLY_OPEN", "a": "NORMALLY_CLOSED"},
		},
		"floats": {
			Name: "f",
			Params: core.Params{
				"tiny":      1e-7,
				"small":     1e-6,
				"edge":      1e21,
				"below":     9.999999e20,
				"neg":       -1234.5678,
				"zero":      0,
				"negzero":   math.Copysign(0, -1),
				"int":       42,
				"precision": 0.1,
				"max":       math.MaxFloat64,
				"denorm":    5e-324,
			},
		},
		"features": {
			Name:   "feat",
			Layers: []core.Layer{{ID: "f0", Name: "flow", Type: "FLOW"}},
			Components: []core.Component{
				{ID: "m1", Name: "mixer", Entity: "MIXER", Layers: []string{"f0"},
					XSpan: 400, YSpan: 300,
					Ports:  []core.Port{{Label: "p2", Layer: "f0", X: 0, Y: 150}, {Label: "p1", Layer: "f0", X: 400, Y: 150}},
					Params: core.Params{"rotation": 90}},
			},
			Connections: []core.Connection{
				{ID: "n1", Name: "net", Layer: "f0",
					Source: core.Target{Component: "m1", Port: "p1"},
					Sinks:  []core.Target{{Component: "m1", Port: "p2"}, {Component: "m1"}},
					Paths: []core.ChannelPath{
						{Source: geom.Pt(1, 2), Sink: geom.Pt(3, 4)},
						{Source: geom.Pt(5, 6), Sink: geom.Pt(7, 8),
							Waypoints: []geom.Point{geom.Pt(9, 10), geom.Pt(11, 12)}},
					}},
			},
			Features: []core.Feature{
				{Kind: core.FeatureComponent, ID: "m1", Name: "mixer", Layer: "f0",
					Location: geom.Pt(100, 200), XSpan: 400, YSpan: 300, Depth: 10},
				{Kind: core.FeatureChannel, ID: "n1_seg0", Name: "net", Layer: "f0",
					Connection: "n1", Width: 30, Source: geom.Pt(1, 2), Sink: geom.Pt(3, 4), Depth: 10},
				{Kind: core.FeatureChannel, ID: "n1_seg1", Layer: "f0",
					Connection: "n1", Width: 0, Depth: 0},
			},
			Params:     core.Params{"x-span": 5000, "y-span": 4000},
			ValveMap:   map[string]string{"v1": "n1"},
			ValveTypes: map[string]core.ValveType{"v1": "NORMALLY_CLOSED"},
		},
	}
}

func corpusDevices() map[string]*core.Device {
	out := edgeDevices()
	for _, b := range bench.Suite() {
		out["bench/"+b.Name] = b.Device()
	}
	return out
}

// TestMarshalCanonicalMatchesStd pins the determinism contract: the
// hand-rolled compact encoder emits exactly json.Marshal's bytes, so
// cache keys and journal entries survive the codec swap unchanged.
func TestMarshalCanonicalMatchesStd(t *testing.T) {
	for name, d := range corpusDevices() {
		want, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("%s: json.Marshal: %v", name, err)
		}
		got, err := core.MarshalCanonical(d)
		if err != nil {
			t.Fatalf("%s: MarshalCanonical: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: canonical bytes diverge from encoding/json\n got: %s\nwant: %s", name, got, want)
		}
	}
}

// TestMarshalCanonicalErrors pins error parity with json.Marshal on the
// two failure classes the encoder can hit.
func TestMarshalCanonicalErrors(t *testing.T) {
	for name, d := range map[string]*core.Device{
		"nan-param":    {Name: "d", Params: core.Params{"bad": math.NaN()}},
		"inf-param":    {Name: "d", Params: core.Params{"bad": math.Inf(1)}},
		"unknown-kind": {Name: "d", Features: []core.Feature{{Kind: core.FeatureKind(9), ID: "x"}}},
	} {
		if _, err := json.Marshal(d); err == nil {
			t.Fatalf("%s: json.Marshal unexpectedly succeeded", name)
		}
		if _, err := core.MarshalCanonical(d); err == nil {
			t.Errorf("%s: MarshalCanonical accepted what json.Marshal rejects", name)
		}
	}
}

// decoderInputs are the hand-picked differential decode cases: valid
// bodies, hostile-but-valid bodies, and every rejection class.
func decoderInputs() []string {
	return []string{
		// Plain shapes.
		`{}`,
		`null`,
		`  null  `,
		`{"name":"d","layers":[],"components":[],"connections":[]}`,
		`{"name":"d","layers":null,"components":null,"connections":null}`,
		// Case-folded and unicode-folded keys (U+212A KELVIN, U+017F long s).
		`{"NAME":"upper","LaYeRs":[{"Id":"a","TYPE":"FLOW"}]}`,
		"{\"linKs\":1,\"sinKs\":2}",
		"{\"name\":\"x\",\"componentſ\":[{\"id\":\"c\"}]}",
		// Duplicate keys: merge semantics for slices, maps, structs.
		`{"name":"a","name":"b"}`,
		`{"layers":[{"id":"a","name":"n"}],"layers":[{"type":"FLOW"}]}`,
		`{"layers":[{"id":"a"},{"id":"b"}],"layers":[{"name":"x"}]}`,
		`{"layers":[{"id":"a"},{"id":"b"}],"layers":[],"layers":[{"name":"x"}]}`,
		`{"params":{"a":1},"params":{"b":2}}`,
		`{"params":{"a":1},"params":null}`,
		`{"components":[{"id":"c","layers":["x","y"],"layers":["z"]}]}`,
		// Null in every position.
		`{"name":null,"layers":[null],"components":[null],"connections":[null]}`,
		`{"features":[null],"params":{"k":null},"valveMap":{"k":null},"valveTypeMap":{"k":null}}`,
		`{"components":[{"id":"c","ports":[null],"x-span":null}]}`,
		`{"connections":[{"source":null,"sinks":[null],"paths":[null]}]}`,
		`{"connections":[{"paths":[{"source":null,"sink":{"x":1},"wayPoints":null}]}]}`,
		`{"connections":[{"paths":[{"wayPoints":[null,[1],[1,2],[1,2,3],[1,2,"x"]]}]}]}`,
		`{"features":[{"location":{"x":1,"y":2},"location":null,"location":{"y":9}}]}`,
		`{"features":[{"connection":"n","width":null,"source":{"x":1},"type":"other"}]}`,
		`{"features":[{"type":"channel"}]}`,
		// Unknown fields, including compound ones, are skipped.
		`{"bogus":{"deep":[1,{"x":"y"}]},"name":"kept","version":"1.2"}`,
		`{"version":null}`,
		// String escapes: surrogate pairs, lone surrogates, raw invalid UTF-8.
		`{"name":"😀 pair"}`,
		`{"name":"\ud83d lone"}`,
		`{"name":"\ud83dA lowmiss"}`,
		`{"name":"\ude00 low"}`,
		"{\"name\":\"\x00nul\"}",
		"{\"name\":\"raw\xff\xfe\"}",
		`{"name":"\/slash\b\f"}`,
		// Numbers: limits, overflow, fractions into ints, exponents.
		`{"components":[{"x-span":9223372036854775807}]}`,
		`{"components":[{"x-span":-9223372036854775808}]}`,
		`{"components":[{"x-span":9223372036854775808}]}`,
		`{"components":[{"x-span":1.5}]}`,
		`{"components":[{"x-span":1e2}]}`,
		`{"components":[{"x-span":"12"}]}`,
		`{"params":{"k":1e400}}`,
		`{"params":{"k":1e-400}}`,
		`{"params":{"k":-0}}`,
		`{"params":{"k":0.5e+3}}`,
		`{"params":{"k":01}}`,
		`{"params":{"k":.5}}`,
		`{"params":{"k":5.}}`,
		`{"params":{"k":+1}}`,
		`{"params":{"k":1e}}`,
		// Type mismatches at the top level and below.
		`123`,
		`"device"`,
		`true`,
		`[]`,
		`{"name":1}`,
		`{"layers":{}}`,
		`{"layers":[1]}`,
		`{"params":[1]}`,
		`{"params":{"k":"v"}}`,
		// Syntax errors.
		``,
		`   `,
		`{`,
		`{"name"`,
		`{"name":}`,
		`{"name":"d",}`,
		`{,}`,
		`{"a":1 "b":2}`,
		`[1,]`,
		`{"name":"d"} trailing`,
		`null trailing`,
		`nullx`,
		`nul`,
		`{"name":"unterminated`,
		"{\"name\":\"ctrl\x01\"}",
		`{"name":"\q"}`,
		`{"name":"\u12"}`,
		`{"name":"\u12zz"}`,
		strings.Repeat(`[`, 10001),
		strings.Repeat(`[`, 5000) + strings.Repeat(`]`, 5000),
		`{"bogus":` + strings.Repeat(`{"x":`, 10001) + `1` + strings.Repeat(`}`, 10001) + `}`,
	}
}

// checkDecodeParity runs both decoders on one input and enforces the
// differential contract. It returns the fast-path device when accepted.
func checkDecodeParity(t *testing.T, data []byte) {
	t.Helper()
	fast, fastErr := core.UnmarshalFast(data)
	std, stdErr := core.DecodeStd(data)
	if (fastErr == nil) != (stdErr == nil) {
		t.Fatalf("accept/reject mismatch on %q\nfast: %v\nstd:  %v", data, fastErr, stdErr)
	}
	if fastErr != nil {
		return
	}
	if !reflect.DeepEqual(fast, std) {
		t.Fatalf("decoded devices diverge on %q\nfast: %#v\nstd:  %#v", data, fast, std)
	}
	fastC, err1 := core.MarshalCanonical(fast)
	stdC, err2 := json.Marshal(std)
	if err1 != nil || err2 != nil {
		t.Fatalf("re-encode failed on %q: fast=%v std=%v", data, err1, err2)
	}
	if !bytes.Equal(fastC, stdC) {
		t.Fatalf("canonical bytes diverge on %q\nfast: %s\nstd:  %s", data, fastC, stdC)
	}
}

func TestUnmarshalFastMatchesStd(t *testing.T) {
	for _, in := range decoderInputs() {
		checkDecodeParity(t, []byte(in))
	}
	for name, d := range corpusDevices() {
		enc, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		checkDecodeParity(t, enc)
		indented, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			t.Fatalf("%s: marshal indent: %v", name, err)
		}
		checkDecodeParity(t, indented)
	}
}

// FuzzCanonCodec is the differential fuzzer the determinism contract
// rides on: for arbitrary input, the hand-rolled decoder and
// encoding/json agree on accept/reject, on the decoded device, and on
// the canonical re-encoding bytes.
func FuzzCanonCodec(f *testing.F) {
	for _, b := range bench.Suite() {
		if data, err := json.Marshal(b.Device()); err == nil {
			f.Add(data)
		}
	}
	for _, in := range decoderInputs() {
		f.Add([]byte(in))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkDecodeParity(t, data)
	})
}
