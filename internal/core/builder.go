package core

import (
	"fmt"
)

// Builder constructs a Device incrementally with validation of the most
// common construction mistakes (duplicate IDs, dangling references). It is
// the API the benchmark generators and the examples use; errors are
// accumulated and reported once by Build, so call sites can chain freely.
type Builder struct {
	device Device
	errs   []error
	layers map[string]bool
	comps  map[string]*Component
	conns  map[string]bool
}

// NewBuilder starts a device with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		device: Device{Name: name, Params: Params{}},
		layers: make(map[string]bool),
		comps:  make(map[string]*Component),
		conns:  make(map[string]bool),
	}
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Layer adds a layer and returns its ID for convenience.
func (b *Builder) Layer(id, name string, typ LayerType) string {
	if id == "" {
		b.errorf("layer with empty id")
		return id
	}
	if b.layers[id] {
		b.errorf("duplicate layer id %q", id)
		return id
	}
	b.layers[id] = true
	b.device.Layers = append(b.device.Layers, Layer{ID: id, Name: name, Type: typ})
	return id
}

// FlowLayer adds the conventional flow layer ("flow").
func (b *Builder) FlowLayer() string { return b.Layer("flow", "flow", LayerFlow) }

// ControlLayer adds the conventional control layer ("control").
func (b *Builder) ControlLayer() string { return b.Layer("control", "control", LayerControl) }

// Param sets a numeric device parameter.
func (b *Builder) Param(key string, value float64) *Builder {
	b.device.Params[key] = value
	return b
}

// Component adds a component with explicit ports and returns its ID.
func (b *Builder) Component(id, entity string, layerIDs []string, xSpan, ySpan int64, ports ...Port) string {
	if id == "" {
		b.errorf("component with empty id")
		return id
	}
	if _, dup := b.comps[id]; dup {
		b.errorf("duplicate component id %q", id)
		return id
	}
	if len(layerIDs) == 0 {
		b.errorf("component %q has no layers", id)
	}
	for _, l := range layerIDs {
		if !b.layers[l] {
			b.errorf("component %q references undeclared layer %q", id, l)
		}
	}
	seen := make(map[string]bool, len(ports))
	for _, p := range ports {
		if seen[p.Label] {
			b.errorf("component %q has duplicate port label %q", id, p.Label)
		}
		seen[p.Label] = true
	}
	b.device.Components = append(b.device.Components, Component{
		ID:     id,
		Name:   id,
		Entity: entity,
		Layers: append([]string(nil), layerIDs...),
		XSpan:  xSpan,
		YSpan:  ySpan,
		Ports:  append([]Port(nil), ports...),
	})
	b.comps[id] = &b.device.Components[len(b.device.Components)-1]
	return id
}

// TwoPort adds a component with the standard left/right port pair used by
// in-line elements (mixers, chambers, valves): port1 on the west edge
// midpoint, port2 on the east edge midpoint.
func (b *Builder) TwoPort(id, entity, layerID string, xSpan, ySpan int64) string {
	return b.Component(id, entity, []string{layerID}, xSpan, ySpan,
		Port{Label: "port1", Layer: layerID, X: 0, Y: ySpan / 2},
		Port{Label: "port2", Layer: layerID, X: xSpan, Y: ySpan / 2},
	)
}

// IOPort adds a chip-edge fluid port: a square PORT entity with a single
// connection point at its center.
func (b *Builder) IOPort(id, layerID string, size int64) string {
	return b.Component(id, EntityPort, []string{layerID}, size, size,
		Port{Label: "port1", Layer: layerID, X: size / 2, Y: size / 2},
	)
}

// Connect adds a connection from source to the given sinks and returns its
// ID. Targets are written "component" or "component.port"; splitting happens
// here so call sites stay terse.
func (b *Builder) Connect(id, layerID, source string, sinks ...string) string {
	if id == "" {
		b.errorf("connection with empty id")
		return id
	}
	if b.conns[id] {
		b.errorf("duplicate connection id %q", id)
		return id
	}
	if !b.layers[layerID] {
		b.errorf("connection %q references undeclared layer %q", id, layerID)
	}
	if len(sinks) == 0 {
		b.errorf("connection %q has no sinks", id)
	}
	conn := Connection{ID: id, Name: id, Layer: layerID, Source: b.target(id, source)}
	for _, s := range sinks {
		conn.Sinks = append(conn.Sinks, b.target(id, s))
	}
	b.conns[id] = true
	b.device.Connections = append(b.device.Connections, conn)
	return id
}

// target parses "component" or "component.port" and checks the reference.
func (b *Builder) target(connID, spec string) Target {
	t := ParseTarget(spec)
	c, ok := b.comps[t.Component]
	if !ok {
		b.errorf("connection %q references undeclared component %q", connID, t.Component)
		return t
	}
	if t.Port != "" {
		if _, ok := c.PortByLabel(t.Port); !ok {
			b.errorf("connection %q references missing port %q on component %q", connID, t.Port, t.Component)
		}
	}
	return t
}

// Build returns the constructed device, or the accumulated construction
// errors. The builder must not be reused after Build.
func (b *Builder) Build() (*Device, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("core: building device %q: %d error(s), first: %w",
			b.device.Name, len(b.errs), b.errs[0])
	}
	d := b.device
	if len(d.Params) == 0 {
		d.Params = nil
	}
	return &d, nil
}

// MustBuild is Build for programmatically generated devices whose
// construction cannot fail; it panics on error.
func (b *Builder) MustBuild() *Device {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}

// ParseTarget splits "component.port" into a Target. A spec without a dot
// is a component-only target ("any port"). Only the last dot separates the
// port, so component IDs containing dots still parse usefully.
func ParseTarget(spec string) Target {
	for i := len(spec) - 1; i >= 0; i-- {
		if spec[i] == '.' {
			return Target{Component: spec[:i], Port: spec[i+1:]}
		}
	}
	return Target{Component: spec}
}
