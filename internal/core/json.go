package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
)

// Version is the baseline ParchMint format version this package writes
// for devices without v1.2 content (see v12.go for the v1.2 additions).
const Version = VersionV1

// wireDevice is the JSON wire shape of a device (v1 plus the optional
// v1.2 keys).
type wireDevice struct {
	Name        string               `json:"name"`
	Layers      []Layer              `json:"layers"`
	Components  []Component          `json:"components"`
	Connections []Connection         `json:"connections"`
	Features    []Feature            `json:"features,omitempty"`
	Params      Params               `json:"params,omitempty"`
	ValveMap    map[string]string    `json:"valveMap,omitempty"`
	ValveTypes  map[string]ValveType `json:"valveTypeMap,omitempty"`
	Version     string               `json:"version,omitempty"`
}

// MarshalJSON encodes the device in ParchMint v1 JSON.
func (d *Device) MarshalJSON() ([]byte, error) {
	version := VersionV1
	if d.UsesV12() {
		version = VersionV12
	}
	return json.Marshal(wireDevice{
		Name:        d.Name,
		Layers:      emptyIfNil(d.Layers),
		Components:  emptyIfNil(d.Components),
		Connections: emptyIfNil(d.Connections),
		Features:    d.Features,
		Params:      d.Params,
		ValveMap:    d.ValveMap,
		ValveTypes:  d.ValveTypes,
		Version:     version,
	})
}

// UnmarshalJSON decodes ParchMint v1 JSON into the device.
func (d *Device) UnmarshalJSON(data []byte) error {
	var w wireDevice
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	d.Name = w.Name
	d.Layers = w.Layers
	d.Components = w.Components
	d.Connections = w.Connections
	d.Features = w.Features
	d.Params = w.Params
	d.ValveMap = w.ValveMap
	d.ValveTypes = w.ValveTypes
	return nil
}

// emptyIfNil maps a nil slice to an empty one so required ParchMint arrays
// always serialize as [] rather than null.
func emptyIfNil[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}

// wirePoint is the {"x":..,"y":..} shape used for absolute coordinates.
type wirePoint struct {
	X int64 `json:"x"`
	Y int64 `json:"y"`
}

// wireFeature is the union wire shape of the "features" array. Channel
// features are identified by the presence of the "connection" key.
type wireFeature struct {
	Name       string     `json:"name"`
	ID         string     `json:"id"`
	Layer      string     `json:"layer"`
	Location   *wirePoint `json:"location,omitempty"`
	XSpan      *int64     `json:"x-span,omitempty"`
	YSpan      *int64     `json:"y-span,omitempty"`
	Connection string     `json:"connection,omitempty"`
	Width      *int64     `json:"width,omitempty"`
	Source     *wirePoint `json:"source,omitempty"`
	Sink       *wirePoint `json:"sink,omitempty"`
	Type       string     `json:"type,omitempty"`
	Depth      int64      `json:"depth"`
}

// MarshalJSON encodes the feature as the tagged-union wire shape.
func (f Feature) MarshalJSON() ([]byte, error) {
	w := wireFeature{Name: f.Name, ID: f.ID, Layer: f.Layer, Depth: f.Depth}
	switch f.Kind {
	case FeatureComponent:
		w.Location = &wirePoint{f.Location.X, f.Location.Y}
		w.XSpan = ptr(f.XSpan)
		w.YSpan = ptr(f.YSpan)
	case FeatureChannel:
		w.Connection = f.Connection
		w.Width = ptr(f.Width)
		w.Source = &wirePoint{f.Source.X, f.Source.Y}
		w.Sink = &wirePoint{f.Sink.X, f.Sink.Y}
		w.Type = "channel"
	default:
		return nil, fmt.Errorf("core: cannot marshal feature %q: unknown kind %d", f.ID, int(f.Kind))
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the tagged-union wire shape into the feature.
func (f *Feature) UnmarshalJSON(data []byte) error {
	var w wireFeature
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*f = Feature{Name: w.Name, ID: w.ID, Layer: w.Layer, Depth: w.Depth}
	if w.Connection != "" || w.Type == "channel" {
		f.Kind = FeatureChannel
		f.Connection = w.Connection
		if w.Width != nil {
			f.Width = *w.Width
		}
		if w.Source != nil {
			f.Source = geom.Pt(w.Source.X, w.Source.Y)
		}
		if w.Sink != nil {
			f.Sink = geom.Pt(w.Sink.X, w.Sink.Y)
		}
		return nil
	}
	f.Kind = FeatureComponent
	if w.Location != nil {
		f.Location = geom.Pt(w.Location.X, w.Location.Y)
	}
	if w.XSpan != nil {
		f.XSpan = *w.XSpan
	}
	if w.YSpan != nil {
		f.YSpan = *w.YSpan
	}
	return nil
}

func ptr[T any](v T) *T { return &v }

// Encode writes the device to w as indented ParchMint v1 JSON.
func Encode(w io.Writer, d *Device) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("core: encoding device %q: %w", d.Name, err)
	}
	return nil
}

// Marshal returns the device as indented ParchMint v1 JSON bytes.
func Marshal(d *Device) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads one ParchMint v1 JSON device from r. Syntax failures come
// back as *ParseError (matching ErrParse), so callers can classify them
// without string inspection.
func Decode(r io.Reader) (*Device, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, &ParseError{Format: "json", Err: err}
	}
	return Unmarshal(data)
}

// Unmarshal parses ParchMint v1 JSON bytes into a device. It runs the
// hand-rolled parser in canondec.go; decodeStd keeps the encoding/json
// path alive as the differential-test reference.
func Unmarshal(data []byte) (*Device, error) {
	d, err := unmarshalDevice(data)
	if err != nil {
		return nil, &ParseError{Format: "json", Err: err}
	}
	return d, nil
}

// decodeStd is the encoding/json reference decoder the fast path is
// differential-tested against. It must keep the exact shape Decode had
// before canondec.go existed.
func decodeStd(data []byte) (*Device, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var d Device
	if err := dec.Decode(&d); err != nil {
		return nil, &ParseError{Format: "json", Err: err}
	}
	return &d, nil
}
