package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// randomDevice generates an arbitrary (valid) device from a seed: a
// random-but-wellformed netlist used for property-based round-trip tests.
func randomDevice(seed uint64) *Device {
	r := xrand.New(seed)
	b := NewBuilder(fmt.Sprintf("fuzz_%d", seed))
	flow := b.FlowLayer()
	layers := []string{flow}
	if r.Intn(2) == 0 {
		layers = append(layers, b.ControlLayer())
	}
	nComps := 2 + r.Intn(10)
	type portRef struct{ comp, port, layer string }
	var ports []portRef
	for i := 0; i < nComps; i++ {
		id := fmt.Sprintf("c%d", i)
		layer := layers[r.Intn(len(layers))]
		switch r.Intn(3) {
		case 0:
			b.IOPort(id, layer, 100+int64(r.Intn(5))*50)
			ports = append(ports, portRef{id, "port1", layer})
		case 1:
			b.TwoPort(id, EntityMixer, layer, 500+int64(r.Intn(20))*100, 400+int64(r.Intn(10))*100)
			ports = append(ports, portRef{id, "port1", layer}, portRef{id, "port2", layer})
		default:
			x := 200 + int64(r.Intn(10))*100
			y := 200 + int64(r.Intn(10))*100
			b.Component(id, EntityChamber, []string{layer}, x, y,
				Port{Label: "port1", Layer: layer, X: 0, Y: y / 2},
				Port{Label: "port2", Layer: layer, X: x, Y: y / 2},
				Port{Label: "port3", Layer: layer, X: x / 2, Y: 0},
			)
			ports = append(ports, portRef{id, "port1", layer},
				portRef{id, "port2", layer}, portRef{id, "port3", layer})
		}
	}
	nConns := 1 + r.Intn(8)
	for i := 0; i < nConns; i++ {
		src := ports[r.Intn(len(ports))]
		var sinks []string
		for k := 0; k < 1+r.Intn(3); k++ {
			t := ports[r.Intn(len(ports))]
			if t.layer == src.layer {
				sinks = append(sinks, t.comp+"."+t.port)
			}
		}
		if len(sinks) == 0 {
			sinks = []string{src.comp + "." + src.port}
		}
		b.Connect(fmt.Sprintf("n%d", i), src.layer, src.comp+"."+src.port, sinks...)
	}
	if r.Intn(2) == 0 {
		b.Param("channelWidth", float64(50+r.Intn(200)))
	}
	return b.MustBuild()
}

// TestQuickJSONRoundTrip: every generated device survives JSON losslessly.
func TestQuickJSONRoundTrip(t *testing.T) {
	prop := func(seed uint64) bool {
		d := randomDevice(seed)
		data, err := Marshal(d)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return Equal(d, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickCanonicalizeIdempotent: canonicalization is a fixed point.
func TestQuickCanonicalizeIdempotent(t *testing.T) {
	prop := func(seed uint64) bool {
		d := randomDevice(seed)
		d.Canonicalize()
		once := d.Clone()
		d.Canonicalize()
		return Equal(once, d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneEqual: clones are equal and independent.
func TestQuickCloneEqual(t *testing.T) {
	prop := func(seed uint64) bool {
		d := randomDevice(seed)
		c := d.Clone()
		if !Equal(d, c) {
			return false
		}
		// Mutating the clone must not affect the original.
		if len(c.Components) > 0 {
			c.Components[0].XSpan += 12345
		}
		return !Equal(d, c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickMarshalStability: marshal(unmarshal(marshal(d))) is
// byte-identical to marshal(d).
func TestQuickMarshalStability(t *testing.T) {
	prop := func(seed uint64) bool {
		d := randomDevice(seed)
		b1, err := Marshal(d)
		if err != nil {
			return false
		}
		back, err := Unmarshal(b1)
		if err != nil {
			return false
		}
		b2, err := Marshal(back)
		if err != nil {
			return false
		}
		return string(b1) == string(b2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
