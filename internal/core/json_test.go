package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestJSONRoundTrip(t *testing.T) {
	d := testDevice(t)
	d.Features = []Feature{
		{Kind: FeatureComponent, ID: "mix1", Name: "mix1", Layer: "flow",
			Location: geom.Pt(500, 500), XSpan: 2000, YSpan: 1000, Depth: 10},
		{Kind: FeatureChannel, ID: "c1_seg0", Name: "c1", Layer: "flow",
			Connection: "c1", Width: 100, Depth: 10,
			Source: geom.Pt(100, 100), Sink: geom.Pt(500, 100)},
	}
	data, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !Equal(d, back) {
		t.Errorf("round trip not equal:\n%s", data)
	}
}

func TestJSONRoundTripIsByteStable(t *testing.T) {
	d := testDevice(t)
	first, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(first)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	second, err := Marshal(back)
	if err != nil {
		t.Fatalf("re-Marshal: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Error("JSON round trip changed bytes")
	}
}

func TestJSONWireKeys(t *testing.T) {
	d := testDevice(t)
	data, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	s := string(data)
	// ParchMint v1 uses hyphenated span keys; regressions here would break
	// interchange with other tools.
	for _, key := range []string{`"x-span"`, `"y-span"`, `"layers"`, `"components"`, `"connections"`, `"sinks"`, `"source"`} {
		if !strings.Contains(s, key) {
			t.Errorf("serialized device missing wire key %s", key)
		}
	}
	if strings.Contains(s, `"XSpan"`) {
		t.Error("Go field name leaked into wire format")
	}
}

func TestJSONEmptyArraysNotNull(t *testing.T) {
	d := &Device{Name: "empty"}
	data, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("reparse: %v", err)
	}
	for _, key := range []string{"layers", "components", "connections"} {
		v, ok := raw[key]
		if !ok {
			t.Errorf("required key %q missing", key)
			continue
		}
		if string(bytes.TrimSpace(v)) == "null" {
			t.Errorf("required array %q serialized as null", key)
		}
	}
	// Optional keys stay absent when empty.
	if _, ok := raw["features"]; ok {
		t.Error("empty features should be omitted")
	}
	if _, ok := raw["params"]; ok {
		t.Error("empty params should be omitted")
	}
}

func TestJSONVersionEmitted(t *testing.T) {
	data, err := Marshal(&Device{Name: "v"})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !strings.Contains(string(data), `"version": "1.0"`) {
		t.Errorf("version field missing:\n%s", data)
	}
}

func TestFeatureUnionDecoding(t *testing.T) {
	// A channel feature is recognized by its "connection" key.
	chJSON := `{"name":"n1","id":"f1","layer":"flow","connection":"c9",
		"width":120,"depth":15,"source":{"x":1,"y":2},"sink":{"x":3,"y":4},"type":"channel"}`
	var f Feature
	if err := json.Unmarshal([]byte(chJSON), &f); err != nil {
		t.Fatalf("channel decode: %v", err)
	}
	want := Feature{Kind: FeatureChannel, ID: "f1", Name: "n1", Layer: "flow",
		Connection: "c9", Width: 120, Depth: 15,
		Source: geom.Pt(1, 2), Sink: geom.Pt(3, 4)}
	if f != want {
		t.Errorf("channel feature = %+v, want %+v", f, want)
	}

	compJSON := `{"name":"m","id":"m","layer":"flow","location":{"x":10,"y":20},
		"x-span":100,"y-span":200,"depth":5}`
	if err := json.Unmarshal([]byte(compJSON), &f); err != nil {
		t.Fatalf("component decode: %v", err)
	}
	want = Feature{Kind: FeatureComponent, ID: "m", Name: "m", Layer: "flow",
		Location: geom.Pt(10, 20), XSpan: 100, YSpan: 200, Depth: 5}
	if f != want {
		t.Errorf("component feature = %+v, want %+v", f, want)
	}

	// "type":"channel" alone (no connection id) still selects the channel arm.
	typeOnly := `{"name":"n","id":"f","layer":"flow","type":"channel","depth":1}`
	if err := json.Unmarshal([]byte(typeOnly), &f); err != nil {
		t.Fatalf("type-only decode: %v", err)
	}
	if f.Kind != FeatureChannel {
		t.Errorf("type-only feature decoded as %v", f.Kind)
	}
}

func TestFeatureMarshalUnknownKind(t *testing.T) {
	f := Feature{Kind: FeatureKind(42), ID: "x"}
	if _, err := json.Marshal(f); err == nil {
		t.Error("marshaling unknown feature kind should fail")
	}
}

func TestFeatureMarshalShape(t *testing.T) {
	comp := Feature{Kind: FeatureComponent, ID: "c", Name: "c", Layer: "flow",
		Location: geom.Pt(1, 2), XSpan: 3, YSpan: 4, Depth: 5}
	data, err := json.Marshal(comp)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	s := string(data)
	if strings.Contains(s, `"connection"`) || strings.Contains(s, `"width"`) {
		t.Errorf("component feature leaked channel keys: %s", s)
	}
	if !strings.Contains(s, `"location"`) {
		t.Errorf("component feature missing location: %s", s)
	}

	ch := Feature{Kind: FeatureChannel, ID: "s", Name: "s", Layer: "flow",
		Connection: "c1", Width: 10, Depth: 5, Source: geom.Pt(0, 0), Sink: geom.Pt(9, 0)}
	data, err = json.Marshal(ch)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	s = string(data)
	if strings.Contains(s, `"location"`) || strings.Contains(s, `"x-span"`) {
		t.Errorf("channel feature leaked component keys: %s", s)
	}
	if !strings.Contains(s, `"type":"channel"`) {
		t.Errorf("channel feature missing type tag: %s", s)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte(`{"name": 42}`)); err == nil {
		t.Error("non-string name should fail decode")
	}
	if _, err := Unmarshal([]byte(`not json`)); err == nil {
		t.Error("garbage should fail decode")
	}
	if _, err := Unmarshal([]byte(`{"components": [{"x-span": "wide"}]}`)); err == nil {
		t.Error("non-numeric span should fail decode")
	}
}

func TestDecodeMinimalDevice(t *testing.T) {
	d, err := Unmarshal([]byte(`{"name":"tiny","layers":[],"components":[],"connections":[]}`))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if d.Name != "tiny" || len(d.Components) != 0 {
		t.Errorf("decoded = %+v", d)
	}
}

func TestEncodeDecodeStream(t *testing.T) {
	d := testDevice(t)
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !Equal(d, back) {
		t.Error("stream round trip not equal")
	}
}
