package core

import "repro/internal/geom"

// Index provides O(1) lookup of layers, components, and connections by ID.
// Build one with d.Index() after the device stops changing; the index holds
// pointers into the device's slices, so mutating the device's slice headers
// (append, reorder) invalidates it.
type Index struct {
	device      *Device
	layers      map[string]*Layer
	components  map[string]*Component
	connections map[string]*Connection
}

// Index builds lookup tables over the device. Duplicate IDs keep the first
// occurrence; the validator reports duplicates as errors separately.
func (d *Device) Index() *Index {
	ix := &Index{
		device:      d,
		layers:      make(map[string]*Layer, len(d.Layers)),
		components:  make(map[string]*Component, len(d.Components)),
		connections: make(map[string]*Connection, len(d.Connections)),
	}
	for i := range d.Layers {
		l := &d.Layers[i]
		if _, dup := ix.layers[l.ID]; !dup {
			ix.layers[l.ID] = l
		}
	}
	for i := range d.Components {
		c := &d.Components[i]
		if _, dup := ix.components[c.ID]; !dup {
			ix.components[c.ID] = c
		}
	}
	for i := range d.Connections {
		c := &d.Connections[i]
		if _, dup := ix.connections[c.ID]; !dup {
			ix.connections[c.ID] = c
		}
	}
	return ix
}

// Layer returns the layer with the given ID, or nil.
func (ix *Index) Layer(id string) *Layer { return ix.layers[id] }

// Component returns the component with the given ID, or nil.
func (ix *Index) Component(id string) *Component { return ix.components[id] }

// Connection returns the connection with the given ID, or nil.
func (ix *Index) Connection(id string) *Connection { return ix.connections[id] }

// ResolveTarget returns the component and port a target names. The port is
// zero-valued with ok=false when either the component or the port is missing
// (an empty target port resolves to the component's first port, matching the
// routers' "any port" behavior).
func (ix *Index) ResolveTarget(t Target) (*Component, Port, bool) {
	c := ix.components[t.Component]
	if c == nil {
		return nil, Port{}, false
	}
	if t.Port == "" {
		if len(c.Ports) == 0 {
			return c, Port{}, false
		}
		return c, c.Ports[0], true
	}
	p, ok := c.PortByLabel(t.Port)
	return c, p, ok
}

// Clone returns a deep copy of the device. The copy shares no mutable state
// with the original.
func (d *Device) Clone() *Device {
	out := &Device{Name: d.Name}
	if d.Layers != nil {
		out.Layers = make([]Layer, len(d.Layers))
		copy(out.Layers, d.Layers)
	}
	if d.Components != nil {
		out.Components = make([]Component, len(d.Components))
		for i, c := range d.Components {
			cc := c
			cc.Layers = append([]string(nil), c.Layers...)
			cc.Ports = append([]Port(nil), c.Ports...)
			if c.Params != nil {
				cc.Params = make(Params, len(c.Params))
				for k, v := range c.Params {
					cc.Params[k] = v
				}
			}
			out.Components[i] = cc
		}
	}
	if d.Connections != nil {
		out.Connections = make([]Connection, len(d.Connections))
		for i, c := range d.Connections {
			cc := c
			cc.Sinks = append([]Target(nil), c.Sinks...)
			if c.Paths != nil {
				cc.Paths = make([]ChannelPath, len(c.Paths))
				for pi, path := range c.Paths {
					pp := path
					pp.Waypoints = append([]geom.Point(nil), path.Waypoints...)
					cc.Paths[pi] = pp
				}
			}
			out.Connections[i] = cc
		}
	}
	if d.Features != nil {
		out.Features = make([]Feature, len(d.Features))
		copy(out.Features, d.Features)
	}
	if d.Params != nil {
		out.Params = make(Params, len(d.Params))
		for k, v := range d.Params {
			out.Params[k] = v
		}
	}
	if d.ValveMap != nil {
		out.ValveMap = make(map[string]string, len(d.ValveMap))
		for k, v := range d.ValveMap {
			out.ValveMap[k] = v
		}
	}
	if d.ValveTypes != nil {
		out.ValveTypes = make(map[string]ValveType, len(d.ValveTypes))
		for k, v := range d.ValveTypes {
			out.ValveTypes[k] = v
		}
	}
	return out
}

// Equal reports whether two devices are structurally identical, including
// element order. Use Canonicalize on both first for order-insensitive
// comparison.
func Equal(a, b *Device) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name ||
		len(a.Layers) != len(b.Layers) ||
		len(a.Components) != len(b.Components) ||
		len(a.Connections) != len(b.Connections) ||
		len(a.Features) != len(b.Features) ||
		len(a.Params) != len(b.Params) ||
		len(a.ValveMap) != len(b.ValveMap) ||
		len(a.ValveTypes) != len(b.ValveTypes) {
		return false
	}
	for i := range a.Layers {
		if a.Layers[i] != b.Layers[i] {
			return false
		}
	}
	for i := range a.Components {
		if !componentEqual(&a.Components[i], &b.Components[i]) {
			return false
		}
	}
	for i := range a.Connections {
		if !connectionEqual(&a.Connections[i], &b.Connections[i]) {
			return false
		}
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			return false
		}
	}
	for k, v := range a.Params {
		if bv, ok := b.Params[k]; !ok || bv != v {
			return false
		}
	}
	for k, v := range a.ValveMap {
		if bv, ok := b.ValveMap[k]; !ok || bv != v {
			return false
		}
	}
	for k, v := range a.ValveTypes {
		if bv, ok := b.ValveTypes[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func componentEqual(a, b *Component) bool {
	if a.ID != b.ID || a.Name != b.Name || a.Entity != b.Entity ||
		a.XSpan != b.XSpan || a.YSpan != b.YSpan ||
		len(a.Layers) != len(b.Layers) || len(a.Ports) != len(b.Ports) ||
		len(a.Params) != len(b.Params) {
		return false
	}
	for k, v := range a.Params {
		if bv, ok := b.Params[k]; !ok || bv != v {
			return false
		}
	}
	for i := range a.Layers {
		if a.Layers[i] != b.Layers[i] {
			return false
		}
	}
	for i := range a.Ports {
		if a.Ports[i] != b.Ports[i] {
			return false
		}
	}
	return true
}

func connectionEqual(a, b *Connection) bool {
	if a.ID != b.ID || a.Name != b.Name || a.Layer != b.Layer ||
		a.Source != b.Source || len(a.Sinks) != len(b.Sinks) ||
		len(a.Paths) != len(b.Paths) {
		return false
	}
	for i := range a.Sinks {
		if a.Sinks[i] != b.Sinks[i] {
			return false
		}
	}
	for i := range a.Paths {
		if !pathEqual(&a.Paths[i], &b.Paths[i]) {
			return false
		}
	}
	return true
}

func pathEqual(a, b *ChannelPath) bool {
	if a.Source != b.Source || a.Sink != b.Sink || len(a.Waypoints) != len(b.Waypoints) {
		return false
	}
	for i := range a.Waypoints {
		if a.Waypoints[i] != b.Waypoints[i] {
			return false
		}
	}
	return true
}
