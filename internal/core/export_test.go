package core

// Test-only exports: the differential suites in canon_codec_test.go live
// in package core_test (so they can import internal/bench for the device
// corpus) but need both halves of the codec pair.

// UnmarshalFast is the hand-rolled decoder (the live Unmarshal path).
var UnmarshalFast = unmarshalDevice

// DecodeStd is the encoding/json reference decoder the fast path is
// verified against.
var DecodeStd = decodeStd
