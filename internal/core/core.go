// Package core implements the ParchMint interchange format for
// continuous-flow microfluidic laboratory-on-a-chip (LoC) devices — the
// primary contribution of "ParchMint: A Microfluidics Benchmark Suite"
// (IISWC 2018).
//
// A ParchMint device is a netlist: named Layers (flow, control), Components
// placed on those layers with typed entities and named Ports, and
// Connections (channels) that join one source port to one or more sink
// ports. A device may optionally carry physical Features — placed component
// geometry and routed channel segments — produced by a place-and-route flow.
//
// The package provides the in-memory model, exact JSON v1
// serialization (see json.go), a fluent construction API (see builder.go),
// indexes and deep-copy/equality utilities (see lookup.go), and canonical
// ordering for deterministic interchange (see canon.go).
package core

import (
	"fmt"

	"repro/internal/geom"
)

// LayerType classifies a device layer. Continuous-flow LoCs are built from
// a flow layer carrying fluid and a control layer carrying valve actuation
// lines; ParchMint allows arbitrarily many of each.
type LayerType string

// The layer types used by the benchmark suite.
const (
	LayerFlow    LayerType = "FLOW"
	LayerControl LayerType = "CONTROL"
)

// Layer is one fabrication layer of the device.
type Layer struct {
	// ID uniquely identifies the layer within the device.
	ID string `json:"id"`
	// Name is the human-readable layer name.
	Name string `json:"name"`
	// Type distinguishes flow from control layers.
	Type LayerType `json:"type"`
}

// Port is a connection point on a component. Its coordinates are relative
// to the component's local origin (top-left corner), in micrometers.
type Port struct {
	// Label names the port uniquely within its component.
	Label string `json:"label"`
	// Layer is the ID of the layer the port lives on.
	Layer string `json:"layer"`
	// X, Y locate the port relative to the component origin.
	X int64 `json:"x"`
	Y int64 `json:"y"`
}

// Point returns the port location in component-local coordinates.
func (p Port) Point() geom.Point { return geom.Pt(p.X, p.Y) }

// Component is one functional element of the device: a port, mixer, valve,
// pump, and so on. Components are placed logically on one or more layers;
// physical position, when known, is carried by a Feature.
type Component struct {
	// ID uniquely identifies the component within the device.
	ID string `json:"id"`
	// Name is the human-readable instance name.
	Name string `json:"name"`
	// Entity is the component type (see entity.go for the suite's vocabulary).
	Entity string `json:"entity"`
	// Layers lists the IDs of every layer the component occupies.
	Layers []string `json:"layers"`
	// XSpan, YSpan are the component's footprint in micrometers.
	XSpan int64 `json:"x-span"`
	YSpan int64 `json:"y-span"`
	// Ports are the component's connection points.
	Ports []Port `json:"ports"`
	// Params holds per-component numeric parameters (ParchMint v1.2),
	// e.g. rotation or a component-specific channel width.
	Params Params `json:"params,omitempty"`
}

// PortByLabel returns the port with the given label and whether it exists.
func (c *Component) PortByLabel(label string) (Port, bool) {
	for _, p := range c.Ports {
		if p.Label == label {
			return p, true
		}
	}
	return Port{}, false
}

// Footprint returns the component's bounding box at the given origin.
func (c *Component) Footprint(origin geom.Point) geom.Rect {
	return geom.RectAt(origin, c.XSpan, c.YSpan)
}

// Target identifies one endpoint of a connection: a port on a component.
type Target struct {
	// Component is the ID of the endpoint component.
	Component string `json:"component"`
	// Port is the label of the port on that component. ParchMint permits an
	// empty port, meaning "any port" — the validator flags this as a warning
	// and the routers resolve it to the nearest free port.
	Port string `json:"port,omitempty"`
}

// String renders the target as "component.port".
func (t Target) String() string {
	if t.Port == "" {
		return t.Component
	}
	return t.Component + "." + t.Port
}

// Connection is a channel net joining a source target to one or more sinks
// on a single layer.
type Connection struct {
	// ID uniquely identifies the connection within the device.
	ID string `json:"id"`
	// Name is the human-readable net name.
	Name string `json:"name"`
	// Layer is the ID of the layer the channel is fabricated on.
	Layer string `json:"layer"`
	// Source is the driving endpoint.
	Source Target `json:"source"`
	// Sinks are the driven endpoints; a valid connection has at least one.
	Sinks []Target `json:"sinks"`
	// Paths optionally carry the routed polylines of this connection
	// (ParchMint v1.2), one per sink arm.
	Paths []ChannelPath `json:"paths,omitempty"`
}

// Targets returns source and sinks as one slice, source first.
func (c *Connection) Targets() []Target {
	out := make([]Target, 0, 1+len(c.Sinks))
	out = append(out, c.Source)
	out = append(out, c.Sinks...)
	return out
}

// FeatureKind distinguishes the two physical feature flavors carried by the
// ParchMint "features" array.
type FeatureKind int

// Feature kinds.
const (
	// FeatureComponent places a component: location plus spans and depth.
	FeatureComponent FeatureKind = iota
	// FeatureChannel is one routed straight segment of a connection.
	FeatureChannel
)

// String names the feature kind.
func (k FeatureKind) String() string {
	switch k {
	case FeatureComponent:
		return "component"
	case FeatureChannel:
		return "channel"
	default:
		return fmt.Sprintf("FeatureKind(%d)", int(k))
	}
}

// Feature carries physical geometry for either a placed component or one
// routed channel segment. Which fields are meaningful depends on Kind;
// the JSON encoding is a tagged union (see json.go).
type Feature struct {
	Kind FeatureKind
	// ID uniquely identifies the feature. For component features the suite
	// convention is ID == the placed component's ID.
	ID string
	// Name is the human-readable feature name.
	Name string
	// Layer is the ID of the layer the geometry lives on.
	Layer string

	// Component feature fields.
	Location geom.Point // top-left corner of the placed footprint
	XSpan    int64
	YSpan    int64

	// Channel feature fields.
	Connection string     // ID of the connection this segment realizes
	Width      int64      // channel width in micrometers
	Source     geom.Point // segment start, absolute coordinates
	Sink       geom.Point // segment end, absolute coordinates

	// Depth applies to both kinds: feature depth in micrometers.
	Depth int64
}

// Footprint returns the placed rectangle of a component feature. For
// channel features it returns the degenerate bounding box of the segment.
func (f *Feature) Footprint() geom.Rect {
	if f.Kind == FeatureComponent {
		return geom.RectAt(f.Location, f.XSpan, f.YSpan)
	}
	return geom.BoundingBox([]geom.Point{f.Source, f.Sink})
}

// Params holds free-form numeric device parameters (for example default
// channel width or the target die spans used by a P&R flow).
type Params map[string]float64

// Get returns the parameter value and whether it is present.
func (p Params) Get(key string) (float64, bool) {
	v, ok := p[key]
	return v, ok
}

// GetDefault returns the parameter value, or def when absent.
func (p Params) GetDefault(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Device is a complete ParchMint netlist.
type Device struct {
	// Name is the benchmark/device name.
	Name string
	// Layers, Components, Connections form the logical netlist.
	Layers      []Layer
	Components  []Component
	Connections []Connection
	// Features optionally carry physical geometry from a P&R flow.
	Features []Feature
	// Params holds free-form numeric parameters.
	Params Params
	// ValveMap maps valve component IDs to the connection they actuate
	// (ParchMint v1.2); ValveTypes records each valve's resting state.
	ValveMap   map[string]string
	ValveTypes map[string]ValveType
}

// Stats summarizes the gross size of a device.
type Stats struct {
	Layers      int
	Components  int
	Connections int
	Ports       int // total ports across all components
	Sinks       int // total sink endpoints across all connections
	Features    int
}

// Stats returns the gross size counts for d.
func (d *Device) Stats() Stats {
	s := Stats{
		Layers:      len(d.Layers),
		Components:  len(d.Components),
		Connections: len(d.Connections),
		Features:    len(d.Features),
	}
	for i := range d.Components {
		s.Ports += len(d.Components[i].Ports)
	}
	for i := range d.Connections {
		s.Sinks += len(d.Connections[i].Sinks)
	}
	return s
}

// CountEntity returns how many components have the given entity type.
func (d *Device) CountEntity(entity string) int {
	n := 0
	for i := range d.Components {
		if d.Components[i].Entity == entity {
			n++
		}
	}
	return n
}

// HasFeatures reports whether the device carries any physical geometry.
func (d *Device) HasFeatures() bool { return len(d.Features) > 0 }
