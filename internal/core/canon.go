package core

import "sort"

// Canonicalize sorts every collection in the device into a deterministic
// order: layers, components, connections, and features by ID; component
// layer lists lexically; ports by label; sinks by (component, port).
// Canonical form makes interchange byte-stable and lets Equal compare
// devices regardless of the order a producing tool emitted elements in.
func (d *Device) Canonicalize() {
	sort.SliceStable(d.Layers, func(i, j int) bool { return d.Layers[i].ID < d.Layers[j].ID })
	sort.SliceStable(d.Components, func(i, j int) bool { return d.Components[i].ID < d.Components[j].ID })
	sort.SliceStable(d.Connections, func(i, j int) bool { return d.Connections[i].ID < d.Connections[j].ID })
	sort.SliceStable(d.Features, func(i, j int) bool {
		a, b := &d.Features[i], &d.Features[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		// Channel features of one connection share an ID prefix; order the
		// segments geometrically so repeated routes serialize identically.
		if a.Source != b.Source {
			if a.Source.X != b.Source.X {
				return a.Source.X < b.Source.X
			}
			return a.Source.Y < b.Source.Y
		}
		if a.Sink.X != b.Sink.X {
			return a.Sink.X < b.Sink.X
		}
		return a.Sink.Y < b.Sink.Y
	})
	for i := range d.Components {
		c := &d.Components[i]
		sort.Strings(c.Layers)
		sort.SliceStable(c.Ports, func(a, b int) bool { return c.Ports[a].Label < c.Ports[b].Label })
	}
	for i := range d.Connections {
		c := &d.Connections[i]
		sort.SliceStable(c.Sinks, func(a, b int) bool {
			if c.Sinks[a].Component != c.Sinks[b].Component {
				return c.Sinks[a].Component < c.Sinks[b].Component
			}
			return c.Sinks[a].Port < c.Sinks[b].Port
		})
	}
}
