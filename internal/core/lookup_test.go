package core

import (
	"testing"

	"repro/internal/geom"
)

func TestIndexLookups(t *testing.T) {
	d := testDevice(t)
	ix := d.Index()
	if ix.Layer("flow") == nil || ix.Layer("control") == nil {
		t.Error("layer lookup failed")
	}
	if ix.Layer("nope") != nil {
		t.Error("missing layer should be nil")
	}
	if c := ix.Component("mix1"); c == nil || c.Entity != EntityMixer {
		t.Errorf("Component(mix1) = %+v", c)
	}
	if ix.Component("ghost") != nil {
		t.Error("missing component should be nil")
	}
	if cn := ix.Connection("c2"); cn == nil || cn.Source.Component != "mix1" {
		t.Errorf("Connection(c2) = %+v", cn)
	}
	if ix.Connection("ghost") != nil {
		t.Error("missing connection should be nil")
	}
}

func TestIndexDuplicateKeepsFirst(t *testing.T) {
	d := &Device{
		Components: []Component{
			{ID: "dup", Name: "first"},
			{ID: "dup", Name: "second"},
		},
	}
	ix := d.Index()
	if got := ix.Component("dup"); got == nil || got.Name != "first" {
		t.Errorf("duplicate lookup = %+v, want first occurrence", got)
	}
}

func TestResolveTarget(t *testing.T) {
	d := testDevice(t)
	ix := d.Index()

	c, p, ok := ix.ResolveTarget(Target{Component: "v1", Port: "ctl"})
	if !ok || c.ID != "v1" || p.Layer != "control" {
		t.Errorf("ResolveTarget = %v %+v %v", c, p, ok)
	}

	// Empty port resolves to the first port.
	c, p, ok = ix.ResolveTarget(Target{Component: "mix1"})
	if !ok || p.Label != "port1" {
		t.Errorf("empty-port resolve = %+v %v", p, ok)
	}

	// Missing component.
	if _, _, ok := ix.ResolveTarget(Target{Component: "ghost"}); ok {
		t.Error("missing component should not resolve")
	}
	// Missing port on existing component.
	if _, _, ok := ix.ResolveTarget(Target{Component: "mix1", Port: "nope"}); ok {
		t.Error("missing port should not resolve")
	}
}

func TestResolveTargetPortlessComponent(t *testing.T) {
	d := &Device{Components: []Component{{ID: "bare"}}}
	ix := d.Index()
	c, _, ok := ix.ResolveTarget(Target{Component: "bare"})
	if ok {
		t.Error("component without ports cannot resolve an any-port target")
	}
	if c == nil {
		t.Error("component itself should still be returned")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := testDevice(t)
	d.Features = []Feature{{Kind: FeatureComponent, ID: "mix1", Layer: "flow", XSpan: 1, YSpan: 1}}
	c := d.Clone()
	if !Equal(d, c) {
		t.Fatal("clone not equal to original")
	}
	// Mutate every nested collection of the clone; original must not move.
	c.Components[0].Ports[0].X = 9999
	c.Components[0].Layers[0] = "mutated"
	c.Connections[0].Sinks[0].Component = "mutated"
	c.Features[0].XSpan = 9999
	c.Params["channelWidth"] = -1
	c.Layers[0].Name = "mutated"
	if d.Components[0].Ports[0].X == 9999 {
		t.Error("clone shares port storage")
	}
	if d.Components[0].Layers[0] == "mutated" {
		t.Error("clone shares layer-list storage")
	}
	if d.Connections[0].Sinks[0].Component == "mutated" {
		t.Error("clone shares sink storage")
	}
	if d.Features[0].XSpan == 9999 {
		t.Error("clone shares feature storage")
	}
	if d.Params["channelWidth"] == -1 {
		t.Error("clone shares params map")
	}
	if d.Layers[0].Name == "mutated" {
		t.Error("clone shares layer storage")
	}
}

func TestCloneNilCollections(t *testing.T) {
	d := &Device{Name: "sparse"}
	c := d.Clone()
	if c.Layers != nil || c.Components != nil || c.Params != nil {
		t.Error("clone invented collections")
	}
	if !Equal(d, c) {
		t.Error("sparse clone not equal")
	}
}

func TestEqual(t *testing.T) {
	a := testDevice(t)
	b := testDevice(t)
	if !Equal(a, b) {
		t.Fatal("identical constructions should be equal")
	}
	if !Equal(nil, nil) {
		t.Error("nil == nil")
	}
	if Equal(a, nil) || Equal(nil, b) {
		t.Error("device != nil")
	}

	mutations := []struct {
		name string
		mut  func(d *Device)
	}{
		{"name", func(d *Device) { d.Name = "other" }},
		{"layer", func(d *Device) { d.Layers[0].Type = LayerControl }},
		{"component span", func(d *Device) { d.Components[2].XSpan++ }},
		{"port", func(d *Device) { d.Components[2].Ports[0].Y++ }},
		{"component layers", func(d *Device) { d.Components[0].Layers[0] = "x" }},
		{"connection source", func(d *Device) { d.Connections[0].Source.Port = "x" }},
		{"sink", func(d *Device) { d.Connections[0].Sinks[0].Component = "x" }},
		{"extra sink", func(d *Device) {
			d.Connections[0].Sinks = append(d.Connections[0].Sinks, Target{Component: "out"})
		}},
		{"param value", func(d *Device) { d.Params["channelWidth"] = 7 }},
		{"param key", func(d *Device) {
			delete(d.Params, "channelWidth")
			d.Params["other"] = 100
		}},
		{"extra component", func(d *Device) {
			d.Components = append(d.Components, Component{ID: "new"})
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := a.Clone()
			m.mut(c)
			if Equal(a, c) {
				t.Errorf("mutation %q not detected by Equal", m.name)
			}
		})
	}
}

func TestEqualFeatures(t *testing.T) {
	a := testDevice(t)
	a.Features = []Feature{{Kind: FeatureChannel, ID: "f", Connection: "c1", Width: 10}}
	b := a.Clone()
	if !Equal(a, b) {
		t.Fatal("clones with features should be equal")
	}
	b.Features[0].Width = 20
	if Equal(a, b) {
		t.Error("feature width change not detected")
	}
}

func TestCanonicalize(t *testing.T) {
	// Build two devices with the same content in different orders.
	mk := func(reverse bool) *Device {
		d := &Device{
			Name: "canon",
			Layers: []Layer{
				{ID: "b", Name: "b", Type: LayerControl},
				{ID: "a", Name: "a", Type: LayerFlow},
			},
			Components: []Component{
				{ID: "c2", Layers: []string{"b", "a"}, Ports: []Port{{Label: "z"}, {Label: "a"}}},
				{ID: "c1", Layers: []string{"a"}},
			},
			Connections: []Connection{
				{ID: "n2", Source: Target{Component: "c1"},
					Sinks: []Target{{Component: "c2", Port: "z"}, {Component: "c2", Port: "a"}}},
				{ID: "n1", Source: Target{Component: "c2"}, Sinks: []Target{{Component: "c1"}}},
			},
		}
		if reverse {
			d.Layers[0], d.Layers[1] = d.Layers[1], d.Layers[0]
			d.Components[0], d.Components[1] = d.Components[1], d.Components[0]
			d.Connections[0], d.Connections[1] = d.Connections[1], d.Connections[0]
		}
		return d
	}
	a, b := mk(false), mk(true)
	if Equal(a, b) {
		t.Fatal("differently ordered devices should differ before canonicalization")
	}
	a.Canonicalize()
	b.Canonicalize()
	if !Equal(a, b) {
		t.Error("canonicalization should make order-permuted devices equal")
	}
	// Spot-check the canonical order.
	if a.Layers[0].ID != "a" || a.Components[0].ID != "c1" || a.Connections[0].ID != "n1" {
		t.Errorf("canonical top-level order wrong: %+v", a)
	}
	c2 := a.Index().Component("c2")
	if c2.Ports[0].Label != "a" || c2.Layers[0] != "a" {
		t.Errorf("canonical nested order wrong: %+v", c2)
	}
	n2 := a.Index().Connection("n2")
	if n2.Sinks[0].Port != "a" {
		t.Errorf("canonical sink order wrong: %+v", n2.Sinks)
	}
}

func TestCanonicalizeChannelSegments(t *testing.T) {
	d := &Device{
		Name: "segs",
		Features: []Feature{
			{Kind: FeatureChannel, ID: "c1", Source: geomPt(10, 0), Sink: geomPt(20, 0)},
			{Kind: FeatureChannel, ID: "c1", Source: geomPt(0, 0), Sink: geomPt(10, 0)},
		},
	}
	d.Canonicalize()
	if d.Features[0].Source != geomPt(0, 0) {
		t.Errorf("segments not ordered geometrically: %+v", d.Features)
	}
}

func geomPt(x, y int64) geom.Point { return geom.Pt(x, y) }
