// Go-native fuzzing of the ParchMint JSON codec, seeded from the suite's
// twelve benchmark devices. Properties: Unmarshal never panics on any
// input; every accepted device re-encodes; and the codec is a round trip —
// decode(encode(d)) equals d and the second encoding is byte-identical to
// the first (the canonical-form fixpoint the golden tests rely on).
package core_test

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

func FuzzDeviceJSON(f *testing.F) {
	for _, b := range bench.Suite() {
		if data, err := core.Marshal(b.Device()); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"d","layers":[],"components":[],"connections":[]}`))
	f.Add([]byte(`{"name":1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"name":"d","layers":[{"id":"flow","name":"flow","type":"FLOW"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := core.Unmarshal(data)
		if err != nil {
			return // rejected input; only panics are failures
		}
		enc, err := core.Marshal(d)
		if err != nil {
			t.Fatalf("accepted device does not re-encode: %v", err)
		}
		d2, err := core.Unmarshal(enc)
		if err != nil {
			t.Fatalf("encoder emitted undecodable JSON: %v\n%s", err, enc)
		}
		if !core.Equal(d, d2) {
			t.Errorf("decode(encode(d)) != d for input %q", data)
		}
		enc2, err := core.Marshal(d2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Errorf("encoding is not a fixpoint\nfirst:  %s\nsecond: %s", enc, enc2)
		}
	})
}
