package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/geom"
)

// ParchMint v1.2 additions. Version 1.2 extends the v1 netlist with
// per-component parameters, routed polylines attached directly to
// connections ("paths"), and the valve map describing which connection
// each membrane valve actuates and whether it is normally open or closed.
// This package reads both versions and writes v1.2 keys only when the
// device uses them, so v1-only consumers keep working on v1-only devices.

// VersionV1 and VersionV12 are the format versions the codec emits.
const (
	VersionV1  = "1.0"
	VersionV12 = "1.2"
)

// ChannelPath is one routed polyline of a connection (v1.2 "paths"):
// straight segments from Source through each waypoint to Sink. Multi-sink
// connections carry one path per arm.
type ChannelPath struct {
	// Source and Sink are the endpoint coordinates in µm.
	Source geom.Point
	Sink   geom.Point
	// Waypoints are the interior corners, in order.
	Waypoints []geom.Point
}

// Points returns source, waypoints, and sink as one polyline.
func (p *ChannelPath) Points() []geom.Point {
	out := make([]geom.Point, 0, 2+len(p.Waypoints))
	out = append(out, p.Source)
	out = append(out, p.Waypoints...)
	out = append(out, p.Sink)
	return out
}

// Length returns the Manhattan length of the polyline in µm.
func (p *ChannelPath) Length() int64 {
	pts := p.Points()
	var sum int64
	for i := 1; i < len(pts); i++ {
		sum += pts[i-1].Manhattan(pts[i])
	}
	return sum
}

// ValveType classifies a valve's resting state (v1.2 "valveTypeMap").
type ValveType string

// Valve types.
const (
	// ValveNormallyOpen valves pass fluid unless actuated.
	ValveNormallyOpen ValveType = "NORMALLY_OPEN"
	// ValveNormallyClosed valves block fluid unless actuated.
	ValveNormallyClosed ValveType = "NORMALLY_CLOSED"
)

// UsesV12 reports whether the device carries any v1.2-only content.
func (d *Device) UsesV12() bool {
	if len(d.ValveMap) > 0 || len(d.ValveTypes) > 0 {
		return true
	}
	for i := range d.Components {
		if len(d.Components[i].Params) > 0 {
			return true
		}
	}
	for i := range d.Connections {
		if len(d.Connections[i].Paths) > 0 {
			return true
		}
	}
	return false
}

// wirePath is the JSON v1.2 shape of one connection path.
type wirePath struct {
	Source    wirePoint  `json:"source"`
	Sink      wirePoint  `json:"sink"`
	Waypoints [][2]int64 `json:"wayPoints,omitempty"`
}

// MarshalJSON encodes the path in v1.2 wire shape.
func (p ChannelPath) MarshalJSON() ([]byte, error) {
	w := wirePath{
		Source: wirePoint{p.Source.X, p.Source.Y},
		Sink:   wirePoint{p.Sink.X, p.Sink.Y},
	}
	for _, pt := range p.Waypoints {
		w.Waypoints = append(w.Waypoints, [2]int64{pt.X, pt.Y})
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the v1.2 wire shape.
func (p *ChannelPath) UnmarshalJSON(data []byte) error {
	var w wirePath
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*p = ChannelPath{
		Source: geom.Pt(w.Source.X, w.Source.Y),
		Sink:   geom.Pt(w.Sink.X, w.Sink.Y),
	}
	for _, pt := range w.Waypoints {
		p.Waypoints = append(p.Waypoints, geom.Pt(pt[0], pt[1]))
	}
	return nil
}

// PathsFromFeatures derives v1.2 connection paths from routed channel
// features: consecutive collinear segments of each connection merge into
// polylines. Segments are chained greedily in feature order (the order
// the router emitted them), starting a new path whenever a segment does
// not continue the previous one — one path per routed sink arm.
func (d *Device) PathsFromFeatures() map[string][]ChannelPath {
	out := make(map[string][]ChannelPath)
	for i := range d.Features {
		f := &d.Features[i]
		if f.Kind != FeatureChannel || f.Connection == "" {
			continue
		}
		paths := out[f.Connection]
		if n := len(paths); n > 0 && paths[n-1].Sink == f.Source {
			// Continue the open path: the previous sink becomes a waypoint.
			paths[n-1].Waypoints = append(paths[n-1].Waypoints, f.Source)
			paths[n-1].Sink = f.Sink
		} else {
			paths = append(paths, ChannelPath{Source: f.Source, Sink: f.Sink})
		}
		out[f.Connection] = paths
	}
	return out
}

// AttachPaths fills every connection's Paths from its routed features,
// returning the number of connections that received paths.
func (d *Device) AttachPaths() int {
	paths := d.PathsFromFeatures()
	n := 0
	for i := range d.Connections {
		cn := &d.Connections[i]
		if p, ok := paths[cn.ID]; ok {
			cn.Paths = p
			n++
		}
	}
	return n
}

// SetValve records that the valve component actuates the given connection
// (v1.2 valveMap) with the given resting type.
func (d *Device) SetValve(valveID, connectionID string, t ValveType) error {
	ix := d.Index()
	if ix.Component(valveID) == nil {
		return fmt.Errorf("core: valve map references missing component %q", valveID)
	}
	if ix.Connection(connectionID) == nil {
		return fmt.Errorf("core: valve map references missing connection %q", connectionID)
	}
	if d.ValveMap == nil {
		d.ValveMap = make(map[string]string)
	}
	if d.ValveTypes == nil {
		d.ValveTypes = make(map[string]ValveType)
	}
	d.ValveMap[valveID] = connectionID
	d.ValveTypes[valveID] = t
	return nil
}
