package core

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

// testDevice builds a small two-layer device used across the package tests:
// in -> mixer -> valve -> out on the flow layer, with a control line from a
// control port to the valve.
func testDevice(t testing.TB) *Device {
	t.Helper()
	b := NewBuilder("unit-test-device")
	flow := b.FlowLayer()
	ctrl := b.ControlLayer()
	b.IOPort("in", flow, 200)
	b.IOPort("out", flow, 200)
	b.TwoPort("mix1", EntityMixer, flow, 2000, 1000)
	b.Component("v1", EntityValve, []string{flow, ctrl}, 300, 300,
		Port{Label: "port1", Layer: flow, X: 0, Y: 150},
		Port{Label: "port2", Layer: flow, X: 300, Y: 150},
		Port{Label: "ctl", Layer: ctrl, X: 150, Y: 0},
	)
	b.IOPort("cin", ctrl, 200)
	b.Connect("c1", flow, "in.port1", "mix1.port1")
	b.Connect("c2", flow, "mix1.port2", "v1.port1")
	b.Connect("c3", flow, "v1.port2", "out.port1")
	b.Connect("cc1", ctrl, "cin.port1", "v1.ctl")
	b.Param("channelWidth", 100)
	d, err := b.Build()
	if err != nil {
		t.Fatalf("building test device: %v", err)
	}
	return d
}

func TestDeviceStats(t *testing.T) {
	d := testDevice(t)
	s := d.Stats()
	want := Stats{Layers: 2, Components: 5, Connections: 4, Ports: 8, Sinks: 4}
	if s != want {
		t.Errorf("Stats = %+v, want %+v", s, want)
	}
}

func TestCountEntity(t *testing.T) {
	d := testDevice(t)
	if n := d.CountEntity(EntityPort); n != 3 {
		t.Errorf("PORT count = %d, want 3", n)
	}
	if n := d.CountEntity(EntityValve); n != 1 {
		t.Errorf("VALVE count = %d, want 1", n)
	}
	if n := d.CountEntity("NOPE"); n != 0 {
		t.Errorf("unknown entity count = %d, want 0", n)
	}
}

func TestPortByLabel(t *testing.T) {
	d := testDevice(t)
	ix := d.Index()
	v := ix.Component("v1")
	if v == nil {
		t.Fatal("v1 missing from index")
	}
	p, ok := v.PortByLabel("ctl")
	if !ok || p.Layer != "control" {
		t.Errorf("PortByLabel(ctl) = %+v, %v", p, ok)
	}
	if _, ok := v.PortByLabel("nope"); ok {
		t.Error("missing port should not resolve")
	}
}

func TestComponentFootprint(t *testing.T) {
	c := Component{XSpan: 100, YSpan: 50}
	fp := c.Footprint(geom.Pt(10, 20))
	if fp != geom.R(10, 20, 110, 70) {
		t.Errorf("Footprint = %v", fp)
	}
}

func TestConnectionTargets(t *testing.T) {
	c := Connection{
		Source: Target{Component: "a", Port: "p"},
		Sinks:  []Target{{Component: "b"}, {Component: "c", Port: "q"}},
	}
	ts := c.Targets()
	if len(ts) != 3 || ts[0].Component != "a" || ts[2].Port != "q" {
		t.Errorf("Targets = %+v", ts)
	}
}

func TestTargetString(t *testing.T) {
	if got := (Target{Component: "m", Port: "p"}).String(); got != "m.p" {
		t.Errorf("String = %q", got)
	}
	if got := (Target{Component: "m"}).String(); got != "m" {
		t.Errorf("portless String = %q", got)
	}
}

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in   string
		want Target
	}{
		{"mix1.port1", Target{Component: "mix1", Port: "port1"}},
		{"mix1", Target{Component: "mix1"}},
		{"a.b.port", Target{Component: "a.b", Port: "port"}}, // last dot wins
		{"", Target{}},
	}
	for _, c := range cases {
		if got := ParseTarget(c.in); got != c.want {
			t.Errorf("ParseTarget(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestFeatureKindString(t *testing.T) {
	if FeatureComponent.String() != "component" || FeatureChannel.String() != "channel" {
		t.Error("FeatureKind names wrong")
	}
	if got := FeatureKind(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestFeatureFootprint(t *testing.T) {
	comp := Feature{Kind: FeatureComponent, Location: geom.Pt(10, 10), XSpan: 100, YSpan: 50}
	if got := comp.Footprint(); got != geom.R(10, 10, 110, 60) {
		t.Errorf("component footprint = %v", got)
	}
	ch := Feature{Kind: FeatureChannel, Source: geom.Pt(5, 30), Sink: geom.Pt(50, 10)}
	if got := ch.Footprint(); got != geom.R(5, 10, 50, 30) {
		t.Errorf("channel footprint = %v", got)
	}
}

func TestParams(t *testing.T) {
	p := Params{"w": 100}
	if v, ok := p.Get("w"); !ok || v != 100 {
		t.Errorf("Get = %v,%v", v, ok)
	}
	if _, ok := p.Get("missing"); ok {
		t.Error("missing key should not resolve")
	}
	if v := p.GetDefault("missing", 42); v != 42 {
		t.Errorf("GetDefault = %v, want 42", v)
	}
	if v := p.GetDefault("w", 42); v != 100 {
		t.Errorf("GetDefault present = %v, want 100", v)
	}
}

func TestEntityVocabulary(t *testing.T) {
	if !IsKnownEntity(EntityMixer) || IsKnownEntity("BOGUS") {
		t.Error("IsKnownEntity misclassifies")
	}
	if !IsControlEntity(EntityValve) || !IsControlEntity(EntityPump) {
		t.Error("valves and pumps are control entities")
	}
	if IsControlEntity(EntityMixer) || IsControlEntity(EntityPort) {
		t.Error("mixers and ports are not control entities")
	}
	seen := map[string]bool{}
	for _, e := range KnownEntities() {
		if seen[e] {
			t.Errorf("duplicate entity %q in vocabulary", e)
		}
		seen[e] = true
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"duplicate layer", func(b *Builder) {
			b.FlowLayer()
			b.Layer("flow", "again", LayerFlow)
		}, "duplicate layer"},
		{"empty layer id", func(b *Builder) {
			b.Layer("", "x", LayerFlow)
		}, "empty id"},
		{"duplicate component", func(b *Builder) {
			f := b.FlowLayer()
			b.IOPort("p", f, 100)
			b.IOPort("p", f, 100)
		}, "duplicate component"},
		{"undeclared layer", func(b *Builder) {
			b.FlowLayer()
			b.IOPort("p", "nope", 100)
		}, "undeclared layer"},
		{"no layers", func(b *Builder) {
			b.Component("c", EntityMixer, nil, 10, 10)
		}, "no layers"},
		{"duplicate port label", func(b *Builder) {
			f := b.FlowLayer()
			b.Component("c", EntityMixer, []string{f}, 10, 10,
				Port{Label: "p", Layer: f}, Port{Label: "p", Layer: f})
		}, "duplicate port label"},
		{"undeclared source component", func(b *Builder) {
			f := b.FlowLayer()
			b.IOPort("a", f, 100)
			b.Connect("c", f, "ghost.port1", "a.port1")
		}, "undeclared component"},
		{"missing port", func(b *Builder) {
			f := b.FlowLayer()
			b.IOPort("a", f, 100)
			b.IOPort("z", f, 100)
			b.Connect("c", f, "a.nope", "z.port1")
		}, "missing port"},
		{"no sinks", func(b *Builder) {
			f := b.FlowLayer()
			b.IOPort("a", f, 100)
			b.Connect("c", f, "a.port1")
		}, "no sinks"},
		{"duplicate connection", func(b *Builder) {
			f := b.FlowLayer()
			b.IOPort("a", f, 100)
			b.IOPort("z", f, 100)
			b.Connect("c", f, "a.port1", "z.port1")
			b.Connect("c", f, "z.port1", "a.port1")
		}, "duplicate connection"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder("bad")
			c.build(b)
			_, err := b.Build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestBuilderComponentOnlyTarget(t *testing.T) {
	b := NewBuilder("d")
	f := b.FlowLayer()
	b.IOPort("a", f, 100)
	b.IOPort("z", f, 100)
	b.Connect("c", f, "a", "z") // component-only targets are legal
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d.Connections[0].Source.Port != "" {
		t.Error("component-only target should have empty port")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on error")
		}
	}()
	b := NewBuilder("bad")
	b.Layer("", "x", LayerFlow)
	b.MustBuild()
}

func TestBuilderParamsDroppedWhenEmpty(t *testing.T) {
	b := NewBuilder("d")
	b.FlowLayer()
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d.Params != nil {
		t.Error("empty params should be nil on built device")
	}
}
