package place

import (
	"math"

	"repro/internal/geom"
)

// overlapIndex is a uniform bucket grid over inflated component
// footprints. It answers the annealer's only spatial question — "which
// components can component k intrude on right now?" — by scanning the
// handful of buckets k's footprint touches instead of all n components.
//
// Correctness invariant: two footprints with non-zero intrusion overlap in
// device space, and the bucket mapping is monotone per axis, so they always
// share at least one bucket. Components are deduplicated per query with a
// generation stamp, and intrusion sums are int64 (order-independent), so
// the index returns bit-for-bit the totals of the quadratic scan it
// replaces — the determinism tests hold the annealer to that.
type overlapIndex struct {
	origin     geom.Point
	bucket     int64 // bucket side in µm
	cols, rows int
	buckets    [][]int32 // bucket -> indices of components whose rect touches it
	ranges     []bucketSpan
	lastSeen   []uint32 // component -> generation of the last query that saw it
	gen        uint32
}

// bucketSpan is an inclusive bucket-coordinate rectangle.
type bucketSpan struct {
	c0, r0, c1, r1 int32
}

// newOverlapIndex builds the index over the die for n components; rects
// are inserted afterwards via update as components gain origins.
func newOverlapIndex(die geom.Rect, n int) *overlapIndex {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	if side > 128 {
		side = 128
	}
	bucket := die.Dx() / int64(side)
	if bucket < 1 {
		bucket = 1
	}
	ix := &overlapIndex{
		origin:   die.Min,
		bucket:   bucket,
		cols:     side,
		rows:     side,
		buckets:  make([][]int32, side*side),
		ranges:   make([]bucketSpan, n),
		lastSeen: make([]uint32, n),
	}
	for i := range ix.ranges {
		ix.ranges[i] = bucketSpan{c0: 1, c1: 0} // empty: not inserted yet
	}
	return ix
}

// spanFor maps a device-space rectangle to the clamped bucket span it
// covers. The per-axis mapping is monotone, so overlapping rectangles map
// to overlapping spans even when they extend beyond the die.
func (ix *overlapIndex) spanFor(r geom.Rect) bucketSpan {
	clampC := func(v int64) int32 {
		b := v / ix.bucket
		if v < 0 {
			b = 0
		}
		if b < 0 {
			b = 0
		}
		if b >= int64(ix.cols) {
			b = int64(ix.cols) - 1
		}
		return int32(b)
	}
	clampR := func(v int64) int32 {
		b := v / ix.bucket
		if v < 0 {
			b = 0
		}
		if b < 0 {
			b = 0
		}
		if b >= int64(ix.rows) {
			b = int64(ix.rows) - 1
		}
		return int32(b)
	}
	// Max is exclusive; the last covered micrometer decides the end bucket.
	return bucketSpan{
		c0: clampC(r.Min.X - ix.origin.X),
		r0: clampR(r.Min.Y - ix.origin.Y),
		c1: clampC(r.Max.X - 1 - ix.origin.X),
		r1: clampR(r.Max.Y - 1 - ix.origin.Y),
	}
}

func (s bucketSpan) empty() bool { return s.c0 > s.c1 || s.r0 > s.r1 }

func (s bucketSpan) equal(o bucketSpan) bool { return s == o }

// update moves component k to cover rect r, editing only the buckets whose
// membership changes. Small displacements usually keep the same span and
// cost nothing.
func (ix *overlapIndex) update(k int, r geom.Rect) {
	old := ix.ranges[k]
	now := ix.spanFor(r)
	if old.equal(now) {
		return
	}
	if !old.empty() {
		for row := old.r0; row <= old.r1; row++ {
			for col := old.c0; col <= old.c1; col++ {
				b := int(row)*ix.cols + int(col)
				ix.removeFrom(b, int32(k))
			}
		}
	}
	for row := now.r0; row <= now.r1; row++ {
		for col := now.c0; col <= now.c1; col++ {
			b := int(row)*ix.cols + int(col)
			ix.buckets[b] = append(ix.buckets[b], int32(k))
		}
	}
	ix.ranges[k] = now
}

func (ix *overlapIndex) removeFrom(b int, k int32) {
	s := ix.buckets[b]
	for i, v := range s {
		if v == k {
			s[i] = s[len(s)-1]
			ix.buckets[b] = s[:len(s)-1]
			return
		}
	}
}

// nextGen advances the query generation, resetting stamps on the (in
// practice unreachable) wraparound.
func (ix *overlapIndex) nextGen() uint32 {
	ix.gen++
	if ix.gen == 0 {
		for i := range ix.lastSeen {
			ix.lastSeen[i] = 0
		}
		ix.gen = 1
	}
	return ix.gen
}

// overlapWith sums intrusion of component k against every other inserted
// component, visiting only k's buckets. rects[j] must hold each inserted
// component's current inflated footprint.
func (ix *overlapIndex) overlapWith(k int, rects []geom.Rect) int64 {
	span := ix.ranges[k]
	if span.empty() {
		return 0
	}
	gen := ix.nextGen()
	rk := rects[k]
	var total int64
	for row := span.r0; row <= span.r1; row++ {
		for col := span.c0; col <= span.c1; col++ {
			for _, j := range ix.buckets[int(row)*ix.cols+int(col)] {
				if int(j) == k || ix.lastSeen[j] == gen {
					continue
				}
				ix.lastSeen[j] = gen
				total += intrusion(rk, rects[j])
			}
		}
	}
	return total
}

// overlapAfter sums intrusion of component k against inserted components
// with a strictly greater index — the "each pair once" form totalOverlap
// needs.
func (ix *overlapIndex) overlapAfter(k int, rects []geom.Rect) int64 {
	span := ix.ranges[k]
	if span.empty() {
		return 0
	}
	gen := ix.nextGen()
	rk := rects[k]
	var total int64
	for row := span.r0; row <= span.r1; row++ {
		for col := span.c0; col <= span.c1; col++ {
			for _, j := range ix.buckets[int(row)*ix.cols+int(col)] {
				if int(j) <= k || ix.lastSeen[j] == gen {
					continue
				}
				ix.lastSeen[j] = gen
				total += intrusion(rk, rects[j])
			}
		}
	}
	return total
}
