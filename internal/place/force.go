package place

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
)

// ForceDirected is the quadratic-style engine: each iteration moves every
// component toward the centroid of the components it shares nets with
// (attractive force only), then the final layout is shelf-legalized. It
// sits between the greedy baseline and annealing in both cost and quality.
type ForceDirected struct{}

// Name identifies the engine.
func (ForceDirected) Name() string { return "force" }

// Iterations is the fixed relaxation count; convergence on suite-sized
// devices happens well before this.
const forceIterations = 60

// Place runs attraction relaxation followed by legalization, polling the
// context once per relaxation iteration.
func (ForceDirected) Place(ctx context.Context, d *core.Device, opts Options) (*Placement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	die := DieFor(d, opts.utilization())
	p, err := greedyPlace(d, die)
	if err != nil {
		return nil, err
	}
	if len(d.Components) < 2 {
		return p, nil
	}

	// Adjacency with multiplicity: components sharing several nets attract
	// proportionally harder.
	adj := make(map[string][]string)
	for i := range d.Connections {
		cn := &d.Connections[i]
		for _, s := range cn.Sinks {
			if s.Component == cn.Source.Component {
				continue
			}
			adj[cn.Source.Component] = append(adj[cn.Source.Component], s.Component)
			adj[s.Component] = append(adj[s.Component], cn.Source.Component)
		}
	}

	// Anchor the periphery: chip IO ports stay where greedy put them so the
	// relaxation cannot collapse everything to one centroid.
	anchored := make(map[string]bool)
	for i := range d.Components {
		if d.Components[i].Entity == core.EntityPort {
			anchored[d.Components[i].ID] = true
		}
	}

	centers := make(map[string]geom.Point, len(d.Components))
	for i := range d.Components {
		c := &d.Components[i]
		if r, ok := p.Footprint(c); ok {
			centers[c.ID] = r.Center()
		}
	}

	ids := make([]string, 0, len(centers))
	for id := range centers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for iter := 0; iter < forceIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next := make(map[string]geom.Point, len(centers))
		for _, id := range ids {
			cur := centers[id]
			nbs := adj[id]
			if anchored[id] || len(nbs) == 0 {
				next[id] = cur
				continue
			}
			var sx, sy int64
			for _, nb := range nbs {
				np, ok := centers[nb]
				if !ok {
					np = cur
				}
				sx += np.X
				sy += np.Y
			}
			target := geom.Pt(sx/int64(len(nbs)), sy/int64(len(nbs)))
			// Move halfway toward the neighborhood centroid: damped update
			// keeps the relaxation stable.
			next[id] = geom.Pt(cur.X+(target.X-cur.X)/2, cur.Y+(target.Y-cur.Y)/2)
		}
		centers = next
	}

	// Convert centers back to origins, clamped to the die.
	relaxed := &Placement{Device: d, Die: die, Origins: make(map[string]geom.Point, len(centers))}
	for i := range d.Components {
		c := &d.Components[i]
		ctr, ok := centers[c.ID]
		if !ok {
			continue
		}
		o := geom.Pt(ctr.X-c.XSpan/2, ctr.Y-c.YSpan/2)
		o = clampToDie(o, c, die)
		relaxed.Origins[c.ID] = o
	}
	legal := Legalize(relaxed)
	if err := CheckLegal(legal); err != nil {
		return nil, err
	}
	return legal, nil
}

func clampToDie(o geom.Point, c *core.Component, die geom.Rect) geom.Point {
	maxX := die.Max.X - c.XSpan
	maxY := die.Max.Y - c.YSpan
	if o.X < die.Min.X {
		o.X = die.Min.X
	}
	if o.Y < die.Min.Y {
		o.Y = die.Min.Y
	}
	if o.X > maxX {
		o.X = maxX
	}
	if o.Y > maxY {
		o.Y = maxY
	}
	return o
}
