package place

import (
	"context"

	"repro/internal/core"
	"repro/internal/geom"
)

// Greedy is the baseline engine: it shelf-packs components onto the die in
// connectivity (BFS) order, with no optimization. It is deterministic,
// runs in linear time, and gives the comparison floor the annealing and
// force-directed engines are measured against.
type Greedy struct{}

// Name identifies the engine.
func (Greedy) Name() string { return "greedy" }

// Place packs the components onto shelves in BFS order. The constructive
// pass is single-shot, so the context is only checked on entry.
func (Greedy) Place(ctx context.Context, d *core.Device, opts Options) (*Placement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return greedyPlace(d, DieFor(d, opts.utilization()))
}

// greedyPlace shelf-packs in BFS order; the randomized engines also use it
// as their legal starting point.
func greedyPlace(d *core.Device, die geom.Rect) (*Placement, error) {
	p := &Placement{Device: d, Die: die, Origins: make(map[string]geom.Point, len(d.Components))}
	var x, y, shelfH int64
	for _, c := range orderedComponents(d) {
		w := c.XSpan + Spacing
		h := c.YSpan + Spacing
		if x > 0 && x+w > die.Dx() {
			x = 0
			y += shelfH
			shelfH = 0
		}
		p.Origins[c.ID] = geom.Pt(die.Min.X+x+Spacing/2, die.Min.Y+y+Spacing/2)
		x += w
		if h > shelfH {
			shelfH = h
		}
	}
	if err := CheckLegal(p); err != nil {
		return nil, err
	}
	return p, nil
}
