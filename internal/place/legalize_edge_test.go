package place

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// The int-indexed anneal state and the bucket overlap index are built from
// whatever Legalize/CheckLegal accept, so the degenerate shapes — no
// components, one component, components wider than the die — must flow
// through placement, legalization, and the legality gate without panics
// or overlaps.

func TestLegalizeZeroComponentDevice(t *testing.T) {
	b := core.NewBuilder("empty")
	b.FlowLayer()
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Legalize with no die set must still produce a checkable placement.
	p := &Placement{Device: d, Origins: map[string]geom.Point{}}
	legal := Legalize(p)
	if err := CheckLegal(legal); err != nil {
		t.Fatalf("zero-component CheckLegal: %v", err)
	}
	if len(legal.Origins) != 0 {
		t.Errorf("origins = %v, want none", legal.Origins)
	}
	for _, eng := range Engines() {
		pl, err := eng.Place(context.Background(), d, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s on empty device: %v", eng.Name(), err)
		}
		if err := CheckLegal(pl); err != nil {
			t.Errorf("%s: %v", eng.Name(), err)
		}
	}
}

func TestLegalizeSingleComponent(t *testing.T) {
	b := core.NewBuilder("one")
	flow := b.FlowLayer()
	b.TwoPort("mix", "MIXER", flow, 2000, 1500)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := &Placement{Device: d, Die: DieFor(d, 0.35),
		Origins: map[string]geom.Point{"mix": geom.Pt(-5000, 99999)}}
	legal := Legalize(p)
	if err := CheckLegal(legal); err != nil {
		t.Fatalf("single-component CheckLegal: %v", err)
	}
	if len(legal.Origins) != 1 {
		t.Fatalf("origins = %v", legal.Origins)
	}
}

// wideDevice has one component much wider than the die DieFor derives
// from total area, plus a few regular components to force shelf overflow
// handling around the oversized one.
func wideDevice(t *testing.T) *core.Device {
	t.Helper()
	b := core.NewBuilder("wide")
	flow := b.FlowLayer()
	b.TwoPort("slab", "MIXER", flow, 120000, 200)
	b.IOPort("in", flow, 200)
	b.IOPort("out", flow, 200)
	b.TwoPort("m2", "MIXER", flow, 1500, 1500)
	b.Connect("n1", flow, "in.port1", "slab.port1")
	b.Connect("n2", flow, "slab.port2", "m2.port1")
	b.Connect("n3", flow, "m2.port2", "out.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLegalizeComponentWiderThanDie(t *testing.T) {
	d := wideDevice(t)
	die := DieFor(d, 0.35)
	if die.Dx() >= 120000 {
		t.Fatalf("die %v unexpectedly fits the slab; fixture broken", die)
	}
	p := &Placement{Device: d, Die: die, Origins: map[string]geom.Point{}}
	for i := range d.Components {
		p.Origins[d.Components[i].ID] = geom.Pt(0, 0)
	}
	legal := Legalize(p)
	if err := CheckLegal(legal); err != nil {
		t.Fatalf("wider-than-die CheckLegal: %v", err)
	}
}

func TestAnnealHandlesComponentWiderThanDie(t *testing.T) {
	// The annealer's proposal clamp (die.Max.X - XSpan < die.Min.X) and
	// the overlap index's span clamping both see out-of-die rectangles
	// here; the result must still be legal and seed-deterministic.
	d := wideDevice(t)
	a, err := (Annealer{}).Place(context.Background(), d, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLegal(a); err != nil {
		t.Fatal(err)
	}
	b, err := (Annealer{}).Place(context.Background(), d, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for id, o := range a.Origins {
		if b.Origins[id] != o {
			t.Fatalf("component %s moved between identical runs: %v vs %v", id, o, b.Origins[id])
		}
	}
}

func TestCheckLegalZeroAndSingle(t *testing.T) {
	// CheckLegal over the degenerate sizes the int-indexed state must
	// accept: zero components is trivially legal, one unplaced component
	// is not.
	empty := &Placement{Device: &core.Device{}, Origins: map[string]geom.Point{}}
	if err := CheckLegal(empty); err != nil {
		t.Errorf("zero-component device: %v", err)
	}
	b := core.NewBuilder("s")
	flow := b.FlowLayer()
	b.IOPort("p", flow, 100)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	unplaced := &Placement{Device: d, Origins: map[string]geom.Point{}}
	if err := CheckLegal(unplaced); err == nil {
		t.Error("unplaced single component should fail CheckLegal")
	}
}
