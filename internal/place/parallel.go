// Multi-replica parallel tempering for the annealer. N replicas split
// each temperature level's move budget, run concurrently between level
// barriers, and exchange states by the deterministic parallel-tempering
// rule at every barrier. The winning placement is a pure function of
// (device, options, seed, N): per-replica randomness derives from the
// base seed by replica index (par.DeriveSeed), the exchange decisions
// come from a dedicated stream consumed in a fixed order, and the final
// selection ranks replicas by best cost with ties broken by replica
// index — never by goroutine completion order. Worker count only changes
// wall-clock time, which is what the determinism hammer asserts.
package place

import (
	"context"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/xrand"
)

// replicaHeatStep spreads the tempering ladder: slot r anneals at
// temp*(1 + replicaHeatStep*r), so higher slots explore hotter copies of
// the landscape and the exchange rule migrates good states toward the
// cold slot.
const replicaHeatStep = 0.5

// slotTemp is slot r's temperature at base-ladder temperature temp.
func slotTemp(temp float64, r int) float64 {
	return temp * (1 + replicaHeatStep*float64(r))
}

// replicaSeed derives replica i's seed from the schedule seed — the same
// DeriveSeed rule the runner pool uses, so a replica's random stream is a
// pure function of (seed, i).
func replicaSeed(seed uint64, i int) uint64 {
	return par.DeriveSeed(seed, "replica:"+strconv.Itoa(i))
}

// annealParallel runs the multi-replica schedule. The caller resolved the
// knobs and handles the trivial cases; len(d.Components) >= 2 here.
func annealParallel(ctx context.Context, d *core.Device, start *Placement, opts Options, cooling float64, movesPerTemp int, initialAccept float64) (*Placement, error) {
	n := opts.replicas()
	states := make([]*annealState, n)
	for i := range states {
		st := newAnnealState(d, start, replicaSeed(opts.Seed, i))
		st.replica = i
		st.replicaLabel = strconv.Itoa(i)
		states[i] = st
	}

	// Fan-out width comes from the context's CPU budget when one is
	// attached (nested under the request gate); otherwise the full replica
	// count. Width never influences the result.
	workers, release := par.AcquireWorkers(ctx, n)
	defer release()

	ctx, sp := obs.Start(ctx, "place.replicas")
	sp.SetAttr("replicas", n)
	sp.SetAttr("workers", workers)
	defer sp.End()
	spans := make([]*obs.Span, n)
	for i := range spans {
		_, spans[i] = obs.Start(ctx, "place.replica."+strconv.Itoa(i))
	}
	rec := obs.FromContext(ctx)

	// Each replica calibrates its own starting temperature from its own
	// random stream; the shared ladder starts at the deterministic maximum
	// so even the coldest slot opens hot enough for every replica.
	calib := make([]float64, n)
	par.ForEach(workers, n, func(i int) {
		st := states[i]
		calib[i] = st.calibrateTemperature(initialAccept)
		st.window = st.die.Dx()
		st.bestCost = st.cost
		st.syncBest()
	})
	baseTemp := calib[0]
	for _, c := range calib[1:] {
		if c > baseTemp {
			baseTemp = c
		}
	}

	// The level budget splits across slots; low slots absorb the
	// remainder so the total per level equals the sequential schedule's
	// movesPerTemp exactly (the Moves counter stays comparable).
	shares := make([]int, n)
	for r := range shares {
		shares[r] = movesPerTemp / n
		if r < movesPerTemp%n {
			shares[r]++
		}
	}

	// The exchange stream is separate from every replica stream and is
	// consumed in a fixed pair order each barrier, so its draws depend
	// only on (seed, level index).
	exRng := xrand.New(par.DeriveSeed(opts.Seed, "exchange"))
	slots := make([]*annealState, n)
	copy(slots, states)
	accepted := make([]int, n)
	errs := make([]error, n)
	moves := 0
	for level, temp := 0, baseTemp; temp > defaultFinalTemp; level, temp = level+1, temp*cooling {
		par.ForEach(workers, n, func(r int) {
			accepted[r], errs[r] = slots[r].runMoves(ctx, rec, slotTemp(temp, r), shares[r])
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		moves += movesPerTemp
		for r := range slots {
			slots[r].adaptWindow(accepted[r], shares[r])
		}
		// Deterministic replica exchange between adjacent slots, parity
		// alternating by level (classic even-odd sweep). The Metropolis
		// draw is taken for every considered pair, accepted or not, so
		// stream position is a function of the level index alone.
		for r := level % 2; r+1 < n; r += 2 {
			u := exRng.Float64()
			arg := (1/slotTemp(temp, r) - 1/slotTemp(temp, r+1)) * (slots[r].cost - slots[r+1].cost)
			if arg >= 0 || u < math.Exp(arg) {
				slots[r], slots[r+1] = slots[r+1], slots[r]
			}
		}
	}

	// Rank-based selection: the lowest best cost wins, ties to the lowest
	// replica index. Iterating creation order with a strict < implements
	// the tie-break exactly.
	winner := states[0]
	for _, st := range states[1:] {
		if st.bestCost < winner.bestCost {
			winner = st
		}
	}
	for i, s := range spans {
		s.SetAttr("best_cost", states[i].bestCost)
		s.End()
	}

	legal := Legalize(winner.materializeBest())
	if err := CheckLegal(legal); err != nil {
		return nil, err
	}
	legal.Moves = moves
	// Same floor as the sequential schedule: never return a result worse
	// than the legal greedy start.
	if Evaluate(legal).HPWL >= Evaluate(start).HPWL {
		start.Moves = moves
		return start, nil
	}
	return legal, nil
}
