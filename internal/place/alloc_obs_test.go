package place

import (
	"testing"

	"repro/internal/obs"
)

// The telemetry hooks of PR 4 sit inside the move loop PR 3 made
// allocation-free. With no recorder on the context they must stay free:
// this guard fails if the disabled-telemetry path ever starts allocating.
func TestMoveKernelAllocFreeWithoutTelemetry(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc guard is meaningless under -race")
	}
	d := benchDevice(t, "rotary_pcr")
	die := DieFor(d, 0.35)
	start, err := greedyPlace(d, die)
	if err != nil {
		t.Fatal(err)
	}
	st := newAnnealState(d, start, 1)
	st.window = die.Dx()
	// The kernel amortizes rare slice growth (dirty set, overlap buckets);
	// warm it first, then require a near-zero steady state.
	for i := 0; i < 2000; i++ {
		st.tryMove(1000)
	}
	avg := testing.AllocsPerRun(2000, func() { st.tryMove(1000) })
	if avg >= 1 {
		t.Fatalf("tryMove allocates %.2f allocs/op with telemetry disabled, want < 1", avg)
	}
}

// BenchmarkAnnealMovesNoTelemetry is the tracked disabled-path number: the
// same kernel as BenchmarkAnnealMoves, named so the comparison against a
// telemetry-enabled context is explicit in benchmark output.
func BenchmarkAnnealMovesNoTelemetry(b *testing.B) {
	d := benchDevice(b, "rotary_pcr")
	die := DieFor(d, 0.35)
	start, err := greedyPlace(d, die)
	if err != nil {
		b.Fatal(err)
	}
	st := newAnnealState(d, start, 1)
	st.window = die.Dx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.tryMove(1000)
	}
}
