package place

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/xrand"
)

// Annealer is the simulated-annealing engine. Starting from the greedy
// placement, it explores displacement and swap moves under a geometric
// cooling schedule, minimizing HPWL plus an overlap penalty, and finishes
// with shelf legalization. This mirrors the placer of the Fluigi CAD flow
// the paper's benchmarks were designed to exercise.
type Annealer struct{}

// Name identifies the engine.
func (Annealer) Name() string { return "anneal" }

// Default annealing parameters; Options may override each.
const (
	defaultCoolingRate   = 0.95
	defaultInitialAccept = 0.8
	defaultFinalTemp     = 0.1
	// overlapWeight converts overlapped µm of bounding-box intrusion into
	// cost units comparable with HPWL µm.
	overlapWeight = 4
)

// MoveBatch is the annealer's cancellation granularity: the context is
// polled every MoveBatch proposed moves, so a cancelled request aborts
// within at most one batch of extra work. The batch bounds the poll
// overhead without letting a runaway schedule outlive its request.
const MoveBatch = 64

// pinRef is one resolved connection endpoint: the component's slice index
// plus the port's offset from the component origin. Resolution is static
// for a device, so it happens once at state construction instead of once
// per HPWL recomputation.
type pinRef struct {
	comp int32
	off  geom.Point
}

// annealState carries the incremental cost bookkeeping. Everything the
// move kernel touches is int-indexed: origins, inflated footprints, and
// net membership live in slices rebuilt from the start placement's
// Origins map at construction, so proposing a move does no map lookups
// and no allocation.
type annealState struct {
	device *core.Device
	comps  []*core.Component
	die    geom.Rect
	// origins/placed/infl mirror Placement.Origins by component index;
	// infl caches the Spacing/2-inflated footprint the overlap cost uses.
	origins []geom.Point
	placed  []bool
	infl    []geom.Rect
	// ovl answers overlap queries from the buckets k's footprint touches
	// instead of scanning all n components.
	ovl *overlapIndex
	// netHPWL caches each connection's current HPWL.
	netHPWL []int64
	// netsOf maps component index to indices of nets touching it.
	netsOf [][]int32
	// pins holds each net's resolved endpoints.
	pins [][]pinRef
	cost float64
	rng  *xrand.Source
	// window bounds displacement proposals around a component's current
	// position; adapted per temperature level.
	window int64
	// Best-so-far tracking. Instead of deep-cloning the placement on every
	// improving move, bestOrigins lags origins by exactly the dirty set —
	// the components moved since the last best — and an improvement syncs
	// only those. materializeBest builds the one Placement the schedule
	// returns.
	bestCost    float64
	bestOrigins []geom.Point
	bestPlaced  []bool
	dirty       []int32
	isDirty     []bool
	// replica identifies this state in multi-replica runs (-1 for the
	// classic single-replica schedule); replicaLabel is its pre-rendered
	// metric label so the batch flush does no conversions.
	replica      int
	replicaLabel string
}

// Place runs the annealing schedule and returns a legalized placement.
// Cancelling ctx aborts the schedule within one MoveBatch of moves.
func (Annealer) Place(ctx context.Context, d *core.Device, opts Options) (*Placement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	die := DieFor(d, opts.utilization())
	start, err := greedyPlace(d, die)
	if err != nil {
		return nil, err
	}
	if len(d.Components) < 2 {
		return start, nil
	}

	cooling := opts.CoolingRate
	if cooling <= 0 || cooling >= 1 {
		cooling = defaultCoolingRate
	}
	movesPerTemp := opts.MovesPerTemp
	if movesPerTemp <= 0 {
		n := len(d.Components)
		movesPerTemp = 10 * n
	}
	initialAccept := opts.InitialAccept
	if initialAccept <= 0 || initialAccept >= 1 {
		initialAccept = defaultInitialAccept
	}
	if opts.replicas() > 1 {
		return annealParallel(ctx, d, start, opts, cooling, movesPerTemp, initialAccept)
	}

	st := newAnnealState(d, start, opts.Seed)
	temp := st.calibrateTemperature(initialAccept)
	// Displacement window shrinks adaptively (VPR-style): target ~44%%
	// acceptance by narrowing proposals as the schedule cools.
	st.window = die.Dx()
	// Calibration proposed and undid moves; re-anchor the best snapshot on
	// the restored state.
	st.bestCost = st.cost
	st.syncBest()
	// Telemetry rides the MoveBatch poll points: deltas since the last
	// flush go to the recorder, which is a nil no-op when disabled. The
	// recorder only reads the schedule — it never feeds it — so outputs are
	// identical with telemetry on or off.
	rec := obs.FromContext(ctx)
	moves := 0
	for temp > defaultFinalTemp {
		accepted, err := st.runMoves(ctx, rec, temp, movesPerTemp)
		if err != nil {
			return nil, err
		}
		moves += movesPerTemp
		st.adaptWindow(accepted, movesPerTemp)
		temp *= cooling
	}

	legal := Legalize(st.materializeBest())
	if err := CheckLegal(legal); err != nil {
		return nil, err
	}
	legal.Moves = moves
	// Legalization can cost back some of the annealer's gains; never
	// return a result worse than the legal greedy start.
	if Evaluate(legal).HPWL >= Evaluate(start).HPWL {
		start.Moves = moves
		return start, nil
	}
	return legal, nil
}

// runMoves proposes n moves at the given temperature — the one move loop
// both the classic schedule and every parallel-tempering replica run. The
// context is polled and telemetry deltas flush at MoveBatch boundaries;
// best-so-far tracking folds in after every accepted improvement. Returns
// the accepted count, or the context's error if the schedule was
// cancelled mid-level.
func (st *annealState) runMoves(ctx context.Context, rec *obs.Recorder, temp float64, n int) (int, error) {
	accepted := 0
	flushedMoves, flushedAccepted := 0, 0
	for m := 0; m < n; m++ {
		if m%MoveBatch == 0 {
			if m > 0 {
				st.flushBatch(rec, temp, m-flushedMoves, accepted-flushedAccepted)
				flushedMoves, flushedAccepted = m, accepted
			}
			if err := ctx.Err(); err != nil {
				return accepted, err
			}
		}
		if st.tryMove(temp) {
			accepted++
		}
		if st.cost < st.bestCost {
			st.bestCost = st.cost
			st.syncBest()
		}
	}
	st.flushBatch(rec, temp, n-flushedMoves, accepted-flushedAccepted)
	return accepted, nil
}

// flushBatch reports one batch of schedule work to the recorder: the
// aggregate series for the classic schedule, the per-replica series for
// parallel-tempering states.
func (st *annealState) flushBatch(rec *obs.Recorder, temp float64, moves, accepted int) {
	if st.replica < 0 {
		rec.AnnealBatch(temp, moves, accepted)
		return
	}
	rec.AnnealReplicaBatch(st.replicaLabel, temp, moves, accepted)
}

// adaptWindow updates the displacement window from one temperature
// level's acceptance rate, targeting ~44% acceptance (VPR-style),
// clamped to [4*Spacing, die width].
func (st *annealState) adaptWindow(accepted, n int) {
	if n <= 0 {
		return
	}
	rate := float64(accepted) / float64(n)
	if rate < 0.44 {
		st.window = st.window * 9 / 10
	} else {
		st.window = st.window * 11 / 10
	}
	if st.window < 4*Spacing {
		st.window = 4 * Spacing
	}
	if st.window > st.die.Dx() {
		st.window = st.die.Dx()
	}
}

func newAnnealState(d *core.Device, start *Placement, seed uint64) *annealState {
	n := len(d.Components)
	st := &annealState{
		device:  d,
		die:     start.Die,
		rng:     xrand.New(seed ^ 0x5A5A_1234),
		replica: -1,
	}
	st.comps = make([]*core.Component, n)
	compIdx := make(map[string]int32, n)
	for i := range d.Components {
		st.comps[i] = &d.Components[i]
		compIdx[d.Components[i].ID] = int32(i)
	}
	st.origins = make([]geom.Point, n)
	st.placed = make([]bool, n)
	st.infl = make([]geom.Rect, n)
	st.ovl = newOverlapIndex(st.die, n)
	for i, c := range st.comps {
		if o, ok := start.Origins[c.ID]; ok {
			st.origins[i] = o
			st.placed[i] = true
			st.infl[i] = c.Footprint(o).Inflate(Spacing / 2)
			st.ovl.update(i, st.infl[i])
		}
	}
	ix := d.Index()
	st.netsOf = make([][]int32, n)
	st.pins = make([][]pinRef, len(d.Connections))
	st.netHPWL = make([]int64, len(d.Connections))
	for i := range d.Connections {
		cn := &d.Connections[i]
		for _, t := range cn.Targets() {
			c, port, ok := ix.ResolveTarget(t)
			if !ok {
				continue
			}
			k, ok := compIdx[c.ID]
			if !ok {
				continue
			}
			st.pins[i] = append(st.pins[i], pinRef{comp: k, off: port.Point()})
			st.netsOf[k] = append(st.netsOf[k], int32(i))
		}
		st.netHPWL[i] = st.netHPWLOf(i)
	}
	st.cost = st.fullCost()
	st.bestCost = st.cost
	st.bestOrigins = append([]geom.Point(nil), st.origins...)
	st.bestPlaced = append([]bool(nil), st.placed...)
	st.isDirty = make([]bool, n)
	return st
}

// netHPWLOf recomputes one net's half-perimeter wire length from the
// int-indexed origins — the allocation-free replacement for
// geom.HPWL(netPins(...)). Pins on unplaced components are skipped, like
// PortPosition's ok=false.
func (st *annealState) netHPWLOf(ni int) int64 {
	var minX, minY, maxX, maxY int64
	pins := 0
	for _, pr := range st.pins[ni] {
		if !st.placed[pr.comp] {
			continue
		}
		o := st.origins[pr.comp]
		x := o.X + pr.off.X
		y := o.Y + pr.off.Y
		if pins == 0 {
			minX, maxX, minY, maxY = x, x, y, y
		} else {
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
		pins++
	}
	if pins < 2 {
		return 0
	}
	return (maxX - minX) + (maxY - minY)
}

// markDirty records that component k's origin diverged from the best
// snapshot.
func (st *annealState) markDirty(k int) {
	if !st.isDirty[k] {
		st.isDirty[k] = true
		st.dirty = append(st.dirty, int32(k))
	}
}

// syncBest folds the dirty set into the best snapshot.
func (st *annealState) syncBest() {
	for _, k := range st.dirty {
		st.bestOrigins[k] = st.origins[k]
		st.bestPlaced[k] = st.placed[k]
		st.isDirty[k] = false
	}
	st.dirty = st.dirty[:0]
}

// materializeBest builds the Placement of the best state seen — the one
// per-schedule allocation that replaces a Clone per improving move.
func (st *annealState) materializeBest() *Placement {
	p := &Placement{
		Device:  st.device,
		Die:     st.die,
		Origins: make(map[string]geom.Point, len(st.comps)),
	}
	for i, c := range st.comps {
		if st.bestPlaced[i] {
			p.Origins[c.ID] = st.bestOrigins[i]
		}
	}
	return p
}

// fullCost recomputes cost from scratch: total HPWL + overlap penalty.
func (st *annealState) fullCost() float64 {
	var hpwl int64
	for _, h := range st.netHPWL {
		hpwl += h
	}
	return float64(hpwl) + overlapWeight*float64(st.totalOverlap())
}

// totalOverlap sums pairwise footprint intrusion depth, in µm. Each
// unordered pair is counted once via the bucket index's index-ordered
// query.
func (st *annealState) totalOverlap() int64 {
	var total int64
	for i := range st.comps {
		if !st.placed[i] {
			continue
		}
		total += st.ovl.overlapAfter(i, st.infl)
	}
	return total
}

// overlapWith sums the intrusion of component k against all others,
// consulting only the buckets k's inflated footprint touches.
func (st *annealState) overlapWith(k int) int64 {
	if !st.placed[k] {
		return 0
	}
	return st.ovl.overlapWith(k, st.infl)
}

// intrusion measures how deeply two rectangles interpenetrate: the
// semi-perimeter of their intersection. Unlike raw intersection area it
// keeps gradients meaningful for thin slivers.
func intrusion(a, b geom.Rect) int64 {
	x := a.Intersect(b)
	if x.Empty() {
		return 0
	}
	return x.Dx() + x.Dy()
}

// calibrateTemperature samples random moves to find the cost-delta scale,
// then sets T0 so the target fraction of uphill moves is accepted.
func (st *annealState) calibrateTemperature(accept float64) float64 {
	const samples = 50
	var sum float64
	n := 0
	for i := 0; i < samples; i++ {
		k := st.rng.Intn(len(st.comps))
		old := st.origins[k]
		delta := st.applyDisplace(k, st.randomOrigin(k))
		if delta > 0 {
			sum += delta
			n++
		}
		// Undo.
		st.applyDisplace(k, old)
	}
	if n == 0 {
		return 1000
	}
	meanUp := sum / float64(n)
	return -meanUp / math.Log(accept)
}

// randomOrigin proposes a new origin for component k within the current
// displacement window of its present position, clamped to the die.
func (st *annealState) randomOrigin(k int) geom.Point {
	die := st.die
	w := st.window
	if w <= 0 {
		w = die.Dx()
	}
	c := st.comps[k]
	cur := st.origins[k]
	x := cur.X + st.rng.Int63n(2*w+1) - w
	y := cur.Y + st.rng.Int63n(2*w+1) - w
	maxX := die.Max.X - c.XSpan
	maxY := die.Max.Y - c.YSpan
	if x < die.Min.X {
		x = die.Min.X
	}
	if y < die.Min.Y {
		y = die.Min.Y
	}
	if x > maxX {
		x = maxX
	}
	if y > maxY {
		y = maxY
	}
	return geom.Pt(x, y)
}

// applyDisplace moves component k to origin o, updates the incremental
// cost, and returns the cost delta.
func (st *annealState) applyDisplace(k int, o geom.Point) float64 {
	c := st.comps[k]
	beforeOverlap := st.overlapWith(k)
	var beforeHPWL int64
	for _, ni := range st.netsOf[k] {
		beforeHPWL += st.netHPWL[ni]
	}
	st.origins[k] = o
	st.placed[k] = true
	st.infl[k] = c.Footprint(o).Inflate(Spacing / 2)
	st.ovl.update(k, st.infl[k])
	afterOverlap := st.overlapWith(k)
	var afterHPWL int64
	for _, ni := range st.netsOf[k] {
		h := st.netHPWLOf(int(ni))
		st.netHPWL[ni] = h
		afterHPWL += h
	}
	delta := float64(afterHPWL-beforeHPWL) + overlapWeight*float64(afterOverlap-beforeOverlap)
	st.cost += delta
	st.markDirty(k)
	return delta
}

// applySwap exchanges the origins of components a and b and returns the
// cost delta.
func (st *annealState) applySwap(a, b int) float64 {
	oa := st.origins[a]
	ob := st.origins[b]
	d1 := st.applyDisplace(a, ob)
	d2 := st.applyDisplace(b, oa)
	return d1 + d2
}

// tryMove proposes one move and keeps it per the Metropolis criterion,
// reporting whether the move was accepted.
func (st *annealState) tryMove(temp float64) bool {
	if st.rng.Intn(2) == 0 {
		k := st.rng.Intn(len(st.comps))
		old := st.origins[k]
		delta := st.applyDisplace(k, st.randomOrigin(k))
		if !st.accept(delta, temp) {
			st.applyDisplace(k, old)
			return false
		}
		return true
	}
	a := st.rng.Intn(len(st.comps))
	b := st.rng.Intn(len(st.comps) - 1)
	if b >= a {
		b++
	}
	delta := st.applySwap(a, b)
	if !st.accept(delta, temp) {
		st.applySwap(a, b)
		return false
	}
	return true
}

func (st *annealState) accept(delta, temp float64) bool {
	if delta <= 0 {
		return true
	}
	return st.rng.Float64() < math.Exp(-delta/temp)
}
