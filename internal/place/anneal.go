package place

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// Annealer is the simulated-annealing engine. Starting from the greedy
// placement, it explores displacement and swap moves under a geometric
// cooling schedule, minimizing HPWL plus an overlap penalty, and finishes
// with shelf legalization. This mirrors the placer of the Fluigi CAD flow
// the paper's benchmarks were designed to exercise.
type Annealer struct{}

// Name identifies the engine.
func (Annealer) Name() string { return "anneal" }

// Default annealing parameters; Options may override each.
const (
	defaultCoolingRate   = 0.95
	defaultInitialAccept = 0.8
	defaultFinalTemp     = 0.1
	// overlapWeight converts overlapped µm of bounding-box intrusion into
	// cost units comparable with HPWL µm.
	overlapWeight = 4
)

// MoveBatch is the annealer's cancellation granularity: the context is
// polled every MoveBatch proposed moves, so a cancelled request aborts
// within at most one batch of extra work. The batch bounds the poll
// overhead without letting a runaway schedule outlive its request.
const MoveBatch = 64

// annealState carries the incremental cost bookkeeping.
type annealState struct {
	device *core.Device
	ix     *core.Index
	comps  []*core.Component
	// netHPWL caches each connection's current HPWL.
	netHPWL []int64
	// netsOf maps component ID to indices of nets touching it.
	netsOf map[string][]int
	place  *Placement
	cost   float64
	rng    *xrand.Source
	// window bounds displacement proposals around a component's current
	// position; adapted per temperature level.
	window int64
}

// Place runs the annealing schedule and returns a legalized placement.
// Cancelling ctx aborts the schedule within one MoveBatch of moves.
func (Annealer) Place(ctx context.Context, d *core.Device, opts Options) (*Placement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	die := DieFor(d, opts.utilization())
	start, err := greedyPlace(d, die)
	if err != nil {
		return nil, err
	}
	if len(d.Components) < 2 {
		return start, nil
	}

	st := newAnnealState(d, start, opts.Seed)
	cooling := opts.CoolingRate
	if cooling <= 0 || cooling >= 1 {
		cooling = defaultCoolingRate
	}
	movesPerTemp := opts.MovesPerTemp
	if movesPerTemp <= 0 {
		n := len(d.Components)
		movesPerTemp = 10 * n
	}
	initialAccept := opts.InitialAccept
	if initialAccept <= 0 || initialAccept >= 1 {
		initialAccept = defaultInitialAccept
	}

	temp := st.calibrateTemperature(initialAccept)
	// Displacement window shrinks adaptively (VPR-style): target ~44%%
	// acceptance by narrowing proposals as the schedule cools.
	st.window = die.Dx()
	best := st.place.Clone()
	bestCost := st.cost
	moves := 0
	for temp > defaultFinalTemp {
		accepted := 0
		for m := 0; m < movesPerTemp; m++ {
			if m%MoveBatch == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if st.tryMove(temp) {
				accepted++
			}
			if st.cost < bestCost {
				bestCost = st.cost
				best = st.place.Clone()
			}
		}
		moves += movesPerTemp
		rate := float64(accepted) / float64(movesPerTemp)
		if rate < 0.44 {
			st.window = st.window * 9 / 10
		} else {
			st.window = st.window * 11 / 10
		}
		if st.window < 4*Spacing {
			st.window = 4 * Spacing
		}
		if st.window > die.Dx() {
			st.window = die.Dx()
		}
		temp *= cooling
	}

	legal := Legalize(best)
	if err := CheckLegal(legal); err != nil {
		return nil, err
	}
	legal.Moves = moves
	// Legalization can cost back some of the annealer's gains; never
	// return a result worse than the legal greedy start.
	if Evaluate(legal).HPWL >= Evaluate(start).HPWL {
		start.Moves = moves
		return start, nil
	}
	return legal, nil
}

func newAnnealState(d *core.Device, start *Placement, seed uint64) *annealState {
	st := &annealState{
		device: d,
		ix:     d.Index(),
		place:  start.Clone(),
		netsOf: make(map[string][]int),
		rng:    xrand.New(seed ^ 0x5A5A_1234),
	}
	st.comps = make([]*core.Component, len(d.Components))
	for i := range d.Components {
		st.comps[i] = &d.Components[i]
	}
	st.netHPWL = make([]int64, len(d.Connections))
	for i := range d.Connections {
		cn := &d.Connections[i]
		st.netHPWL[i] = geom.HPWL(netPins(st.place, st.ix, cn))
		for _, t := range cn.Targets() {
			st.netsOf[t.Component] = append(st.netsOf[t.Component], i)
		}
	}
	st.cost = st.fullCost()
	return st
}

// fullCost recomputes cost from scratch: total HPWL + overlap penalty.
func (st *annealState) fullCost() float64 {
	var hpwl int64
	for _, h := range st.netHPWL {
		hpwl += h
	}
	return float64(hpwl) + overlapWeight*float64(st.totalOverlap())
}

// totalOverlap sums pairwise footprint intrusion depth, in µm.
func (st *annealState) totalOverlap() int64 {
	var total int64
	for i := 0; i < len(st.comps); i++ {
		ri, ok := st.place.Footprint(st.comps[i])
		if !ok {
			continue
		}
		ri = ri.Inflate(Spacing / 2)
		for j := i + 1; j < len(st.comps); j++ {
			rj, ok := st.place.Footprint(st.comps[j])
			if !ok {
				continue
			}
			total += intrusion(ri, rj.Inflate(Spacing/2))
		}
	}
	return total
}

// overlapWith sums the intrusion of component k against all others.
func (st *annealState) overlapWith(k int) int64 {
	rk, ok := st.place.Footprint(st.comps[k])
	if !ok {
		return 0
	}
	rk = rk.Inflate(Spacing / 2)
	var total int64
	for j := range st.comps {
		if j == k {
			continue
		}
		rj, ok := st.place.Footprint(st.comps[j])
		if !ok {
			continue
		}
		total += intrusion(rk, rj.Inflate(Spacing/2))
	}
	return total
}

// intrusion measures how deeply two rectangles interpenetrate: the
// semi-perimeter of their intersection. Unlike raw intersection area it
// keeps gradients meaningful for thin slivers.
func intrusion(a, b geom.Rect) int64 {
	x := a.Intersect(b)
	if x.Empty() {
		return 0
	}
	return x.Dx() + x.Dy()
}

// calibrateTemperature samples random moves to find the cost-delta scale,
// then sets T0 so the target fraction of uphill moves is accepted.
func (st *annealState) calibrateTemperature(accept float64) float64 {
	const samples = 50
	var sum float64
	n := 0
	for i := 0; i < samples; i++ {
		k := st.rng.Intn(len(st.comps))
		old := st.place.Origins[st.comps[k].ID]
		delta := st.applyDisplace(k, st.randomOrigin(st.comps[k]))
		if delta > 0 {
			sum += delta
			n++
		}
		// Undo.
		st.applyDisplace(k, old)
	}
	if n == 0 {
		return 1000
	}
	meanUp := sum / float64(n)
	return -meanUp / math.Log(accept)
}

// randomOrigin proposes a new origin for c within the current displacement
// window of its present position, clamped to the die.
func (st *annealState) randomOrigin(c *core.Component) geom.Point {
	die := st.place.Die
	w := st.window
	if w <= 0 {
		w = die.Dx()
	}
	cur := st.place.Origins[c.ID]
	x := cur.X + st.rng.Int63n(2*w+1) - w
	y := cur.Y + st.rng.Int63n(2*w+1) - w
	maxX := die.Max.X - c.XSpan
	maxY := die.Max.Y - c.YSpan
	if x < die.Min.X {
		x = die.Min.X
	}
	if y < die.Min.Y {
		y = die.Min.Y
	}
	if x > maxX {
		x = maxX
	}
	if y > maxY {
		y = maxY
	}
	return geom.Pt(x, y)
}

// applyDisplace moves component k to origin o, updates the incremental
// cost, and returns the cost delta.
func (st *annealState) applyDisplace(k int, o geom.Point) float64 {
	c := st.comps[k]
	beforeOverlap := st.overlapWith(k)
	var beforeHPWL int64
	for _, ni := range st.netsOf[c.ID] {
		beforeHPWL += st.netHPWL[ni]
	}
	st.place.Origins[c.ID] = o
	afterOverlap := st.overlapWith(k)
	var afterHPWL int64
	for _, ni := range st.netsOf[c.ID] {
		h := geom.HPWL(netPins(st.place, st.ix, &st.device.Connections[ni]))
		st.netHPWL[ni] = h
		afterHPWL += h
	}
	delta := float64(afterHPWL-beforeHPWL) + overlapWeight*float64(afterOverlap-beforeOverlap)
	st.cost += delta
	return delta
}

// applySwap exchanges the origins of components a and b and returns the
// cost delta.
func (st *annealState) applySwap(a, b int) float64 {
	oa := st.place.Origins[st.comps[a].ID]
	ob := st.place.Origins[st.comps[b].ID]
	d1 := st.applyDisplace(a, ob)
	d2 := st.applyDisplace(b, oa)
	return d1 + d2
}

// tryMove proposes one move and keeps it per the Metropolis criterion,
// reporting whether the move was accepted.
func (st *annealState) tryMove(temp float64) bool {
	if st.rng.Intn(2) == 0 {
		k := st.rng.Intn(len(st.comps))
		old := st.place.Origins[st.comps[k].ID]
		delta := st.applyDisplace(k, st.randomOrigin(st.comps[k]))
		if !st.accept(delta, temp) {
			st.applyDisplace(k, old)
			return false
		}
		return true
	}
	a := st.rng.Intn(len(st.comps))
	b := st.rng.Intn(len(st.comps) - 1)
	if b >= a {
		b++
	}
	delta := st.applySwap(a, b)
	if !st.accept(delta, temp) {
		st.applySwap(a, b)
		return false
	}
	return true
}

func (st *annealState) accept(delta, temp float64) bool {
	if delta <= 0 {
		return true
	}
	return st.rng.Float64() < math.Exp(-delta/temp)
}
