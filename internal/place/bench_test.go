package place

import (
	"context"
	"testing"
)

// The annealer is the placement hot path: every proposed move queries
// overlap and net HPWL. These benchmarks track ns/op and allocs/op for
// the whole schedule (BenchmarkAnnealPlace) and for the incremental move
// kernel alone (BenchmarkAnnealMoves), on suite devices of increasing
// size. make bench snapshots them into BENCH_pnr.json.
func BenchmarkAnnealPlace(b *testing.B) {
	for _, name := range []string{"aquaflex_3b", "rotary_pcr", "general_purpose_mfd"} {
		d := benchDevice(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := (Annealer{}).Place(context.Background(), d, Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(p.Moves), "moves/op")
			}
		})
	}
}

// BenchmarkAnnealMoves isolates the move kernel: one annealState, a fixed
// number of tryMove proposals. This is where the spatial overlap index and
// the int-indexed origins pay off.
func BenchmarkAnnealMoves(b *testing.B) {
	for _, name := range []string{"rotary_pcr", "general_purpose_mfd"} {
		d := benchDevice(b, name)
		die := DieFor(d, 0.35)
		start, err := greedyPlace(d, die)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			st := newAnnealState(d, start, 1)
			st.window = die.Dx()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.tryMove(1000)
			}
		})
	}
}

// BenchmarkEvaluate tracks the full-placement quality scan used by every
// engine's CheckLegal gate.
func BenchmarkEvaluate(b *testing.B) {
	d := benchDevice(b, "general_purpose_mfd")
	p, err := greedyPlace(d, DieFor(d, 0.35))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Evaluate(p)
		if m.Placed == 0 {
			b.Fatal("nothing placed")
		}
	}
}
