package place

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

func benchDevice(t testing.TB, name string) *core.Device {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestDieFor(t *testing.T) {
	d := benchDevice(t, "aquaflex_3b")
	die := DieFor(d, 0.35)
	if die.Empty() {
		t.Fatal("die is empty")
	}
	// Die must fit the padded component area at the utilization.
	var total int64
	for i := range d.Components {
		c := &d.Components[i]
		total += (c.XSpan + Spacing) * (c.YSpan + Spacing)
	}
	if die.Area() < total {
		t.Errorf("die area %d smaller than padded component area %d", die.Area(), total)
	}
	// Higher utilization means a smaller die.
	tight := DieFor(d, 0.9)
	if tight.Area() >= die.Area() {
		t.Errorf("utilization 0.9 die (%d) not smaller than 0.35 die (%d)", tight.Area(), die.Area())
	}
	// Empty device still gets a non-empty die.
	if DieFor(&core.Device{}, 0.5).Empty() {
		t.Error("empty device die should not be empty")
	}
}

func TestEnginesProduceLegalPlacements(t *testing.T) {
	for _, devName := range []string{"aquaflex_3b", "molecular_gradients", "planar_synthetic_1"} {
		d := benchDevice(t, devName)
		for _, eng := range Engines() {
			t.Run(devName+"/"+eng.Name(), func(t *testing.T) {
				p, err := eng.Place(context.Background(), d, Options{Seed: 1})
				if err != nil {
					t.Fatalf("Place: %v", err)
				}
				if err := CheckLegal(p); err != nil {
					t.Fatal(err)
				}
				m := Evaluate(p)
				if m.Placed != len(d.Components) {
					t.Errorf("placed %d of %d", m.Placed, len(d.Components))
				}
				if m.HPWL <= 0 {
					t.Errorf("HPWL = %d", m.HPWL)
				}
				if m.Area <= 0 {
					t.Errorf("Area = %d", m.Area)
				}
			})
		}
	}
}

func TestEngineNames(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Engines() {
		names[e.Name()] = true
	}
	for _, want := range []string{"greedy", "force", "anneal"} {
		if !names[want] {
			t.Errorf("engine %q missing", want)
		}
	}
}

func TestAnnealImprovesOnGreedy(t *testing.T) {
	// The headline claim of Fig. 3: annealing beats the greedy baseline on
	// wirelength for every benchmark it is given.
	for _, devName := range []string{"aquaflex_5a", "planar_synthetic_2"} {
		d := benchDevice(t, devName)
		gp, err := Greedy{}.Place(context.Background(), d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ap, err := Annealer{}.Place(context.Background(), d, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		gm, am := Evaluate(gp), Evaluate(ap)
		if am.HPWL >= gm.HPWL {
			t.Errorf("%s: anneal HPWL %d not better than greedy %d", devName, am.HPWL, gm.HPWL)
		}
	}
}

func TestPlacementDeterminism(t *testing.T) {
	d := benchDevice(t, "rotary_pcr")
	for _, eng := range Engines() {
		a, err := eng.Place(context.Background(), d, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := eng.Place(context.Background(), d, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Origins) != len(b.Origins) {
			t.Fatalf("%s: differing placement sizes", eng.Name())
		}
		for id, o := range a.Origins {
			if b.Origins[id] != o {
				t.Errorf("%s: %s moved between identical runs", eng.Name(), id)
				break
			}
		}
	}
}

func TestAnnealSeedsDiffer(t *testing.T) {
	// Use a benchmark where annealing genuinely improves on the greedy
	// start; on near-chain devices both seeds may legally fall back to the
	// identical greedy placement.
	d := benchDevice(t, "planar_synthetic_2")
	a, err := Annealer{}.Place(context.Background(), d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Annealer{}.Place(context.Background(), d, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for id, o := range a.Origins {
		if b.Origins[id] != o {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical annealed placements")
	}
}

func TestSingleComponentDevice(t *testing.T) {
	b := core.NewBuilder("one")
	flow := b.FlowLayer()
	b.IOPort("p", flow, 100)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range Engines() {
		p, err := eng.Place(context.Background(), d, Options{})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if len(p.Origins) != 1 {
			t.Errorf("%s: origins = %v", eng.Name(), p.Origins)
		}
	}
}

func TestLegalizeRemovesOverlaps(t *testing.T) {
	d := benchDevice(t, "aquaflex_3b")
	// Pile everything on one spot.
	p := &Placement{Device: d, Die: DieFor(d, 0.35), Origins: map[string]geom.Point{}}
	for i := range d.Components {
		p.Origins[d.Components[i].ID] = geom.Pt(0, 0)
	}
	if Evaluate(p).Overlaps == 0 {
		t.Fatal("expected overlaps before legalization")
	}
	legal := Legalize(p)
	if err := CheckLegal(legal); err != nil {
		t.Fatal(err)
	}
}

func TestLegalizeHandlesMissingOrigins(t *testing.T) {
	d := benchDevice(t, "rotary_pcr")
	p := &Placement{Device: d, Origins: map[string]geom.Point{}}
	legal := Legalize(p) // no origins at all: everything defaults to (0,0)
	if err := CheckLegal(legal); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateOverlapsCount(t *testing.T) {
	b := core.NewBuilder("d")
	flow := b.FlowLayer()
	b.IOPort("a", flow, 100)
	b.IOPort("bb", flow, 100)
	b.Connect("n", flow, "a.port1", "bb.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := &Placement{Device: d, Origins: map[string]geom.Point{
		"a":  geom.Pt(0, 0),
		"bb": geom.Pt(50, 50),
	}}
	m := Evaluate(p)
	if m.Overlaps != 1 {
		t.Errorf("Overlaps = %d, want 1", m.Overlaps)
	}
	// HPWL between port centers: (50,50)->(100,100) manhattan = 100.
	if m.HPWL != 100 {
		t.Errorf("HPWL = %d, want 100", m.HPWL)
	}
}

func TestPortPosition(t *testing.T) {
	d := benchDevice(t, "aquaflex_3b")
	ix := d.Index()
	c := ix.Component("mix1")
	p := &Placement{Device: d, Origins: map[string]geom.Point{"mix1": geom.Pt(1000, 2000)}}
	pos, ok := p.PortPosition(c, c.Ports[0])
	if !ok {
		t.Fatal("PortPosition failed")
	}
	want := geom.Pt(1000+c.Ports[0].X, 2000+c.Ports[0].Y)
	if pos != want {
		t.Errorf("PortPosition = %v, want %v", pos, want)
	}
	if _, ok := p.PortPosition(ix.Component("in1"), core.Port{}); ok {
		t.Error("unplaced component should not resolve")
	}
}

func TestToFeatures(t *testing.T) {
	d := benchDevice(t, "rotary_pcr")
	p, err := Greedy{}.Place(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feats := ToFeatures(p)
	if len(feats) != len(d.Components) {
		t.Fatalf("features = %d, want %d", len(feats), len(d.Components))
	}
	ix := d.Index()
	for _, f := range feats {
		if f.Kind != core.FeatureComponent {
			t.Errorf("feature %s kind = %v", f.ID, f.Kind)
		}
		c := ix.Component(f.ID)
		if c == nil {
			t.Errorf("feature %s matches no component", f.ID)
			continue
		}
		if f.XSpan != c.XSpan || f.YSpan != c.YSpan {
			t.Errorf("feature %s spans %dx%d != component %dx%d",
				f.ID, f.XSpan, f.YSpan, c.XSpan, c.YSpan)
		}
		if f.Layer != c.Layers[0] {
			t.Errorf("feature %s layer %q", f.ID, f.Layer)
		}
	}
}

func TestCheckLegalReportsProblems(t *testing.T) {
	d := benchDevice(t, "rotary_pcr")
	p := &Placement{Device: d, Origins: map[string]geom.Point{}}
	if err := CheckLegal(p); err == nil {
		t.Error("unplaced device should fail CheckLegal")
	}
	for i := range d.Components {
		p.Origins[d.Components[i].ID] = geom.Pt(0, 0)
	}
	if err := CheckLegal(p); err == nil {
		t.Error("overlapping placement should fail CheckLegal")
	}
}

func TestOrderedComponentsCoversDevice(t *testing.T) {
	d := benchDevice(t, "general_purpose_mfd")
	order := orderedComponents(d)
	if len(order) != len(d.Components) {
		t.Fatalf("order covers %d of %d components", len(order), len(d.Components))
	}
	seen := map[string]bool{}
	for _, c := range order {
		if seen[c.ID] {
			t.Errorf("component %s appears twice", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestIntrusion(t *testing.T) {
	a := geom.R(0, 0, 10, 10)
	if got := intrusion(a, geom.R(20, 20, 30, 30)); got != 0 {
		t.Errorf("disjoint intrusion = %d", got)
	}
	if got := intrusion(a, geom.R(5, 5, 15, 15)); got != 10 {
		t.Errorf("corner intrusion = %d, want 10", got)
	}
}

func TestQuickLegalizeAlwaysLegal(t *testing.T) {
	// Property: legalization repairs arbitrary (even absurd) placements.
	d := benchDevice(t, "aquaflex_5a")
	prop := func(seed uint64) bool {
		r := xrand.New(seed)
		p := &Placement{Device: d, Die: DieFor(d, 0.35), Origins: map[string]geom.Point{}}
		for i := range d.Components {
			p.Origins[d.Components[i].ID] = geom.Pt(
				r.Int63n(20000)-10000, r.Int63n(20000)-10000)
		}
		legal := Legalize(p)
		return CheckLegal(legal) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickLegalizeIdempotentOnLegal(t *testing.T) {
	// Property: legalizing a legal placement never makes it illegal, and
	// HPWL does not explode (position preservation).
	d := benchDevice(t, "rotary_pcr")
	prop := func(seed uint64) bool {
		p, err := (Annealer{}).Place(context.Background(), d, Options{Seed: seed % 16})
		if err != nil {
			return false
		}
		again := Legalize(p)
		if CheckLegal(again) != nil {
			return false
		}
		before := Evaluate(p).HPWL
		after := Evaluate(again).HPWL
		// Re-legalization of an already legal layout must stay within 2x.
		return after <= 2*before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
