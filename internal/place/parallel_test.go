package place

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/par"
)

// placementBytes renders the determinism-relevant surface of a placement:
// the origin map (json.Marshal sorts map keys, so the encoding is
// canonical), the die, and the move counter.
func placementBytes(t *testing.T, p *Placement) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Origins any
		Die     any
		Moves   int
	}{p.Origins, p.Die, p.Moves})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestReplicasProduceLegalPlacement(t *testing.T) {
	d := benchDevice(t, "aquaflex_3b")
	p, err := Annealer{}.Place(context.Background(), d, Options{Seed: 7, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLegal(p); err != nil {
		t.Fatal(err)
	}
	m := Evaluate(p)
	if m.Placed != len(d.Components) {
		t.Errorf("placed %d of %d", m.Placed, len(d.Components))
	}
}

// TestReplicasDeterministicAcrossWorkerWidths is the core of the
// determinism contract for parallel tempering: the winning placement is a
// pure function of (device, options, seed, N) — the worker width the CPU
// budget happens to grant must never show in the artifact. An empty
// budget degrades the fan-out to a plain sequential loop over the same
// replica states, so equality across budgets proves scheduling
// independence.
func TestReplicasDeterministicAcrossWorkerWidths(t *testing.T) {
	d := benchDevice(t, "aquaflex_3b")
	opts := Options{Seed: 11, Replicas: 4}

	golden, err := Annealer{}.Place(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := placementBytes(t, golden)

	for _, cap := range []int{1, 2, 8} {
		b := par.NewBudget(cap)
		ctx := par.ContextWithBudget(context.Background(), b)
		p, err := Annealer{}.Place(ctx, d, opts)
		if err != nil {
			t.Fatalf("budget cap %d: %v", cap, err)
		}
		if got := placementBytes(t, p); !bytes.Equal(got, want) {
			t.Errorf("budget cap %d: placement differs from unbudgeted run", cap)
		}
		if b.InUse() != 0 {
			t.Errorf("budget cap %d: %d tokens leaked", cap, b.InUse())
		}
	}

	// Drained budget: every replica runs on the calling goroutine.
	drained := par.NewBudget(4)
	drained.TryAcquire(4)
	defer drained.Release(4)
	p, err := Annealer{}.Place(par.ContextWithBudget(context.Background(), drained), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := placementBytes(t, p); !bytes.Equal(got, want) {
		t.Error("drained budget (sequential replicas) differs from parallel run")
	}
}

// TestReplicasRepeatedRunsIdentical re-runs the same multi-replica
// schedule and demands byte-identical artifacts — the repeated-run half
// of the determinism hammer, at unit scope.
func TestReplicasRepeatedRunsIdentical(t *testing.T) {
	d := benchDevice(t, "molecular_gradients")
	opts := Options{Seed: 3, Replicas: 2}
	first, err := Annealer{}.Place(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := placementBytes(t, first)
	for run := 1; run < 3; run++ {
		p, err := Annealer{}.Place(context.Background(), d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := placementBytes(t, p); !bytes.Equal(got, want) {
			t.Fatalf("run %d differs from run 0", run)
		}
	}
}

// TestReplicasOneIsSequentialSchedule pins that Replicas values below 2
// select the classic single-replica schedule exactly, so existing golden
// artifacts cannot shift.
func TestReplicasOneIsSequentialSchedule(t *testing.T) {
	d := benchDevice(t, "planar_synthetic_1")
	base, err := Annealer{}.Place(context.Background(), d, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, -3} {
		p, err := Annealer{}.Place(context.Background(), d, Options{Seed: 5, Replicas: n})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(placementBytes(t, p), placementBytes(t, base)) {
			t.Errorf("Replicas=%d does not match the sequential schedule", n)
		}
	}
}

// TestReplicasKeepMoveBudget pins that N replicas split — not multiply —
// the per-level move budget: total proposed moves match the sequential
// schedule, keeping the Moves counter comparable across N.
func TestReplicasKeepMoveBudget(t *testing.T) {
	d := benchDevice(t, "aquaflex_3b")
	seq, err := Annealer{}.Place(context.Background(), d, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Replica ladders calibrate their own starting temperature, so level
	// counts (and with them total moves) may differ between N — but across
	// worker widths at fixed N they cannot.
	if seq.Moves <= 0 {
		t.Fatalf("sequential schedule reports %d moves", seq.Moves)
	}
	par4, err := Annealer{}.Place(context.Background(), d, Options{Seed: 9, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par4.Moves <= 0 {
		t.Fatalf("replica schedule reports %d moves", par4.Moves)
	}
	movesPerTemp := 10 * len(d.Components) // default MovesPerTemp resolution
	if par4.Moves%movesPerTemp != 0 {
		t.Errorf("replica schedule moves %d not a whole number of levels (movesPerTemp %d)",
			par4.Moves, movesPerTemp)
	}
}

func TestReplicaSeedsDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 16; i++ {
		s := replicaSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("replicas %d and %d derived the same seed %#x", prev, i, s)
		}
		seen[s] = i
	}
	if replicaSeed(1, 0) == replicaSeed(2, 0) {
		t.Error("different base seeds derived the same replica seed")
	}
}

// TestAnnealNoMapOrderPinned is the map-iteration audit's pin: the anneal
// state is built by iterating the device's Components and Connections
// slices (never the compIdx or Origins maps), so repeated runs must be
// byte-identical. If someone later introduces a range over a map into
// state construction or materialization, the per-run map seed makes this
// fail within a few repetitions.
func TestAnnealNoMapOrderPinned(t *testing.T) {
	for _, devName := range []string{"aquaflex_3b", "rotary_pcr"} {
		d := benchDevice(t, devName)
		var want []byte
		for run := 0; run < 5; run++ {
			p, err := Annealer{}.Place(context.Background(), d, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			got := placementBytes(t, p)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: run %d differs from run 0 — map-order leak in the annealer", devName, run)
			}
		}
	}
}
