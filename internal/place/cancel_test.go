package place

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
)

// countingCtx is a context that reports Canceled after a set number of
// Err() polls, counting every poll. It lets the test assert the annealer's
// cancellation granularity exactly: once Err() first returns non-nil, the
// annealer may poll at most once more per MoveBatch moves — so a prompt
// abort shows up as "no further polls after the first cancelled one".
type countingCtx struct {
	context.Context
	polls      atomic.Int64
	cancelAt   int64
	pollsAfter atomic.Int64
}

func (c *countingCtx) Err() error {
	n := c.polls.Add(1)
	if n > c.cancelAt {
		c.pollsAfter.Add(1)
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func TestAnnealAbortsWithinOneMoveBatch(t *testing.T) {
	b, err := bench.ByName("rotary_pcr")
	if err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	// Let the annealer pass the entry check and a few in-loop polls, then
	// start reporting cancellation.
	ctx := &countingCtx{Context: context.Background(), cancelAt: 3}
	_, err = Annealer{}.Place(ctx, d, NewOptions(WithSeed(7)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Place = %v, want context.Canceled", err)
	}
	// The annealer polls every MoveBatch moves. Aborting "within one move
	// batch" means the first cancelled poll is also the last: no further
	// polls may happen after cancellation is observed.
	if after := ctx.pollsAfter.Load(); after != 1 {
		t.Errorf("annealer polled Err() %d times after cancellation; want exactly 1 (abort within one move batch)", after)
	}
	if total := ctx.polls.Load(); total <= ctx.cancelAt {
		t.Errorf("annealer never reached a cancelled poll (%d polls)", total)
	}
}

func TestPlacersHonorPreCancelledContext(t *testing.T) {
	b, err := bench.ByName("aquaflex_3b")
	if err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range Engines() {
		if _, err := eng.Place(ctx, d, NewOptions(WithSeed(1))); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Place = %v, want context.Canceled", eng.Name(), err)
		}
	}
}
