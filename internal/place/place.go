// Package place implements device placement for ParchMint netlists: three
// engines (greedy shelf baseline, force-directed, simulated annealing) over
// a shared cost model, plus legalization and evaluation. Placement assigns
// every component an origin on the die; the half-perimeter wire length
// (HPWL) of the nets and the bounding-box area of the result are the
// quality metrics the algorithm-comparison experiment (Fig. 3) reports.
package place

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
)

// Spacing is the minimum clearance kept between component footprints, in
// micrometers, matching the suite's default channel routing pitch.
const Spacing = 400

// Placement is the result of placing one device: an origin (top-left
// corner) for every component.
type Placement struct {
	// Device is the placed netlist (not modified by placement).
	Device *core.Device
	// Origins maps component ID to its placed origin.
	Origins map[string]geom.Point
	// Die is the region the placer targeted.
	Die geom.Rect
	// Moves counts the optimization moves the engine proposed to reach
	// this placement (0 for constructive engines). It is a deterministic
	// function of the device and seed — the work metric the runtime-scaling
	// experiment reports instead of wall-clock time.
	Moves int
}

// Footprint returns the placed rectangle of a component, or false when the
// component has no origin.
func (p *Placement) Footprint(c *core.Component) (geom.Rect, bool) {
	o, ok := p.Origins[c.ID]
	if !ok {
		return geom.Rect{}, false
	}
	return c.Footprint(o), true
}

// PortPosition returns the absolute position of a port on a placed
// component.
func (p *Placement) PortPosition(c *core.Component, port core.Port) (geom.Point, bool) {
	o, ok := p.Origins[c.ID]
	if !ok {
		return geom.Point{}, false
	}
	return o.Add(port.Point()), true
}

// Clone returns a deep copy sharing the device.
func (p *Placement) Clone() *Placement {
	out := &Placement{Device: p.Device, Die: p.Die, Moves: p.Moves, Origins: make(map[string]geom.Point, len(p.Origins))}
	for k, v := range p.Origins {
		out.Origins[k] = v
	}
	return out
}

// Options tunes the placement engines.
type Options struct {
	// Seed drives the randomized engines.
	Seed uint64
	// Utilization is the fraction of die area the components should fill
	// (0 < u <= 1). Zero means the default 0.35.
	Utilization float64
	// SA parameters; zero values take defaults (see anneal.go).
	CoolingRate   float64
	MovesPerTemp  int
	InitialAccept float64
	// Replicas selects multi-replica parallel tempering for the annealer:
	// N replicas share each temperature level's move budget and exchange
	// states deterministically at level boundaries (see parallel.go).
	// Values <= 1 keep the classic single-replica schedule. The result is
	// a pure function of (device, options, seed, Replicas) — never of how
	// many goroutines executed the replicas.
	Replicas int
}

// replicas resolves the replica count: anything below 2 is the sequential
// single-replica schedule.
func (o Options) replicas() int {
	if o.Replicas < 2 {
		return 1
	}
	return o.Replicas
}

func (o Options) utilization() float64 {
	if o.Utilization <= 0 || o.Utilization > 1 {
		return 0.35
	}
	return o.Utilization
}

// Option mutates an Options value; see NewOptions.
type Option func(*Options)

// NewOptions builds placement options from functional settings over the
// documented defaults. It is the constructor call sites should prefer to
// positional struct literals: unset knobs keep their default semantics
// and new knobs never break existing constructors.
func NewOptions(opts ...Option) Options {
	o := Options{
		Utilization:   0.35,
		CoolingRate:   defaultCoolingRate,
		InitialAccept: defaultInitialAccept,
	}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithSeed sets the randomized engines' seed.
func WithSeed(seed uint64) Option { return func(o *Options) { o.Seed = seed } }

// WithUtilization sets the die utilization fraction (0 < u <= 1).
func WithUtilization(u float64) Option { return func(o *Options) { o.Utilization = u } }

// WithCoolingRate sets the annealer's geometric cooling rate (0 < r < 1).
func WithCoolingRate(r float64) Option { return func(o *Options) { o.CoolingRate = r } }

// WithMovesPerTemp sets the annealer's moves per temperature level.
func WithMovesPerTemp(n int) Option { return func(o *Options) { o.MovesPerTemp = n } }

// WithInitialAccept sets the annealer's target initial acceptance rate.
func WithInitialAccept(a float64) Option { return func(o *Options) { o.InitialAccept = a } }

// WithReplicas sets the annealer's parallel-tempering replica count
// (<= 1 selects the classic single-replica schedule).
func WithReplicas(n int) Option { return func(o *Options) { o.Replicas = n } }

// Placer is a placement engine.
type Placer interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Place computes a legal (overlap-free) placement. The context is
	// request-scoped: iterative engines poll it and abort with ctx.Err()
	// when it is cancelled (the annealer within one move batch).
	Place(ctx context.Context, d *core.Device, opts Options) (*Placement, error)
}

// Engines returns the three engines in comparison order: baseline first.
func Engines() []Placer {
	return []Placer{Greedy{}, ForceDirected{}, Annealer{}}
}

// EngineByName resolves a placement engine by its Name. The empty string
// selects the default engine (the annealer).
func EngineByName(name string) (Placer, error) {
	if name == "" {
		return Annealer{}, nil
	}
	for _, e := range Engines() {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("place: unknown placer %q (greedy, force, anneal)", name)
}

// Anneal runs the annealing engine with constructor-style options — the
// preferred entry point over building an Options literal by hand.
func Anneal(ctx context.Context, d *core.Device, opts ...Option) (*Placement, error) {
	return Annealer{}.Place(ctx, d, NewOptions(opts...))
}

// DieFor computes the target die: a square sized so the padded component
// area fills the given utilization fraction.
func DieFor(d *core.Device, utilization float64) geom.Rect {
	var total int64
	for i := range d.Components {
		c := &d.Components[i]
		total += (c.XSpan + Spacing) * (c.YSpan + Spacing)
	}
	if total == 0 {
		total = Spacing * Spacing
	}
	side := int64(math.Ceil(math.Sqrt(float64(total) / utilization)))
	return geom.R(0, 0, side, side)
}

// netPins resolves the pin positions of one connection under a placement.
// Unresolvable endpoints are skipped (the validator reports them).
func netPins(p *Placement, ix *core.Index, cn *core.Connection) []geom.Point {
	pins := make([]geom.Point, 0, 1+len(cn.Sinks))
	for _, t := range cn.Targets() {
		c, port, ok := ix.ResolveTarget(t)
		if !ok {
			continue
		}
		if pos, ok := p.PortPosition(c, port); ok {
			pins = append(pins, pos)
		}
	}
	return pins
}

// Metrics summarizes placement quality.
type Metrics struct {
	// HPWL is the total half-perimeter wire length over all nets, in µm.
	HPWL int64
	// Area is the bounding-box area of all placed footprints, in µm².
	Area int64
	// Overlaps counts pairs of overlapping footprints (0 for legal output).
	Overlaps int
	// Placed counts components with origins.
	Placed int
}

// Evaluate computes the quality metrics of a placement.
func Evaluate(p *Placement) Metrics {
	ix := p.Device.Index()
	var m Metrics
	for i := range p.Device.Connections {
		m.HPWL += geom.HPWL(netPins(p, ix, &p.Device.Connections[i]))
	}
	var bbox geom.Rect
	rects := make([]geom.Rect, 0, len(p.Device.Components))
	for i := range p.Device.Components {
		r, ok := p.Footprint(&p.Device.Components[i])
		if !ok {
			continue
		}
		m.Placed++
		rects = append(rects, r)
		bbox = bbox.Union(r)
	}
	m.Area = bbox.Area()
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Overlaps(rects[j]) {
				m.Overlaps++
			}
		}
	}
	return m
}

// Legalize removes all overlaps from a placement while approximately
// preserving relative positions: components are sorted by placed position
// and re-packed onto shelves. The result is returned as a new placement.
func Legalize(p *Placement) *Placement {
	d := p.Device
	type item struct {
		c *core.Component
		o geom.Point
	}
	items := make([]item, 0, len(d.Components))
	for i := range d.Components {
		c := &d.Components[i]
		o, ok := p.Origins[c.ID]
		if !ok {
			o = geom.Pt(0, 0)
		}
		items = append(items, item{c, o})
	}
	// Shelf packing in reading order of the current placement. Continuous
	// optimizer positions are quantized into horizontal bands of roughly
	// one average component height so that "same row, left to right" is
	// preserved; sorting on raw Y would interleave X positions of
	// components whose heights differ by a few micrometers.
	var bandH int64 = Spacing
	if len(items) > 0 {
		var sum int64
		for _, it := range items {
			sum += it.c.YSpan
		}
		bandH += sum / int64(len(items))
	}
	band := func(o geom.Point) int64 { return o.Y / bandH }
	sort.SliceStable(items, func(i, j int) bool {
		if band(items[i].o) != band(items[j].o) {
			return band(items[i].o) < band(items[j].o)
		}
		if items[i].o.X != items[j].o.X {
			return items[i].o.X < items[j].o.X
		}
		return items[i].c.ID < items[j].c.ID
	})
	die := p.Die
	if die.Empty() {
		die = DieFor(d, 0.35)
	}
	out := &Placement{Device: d, Die: die, Origins: make(map[string]geom.Point, len(items))}
	// Tetris-style packing that preserves the optimizer's coordinates when
	// room allows: rows advance to each band's desired top, and components
	// keep their desired x unless that would overlap the previous one.
	i := 0
	var y int64
	for i < len(items) {
		bandID := band(items[i].o)
		// Collect the band.
		j := i
		for j < len(items) && band(items[j].o) == bandID {
			j++
		}
		// The band's top: its members' minimum desired y, but never above
		// the previous band's bottom.
		top := items[i].o.Y
		for k := i; k < j; k++ {
			if items[k].o.Y < top {
				top = items[k].o.Y
			}
		}
		if top < y {
			top = y
		}
		var x, shelfH int64
		for k := i; k < j; k++ {
			it := items[k]
			w := it.c.XSpan + Spacing
			h := it.c.YSpan + Spacing
			// Honor the desired x when it does not collide or overflow.
			want := it.o.X - Spacing/2
			if want > x && want+w <= die.Dx() {
				x = want
			}
			if x+w > die.Dx() && x > 0 {
				// Band overflow: open a continuation shelf below.
				top += shelfH
				shelfH = 0
				x = 0
			}
			out.Origins[it.c.ID] = geom.Pt(die.Min.X+x+Spacing/2, die.Min.Y+top+Spacing/2)
			x += w
			if h > shelfH {
				shelfH = h
			}
		}
		y = top + shelfH
		i = j
	}
	return out
}

// CheckLegal verifies a placement is overlap-free and fully placed,
// returning a descriptive error otherwise. Engines call this before
// returning; it converts optimizer bugs into errors instead of corrupt
// experiment data.
func CheckLegal(p *Placement) error {
	m := Evaluate(p)
	if m.Placed != len(p.Device.Components) {
		return fmt.Errorf("place: %d of %d components placed", m.Placed, len(p.Device.Components))
	}
	if m.Overlaps > 0 {
		return fmt.Errorf("place: %d overlapping pairs after legalization", m.Overlaps)
	}
	return nil
}

// ToFeatures renders a placement as ParchMint component features, one per
// component on its first layer, ready to attach to the device.
func ToFeatures(p *Placement) []core.Feature {
	d := p.Device
	out := make([]core.Feature, 0, len(d.Components))
	for i := range d.Components {
		c := &d.Components[i]
		o, ok := p.Origins[c.ID]
		if !ok {
			continue
		}
		layer := ""
		if len(c.Layers) > 0 {
			layer = c.Layers[0]
		}
		out = append(out, core.Feature{
			Kind:     core.FeatureComponent,
			ID:       c.ID,
			Name:     c.Name,
			Layer:    layer,
			Location: o,
			XSpan:    c.XSpan,
			YSpan:    c.YSpan,
			Depth:    10,
		})
	}
	return out
}

// orderedComponents returns pointers to the device's components in a
// stable, connectivity-friendly order: BFS from the first IO port so
// adjacent components land near each other in greedy packing.
func orderedComponents(d *core.Device) []*core.Component {
	ix := d.Index()
	adj := make(map[string][]string)
	for i := range d.Connections {
		cn := &d.Connections[i]
		for _, s := range cn.Sinks {
			adj[cn.Source.Component] = append(adj[cn.Source.Component], s.Component)
			adj[s.Component] = append(adj[s.Component], cn.Source.Component)
		}
	}
	var order []*core.Component
	seen := make(map[string]bool, len(d.Components))
	var queue []string
	enqueue := func(id string) {
		if !seen[id] && ix.Component(id) != nil {
			seen[id] = true
			queue = append(queue, id)
		}
	}
	for i := range d.Components {
		if len(order)+len(queue) == len(d.Components) {
			break
		}
		enqueue(d.Components[i].ID)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			order = append(order, ix.Component(cur))
			for _, nb := range adj[cur] {
				enqueue(nb)
			}
		}
	}
	return order
}
