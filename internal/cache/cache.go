// Package cache is a content-addressed result cache for deterministic
// computations: a size-bounded LRU over immutable response entries plus
// singleflight deduplication of concurrent identical computations.
//
// The cache is safe precisely because of the repository's determinism
// contract: a key is derived from everything that influences an output
// (endpoint, canonicalized request body, resolved seed, options), and
// identical inputs produce byte-identical outputs, so replaying a stored
// entry is indistinguishable from recomputing it. Nothing in this package
// knows about HTTP or the pipeline — it stores opaque entries under
// opaque keys.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Entry is one immutable cached result. Body must not be mutated after
// the entry is handed to the cache; every reader shares the same slice.
type Entry struct {
	ContentType string
	Body        []byte
}

// entryOverhead approximates the per-entry bookkeeping cost (map slot,
// list element, key string) charged against the byte bound, so a cache
// of many tiny entries cannot balloon past its configured size.
const entryOverhead = 128

func (e Entry) size() int64 {
	return int64(len(e.Body)+len(e.ContentType)) + entryOverhead
}

// Outcome classifies how a Do call was satisfied.
type Outcome int

const (
	// Miss means this caller computed the entry (and stored it on success).
	Miss Outcome = iota
	// Hit means the entry was served from the LRU.
	Hit
	// Coalesced means the caller piggybacked on a concurrent identical
	// computation started by another caller.
	Coalesced
)

// String returns the lowercase wire rendering used in response headers
// and metric labels.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Key hashes length-delimited parts into a content address (hex SHA-256).
// Length delimiting keeps distinct splits distinct: Key("ab","c") and
// Key("a","bc") are different addresses.
func Key(parts ...[]byte) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// AppendPart appends one length-framed key part to dst, using exactly
// the framing Key feeds the hash. Callers on allocation-sensitive paths
// build the frame incrementally in a reused buffer and hash it once with
// KeyFrom instead of assembling a parts slice for Key.
func AppendPart(dst, part []byte) []byte {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(part)))
	dst = append(dst, n[:]...)
	return append(dst, part...)
}

// AppendPartString is AppendPart for a string part, avoiding the []byte
// conversion allocation.
func AppendPartString(dst []byte, part string) []byte {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(part)))
	dst = append(dst, n[:]...)
	return append(dst, part...)
}

// KeyFrom hashes an AppendPart-framed buffer into an address. For any
// part list, KeyFrom over the concatenated frames returns the same
// string as Key over the parts — pinned by TestKeyFromMatchesKey — so
// the two construction paths share one address space. Its only
// allocation is the returned string.
func KeyFrom(framed []byte) string {
	sum := sha256.Sum256(framed)
	var hx [2 * sha256.Size]byte
	hex.Encode(hx[:], sum[:])
	return string(hx[:])
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	Evictions uint64
	Entries   int
	Bytes     int64
}

// call is one in-flight computation that concurrent identical requests
// coalesce onto.
type call struct {
	done  chan struct{}
	entry Entry
	err   error
}

// errLeaderPanicked is handed to waiters whose leader panicked out of fn;
// the panic itself propagates on the leader's goroutine.
var errLeaderPanicked = errors.New("cache: computation panicked")

// Cache is a size-bounded LRU with singleflight admission. The zero value
// is not usable; construct with New.
type Cache struct {
	maxBytes int64
	onEvict  func(evicted int)

	mu     sync.Mutex
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	flight map[string]*call
	bytes  int64

	hits, misses, coalesced, evictions uint64
}

// node is the LRU element payload.
type node struct {
	key   string
	entry Entry
}

// New creates a cache bounded to roughly maxBytes of stored entries
// (bodies plus per-entry overhead). maxBytes must be positive.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		panic(fmt.Sprintf("cache: non-positive byte bound %d", maxBytes))
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flight:   make(map[string]*call),
	}
}

// OnEvict registers fn to be called (outside the cache lock) with the
// number of entries each store operation evicted. Set it before the cache
// is shared between goroutines.
func (c *Cache) OnEvict(fn func(evicted int)) { c.onEvict = fn }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}

// Get returns the entry stored under key, refreshing its recency. A found
// entry counts as a hit, an absent one as a miss.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*node).entry, true
}

// Lookup returns the entry stored under key, counting a hit and
// refreshing recency when present. Unlike Get it records nothing on
// absence, so a Lookup-then-Do fast path — probe without building a
// compute closure, fall into Do only on a miss — attributes exactly one
// outcome to the request instead of a phantom extra miss.
func (c *Cache) Lookup(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return Entry{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*node).entry, true
}

// Put stores entry under key, evicting least-recently-used entries until
// the cache fits its byte bound again. An entry larger than the whole
// bound is not stored at all.
func (c *Cache) Put(key string, e Entry) {
	c.mu.Lock()
	evicted := c.put(key, e)
	c.mu.Unlock()
	c.notifyEvict(evicted)
}

// put inserts or replaces the entry and trims the tail; caller holds mu.
// It returns how many entries were evicted.
func (c *Cache) put(key string, e Entry) int {
	if el, ok := c.items[key]; ok {
		n := el.Value.(*node)
		c.bytes += e.size() - n.entry.size()
		n.entry = e
		c.ll.MoveToFront(el)
	} else {
		if e.size() > c.maxBytes {
			return 0
		}
		c.items[key] = c.ll.PushFront(&node{key: key, entry: e})
		c.bytes += e.size()
	}
	evicted := 0
	// The Len() > 1 guard always keeps the entry just touched; everything
	// behind it is fair game.
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		el := c.ll.Back()
		n := el.Value.(*node)
		c.ll.Remove(el)
		delete(c.items, n.key)
		c.bytes -= n.entry.size()
		c.evictions++
		evicted++
	}
	return evicted
}

func (c *Cache) notifyEvict(n int) {
	if n > 0 && c.onEvict != nil {
		c.onEvict(n)
	}
}

// Do returns the entry stored under key, computing it with fn on a miss.
// Concurrent Do calls for the same key coalesce: exactly one caller (the
// leader) runs fn while the rest wait for its result, so a thundering
// herd of identical requests costs one computation. Errors are handed to
// every waiter but never stored — the next Do retries. A waiter whose
// leader failed with a context error (the leader's caller gave up, not
// the computation itself) retries with its own fn instead of inheriting a
// cancellation that was never its own.
func (c *Cache) Do(ctx context.Context, key string, fn func() (Entry, error)) (Entry, Outcome, error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.hits++
			e := el.Value.(*node).entry
			c.mu.Unlock()
			return e, Hit, nil
		}
		if fl, ok := c.flight[key]; ok {
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return Entry{}, Coalesced, ctx.Err()
			}
			if fl.err == nil {
				return fl.entry, Coalesced, nil
			}
			if isContextErr(fl.err) && ctx.Err() == nil {
				continue
			}
			return Entry{}, Coalesced, fl.err
		}
		fl := &call{done: make(chan struct{})}
		c.flight[key] = fl
		c.misses++
		c.mu.Unlock()
		evicted := c.lead(key, fl, fn)
		c.notifyEvict(evicted)
		return fl.entry, Miss, fl.err
	}
}

// lead runs the computation as the flight's leader and publishes the
// result. The deferred cleanup runs even if fn panics, so waiters get an
// error instead of blocking forever while the panic propagates on the
// leader's goroutine.
func (c *Cache) lead(key string, fl *call, fn func() (Entry, error)) (evicted int) {
	completed := false
	defer func() {
		c.mu.Lock()
		delete(c.flight, key)
		if !completed {
			fl.err = errLeaderPanicked
		} else if fl.err == nil {
			evicted = c.put(key, fl.entry)
		}
		c.mu.Unlock()
		close(fl.done)
	}()
	fl.entry, fl.err = fn()
	completed = true
	return
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
