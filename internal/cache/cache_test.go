package cache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// entry builds a body of n payload bytes so size accounting is easy to
// reason about in tests: size() == n + entryOverhead.
func entry(n int) Entry {
	return Entry{Body: bytes.Repeat([]byte{'x'}, n)}
}

func TestKeyLengthDelimited(t *testing.T) {
	if Key([]byte("ab"), []byte("c")) == Key([]byte("a"), []byte("bc")) {
		t.Error(`Key("ab","c") == Key("a","bc"); parts are not length-delimited`)
	}
	if Key([]byte("a")) != Key([]byte("a")) {
		t.Error("Key is not deterministic")
	}
	if len(Key()) != 64 {
		t.Errorf("Key() length = %d, want 64 hex chars", len(Key()))
	}
}

func TestLRUEvictionAtByteBound(t *testing.T) {
	// Room for exactly three 100-byte entries.
	c := New(3 * (100 + entryOverhead))
	c.Put("a", entry(100))
	c.Put("b", entry(100))
	c.Put("c", entry(100))
	if st := c.Stats(); st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("after 3 puts: %+v", st)
	}
	// Touch "a" so "b" is now the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("d", entry(100))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived; eviction is not least-recently-used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want it retained", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 3*(100+entryOverhead) {
		t.Errorf("bytes = %d over the %d bound", st.Bytes, 3*(100+entryOverhead))
	}
}

func TestEvictHookAndOversizeEntry(t *testing.T) {
	var evicted atomic.Int64
	c := New(2 * (50 + entryOverhead))
	c.OnEvict(func(n int) { evicted.Add(int64(n)) })
	c.Put("a", entry(50))
	c.Put("b", entry(50))
	c.Put("c", entry(50)) // evicts a
	if got := evicted.Load(); got != 1 {
		t.Errorf("evict hook saw %d, want 1", got)
	}
	// An entry larger than the whole cache is refused, evicting nothing.
	c.Put("huge", entry(1 << 20))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversize entry was stored")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Errorf("entries = %d after oversize put, want 2", st.Entries)
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	c := New(10_000)
	c.Put("a", entry(100))
	c.Put("a", entry(300))
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if want := int64(300 + entryOverhead); st.Bytes != want {
		t.Errorf("bytes = %d, want %d", st.Bytes, want)
	}
}

// TestDoSingleflight hammers one key from many goroutines: exactly one
// computation may run, everyone must observe the same bytes, and the
// outcome split must be one miss with the rest hits or coalesced.
func TestDoSingleflight(t *testing.T) {
	c := New(1 << 20)
	var executions atomic.Int64
	started := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters)
	bodies := make([][]byte, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-started
			e, outcome, err := c.Do(context.Background(), "k", func() (Entry, error) {
				executions.Add(1)
				time.Sleep(20 * time.Millisecond) // let the herd pile up
				return Entry{ContentType: "text/plain", Body: []byte("payload")}, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			outcomes[i] = outcome
			bodies[i] = e.Body
		}(i)
	}
	close(started)
	wg.Wait()
	if n := executions.Load(); n != 1 {
		t.Errorf("computation ran %d times, want exactly 1", n)
	}
	misses := 0
	for i, o := range outcomes {
		if o == Miss {
			misses++
		}
		if !bytes.Equal(bodies[i], []byte("payload")) {
			t.Errorf("waiter %d body = %q", i, bodies[i])
		}
	}
	if misses != 1 {
		t.Errorf("%d misses, want exactly 1", misses)
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits+st.Coalesced != waiters-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits+coalesced", st, waiters-1)
	}
}

func TestDoErrorNotStored(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", func() (Entry, error) {
		return Entry{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	// The failure was not cached: the next Do computes again and succeeds.
	e, outcome, err := c.Do(context.Background(), "k", func() (Entry, error) {
		return Entry{Body: []byte("ok")}, nil
	})
	if err != nil || outcome != Miss || string(e.Body) != "ok" {
		t.Errorf("retry = (%q, %v, %v), want fresh miss", e.Body, outcome, err)
	}
}

// TestDoLeaderCancelledWaiterRetries pins the retry rule: a waiter whose
// leader was cancelled must not inherit the cancellation — it becomes the
// new leader and computes the result itself.
func TestDoLeaderCancelledWaiterRetries(t *testing.T) {
	c := New(1 << 20)
	leaderIn := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	var leaderDone sync.WaitGroup
	leaderDone.Add(1)
	go func() {
		defer leaderDone.Done()
		_, _, err := c.Do(leaderCtx, "k", func() (Entry, error) {
			close(leaderIn)
			<-leaderCtx.Done()
			return Entry{}, leaderCtx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader Do = %v, want context.Canceled", err)
		}
	}()
	<-leaderIn
	var followerStarted sync.WaitGroup
	followerStarted.Add(1)
	var followerErr error
	var followerEntry Entry
	go func() {
		defer followerStarted.Done()
		followerEntry, _, followerErr = c.Do(context.Background(), "k", func() (Entry, error) {
			return Entry{Body: []byte("recomputed")}, nil
		})
	}()
	// Give the follower a moment to join the flight, then kill the leader.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	leaderDone.Wait()
	followerStarted.Wait()
	if followerErr != nil {
		t.Fatalf("follower inherited the leader's fate: %v", followerErr)
	}
	if string(followerEntry.Body) != "recomputed" {
		t.Errorf("follower body = %q, want recomputed", followerEntry.Body)
	}
}

func TestDoWaiterHonorsOwnContext(t *testing.T) {
	c := New(1 << 20)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() (Entry, error) {
			close(leaderIn)
			<-release
			return Entry{Body: []byte("late")}, nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, "k", func() (Entry, error) { return Entry{}, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("waiter Do = %v, want its own deadline error", err)
	}
	close(release)
}

// TestDoConcurrentDistinctKeys drives many keys at once under -race to
// shake out lock ordering bugs between the LRU and the flight table.
func TestDoConcurrentDistinctKeys(t *testing.T) {
	c := New(64 * (8 + entryOverhead))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%20)
				e, _, err := c.Do(context.Background(), key, func() (Entry, error) {
					return Entry{Body: []byte(key)}, nil
				})
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				if string(e.Body) != key {
					t.Errorf("Do(%s) body = %q", key, e.Body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestLeaderPanicReleasesWaiters(t *testing.T) {
	c := New(1 << 20)
	leaderIn := make(chan struct{})
	boom := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		_, _, _ = c.Do(context.Background(), "k", func() (Entry, error) {
			close(leaderIn)
			<-boom
			panic("kaboom")
		})
	}()
	<-leaderIn
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", func() (Entry, error) {
			return Entry{}, nil
		})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(boom)
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("waiter err = %v, want a panicked error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter blocked forever after leader panic")
	}
}

func TestKeyFromMatchesKey(t *testing.T) {
	cases := [][][]byte{
		{},
		{nil},
		{[]byte("")},
		{[]byte("op"), []byte(`{"bench":"rotary_pcr"}`), {1, 2, 3, 4, 5, 6, 7, 8}},
		{[]byte("a"), nil, []byte("b")},
		{bytes.Repeat([]byte{0xff}, 1<<12)},
	}
	for _, parts := range cases {
		var framed []byte
		for _, p := range parts {
			framed = AppendPart(framed, p)
		}
		if got, want := KeyFrom(framed), Key(parts...); got != want {
			t.Errorf("KeyFrom(%d parts) = %s, Key = %s", len(parts), got, want)
		}
	}
	// Framing, not concatenation: part boundaries must matter either way.
	if KeyFrom(AppendPart(AppendPart(nil, []byte("ab")), []byte("c"))) ==
		KeyFrom(AppendPart(AppendPart(nil, []byte("a")), []byte("bc"))) {
		t.Fatal("KeyFrom collides across part boundaries")
	}
}

func TestLookupCountsHitsOnly(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Lookup("absent"); ok {
		t.Fatal("Lookup reported a phantom entry")
	}
	if st := c.Stats(); st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("Lookup on absence moved counters: %+v", st)
	}
	c.Put("k", Entry{ContentType: "text/plain", Body: []byte("v")})
	ent, ok := c.Lookup("k")
	if !ok || string(ent.Body) != "v" {
		t.Fatalf("Lookup(k) = %v, %v", ent, ok)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("Lookup hit counted wrong: %+v", st)
	}
}

// TestKeyEmptyParts: empty parts are real parts — the length frame makes
// Key(), Key(""), and Key("","") all distinct addresses, so an absent
// component can never collide with a present-but-empty one.
func TestKeyEmptyParts(t *testing.T) {
	keys := []string{
		Key(),
		Key([]byte{}),
		Key([]byte{}, []byte{}),
		Key([]byte("a"), []byte{}),
		Key([]byte{}, []byte("a")),
		Key([]byte("a")),
	}
	seen := map[string]int{}
	for i, k := range keys {
		if len(k) != 64 {
			t.Errorf("key %d has length %d, want 64", i, len(k))
		}
		if j, dup := seen[k]; dup {
			t.Errorf("key %d collides with key %d: %s", i, j, k)
		}
		seen[k] = i
	}
}

// TestKeyDelimiterInParts: a part containing bytes that look exactly like
// the length frame (8 little-endian length bytes) must not be confusable
// with the frame itself. The classic attack on naive concatenation:
// part1+frame(part2) as a single part versus the two-part split.
func TestKeyDelimiterInParts(t *testing.T) {
	part := []byte("payload")
	// frame is what AppendPart would prepend for "x": 8 LE length bytes.
	frame := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	embedded := append(append(append([]byte{}, part...), frame...), 'x')
	split := Key(part, []byte("x"))
	joined := Key(embedded)
	if split == joined {
		t.Errorf("Key(part, \"x\") == Key(part+frame(\"x\")); framing is forgeable")
	}
	// The same property through the incremental construction path.
	var buf []byte
	buf = AppendPart(buf, part)
	buf = AppendPart(buf, []byte("x"))
	if KeyFrom(buf) != split {
		t.Error("KeyFrom(AppendPart...) disagrees with Key over the same parts")
	}
	var buf2 []byte
	buf2 = AppendPart(buf2, embedded)
	if KeyFrom(buf2) != joined {
		t.Error("KeyFrom over the embedded part disagrees with Key")
	}
}

// TestAppendPartStringMatchesAppendPart pins the two frame builders to
// identical bytes, including for the empty string.
func TestAppendPartStringMatchesAppendPart(t *testing.T) {
	for _, s := range []string{"", "a", "hello world", string([]byte{0, 1, 2, 255})} {
		a := AppendPart(nil, []byte(s))
		b := AppendPartString(nil, s)
		if !bytes.Equal(a, b) {
			t.Errorf("AppendPart(%q) = %x, AppendPartString = %x", s, a, b)
		}
	}
}
