package mutate

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/validate"
)

func device(t testing.TB) *core.Device {
	t.Helper()
	b, err := bench.ByName("aquaflex_3b")
	if err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestClassesComplete(t *testing.T) {
	cs := Classes()
	if len(cs) != 8 {
		t.Fatalf("classes = %d, want 8", len(cs))
	}
	seen := map[Class]bool{}
	for _, m := range cs {
		if seen[m.Class] {
			t.Errorf("duplicate class %q", m.Class)
		}
		seen[m.Class] = true
		if m.Expect == "" || m.Description == "" {
			t.Errorf("class %q incomplete", m.Class)
		}
	}
}

func TestApplyNeverMutatesInput(t *testing.T) {
	d := device(t)
	ref := d.Clone()
	for _, m := range Classes() {
		for seed := uint64(0); seed < 5; seed++ {
			if _, err := Apply(d, m.Class, seed); err != nil {
				var na *ErrNotApplicable
				if !errors.As(err, &na) {
					t.Fatalf("Apply(%s): %v", m.Class, err)
				}
			}
		}
	}
	if !core.Equal(d, ref) {
		t.Error("Apply mutated its input device")
	}
}

func TestApplyChangesDevice(t *testing.T) {
	d := device(t)
	for _, m := range Classes() {
		t.Run(string(m.Class), func(t *testing.T) {
			mut, err := Apply(d, m.Class, 1)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if core.Equal(d, mut) {
				t.Error("mutation produced an identical device")
			}
		})
	}
}

func TestApplyUnknownClass(t *testing.T) {
	if _, err := Apply(device(t), Class("bogus"), 1); err == nil {
		t.Error("unknown class should error")
	} else if !strings.Contains(err.Error(), "unknown class") {
		t.Errorf("error = %v", err)
	}
}

func TestApplyDeterministic(t *testing.T) {
	d := device(t)
	for _, m := range Classes() {
		a, errA := Apply(d, m.Class, 42)
		b, errB := Apply(d, m.Class, 42)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("class %s: nondeterministic applicability", m.Class)
		}
		if errA == nil && !core.Equal(a, b) {
			t.Errorf("class %s: same seed produced different mutants", m.Class)
		}
	}
}

// TestEveryClassDetectedOnEveryBenchmark is the Table 3 invariant: each
// mutation class, wherever applicable, must be caught by its expected
// validator rule on every benchmark.
func TestEveryClassDetectedOnEveryBenchmark(t *testing.T) {
	for _, b := range bench.Suite() {
		d := b.Build()
		for _, m := range Classes() {
			applicable, detected := 0, 0
			for seed := uint64(0); seed < 10; seed++ {
				res := Trial(d, m, seed)
				if res.Applicable {
					applicable++
					if res.Detected {
						detected++
					}
				}
			}
			if applicable == 0 && m.Class != SwapConnectionLayer {
				// Only layer swaps can be inapplicable (single-layer synthetics
				// still have 1 layer... they have exactly one layer).
				t.Errorf("%s/%s: never applicable", b.Name, m.Class)
			}
			if detected != applicable {
				t.Errorf("%s/%s: detected %d of %d injections",
					b.Name, m.Class, detected, applicable)
			}
		}
	}
}

func TestNotApplicable(t *testing.T) {
	// A device with one layer cannot host a layer swap.
	b := core.NewBuilder("single")
	flow := b.FlowLayer()
	b.IOPort("a", flow, 100)
	b.IOPort("z", flow, 100)
	b.Connect("c", flow, "a.port1", "z.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Apply(d, SwapConnectionLayer, 1)
	var na *ErrNotApplicable
	if !errors.As(err, &na) {
		t.Fatalf("err = %v, want ErrNotApplicable", err)
	}
	if na.Class != SwapConnectionLayer || na.Device != "single" {
		t.Errorf("ErrNotApplicable fields = %+v", na)
	}
	if !strings.Contains(na.Error(), "swap-connection-layer") {
		t.Errorf("Error() = %q", na.Error())
	}
}

func TestNotApplicableEmptyDevice(t *testing.T) {
	d := &core.Device{Name: "empty"}
	for _, m := range Classes() {
		if _, err := Apply(d, m.Class, 1); err == nil {
			t.Errorf("class %s applicable to empty device", m.Class)
		}
	}
}

func TestTrialFields(t *testing.T) {
	d := device(t)
	m := Mutation{Class: EmptyNet, Expect: validate.CodeEmptyNet}
	res := Trial(d, m, 3)
	if !res.Applicable || !res.Detected {
		t.Errorf("Trial = %+v", res)
	}
	if res.ErrorsRaised == 0 {
		t.Error("expected at least one error raised")
	}
	if res.Class != EmptyNet || res.Expected != validate.CodeEmptyNet {
		t.Errorf("Trial metadata = %+v", res)
	}
}

func TestTrialNotApplicable(t *testing.T) {
	d := &core.Device{Name: "empty"}
	res := Trial(d, Mutation{Class: EmptyNet, Expect: validate.CodeEmptyNet}, 1)
	if res.Applicable || res.Detected {
		t.Errorf("Trial on empty device = %+v", res)
	}
}

func TestSeedsCoverDifferentSites(t *testing.T) {
	// Across seeds the injector should hit different victims.
	d := device(t)
	distinct := map[string]bool{}
	for seed := uint64(0); seed < 20; seed++ {
		mut, err := Apply(d, NegateSpan, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range mut.Components {
			if mut.Components[i].XSpan <= 0 || mut.Components[i].YSpan <= 0 {
				distinct[mut.Components[i].ID] = true
			}
		}
	}
	if len(distinct) < 3 {
		t.Errorf("20 seeds hit only %d distinct components", len(distinct))
	}
}
