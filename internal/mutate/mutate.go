// Package mutate injects classified faults into ParchMint devices. Each
// mutation class breaks exactly one well-formedness property, paired with
// the validator rule code expected to catch it; the Table 3 experiment
// applies every class to every benchmark across many seeds and reports
// per-class detection rates.
package mutate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/validate"
	"repro/internal/xrand"
)

// Class names one fault class.
type Class string

// The mutation classes.
const (
	// DropComponent deletes a connected component, leaving dangling
	// connection endpoints.
	DropComponent Class = "drop-component"
	// DuplicateID renames a component to collide with another.
	DuplicateID Class = "duplicate-id"
	// RenamePort renames a referenced port, breaking the reference.
	RenamePort Class = "rename-port"
	// SwapConnectionLayer moves a connection to a different layer than its
	// ports.
	SwapConnectionLayer Class = "swap-connection-layer"
	// NegateSpan makes a component footprint non-positive.
	NegateSpan Class = "negate-span"
	// DisplacePort moves a port outside its component's footprint.
	DisplacePort Class = "displace-port"
	// EmptyNet removes all sinks from a connection.
	EmptyNet Class = "empty-net"
	// DropLayer deletes a layer that components still occupy.
	DropLayer Class = "drop-layer"
)

// Mutation pairs a class with the validator code expected to flag it.
type Mutation struct {
	Class Class
	// Expect is the diagnostic code the validator must raise.
	Expect validate.Code
	// Description says what the mutation breaks.
	Description string
}

// Classes lists every mutation class with its expected detection code.
func Classes() []Mutation {
	return []Mutation{
		{DropComponent, validate.CodeMissingRef, "delete a connected component"},
		{DuplicateID, validate.CodeDupID, "collide two component IDs"},
		{RenamePort, validate.CodeMissingRef, "rename a referenced port"},
		{SwapConnectionLayer, validate.CodeLayerMismatch, "move a connection across layers"},
		{NegateSpan, validate.CodeBadGeometry, "zero a component span"},
		{DisplacePort, validate.CodeBadGeometry, "push a port off its footprint"},
		{EmptyNet, validate.CodeEmptyNet, "strip a connection's sinks"},
		{DropLayer, validate.CodeMissingRef, "delete an occupied layer"},
	}
}

// ErrNotApplicable reports that a device has no site where the requested
// mutation class can be injected.
type ErrNotApplicable struct {
	Class  Class
	Device string
}

// Error renders the condition.
func (e *ErrNotApplicable) Error() string {
	return fmt.Sprintf("mutate: class %q not applicable to device %q", e.Class, e.Device)
}

// Apply returns a mutated deep copy of d carrying one fault of the given
// class, selected pseudo-randomly by seed. The input device is never
// modified. It returns ErrNotApplicable when the device offers no
// injection site for the class.
func Apply(d *core.Device, class Class, seed uint64) (*core.Device, error) {
	out := d.Clone()
	r := xrand.New(seed ^ 0xFAB1_0000)
	var ok bool
	switch class {
	case DropComponent:
		ok = dropComponent(out, r)
	case DuplicateID:
		ok = duplicateID(out, r)
	case RenamePort:
		ok = renamePort(out, r)
	case SwapConnectionLayer:
		ok = swapConnectionLayer(out, r)
	case NegateSpan:
		ok = negateSpan(out, r)
	case DisplacePort:
		ok = displacePort(out, r)
	case EmptyNet:
		ok = emptyNet(out, r)
	case DropLayer:
		ok = dropLayer(out, r)
	default:
		return nil, fmt.Errorf("mutate: unknown class %q", class)
	}
	if !ok {
		return nil, &ErrNotApplicable{Class: class, Device: d.Name}
	}
	return out, nil
}

// connectedComponentIDs returns the IDs touched by at least one connection.
func connectedComponentIDs(d *core.Device) []string {
	touched := map[string]bool{}
	for i := range d.Connections {
		touched[d.Connections[i].Source.Component] = true
		for _, s := range d.Connections[i].Sinks {
			touched[s.Component] = true
		}
	}
	var out []string
	for i := range d.Components {
		if touched[d.Components[i].ID] {
			out = append(out, d.Components[i].ID)
		}
	}
	return out
}

func dropComponent(d *core.Device, r *xrand.Source) bool {
	victims := connectedComponentIDs(d)
	if len(victims) == 0 {
		return false
	}
	id := victims[r.Intn(len(victims))]
	for i := range d.Components {
		if d.Components[i].ID == id {
			d.Components = append(d.Components[:i], d.Components[i+1:]...)
			return true
		}
	}
	return false
}

func duplicateID(d *core.Device, r *xrand.Source) bool {
	if len(d.Components) < 2 {
		return false
	}
	i := r.Intn(len(d.Components))
	j := r.Intn(len(d.Components) - 1)
	if j >= i {
		j++
	}
	d.Components[j].ID = d.Components[i].ID
	return true
}

func renamePort(d *core.Device, r *xrand.Source) bool {
	// Collect (component, port) pairs actually referenced by connections.
	type ref struct{ comp, port string }
	var refs []ref
	for i := range d.Connections {
		for _, t := range d.Connections[i].Targets() {
			if t.Port != "" {
				refs = append(refs, ref{t.Component, t.Port})
			}
		}
	}
	if len(refs) == 0 {
		return false
	}
	pick := refs[r.Intn(len(refs))]
	ix := d.Index()
	c := ix.Component(pick.comp)
	if c == nil {
		return false
	}
	for i := range c.Ports {
		if c.Ports[i].Label == pick.port {
			c.Ports[i].Label = pick.port + "_broken"
			return true
		}
	}
	return false
}

func swapConnectionLayer(d *core.Device, r *xrand.Source) bool {
	if len(d.Layers) < 2 || len(d.Connections) == 0 {
		return false
	}
	// Choose a connection with at least one resolvable, port-named
	// endpoint so the layer mismatch is actually observable.
	ix := d.Index()
	order := r.Intn(len(d.Connections))
	for k := 0; k < len(d.Connections); k++ {
		cn := &d.Connections[(order+k)%len(d.Connections)]
		resolvable := false
		for _, t := range cn.Targets() {
			if _, _, ok := ix.ResolveTarget(t); ok && t.Port != "" {
				resolvable = true
				break
			}
		}
		if !resolvable {
			continue
		}
		for _, l := range d.Layers {
			if l.ID != cn.Layer {
				cn.Layer = l.ID
				return true
			}
		}
	}
	return false
}

func negateSpan(d *core.Device, r *xrand.Source) bool {
	if len(d.Components) == 0 {
		return false
	}
	c := &d.Components[r.Intn(len(d.Components))]
	if r.Intn(2) == 0 {
		c.XSpan = 0
	} else {
		c.YSpan = -c.YSpan
	}
	return true
}

func displacePort(d *core.Device, r *xrand.Source) bool {
	var candidates []*core.Component
	for i := range d.Components {
		if len(d.Components[i].Ports) > 0 && d.Components[i].XSpan > 0 && d.Components[i].YSpan > 0 {
			candidates = append(candidates, &d.Components[i])
		}
	}
	if len(candidates) == 0 {
		return false
	}
	c := candidates[r.Intn(len(candidates))]
	p := &c.Ports[r.Intn(len(c.Ports))]
	p.X = c.XSpan + 1 + r.Int63n(1000)
	return true
}

func emptyNet(d *core.Device, r *xrand.Source) bool {
	if len(d.Connections) == 0 {
		return false
	}
	d.Connections[r.Intn(len(d.Connections))].Sinks = nil
	return true
}

func dropLayer(d *core.Device, r *xrand.Source) bool {
	// Only layers that some component occupies make the fault observable.
	occupied := map[string]bool{}
	for i := range d.Components {
		for _, l := range d.Components[i].Layers {
			occupied[l] = true
		}
	}
	var candidates []int
	for i := range d.Layers {
		if occupied[d.Layers[i].ID] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return false
	}
	i := candidates[r.Intn(len(candidates))]
	d.Layers = append(d.Layers[:i], d.Layers[i+1:]...)
	return true
}

// Detection is the outcome of one injection trial.
type Detection struct {
	Class    Class
	Expected validate.Code
	// Applicable is false when the device had no injection site.
	Applicable bool
	// Detected is true when validation raised the expected code.
	Detected bool
	// ErrorsRaised is the total error-severity diagnostics raised.
	ErrorsRaised int
}

// Trial injects one fault and validates the result.
func Trial(d *core.Device, m Mutation, seed uint64) Detection {
	out := Detection{Class: m.Class, Expected: m.Expect}
	mutated, err := Apply(d, m.Class, seed)
	if err != nil {
		return out
	}
	out.Applicable = true
	report := validate.Validate(mutated)
	out.Detected = report.HasCode(m.Expect)
	out.ErrorsRaised = report.Errors()
	return out
}
