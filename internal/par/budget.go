package par

import (
	"context"
	"runtime"
	"sync/atomic"
)

// Budget is the shared CPU ledger for nested parallelism: when the runner
// pool (request level) and a solver's internal fan-out (solve level) both
// want workers, they draw extra-worker tokens from one Budget so the
// process never runs more compute goroutines than the machine has cores
// to give them.
//
// The ledger counts *extra* workers only. Every caller already owns its
// own goroutine — an admitted request, a pool task — so a parallel section
// that acquires k tokens runs on 1+k goroutines. Acquisition is strictly
// non-blocking (TryAcquire hands out whatever is available, possibly
// zero), which is what makes nesting deadlock-free by construction: a
// solve inside a saturated outer gate simply degrades to sequential
// execution instead of waiting for tokens the outer level will never
// release. Degrading is always safe because worker counts never influence
// results — that is the package's determinism contract.
type Budget struct {
	tokens chan struct{}
	// inUse tracks currently acquired tokens for observability.
	inUse atomic.Int64
}

// NewBudget creates a budget of n extra-worker tokens. Values below 1
// select runtime.NumCPU()-1 (the calling goroutines themselves account
// for the remaining core), floored at 0 tokens — a valid, always-empty
// budget on a single-core machine.
func NewBudget(n int) *Budget {
	if n < 1 {
		n = runtime.NumCPU() - 1
		if n < 0 {
			n = 0
		}
	}
	b := &Budget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Cap reports the budget's total token count.
func (b *Budget) Cap() int { return cap(b.tokens) }

// InUse reports how many tokens are currently acquired.
func (b *Budget) InUse() int { return int(b.inUse.Load()) }

// TryAcquire takes up to n tokens without blocking and returns how many
// it got (possibly zero). The caller must Release exactly that many.
func (b *Budget) TryAcquire(n int) int {
	got := 0
	for got < n {
		select {
		case <-b.tokens:
			got++
		default:
			b.inUse.Add(int64(got))
			return got
		}
	}
	b.inUse.Add(int64(got))
	return got
}

// Release returns n tokens to the budget. Releasing more than was
// acquired panics (the channel send would block), which converts a
// bookkeeping bug into a loud failure instead of silent over-parallelism.
func (b *Budget) Release(n int) {
	b.inUse.Add(int64(-n))
	for i := 0; i < n; i++ {
		select {
		case b.tokens <- struct{}{}:
		default:
			panic("par: Budget.Release beyond capacity")
		}
	}
}

// budgetKey carries a Budget through a context.
type budgetKey struct{}

// IsBudgetKey reports whether key is the context key BudgetFrom looks
// up. Custom context implementations (the HTTP service's pooled request
// context) use it to answer budget lookups directly instead of paying a
// WithValue wrapper per request.
func IsBudgetKey(key any) bool {
	_, ok := key.(budgetKey)
	return ok
}

// ContextWithBudget attaches a CPU budget to the context. Parallel
// sections below (the multi-replica annealer, the concurrent net router)
// size their worker fan-out against it via AcquireWorkers. A nil budget
// returns ctx unchanged.
func ContextWithBudget(ctx context.Context, b *Budget) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom returns the context's budget, or nil when none is attached
// (parallel sections then fan out to their requested width unbudgeted).
func BudgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// AcquireWorkers resolves the worker count for a parallel section that
// wants `want` workers: without a context budget it grants the full
// request; with one it grants 1 (the caller's own goroutine) plus as many
// extra tokens as are free right now, never blocking. The returned
// release func must be called when the section ends; it is never nil.
//
// Worker counts sized this way bound compute goroutines without ever
// changing results: the sections this feeds are deterministic at any
// width, so a budget-starved solve is merely slower, not different.
func AcquireWorkers(ctx context.Context, want int) (int, func()) {
	if want < 1 {
		want = 1
	}
	b := BudgetFrom(ctx)
	if b == nil || want == 1 {
		return want, func() {}
	}
	got := b.TryAcquire(want - 1)
	return 1 + got, func() { b.Release(got) }
}
