// Package par holds the repository's low-level parallelism primitives:
// a bounded worker pool, order-preserving parallel loops, the
// seed-derivation rule that keeps randomized work deterministic under
// any scheduling, and the shared CPU budget that bounds nested
// parallelism. It sits below both the solvers (place, route) and the
// experiment harness (runner), which re-exports it — solvers import par
// directly so the harness can keep importing the solvers without a
// cycle.
//
// The determinism contract every user of this package relies on:
//
//   - A task's seed is a pure function of a base seed and the task's ID
//     (DeriveSeed), never of submission order, completion order, or which
//     worker picked the task up.
//   - Results land in caller-provided slots indexed by task position, so
//     aggregation order equals task order, not completion order.
//   - Shared inputs (cached benchmark devices) are read-only.
//
// Under that contract the parallel paths produce byte-identical artifacts
// to the sequential ones, which the determinism tests assert.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the process-wide worker count the experiment inner loops
// consult (see ForEach with n <= 0). It defaults to 1 — fully sequential —
// and is raised by parchmint-bench's -j flag and by experiments.AllParallel.
var parallelism atomic.Int64

func init() { parallelism.Store(1) }

// SetParallelism sets the default worker count used when a parallel loop
// is invoked without an explicit count. Values below 1 select
// runtime.NumCPU(). It returns the previous value so callers can restore it.
func SetParallelism(n int) int {
	if n < 1 {
		n = runtime.NumCPU()
	}
	return int(parallelism.Swap(int64(n)))
}

// Parallelism reports the current default worker count.
func Parallelism() int { return int(parallelism.Load()) }

// DeriveSeed maps (base, id) to a task seed. The ID is folded with FNV-1a
// and the result is diffused through a SplitMix64 round, so distinct task
// IDs get well-separated seeds and the same task always gets the same seed
// regardless of scheduling. This is the only sanctioned way to seed
// randomized work inside a parallel region.
func DeriveSeed(base uint64, id string) uint64 {
	const (
		fnvOffset = 1469598103934665603
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime
	}
	z := (base ^ h) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Task is one unit of pool work.
type Task struct {
	// ID names the task; it keys the derived seed and the timing table.
	ID string
	// Seed is the task's deterministic seed (see Pool.Run).
	Seed uint64
	// Run does the work. Panics propagate to the Pool.Run caller.
	Run func(t Task) error
}

// Pool executes tasks over a fixed set of worker goroutines.
type Pool struct {
	workers int
	// BaseSeed, when nonzero, fills in each task's Seed as
	// DeriveSeed(BaseSeed, task.ID) before running it (tasks with an
	// explicit nonzero Seed keep it).
	BaseSeed uint64
}

// NewPool creates a pool. Worker counts below 1 select runtime.NumCPU().
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes every task and returns the first error in task order (all
// tasks run even after a failure, matching the sequential loop's artifact
// set). A panicking task stops nothing else; the first panic in task order
// is re-raised on the caller's goroutine after all workers drain.
func (p *Pool) Run(tasks []Task) error {
	if len(tasks) == 0 {
		return nil
	}
	errs := make([]error, len(tasks))
	panics := make([]any, len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := p.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				if t.Seed == 0 && p.BaseSeed != 0 {
					t.Seed = DeriveSeed(p.BaseSeed, t.ID)
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					errs[i] = t.Run(t)
				}()
			}
		}()
	}
	wg.Wait()
	for i, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("par: task %q panicked: %v", tasks[i].ID, r))
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach runs fn(0..n-1) over a worker pool and blocks until all calls
// return. workers <= 0 selects the process default (SetParallelism); a
// resolved worker count of 1 degenerates to a plain loop on the calling
// goroutine, which is the sequential path the parallel one must match
// byte-for-byte. Panics propagate like Pool.Run.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			ID:  fmt.Sprintf("i%d", i),
			Run: func(Task) error { fn(i); return nil },
		}
	}
	_ = NewPool(workers).Run(tasks)
}
