// Package job is the durable async job layer over the service's
// deterministic exec cores. A job is just (op, canonical envelope,
// resolved seed) — exactly the content address of the result cache — so a
// job's result is location- and time-independent: two identical jobs
// coalesce onto one computation, a job whose key is already cached
// completes instantly, and a journaled job replays byte-identically on
// any boot with the same base seed.
//
// The package knows nothing about HTTP. The serving layer supplies the
// executor (its gate + singleflight cache path), an error describer (its
// status/code mapping), and optional hooks (its metrics); the store owns
// lifecycle, the per-job event stream consumed by SSE handlers, and the
// append-only journal that makes submissions survive restarts.
package job

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusCompleted Status = "completed"
	StatusFailed    Status = "failed"
	StatusCanceled  Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusCompleted || s == StatusFailed || s == StatusCanceled
}

// ErrNotFound reports an unknown (or evicted) job ID.
var ErrNotFound = errors.New("job: not found")

// ErrTooManyJobs reports that the store is at its retention cap with no
// terminal job left to evict — every retained job is still queued or
// running. Callers should surface it as overload (429).
var ErrTooManyJobs = errors.New("job: too many active jobs")

// ErrNotFinished reports a result request against a job that has not
// completed.
var ErrNotFinished = errors.New("job: not finished")

// Exec runs one operation to a materialized result entry: the serving
// layer's cached execution path (bounded gate, singleflight, LRU). The
// string return is the cache outcome ("hit", "miss", "coalesced", or ""
// with caching off).
type Exec func(ctx context.Context, op string, envelope json.RawMessage) (cache.Entry, string, error)

// Hooks observe lifecycle transitions for metrics; any field may be nil.
type Hooks struct {
	Submitted func()
	Started   func()
	Finished  func(status Status, d time.Duration)
}

// Config assembles a store.
type Config struct {
	// Exec is required: the execution path jobs run through.
	Exec Exec
	// Workers bounds concurrently executing jobs; <1 means NumCPU. Queued
	// jobs wait (unboundedly in time, bounded in count by MaxJobs) for an
	// executor slot.
	Workers int
	// DescribeError maps an execution error to the service's stable
	// (http status, code) vocabulary for journaling and status responses;
	// nil records 500/"internal".
	DescribeError func(err error) (httpStatus int, code string)
	// Journal, when non-nil, persists transitions and is replayed by
	// NewStore: completed jobs come back served from their journaled
	// bytes, interrupted ones are re-enqueued in journal order.
	Journal *Journal
	// SeedCache, when non-nil, receives each replayed completed result so
	// the serving layer can re-seed its content-addressed cache.
	SeedCache func(key string, ent cache.Entry)
	// ResultPath renders a job's result location for terminal events and
	// status documents (e.g. "/v1/jobs/<id>/result"); nil omits it.
	ResultPath func(id string) string
	// Timeout bounds one job's execution (not its queue wait); 0 means
	// no limit.
	Timeout time.Duration
	// MaxJobs caps retained jobs; once reached, the oldest terminal jobs
	// are evicted to admit new submissions, and submission fails with
	// ErrTooManyJobs when every retained job is still active. <1 selects
	// 1024.
	MaxJobs int
	// Hooks observe transitions for metrics.
	Hooks Hooks
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return runtime.NumCPU()
	}
	return c.Workers
}

func (c Config) maxJobs() int {
	if c.MaxJobs < 1 {
		return 1024
	}
	return c.MaxJobs
}

// Job is one submission's full state. All mutable fields are guarded by
// mu; readers go through snapshots.
type Job struct {
	id       string
	op       string
	key      string
	envelope json.RawMessage
	trace    string
	hub      *hub

	cancelCh   chan struct{}
	cancelOnce sync.Once

	mu              sync.Mutex
	status          Status
	finishing       bool
	created         time.Time
	started         time.Time
	finished        time.Time
	entry           cache.Entry
	outcome         string
	errMsg, errCode string
	errStatus       int
	cancelFn        context.CancelFunc
	cancelRequested bool
}

func newJob(id, op, key string, envelope json.RawMessage, trace string) *Job {
	return &Job{
		id:       id,
		op:       op,
		key:      key,
		envelope: envelope,
		trace:    trace,
		hub:      newHub(),
		cancelCh: make(chan struct{}),
		status:   StatusQueued,
		created:  time.Now(),
	}
}

// Snapshot is an immutable view of a job for rendering. Entry is only
// populated for completed jobs; Err* only for failed ones.
type Snapshot struct {
	ID, Op, Key                string
	Status                     Status
	Outcome                    string
	Created, Started, Finished time.Time
	ContentType                string
	Size                       int
	ErrMsg, ErrCode            string
	ErrStatus                  int
	Events                     int
}

func (j *Job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID: j.id, Op: j.op, Key: j.key,
		Status:  j.status,
		Outcome: j.outcome,
		Created: j.created, Started: j.started, Finished: j.finished,
		ContentType: j.entry.ContentType,
		Size:        len(j.entry.Body),
		ErrMsg:      j.errMsg, ErrCode: j.errCode, ErrStatus: j.errStatus,
		Events: j.hub.count(),
	}
}

// Store owns the job table, the executor slots, and the journal.
type Store struct {
	cfg   Config
	base  context.Context
	stop  context.CancelFunc
	sem   chan struct{}
	wg    sync.WaitGroup
	nonce string
	seq   atomic.Uint64

	running atomic.Int64

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
}

// NewStore builds a store and, when a journal is configured, replays it:
// terminal jobs are restored (completed ones re-seed the cache and serve
// their journaled bytes), and jobs interrupted mid-flight are re-enqueued
// in journal order. Exec must be non-nil.
func NewStore(cfg Config) *Store {
	if cfg.Exec == nil {
		panic("job: Config.Exec is required")
	}
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("job: reading boot nonce: %v", err))
	}
	base, stop := context.WithCancel(context.Background())
	s := &Store{
		cfg:   cfg,
		base:  base,
		stop:  stop,
		sem:   make(chan struct{}, cfg.workers()),
		nonce: hex.EncodeToString(b[:]),
		jobs:  make(map[string]*Job),
	}
	if cfg.Journal != nil {
		s.replay(cfg.Journal.records())
	}
	return s
}

// nextID mints a process-unique job identifier: a per-boot nonce keeps
// IDs from different boots (and journal replays) disjoint, the sequence
// keeps them orderable within one boot.
func (s *Store) nextID() string {
	return fmt.Sprintf("job-%s-%06d", s.nonce, s.seq.Add(1))
}

// Submit durably records a new job and enqueues it for execution. The
// journal line is written before Submit returns, so an acknowledged
// submission survives an immediate crash.
func (s *Store) Submit(op string, envelope json.RawMessage, key, trace string) (Snapshot, error) {
	j := newJob(s.nextID(), op, key, envelope, trace)
	s.mu.Lock()
	for len(s.order) >= s.cfg.maxJobs() {
		if !s.evictOldestTerminalLocked() {
			s.mu.Unlock()
			return Snapshot{}, ErrTooManyJobs
		}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.journalAppend(record{E: recSubmit, ID: j.id, Op: op, Key: key, Envelope: envelope, Trace: trace})
	if s.cfg.Hooks.Submitted != nil {
		s.cfg.Hooks.Submitted()
	}
	j.hub.publish(EventStatus, statusPayload{StatusQueued}, false)
	s.enqueue(j)
	return j.snapshot(), nil
}

// evictOldestTerminalLocked removes the oldest terminal job; caller holds
// s.mu. Returns false when every retained job is still active.
func (s *Store) evictOldestTerminalLocked() bool {
	for i, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		terminal := j.status.Terminal()
		j.mu.Unlock()
		if terminal {
			delete(s.jobs, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			return true
		}
	}
	return false
}

// enqueue hands the job to a runner goroutine. The goroutine parks until
// an executor slot frees up, cancellation strikes, or the store closes.
func (s *Store) enqueue(j *Job) {
	s.wg.Add(1)
	go s.run(j)
}

func (s *Store) run(j *Job) {
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
	case <-j.cancelCh:
		s.finish(j, cache.Entry{}, "", context.Canceled)
		return
	case <-s.base.Done():
		s.finish(j, cache.Entry{}, "", context.Canceled)
		return
	}
	defer func() { <-s.sem }()

	var ctx context.Context
	var cancel context.CancelFunc
	if s.cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(s.base, s.cfg.Timeout)
	} else {
		ctx, cancel = context.WithCancel(s.base)
	}
	defer cancel()

	j.mu.Lock()
	if j.cancelRequested {
		j.mu.Unlock()
		s.finish(j, cache.Entry{}, "", context.Canceled)
		return
	}
	j.cancelFn = cancel
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()

	s.journalAppend(record{E: recStart, ID: j.id})
	s.running.Add(1)
	if s.cfg.Hooks.Started != nil {
		s.cfg.Hooks.Started()
	}
	j.hub.publish(EventStatus, statusPayload{StatusRunning}, false)

	ctx = obs.WithTraceparent(ctx, j.trace)
	ent, outcome, err := s.cfg.Exec(WithProgress(ctx, newProgress(j.hub)), j.op, j.envelope)
	s.running.Add(-1)
	s.finish(j, ent, outcome, err)
}

// statusPayload is the JSON body of a status event.
type statusPayload struct {
	Status Status `json:"status"`
}

// donePayload is the JSON body of the terminal event.
type donePayload struct {
	Status      Status `json:"status"`
	Cache       string `json:"cache,omitempty"`
	Result      string `json:"result,omitempty"`
	ContentType string `json:"content_type,omitempty"`
	Bytes       int    `json:"bytes,omitempty"`
	Error       string `json:"error,omitempty"`
	Code        string `json:"code,omitempty"`
	HTTPStatus  int    `json:"http_status,omitempty"`
}

// finish drives a job to its terminal state exactly once: classify the
// outcome, journal the transition, then publish the terminal status and
// events, and fire the metrics hook. The journal append happens before
// the status flips terminal — write-ahead order — so a client that
// observes "completed" is guaranteed the finish record is already
// durable and a crash right after cannot re-run an acknowledged job.
// Duplicate calls (a cancel racing the runner) no-op on the finishing
// latch.
func (s *Store) finish(j *Job, ent cache.Entry, outcome string, err error) {
	j.mu.Lock()
	if j.status.Terminal() || j.finishing {
		j.mu.Unlock()
		return
	}
	j.finishing = true
	now := time.Now()
	j.finished = now
	var dur time.Duration
	if !j.started.IsZero() {
		dur = now.Sub(j.started)
	}
	var st Status
	var httpStatus int
	var code string
	switch {
	case err == nil:
		st = StatusCompleted
		j.entry = ent
		j.outcome = outcome
	case j.cancelRequested || errors.Is(err, context.Canceled):
		st = StatusCanceled
	default:
		st = StatusFailed
		httpStatus, code = s.describe(err)
		j.errMsg, j.errCode, j.errStatus = err.Error(), code, httpStatus
	}
	j.mu.Unlock()

	// Durable first: the transition is journaled while the job still reads
	// as non-terminal, then the status flips and the events fan out.
	switch st {
	case StatusCompleted:
		s.journalAppend(record{E: recFinish, ID: j.id, Status: st, Cache: outcome,
			ContentType: ent.ContentType, Body: ent.Body})
	case StatusCanceled:
		s.journalAppend(record{E: recCancel, ID: j.id})
	case StatusFailed:
		s.journalAppend(record{E: recFinish, ID: j.id, Status: st,
			Error: err.Error(), Code: code, HTTPStatus: httpStatus})
	}
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()

	switch st {
	case StatusCompleted:
		j.hub.publish(EventStatus, statusPayload{st}, false)
		j.hub.publish(EventDone, donePayload{Status: st, Cache: outcome,
			Result: s.resultPath(j.id), ContentType: ent.ContentType, Bytes: len(ent.Body)}, true)
	case StatusCanceled:
		j.hub.publish(EventStatus, statusPayload{st}, false)
		j.hub.publish(EventDone, donePayload{Status: st}, true)
	case StatusFailed:
		j.hub.publish(EventStatus, statusPayload{st}, false)
		j.hub.publish(EventDone, donePayload{Status: st,
			Error: err.Error(), Code: code, HTTPStatus: httpStatus}, true)
	}
	if s.cfg.Hooks.Finished != nil {
		s.cfg.Hooks.Finished(st, dur)
	}
}

func (s *Store) describe(err error) (int, string) {
	if s.cfg.DescribeError != nil {
		return s.cfg.DescribeError(err)
	}
	return 500, "internal"
}

func (s *Store) resultPath(id string) string {
	if s.cfg.ResultPath == nil {
		return ""
	}
	return s.cfg.ResultPath(id)
}

// journalAppend persists one transition. Journal failures (disk full,
// closed file during shutdown) degrade durability, not availability: the
// in-memory job proceeds and the error is dropped by design.
func (s *Store) journalAppend(r record) {
	if s.cfg.Journal == nil {
		return
	}
	_ = s.cfg.Journal.Append(r)
}

// lookup returns the live job or ErrNotFound.
func (s *Store) lookup(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// Get returns a job's current snapshot.
func (s *Store) Get(id string) (Snapshot, error) {
	j, err := s.lookup(id)
	if err != nil {
		return Snapshot{}, err
	}
	return j.snapshot(), nil
}

// Result returns a completed job's materialized entry and cache outcome.
// It reports ErrNotFinished while the job is queued or running; for
// failed and canceled jobs the caller should render the snapshot's error.
func (s *Store) Result(id string) (cache.Entry, string, error) {
	j, err := s.lookup(id)
	if err != nil {
		return cache.Entry{}, "", err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusCompleted {
		return cache.Entry{}, "", fmt.Errorf("%w: job is %s", ErrNotFinished, j.status)
	}
	return j.entry, j.outcome, nil
}

// Cancel requests cancellation: a queued job finishes canceled without
// running, a running job's context is canceled (aborting the solvers at
// their batch boundaries and releasing the gate slot), and a terminal job
// is left untouched. Cancel is idempotent; it returns the post-request
// snapshot.
func (s *Store) Cancel(id string) (Snapshot, error) {
	j, err := s.lookup(id)
	if err != nil {
		return Snapshot{}, err
	}
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return j.snapshot(), nil
	}
	j.cancelRequested = true
	fn := j.cancelFn
	j.mu.Unlock()
	j.cancelOnce.Do(func() { close(j.cancelCh) })
	if fn != nil {
		fn()
	}
	return j.snapshot(), nil
}

// List returns snapshots of every retained job in submission order.
func (s *Store) List() []Snapshot {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// Events returns a job's events from index from (0-based), whether the
// stream is terminal, and a channel closed on the next publish.
func (s *Store) Events(id string, from int) (evs []Event, terminal bool, changed <-chan struct{}, err error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, false, nil, err
	}
	evs, terminal, changed = j.hub.since(from)
	return evs, terminal, changed, nil
}

// Running reports how many jobs are executing right now.
func (s *Store) Running() int { return int(s.running.Load()) }

// Close cancels every in-flight job and waits for the runners to drain.
// The journal (owned by the caller) is not closed.
func (s *Store) Close() {
	s.stop()
	s.wg.Wait()
}

// replay rebuilds the job table from journal records and re-enqueues the
// jobs the previous process never finished, in journal order — the
// deterministic contract makes the rerun indistinguishable from the run
// that was interrupted.
func (s *Store) replay(recs []record) {
	byID := make(map[string]*Job)
	var order []string
	for _, r := range recs {
		switch r.E {
		case recSubmit:
			if r.Op == "" {
				continue
			}
			if _, ok := byID[r.ID]; ok {
				continue
			}
			j := newJob(r.ID, r.Op, r.Key, r.Envelope, r.Trace)
			byID[r.ID] = j
			order = append(order, r.ID)
		case recFinish:
			j := byID[r.ID]
			if j == nil || j.status.Terminal() {
				continue
			}
			j.finished = time.Now()
			if r.Status == StatusCompleted {
				j.status = StatusCompleted
				j.entry = cache.Entry{ContentType: r.ContentType, Body: r.Body}
				// A journal replay is a durable cache hit: the bytes were
				// computed once and are now served from storage.
				j.outcome = "hit"
				if s.cfg.SeedCache != nil && j.key != "" {
					s.cfg.SeedCache(j.key, j.entry)
				}
			} else {
				j.status = StatusFailed
				j.errMsg, j.errCode, j.errStatus = r.Error, r.Code, r.HTTPStatus
			}
		case recCancel:
			j := byID[r.ID]
			if j == nil || j.status.Terminal() {
				continue
			}
			j.finished = time.Now()
			j.status = StatusCanceled
		}
	}
	for _, id := range order {
		j := byID[id]
		s.jobs[id] = j
		s.order = append(s.order, id)
		if j.status.Terminal() {
			// Rebuild a minimal event history so late subscribers to a
			// replayed job still get a well-formed stream ending in done.
			j.hub.publish(EventStatus, statusPayload{j.status}, false)
			switch j.status {
			case StatusCompleted:
				j.hub.publish(EventDone, donePayload{Status: j.status, Cache: j.outcome,
					Result: s.resultPath(j.id), ContentType: j.entry.ContentType, Bytes: len(j.entry.Body)}, true)
			case StatusFailed:
				j.hub.publish(EventDone, donePayload{Status: j.status,
					Error: j.errMsg, Code: j.errCode, HTTPStatus: j.errStatus}, true)
			default:
				j.hub.publish(EventDone, donePayload{Status: j.status}, true)
			}
			continue
		}
		j.hub.publish(EventStatus, statusPayload{StatusQueued}, false)
		if s.cfg.Hooks.Submitted != nil {
			s.cfg.Hooks.Submitted()
		}
		s.enqueue(j)
	}
}
