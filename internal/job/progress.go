package job

import (
	"context"
	"sync"
	"time"
)

// progressInterval throttles progress events: algorithm batches flush
// every few hundred microseconds on a fast anneal, and an SSE stream that
// relays every flush would drown the transitions that matter. One event
// per interval keeps streams light while still animating long runs.
const progressInterval = 100 * time.Millisecond

// Progress is one job's live telemetry sink. It implements the
// obs.BatchTap shape, so the serving layer can graft it onto its shared
// recorder with Recorder.WithTap and the engines' existing
// MoveBatch/ExpansionBatch flush points feed it without knowing jobs
// exist. Counters are cumulative over the job's lifetime; emission into
// the job's event stream is throttled to progressInterval.
type Progress struct {
	hub *hub

	mu             sync.Mutex
	lastEmit       time.Time
	temp           float64
	moves, accept  int64
	expans, pushes int64
}

func newProgress(h *hub) *Progress {
	return &Progress{hub: h}
}

// annealProgress and routeProgress are the JSON payload halves of one
// progress event.
type annealProgress struct {
	Temperature float64 `json:"temperature"`
	Moves       int64   `json:"moves"`
	Accepted    int64   `json:"accepted"`
}

type routeProgress struct {
	Expansions int64 `json:"expansions"`
	Pushes     int64 `json:"pushes"`
}

type progressPayload struct {
	Anneal *annealProgress `json:"anneal,omitempty"`
	Route  *routeProgress  `json:"route,omitempty"`
}

// AnnealBatch folds one annealing batch into the cumulative counters and
// emits a throttled progress event. Safe for concurrent use — parallel
// tempering replicas flush from their own goroutines.
func (p *Progress) AnnealBatch(temp float64, moves, accepted int) {
	if p == nil || moves <= 0 {
		return
	}
	p.mu.Lock()
	p.temp = temp
	p.moves += int64(moves)
	p.accept += int64(accepted)
	p.maybeEmitLocked()
	p.mu.Unlock()
}

// RouteBatch folds one maze-search batch into the cumulative counters and
// emits a throttled progress event.
func (p *Progress) RouteBatch(engine string, expansions, pushes int) {
	if p == nil || (expansions == 0 && pushes == 0) {
		return
	}
	p.mu.Lock()
	p.expans += int64(expansions)
	p.pushes += int64(pushes)
	p.maybeEmitLocked()
	p.mu.Unlock()
}

// Stage reports one finished (or aborted) pipeline stage. Stage events
// are never throttled — transitions are exactly what a watcher is waiting
// for — and each one also flushes the current counters.
func (p *Progress) Stage(stage string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.lastEmit = time.Now()
	payload := p.payloadLocked()
	p.mu.Unlock()
	p.hub.publish(EventStage, struct {
		Stage   string  `json:"stage"`
		Seconds float64 `json:"seconds"`
	}{stage, d.Seconds()}, false)
	p.hub.publish(EventProgress, payload, false)
}

// maybeEmitLocked publishes a progress event if the throttle window has
// passed; the caller holds p.mu.
func (p *Progress) maybeEmitLocked() {
	now := time.Now()
	if now.Sub(p.lastEmit) < progressInterval {
		return
	}
	p.lastEmit = now
	payload := p.payloadLocked()
	// Publish outside the counter lock would be nicer, but hub has its own
	// short critical section and never calls back into Progress, so the
	// nesting is deadlock-free and keeps emission atomic with the read.
	p.hub.publish(EventProgress, payload, false)
}

func (p *Progress) payloadLocked() progressPayload {
	var payload progressPayload
	if p.moves > 0 {
		payload.Anneal = &annealProgress{Temperature: p.temp, Moves: p.moves, Accepted: p.accept}
	}
	if p.expans > 0 || p.pushes > 0 {
		payload.Route = &routeProgress{Expansions: p.expans, Pushes: p.pushes}
	}
	return payload
}

// Context plumbing: the store attaches each job's Progress to the
// execution context, and the serving layer picks it up to wire the
// recorder tap and the pnr stage observer. Absence is a valid state — a
// nil *Progress no-ops on every method.
type progressKey struct{}

// WithProgress attaches p to the context; nil returns ctx unchanged.
func WithProgress(ctx context.Context, p *Progress) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, p)
}

// ProgressFromContext returns the context's progress sink, or nil. The
// nil result is safe to use directly.
func ProgressFromContext(ctx context.Context) *Progress {
	p, _ := ctx.Value(progressKey{}).(*Progress)
	return p
}
