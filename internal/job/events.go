package job

import (
	"encoding/json"
	"sync"
)

// Event is one entry in a job's progress stream. Seq numbers start at 1
// and are dense within a job, so an SSE client that reconnects with
// Last-Event-ID resumes exactly where it left off. Data is the event's
// JSON payload, marshaled once at publish time and immutable afterwards.
type Event struct {
	Seq  int
	Type string
	Data json.RawMessage
}

// Event types. Every job stream ends with exactly one EventDone.
const (
	// EventStatus reports a lifecycle transition: {"status": "..."}.
	EventStatus = "status"
	// EventStage reports one finished pipeline stage:
	// {"stage": "place", "seconds": 0.042}.
	EventStage = "stage"
	// EventProgress reports cumulative algorithm work:
	// {"anneal": {...}, "route": {...}}. Emission is throttled.
	EventProgress = "progress"
	// EventDone is the terminal event: final status plus the result
	// location (completed) or the error (failed).
	EventDone = "done"
)

// maxHubEvents caps one job's retained history. Status, stage, and done
// events are always admitted (they are structurally bounded); progress
// events stop being recorded once the cap is reached, so a pathological
// run cannot grow a job's memory without bound.
const maxHubEvents = 4096

// hub is one job's append-only event log plus a change broadcast.
// Subscribers poll since(i) and block on the returned channel; publish
// closes the channel, waking every subscriber at once. Events are
// immutable after append, so slices of the log are handed out directly.
type hub struct {
	mu      sync.Mutex
	events  []Event
	changed chan struct{}
	done    bool
}

func newHub() *hub {
	return &hub{changed: make(chan struct{})}
}

// publish appends one event. Terminal marks the stream complete: no
// further events will follow and subscribers should close after draining.
// Publishing after the terminal event is a silent no-op, as is a progress
// event past the history cap.
func (h *hub) publish(typ string, payload any, terminal bool) {
	data, err := json.Marshal(payload)
	if err != nil {
		// Payloads are internal DTOs that marshal by construction.
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	if typ == EventProgress && len(h.events) >= maxHubEvents {
		return
	}
	h.events = append(h.events, Event{Seq: len(h.events) + 1, Type: typ, Data: data})
	h.done = terminal
	close(h.changed)
	h.changed = make(chan struct{})
}

// since returns the events from index from (0-based), whether the stream
// is terminal, and a channel closed on the next publish. When the
// returned slice already reaches the end of a terminal stream, the
// channel will never close — check terminal first.
func (h *hub) since(from int) (evs []Event, terminal bool, changed <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(h.events) {
		from = len(h.events)
	}
	return h.events[from:], h.done, h.changed
}

// len reports how many events have been published.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}
