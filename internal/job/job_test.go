package job

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
)

// instantExec returns op's name as the body — enough to tell results
// apart while keeping tests fast.
func instantExec(ctx context.Context, op string, envelope json.RawMessage) (cache.Entry, string, error) {
	return cache.Entry{ContentType: "text/plain", Body: []byte("result:" + op)}, "miss", nil
}

// waitTerminal polls until the job leaves the active states.
func waitTerminal(t *testing.T, s *Store, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if snap.Status.Terminal() {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %s", id, snap.Status)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s := NewStore(Config{Exec: instantExec, Workers: 2})
	defer s.Close()
	snap, err := s.Submit("stats", json.RawMessage(`{"bench":"x"}`), "key-1", "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap.Status != StatusQueued && snap.Status != StatusRunning && snap.Status != StatusCompleted {
		t.Errorf("fresh submit status = %s", snap.Status)
	}
	done := waitTerminal(t, s, snap.ID)
	if done.Status != StatusCompleted {
		t.Fatalf("status = %s, want completed", done.Status)
	}
	ent, outcome, err := s.Result(snap.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if string(ent.Body) != "result:stats" || outcome != "miss" {
		t.Errorf("result = %q / %q", ent.Body, outcome)
	}
	// The event stream is well-formed: ends with exactly one done event.
	evs, terminal, _, err := s.Events(snap.ID, 0)
	if err != nil || !terminal {
		t.Fatalf("Events: err=%v terminal=%v", err, terminal)
	}
	if n := len(evs); n == 0 || evs[n-1].Type != EventDone {
		t.Errorf("stream does not end in done: %+v", evs)
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d, want dense from 1", i, ev.Seq)
		}
	}
}

func TestResultBeforeCompletionConflicts(t *testing.T) {
	block := make(chan struct{})
	s := NewStore(Config{Workers: 1, Exec: func(ctx context.Context, op string, env json.RawMessage) (cache.Entry, string, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return cache.Entry{}, "", ctx.Err()
	}})
	defer s.Close()
	defer close(block)
	snap, err := s.Submit("pnr", json.RawMessage(`{}`), "k", "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, _, err := s.Result(snap.ID); !errors.Is(err, ErrNotFinished) {
		t.Errorf("Result on active job: err = %v, want ErrNotFinished", err)
	}
	if _, _, err := s.Result("job-none-000000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Result on unknown job: err = %v, want ErrNotFound", err)
	}
}

func TestCancelRunningJobReleasesSlot(t *testing.T) {
	started := make(chan struct{}, 1)
	s := NewStore(Config{Workers: 1, Exec: func(ctx context.Context, op string, env json.RawMessage) (cache.Entry, string, error) {
		started <- struct{}{}
		<-ctx.Done()
		return cache.Entry{}, "", ctx.Err()
	}})
	defer s.Close()
	snap, err := s.Submit("pnr", json.RawMessage(`{}`), "k", "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	if _, err := s.Cancel(snap.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got := waitTerminal(t, s, snap.ID); got.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", got.Status)
	}
	// The worker slot is free again: a fresh job completes.
	next, err := s.Submit("stats", json.RawMessage(`{}`), "k2", "")
	if err != nil {
		t.Fatalf("Submit after cancel: %v", err)
	}
	go func() {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
		}
	}()
	_ = next // the exec blocks on ctx; cancel it too so Close drains fast
	if _, err := s.Cancel(next.ID); err != nil {
		t.Fatalf("Cancel second: %v", err)
	}
	waitTerminal(t, s, next.ID)
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	var ran atomic.Int64
	block := make(chan struct{})
	s := NewStore(Config{Workers: 1, Exec: func(ctx context.Context, op string, env json.RawMessage) (cache.Entry, string, error) {
		ran.Add(1)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return cache.Entry{}, "", ctx.Err()
	}})
	defer s.Close()
	defer close(block)
	first, _ := s.Submit("pnr", json.RawMessage(`{}`), "k1", "")
	queued, _ := s.Submit("pnr", json.RawMessage(`{}`), "k2", "")
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	if got := waitTerminal(t, s, queued.ID); got.Status != StatusCanceled {
		t.Fatalf("queued job status = %s, want canceled", got.Status)
	}
	if _, err := s.Cancel(first.ID); err != nil {
		t.Fatalf("Cancel first: %v", err)
	}
	waitTerminal(t, s, first.ID)
	if n := ran.Load(); n != 1 {
		t.Errorf("exec ran %d times, want 1 (canceled queued job must never run)", n)
	}
}

func TestRetentionEvictsTerminalOnly(t *testing.T) {
	s := NewStore(Config{Exec: instantExec, Workers: 1, MaxJobs: 2})
	defer s.Close()
	a, _ := s.Submit("stats", json.RawMessage(`{}`), "ka", "")
	waitTerminal(t, s, a.ID)
	b, _ := s.Submit("stats", json.RawMessage(`{}`), "kb", "")
	waitTerminal(t, s, b.ID)
	c, err := s.Submit("stats", json.RawMessage(`{}`), "kc", "")
	if err != nil {
		t.Fatalf("Submit past cap: %v", err)
	}
	waitTerminal(t, s, c.ID)
	if _, err := s.Get(a.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest terminal job survived eviction: err = %v", err)
	}
	if len(s.List()) != 2 {
		t.Errorf("retained %d jobs, want 2", len(s.List()))
	}
}

func TestTooManyActiveJobs(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s := NewStore(Config{Workers: 1, MaxJobs: 2, Exec: func(ctx context.Context, op string, env json.RawMessage) (cache.Entry, string, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return cache.Entry{ContentType: "t", Body: []byte("x")}, "miss", nil
	}})
	defer s.Close()
	if _, err := s.Submit("pnr", json.RawMessage(`{}`), "k1", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("pnr", json.RawMessage(`{}`), "k2", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("pnr", json.RawMessage(`{}`), "k3", ""); !errors.Is(err, ErrTooManyJobs) {
		t.Errorf("Submit with all slots active: err = %v, want ErrTooManyJobs", err)
	}
}

func TestJournalReplayCompletedAndInterrupted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var seeded []string
	// First boot: one job completes, one is submitted but never finishes
	// (simulated by appending only its submit record).
	s := NewStore(Config{Exec: instantExec, Workers: 1, Journal: j})
	done, err := s.Submit("stats", json.RawMessage(`{"bench":"a"}`), "key-done", "")
	if err != nil {
		t.Fatal(err)
	}
	first := waitTerminal(t, s, done.ID)
	if first.Status != StatusCompleted {
		t.Fatalf("first boot job = %s", first.Status)
	}
	firstEnt, _, _ := s.Result(done.ID)
	s.Close()
	if err := j.Append(record{E: recSubmit, ID: "job-dead-000001", Op: "convert",
		Key: "key-interrupted", Envelope: json.RawMessage(`{"bench":"b"}`)}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Second boot replays: the completed job serves its journaled bytes as
	// a durable cache hit, the interrupted one re-runs deterministically.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := NewStore(Config{Exec: instantExec, Workers: 1, Journal: j2,
		SeedCache: func(key string, ent cache.Entry) { seeded = append(seeded, key) }})
	defer s2.Close()

	snap, err := s2.Get(done.ID)
	if err != nil {
		t.Fatalf("replayed job lookup: %v", err)
	}
	if snap.Status != StatusCompleted || snap.Outcome != "hit" {
		t.Errorf("replayed job = %s/%q, want completed/hit", snap.Status, snap.Outcome)
	}
	ent, outcome, err := s2.Result(done.ID)
	if err != nil {
		t.Fatalf("replayed Result: %v", err)
	}
	if string(ent.Body) != string(firstEnt.Body) {
		t.Errorf("replayed bytes differ: %q vs %q", ent.Body, firstEnt.Body)
	}
	if outcome != "hit" {
		t.Errorf("replayed outcome = %q, want hit", outcome)
	}
	if len(seeded) != 1 || seeded[0] != "key-done" {
		t.Errorf("SeedCache keys = %v, want [key-done]", seeded)
	}
	interrupted := waitTerminal(t, s2, "job-dead-000001")
	if interrupted.Status != StatusCompleted {
		t.Fatalf("interrupted job = %s, want completed after re-run", interrupted.Status)
	}
	if ent, _, _ := s2.Result("job-dead-000001"); string(ent.Body) != "result:convert" {
		t.Errorf("re-run body = %q", ent.Body)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(record{E: recSubmit, ID: "job-x-000001", Op: "stats",
		Envelope: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// A kill -9 mid-write leaves a truncated line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"e":"fin`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer j2.Close()
	if j2.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", j2.Dropped())
	}
	if len(j2.records()) != 1 {
		t.Fatalf("records = %d, want 1", len(j2.records()))
	}
	// The file still appends cleanly after the torn line.
	if err := j2.Append(record{E: recCancel, ID: "job-x-000001"}); err != nil {
		t.Fatalf("append after torn tail: %v", err)
	}
	data, _ := os.ReadFile(path)
	if !strings.HasSuffix(strings.TrimRight(string(data), "\n"), `"}`) {
		t.Errorf("appended record did not terminate cleanly: %q", data)
	}
}

func TestFailedJobRecordsDescribedError(t *testing.T) {
	boom := errors.New("solver exploded")
	s := NewStore(Config{
		Workers: 1,
		Exec: func(ctx context.Context, op string, env json.RawMessage) (cache.Entry, string, error) {
			return cache.Entry{}, "", boom
		},
		DescribeError: func(err error) (int, string) { return 422, "invalid-device" },
	})
	defer s.Close()
	snap, _ := s.Submit("pnr", json.RawMessage(`{}`), "k", "")
	got := waitTerminal(t, s, snap.ID)
	if got.Status != StatusFailed {
		t.Fatalf("status = %s, want failed", got.Status)
	}
	if got.ErrMsg != "solver exploded" || got.ErrCode != "invalid-device" || got.ErrStatus != 422 {
		t.Errorf("stored error = %q/%q/%d", got.ErrMsg, got.ErrCode, got.ErrStatus)
	}
	if _, _, err := s.Result(snap.ID); !errors.Is(err, ErrNotFinished) {
		t.Errorf("Result on failed job: err = %v, want ErrNotFinished", err)
	}
}

func TestHooksFire(t *testing.T) {
	var submitted, started, completed atomic.Int64
	s := NewStore(Config{Exec: instantExec, Workers: 1, Hooks: Hooks{
		Submitted: func() { submitted.Add(1) },
		Started:   func() { started.Add(1) },
		Finished: func(st Status, d time.Duration) {
			if st == StatusCompleted {
				completed.Add(1)
			}
		},
	}})
	defer s.Close()
	snap, _ := s.Submit("stats", json.RawMessage(`{}`), "k", "")
	waitTerminal(t, s, snap.ID)
	if submitted.Load() != 1 || started.Load() != 1 || completed.Load() != 1 {
		t.Errorf("hooks = submit %d start %d complete %d, want 1/1/1",
			submitted.Load(), started.Load(), completed.Load())
	}
}

// TestJournalReportsMidFileCorruptionWithLineNumbers: dropped lines are
// not only counted but located, so an operator can distinguish the
// expected torn tail from corruption that silently narrows a handoff
// replay.
func TestJournalReportsMidFileCorruptionWithLineNumbers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	good1 := `{"e":"submit","id":"job-x-000001","op":"stats","envelope":{}}`
	corrupt := `{"e":"sub...CORRUPT`
	missing := `{"time":"2026-01-01T00:00:00Z"}`
	good2 := `{"e":"cancel","id":"job-x-000001"}`
	content := good1 + "\n" + corrupt + "\n" + good2 + "\n" + missing + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", j.Dropped())
	}
	dl := j.DroppedLines()
	if dl[0].Line != 2 || dl[1].Line != 4 {
		t.Errorf("dropped line numbers = %d, %d; want 2, 4", dl[0].Line, dl[1].Line)
	}
	if dl[0].Reason == "" || dl[1].Reason == "" {
		t.Error("dropped lines carry no reason")
	}
	if len(j.records()) != 2 {
		t.Errorf("replayable records = %d, want 2 (good lines on both sides of the corruption)", len(j.records()))
	}
}
