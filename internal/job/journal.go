package job

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// The journal is the job layer's durability story: an append-only JSONL
// file recording every lifecycle transition, fsynced per append so a
// kill -9 loses at most the line being written. On boot the store replays
// it — completed jobs come back with their result bytes (re-seeding the
// content-addressed cache), canceled and failed jobs come back terminal,
// and jobs caught mid-flight (submit or start without a terminal record)
// are re-enqueued in journal order. Determinism is what makes replay
// correct: a re-enqueued job is just (op, envelope, seed) and recomputes
// byte-identical results on any boot with the same base seed.
//
// Record kinds, one JSON object per line:
//
//	{"e":"submit","id":...,"op":...,"key":...,"envelope":{...},"time":...}
//	{"e":"start","id":...,"time":...}
//	{"e":"finish","id":...,"status":"completed","cache":...,
//	 "content_type":...,"body":"<base64>","time":...}
//	{"e":"finish","id":...,"status":"failed","error":...,"code":...,
//	 "http_status":...,"time":...}
//	{"e":"cancel","id":...,"time":...}
//
// The time field is informational (RFC3339Nano, wall clock); replay never
// depends on it.
const (
	recSubmit = "submit"
	recStart  = "start"
	recFinish = "finish"
	recCancel = "cancel"
)

// record is one journal line.
type record struct {
	E        string          `json:"e"`
	ID       string          `json:"id"`
	Time     string          `json:"time,omitempty"`
	Op       string          `json:"op,omitempty"`
	Key      string          `json:"key,omitempty"`
	Envelope json.RawMessage `json:"envelope,omitempty"`
	// Trace is the W3C traceparent of the submitting request, so a job
	// replayed on a later boot still correlates with the boot that
	// accepted it.
	Trace string `json:"trace,omitempty"`
	Status   Status          `json:"status,omitempty"`
	Cache    string          `json:"cache,omitempty"`
	// ContentType and Body carry a completed job's materialized result;
	// Body is base64 on the wire (encoding/json's []byte rendering).
	ContentType string `json:"content_type,omitempty"`
	Body        []byte `json:"body,omitempty"`
	// Error, Code, and HTTPStatus describe a failed job's outcome in the
	// service's stable error vocabulary.
	Error      string `json:"error,omitempty"`
	Code       string `json:"code,omitempty"`
	HTTPStatus int    `json:"http_status,omitempty"`
}

// Journal is an append-only JSONL transition log. Open it once per
// process; Append is safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// recs holds the records read at open time, for the store's replay.
	recs []record
	// dropped details the unparseable lines skipped during open — the
	// expected torn tail write after kill -9, but also mid-file corruption
	// that would silently narrow a handoff replay if left invisible.
	dropped []DroppedLine
}

// DroppedLine describes one journal line skipped as unparseable during
// open: its 1-based line number and why it was rejected.
type DroppedLine struct {
	// Line is the 1-based line number in the journal file.
	Line int
	// Reason says what was wrong: a JSON parse error, or a record missing
	// its required fields.
	Reason string
}

// OpenJournal opens (creating if needed) the journal at path, reads every
// replayable record, and leaves the file positioned for appends. A
// truncated or corrupt line — the expected artifact of an unclean
// shutdown mid-write — is skipped, not fatal; Dropped reports how many.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("job: opening journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for lineno := 1; sc.Scan(); lineno++ {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			j.dropped = append(j.dropped, DroppedLine{Line: lineno, Reason: err.Error()})
			continue
		}
		if r.E == "" || r.ID == "" {
			j.dropped = append(j.dropped, DroppedLine{Line: lineno, Reason: "missing e or id field"})
			continue
		}
		j.recs = append(j.recs, r)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("job: reading journal: %w", err)
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Dropped reports how many unparseable lines open skipped.
func (j *Journal) Dropped() int { return len(j.dropped) }

// DroppedLines details each skipped line (number and reason), so callers
// can distinguish the expected torn tail from mid-file corruption. The
// slice is owned by the journal.
func (j *Journal) DroppedLines() []DroppedLine { return j.dropped }

// records hands the store the replay set; the slice is owned by the
// journal and read once during store construction.
func (j *Journal) records() []record { return j.recs }

// Append writes one record and syncs it to stable storage. The write is
// a single buffered line, so concurrent appends never interleave bytes.
func (j *Journal) Append(r record) error {
	r.Time = time.Now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("job: encoding journal record: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("job: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("job: syncing journal: %w", err)
	}
	return nil
}

// Close closes the underlying file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
