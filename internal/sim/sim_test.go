package sim

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
)

// linearDevice builds in -> mixer -> out with explicit channel widths.
func linearDevice(t testing.TB) *core.Device {
	t.Helper()
	b := core.NewBuilder("linear")
	flow := b.FlowLayer()
	b.IOPort("in", flow, 200)
	b.IOPort("out", flow, 200)
	b.TwoPort("m", core.EntityMixer, flow, 2000, 1000)
	b.Connect("c1", flow, "in.port1", "m.port1")
	b.Connect("c2", flow, "m.port2", "out.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// splitterDevice builds in -> node -> {outA, outB} with equal arms.
func splitterDevice(t testing.TB) *core.Device {
	t.Helper()
	b := core.NewBuilder("split")
	flow := b.FlowLayer()
	b.IOPort("in", flow, 200)
	b.IOPort("outA", flow, 200)
	b.IOPort("outB", flow, 200)
	b.Component("n", core.EntityNode, []string{flow}, 100, 100,
		core.Port{Label: "port1", Layer: flow, X: 0, Y: 50},
		core.Port{Label: "port2", Layer: flow, X: 100, Y: 33},
		core.Port{Label: "port3", Layer: flow, X: 100, Y: 66},
	)
	b.Connect("cin", flow, "in.port1", "n.port1")
	b.Connect("ca", flow, "n.port2", "outA.port1")
	b.Connect("cb", flow, "n.port3", "outB.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestHagenPoiseuille(t *testing.T) {
	// Resistance grows linearly with length.
	r1 := hagenPoiseuille(WaterViscosity, 1000, 100, 100)
	r2 := hagenPoiseuille(WaterViscosity, 2000, 100, 100)
	if math.Abs(r2/r1-2) > 1e-9 {
		t.Errorf("length scaling: r2/r1 = %v, want 2", r2/r1)
	}
	// Wider channels resist less.
	rWide := hagenPoiseuille(WaterViscosity, 1000, 200, 100)
	if rWide >= r1 {
		t.Errorf("wider channel should have lower resistance: %v >= %v", rWide, r1)
	}
	// Orientation-independent (w and h swap).
	a := hagenPoiseuille(WaterViscosity, 1000, 200, 50)
	bb := hagenPoiseuille(WaterViscosity, 1000, 50, 200)
	if a != bb {
		t.Errorf("w/h swap changed resistance: %v vs %v", a, bb)
	}
	// Degenerate geometry is infinite.
	if !math.IsInf(hagenPoiseuille(WaterViscosity, 0, 100, 100), 1) {
		t.Error("zero length should be infinite resistance")
	}
}

func TestBuildNetwork(t *testing.T) {
	d := linearDevice(t)
	n, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: in.port1, out.port1, m.port1, m.port2, m.~hub = 5.
	if n.NumNodes() != 5 {
		t.Errorf("nodes = %d, want 5", n.NumNodes())
	}
	// Resistors: 2 channels + 2 mixer spokes.
	if n.NumResistors() != 4 {
		t.Errorf("resistors = %d, want 4", n.NumResistors())
	}
	internals := 0
	for _, r := range n.Resistors() {
		if r.Internal {
			internals++
		}
		if r.R <= 0 {
			t.Errorf("resistor %s has non-positive R", r.Label)
		}
	}
	if internals != 2 {
		t.Errorf("internal resistors = %d, want 2", internals)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(&core.Device{Name: "x"}, Options{}); err == nil {
		t.Error("device without flow layer should fail")
	}
	b := core.NewBuilder("empty")
	b.FlowLayer()
	d, _ := b.Build()
	if _, err := Build(d, Options{}); err == nil {
		t.Error("device without edges should fail")
	}
}

func TestSolveLinear(t *testing.T) {
	d := linearDevice(t)
	n, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := n.Solve([]BC{
		{Node: "in.port1", Pressure: 1000},
		{Node: "out.port1", Pressure: 0},
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Series network: both channels carry the same flow, source to sink.
	f1, ok1 := sol.FlowAt("c1")
	f2, ok2 := sol.FlowAt("c2")
	if !ok1 || !ok2 {
		t.Fatalf("flows missing: %+v", sol.Flows)
	}
	if f1.Q <= 0 {
		t.Errorf("flow should run downhill: %v", f1.Q)
	}
	if math.Abs(f1.Q-f2.Q)/f1.Q > 1e-6 {
		t.Errorf("series flows differ: %v vs %v", f1.Q, f2.Q)
	}
	// Pressure drops monotonically along the path.
	pIn := sol.Pressure["in.port1"]
	pM1 := sol.Pressure["m.port1"]
	pM2 := sol.Pressure["m.port2"]
	pOut := sol.Pressure["out.port1"]
	if !(pIn > pM1 && pM1 > pM2 && pM2 > pOut) {
		t.Errorf("pressure not monotone: %v %v %v %v", pIn, pM1, pM2, pOut)
	}
}

func TestSolveLinearity(t *testing.T) {
	// Doubling the driving pressure doubles every flow.
	d := linearDevice(t)
	n, _ := Build(d, Options{})
	s1, err := n.Solve([]BC{{Node: "in.port1", Pressure: 1000}, {Node: "out.port1", Pressure: 0}})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := n.Solve([]BC{{Node: "in.port1", Pressure: 2000}, {Node: "out.port1", Pressure: 0}})
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := s1.FlowAt("c1")
	f2, _ := s2.FlowAt("c1")
	if math.Abs(f2.Q/f1.Q-2) > 1e-6 {
		t.Errorf("linearity violated: ratio %v", f2.Q/f1.Q)
	}
}

func TestSolveConservation(t *testing.T) {
	d := splitterDevice(t)
	n, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := n.Solve([]BC{
		{Node: "in.port1", Pressure: 5000},
		{Node: "outA.port1", Pressure: 0},
		{Node: "outB.port1", Pressure: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Internal nodes conserve flow.
	for _, node := range []NodeID{"n.port1", "n.port2", "n.port3", "n.~hub"} {
		if im := n.Imbalance(sol, node); math.Abs(im) > 1e-15 {
			t.Errorf("node %s imbalance = %g", node, im)
		}
	}
	// Inflow at the source equals total outflow at the sinks.
	in := n.Imbalance(sol, "in.port1")
	outA := n.Imbalance(sol, "outA.port1")
	outB := n.Imbalance(sol, "outB.port1")
	if math.Abs(in+outA+outB) > 1e-15 {
		t.Errorf("global conservation violated: %g + %g + %g", in, outA, outB)
	}
	// Symmetric arms split evenly.
	fa, _ := sol.FlowAt("ca")
	fb, _ := sol.FlowAt("cb")
	if math.Abs(fa.Q-fb.Q)/math.Abs(fa.Q) > 1e-6 {
		t.Errorf("symmetric split uneven: %v vs %v", fa.Q, fb.Q)
	}
}

func TestSolveSeriesParallelFormulas(t *testing.T) {
	// Two identical parallel arms halve the resistance: total flow with
	// the splitter is very nearly double that of a single arm of the same
	// geometry... rather than re-deriving exactly (component internals
	// complicate the algebra), check the robust inequality: parallel total
	// flow exceeds either single arm's flow.
	d := splitterDevice(t)
	n, _ := Build(d, Options{})
	sol, err := n.Solve([]BC{
		{Node: "in.port1", Pressure: 1000},
		{Node: "outA.port1", Pressure: 0},
		{Node: "outB.port1", Pressure: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	fin, _ := sol.FlowAt("cin")
	fa, _ := sol.FlowAt("ca")
	if fin.Q <= fa.Q {
		t.Errorf("total %v not above single arm %v", fin.Q, fa.Q)
	}
}

func TestSolveErrors(t *testing.T) {
	d := linearDevice(t)
	n, _ := Build(d, Options{})
	if _, err := n.Solve(nil); err == nil {
		t.Error("no BCs should fail")
	}
	if _, err := n.Solve([]BC{{Node: "in.port1", Pressure: 1}}); err == nil {
		t.Error("single BC should fail")
	}
	if _, err := n.Solve([]BC{
		{Node: "ghost.port1", Pressure: 1},
		{Node: "out.port1", Pressure: 0},
	}); err == nil {
		t.Error("unknown BC node should fail")
	}
}

func TestConcentrationsDilution(t *testing.T) {
	// Symmetric splitter fed at concentration 1: everything downstream is 1.
	d := splitterDevice(t)
	n, _ := Build(d, Options{})
	sol, err := n.Solve([]BC{
		{Node: "in.port1", Pressure: 1000},
		{Node: "outA.port1", Pressure: 0},
		{Node: "outB.port1", Pressure: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := n.Concentrations(sol, map[NodeID]float64{"in.port1": 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []NodeID{"outA.port1", "outB.port1"} {
		if math.Abs(conc[node]-1) > 1e-9 {
			t.Errorf("conc[%s] = %v, want 1", node, conc[node])
		}
	}
}

func TestConcentrationsMixing(t *testing.T) {
	// Two inlets at concentrations 1 and 0 merging through a node: the
	// outlet concentration is the flow-weighted mean; with symmetric arms
	// it is 0.5.
	b := core.NewBuilder("merge")
	flow := b.FlowLayer()
	b.IOPort("inA", flow, 200)
	b.IOPort("inB", flow, 200)
	b.IOPort("out", flow, 200)
	b.Component("n", core.EntityNode, []string{flow}, 100, 100,
		core.Port{Label: "port1", Layer: flow, X: 0, Y: 33},
		core.Port{Label: "port2", Layer: flow, X: 0, Y: 66},
		core.Port{Label: "port3", Layer: flow, X: 100, Y: 50},
	)
	b.Connect("ca", flow, "inA.port1", "n.port1")
	b.Connect("cb", flow, "inB.port1", "n.port2")
	b.Connect("cout", flow, "n.port3", "out.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := n.Solve([]BC{
		{Node: "inA.port1", Pressure: 1000},
		{Node: "inB.port1", Pressure: 1000},
		{Node: "out.port1", Pressure: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := n.Concentrations(sol, map[NodeID]float64{
		"inA.port1": 1,
		"inB.port1": 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(conc["out.port1"]-0.5) > 1e-6 {
		t.Errorf("mixed concentration = %v, want 0.5", conc["out.port1"])
	}
	if _, err := n.Concentrations(sol, map[NodeID]float64{"ghost": 1}); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestGradientGeneratorProfile(t *testing.T) {
	// The molecular gradient benchmark: inlet A at 1, inlet B at 0, all
	// outlets at ambient. The outlet concentrations must decrease
	// monotonically from the A side to the B side — the device's purpose.
	bm, err := bench.ByName("molecular_gradients")
	if err != nil {
		t.Fatal(err)
	}
	d := bm.Build()
	n, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bcs := []BC{
		{Node: "inA.port1", Pressure: 10000},
		{Node: "inB.port1", Pressure: 10000},
	}
	for i := 1; i <= 6; i++ {
		bcs = append(bcs, BC{Node: NodeID(nodeName("out", i)), Pressure: 0})
	}
	sol, err := n.Solve(bcs)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := n.Concentrations(sol, map[NodeID]float64{
		"inA.port1": 1,
		"inB.port1": 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	var profile []float64
	for i := 1; i <= 6; i++ {
		profile = append(profile, conc[NodeID(nodeName("out", i))])
	}
	for i := 1; i < len(profile); i++ {
		if profile[i] > profile[i-1]+1e-9 {
			t.Errorf("gradient not monotone at outlet %d: %v", i+1, profile)
		}
	}
	if profile[0] < 0.5 || profile[5] > 0.5 {
		t.Errorf("gradient endpoints wrong: %v", profile)
	}
}

func nodeName(base string, i int) string {
	return base + string(rune('0'+i)) + ".port1"
}

func TestSolveBenchmarkNetworks(t *testing.T) {
	// Every assay benchmark's flow layer builds into a solvable network.
	for _, name := range []string{"aquaflex_3b", "hiv_diagnostics", "rotary_pcr"} {
		bm, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d := bm.Build()
		n, err := Build(d, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n.NumResistors() == 0 {
			t.Errorf("%s: empty network", name)
		}
	}
}

func TestFeatureLengthsAffectResistance(t *testing.T) {
	d := linearDevice(t)
	n1, _ := Build(d, Options{})
	// Attach a routed feature making c1 very long.
	d2 := d.Clone()
	d2.Features = []core.Feature{{
		Kind: core.FeatureChannel, ID: "c1_seg0", Connection: "c1",
		Layer: "flow", Width: 100, Depth: 10,
		Source: geom.Pt(0, 0), Sink: geom.Pt(50000, 0),
	}}
	n2, _ := Build(d2, Options{})
	r1 := channelR(n1, "c1")
	r2 := channelR(n2, "c1")
	if r2 <= r1 {
		t.Errorf("feature length ignored: %v <= %v", r2, r1)
	}
}

func channelR(n *Network, label string) float64 {
	for _, r := range n.Resistors() {
		if r.Label == label {
			return r.R
		}
	}
	return 0
}
