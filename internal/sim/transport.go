package sim

import (
	"fmt"
	"math"
)

// Imbalance returns the net volumetric flow into a node across every
// resistor (channels and component internals). Conservation holds at
// every node without a boundary condition: the value is ~0 up to solver
// tolerance. At BC nodes it equals the flow injected or extracted there.
func (n *Network) Imbalance(sol *Solution, node NodeID) float64 {
	total := 0.0
	for _, r := range n.resistors {
		q := (sol.Pressure[r.A] - sol.Pressure[r.B]) / r.R
		if r.B == node {
			total += q
		}
		if r.A == node {
			total -= q
		}
	}
	return total
}

// transportTolerance is the max per-node concentration change at which
// the advection iteration stops.
const transportTolerance = 1e-12

// Concentrations propagates steady-state species concentrations through a
// solved flow field: every node's concentration is the flow-weighted
// average of its inflows, with the given source nodes held fixed (e.g.
// reagent inlet = 1.0, buffer inlet = 0.0). Pure advection — no diffusion
// — which is the standard first-order model for LoC dilution networks.
func (n *Network) Concentrations(sol *Solution, sources map[NodeID]float64) (map[NodeID]float64, error) {
	for node := range sources {
		if _, ok := n.nodeIndex[node]; !ok {
			return nil, fmt.Errorf("sim: concentration source %q is not in the network", node)
		}
	}
	conc := make(map[NodeID]float64, len(n.nodes))
	for node, c := range sources {
		conc[node] = c
	}
	// Gauss–Seidel over nodes in deterministic order; the flow field is
	// acyclic in practice (pressure-driven), so this converges quickly.
	for iter := 0; iter < 10*len(n.nodes)+100; iter++ {
		maxDelta := 0.0
		for _, node := range n.nodes {
			if _, isSrc := sources[node]; isSrc {
				continue
			}
			var inQ, inQC float64
			for _, r := range n.resistors {
				q := (sol.Pressure[r.A] - sol.Pressure[r.B]) / r.R
				var from NodeID
				switch {
				case r.B == node && q > 0:
					from = r.A
				case r.A == node && q < 0:
					from = r.B
					q = -q
				default:
					continue
				}
				inQ += q
				inQC += q * conc[from]
			}
			next := 0.0
			if inQ > 0 {
				next = inQC / inQ
			}
			if d := math.Abs(next - conc[node]); d > maxDelta {
				maxDelta = d
			}
			conc[node] = next
		}
		if maxDelta < transportTolerance {
			break
		}
	}
	return conc, nil
}
