package sim

import (
	"fmt"
	"math"
	"sort"
)

// BC is one pressure boundary condition: the named port node is held at
// the given pressure (Pa). Ports without a BC are internal nodes obeying
// flow conservation.
type BC struct {
	// Node is the port node, e.g. "in1.port1".
	Node NodeID
	// Pressure in pascals.
	Pressure float64
}

// Flow is the solved flow through one channel resistor.
type Flow struct {
	// Channel is the connection label ("c1" or "c1[2]" for fanout arms).
	Channel string
	// From, To are the terminal nodes; flow is positive from From to To.
	From, To NodeID
	// Q is the volumetric flow rate in m³/s.
	Q float64
}

// Solution holds a solved network state.
type Solution struct {
	// Pressure per node, in Pa.
	Pressure map[NodeID]float64
	// Flows per channel resistor (component internals excluded).
	Flows []Flow
	// Iterations the solver used.
	Iterations int
}

// solverTolerance is the relative residual at which iteration stops.
const solverTolerance = 1e-10

// maxIterations bounds the conjugate-gradient loop.
const maxIterations = 20000

// Solve computes node pressures under the boundary conditions by solving
// the network Laplacian with conjugate gradients (the matrix is symmetric
// positive definite once Dirichlet nodes are eliminated), then derives
// per-channel flows.
func (n *Network) Solve(bcs []BC) (*Solution, error) {
	if len(bcs) < 2 {
		return nil, fmt.Errorf("sim: need at least two boundary conditions, got %d", len(bcs))
	}
	fixed := make(map[int]float64, len(bcs))
	for _, bc := range bcs {
		idx, ok := n.nodeIndex[bc.Node]
		if !ok {
			return nil, fmt.Errorf("sim: boundary node %q is not in the network", bc.Node)
		}
		fixed[idx] = bc.Pressure
	}

	// Unknowns: non-fixed nodes, re-indexed densely.
	unknown := make([]int, 0, len(n.nodes)-len(fixed))
	toUnknown := make(map[int]int, len(n.nodes))
	for i := range n.nodes {
		if _, isFixed := fixed[i]; !isFixed {
			toUnknown[i] = len(unknown)
			unknown = append(unknown, i)
		}
	}

	// Assemble the reduced Laplacian L·p = b with conductances g = 1/R.
	// Sparse representation: per-row adjacency.
	type entry struct {
		col int
		g   float64
	}
	rows := make([][]entry, len(unknown))
	diag := make([]float64, len(unknown))
	b := make([]float64, len(unknown))
	for _, r := range n.resistors {
		ai, bi := n.nodeIndex[r.A], n.nodeIndex[r.B]
		g := 1 / r.R
		for _, pair := range [2][2]int{{ai, bi}, {bi, ai}} {
			u, v := pair[0], pair[1]
			ui, uUnknown := toUnknown[u]
			if !uUnknown {
				continue
			}
			diag[ui] += g
			if pv, vFixed := fixed[v]; vFixed {
				b[ui] += g * pv
			} else {
				rows[ui] = append(rows[ui], entry{col: toUnknown[v], g: g})
			}
		}
	}

	// A nonzero diagonal everywhere needs every unknown connected to
	// something; a floating node would make L singular.
	for i, dv := range diag {
		if dv == 0 {
			return nil, fmt.Errorf("sim: node %q is hydraulically floating", n.nodes[unknown[i]])
		}
	}

	mulA := func(x, out []float64) {
		for i := range out {
			s := diag[i] * x[i]
			for _, e := range rows[i] {
				s -= e.g * x[e.col]
			}
			out[i] = s
		}
	}

	// Conjugate gradient with Jacobi preconditioning.
	p := make([]float64, len(unknown)) // solution, start at 0
	r := make([]float64, len(unknown))
	copy(r, b)
	z := make([]float64, len(unknown))
	for i := range z {
		z[i] = r[i] / diag[i]
	}
	d := append([]float64(nil), z...)
	Ad := make([]float64, len(unknown))
	rz := dot(r, z)
	bNorm := math.Sqrt(dot(b, b))
	if bNorm == 0 {
		bNorm = 1
	}
	iters := 0
	for ; iters < maxIterations; iters++ {
		if math.Sqrt(dot(r, r))/bNorm < solverTolerance {
			break
		}
		mulA(d, Ad)
		dAd := dot(d, Ad)
		if dAd == 0 {
			break
		}
		alpha := rz / dAd
		for i := range p {
			p[i] += alpha * d[i]
			r[i] -= alpha * Ad[i]
		}
		for i := range z {
			z[i] = r[i] / diag[i]
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range d {
			d[i] = z[i] + beta*d[i]
		}
	}

	sol := &Solution{Pressure: make(map[NodeID]float64, len(n.nodes)), Iterations: iters}
	for i, id := range n.nodes {
		if pv, isFixed := fixed[i]; isFixed {
			sol.Pressure[id] = pv
		} else {
			sol.Pressure[id] = p[toUnknown[i]]
		}
	}
	for _, res := range n.resistors {
		if res.Internal {
			continue
		}
		q := (sol.Pressure[res.A] - sol.Pressure[res.B]) / res.R
		sol.Flows = append(sol.Flows, Flow{
			Channel: res.Label, From: res.A, To: res.B, Q: q,
		})
	}
	sort.Slice(sol.Flows, func(i, j int) bool { return sol.Flows[i].Channel < sol.Flows[j].Channel })
	return sol, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// FlowAt returns the solved flow of the named channel (first fanout arm
// for multi-sink nets), and whether it exists.
func (s *Solution) FlowAt(channel string) (Flow, bool) {
	for _, f := range s.Flows {
		if f.Channel == channel {
			return f, true
		}
	}
	return Flow{}, false
}

// NetInflow sums signed flow into the given node across all channels —
// approximately zero for internal nodes (conservation), positive for nodes
// receiving flow.
func (s *Solution) NetInflow(node NodeID) float64 {
	total := 0.0
	for _, f := range s.Flows {
		if f.To == node {
			total += f.Q
		}
		if f.From == node {
			total -= f.Q
		}
	}
	return total
}
