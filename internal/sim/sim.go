// Package sim provides a steady-state hydraulic simulator for ParchMint
// devices: the flow layer is interpreted as a Hagen–Poiseuille resistance
// network (channels and component internals as hydraulic resistors),
// pressures are solved at every port node under user boundary conditions,
// and steady-state concentrations are propagated through the resulting
// flow field. This is the "analysis" side of the benchmark suite: two
// devices exchanged through ParchMint can be compared functionally, not
// just structurally.
//
// The model is one-dimensional and laminar — the operating regime of
// continuous-flow LoCs — with rectangular channel cross-sections.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Physical constants and defaults.
const (
	// WaterViscosity is the dynamic viscosity of water at 25°C, in Pa·s.
	WaterViscosity = 8.9e-4
	// DefaultChannelWidth/Depth apply when the device carries no routed
	// features or width parameters, in micrometers.
	DefaultChannelWidth = 100
	DefaultChannelDepth = 100
	// componentPathLength approximates the internal channel length of a
	// component between two of its ports when geometry is unknown, in
	// micrometers per footprint-span.
	serpentineFactor = 3 // mixers fold their length ~3x their span
)

// NodeID identifies a pressure node: a component port ("comp.port").
type NodeID string

// nodeOf builds the node ID for a target.
func nodeOf(comp, port string) NodeID { return NodeID(comp + "." + port) }

// Resistor is one hydraulic edge of the network.
type Resistor struct {
	// A, B are the terminal nodes.
	A, B NodeID
	// R is the hydraulic resistance in Pa·s/m³.
	R float64
	// Label says where the resistor came from (connection or component ID).
	Label string
	// Internal marks component-internal resistors (excluded from flow
	// reporting, which is per-channel).
	Internal bool
}

// Network is a hydraulic resistance network built from a device.
type Network struct {
	device    *Device
	resistors []Resistor
	nodes     []NodeID
	nodeIndex map[NodeID]int
}

// Device aliases core.Device for readable signatures.
type Device = core.Device

// Options tunes network construction.
type Options struct {
	// Viscosity in Pa·s; 0 means water at 25°C.
	Viscosity float64
	// ChannelDepth in µm; 0 means the device "channelDepth" param or 100.
	ChannelDepth int64
	// Layer restricts the network to one layer ID; empty means the first
	// FLOW layer.
	Layer string
}

// Build constructs the resistance network of a device's flow layer.
// Channel lengths come from routed features when present, otherwise from
// a Manhattan estimate over the netlist; component internals become star
// resistors joining their ports.
func Build(d *Device, opts Options) (*Network, error) {
	layer := opts.Layer
	if layer == "" {
		for _, l := range d.Layers {
			if l.Type == core.LayerFlow {
				layer = l.ID
				break
			}
		}
	}
	if layer == "" {
		return nil, fmt.Errorf("sim: device %q has no flow layer", d.Name)
	}
	mu := opts.Viscosity
	if mu <= 0 {
		mu = WaterViscosity
	}
	depth := opts.ChannelDepth
	if depth <= 0 {
		depth = int64(d.Params.GetDefault("channelDepth", DefaultChannelDepth))
	}

	n := &Network{device: d, nodeIndex: make(map[NodeID]int)}
	ix := d.Index()

	// Channel lengths from routed features, when available.
	featLen := make(map[string]int64)
	for i := range d.Features {
		f := &d.Features[i]
		if f.Kind == core.FeatureChannel {
			featLen[f.Connection] += f.Source.Manhattan(f.Sink)
		}
	}

	// Component internals: star topology around a virtual hub node, so
	// every port pair is connected through the component body.
	for i := range d.Components {
		c := &d.Components[i]
		var flowPorts []core.Port
		for _, p := range c.Ports {
			if p.Layer == layer {
				flowPorts = append(flowPorts, p)
			}
		}
		if len(flowPorts) < 2 {
			continue // ports and dead-ends carry no internal path
		}
		hub := nodeOf(c.ID, "~hub")
		length := internalLength(c)
		width := int64(DefaultChannelWidth)
		// Each spoke carries half the port-to-port path.
		r := hagenPoiseuille(mu, length/2, width, depth)
		for _, p := range flowPorts {
			n.addResistor(Resistor{
				A: nodeOf(c.ID, p.Label), B: hub, R: r,
				Label: c.ID, Internal: true,
			})
		}
	}

	// Channels.
	for i := range d.Connections {
		cn := &d.Connections[i]
		if cn.Layer != layer {
			continue
		}
		src, srcPort, ok := ix.ResolveTarget(cn.Source)
		if !ok {
			return nil, fmt.Errorf("sim: connection %q: unresolvable source %s", cn.ID, cn.Source)
		}
		width := int64(d.Params.GetDefault("channelWidth."+cn.ID,
			d.Params.GetDefault("channelWidth", DefaultChannelWidth)))
		for si, sink := range cn.Sinks {
			dst, dstPort, ok := ix.ResolveTarget(sink)
			if !ok {
				return nil, fmt.Errorf("sim: connection %q: unresolvable sink %s", cn.ID, sink)
			}
			length := featLen[cn.ID]
			if length <= 0 {
				length = estimateLength(src, dst)
			} else if len(cn.Sinks) > 1 {
				// Feature length covers the whole tree; apportion evenly.
				length /= int64(len(cn.Sinks))
			}
			label := cn.ID
			if len(cn.Sinks) > 1 {
				label = fmt.Sprintf("%s[%d]", cn.ID, si)
			}
			n.addResistor(Resistor{
				A:     nodeOf(src.ID, srcPort.Label),
				B:     nodeOf(dst.ID, dstPort.Label),
				R:     hagenPoiseuille(mu, length, width, depth),
				Label: label,
			})
		}
	}
	if len(n.resistors) == 0 {
		return nil, fmt.Errorf("sim: device %q has no hydraulic edges on layer %q", d.Name, layer)
	}
	sort.Slice(n.nodes, func(i, j int) bool { return n.nodes[i] < n.nodes[j] })
	for i, id := range n.nodes {
		n.nodeIndex[id] = i
	}
	return n, nil
}

func (n *Network) addResistor(r Resistor) {
	if r.R <= 0 || math.IsInf(r.R, 0) || math.IsNaN(r.R) {
		r.R = 1 // degenerate geometry: clamp rather than divide by zero later
	}
	for _, id := range []NodeID{r.A, r.B} {
		if _, ok := n.nodeIndex[id]; !ok {
			n.nodeIndex[id] = -1 // placeholder until final sort
			n.nodes = append(n.nodes, id)
		}
	}
	n.resistors = append(n.resistors, r)
}

// NumNodes returns the pressure-node count (including component hubs).
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumResistors returns the hydraulic edge count.
func (n *Network) NumResistors() int { return len(n.resistors) }

// Resistors returns the network's edges; treat as read-only.
func (n *Network) Resistors() []Resistor { return n.resistors }

// hagenPoiseuille computes the hydraulic resistance of a rectangular
// channel: R = 12 µ L / (w h³ (1 − 0.63 h/w)), with w ≥ h (swap if not).
// Inputs in µm are converted to meters.
func hagenPoiseuille(mu float64, lengthUM, widthUM, depthUM int64) float64 {
	L := float64(lengthUM) * 1e-6
	w := float64(widthUM) * 1e-6
	h := float64(depthUM) * 1e-6
	if h > w {
		w, h = h, w
	}
	if L <= 0 || w <= 0 || h <= 0 {
		return math.Inf(1)
	}
	return 12 * mu * L / (w * h * h * h * (1 - 0.63*h/w))
}

// internalLength estimates a component's internal channel length in µm.
func internalLength(c *core.Component) int64 {
	span := c.XSpan
	if c.YSpan > span {
		span = c.YSpan
	}
	switch c.Entity {
	case core.EntityMixer, core.EntityGradient:
		return span * serpentineFactor // serpentine fold
	case core.EntityNode:
		return span
	default:
		return span
	}
}

// estimateLength approximates a channel's length without routed geometry:
// half the source and sink footprint semi-perimeters plus a nominal run.
func estimateLength(a, b *core.Component) int64 {
	return (a.XSpan+a.YSpan)/2 + (b.XSpan+b.YSpan)/2 + 1000
}
