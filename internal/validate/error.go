package validate

import (
	"errors"
	"fmt"
)

// ErrInvalid is the sentinel every validation failure matches via
// errors.Is. Consumers that need the diagnostics use errors.As with
// *Error and read the attached Report.
var ErrInvalid = errors.New("device fails validation")

// Error is a validation Report promoted to an error: the form pipeline
// stages and API handlers use when a semantically broken device must stop
// processing. Unlike a bare Report (which is data — the validate endpoint
// returns one with 200), an Error flows through error paths and maps to
// "unprocessable input" (HTTP 422) rather than "bad syntax" (400) or
// "internal failure" (500).
type Error struct {
	// Report carries the full diagnostic set that failed the device.
	Report *Report
}

// Error summarizes the failure; the report itself has the detail.
func (e *Error) Error() string {
	return fmt.Sprintf("device %q fails validation: %d error(s), %d warning(s)",
		e.Report.Device, e.Report.Errors(), e.Report.Warnings())
}

// Is matches the ErrInvalid sentinel.
func (e *Error) Is(target error) bool { return target == ErrInvalid }

// Code returns the stable machine-readable code for this failure.
func (e *Error) Code() string { return "invalid-device" }

// Err converts the report to an error: nil when the device is OK,
// otherwise an *Error carrying the report.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return &Error{Report: r}
}
