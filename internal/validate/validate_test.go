package validate

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// goodDevice builds a valid two-layer device: in -> mixer -> valve -> out,
// control port -> valve control.
func goodDevice(t testing.TB) *core.Device {
	t.Helper()
	b := core.NewBuilder("valid")
	flow := b.FlowLayer()
	ctrl := b.ControlLayer()
	b.IOPort("in", flow, 200)
	b.IOPort("out", flow, 200)
	b.IOPort("cin", ctrl, 200)
	b.TwoPort("mix1", core.EntityMixer, flow, 2000, 1000)
	b.Component("v1", core.EntityValve, []string{flow, ctrl}, 300, 300,
		core.Port{Label: "port1", Layer: flow, X: 0, Y: 150},
		core.Port{Label: "port2", Layer: flow, X: 300, Y: 150},
		core.Port{Label: "ctl", Layer: ctrl, X: 150, Y: 0},
	)
	b.Connect("c1", flow, "in.port1", "mix1.port1")
	b.Connect("c2", flow, "mix1.port2", "v1.port1")
	b.Connect("c3", flow, "v1.port2", "out.port1")
	b.Connect("cc1", ctrl, "cin.port1", "v1.ctl")
	d, err := b.Build()
	if err != nil {
		t.Fatalf("building valid device: %v", err)
	}
	return d
}

func TestValidDeviceIsClean(t *testing.T) {
	r := Validate(goodDevice(t))
	if !r.OK() {
		t.Fatalf("valid device reported errors:\n%s", r)
	}
	if r.Warnings() != 0 {
		t.Errorf("valid device reported warnings:\n%s", r)
	}
}

// expectCode validates the mutated device and requires the given code at
// the given severity.
func expectCode(t *testing.T, d *core.Device, code Code, sev Severity) {
	t.Helper()
	r := Validate(d)
	if !r.HasCode(code) {
		t.Fatalf("expected code %q, got:\n%s", code, r)
	}
	for _, diag := range r.Diags {
		if diag.Code == code && diag.Severity == sev {
			return
		}
	}
	t.Errorf("code %q present but not at severity %v:\n%s", code, sev, r)
}

func TestRuleDupLayerID(t *testing.T) {
	d := goodDevice(t)
	d.Layers = append(d.Layers, core.Layer{ID: "flow", Name: "again", Type: core.LayerFlow})
	expectCode(t, d, CodeDupID, SevError)
}

func TestRuleDupComponentID(t *testing.T) {
	d := goodDevice(t)
	d.Components = append(d.Components, d.Components[0])
	expectCode(t, d, CodeDupID, SevError)
}

func TestRuleDupConnectionID(t *testing.T) {
	d := goodDevice(t)
	d.Connections = append(d.Connections, d.Connections[0])
	expectCode(t, d, CodeDupID, SevError)
}

func TestRuleDupPortLabel(t *testing.T) {
	d := goodDevice(t)
	ix := d.Index()
	v1 := ix.Component("v1")
	v1.Ports = append(v1.Ports, core.Port{Label: "port1", Layer: "flow", X: 150, Y: 300})
	expectCode(t, d, CodeDupPort, SevError)
}

func TestRuleMissingComponentRef(t *testing.T) {
	d := goodDevice(t)
	d.Connections[0].Source.Component = "ghost"
	expectCode(t, d, CodeMissingRef, SevError)
}

func TestRuleMissingPortRef(t *testing.T) {
	d := goodDevice(t)
	d.Connections[0].Sinks[0].Port = "ghost"
	expectCode(t, d, CodeMissingRef, SevError)
}

func TestRuleMissingConnectionLayer(t *testing.T) {
	d := goodDevice(t)
	d.Connections[0].Layer = "ghost"
	expectCode(t, d, CodeMissingRef, SevError)
}

func TestRuleMissingComponentLayer(t *testing.T) {
	d := goodDevice(t)
	d.Components[0].Layers[0] = "ghost"
	expectCode(t, d, CodeMissingRef, SevError)
}

func TestRuleMissingPortLayer(t *testing.T) {
	d := goodDevice(t)
	d.Index().Component("mix1").Ports[0].Layer = "ghost"
	expectCode(t, d, CodeMissingRef, SevError)
}

func TestRulePortLayerNotOnComponent(t *testing.T) {
	d := goodDevice(t)
	// mix1 occupies only flow; point a port at control.
	d.Index().Component("mix1").Ports[0].Layer = "control"
	expectCode(t, d, CodeLayerMismatch, SevError)
}

func TestRuleConnectionLayerMismatch(t *testing.T) {
	d := goodDevice(t)
	// Flow connection attached to the valve's control port.
	d.Index().Connection("c2").Sinks[0].Port = "ctl"
	expectCode(t, d, CodeLayerMismatch, SevError)
}

func TestRuleBadSpan(t *testing.T) {
	d := goodDevice(t)
	d.Components[0].XSpan = 0
	expectCode(t, d, CodeBadGeometry, SevError)
	d = goodDevice(t)
	d.Components[0].YSpan = -5
	expectCode(t, d, CodeBadGeometry, SevError)
}

func TestRulePortOffFootprint(t *testing.T) {
	d := goodDevice(t)
	d.Index().Component("mix1").Ports[0].X = -10
	expectCode(t, d, CodeBadGeometry, SevError)
	d = goodDevice(t)
	d.Index().Component("mix1").Ports[1].Y = 99999
	expectCode(t, d, CodeBadGeometry, SevError)
}

func TestRulePortOnBoundaryIsFine(t *testing.T) {
	d := goodDevice(t)
	// mix1 port2 already sits at X == XSpan; that must be legal.
	r := Validate(d)
	if r.HasCode(CodeBadGeometry) {
		t.Errorf("boundary port misflagged:\n%s", r)
	}
}

func TestRuleEmptyNet(t *testing.T) {
	d := goodDevice(t)
	d.Connections[0].Sinks = nil
	expectCode(t, d, CodeEmptyNet, SevError)
}

func TestRuleSelfLoop(t *testing.T) {
	d := goodDevice(t)
	c := d.Index().Connection("c1")
	c.Sinks = append(c.Sinks, c.Source)
	expectCode(t, d, CodeSelfLoop, SevWarning)
}

func TestRuleDupSink(t *testing.T) {
	d := goodDevice(t)
	c := d.Index().Connection("c1")
	c.Sinks = append(c.Sinks, c.Sinks[0])
	expectCode(t, d, CodeDupSink, SevWarning)
}

func TestRuleAnyPort(t *testing.T) {
	d := goodDevice(t)
	d.Connections[0].Source.Port = ""
	expectCode(t, d, CodeAnyPort, SevWarning)
}

func TestRuleUnknownEntity(t *testing.T) {
	d := goodDevice(t)
	d.Components[0].Entity = "FLUX CAPACITOR"
	expectCode(t, d, CodeUnknownEntity, SevWarning)
	d = goodDevice(t)
	d.Components[0].Entity = ""
	expectCode(t, d, CodeUnknownEntity, SevWarning)
}

func TestRuleIsolatedComponent(t *testing.T) {
	d := goodDevice(t)
	d.Components = append(d.Components, core.Component{
		ID: "lonely", Name: "lonely", Entity: core.EntityChamber,
		Layers: []string{"flow"}, XSpan: 100, YSpan: 100,
	})
	expectCode(t, d, CodeIsolated, SevWarning)
}

func TestRuleEmptyNames(t *testing.T) {
	d := goodDevice(t)
	d.Name = ""
	expectCode(t, d, CodeEmptyName, SevWarning)

	d = goodDevice(t)
	d.Layers[0].ID = ""
	expectCode(t, d, CodeEmptyName, SevError)

	d = goodDevice(t)
	d.Components[0].ID = ""
	expectCode(t, d, CodeEmptyName, SevError)

	d = goodDevice(t)
	d.Connections[0].ID = ""
	expectCode(t, d, CodeEmptyName, SevError)

	d = goodDevice(t)
	d.Index().Component("mix1").Ports[0].Label = ""
	expectCode(t, d, CodeEmptyName, SevError)
}

func TestRuleNoLayers(t *testing.T) {
	d := &core.Device{Name: "bare"}
	expectCode(t, d, CodeNoLayers, SevError)

	d = goodDevice(t)
	d.Components[0].Layers = nil
	expectCode(t, d, CodeNoLayers, SevError)
}

func TestRuleFeatureMissingLayer(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{{
		Kind: core.FeatureComponent, ID: "mix1", Layer: "ghost",
		XSpan: 2000, YSpan: 1000,
	}}
	expectCode(t, d, CodeBadFeature, SevError)
}

func TestRuleFeatureUnknownComponent(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{{
		Kind: core.FeatureComponent, ID: "ghost", Layer: "flow", XSpan: 10, YSpan: 10,
	}}
	expectCode(t, d, CodeBadFeature, SevError)
}

func TestRuleFeatureSpanMismatch(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{{
		Kind: core.FeatureComponent, ID: "mix1", Layer: "flow",
		Location: geom.Pt(0, 0), XSpan: 1, YSpan: 1,
	}}
	expectCode(t, d, CodeBadFeature, SevWarning)
}

func TestRuleChannelFeatureMissingConnection(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{{
		Kind: core.FeatureChannel, ID: "s0", Layer: "flow",
		Connection: "ghost", Width: 100,
		Source: geom.Pt(0, 0), Sink: geom.Pt(100, 0),
	}}
	expectCode(t, d, CodeBadFeature, SevError)
}

func TestRuleChannelFeatureBadWidth(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{{
		Kind: core.FeatureChannel, ID: "s0", Layer: "flow",
		Connection: "c1", Width: 0,
		Source: geom.Pt(0, 0), Sink: geom.Pt(100, 0),
	}}
	expectCode(t, d, CodeBadGeometry, SevError)
}

func TestRuleChannelFeatureDiagonal(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{{
		Kind: core.FeatureChannel, ID: "s0", Layer: "flow",
		Connection: "c1", Width: 100,
		Source: geom.Pt(0, 0), Sink: geom.Pt(100, 100),
	}}
	expectCode(t, d, CodeBadFeature, SevWarning)
}

func TestRuleUnknownFeatureKind(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{{Kind: core.FeatureKind(7), ID: "x", Layer: "flow"}}
	expectCode(t, d, CodeBadFeature, SevError)
}

func TestRuleOverlap(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{
		{Kind: core.FeatureComponent, ID: "in", Layer: "flow",
			Location: geom.Pt(0, 0), XSpan: 200, YSpan: 200},
		{Kind: core.FeatureComponent, ID: "out", Layer: "flow",
			Location: geom.Pt(100, 100), XSpan: 200, YSpan: 200},
	}
	expectCode(t, d, CodeOverlap, SevError)
}

func TestRuleOverlapDifferentLayersOK(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{
		{Kind: core.FeatureComponent, ID: "in", Layer: "flow",
			Location: geom.Pt(0, 0), XSpan: 200, YSpan: 200},
		{Kind: core.FeatureComponent, ID: "cin", Layer: "control",
			Location: geom.Pt(0, 0), XSpan: 200, YSpan: 200},
	}
	r := Validate(d)
	if r.HasCode(CodeOverlap) {
		t.Errorf("cross-layer placement misflagged:\n%s", r)
	}
}

func TestRuleOverlapTouchingEdgesOK(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{
		{Kind: core.FeatureComponent, ID: "in", Layer: "flow",
			Location: geom.Pt(0, 0), XSpan: 200, YSpan: 200},
		{Kind: core.FeatureComponent, ID: "out", Layer: "flow",
			Location: geom.Pt(200, 0), XSpan: 200, YSpan: 200},
	}
	r := Validate(d)
	if r.HasCode(CodeOverlap) {
		t.Errorf("abutting placement misflagged:\n%s", r)
	}
}

func TestOverlapCapSkips(t *testing.T) {
	d := goodDevice(t)
	d.Features = []core.Feature{
		{Kind: core.FeatureComponent, ID: "in", Layer: "flow", Location: geom.Pt(0, 0), XSpan: 200, YSpan: 200},
		{Kind: core.FeatureComponent, ID: "out", Layer: "flow", Location: geom.Pt(100, 100), XSpan: 200, YSpan: 200},
		{Kind: core.FeatureComponent, ID: "mix1", Layer: "flow", Location: geom.Pt(500, 500), XSpan: 2000, YSpan: 1000},
	}
	r := ValidateWith(d, Options{MaxOverlapPairs: 2})
	// Overlap exists but the check is capped: expect the skip warning, not
	// the overlap error.
	hasSkip := false
	for _, diag := range r.Diags {
		if diag.Code == CodeOverlap && diag.Severity == SevWarning {
			hasSkip = true
		}
		if diag.Code == CodeOverlap && diag.Severity == SevError {
			t.Error("capped overlap check still ran")
		}
	}
	if !hasSkip {
		t.Errorf("expected cap-skip warning:\n%s", r)
	}
}

func TestSkipWarnings(t *testing.T) {
	d := goodDevice(t)
	d.Components[0].Entity = "WEIRD"
	d.Connections[0].Source.Component = "ghost"
	r := ValidateWith(d, Options{SkipWarnings: true})
	if r.Warnings() != 0 {
		t.Errorf("SkipWarnings left warnings:\n%s", r)
	}
	if r.Errors() == 0 {
		t.Error("SkipWarnings must keep errors")
	}
}

func TestReportAccessors(t *testing.T) {
	d := goodDevice(t)
	d.Components[0].Entity = "WEIRD"            // warning
	d.Connections[0].Source.Component = "ghost" // error (missing-ref)
	d.Connections[1].Layer = "ghost"            // error (missing-ref)
	r := Validate(d)
	if r.OK() {
		t.Fatal("report with errors must not be OK")
	}
	if r.Errors() < 2 || r.Warnings() < 1 {
		t.Errorf("counts: %d errors, %d warnings\n%s", r.Errors(), r.Warnings(), r)
	}
	codes := r.Codes()
	if len(codes) < 2 {
		t.Errorf("Codes = %v", codes)
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Errorf("Codes not sorted: %v", codes)
		}
	}
	s := r.String()
	if !strings.Contains(s, "missing-ref") || !strings.Contains(s, "error(s)") {
		t.Errorf("report rendering missing pieces:\n%s", s)
	}
}

func TestSeverityString(t *testing.T) {
	if SevWarning.String() != "warning" || SevError.String() != "error" {
		t.Error("severity names wrong")
	}
	if got := Severity(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown severity = %q", got)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Severity: SevError, Code: CodeDupID, Path: "layers[1]", Message: "boom"}
	if got := d.String(); got != "error dup-id layers[1]: boom" {
		t.Errorf("Diagnostic.String = %q", got)
	}
}

func TestRuleValveMap(t *testing.T) {
	// A correct v1.2 valve map is clean.
	d := goodDevice(t)
	if err := d.SetValve("v1", "c2", core.ValveNormallyOpen); err != nil {
		t.Fatal(err)
	}
	if r := Validate(d); !r.OK() || r.Warnings() != 0 {
		t.Fatalf("valid valve map flagged:\n%s", r)
	}

	// Missing valve component.
	d = goodDevice(t)
	d.ValveMap = map[string]string{"ghost": "c2"}
	expectCode(t, d, CodeBadValveMap, SevError)

	// Missing actuated connection.
	d = goodDevice(t)
	d.ValveMap = map[string]string{"v1": "ghost"}
	expectCode(t, d, CodeBadValveMap, SevError)

	// Mapped component is not a control entity.
	d = goodDevice(t)
	d.ValveMap = map[string]string{"mix1": "c2"}
	expectCode(t, d, CodeBadValveMap, SevWarning)

	// Unknown valve type.
	d = goodDevice(t)
	d.ValveMap = map[string]string{"v1": "c2"}
	d.ValveTypes = map[string]core.ValveType{"v1": "SIDEWAYS"}
	expectCode(t, d, CodeBadValveMap, SevError)

	// Typed valve absent from the map.
	d = goodDevice(t)
	d.ValveTypes = map[string]core.ValveType{"v1": core.ValveNormallyOpen}
	expectCode(t, d, CodeBadValveMap, SevWarning)
}

func TestRuleBadPath(t *testing.T) {
	// Axis-aligned paths are clean.
	d := goodDevice(t)
	d.Connections[0].Paths = []core.ChannelPath{{
		Source:    geom.Pt(0, 0),
		Sink:      geom.Pt(100, 100),
		Waypoints: []geom.Point{geom.Pt(100, 0)},
	}}
	if r := Validate(d); r.HasCode(CodeBadPath) {
		t.Fatalf("rectilinear path flagged:\n%s", r)
	}

	// Diagonal leg warns.
	d = goodDevice(t)
	d.Connections[0].Paths = []core.ChannelPath{{
		Source: geom.Pt(0, 0), Sink: geom.Pt(100, 100),
	}}
	expectCode(t, d, CodeBadPath, SevWarning)

	// More paths than sinks warns.
	d = goodDevice(t)
	d.Connections[0].Paths = []core.ChannelPath{
		{Source: geom.Pt(0, 0), Sink: geom.Pt(100, 0)},
		{Source: geom.Pt(0, 0), Sink: geom.Pt(0, 100)},
	}
	expectCode(t, d, CodeBadPath, SevWarning)
}
