// Package validate checks the semantic well-formedness of ParchMint devices.
//
// The ParchMint format is a netlist interchange standard; a device that
// parses is not necessarily meaningful. This package implements the rule
// set a consuming CAD tool needs before it can trust a benchmark: reference
// integrity (every connection endpoint names a real component and port),
// layer consistency (channels attach to ports on their own layer),
// geometric sanity (ports sit on their component, placed features do not
// collide), and netlist hygiene (no duplicate IDs, no empty nets).
//
// Validation never stops at the first problem: it produces a full Report of
// structured Diagnostics so benchmark authors can fix everything in one
// pass, and so the fault-injection experiments (Table 3) can measure
// per-rule detection.
package validate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Severity ranks a diagnostic.
type Severity int

// Severities, in increasing order of trouble.
const (
	// SevWarning marks constructs that are legal but suspicious: unknown
	// entities, isolated components, "any port" targets.
	SevWarning Severity = iota
	// SevError marks violations that make the device unusable by a consumer.
	SevError
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Code identifies the rule a diagnostic comes from. Codes are stable API:
// the fault-injection experiment keys detection rates by them.
type Code string

// The rule vocabulary.
const (
	CodeDupID         Code = "dup-id"         // duplicate layer/component/connection ID
	CodeDupPort       Code = "dup-port"       // duplicate port label within a component
	CodeMissingRef    Code = "missing-ref"    // endpoint names a nonexistent component/port/layer
	CodeLayerMismatch Code = "layer-mismatch" // port layer disagrees with connection/component layer
	CodeBadGeometry   Code = "bad-geometry"   // non-positive span or port off its component
	CodeEmptyNet      Code = "empty-net"      // connection with no sinks
	CodeSelfLoop      Code = "self-loop"      // connection source equals a sink
	CodeDupSink       Code = "dup-sink"       // repeated sink target in one connection
	CodeAnyPort       Code = "any-port"       // endpoint omits the port label
	CodeUnknownEntity Code = "unknown-entity" // entity outside the suite vocabulary
	CodeIsolated      Code = "isolated"       // component touched by no connection
	CodeEmptyName     Code = "empty-name"     // empty device/element name or ID
	CodeBadFeature    Code = "bad-feature"    // feature referencing missing element or inconsistent geometry
	CodeOverlap       Code = "overlap"        // placed component features overlap
	CodeNoLayers      Code = "no-layers"      // device or component without layers
	CodeBadValveMap   Code = "bad-valve-map"  // v1.2 valve map references or types are wrong
	CodeBadPath       Code = "bad-path"       // v1.2 connection path geometry is suspicious
)

// Diagnostic is one validation finding.
type Diagnostic struct {
	Severity Severity
	Code     Code
	// Path locates the offending element, e.g. "components[3].ports[0]"
	// or "connections[c12].sinks[1]".
	Path    string
	Message string
}

// String renders "severity code path: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s %s %s: %s", d.Severity, d.Code, d.Path, d.Message)
}

// Report is the outcome of validating one device.
type Report struct {
	Device string
	Diags  []Diagnostic
}

// Errors returns the number of error-severity diagnostics.
func (r *Report) Errors() int { return r.count(SevError) }

// Warnings returns the number of warning-severity diagnostics.
func (r *Report) Warnings() int { return r.count(SevWarning) }

func (r *Report) count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// OK reports whether the device has no errors (warnings allowed).
func (r *Report) OK() bool { return r.Errors() == 0 }

// HasCode reports whether any diagnostic carries the given code.
func (r *Report) HasCode(c Code) bool {
	for _, d := range r.Diags {
		if d.Code == c {
			return true
		}
	}
	return false
}

// Codes returns the distinct codes present, sorted.
func (r *Report) Codes() []Code {
	set := map[Code]bool{}
	for _, d := range r.Diags {
		set[d.Code] = true
	}
	out := make([]Code, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the report one diagnostic per line.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "device %q: %d error(s), %d warning(s)\n", r.Device, r.Errors(), r.Warnings())
	for _, d := range r.Diags {
		sb.WriteString("  ")
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (r *Report) add(sev Severity, code Code, path, format string, args ...any) {
	r.Diags = append(r.Diags, Diagnostic{
		Severity: sev,
		Code:     code,
		Path:     path,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Options tunes validation strictness.
type Options struct {
	// SkipWarnings suppresses all warning-severity rules.
	SkipWarnings bool
	// MaxOverlapPairs caps the O(n²) placed-feature overlap check; 0 means
	// the default of 2000 features. Devices beyond the cap skip the check
	// with a warning.
	MaxOverlapPairs int
}

// Validate runs the full rule set with default options.
func Validate(d *core.Device) *Report {
	return ValidateWith(d, Options{})
}

// ValidateWith runs the full rule set with the given options.
func ValidateWith(d *core.Device, opts Options) *Report {
	r := &Report{Device: d.Name}
	v := &validator{device: d, report: r, opts: opts}
	v.run()
	if opts.SkipWarnings {
		kept := r.Diags[:0]
		for _, diag := range r.Diags {
			if diag.Severity != SevWarning {
				kept = append(kept, diag)
			}
		}
		r.Diags = kept
	}
	return r
}

type validator struct {
	device *Device
	report *Report
	opts   Options

	layerIDs map[string]int // id -> index of first occurrence
	compIDs  map[string]int
	connIDs  map[string]int
}

// Device aliases core.Device so the validator struct reads naturally.
type Device = core.Device

func (v *validator) run() {
	v.checkDevice()
	v.checkLayers()
	v.checkComponents()
	v.checkConnections()
	v.checkIsolation()
	v.checkFeatures()
	v.checkValveMap()
}

func (v *validator) checkDevice() {
	if v.device.Name == "" {
		v.report.add(SevWarning, CodeEmptyName, "device", "device has no name")
	}
	if len(v.device.Layers) == 0 {
		v.report.add(SevError, CodeNoLayers, "device", "device declares no layers")
	}
}

func (v *validator) checkLayers() {
	v.layerIDs = make(map[string]int, len(v.device.Layers))
	for i, l := range v.device.Layers {
		path := fmt.Sprintf("layers[%d]", i)
		if l.ID == "" {
			v.report.add(SevError, CodeEmptyName, path, "layer has empty id")
			continue
		}
		if first, dup := v.layerIDs[l.ID]; dup {
			v.report.add(SevError, CodeDupID, path, "layer id %q already used by layers[%d]", l.ID, first)
			continue
		}
		v.layerIDs[l.ID] = i
		if l.Type != core.LayerFlow && l.Type != core.LayerControl {
			v.report.add(SevWarning, CodeUnknownEntity, path, "layer type %q is not FLOW or CONTROL", l.Type)
		}
	}
}

func (v *validator) checkComponents() {
	v.compIDs = make(map[string]int, len(v.device.Components))
	for i := range v.device.Components {
		c := &v.device.Components[i]
		path := fmt.Sprintf("components[%d]", i)
		if c.ID == "" {
			v.report.add(SevError, CodeEmptyName, path, "component has empty id")
		} else if first, dup := v.compIDs[c.ID]; dup {
			v.report.add(SevError, CodeDupID, path, "component id %q already used by components[%d]", c.ID, first)
		} else {
			v.compIDs[c.ID] = i
			path = fmt.Sprintf("components[%s]", c.ID)
		}
		if c.Entity == "" {
			v.report.add(SevWarning, CodeUnknownEntity, path, "component has no entity")
		} else if !core.IsKnownEntity(c.Entity) {
			v.report.add(SevWarning, CodeUnknownEntity, path, "entity %q is outside the suite vocabulary", c.Entity)
		}
		if len(c.Layers) == 0 {
			v.report.add(SevError, CodeNoLayers, path, "component occupies no layers")
		}
		compLayers := make(map[string]bool, len(c.Layers))
		for j, lid := range c.Layers {
			if _, ok := v.layerIDs[lid]; !ok {
				v.report.add(SevError, CodeMissingRef, fmt.Sprintf("%s.layers[%d]", path, j),
					"layer %q is not declared", lid)
			}
			compLayers[lid] = true
		}
		if c.XSpan <= 0 || c.YSpan <= 0 {
			v.report.add(SevError, CodeBadGeometry, path,
				"non-positive span %dx%d", c.XSpan, c.YSpan)
		}
		labels := make(map[string]int, len(c.Ports))
		for j, p := range c.Ports {
			ppath := fmt.Sprintf("%s.ports[%d]", path, j)
			if p.Label == "" {
				v.report.add(SevError, CodeEmptyName, ppath, "port has empty label")
			} else if first, dup := labels[p.Label]; dup {
				v.report.add(SevError, CodeDupPort, ppath,
					"port label %q already used by ports[%d]", p.Label, first)
			} else {
				labels[p.Label] = j
			}
			if _, ok := v.layerIDs[p.Layer]; !ok {
				v.report.add(SevError, CodeMissingRef, ppath, "port layer %q is not declared", p.Layer)
			} else if !compLayers[p.Layer] {
				v.report.add(SevError, CodeLayerMismatch, ppath,
					"port layer %q is not among the component's layers", p.Layer)
			}
			if c.XSpan > 0 && c.YSpan > 0 {
				if p.X < 0 || p.X > c.XSpan || p.Y < 0 || p.Y > c.YSpan {
					v.report.add(SevError, CodeBadGeometry, ppath,
						"port at (%d,%d) lies outside the %dx%d footprint", p.X, p.Y, c.XSpan, c.YSpan)
				}
			}
		}
	}
}

func (v *validator) checkConnections() {
	v.connIDs = make(map[string]int, len(v.device.Connections))
	for i := range v.device.Connections {
		cn := &v.device.Connections[i]
		path := fmt.Sprintf("connections[%d]", i)
		if cn.ID == "" {
			v.report.add(SevError, CodeEmptyName, path, "connection has empty id")
		} else if first, dup := v.connIDs[cn.ID]; dup {
			v.report.add(SevError, CodeDupID, path,
				"connection id %q already used by connections[%d]", cn.ID, first)
		} else {
			v.connIDs[cn.ID] = i
			path = fmt.Sprintf("connections[%s]", cn.ID)
		}
		if _, ok := v.layerIDs[cn.Layer]; !ok {
			v.report.add(SevError, CodeMissingRef, path, "connection layer %q is not declared", cn.Layer)
		}
		if len(cn.Sinks) == 0 {
			v.report.add(SevError, CodeEmptyNet, path, "connection has no sinks")
		}
		for pi := range cn.Paths {
			v.checkPath(&cn.Paths[pi], fmt.Sprintf("%s.paths[%d]", path, pi))
		}
		if len(cn.Paths) > len(cn.Sinks) {
			v.report.add(SevWarning, CodeBadPath, path,
				"%d paths for %d sinks", len(cn.Paths), len(cn.Sinks))
		}
		v.checkTarget(cn, cn.Source, path+".source")
		seen := make(map[core.Target]int, len(cn.Sinks))
		for j, s := range cn.Sinks {
			spath := fmt.Sprintf("%s.sinks[%d]", path, j)
			v.checkTarget(cn, s, spath)
			if s == cn.Source {
				v.report.add(SevWarning, CodeSelfLoop, spath, "sink equals the source %s", s)
			}
			if first, dup := seen[s]; dup {
				v.report.add(SevWarning, CodeDupSink, spath, "sink %s already listed at sinks[%d]", s, first)
			} else {
				seen[s] = j
			}
		}
	}
}

// checkPath warns about v1.2 path legs that are not axis-aligned
// (continuous-flow channels are rectilinear by fabrication).
func (v *validator) checkPath(p *core.ChannelPath, path string) {
	pts := p.Points()
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.X != b.X && a.Y != b.Y {
			v.report.add(SevWarning, CodeBadPath, path,
				"leg %v -> %v is not axis-aligned", a, b)
			return
		}
	}
}

// checkTarget validates one endpoint of a connection.
func (v *validator) checkTarget(cn *core.Connection, t core.Target, path string) {
	ci, ok := v.compIDs[t.Component]
	if !ok {
		v.report.add(SevError, CodeMissingRef, path, "component %q does not exist", t.Component)
		return
	}
	c := &v.device.Components[ci]
	if t.Port == "" {
		v.report.add(SevWarning, CodeAnyPort, path,
			"endpoint on %q does not name a port", t.Component)
		return
	}
	p, ok := c.PortByLabel(t.Port)
	if !ok {
		v.report.add(SevError, CodeMissingRef, path,
			"component %q has no port %q", t.Component, t.Port)
		return
	}
	if p.Layer != cn.Layer {
		v.report.add(SevError, CodeLayerMismatch, path,
			"port %s is on layer %q but the connection is on layer %q", t, p.Layer, cn.Layer)
	}
}

// checkIsolation warns about components no connection touches.
func (v *validator) checkIsolation() {
	touched := make(map[string]bool, len(v.device.Components))
	for i := range v.device.Connections {
		cn := &v.device.Connections[i]
		touched[cn.Source.Component] = true
		for _, s := range cn.Sinks {
			touched[s.Component] = true
		}
	}
	for i := range v.device.Components {
		c := &v.device.Components[i]
		if !touched[c.ID] {
			v.report.add(SevWarning, CodeIsolated,
				fmt.Sprintf("components[%s]", c.ID), "no connection touches this component")
		}
	}
}

// checkValveMap validates the v1.2 valve map: every valve must exist and
// actuate an existing connection; valve types must be the two enums; and a
// mapped component should actually be a control entity.
func (v *validator) checkValveMap() {
	for _, valve := range sortedMapKeys(v.device.ValveMap) {
		conn := v.device.ValveMap[valve]
		path := fmt.Sprintf("valveMap[%s]", valve)
		ci, ok := v.compIDs[valve]
		if !ok {
			v.report.add(SevError, CodeBadValveMap, path, "valve component %q does not exist", valve)
		} else if !core.IsControlEntity(v.device.Components[ci].Entity) {
			v.report.add(SevWarning, CodeBadValveMap, path,
				"component %q has entity %q, not a valve/pump", valve, v.device.Components[ci].Entity)
		}
		if _, ok := v.connIDs[conn]; !ok {
			v.report.add(SevError, CodeBadValveMap, path, "actuated connection %q does not exist", conn)
		}
	}
	for _, valve := range sortedMapKeys(v.device.ValveTypes) {
		t := v.device.ValveTypes[valve]
		path := fmt.Sprintf("valveTypeMap[%s]", valve)
		if t != core.ValveNormallyOpen && t != core.ValveNormallyClosed {
			v.report.add(SevError, CodeBadValveMap, path, "unknown valve type %q", t)
		}
		if _, ok := v.device.ValveMap[valve]; !ok {
			v.report.add(SevWarning, CodeBadValveMap, path, "typed valve %q is not in the valve map", valve)
		}
	}
}

// sortedMapKeys returns map keys sorted for deterministic diagnostics.
func sortedMapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (v *validator) checkFeatures() {
	placed := make([]int, 0, len(v.device.Features))
	for i := range v.device.Features {
		f := &v.device.Features[i]
		path := fmt.Sprintf("features[%d]", i)
		if _, ok := v.layerIDs[f.Layer]; !ok {
			v.report.add(SevError, CodeBadFeature, path, "feature layer %q is not declared", f.Layer)
		}
		switch f.Kind {
		case core.FeatureComponent:
			ci, ok := v.compIDs[f.ID]
			if !ok {
				v.report.add(SevError, CodeBadFeature, path,
					"component feature id %q matches no component", f.ID)
				continue
			}
			c := &v.device.Components[ci]
			if f.XSpan != c.XSpan || f.YSpan != c.YSpan {
				v.report.add(SevWarning, CodeBadFeature, path,
					"feature spans %dx%d differ from component spans %dx%d",
					f.XSpan, f.YSpan, c.XSpan, c.YSpan)
			}
			if f.XSpan <= 0 || f.YSpan <= 0 {
				v.report.add(SevError, CodeBadGeometry, path,
					"non-positive feature span %dx%d", f.XSpan, f.YSpan)
			}
			placed = append(placed, i)
		case core.FeatureChannel:
			if _, ok := v.connIDs[f.Connection]; !ok {
				v.report.add(SevError, CodeBadFeature, path,
					"channel feature references missing connection %q", f.Connection)
			}
			if f.Width <= 0 {
				v.report.add(SevError, CodeBadGeometry, path, "non-positive channel width %d", f.Width)
			}
			if f.Source.X != f.Sink.X && f.Source.Y != f.Sink.Y {
				v.report.add(SevWarning, CodeBadFeature, path,
					"channel segment %v->%v is not axis-aligned", f.Source, f.Sink)
			}
		default:
			v.report.add(SevError, CodeBadFeature, path, "unknown feature kind %d", int(f.Kind))
		}
	}
	v.checkOverlaps(placed)
}

// checkOverlaps flags pairs of placed component features (on the same
// layer) whose footprints intersect.
func (v *validator) checkOverlaps(placed []int) {
	limit := v.opts.MaxOverlapPairs
	if limit == 0 {
		limit = 2000
	}
	if len(placed) > limit {
		v.report.add(SevWarning, CodeOverlap, "features",
			"%d placed features exceed the overlap-check cap of %d; check skipped",
			len(placed), limit)
		return
	}
	for a := 0; a < len(placed); a++ {
		fa := &v.device.Features[placed[a]]
		ra := fa.Footprint()
		for b := a + 1; b < len(placed); b++ {
			fb := &v.device.Features[placed[b]]
			if fa.Layer != fb.Layer {
				continue
			}
			if ra.Overlaps(fb.Footprint()) {
				v.report.add(SevError, CodeOverlap,
					fmt.Sprintf("features[%d]", placed[b]),
					"placed component %q overlaps %q on layer %q", fb.ID, fa.ID, fa.Layer)
			}
		}
	}
}
