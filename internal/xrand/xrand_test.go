package xrand

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed sources diverged")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different seeds gave the same first value")
	}
}

func TestKnownSequence(t *testing.T) {
	// Pin the SplitMix64 sequence: benchmark byte-stability depends on it.
	r := New(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x6c45d188009454f}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntn(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d values in 1000 draws", len(seen))
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Error("Intn of non-positive bound should be 0")
	}
}

func TestInt63n(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
	if r.Int63n(0) != 0 {
		t.Error("Int63n(0) should be 0")
	}
}

func TestFloat64(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestShuffle(t *testing.T) {
	r := New(13)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	// Permutation: same multiset.
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != len(orig) {
		t.Errorf("shuffle lost elements: %v", s)
	}
	same := true
	for i := range s {
		if s[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Error("shuffle left 10 elements in place (astronomically unlikely)")
	}
	// Shuffling nothing must not panic.
	r.Shuffle(0, func(i, j int) { t.Fatal("swap called for empty shuffle") })
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero-value source appears stuck")
	}
}
