// Package xrand provides a small deterministic PRNG (SplitMix64) shared by
// the benchmark generators, the fault injector, and the placement engines.
// Unlike math/rand, its sequence is fixed by this repository, so generated
// benchmarks and experiment results are byte-identical across Go releases.
package xrand

// Source is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0.
type Source struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next value in the sequence.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n); it returns 0 when n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n); it returns 0 when n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// Shuffle pseudo-randomly permutes the first n elements via swap, matching
// the contract of rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
