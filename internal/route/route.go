package route

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/place"
)

// Order selects the sequence nets are routed in.
type Order string

// Net orderings. Short-first is the default: routing constrained short
// nets before long ones raises completion (the net-ordering ablation
// quantifies this).
const (
	OrderShortFirst Order = "short-first"
	OrderLongFirst  Order = "long-first"
	OrderAsGiven    Order = "as-given"
)

// Options tunes the routing flow.
type Options struct {
	// GridPitch is the routing grid cell size in µm; 0 means the default
	// of 100 (one default channel width).
	GridPitch int64
	// Ordering selects net order; empty means short-first.
	Ordering Order
	// RipupRounds bounds rip-up-and-reroute iterations; 0 means 3.
	// Negative disables rip-up entirely (one routing round).
	RipupRounds int
	// ChannelWidth is the emitted channel width in µm; 0 means the device
	// "channelWidth" param or 100.
	ChannelWidth int64
	// MaxRipups bounds targeted rip-up transactions per round; 0 means
	// max(20, nets/4). Rip-up is the expensive recovery path — every
	// transaction re-runs searches for the victims — so it is budgeted.
	MaxRipups int
	// Workers sizes the speculative net-search fan-out: values above 1
	// search that many nets concurrently (bounded by the context's CPU
	// budget), negative selects runtime.NumCPU(), and 0 or 1 keep the
	// classic sequential flow. Any value produces byte-identical reports —
	// speculative results commit in net order and only when provably equal
	// to what the sequential search would have returned (see parallel.go).
	Workers int
}

func (o Options) maxRipups(nets int) int {
	if o.MaxRipups > 0 {
		return o.MaxRipups
	}
	n := nets / 4
	if n < 20 {
		n = 20
	}
	return n
}

func (o Options) pitch() int64 {
	if o.GridPitch <= 0 {
		return 100
	}
	return o.GridPitch
}

func (o Options) ordering() Order {
	if o.Ordering == "" {
		return OrderShortFirst
	}
	return o.Ordering
}

func (o Options) workers() int {
	if o.Workers < 0 {
		return runtime.NumCPU()
	}
	if o.Workers < 2 {
		return 1
	}
	return o.Workers
}

func (o Options) rounds() int {
	if o.RipupRounds == 0 {
		return 3
	}
	if o.RipupRounds < 0 {
		return 1
	}
	return o.RipupRounds
}

// NetResult is the routing outcome for one connection.
type NetResult struct {
	// Net is the connection ID.
	Net string
	// Layer is the connection's layer.
	Layer string
	// Routed reports whether every sink was reached.
	Routed bool
	// Length is the total routed channel length in µm.
	Length int64
	// Expansions counts search node expansions across all sinks and rounds.
	Expansions int
	// Segments are the routed channel features (empty when unrouted).
	Segments []core.Feature
}

// Report is the outcome of routing one placed device.
type Report struct {
	// Router is the engine used.
	Router string
	// Results holds one entry per connection, in device order.
	Results []NetResult
	// Rounds is the number of routing rounds executed.
	Rounds int
}

// Routed counts fully routed nets.
func (r *Report) Routed() int {
	n := 0
	for _, res := range r.Results {
		if res.Routed {
			n++
		}
	}
	return n
}

// Total counts all nets.
func (r *Report) Total() int { return len(r.Results) }

// CompletionRate returns routed/total in [0,1]; 1 for a netless device.
func (r *Report) CompletionRate() float64 {
	if r.Total() == 0 {
		return 1
	}
	return float64(r.Routed()) / float64(r.Total())
}

// TotalLength sums routed channel length in µm.
func (r *Report) TotalLength() int64 {
	var sum int64
	for _, res := range r.Results {
		sum += res.Length
	}
	return sum
}

// TotalExpansions sums search expansions.
func (r *Report) TotalExpansions() int {
	sum := 0
	for _, res := range r.Results {
		sum += res.Expansions
	}
	return sum
}

// Features collects every routed segment, ready to append to the device.
func (r *Report) Features() []core.Feature {
	var out []core.Feature
	for _, res := range r.Results {
		out = append(out, res.Segments...)
	}
	return out
}

// netJob is one connection prepared for routing: resolved pin cells plus
// the escape-lane license (see below).
type netJob struct {
	conn  *core.Connection
	index int // position in device order
	pins  []geom.Point
	hpwl  int64
	// license lists cells this net may temporarily unblock while
	// searching: the straight lane from each pin to its component's
	// boundary. Ports that sit in a component's interior (a PORT entity's
	// centered pin on a fine grid) would otherwise be sealed inside their
	// own footprint.
	license []geom.Cell
}

// RouteAll routes every connection of a placed device with the given
// engine. Nets route on the grid of their own layer; components block the
// layers they occupy; routed paths block their layer's grid so channels
// never cross. Returns an error only for malformed inputs — unroutable
// nets are reported, not failed — or when ctx is cancelled, in which case
// the error wraps ctx.Err() and in-flight searches are abandoned within
// one ExpansionBatch.
func RouteAll(ctx context.Context, p *place.Placement, router Router, opts Options) (*Report, error) {
	d := p.Device
	ix := d.Index()
	die := p.Die
	if die.Empty() {
		return nil, fmt.Errorf("route: placement has an empty die")
	}

	// One grid per layer, with component footprints blocked on each layer
	// the component occupies.
	grids := make(map[string]*geom.Grid, len(d.Layers))
	for _, l := range d.Layers {
		g, err := geom.NewGrid(die, opts.pitch())
		if err != nil {
			return nil, fmt.Errorf("route: %w", err)
		}
		grids[l.ID] = g
	}
	for i := range d.Components {
		c := &d.Components[i]
		fp, ok := p.Footprint(c)
		if !ok {
			return nil, fmt.Errorf("route: component %q is not placed", c.ID)
		}
		for _, lid := range c.Layers {
			if g, ok := grids[lid]; ok {
				g.BlockRect(fp)
			}
		}
	}

	// Prepare jobs, and reserve every pin cell in the base grids so one
	// net's channel can never run through (and seal off) another net's
	// port. A net's own pins stay reachable: search sources are seeded
	// unconditionally and targets are always enterable.
	jobs := make([]netJob, 0, len(d.Connections))
	type pinSite struct {
		job  int
		comp *core.Component
		pos  geom.Point
	}
	var sites []pinSite
	pinOwner := make(map[string]map[geom.Cell]int) // layer -> cell -> job index
	for i := range d.Connections {
		cn := &d.Connections[i]
		job := netJob{conn: cn, index: i}
		ji := len(jobs)
		for _, t := range cn.Targets() {
			c, port, ok := ix.ResolveTarget(t)
			if !ok {
				continue
			}
			if pos, ok := p.PortPosition(c, port); ok {
				job.pins = append(job.pins, pos)
				if g, ok := grids[cn.Layer]; ok {
					cell := g.CellOf(pos)
					g.Block(cell)
					if pinOwner[cn.Layer] == nil {
						pinOwner[cn.Layer] = make(map[geom.Cell]int)
					}
					if _, taken := pinOwner[cn.Layer][cell]; !taken {
						pinOwner[cn.Layer][cell] = ji
					}
					sites = append(sites, pinSite{job: ji, comp: c, pos: pos})
				}
			}
		}
		job.hpwl = geom.HPWL(job.pins)
		jobs = append(jobs, job)
	}
	// Escape-lane licenses are computed after every pin is blocked, and
	// keep only cells that are statically blocked right now (footprints
	// and this net's own pins). Cells free at setup are excluded so a
	// later routed path through them is never unblocked by a license, and
	// lanes truncate at another net's pin cell.
	for _, site := range sites {
		g := grids[jobs[site.job].conn.Layer]
		fp, ok := p.Footprint(site.comp)
		if !ok {
			continue
		}
		owners := pinOwner[jobs[site.job].conn.Layer]
		for _, cell := range escapeLane(g, site.pos, fp) {
			if owner, isPin := owners[cell]; isPin && owner != site.job {
				break // another net's pin: stop before crossing it
			}
			if !g.Blocked(cell) {
				continue // statically free: must stay rip-up-able path space
			}
			jobs[site.job].license = append(jobs[site.job].license, cell)
		}
	}
	orderJobs(jobs, opts.ordering())

	// Resolve the speculative search width once per call: the context's
	// CPU budget (when one is attached) bounds the extra workers for the
	// whole run. Width 1 keeps every round on the classic sequential flow.
	workers := 1
	if w := opts.workers(); w > 1 && len(jobs) > 1 {
		var release func()
		workers, release = par.AcquireWorkers(ctx, w)
		defer release()
	}

	report := &Report{Router: router.Name()}
	// Nets can flip between routed and unrouted across rounds (rerouting a
	// failed net first can displace another), so each round produces a
	// complete, internally consistent snapshot and the best snapshot wins.
	failCount := map[string]int{}
	var bestResults []NetResult
	bestRouted := -1
	for round := 1; round <= opts.rounds(); round++ {
		report.Rounds = round
		// Fresh path occupancy each round; component and pin blocks (and
		// accumulated history costs) persist via clone of the base grids.
		work := make(map[string]*geom.Grid, len(grids))
		for lid, g := range grids {
			work[lid] = g.Clone()
		}
		// Chronic failures route first.
		roundJobs := append([]netJob(nil), jobs...)
		if round > 1 {
			sort.SliceStable(roundJobs, func(a, b int) bool {
				return failCount[roundJobs[a].conn.ID] > failCount[roundJobs[b].conn.ID]
			})
		}
		results, routed := routeRound(ctx, work, router, roundJobs, opts, d, len(d.Connections), workers)
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("route: %w", err)
		}
		for i := range results {
			if !results[i].Routed && results[i].Net != "" {
				failCount[results[i].Net]++
				addHistoryCost(grids[results[i].Layer], jobs[i].pins)
			}
		}
		if routed > bestRouted {
			bestRouted = routed
			bestResults = results
		}
		if routed == len(jobs) {
			break
		}
	}
	report.Results = bestResults
	if report.Results == nil {
		report.Results = make([]NetResult, 0)
	}
	return report, nil
}

// routedNet tracks one successfully routed net within a round: its result
// plus exactly the cells its paths newly blocked, so a targeted rip-up can
// undo it.
type routedNet struct {
	job     *netJob
	res     NetResult
	blocked []geom.Cell
}

// roundState carries one routing round's mutable state: the working
// grids, per-connection results, the routed-net index that powers
// targeted rip-up, and the round's rip-up budget. Extracting it from the
// old routeRound closure lets the speculative commit pass (parallel.go)
// share the exact record/routeOne machinery the sequential flow uses.
type roundState struct {
	work        map[string]*geom.Grid
	router      Router
	opts        Options
	d           *core.Device
	results     []NetResult
	done        map[string]*routedNet
	ripupBudget int
	// ripups counts rip-up transactions attempted this round (committed
	// or rolled back). The speculative commit pass watches it: any rip-up
	// breaks the blocks-only-accumulate monotonicity its conflict test
	// relies on, so the net's layer falls back to sequential routing.
	ripups int
}

func (rs *roundState) record(job *netJob, res NetResult, blocked []geom.Cell) {
	rs.results[job.index] = res
	if res.Routed {
		rs.done[job.conn.ID] = &routedNet{job: job, res: res, blocked: blocked}
	} else {
		delete(rs.done, job.conn.ID)
	}
}

// routeOne routes one net on the live grids, with targeted
// rip-up-and-reroute: when a net fails, the nets whose paths occupy its
// pin bounding box are ripped up, the failed net routes through the
// cleared region, and the victims re-route afterwards.
func (rs *roundState) routeOne(ctx context.Context, job *netJob, allowRipup bool) {
	g := rs.work[job.conn.Layer]
	res, blocked := routeNet(ctx, g, rs.router, job, rs.opts, rs.d)
	if res.Routed || !allowRipup || g == nil || rs.ripupBudget <= 0 {
		rs.record(job, res, blocked)
		return
	}
	rs.ripupBudget--
	rs.ripups++
	// Targeted rip-up: clear every routed net on this layer whose path
	// enters the failed net's pin bounding box, route the failed net
	// through the cleared region, then re-route the victims. The whole
	// transaction commits only if it strictly increases the routed
	// count; otherwise the grid and results roll back.
	region := geom.BoundingBox(job.pins).Inflate(4 * g.Pitch())
	var victims []*routedNet
	for _, rn := range rs.done {
		if rn.job.conn.Layer != job.conn.Layer {
			continue
		}
		for _, c := range rn.blocked {
			if region.ContainsClosed(g.CenterOf(c)) {
				victims = append(victims, rn)
				break
			}
		}
	}
	// No victims means the region is genuinely unreachable; too many
	// means the transaction would be disruptive and slow — both skip.
	const maxVictims = 8
	if len(victims) == 0 || len(victims) > maxVictims {
		rs.record(job, res, nil)
		return
	}
	// Deterministic victim order: device order.
	sort.Slice(victims, func(a, b int) bool { return victims[a].job.index < victims[b].job.index })
	snapshot := g.Clone()
	saved := make([]routedNet, len(victims))
	for i, v := range victims {
		saved[i] = *v
	}
	for _, v := range victims {
		for _, c := range v.blocked {
			g.Unblock(c)
		}
		rs.record(v.job, NetResult{Net: v.job.conn.ID, Layer: v.job.conn.Layer}, nil)
	}
	retry, retryBlocked := routeNet(ctx, g, rs.router, job, rs.opts, rs.d)
	retry.Expansions += res.Expansions
	rs.record(job, retry, retryBlocked)
	for _, v := range victims {
		rs.routeOne(ctx, v.job, false)
	}
	newRouted := 0
	if rs.results[job.index].Routed {
		newRouted++
	}
	for _, v := range victims {
		if rs.results[v.job.index].Routed {
			newRouted++
		}
	}
	if newRouted > len(victims) {
		return // committed: strictly more nets routed than before
	}
	// Roll back.
	rs.work[job.conn.Layer] = snapshot
	rs.record(job, res, nil)
	for i := range saved {
		rs.record(saved[i].job, saved[i].res, saved[i].blocked)
	}
}

// routeRound routes all jobs once. With workers > 1 a speculative search
// phase runs first (parallel.go); the commit pass — and the sequential
// flow it degrades to — processes jobs in round order. Returns
// per-connection results (indexed by device order) and the routed count.
func routeRound(ctx context.Context, work map[string]*geom.Grid, router Router, roundJobs []netJob, opts Options, d *core.Device, nConns, workers int) ([]NetResult, int) {
	rs := &roundState{
		work:        work,
		router:      router,
		opts:        opts,
		d:           d,
		results:     make([]NetResult, nConns),
		done:        make(map[string]*routedNet),
		ripupBudget: opts.maxRipups(len(roundJobs)),
	}
	allowRipup := opts.RipupRounds >= 0
	var specs []specResult
	if workers > 1 {
		specs = speculate(ctx, work, router, roundJobs, opts, d, workers)
	}
	dirty := map[string]bool{}
	blockedSince := map[string][]bool{}
	for i := range roundJobs {
		if ctx.Err() != nil {
			break // RouteAll reports the cancellation
		}
		job := &roundJobs[i]
		lid := job.conn.Layer
		if specs != nil && !dirty[lid] && specs[i].commitsCleanly(blockedSince[lid]) {
			// The speculative search observed no cell a committed net has
			// since blocked, so the sequential search would have returned
			// the identical path: commit it without re-searching.
			blocked := blockPaths(work[lid], specs[i].paths)
			rs.record(job, specs[i].res, blocked)
			markBlocked(blockedSince, lid, work[lid], blocked)
			continue
		}
		before := rs.ripups
		rs.routeOne(ctx, job, allowRipup)
		if specs == nil {
			continue
		}
		if rs.ripups != before {
			// A rip-up transaction (even a rolled-back one) may have
			// unblocked cells mid-flight; the conflict test's monotonicity
			// assumption is gone for this layer, so later nets on it route
			// sequentially.
			dirty[lid] = true
		} else if rn := rs.done[job.conn.ID]; rn != nil {
			markBlocked(blockedSince, lid, work[lid], rn.blocked)
		}
	}
	return rs.results, len(rs.done)
}

// routeNet routes one multi-terminal net on the live grid: search, then
// block the found paths. Successful paths block the grid for later nets;
// the returned cells are exactly those this net newly blocked, enabling
// targeted rip-up.
func routeNet(ctx context.Context, g *geom.Grid, router Router, job *netJob, opts Options, d *core.Device) (NetResult, []geom.Cell) {
	res, paths := searchNet(ctx, g, router, job, opts, d)
	if !res.Routed {
		return res, nil
	}
	return res, blockPaths(g, paths)
}

// blockPaths blocks every cell of the routed paths, in path order,
// returning exactly the free→blocked transitions (endpoints sit on cells
// already blocked by component footprints and pin reservations) so a
// targeted rip-up can undo them.
func blockPaths(g *geom.Grid, paths [][]geom.Cell) []geom.Cell {
	var newlyBlocked []geom.Cell
	for _, path := range paths {
		for _, c := range path {
			if !g.Blocked(c) {
				g.Block(c)
				newlyBlocked = append(newlyBlocked, c)
			}
		}
	}
	return newlyBlocked
}

// searchNet runs one multi-terminal net's maze searches: source to first
// sink, then each further sink to the growing route tree (sequential
// Steiner approximation). The grid's net effect is zero — escape lanes
// are restored and found paths are NOT blocked — so the same grid state
// can host many speculative searches; committing a found route is
// blockPaths. Segments and length are fully rendered here, making the
// result ready to record once its paths commit.
func searchNet(ctx context.Context, g *geom.Grid, router Router, job *netJob, opts Options, d *core.Device) (NetResult, [][]geom.Cell) {
	res := NetResult{Net: job.conn.ID, Layer: job.conn.Layer}
	if g == nil {
		return res, nil // undeclared layer; validator reports it
	}
	if len(job.pins) < 2 {
		return res, nil
	}
	width := opts.ChannelWidth
	if width <= 0 {
		width = int64(d.Params.GetDefault("channelWidth", 100))
	}

	// Open this net's escape lanes for the duration of the search, and
	// restore them before path blocking so lane cells inside footprints
	// never register as rip-up-reversible path cells.
	reblock := make([]geom.Cell, 0, len(job.license))
	for _, c := range job.license {
		if g.Blocked(c) {
			reblock = append(reblock, c)
			g.Unblock(c)
		}
	}
	srcCell := g.CellOf(job.pins[0])
	tree := []geom.Cell{srcCell}
	var allPaths [][]geom.Cell
	routedAll := true
	for _, sinkPt := range job.pins[1:] {
		target := g.CellOf(sinkPt)
		path, exp, ok := router.Search(ctx, g, tree, target)
		res.Expansions += exp
		if !ok {
			routedAll = false
			break
		}
		allPaths = append(allPaths, path)
		tree = append(tree, path...)
	}
	for _, c := range reblock {
		g.Block(c)
	}
	if !routedAll {
		return res, nil
	}
	res.Routed = true
	segNum := 0
	for _, path := range allPaths {
		for _, seg := range compressPath(g, path) {
			res.Length += seg.a.Manhattan(seg.b)
			res.Segments = append(res.Segments, core.Feature{
				Kind:       core.FeatureChannel,
				ID:         fmt.Sprintf("%s_seg%d", job.conn.ID, segNum),
				Name:       job.conn.Name,
				Layer:      job.conn.Layer,
				Connection: job.conn.ID,
				Width:      width,
				Depth:      10,
				Source:     seg.a,
				Sink:       seg.b,
			})
			segNum++
		}
	}
	return res, allPaths
}

type segment struct{ a, b geom.Point }

// compressPath merges collinear cell runs into maximal straight segments
// in device coordinates.
func compressPath(g *geom.Grid, path []geom.Cell) []segment {
	if len(path) < 2 {
		return nil
	}
	var out []segment
	start := g.CenterOf(path[0])
	prev := path[0]
	dirCol, dirRow := 0, 0
	for _, cur := range path[1:] {
		dc, dr := cur.Col-prev.Col, cur.Row-prev.Row
		if (dc != dirCol || dr != dirRow) && (dirCol != 0 || dirRow != 0) {
			out = append(out, segment{start, g.CenterOf(prev)})
			start = g.CenterOf(prev)
		}
		dirCol, dirRow = dc, dr
		prev = cur
	}
	out = append(out, segment{start, g.CenterOf(prev)})
	return out
}

// orderJobs sorts jobs by the requested strategy, stably so equal nets
// keep device order.
func orderJobs(jobs []netJob, o Order) {
	switch o {
	case OrderShortFirst:
		sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].hpwl < jobs[b].hpwl })
	case OrderLongFirst:
		sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].hpwl > jobs[b].hpwl })
	case OrderAsGiven:
		// keep device order
	}
}

// escapeLane returns the straight run of cells from a pin's cell to just
// past the nearest edge of its component footprint. For pins already on
// the boundary this is the pin cell plus one outside cell.
func escapeLane(g *geom.Grid, pin geom.Point, fp geom.Rect) []geom.Cell {
	// Pick the nearest footprint edge by device-space distance.
	dW := pin.X - fp.Min.X
	dE := fp.Max.X - pin.X
	dN := pin.Y - fp.Min.Y
	dS := fp.Max.Y - pin.Y
	dc, dr := -1, 0 // west by default
	best := dW
	if dE < best {
		best, dc, dr = dE, 1, 0
	}
	if dN < best {
		best, dc, dr = dN, 0, -1
	}
	if dS < best {
		dc, dr = 0, 1
	}
	var lane []geom.Cell
	c := g.CellOf(pin)
	for steps := 0; steps <= g.Cols()+g.Rows(); steps++ {
		lane = append(lane, c)
		if !fp.Contains(g.CenterOf(c)) {
			break // first cell outside the footprint ends the lane
		}
		c = geom.Cell{Col: c.Col + dc, Row: c.Row + dr}
		if !g.InBounds(c) {
			break
		}
	}
	return lane
}

// addHistoryCost raises routing cost around a failed net's bounding box so
// the next round's cost-aware engines steer other nets away.
func addHistoryCost(g *geom.Grid, pins []geom.Point) {
	if g == nil || len(pins) == 0 {
		return
	}
	bb := geom.BoundingBox(pins).Inflate(g.Pitch() * 2)
	lo := g.CellOf(bb.Min)
	hi := g.CellOf(bb.Max)
	for row := lo.Row; row <= hi.Row; row++ {
		for col := lo.Col; col <= hi.Col; col++ {
			g.AddCost(geom.Cell{Col: col, Row: row}, 2)
		}
	}
}
