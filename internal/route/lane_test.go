package route

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/place"
)

func laneGrid(t *testing.T) *geom.Grid {
	t.Helper()
	g, err := geom.NewGrid(geom.R(0, 0, 1000, 1000), 100)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEscapeLaneBoundaryPort(t *testing.T) {
	g := laneGrid(t)
	// Component at (200,200)-(500,500); port on the west edge midpoint.
	fp := geom.R(200, 200, 500, 500)
	lane := escapeLane(g, geom.Pt(200, 350), fp)
	// West is nearest: the pin cell (col 2) plus the first outside cell
	// (col 1).
	if len(lane) != 2 {
		t.Fatalf("lane = %v", lane)
	}
	if lane[0] != (geom.Cell{Col: 2, Row: 3}) || lane[1] != (geom.Cell{Col: 1, Row: 3}) {
		t.Errorf("lane cells = %v", lane)
	}
}

func TestEscapeLaneInteriorPort(t *testing.T) {
	g := laneGrid(t)
	// Square component; port at its center must tunnel to the nearest edge.
	fp := geom.R(200, 200, 600, 600)
	lane := escapeLane(g, geom.Pt(400, 400), fp)
	if len(lane) < 3 {
		t.Fatalf("interior lane too short: %v", lane)
	}
	// The lane ends outside the footprint.
	last := g.CenterOf(lane[len(lane)-1])
	if fp.Contains(last) {
		t.Errorf("lane does not exit the footprint: ends at %v", last)
	}
	// All lane cells form a straight run.
	for i := 1; i < len(lane); i++ {
		dc := lane[i].Col - lane[i-1].Col
		dr := lane[i].Row - lane[i-1].Row
		if dc*dc+dr*dr != 1 {
			t.Errorf("lane not contiguous at %d: %v", i, lane)
		}
	}
}

func TestEscapeLanePicksNearestEdge(t *testing.T) {
	g := laneGrid(t)
	// Wide component; port near the east edge must exit east, not west.
	fp := geom.R(0, 400, 900, 600)
	lane := escapeLane(g, geom.Pt(850, 500), fp)
	last := lane[len(lane)-1]
	if last.Col <= g.CellOf(geom.Pt(850, 500)).Col {
		t.Errorf("lane went the wrong way: %v", lane)
	}
}

func TestEscapeLaneClampsAtGridEdge(t *testing.T) {
	g := laneGrid(t)
	// Footprint flush against the grid's west edge; port on that edge.
	fp := geom.R(0, 0, 300, 300)
	lane := escapeLane(g, geom.Pt(0, 150), fp)
	// Must terminate without leaving the grid (no panic, bounded length).
	for _, c := range lane {
		if !g.InBounds(c) {
			t.Errorf("lane cell %v out of bounds", c)
		}
	}
}

// TestLicenseDoesNotUnblockForeignPaths reproduces the crossing bug the
// static-license rule fixed: a net whose escape lane's outside cell is
// later occupied by another net's path must not route through that path.
func TestLicenseDoesNotUnblockForeignPaths(t *testing.T) {
	// Two nets: A routes first and occupies the corridor cell right
	// outside B's port; B must detour around it, not through it.
	b := core.NewBuilder("license")
	flow := b.FlowLayer()
	b.IOPort("a1", flow, 200)
	b.IOPort("a2", flow, 200)
	b.IOPort("b1", flow, 200)
	b.IOPort("b2", flow, 200)
	b.Connect("na", flow, "a1.port1", "a2.port1")
	b.Connect("nb", flow, "b1.port1", "b2.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := (place.Greedy{}).Place(context.Background(), d, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RouteAll(context.Background(), p, AStar{}, Options{Ordering: OrderAsGiven})
	if err != nil {
		t.Fatal(err)
	}
	// Both nets routed, and their segments never overlap cell-wise.
	if rep.Routed() != 2 {
		t.Fatalf("routed %d/2", rep.Routed())
	}
	occupied := map[geom.Cell]string{}
	g, err := geom.NewGrid(p.Die, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		for _, seg := range res.Segments {
			// Walk the segment cell by cell.
			a, bb := g.CellOf(seg.Source), g.CellOf(seg.Sink)
			dc, dr := sign(bb.Col-a.Col), sign(bb.Row-a.Row)
			for c := a; ; c = (geom.Cell{Col: c.Col + dc, Row: c.Row + dr}) {
				if owner, taken := occupied[c]; taken && owner != res.Net {
					// Shared endpoint cells at distinct ports are the only
					// tolerated overlap; these nets share no component, so
					// any overlap is a real crossing.
					t.Fatalf("nets %s and %s share cell %v", owner, res.Net, c)
				}
				occupied[c] = res.Net
				if c == bb {
					break
				}
			}
		}
	}
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

func TestOrderJobs(t *testing.T) {
	mk := func(id string, hpwl int64) netJob {
		return netJob{conn: &core.Connection{ID: id}, hpwl: hpwl}
	}
	jobs := []netJob{mk("long", 300), mk("short", 100), mk("mid", 200)}

	shortFirst := append([]netJob(nil), jobs...)
	orderJobs(shortFirst, OrderShortFirst)
	if shortFirst[0].conn.ID != "short" || shortFirst[2].conn.ID != "long" {
		t.Errorf("short-first order: %v %v %v",
			shortFirst[0].conn.ID, shortFirst[1].conn.ID, shortFirst[2].conn.ID)
	}

	longFirst := append([]netJob(nil), jobs...)
	orderJobs(longFirst, OrderLongFirst)
	if longFirst[0].conn.ID != "long" {
		t.Errorf("long-first head = %s", longFirst[0].conn.ID)
	}

	asGiven := append([]netJob(nil), jobs...)
	orderJobs(asGiven, OrderAsGiven)
	if asGiven[0].conn.ID != "long" || asGiven[1].conn.ID != "short" {
		t.Error("as-given must not reorder")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.pitch() != 100 {
		t.Errorf("default pitch = %d", o.pitch())
	}
	if o.ordering() != OrderShortFirst {
		t.Errorf("default ordering = %s", o.ordering())
	}
	if o.rounds() != 3 {
		t.Errorf("default rounds = %d", o.rounds())
	}
	if (Options{RipupRounds: -1}).rounds() != 1 {
		t.Error("negative rip-up rounds should mean one round")
	}
	if (Options{RipupRounds: 5}).rounds() != 5 {
		t.Error("explicit rounds ignored")
	}
	if o.maxRipups(400) != 100 {
		t.Errorf("maxRipups(400) = %d", o.maxRipups(400))
	}
	if o.maxRipups(10) != 20 {
		t.Errorf("maxRipups floor = %d", o.maxRipups(10))
	}
	if (Options{MaxRipups: 3}).maxRipups(400) != 3 {
		t.Error("explicit MaxRipups ignored")
	}
}
