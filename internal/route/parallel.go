// Speculative concurrent net routing. The round's nets are searched in
// parallel against the round-start grid state, then committed strictly in
// net order; a speculative result is used only when it is provably the
// result the sequential flow would have computed, so any worker count
// yields byte-identical reports.
//
// The proof obligation rests on two facts:
//
//   - Monotonicity: between rip-ups, routing only ever blocks cells
//     (committed paths), never unblocks them, and never changes costs
//     (history costs move between rounds, not within one).
//   - Read-set containment: a maze search reads exactly the blocked state
//     of the cells it probes, and every cell it observes to be FREE gets
//     stamped into the arena's visited set (a passable neighbor is always
//     visited; an impassable one is skipped unstamped). Cells observed
//     blocked stay blocked by monotonicity.
//
// Hence if a net's speculative visited set is disjoint from the cells
// committed nets have blocked since the round started, a re-search on the
// live grid would observe the identical free/blocked sequence and return
// the identical path, expansions count and all — so the commit pass skips
// the re-search and replays the blocking. Any overlap, or any rip-up
// transaction (which unblocks cells and so breaks monotonicity for its
// layer), sends the net down the ordinary sequential path on the live
// grid, which by induction is in exactly the state sequential execution
// would have produced.
package route

import (
	"context"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/par"
)

// specResult is one net's speculative search outcome against the
// round-start grids.
type specResult struct {
	res   NetResult
	paths [][]geom.Cell
	// visited holds the stamped cell indices of every search the net ran —
	// the cells observed free, which the commit conflict test checks
	// against cells blocked since the round started.
	visited []int32
	// ok marks the speculation usable: the searches ran to completion
	// (not cancelled mid-flight) on a declared layer.
	ok bool
}

// commitsCleanly reports whether the speculative result can stand in for
// the sequential search: it found a complete route and observed no cell
// that a previously committed net has since blocked. Unrouted
// speculations never commit — the sequential flow's rip-up recovery (and
// its budget bookkeeping) must run exactly as it would have.
func (sp *specResult) commitsCleanly(blockedSince []bool) bool {
	if !sp.ok || !sp.res.Routed {
		return false
	}
	if blockedSince == nil {
		return true
	}
	for _, i := range sp.visited {
		if blockedSince[i] {
			return false
		}
	}
	return true
}

// markBlocked folds newly blocked cells into the layer's blocked-since
// set, allocating it on first use.
func markBlocked(blockedSince map[string][]bool, layer string, g *geom.Grid, blocked []geom.Cell) {
	if len(blocked) == 0 {
		return
	}
	set := blockedSince[layer]
	if set == nil {
		set = make([]bool, g.NumCells())
		blockedSince[layer] = set
	}
	cols := g.Cols()
	for _, c := range blocked {
		set[c.Row*cols+c.Col] = true
	}
}

// speculate searches every job concurrently against the round-start grid
// state. Jobs are split into contiguous chunks, one per worker; each
// worker searches its chunk sequentially on private lazy clones of the
// layer grids (searchNet leaves the grid unchanged, so one clone serves a
// whole chunk). Results land in job order — nothing about the outcome
// depends on scheduling.
func speculate(ctx context.Context, work map[string]*geom.Grid, router Router, jobs []netJob, opts Options, d *core.Device, workers int) []specResult {
	specs := make([]specResult, len(jobs))
	if workers > len(jobs) {
		workers = len(jobs)
	}
	chunk := (len(jobs) + workers - 1) / workers
	par.ForEach(workers, workers, func(w int) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(jobs) {
			hi = len(jobs)
		}
		var clones map[string]*geom.Grid
		for j := lo; j < hi; j++ {
			job := &jobs[j]
			g := work[job.conn.Layer]
			if g == nil {
				continue // undeclared layer: sequential path reports it
			}
			if clones == nil {
				clones = make(map[string]*geom.Grid, 1)
			}
			cg := clones[job.conn.Layer]
			if cg == nil {
				cg = g.Clone()
				clones[job.conn.Layer] = cg
			}
			col := &visitCollector{}
			res, paths := searchNet(withCollector(ctx, col), cg, router, job, opts, d)
			specs[j] = specResult{res: res, paths: paths, visited: col.cells, ok: ctx.Err() == nil}
		}
	})
	return specs
}
