package route

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/place"
)

// reportBytes canonically encodes a report for byte-comparison.
func reportBytes(t testing.TB, r *Report) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelNetsMatchSequential is the router's core determinism claim:
// speculative concurrent routing commits in net order and produces
// byte-identical reports to the sequential flow, for every engine, at any
// worker count.
func TestParallelNetsMatchSequential(t *testing.T) {
	for _, name := range []string{"aquaflex_3b", "rotary_pcr", "hiv_diagnostics"} {
		for _, router := range Engines() {
			t.Run(name+"/"+router.Name(), func(t *testing.T) {
				_, seq := routedDevice(t, name, router, Options{})
				want := reportBytes(t, seq)
				for _, w := range []int{2, 4, -1} {
					_, par := routedDevice(t, name, router, Options{Workers: w})
					if got := reportBytes(t, par); !bytes.Equal(got, want) {
						t.Errorf("Workers=%d report differs from sequential", w)
					}
				}
			})
		}
	}
}

// TestParallelNetsUnderBudget pins that the CPU budget only narrows the
// fan-out — never the artifact — and that the router returns every token
// it takes.
func TestParallelNetsUnderBudget(t *testing.T) {
	b, err := bench.ByName("rotary_pcr")
	if err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	p, err := (place.Greedy{}).Place(context.Background(), d, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RouteAll(context.Background(), p, AStar{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, seq)
	for _, cap := range []int{1, 3} {
		budget := par.NewBudget(cap)
		ctx := par.ContextWithBudget(context.Background(), budget)
		rep, err := RouteAll(ctx, p, AStar{}, Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got := reportBytes(t, rep); !bytes.Equal(got, want) {
			t.Errorf("budget cap %d: report differs from sequential", cap)
		}
		if budget.InUse() != 0 {
			t.Errorf("budget cap %d: %d tokens leaked", cap, budget.InUse())
		}
	}
}

// TestParallelNetsRepeatedRuns hammers the scheduling-independence
// property at unit scope: the same parallel route, run repeatedly, must
// never vary — the commit pass alone decides outcomes, not goroutine
// interleaving.
func TestParallelNetsRepeatedRuns(t *testing.T) {
	b, err := bench.ByName("aquaflex_3b")
	if err != nil {
		t.Fatal(err)
	}
	p, err := (place.Greedy{}).Place(context.Background(), b.Build(), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for run := 0; run < 6; run++ {
		rep, err := RouteAll(context.Background(), p, Hadlock{}, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		got := reportBytes(t, rep)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("run %d differs from run 0", run)
		}
	}
}

// FuzzParallelRouteDeterminism fuzzes the commit-order property over
// arbitrary devices, seeded from the same benchmark corpus as
// FuzzDeviceJSON: any device the codec accepts and the greedy placer can
// place must route identically with and without speculative workers.
func FuzzParallelRouteDeterminism(f *testing.F) {
	for _, b := range bench.Suite() {
		if data, err := core.Marshal(b.Device()); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := core.Unmarshal(data)
		if err != nil {
			return
		}
		// Bound the work per input: fuzzing explores the commit logic, not
		// router throughput.
		if len(d.Components) > 48 || len(d.Connections) > 64 {
			return
		}
		p, err := (place.Greedy{}).Place(context.Background(), d, place.Options{})
		if err != nil {
			return
		}
		seq, err := RouteAll(context.Background(), p, AStar{}, Options{})
		if err != nil {
			return // malformed placement/die: both flows reject identically
		}
		par, err := RouteAll(context.Background(), p, AStar{}, Options{Workers: 4})
		if err != nil {
			t.Fatalf("parallel flow errored where sequential succeeded: %v", err)
		}
		if !bytes.Equal(reportBytes(t, seq), reportBytes(t, par)) {
			t.Errorf("parallel report differs from sequential for device %q", d.Name)
		}
	})
}
