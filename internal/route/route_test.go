package route

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/place"
)

// openGrid returns an empty 20x20 grid with 10µm pitch.
func openGrid(t testing.TB) *geom.Grid {
	t.Helper()
	g, err := geom.NewGrid(geom.R(0, 0, 200, 200), 10)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSearchOpenGrid(t *testing.T) {
	for _, r := range Engines() {
		t.Run(r.Name(), func(t *testing.T) {
			g := openGrid(t)
			src := geom.Cell{Col: 0, Row: 0}
			dst := geom.Cell{Col: 9, Row: 6}
			path, exp, ok := r.Search(context.Background(), g, []geom.Cell{src}, dst)
			if !ok {
				t.Fatal("no path on open grid")
			}
			if exp <= 0 {
				t.Error("expansions not counted")
			}
			// Shortest path: manhattan distance + 1 cells.
			if len(path) != 9+6+1 {
				t.Errorf("path length = %d cells, want 16", len(path))
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Errorf("path endpoints = %v..%v", path[0], path[len(path)-1])
			}
			// Path must be cell-connected.
			for i := 1; i < len(path); i++ {
				d := abs(path[i].Col-path[i-1].Col) + abs(path[i].Row-path[i-1].Row)
				if d != 1 {
					t.Fatalf("path not connected at %d: %v -> %v", i, path[i-1], path[i])
				}
			}
		})
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestSearchAroundObstacle(t *testing.T) {
	for _, r := range Engines() {
		t.Run(r.Name(), func(t *testing.T) {
			g := openGrid(t)
			// Wall across columns 0..18 at row 10 — forces a detour via col 19.
			for col := 0; col < 19; col++ {
				g.Block(geom.Cell{Col: col, Row: 10})
			}
			src := geom.Cell{Col: 0, Row: 0}
			dst := geom.Cell{Col: 0, Row: 19}
			path, _, ok := r.Search(context.Background(), g, []geom.Cell{src}, dst)
			if !ok {
				t.Fatal("no path around obstacle")
			}
			// Detour: 19 right to the gap at col 19, 19 down, 19 left back
			// to col 0 = 57 moves = 58 cells.
			if len(path) != 58 {
				t.Errorf("detour path = %d cells, want 58", len(path))
			}
			for _, c := range path {
				if g.Blocked(c) && c != dst {
					t.Fatalf("path crosses blocked cell %v", c)
				}
			}
		})
	}
}

func TestSearchUnreachable(t *testing.T) {
	for _, r := range Engines() {
		t.Run(r.Name(), func(t *testing.T) {
			g := openGrid(t)
			// Seal row 10 completely.
			for col := 0; col < 20; col++ {
				g.Block(geom.Cell{Col: col, Row: 10})
			}
			_, exp, ok := r.Search(context.Background(), g, []geom.Cell{{Col: 0, Row: 0}}, geom.Cell{Col: 0, Row: 19})
			if ok {
				t.Fatal("found path through sealed wall")
			}
			if exp <= 0 {
				t.Error("failed search should still report expansions")
			}
		})
	}
}

func TestSearchBlockedTargetIsEnterable(t *testing.T) {
	// Targets are ports on component boundaries: their cells are blocked by
	// the footprint but must still be reachable.
	for _, r := range Engines() {
		g := openGrid(t)
		dst := geom.Cell{Col: 5, Row: 5}
		g.Block(dst)
		_, _, ok := r.Search(context.Background(), g, []geom.Cell{{Col: 0, Row: 0}}, dst)
		if !ok {
			t.Errorf("%s: blocked target should be enterable", r.Name())
		}
	}
}

func TestSearchMultiSource(t *testing.T) {
	for _, r := range Engines() {
		g := openGrid(t)
		sources := []geom.Cell{{Col: 0, Row: 0}, {Col: 18, Row: 18}}
		dst := geom.Cell{Col: 19, Row: 19}
		path, _, ok := r.Search(context.Background(), g, sources, dst)
		if !ok {
			t.Fatalf("%s: multi-source search failed", r.Name())
		}
		// Must root at the nearer source.
		if path[0] != sources[1] {
			t.Errorf("%s: path rooted at %v, want %v", r.Name(), path[0], sources[1])
		}
		if len(path) != 3 {
			t.Errorf("%s: path = %d cells, want 3", r.Name(), len(path))
		}
	}
}

func TestSearchSourceEqualsTarget(t *testing.T) {
	for _, r := range Engines() {
		g := openGrid(t)
		c := geom.Cell{Col: 3, Row: 3}
		path, _, ok := r.Search(context.Background(), g, []geom.Cell{c}, c)
		if !ok || len(path) != 1 || path[0] != c {
			t.Errorf("%s: self search = %v, %v", r.Name(), path, ok)
		}
	}
}

func TestAStarExpandsFewerThanLee(t *testing.T) {
	// The headline of Fig. 4's expansion series.
	g := openGrid(t)
	src := []geom.Cell{{Col: 0, Row: 0}}
	// A mostly-straight run: directed searches shine here, while Lee's
	// uniform wavefront floods the grid. (On a perfect diagonal the
	// Manhattan heuristic degenerates and all engines tie.)
	dst := geom.Cell{Col: 19, Row: 2}
	_, leeExp, _ := Lee{}.Search(context.Background(), g, src, dst)
	_, aExp, _ := AStar{}.Search(context.Background(), g, src, dst)
	_, hExp, _ := Hadlock{}.Search(context.Background(), g, src, dst)
	if aExp >= leeExp {
		t.Errorf("A* expansions %d not fewer than Lee %d", aExp, leeExp)
	}
	if hExp >= leeExp {
		t.Errorf("Hadlock expansions %d not fewer than Lee %d", hExp, leeExp)
	}
}

func TestEngineNames(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Engines() {
		names[e.Name()] = true
	}
	for _, want := range []string{"lee", "astar", "hadlock"} {
		if !names[want] {
			t.Errorf("engine %q missing", want)
		}
	}
}

// routedDevice places and routes one benchmark with the given router.
func routedDevice(t testing.TB, name string, router Router, opts Options) (*core.Device, *Report) {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	p, err := (place.Greedy{}).Place(context.Background(), d, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := RouteAll(context.Background(), p, router, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, report
}

func TestRouteAllBenchmarks(t *testing.T) {
	for _, name := range []string{"aquaflex_3b", "rotary_pcr", "hiv_diagnostics"} {
		for _, router := range Engines() {
			t.Run(name+"/"+router.Name(), func(t *testing.T) {
				d, report := routedDevice(t, name, router, Options{})
				if report.Total() != len(d.Connections) {
					t.Errorf("results = %d, want %d", report.Total(), len(d.Connections))
				}
				if report.CompletionRate() < 0.8 {
					t.Errorf("completion = %.2f, want >= 0.8 on a small benchmark",
						report.CompletionRate())
				}
				if report.TotalLength() <= 0 || report.TotalExpansions() <= 0 {
					t.Errorf("totals = %d µm, %d expansions",
						report.TotalLength(), report.TotalExpansions())
				}
			})
		}
	}
}

func TestRoutedSegmentsAreWellFormed(t *testing.T) {
	d, report := routedDevice(t, "aquaflex_3b", AStar{}, Options{})
	ix := d.Index()
	for _, res := range report.Results {
		if !res.Routed {
			continue
		}
		if len(res.Segments) == 0 {
			t.Errorf("net %s routed but has no segments", res.Net)
		}
		for _, seg := range res.Segments {
			if seg.Kind != core.FeatureChannel {
				t.Errorf("segment %s kind = %v", seg.ID, seg.Kind)
			}
			if seg.Source.X != seg.Sink.X && seg.Source.Y != seg.Sink.Y {
				t.Errorf("segment %s not axis-aligned: %v -> %v", seg.ID, seg.Source, seg.Sink)
			}
			if seg.Width <= 0 {
				t.Errorf("segment %s width = %d", seg.ID, seg.Width)
			}
			if cn := ix.Connection(seg.Connection); cn == nil {
				t.Errorf("segment %s references missing net %q", seg.ID, seg.Connection)
			} else if cn.Layer != seg.Layer {
				t.Errorf("segment %s on layer %q, net on %q", seg.ID, seg.Layer, cn.Layer)
			}
		}
	}
}

func TestRouteChannelWidthFromParams(t *testing.T) {
	b := core.NewBuilder("w")
	flow := b.FlowLayer()
	b.IOPort("a", flow, 200)
	b.IOPort("z", flow, 200)
	b.Connect("n", flow, "a.port1", "z.port1")
	b.Param("channelWidth", 150)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := (place.Greedy{}).Place(context.Background(), d, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := RouteAll(context.Background(), p, Lee{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Routed() != 1 {
		t.Fatalf("net unrouted:\n%+v", report.Results)
	}
	for _, seg := range report.Results[0].Segments {
		if seg.Width != 150 {
			t.Errorf("segment width = %d, want 150 from params", seg.Width)
		}
	}
	// Explicit option overrides params.
	report, err = RouteAll(context.Background(), p, Lee{}, Options{ChannelWidth: 80})
	if err != nil {
		t.Fatal(err)
	}
	if w := report.Results[0].Segments[0].Width; w != 80 {
		t.Errorf("segment width = %d, want 80 from options", w)
	}
}

func TestRouteOrderings(t *testing.T) {
	for _, o := range []Order{OrderShortFirst, OrderLongFirst, OrderAsGiven} {
		_, report := routedDevice(t, "aquaflex_3b", AStar{}, Options{Ordering: o})
		if report.Total() == 0 {
			t.Errorf("ordering %s produced no results", o)
		}
	}
}

func TestRouteDeterminism(t *testing.T) {
	_, r1 := routedDevice(t, "rotary_pcr", Hadlock{}, Options{})
	_, r2 := routedDevice(t, "rotary_pcr", Hadlock{}, Options{})
	if r1.TotalLength() != r2.TotalLength() || r1.TotalExpansions() != r2.TotalExpansions() {
		t.Error("identical routing runs differ")
	}
}

func TestRouteEmptyDieRejected(t *testing.T) {
	d := &core.Device{Name: "x"}
	p := &place.Placement{Device: d}
	if _, err := RouteAll(context.Background(), p, Lee{}, Options{}); err == nil {
		t.Error("empty die should be rejected")
	}
}

func TestRouteUnplacedComponentRejected(t *testing.T) {
	b := core.NewBuilder("u")
	flow := b.FlowLayer()
	b.IOPort("a", flow, 200)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := &place.Placement{Device: d, Die: geom.R(0, 0, 1000, 1000),
		Origins: map[string]geom.Point{}}
	if _, err := RouteAll(context.Background(), p, Lee{}, Options{}); err == nil {
		t.Error("unplaced component should be rejected")
	}
}

func TestCompressPath(t *testing.T) {
	g := openGrid(t)
	// L-shaped path: 3 east, then 2 south.
	path := []geom.Cell{
		{Col: 0, Row: 0}, {Col: 1, Row: 0}, {Col: 2, Row: 0}, {Col: 3, Row: 0},
		{Col: 3, Row: 1}, {Col: 3, Row: 2},
	}
	segs := compressPath(g, path)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2: %+v", len(segs), segs)
	}
	if segs[0].a != g.CenterOf(path[0]) || segs[0].b != g.CenterOf(path[3]) {
		t.Errorf("segment 0 = %+v", segs[0])
	}
	if segs[1].b != g.CenterOf(path[5]) {
		t.Errorf("segment 1 = %+v", segs[1])
	}
	if compressPath(g, path[:1]) != nil {
		t.Error("single-cell path should yield no segments")
	}
}

func TestReportAggregates(t *testing.T) {
	r := &Report{Results: []NetResult{
		{Net: "a", Routed: true, Length: 100, Expansions: 5},
		{Net: "b", Routed: false, Expansions: 7},
	}}
	if r.Routed() != 1 || r.Total() != 2 {
		t.Errorf("Routed/Total = %d/%d", r.Routed(), r.Total())
	}
	if r.CompletionRate() != 0.5 {
		t.Errorf("CompletionRate = %v", r.CompletionRate())
	}
	if r.TotalLength() != 100 || r.TotalExpansions() != 12 {
		t.Errorf("totals = %d, %d", r.TotalLength(), r.TotalExpansions())
	}
	empty := &Report{}
	if empty.CompletionRate() != 1 {
		t.Errorf("empty CompletionRate = %v", empty.CompletionRate())
	}
}

func TestRipupRecoversFailures(t *testing.T) {
	// Construct a congested bottleneck: as-given ordering with one round
	// fails at least one net; three rounds with rip-up must do no worse.
	_, oneRound := routedDevice(t, "general_purpose_mfd", Lee{},
		Options{RipupRounds: -1, Ordering: OrderAsGiven, GridPitch: 200})
	_, ripup := routedDevice(t, "general_purpose_mfd", Lee{},
		Options{RipupRounds: 4, Ordering: OrderAsGiven, GridPitch: 200})
	if ripup.Routed() < oneRound.Routed() {
		t.Errorf("rip-up routed %d nets, single round %d", ripup.Routed(), oneRound.Routed())
	}
}
