package route

import (
	"context"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

// allocGrid builds the congested benchmark grid for alloc measurements.
func allocGrid(t testing.TB) *geom.Grid {
	t.Helper()
	g, err := geom.NewGrid(geom.R(0, 0, 16000, 16000), 100)
	if err != nil {
		t.Fatal(err)
	}
	for row := 10; row < 150; row += 20 {
		for col := 10; col < 150; col += 20 {
			g.BlockRect(geom.R(int64(col)*100, int64(row)*100,
				int64(col+8)*100, int64(row+8)*100))
		}
	}
	return g
}

// The ExpansionBatch telemetry flush sits inside the search loops PR 3
// made allocation-free via the pooled arena. With no recorder on the
// context each engine must stay at the arena steady state: ~1 alloc/op for
// the returned path, nothing from telemetry.
func TestSearchAllocFreeWithoutTelemetry(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc guard is meaningless under -race")
	}
	for _, r := range Engines() {
		t.Run(r.Name(), func(t *testing.T) {
			g := allocGrid(t)
			sources := []geom.Cell{{Col: 0, Row: 0}, {Col: 0, Row: 159}}
			target := geom.Cell{Col: 159, Row: 80}
			ctx := context.Background()
			// Warm the arena pool and the engine's queue/heap capacity.
			for i := 0; i < 3; i++ {
				if _, _, ok := r.Search(ctx, g, sources, target); !ok {
					t.Fatal("no path on alloc grid")
				}
			}
			avg := testing.AllocsPerRun(20, func() {
				r.Search(ctx, g, sources, target)
			})
			if avg > 2 {
				t.Fatalf("%s Search allocates %.2f allocs/op with telemetry disabled, want <= 2",
					r.Name(), avg)
			}
		})
	}
}

// BenchmarkSearchNoTelemetry is the tracked disabled-path number for the
// search loop, alongside BenchmarkSearch.
func BenchmarkSearchNoTelemetry(b *testing.B) {
	g := allocGrid(b)
	sources := []geom.Cell{{Col: 0, Row: 0}, {Col: 0, Row: 159}}
	target := geom.Cell{Col: 159, Row: 80}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := (AStar{}).Search(context.Background(), g, sources, target); !ok {
			b.Fatal("no path")
		}
	}
}
