// Package route implements channel routing for placed ParchMint devices:
// three grid maze routers (Lee breadth-first, A*, and Hadlock detour-count)
// behind one interface, a sequential multi-terminal net router with
// configurable net ordering, and history-cost rip-up-and-reroute. Routed
// nets become ParchMint channel features; completion rate, total channel
// length, and node expansions are the quality metrics the router-comparison
// experiment (Fig. 4) reports.
package route

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/geom"
)

// Router finds a path on an occupancy grid from any of a set of source
// cells (the already-routed tree of the net) to a target cell.
type Router interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Search returns the path from one source to the target (inclusive on
	// both ends), and the number of node expansions performed. ok is false
	// when no path exists; the expansion count is still meaningful.
	// The context is request-scoped: engines poll it every ExpansionBatch
	// node expansions and abandon the search (ok false) when cancelled;
	// RouteAll turns the cancellation into an error.
	Search(ctx context.Context, g *geom.Grid, sources []geom.Cell, target geom.Cell) (path []geom.Cell, expansions int, ok bool)
}

// ExpansionBatch is the routers' cancellation granularity: each engine
// polls the context every ExpansionBatch node expansions, so a cancelled
// request abandons an in-flight maze search within one batch.
const ExpansionBatch = 1024

// cancelled polls ctx once per ExpansionBatch expansions.
func cancelled(ctx context.Context, expansions int) bool {
	return expansions%ExpansionBatch == 0 && ctx.Err() != nil
}

// Engines returns the three routers in comparison order.
func Engines() []Router {
	return []Router{Lee{}, AStar{}, Hadlock{}}
}

// EngineByName resolves a routing engine by its Name. The empty string
// selects the default engine (A*).
func EngineByName(name string) (Router, error) {
	if name == "" {
		return AStar{}, nil
	}
	for _, e := range Engines() {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("route: unknown router %q (lee, astar, hadlock)", name)
}

// searchState is the per-search scratch shared by the three engines.
type searchState struct {
	g       *geom.Grid
	parent  []int32 // cell index -> predecessor cell index, -1 unset, -2 root
	scratch []geom.Cell
}

func newSearchState(g *geom.Grid) *searchState {
	st := &searchState{g: g, parent: make([]int32, g.NumCells())}
	for i := range st.parent {
		st.parent[i] = -1
	}
	return st
}

func (st *searchState) index(c geom.Cell) int32 { return int32(c.Row*st.g.Cols() + c.Col) }

func (st *searchState) cell(i int32) geom.Cell {
	cols := st.g.Cols()
	return geom.Cell{Col: int(i) % cols, Row: int(i) / cols}
}

// unwind rebuilds the path from a root to the target.
func (st *searchState) unwind(target geom.Cell) []geom.Cell {
	var rev []geom.Cell
	for i := st.index(target); i != -2; i = st.parent[i] {
		rev = append(rev, st.cell(i))
	}
	out := make([]geom.Cell, len(rev))
	for i, c := range rev {
		out[len(rev)-1-i] = c
	}
	return out
}

// passable reports whether the router may enter cell c while hunting for
// target: blocked cells are closed except the target itself (targets are
// ports sitting on component boundaries, whose cells are blocked by the
// component footprint).
func passable(g *geom.Grid, c, target geom.Cell) bool {
	return c == target || !g.Blocked(c)
}

// Lee is the classic breadth-first maze router: uniform wavefront
// expansion, guaranteed shortest path, maximal expansions.
type Lee struct{}

// Name identifies the engine.
func (Lee) Name() string { return "lee" }

// Search runs breadth-first wavefront expansion.
func (Lee) Search(ctx context.Context, g *geom.Grid, sources []geom.Cell, target geom.Cell) ([]geom.Cell, int, bool) {
	st := newSearchState(g)
	queue := make([]geom.Cell, 0, len(sources))
	for _, s := range sources {
		if !g.InBounds(s) {
			continue
		}
		if st.parent[st.index(s)] == -1 {
			st.parent[st.index(s)] = -2
			queue = append(queue, s)
		}
	}
	expansions := 0
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if cancelled(ctx, expansions) {
			return nil, expansions, false
		}
		expansions++
		if cur == target {
			return st.unwind(cur), expansions, true
		}
		st.scratch = g.Neighbors4(st.scratch[:0], cur)
		for _, nb := range st.scratch {
			if !passable(g, nb, target) {
				continue
			}
			if i := st.index(nb); st.parent[i] == -1 {
				st.parent[i] = st.index(cur)
				queue = append(queue, nb)
			}
		}
	}
	return nil, expansions, false
}

// pqItem is one frontier entry of the best-first engines.
type pqItem struct {
	cell geom.Cell
	prio int64
	g    int64 // cost so far
	seq  int64 // FIFO tiebreak for determinism
}

type priorityQueue []pqItem

func (q priorityQueue) Len() int { return len(q) }
func (q priorityQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q priorityQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *priorityQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// AStar is best-first search with the Manhattan-distance heuristic:
// shortest paths like Lee, with far fewer expansions on open dies.
type AStar struct{}

// Name identifies the engine.
func (AStar) Name() string { return "astar" }

// Search runs A* from the source set toward the target.
func (AStar) Search(ctx context.Context, g *geom.Grid, sources []geom.Cell, target geom.Cell) ([]geom.Cell, int, bool) {
	st := newSearchState(g)
	dist := make([]int64, g.NumCells())
	for i := range dist {
		dist[i] = -1
	}
	h := func(c geom.Cell) int64 {
		dx := int64(c.Col - target.Col)
		if dx < 0 {
			dx = -dx
		}
		dy := int64(c.Row - target.Row)
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	var q priorityQueue
	var seq int64
	for _, s := range sources {
		if !g.InBounds(s) {
			continue
		}
		if i := st.index(s); dist[i] == -1 {
			dist[i] = 0
			st.parent[i] = -2
			heap.Push(&q, pqItem{cell: s, prio: h(s), g: 0, seq: seq})
			seq++
		}
	}
	expansions := 0
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		i := st.index(it.cell)
		if it.g > dist[i] {
			continue // stale entry
		}
		if cancelled(ctx, expansions) {
			return nil, expansions, false
		}
		expansions++
		if it.cell == target {
			return st.unwind(it.cell), expansions, true
		}
		st.scratch = g.Neighbors4(st.scratch[:0], it.cell)
		for _, nb := range st.scratch {
			if !passable(g, nb, target) {
				continue
			}
			ni := st.index(nb)
			ng := it.g + 1 + int64(g.Cost(nb))
			if dist[ni] == -1 || ng < dist[ni] {
				dist[ni] = ng
				st.parent[ni] = i
				heap.Push(&q, pqItem{cell: nb, prio: ng + h(nb), g: ng, seq: seq})
				seq++
			}
		}
	}
	return nil, expansions, false
}

// Hadlock is detour-count best-first search: priority is the number of
// moves made away from the target. It expands fewer cells than Lee while
// still guaranteeing shortest paths on uniform grids; implemented as 0-1
// BFS over the detour metric.
type Hadlock struct{}

// Name identifies the engine.
func (Hadlock) Name() string { return "hadlock" }

// Search runs 0-1 breadth-first search on detour counts.
func (Hadlock) Search(ctx context.Context, g *geom.Grid, sources []geom.Cell, target geom.Cell) ([]geom.Cell, int, bool) {
	st := newSearchState(g)
	detour := make([]int32, g.NumCells())
	for i := range detour {
		detour[i] = -1
	}
	manhattan := func(c geom.Cell) int {
		dx := c.Col - target.Col
		if dx < 0 {
			dx = -dx
		}
		dy := c.Row - target.Row
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	// Level queues for 0-1 BFS over the detour count: toward-moves stay in
	// the current level, away-moves wait in the next one.
	current := make([]geom.Cell, 0, 64)
	next := make([]geom.Cell, 0, 64)
	for _, s := range sources {
		if !g.InBounds(s) {
			continue
		}
		if i := st.index(s); detour[i] == -1 {
			detour[i] = 0
			st.parent[i] = -2
			current = append(current, s)
		}
	}
	expansions := 0
	for len(current) > 0 {
		for head := 0; head < len(current); head++ {
			cur := current[head]
			ci := st.index(cur)
			if cancelled(ctx, expansions) {
				return nil, expansions, false
			}
			expansions++
			if cur == target {
				return st.unwind(cur), expansions, true
			}
			st.scratch = g.Neighbors4(st.scratch[:0], cur)
			for _, nb := range st.scratch {
				if !passable(g, nb, target) {
					continue
				}
				ni := st.index(nb)
				away := int32(0)
				if manhattan(nb) > manhattan(cur) {
					away = 1
				}
				nd := detour[ci] + away
				if detour[ni] == -1 || nd < detour[ni] {
					detour[ni] = nd
					st.parent[ni] = ci
					if away == 0 {
						current = append(current, nb)
					} else {
						next = append(next, nb)
					}
				}
			}
		}
		current, next = next, current[:0]
	}
	return nil, expansions, false
}
