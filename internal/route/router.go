// Package route implements channel routing for placed ParchMint devices:
// three grid maze routers (Lee breadth-first, A*, and Hadlock detour-count)
// behind one interface, a sequential multi-terminal net router with
// configurable net ordering, and history-cost rip-up-and-reroute. Routed
// nets become ParchMint channel features; completion rate, total channel
// length, and node expansions are the quality metrics the router-comparison
// experiment (Fig. 4) reports.
package route

import (
	"context"
	"fmt"

	"repro/internal/geom"
	"repro/internal/obs"
)

// Router finds a path on an occupancy grid from any of a set of source
// cells (the already-routed tree of the net) to a target cell.
type Router interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Search returns the path from one source to the target (inclusive on
	// both ends), and the number of node expansions performed. ok is false
	// when no path exists; the expansion count is still meaningful.
	// The context is request-scoped: engines poll it every ExpansionBatch
	// node expansions and abandon the search (ok false) when cancelled;
	// RouteAll turns the cancellation into an error.
	Search(ctx context.Context, g *geom.Grid, sources []geom.Cell, target geom.Cell) (path []geom.Cell, expansions int, ok bool)
}

// ExpansionBatch is the routers' cancellation granularity: each engine
// polls the context every ExpansionBatch node expansions, so a cancelled
// request abandons an in-flight maze search within one batch.
const ExpansionBatch = 1024

// searchObs batches one search's telemetry: each engine flushes the
// expansion and frontier-push deltas since the previous flush at its
// ExpansionBatch poll points and once more on return. The struct lives on
// the searching goroutine's stack and the recorder is nil when telemetry
// is disabled, so the hot loop pays one nil check per batch.
type searchObs struct {
	rec      *obs.Recorder
	engine   string
	lastExp  int
	lastPush int
}

func newSearchObs(ctx context.Context, engine string) searchObs {
	return searchObs{rec: obs.FromContext(ctx), engine: engine}
}

func (so *searchObs) flush(expansions, pushes int) {
	so.rec.RouteBatch(so.engine, expansions-so.lastExp, pushes-so.lastPush)
	so.lastExp, so.lastPush = expansions, pushes
}

// Engines returns the three routers in comparison order.
func Engines() []Router {
	return []Router{Lee{}, AStar{}, Hadlock{}}
}

// EngineByName resolves a routing engine by its Name. The empty string
// selects the default engine (A*).
func EngineByName(name string) (Router, error) {
	if name == "" {
		return AStar{}, nil
	}
	for _, e := range Engines() {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("route: unknown router %q (lee, astar, hadlock)", name)
}

// passable reports whether the router may enter cell c while hunting for
// target: blocked cells are closed except the target itself (targets are
// ports sitting on component boundaries, whose cells are blocked by the
// component footprint).
func passable(g *geom.Grid, c, target geom.Cell) bool {
	return c == target || !g.Blocked(c)
}

// Lee is the classic breadth-first maze router: uniform wavefront
// expansion, guaranteed shortest path, maximal expansions.
type Lee struct{}

// Name identifies the engine.
func (Lee) Name() string { return "lee" }

// Search runs breadth-first wavefront expansion.
func (Lee) Search(ctx context.Context, g *geom.Grid, sources []geom.Cell, target geom.Cell) ([]geom.Cell, int, bool) {
	a := acquireArena(ctx, g)
	defer a.release()
	so := newSearchObs(ctx, "lee")
	pushes := 0
	for _, s := range sources {
		if !g.InBounds(s) {
			continue
		}
		if i := a.index(s); !a.visited(i) {
			a.visit(i)
			a.parent[i] = -2
			a.queue = append(a.queue, s)
			pushes++
		}
	}
	expansions := 0
	for head := 0; head < len(a.queue); head++ {
		cur := a.queue[head]
		if expansions%ExpansionBatch == 0 {
			so.flush(expansions, pushes)
			if ctx.Err() != nil {
				return nil, expansions, false
			}
		}
		expansions++
		if cur == target {
			so.flush(expansions, pushes)
			return a.unwind(cur), expansions, true
		}
		ci := a.index(cur)
		a.scratch = g.Neighbors4(a.scratch[:0], cur)
		for _, nb := range a.scratch {
			if !passable(g, nb, target) {
				continue
			}
			if i := a.index(nb); !a.visited(i) {
				a.visit(i)
				a.parent[i] = ci
				a.queue = append(a.queue, nb)
				pushes++
			}
		}
	}
	so.flush(expansions, pushes)
	return nil, expansions, false
}

// pqItem is one frontier entry of the best-first engines.
type pqItem struct {
	cell geom.Cell
	prio int64
	g    int64 // cost so far
	seq  int64 // FIFO tiebreak for determinism
}

// AStar is best-first search with the Manhattan-distance heuristic:
// shortest paths like Lee, with far fewer expansions on open dies.
type AStar struct{}

// Name identifies the engine.
func (AStar) Name() string { return "astar" }

// Search runs A* from the source set toward the target.
func (AStar) Search(ctx context.Context, g *geom.Grid, sources []geom.Cell, target geom.Cell) ([]geom.Cell, int, bool) {
	a := acquireArena(ctx, g)
	defer a.release()
	h := func(c geom.Cell) int64 {
		dx := int64(c.Col - target.Col)
		if dx < 0 {
			dx = -dx
		}
		dy := int64(c.Row - target.Row)
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	so := newSearchObs(ctx, "astar")
	// seq doubles as the frontier push count: it increments at every
	// heapPush and nowhere else.
	var seq int64
	for _, s := range sources {
		if !g.InBounds(s) {
			continue
		}
		if i := a.index(s); !a.visited(i) {
			a.visit(i)
			a.dist[i] = 0
			a.parent[i] = -2
			a.heapPush(pqItem{cell: s, prio: h(s), g: 0, seq: seq})
			seq++
		}
	}
	expansions := 0
	for a.heapLen() > 0 {
		it := a.heapPop()
		i := a.index(it.cell)
		if it.g > a.dist[i] {
			continue // stale entry
		}
		if expansions%ExpansionBatch == 0 {
			so.flush(expansions, int(seq))
			if ctx.Err() != nil {
				return nil, expansions, false
			}
		}
		expansions++
		if it.cell == target {
			so.flush(expansions, int(seq))
			return a.unwind(it.cell), expansions, true
		}
		a.scratch = g.Neighbors4(a.scratch[:0], it.cell)
		for _, nb := range a.scratch {
			if !passable(g, nb, target) {
				continue
			}
			ni := a.index(nb)
			ng := it.g + 1 + int64(g.Cost(nb))
			if !a.visited(ni) || ng < a.dist[ni] {
				a.visit(ni)
				a.dist[ni] = ng
				a.parent[ni] = i
				a.heapPush(pqItem{cell: nb, prio: ng + h(nb), g: ng, seq: seq})
				seq++
			}
		}
	}
	so.flush(expansions, int(seq))
	return nil, expansions, false
}

// Hadlock is detour-count best-first search: priority is the number of
// moves made away from the target. It expands fewer cells than Lee while
// still guaranteeing shortest paths on uniform grids; implemented as 0-1
// BFS over the detour metric.
type Hadlock struct{}

// Name identifies the engine.
func (Hadlock) Name() string { return "hadlock" }

// Search runs 0-1 breadth-first search on detour counts.
func (Hadlock) Search(ctx context.Context, g *geom.Grid, sources []geom.Cell, target geom.Cell) ([]geom.Cell, int, bool) {
	a := acquireArena(ctx, g)
	defer a.release()
	manhattan := func(c geom.Cell) int {
		dx := c.Col - target.Col
		if dx < 0 {
			dx = -dx
		}
		dy := c.Row - target.Row
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	so := newSearchObs(ctx, "hadlock")
	pushes := 0
	// Level queues for 0-1 BFS over the detour count: toward-moves stay in
	// the current level, away-moves wait in the next one.
	for _, s := range sources {
		if !g.InBounds(s) {
			continue
		}
		if i := a.index(s); !a.visited(i) {
			a.visit(i)
			a.detour[i] = 0
			a.parent[i] = -2
			a.queue = append(a.queue, s)
			pushes++
		}
	}
	expansions := 0
	for len(a.queue) > 0 {
		for head := 0; head < len(a.queue); head++ {
			cur := a.queue[head]
			ci := a.index(cur)
			if expansions%ExpansionBatch == 0 {
				so.flush(expansions, pushes)
				if ctx.Err() != nil {
					return nil, expansions, false
				}
			}
			expansions++
			if cur == target {
				so.flush(expansions, pushes)
				return a.unwind(cur), expansions, true
			}
			curDetour := a.detour[ci]
			curDist := manhattan(cur)
			a.scratch = g.Neighbors4(a.scratch[:0], cur)
			for _, nb := range a.scratch {
				if !passable(g, nb, target) {
					continue
				}
				ni := a.index(nb)
				away := int32(0)
				if manhattan(nb) > curDist {
					away = 1
				}
				nd := curDetour + away
				if !a.visited(ni) || nd < a.detour[ni] {
					a.visit(ni)
					a.detour[ni] = nd
					a.parent[ni] = ci
					if away == 0 {
						a.queue = append(a.queue, nb)
					} else {
						a.next = append(a.next, nb)
					}
					pushes++
				}
			}
		}
		a.queue, a.next = a.next, a.queue[:0]
	}
	so.flush(expansions, pushes)
	return nil, expansions, false
}
