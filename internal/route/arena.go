package route

import (
	"context"
	"sync"

	"repro/internal/geom"
)

// searchArena is the reusable per-search scratch shared by the three maze
// engines: predecessor links, per-engine cost labels, frontier storage,
// and a neighbor buffer. Arenas are pooled, and instead of refilling the
// O(cells) label arrays before every search, cells carry a generation
// stamp — a label is valid only when its stamp matches the arena's
// current generation, so "clearing" the arena is one integer increment.
//
// Pooling is what makes Router.Search allocation-free in steady state:
// concurrent searches (the serve worker gate, parallel experiments) each
// take their own arena, and arenas only grow, so a search on a small grid
// reuses a big grid's arrays untouched.
type searchArena struct {
	g   *geom.Grid
	gen uint32
	// stamp validates parent/dist/detour entries for the current search.
	stamp  []uint32
	parent []int32 // cell index -> predecessor cell index, -2 root
	dist   []int64 // A*: best path cost so far
	detour []int32 // Hadlock: detour count
	// frontier storage, reused across searches.
	heap    []pqItem
	queue   []geom.Cell
	next    []geom.Cell
	scratch []geom.Cell
	rev     []geom.Cell
	// Visited-set collection for speculative routing (see parallel.go):
	// when a collector rides the search context, every stamped cell index
	// is also appended to log, and release() drains the log into the
	// collector. The sequential path pays one predictable branch per
	// visit and nothing else.
	collect bool
	log     []int32
	col     *visitCollector
}

// visitCollector accumulates the stamped cell indices of the searches run
// under a context carrying it — the exact set of cells a search observed
// to be free, which is what the speculative commit's conflict test needs.
type visitCollector struct{ cells []int32 }

// collectorKey carries a visitCollector through a context.
type collectorKey struct{}

// withCollector attaches a visit collector to the context; every
// Router.Search under it appends its stamped cell set to the collector.
func withCollector(ctx context.Context, c *visitCollector) context.Context {
	return context.WithValue(ctx, collectorKey{}, c)
}

func collectorFrom(ctx context.Context) *visitCollector {
	c, _ := ctx.Value(collectorKey{}).(*visitCollector)
	return c
}

var arenaPool = sync.Pool{New: func() any { return new(searchArena) }}

// acquireArena takes a pooled arena sized for g and opens a fresh
// generation, wired to the context's visit collector when one is
// attached. Callers must release() it when the search ends.
func acquireArena(ctx context.Context, g *geom.Grid) *searchArena {
	a := arenaPool.Get().(*searchArena)
	if col := collectorFrom(ctx); col != nil {
		a.collect = true
		a.col = col
	}
	n := g.NumCells()
	if len(a.stamp) < n {
		a.stamp = make([]uint32, n)
		a.parent = make([]int32, n)
		a.dist = make([]int64, n)
		a.detour = make([]int32, n)
		a.gen = 0 // fresh zeroed stamps: restart generations below it
	}
	a.g = g
	a.gen++
	if a.gen == 0 { // wraparound: re-zero the stamps once per 2^32 searches
		for i := range a.stamp {
			a.stamp[i] = 0
		}
		a.gen = 1
	}
	a.heap = a.heap[:0]
	a.queue = a.queue[:0]
	a.next = a.next[:0]
	return a
}

func (a *searchArena) release() {
	if a.col != nil {
		a.col.cells = append(a.col.cells, a.log...)
		a.col = nil
	}
	a.collect = false
	a.log = a.log[:0]
	a.g = nil
	arenaPool.Put(a)
}

// visited reports whether cell index i carries labels from this search.
func (a *searchArena) visited(i int32) bool { return a.stamp[i] == a.gen }

// visit stamps cell index i into the current generation.
func (a *searchArena) visit(i int32) {
	a.stamp[i] = a.gen
	if a.collect {
		a.log = append(a.log, i)
	}
}

func (a *searchArena) index(c geom.Cell) int32 { return int32(c.Row*a.g.Cols() + c.Col) }

func (a *searchArena) cell(i int32) geom.Cell {
	cols := a.g.Cols()
	return geom.Cell{Col: int(i) % cols, Row: int(i) / cols}
}

// unwind rebuilds the path from a root to the target. The reversal buffer
// is arena-owned; only the returned path is freshly allocated (it outlives
// the search).
func (a *searchArena) unwind(target geom.Cell) []geom.Cell {
	rev := a.rev[:0]
	for i := a.index(target); i != -2; i = a.parent[i] {
		rev = append(rev, a.cell(i))
	}
	a.rev = rev
	out := make([]geom.Cell, len(rev))
	for i, c := range rev {
		out[len(rev)-1-i] = c
	}
	return out
}

// pqLess is the frontier order of the best-first engines: priority, then
// insertion sequence. seq is unique per pushed item, so the order is
// total and every correct heap pops the exact same sequence — expansion
// order (and with it every routed artifact) is implementation-independent.
func pqLess(x, y pqItem) bool {
	if x.prio != y.prio {
		return x.prio < y.prio
	}
	return x.seq < y.seq
}

// heapPush inserts an item into the arena's binary heap. A concrete
// []pqItem heap replaces container/heap: no interface boxing per push and
// pop, which was the router's dominant allocation source.
func (a *searchArena) heapPush(it pqItem) {
	h := append(a.heap, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !pqLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	a.heap = h
}

// heapPop removes and returns the least item.
func (a *searchArena) heapPop() pqItem {
	h := a.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && pqLess(h[l], h[least]) {
			least = l
		}
		if r < n && pqLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	a.heap = h
	return top
}

func (a *searchArena) heapLen() int { return len(a.heap) }
