package route

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/geom"
	"repro/internal/place"
)

// benchGrid builds a congested 160x160 grid: a field of blocked component
// footprints with channel gaps, the shape maze searches actually see.
func benchGrid(b *testing.B) *geom.Grid {
	b.Helper()
	g, err := geom.NewGrid(geom.R(0, 0, 16000, 16000), 100)
	if err != nil {
		b.Fatal(err)
	}
	for row := 10; row < 150; row += 20 {
		for col := 10; col < 150; col += 20 {
			g.BlockRect(geom.R(int64(col)*100, int64(row)*100,
				int64(col+8)*100, int64(row+8)*100))
		}
	}
	return g
}

// BenchmarkSearch tracks the per-search cost of each maze engine on the
// congested grid: ns/op and — the arena's target — allocs/op. A corner to
// corner query keeps all three engines expanding thousands of cells.
func BenchmarkSearch(b *testing.B) {
	for _, r := range Engines() {
		b.Run(r.Name(), func(b *testing.B) {
			g := benchGrid(b)
			sources := []geom.Cell{{Col: 0, Row: 0}, {Col: 0, Row: 159}}
			target := geom.Cell{Col: 159, Row: 80}
			b.ReportAllocs()
			b.ResetTimer()
			var expansions int
			for i := 0; i < b.N; i++ {
				_, exp, ok := r.Search(context.Background(), g, sources, target)
				if !ok {
					b.Fatal("no path on benchmark grid")
				}
				expansions = exp
			}
			b.ReportMetric(float64(expansions), "expansions/op")
		})
	}
}

// BenchmarkRouteAll is the router-facing end-to-end number: route every
// net of a placed suite device, including rip-up and round snapshots.
func BenchmarkRouteAll(b *testing.B) {
	for _, name := range []string{"aquaflex_3b", "rotary_pcr", "general_purpose_mfd"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		d := bm.Build()
		p, err := (place.Greedy{}).Place(context.Background(), d, place.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				report, err := RouteAll(context.Background(), p, AStar{}, Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(report.TotalExpansions()), "expansions/op")
			}
		})
	}
}
