package route

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// TestArenaReuseAcrossGridSizes drives one goroutine's arena through
// big-grid / small-grid / big-grid searches: the arena only grows, and
// generation stamps must keep a small search from seeing the big
// search's labels (and vice versa).
func TestArenaReuseAcrossGridSizes(t *testing.T) {
	big, err := geom.NewGrid(geom.R(0, 0, 5000, 5000), 10)
	if err != nil {
		t.Fatal(err)
	}
	small, err := geom.NewGrid(geom.R(0, 0, 100, 100), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Engines() {
		for i := 0; i < 3; i++ {
			for _, g := range []*geom.Grid{big, small, big} {
				cols, rows := g.Cols(), g.Rows()
				path, _, ok := r.Search(context.Background(), g,
					[]geom.Cell{{Col: 0, Row: 0}}, geom.Cell{Col: cols - 1, Row: rows - 1})
				if !ok {
					t.Fatalf("%s: no path on open %dx%d grid", r.Name(), cols, rows)
				}
				if want := cols - 1 + rows - 1 + 1; len(path) != want {
					t.Fatalf("%s on %dx%d: path %d cells, want %d",
						r.Name(), cols, rows, len(path), want)
				}
			}
		}
	}
}

// TestConcurrentSearchesMatchSequential is the pooled-arena race hammer:
// many goroutines search the same read-only grid through every engine,
// and every result must equal the sequential answer. Run under -race this
// pins down that pooled arenas are never shared between in-flight
// searches.
func TestConcurrentSearchesMatchSequential(t *testing.T) {
	g, err := geom.NewGrid(geom.R(0, 0, 2000, 2000), 10)
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < 180; col++ {
		g.Block(geom.Cell{Col: col, Row: 100})
	}
	type query struct {
		src, dst geom.Cell
	}
	queries := []query{
		{geom.Cell{Col: 0, Row: 0}, geom.Cell{Col: 199, Row: 199}},
		{geom.Cell{Col: 5, Row: 190}, geom.Cell{Col: 190, Row: 5}},
		{geom.Cell{Col: 0, Row: 99}, geom.Cell{Col: 0, Row: 101}},
	}
	for _, r := range Engines() {
		wantLen := make([]int, len(queries))
		wantExp := make([]int, len(queries))
		for qi, q := range queries {
			path, exp, ok := r.Search(context.Background(), g, []geom.Cell{q.src}, q.dst)
			if !ok {
				t.Fatalf("%s: query %d unroutable", r.Name(), qi)
			}
			wantLen[qi], wantExp[qi] = len(path), exp
		}
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for w := 0; w < 16; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					qi := (w + i) % len(queries)
					path, exp, ok := r.Search(context.Background(), g,
						[]geom.Cell{queries[qi].src}, queries[qi].dst)
					if !ok || len(path) != wantLen[qi] || exp != wantExp[qi] {
						errs <- errResult{r.Name(), qi, len(path), exp, wantLen[qi], wantExp[qi]}
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Error(e)
		}
	}
}

type errResult struct {
	engine                                  string
	query, gotLen, gotExp, wantLen, wantExp int
}

func (e errResult) Error() string {
	return fmt.Sprintf("%s query %d diverged from sequential: len %d exp %d, want len %d exp %d",
		e.engine, e.query, e.gotLen, e.gotExp, e.wantLen, e.wantExp)
}

// TestArenaHeapOrder is the determinism keystone for the concrete heap:
// (prio, seq) is a total order, so the pop sequence must be exactly the
// sorted order for arbitrary push interleavings.
func TestArenaHeapOrder(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 50; trial++ {
		a := acquireArena(context.Background(), mustGrid(t))
		n := 1 + rng.Intn(200)
		items := make([]pqItem, n)
		for i := range items {
			items[i] = pqItem{prio: int64(rng.Intn(20)), seq: int64(i)}
			a.heapPush(items[i])
		}
		sort.Slice(items, func(i, j int) bool { return pqLess(items[i], items[j]) })
		for i := range items {
			got := a.heapPop()
			if got.prio != items[i].prio || got.seq != items[i].seq {
				t.Fatalf("trial %d: pop %d = (%d,%d), want (%d,%d)",
					trial, i, got.prio, got.seq, items[i].prio, items[i].seq)
			}
		}
		if a.heapLen() != 0 {
			t.Fatal("heap not drained")
		}
		a.release()
	}
}

func mustGrid(t *testing.T) *geom.Grid {
	t.Helper()
	g, err := geom.NewGrid(geom.R(0, 0, 100, 100), 10)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
