// Package control synthesizes valve actuation sequences for ParchMint
// devices: given a fluid transfer ("move fluid from port A to port B"),
// it computes which valves must open (those on the flow path), which must
// close (valves adjoining the path that would leak), and the peristaltic
// cycles for pumps along the path — the control-layer counterpart of the
// physical design flow, mirroring the control-sequence generation of the
// Fluigi CAD framework the benchmark suite originates from.
package control

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Actuation names a valve (or pump phase line) together with the chip
// control port that drives it, traced through the control layer.
type Actuation struct {
	// Component is the valve/pump component ID.
	Component string
	// Line is the control port label on the component ("ctl", "ctl2", …).
	Line string
	// ControlPort is the chip-edge control IO component driving the line;
	// empty when the device wires no control line to it.
	ControlPort string
}

// String renders "valve(ctl)<-cio3" or "valve(ctl)<-?" when untraced.
func (a Actuation) String() string {
	drv := a.ControlPort
	if drv == "" {
		drv = "?"
	}
	return fmt.Sprintf("%s(%s)<-%s", a.Component, a.Line, drv)
}

// PumpCycle is the actuation program for one peristaltic pump: the
// sequence of open-line sets to iterate, in order.
type PumpCycle struct {
	// Pump is the pump component ID.
	Pump string
	// Lines are the pump's phase lines in order (ctl1..ctlN).
	Lines []Actuation
	// Steps are the successive open-set patterns over Lines, by index.
	// The canonical three-line peristalsis uses the six-step program
	// {0}, {0,1}, {1}, {1,2}, {2}, {2,0}.
	Steps [][]int
}

// Phase is one step of an assay protocol: a fluid transfer with the valve
// state making exactly that path open.
type Phase struct {
	// Name labels the phase.
	Name string
	// From, To are the endpoint component IDs.
	From, To string
	// Path is the component path the fluid takes, inclusive.
	Path []string
	// Open lists valves on the path (must open).
	Open []Actuation
	// Close lists valves adjoining the path (must close to avoid leaks).
	Close []Actuation
	// Pumps lists the peristaltic programs for pumps on the path.
	Pumps []PumpCycle
}

// Plan is a sequence of phases implementing a protocol.
type Plan struct {
	Device string
	Phases []*Phase
}

// Step requests one fluid transfer when building a plan.
type Step struct {
	From, To string
}

// Planner precomputes the flow topology and control wiring of a device.
type Planner struct {
	device *core.Device
	ix     *core.Index
	// flowAdj is component adjacency over flow-layer connections.
	flowAdj map[string][]string
	// driver maps component+line to the control IO port driving it.
	driver map[string]string
	// flowLayers marks the IDs of flow-type layers.
	flowLayers map[string]bool
}

// NewPlanner analyzes the device's flow and control topology.
func NewPlanner(d *core.Device) (*Planner, error) {
	p := &Planner{
		device:     d,
		ix:         d.Index(),
		flowAdj:    make(map[string][]string),
		driver:     make(map[string]string),
		flowLayers: make(map[string]bool),
	}
	hasFlow := false
	for _, l := range d.Layers {
		if l.Type == core.LayerFlow {
			p.flowLayers[l.ID] = true
			hasFlow = true
		}
	}
	if !hasFlow {
		return nil, fmt.Errorf("control: device %q has no flow layer", d.Name)
	}
	for i := range d.Connections {
		cn := &d.Connections[i]
		if p.flowLayers[cn.Layer] {
			for _, s := range cn.Sinks {
				p.link(cn.Source.Component, s.Component)
			}
			continue
		}
		// Control connection: a chip PORT at one end drives the lines at
		// the other ends (and vice versa for reversed wiring).
		p.traceControl(cn)
	}
	return p, nil
}

func (p *Planner) link(a, b string) {
	if a == b {
		return
	}
	p.flowAdj[a] = appendUnique(p.flowAdj[a], b)
	p.flowAdj[b] = appendUnique(p.flowAdj[b], a)
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// traceControl records which chip control port drives which valve line.
func (p *Planner) traceControl(cn *core.Connection) {
	targets := cn.Targets()
	// Find the driving PORT entity among the endpoints.
	var ioComp string
	for _, t := range targets {
		if c := p.ix.Component(t.Component); c != nil && c.Entity == core.EntityPort {
			ioComp = t.Component
			break
		}
	}
	if ioComp == "" {
		return
	}
	for _, t := range targets {
		if t.Component == ioComp {
			continue
		}
		key := t.Component + "\x00" + t.Port
		if _, dup := p.driver[key]; !dup {
			p.driver[key] = ioComp
		}
	}
}

// actuation resolves the driver of one component control line.
func (p *Planner) actuation(comp, line string) Actuation {
	return Actuation{
		Component:   comp,
		Line:        line,
		ControlPort: p.driver[comp+"\x00"+line],
	}
}

// controlLines returns a component's control-layer port labels, sorted.
func (p *Planner) controlLines(comp string) []string {
	c := p.ix.Component(comp)
	if c == nil {
		return nil
	}
	var lines []string
	for _, port := range c.Ports {
		if !p.flowLayers[port.Layer] {
			lines = append(lines, port.Label)
		}
	}
	sort.Strings(lines)
	return lines
}

// PlanPhase computes the valve state for one fluid transfer.
func (p *Planner) PlanPhase(name, from, to string) (*Phase, error) {
	if p.ix.Component(from) == nil {
		return nil, fmt.Errorf("control: unknown component %q", from)
	}
	if p.ix.Component(to) == nil {
		return nil, fmt.Errorf("control: unknown component %q", to)
	}
	path := p.shortestPath(from, to)
	if path == nil {
		return nil, fmt.Errorf("control: no flow path from %q to %q", from, to)
	}
	ph := &Phase{Name: name, From: from, To: to, Path: path}
	onPath := make(map[string]bool, len(path))
	for _, id := range path {
		onPath[id] = true
	}
	for _, id := range path {
		c := p.ix.Component(id)
		switch {
		case c.Entity == core.EntityValve || c.Entity == core.EntityValve3D:
			for _, line := range p.controlLines(id) {
				ph.Open = append(ph.Open, p.actuation(id, line))
			}
		case c.Entity == core.EntityPump || c.Entity == core.EntityRotaryPump:
			ph.Pumps = append(ph.Pumps, p.pumpCycle(id))
		}
	}
	// Valves adjacent to the path but not on it would leak: close them.
	closed := map[string]bool{}
	for _, id := range path {
		for _, nb := range p.flowAdj[id] {
			if onPath[nb] || closed[nb] {
				continue
			}
			c := p.ix.Component(nb)
			if c == nil {
				continue
			}
			if c.Entity == core.EntityValve || c.Entity == core.EntityValve3D {
				closed[nb] = true
				for _, line := range p.controlLines(nb) {
					ph.Close = append(ph.Close, p.actuation(nb, line))
				}
			}
		}
	}
	sort.Slice(ph.Close, func(i, j int) bool { return ph.Close[i].Component < ph.Close[j].Component })
	return ph, nil
}

// pumpCycle builds the canonical six-step peristaltic program for a pump.
func (p *Planner) pumpCycle(id string) PumpCycle {
	lines := p.controlLines(id)
	pc := PumpCycle{Pump: id}
	for _, line := range lines {
		pc.Lines = append(pc.Lines, p.actuation(id, line))
	}
	n := len(pc.Lines)
	if n == 0 {
		return pc
	}
	// Six-step program over three lines; fewer/more lines degrade to the
	// rotating pair pattern of the same shape.
	for i := 0; i < n; i++ {
		pc.Steps = append(pc.Steps, []int{i})
		pc.Steps = append(pc.Steps, []int{i, (i + 1) % n})
	}
	return pc
}

// shortestPath runs BFS over the flow adjacency.
func (p *Planner) shortestPath(from, to string) []string {
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range p.flowAdj[cur] {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == to {
				var rev []string
				for c := to; ; c = prev[c] {
					rev = append(rev, c)
					if c == from {
						break
					}
				}
				out := make([]string, len(rev))
				for i, v := range rev {
					out[len(rev)-1-i] = v
				}
				return out
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// Schedule builds a full plan from protocol steps.
func (p *Planner) Schedule(steps []Step) (*Plan, error) {
	plan := &Plan{Device: p.device.Name}
	for i, s := range steps {
		ph, err := p.PlanPhase(fmt.Sprintf("phase%d", i+1), s.From, s.To)
		if err != nil {
			return nil, fmt.Errorf("control: step %d: %w", i+1, err)
		}
		plan.Phases = append(plan.Phases, ph)
	}
	return plan, nil
}

// Render produces a human-readable actuation listing.
func (p *Plan) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "control plan for %q: %d phase(s)\n", p.Device, len(p.Phases))
	for _, ph := range p.Phases {
		fmt.Fprintf(&sb, "\n%s: %s -> %s\n", ph.Name, ph.From, ph.To)
		fmt.Fprintf(&sb, "  path: %s\n", strings.Join(ph.Path, " -> "))
		if len(ph.Open) > 0 {
			sb.WriteString("  open:")
			for _, a := range ph.Open {
				sb.WriteString(" " + a.String())
			}
			sb.WriteByte('\n')
		}
		if len(ph.Close) > 0 {
			sb.WriteString("  close:")
			for _, a := range ph.Close {
				sb.WriteString(" " + a.String())
			}
			sb.WriteByte('\n')
		}
		for _, pc := range ph.Pumps {
			fmt.Fprintf(&sb, "  pump %s cycle:", pc.Pump)
			for _, step := range pc.Steps {
				names := make([]string, len(step))
				for i, li := range step {
					names[i] = pc.Lines[li].Line
				}
				fmt.Fprintf(&sb, " [%s]", strings.Join(names, "+"))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
