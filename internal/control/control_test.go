package control

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

func planner(t testing.TB, name string) *Planner {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanner(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlannerErrors(t *testing.T) {
	if _, err := NewPlanner(&core.Device{Name: "bare"}); err == nil {
		t.Error("device without flow layer should fail")
	}
}

func TestPlanPhaseSimplePath(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	ph, err := p.PlanPhase("load", "in1", "out")
	if err != nil {
		t.Fatalf("PlanPhase: %v", err)
	}
	if ph.Path[0] != "in1" || ph.Path[len(ph.Path)-1] != "out" {
		t.Errorf("path endpoints = %v", ph.Path)
	}
	// The in1->out path passes v_in1, v_react and v_out.
	openSet := map[string]bool{}
	for _, a := range ph.Open {
		openSet[a.Component] = true
		if a.ControlPort == "" {
			t.Errorf("valve %s has no traced control port", a.Component)
		}
		if !strings.HasPrefix(a.ControlPort, "cio") {
			t.Errorf("valve %s driver = %q", a.Component, a.ControlPort)
		}
	}
	for _, want := range []string{"v_in1", "v_react", "v_out"} {
		if !openSet[want] {
			t.Errorf("valve %s not opened; open = %v", want, ph.Open)
		}
	}
	// Branch valves leak if left open: the other inlets and the waste arm.
	closeSet := map[string]bool{}
	for _, a := range ph.Close {
		closeSet[a.Component] = true
	}
	for _, want := range []string{"v_in2", "v_in3", "v_waste"} {
		if !closeSet[want] {
			t.Errorf("valve %s not closed; close = %v", want, ph.Close)
		}
	}
	// Open and close sets are disjoint.
	for c := range closeSet {
		if openSet[c] {
			t.Errorf("valve %s both opened and closed", c)
		}
	}
}

func TestPlanPhaseWithPump(t *testing.T) {
	p := planner(t, "chromatin_immunoprecipitation")
	ph, err := p.PlanPhase("load", "in_sample", "trap1")
	if err != nil {
		t.Fatalf("PlanPhase: %v", err)
	}
	if len(ph.Pumps) == 0 {
		t.Fatal("path through pump_in produced no pump cycle")
	}
	pc := ph.Pumps[0]
	if pc.Pump != "pump_in" {
		t.Errorf("pump = %q", pc.Pump)
	}
	if len(pc.Lines) != 3 {
		t.Fatalf("pump lines = %d, want 3", len(pc.Lines))
	}
	// Canonical six-step program over three lines.
	if len(pc.Steps) != 6 {
		t.Errorf("pump steps = %d, want 6", len(pc.Steps))
	}
	for _, step := range pc.Steps {
		for _, li := range step {
			if li < 0 || li >= len(pc.Lines) {
				t.Errorf("step index %d out of range", li)
			}
		}
	}
	// Every line participates.
	used := map[int]bool{}
	for _, step := range pc.Steps {
		for _, li := range step {
			used[li] = true
		}
	}
	if len(used) != 3 {
		t.Errorf("only %d of 3 lines used", len(used))
	}
}

func TestPlanPhaseRotaryPump(t *testing.T) {
	p := planner(t, "rotary_pcr")
	ph, err := p.PlanPhase("amplify", "in_sample", "out")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pc := range ph.Pumps {
		if pc.Pump == "rotary1" {
			found = true
		}
	}
	if !found {
		t.Errorf("rotary pump not programmed; pumps = %+v", ph.Pumps)
	}
}

func TestPlanPhaseErrors(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	if _, err := p.PlanPhase("x", "ghost", "out"); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := p.PlanPhase("x", "in1", "ghost"); err == nil {
		t.Error("unknown sink should fail")
	}
	// Control IO ports are not on the flow layer: no flow path.
	if _, err := p.PlanPhase("x", "in1", "cio1"); err == nil {
		t.Error("path onto control layer should fail")
	}
}

func TestPlanPhaseSelf(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	ph, err := p.PlanPhase("noop", "in1", "in1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.Path) != 1 {
		t.Errorf("self path = %v", ph.Path)
	}
}

func TestSchedule(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	plan, err := p.Schedule([]Step{
		{From: "in1", To: "react1"},
		{From: "in2", To: "react1"},
		{From: "react1", To: "out"},
		{From: "react1", To: "waste"},
	})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if len(plan.Phases) != 4 {
		t.Fatalf("phases = %d", len(plan.Phases))
	}
	if plan.Phases[0].Name != "phase1" || plan.Phases[3].Name != "phase4" {
		t.Errorf("phase names: %s, %s", plan.Phases[0].Name, plan.Phases[3].Name)
	}
	out := plan.Render()
	for _, frag := range []string{"control plan", "phase1", "open:", "close:", "in1 -> "} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestScheduleErrorMentionsStep(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	_, err := p.Schedule([]Step{{From: "in1", To: "out"}, {From: "in1", To: "ghost"}})
	if err == nil || !strings.Contains(err.Error(), "step 2") {
		t.Errorf("err = %v", err)
	}
}

func TestActuationString(t *testing.T) {
	a := Actuation{Component: "v1", Line: "ctl", ControlPort: "cio3"}
	if a.String() != "v1(ctl)<-cio3" {
		t.Errorf("String = %q", a.String())
	}
	a.ControlPort = ""
	if a.String() != "v1(ctl)<-?" {
		t.Errorf("untraced String = %q", a.String())
	}
}

func TestPlannerOnEveryAssayBenchmark(t *testing.T) {
	// Every assay benchmark must support planning between its first and
	// last flow IO ports.
	for _, name := range []string{"aquaflex_3b", "aquaflex_5a", "chromatin_immunoprecipitation",
		"general_purpose_mfd", "hiv_diagnostics", "rotary_pcr"} {
		t.Run(name, func(t *testing.T) {
			b, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			d := b.Build()
			p, err := NewPlanner(d)
			if err != nil {
				t.Fatal(err)
			}
			// Find two flow-layer IO ports.
			var ports []string
			for i := range d.Components {
				c := &d.Components[i]
				if c.Entity == core.EntityPort && len(c.Layers) == 1 && c.Layers[0] == "flow" {
					ports = append(ports, c.ID)
				}
			}
			if len(ports) < 2 {
				t.Fatalf("only %d flow ports", len(ports))
			}
			ph, err := p.PlanPhase("t", ports[0], ports[len(ports)-1])
			if err != nil {
				t.Fatalf("PlanPhase(%s -> %s): %v", ports[0], ports[len(ports)-1], err)
			}
			if len(ph.Path) < 2 {
				t.Errorf("degenerate path %v", ph.Path)
			}
			// Every opened or closed valve traces to a control port.
			for _, a := range append(append([]Actuation{}, ph.Open...), ph.Close...) {
				if a.ControlPort == "" {
					t.Errorf("untraced actuation %s", a)
				}
			}
		})
	}
}
