package control

import (
	"strings"
	"testing"
)

func TestMix(t *testing.T) {
	cases := []struct {
		a, b, want Fluid
	}{
		{"", "x", "x"},
		{"x", "", "x"},
		{"x", "x", "x"},
		{"a", "b", "mix(a+b)"},
		{"b", "a", "mix(a+b)"}, // order-insensitive
		{"mix(a+b)", "c", "mix(a+b+c)"},
		{"mix(a+b)", "a", "mix(a+b)"}, // constituents deduplicate
		{"mix(a+b)", "mix(b+c)", "mix(a+b+c)"},
	}
	for _, c := range cases {
		if got := Mix(c.a, c.b); got != c.want {
			t.Errorf("Mix(%q, %q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

func TestSimulateHappyPath(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	tr, err := p.Simulate(map[string]Fluid{
		"in1": "sample",
		"in2": "reagent",
	}, []Step{
		{From: "in1", To: "react1"},
		{From: "in2", To: "react1"}, // intentional mixing in the reactor
		{From: "react1", To: "out"},
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !tr.OK() {
		t.Fatalf("unexpected errors:\n%s", tr)
	}
	// The reactor mixed sample and reagent; the product reached the outlet.
	got := tr.Final["out"]
	if got != "mix(reagent+sample)" {
		t.Errorf("product = %q", got)
	}
	if _, stillThere := tr.Final["in1"]; stillThere {
		t.Error("fluid did not leave in1")
	}
	// A mix event was traced.
	mixed := false
	for _, e := range tr.Events {
		if e.Kind == "mix" {
			mixed = true
		}
	}
	if !mixed {
		t.Errorf("no mix event:\n%s", tr)
	}
}

func TestSimulateEmptySourceError(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	tr, err := p.Simulate(nil, []Step{{From: "in1", To: "out"}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.OK() {
		t.Fatal("transfer from empty component should be an error")
	}
	if !strings.Contains(tr.Errors()[0].Message, "empty component in1") {
		t.Errorf("error = %v", tr.Errors()[0])
	}
}

func TestSimulateContamination(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	// Sample passes through the shared merge/mix path; buffer follows the
	// same path and picks up sample residue.
	tr, err := p.Simulate(map[string]Fluid{
		"in1": "sample",
		"in2": "buffer",
	}, []Step{
		{From: "in1", To: "waste"},
		{From: "in2", To: "out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	contaminated := false
	for _, e := range tr.Events {
		if e.Kind == "contaminate" {
			contaminated = true
		}
	}
	if !contaminated {
		t.Fatalf("expected contamination through the shared path:\n%s", tr)
	}
	if tr.Final["out"] != "mix(buffer+sample)" {
		t.Errorf("outlet fluid = %q", tr.Final["out"])
	}
}

func TestSimulateResidueTracking(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	tr, err := p.Simulate(map[string]Fluid{"in1": "sample"},
		[]Step{{From: "in1", To: "out"}})
	if err != nil {
		t.Fatal(err)
	}
	// Every component on the path carries residue.
	for _, id := range []string{"in1", "v_in1", "mix1", "react1", "out"} {
		if tr.Residue[id] != "sample" {
			t.Errorf("residue at %s = %q", id, tr.Residue[id])
		}
	}
	// Components off the path stay clean.
	if _, dirty := tr.Residue["v_waste"]; dirty {
		t.Error("off-path valve has residue")
	}
}

func TestSimulateErrors(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	if _, err := p.Simulate(map[string]Fluid{"ghost": "x"}, nil); err == nil {
		t.Error("unknown initial component should fail")
	}
	if _, err := p.Simulate(map[string]Fluid{"in1": "x"},
		[]Step{{From: "in1", To: "ghost"}}); err == nil {
		t.Error("unknown step target should fail")
	}
}

func TestTraceRendering(t *testing.T) {
	p := planner(t, "aquaflex_3b")
	tr, err := p.Simulate(map[string]Fluid{"in1": "sample"},
		[]Step{{From: "in1", To: "out"}})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.String()
	for _, frag := range []string{"load sample at in1", "[phase1] move", "final state:", "out"} {
		if !strings.Contains(s, frag) {
			t.Errorf("trace missing %q:\n%s", frag, s)
		}
	}
	e := TraceEvent{Phase: "", Kind: "move", Message: "m"}
	if e.String() != "move: m" {
		t.Errorf("setup event = %q", e.String())
	}
}
