package control

import (
	"fmt"
	"sort"
	"strings"
)

// Protocol simulation: beyond synthesizing valve states, the planner can
// execute a protocol symbolically — tracking which fluid occupies which
// component as transfers run — and report protocol-level errors a wet-lab
// run would only reveal at the bench: transferring from an empty
// component, clobbering an un-flushed chamber, or contaminating a sample
// by routing it through residue left by an earlier phase.

// Fluid names a fluid species. Mixtures get deterministic composite names
// like "mix(buffer+sample)".
type Fluid string

// Mix combines two fluids into a deterministic mixture name. Mixing with
// the empty fluid or with itself is the identity.
func Mix(a, b Fluid) Fluid {
	if a == "" || a == b {
		return b
	}
	if b == "" {
		return a
	}
	parts := flatten(a)
	parts = append(parts, flatten(b)...)
	sort.Strings(parts)
	uniq := parts[:0]
	for i, p := range parts {
		if i == 0 || p != parts[i-1] {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 1 {
		return Fluid(uniq[0])
	}
	return Fluid("mix(" + strings.Join(uniq, "+") + ")")
}

// flatten expands "mix(a+b)" into its constituents.
func flatten(f Fluid) []string {
	s := string(f)
	if inner, ok := strings.CutPrefix(s, "mix("); ok && strings.HasSuffix(inner, ")") {
		return strings.Split(strings.TrimSuffix(inner, ")"), "+")
	}
	return []string{s}
}

// TraceEvent records one observation during protocol simulation.
type TraceEvent struct {
	// Phase is the phase name the event occurred in ("" for setup).
	Phase string
	// Kind is "move", "mix", "contaminate", or "error".
	Kind string
	// Message is the human-readable description.
	Message string
}

// String renders "[phase] kind: message".
func (e TraceEvent) String() string {
	if e.Phase == "" {
		return fmt.Sprintf("%s: %s", e.Kind, e.Message)
	}
	return fmt.Sprintf("[%s] %s: %s", e.Phase, e.Kind, e.Message)
}

// Trace is the outcome of simulating a protocol.
type Trace struct {
	// Events in execution order.
	Events []TraceEvent
	// Final maps component ID -> occupying fluid after the last phase.
	Final map[string]Fluid
	// Residue maps component ID -> the last fluid that passed through it
	// (the contamination state of the flow path).
	Residue map[string]Fluid
}

// Errors returns the error-kind events.
func (tr *Trace) Errors() []TraceEvent {
	var out []TraceEvent
	for _, e := range tr.Events {
		if e.Kind == "error" {
			out = append(out, e)
		}
	}
	return out
}

// OK reports whether the protocol ran without errors.
func (tr *Trace) OK() bool { return len(tr.Errors()) == 0 }

// String renders the trace, one event per line, then the final state.
func (tr *Trace) String() string {
	var sb strings.Builder
	for _, e := range tr.Events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	ids := make([]string, 0, len(tr.Final))
	for id := range tr.Final {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	sb.WriteString("final state:\n")
	for _, id := range ids {
		fmt.Fprintf(&sb, "  %-16s %s\n", id, tr.Final[id])
	}
	return sb.String()
}

func (tr *Trace) eventf(phase, kind, format string, args ...any) {
	tr.Events = append(tr.Events, TraceEvent{
		Phase: phase, Kind: kind, Message: fmt.Sprintf(format, args...),
	})
}

// Simulate executes the protocol symbolically. `initial` seeds fluids at
// components (typically the inlet ports); each step moves the fluid at
// From to To along the planned flow path. The simulation reports:
//
//   - error: transfer from a component holding no fluid;
//   - mix: the destination already held a different fluid (the result is
//     the mixture — often intended, e.g. into a mixer);
//   - contaminate: the path crosses residue of a *different* fluid left
//     by an earlier transfer (often unintended — flush first).
//
// Simulation never stops at an error; the full trace lets a protocol
// author fix everything at once.
func (p *Planner) Simulate(initial map[string]Fluid, steps []Step) (*Trace, error) {
	tr := &Trace{
		Final:   make(map[string]Fluid, len(initial)),
		Residue: make(map[string]Fluid),
	}
	for _, id := range sortedKeys(initial) {
		if p.ix.Component(id) == nil {
			return nil, fmt.Errorf("control: initial fluid at unknown component %q", id)
		}
		tr.Final[id] = initial[id]
		tr.eventf("", "move", "load %s at %s", initial[id], id)
	}
	for i, s := range steps {
		phase := fmt.Sprintf("phase%d", i+1)
		ph, err := p.PlanPhase(phase, s.From, s.To)
		if err != nil {
			return nil, fmt.Errorf("control: %s: %w", phase, err)
		}
		fluid := tr.Final[s.From]
		if fluid == "" {
			tr.eventf(phase, "error", "transfer from empty component %s", s.From)
			continue
		}
		// Contamination: interior path components with residue of another
		// fluid taint the transfer.
		for _, id := range ph.Path[1 : len(ph.Path)-1] {
			if res, ok := tr.Residue[id]; ok && res != fluid {
				tr.eventf(phase, "contaminate",
					"%s picks up %s residue at %s", fluid, res, id)
				fluid = Mix(fluid, res)
			}
		}
		// The fluid leaves its source and coats the path.
		delete(tr.Final, s.From)
		for _, id := range ph.Path {
			tr.Residue[id] = fluid
		}
		// Arrival: mixing with any occupant.
		if prev, occupied := tr.Final[s.To]; occupied && prev != fluid {
			mixed := Mix(prev, fluid)
			tr.eventf(phase, "mix", "%s + %s -> %s at %s", prev, fluid, mixed, s.To)
			fluid = mixed
		}
		tr.Final[s.To] = fluid
		tr.eventf(phase, "move", "%s -> %s carrying %s", s.From, s.To, fluid)
	}
	return tr, nil
}

// sortedKeys returns map keys in sorted order for deterministic traces.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
