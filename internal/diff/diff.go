// Package diff computes structural differences between two ParchMint
// devices, keyed by element ID. When researchers exchange benchmark
// revisions, the diff answers "what changed" at the netlist level —
// added/removed/modified layers, components, connections, and features —
// independent of element order or formatting.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Kind classifies one difference.
type Kind string

// Difference kinds.
const (
	Added    Kind = "added"
	Removed  Kind = "removed"
	Modified Kind = "modified"
)

// Entry is one difference.
type Entry struct {
	Kind Kind
	// Section is "layer", "component", "connection", "feature", "param",
	// or "device".
	Section string
	// ID identifies the element within its section.
	ID string
	// Detail describes what changed for Modified entries.
	Detail string
}

// String renders "kind section id (detail)".
func (e Entry) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%s %s %s", e.Kind, e.Section, e.ID)
	}
	return fmt.Sprintf("%s %s %s: %s", e.Kind, e.Section, e.ID, e.Detail)
}

// Report is a full device comparison.
type Report struct {
	A, B    string // device names
	Entries []Entry
}

// Same reports whether no differences were found.
func (r *Report) Same() bool { return len(r.Entries) == 0 }

// Count returns the number of entries of one kind.
func (r *Report) Count(k Kind) int {
	n := 0
	for _, e := range r.Entries {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// String renders the report, one entry per line.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "diff %q -> %q: %d difference(s)\n", r.A, r.B, len(r.Entries))
	for _, e := range r.Entries {
		sb.WriteString("  ")
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (r *Report) add(kind Kind, section, id, detail string) {
	r.Entries = append(r.Entries, Entry{Kind: kind, Section: section, ID: id, Detail: detail})
}

// Devices compares two devices structurally by ID. Element order never
// matters; two canonicalization-equal devices always diff empty.
func Devices(a, b *core.Device) *Report {
	r := &Report{A: a.Name, B: b.Name}
	if a.Name != b.Name {
		r.add(Modified, "device", "name", fmt.Sprintf("%q -> %q", a.Name, b.Name))
	}

	diffSection(r, "layer",
		keysOf(a.Layers, func(l core.Layer) string { return l.ID }),
		keysOf(b.Layers, func(l core.Layer) string { return l.ID }),
		func(id string) string {
			la, lb := layerByID(a, id), layerByID(b, id)
			if *la != *lb {
				return fmt.Sprintf("%+v -> %+v", *la, *lb)
			}
			return ""
		})

	diffSection(r, "component",
		keysOf(a.Components, func(c core.Component) string { return c.ID }),
		keysOf(b.Components, func(c core.Component) string { return c.ID }),
		func(id string) string {
			return describeComponentChange(a.Index().Component(id), b.Index().Component(id))
		})

	diffSection(r, "connection",
		keysOf(a.Connections, func(c core.Connection) string { return c.ID }),
		keysOf(b.Connections, func(c core.Connection) string { return c.ID }),
		func(id string) string {
			return describeConnectionChange(a.Index().Connection(id), b.Index().Connection(id))
		})

	diffSection(r, "feature",
		featureKeys(a), featureKeys(b),
		func(id string) string {
			fa, fb := featureByKey(a, id), featureByKey(b, id)
			if *fa != *fb {
				return "geometry changed"
			}
			return ""
		})

	diffParams(r, a.Params, b.Params)
	return r
}

// diffSection walks the union of IDs, emitting added/removed/modified.
func diffSection(r *Report, section string, aIDs, bIDs []string, describe func(id string) string) {
	inA := toSet(aIDs)
	inB := toSet(bIDs)
	for _, id := range aIDs {
		if !inB[id] {
			r.add(Removed, section, id, "")
		} else if d := describe(id); d != "" {
			r.add(Modified, section, id, d)
		}
	}
	for _, id := range bIDs {
		if !inA[id] {
			r.add(Added, section, id, "")
		}
	}
}

func keysOf[T any](s []T, key func(T) string) []string {
	out := make([]string, 0, len(s))
	seen := map[string]bool{}
	for _, v := range s {
		k := key(v)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func toSet(s []string) map[string]bool {
	m := make(map[string]bool, len(s))
	for _, v := range s {
		m[v] = true
	}
	return m
}

func layerByID(d *core.Device, id string) *core.Layer {
	for i := range d.Layers {
		if d.Layers[i].ID == id {
			return &d.Layers[i]
		}
	}
	return nil
}

// featureKeys builds stable keys for features: id plus geometry for
// channel segments (segment IDs alone may repeat across connections).
func featureKeys(d *core.Device) []string {
	out := make([]string, 0, len(d.Features))
	seen := map[string]bool{}
	for i := range d.Features {
		k := featureKey(&d.Features[i])
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func featureKey(f *core.Feature) string {
	if f.Kind == core.FeatureChannel {
		return fmt.Sprintf("%s@%v-%v", f.ID, f.Source, f.Sink)
	}
	return f.ID
}

func featureByKey(d *core.Device, key string) *core.Feature {
	for i := range d.Features {
		if featureKey(&d.Features[i]) == key {
			return &d.Features[i]
		}
	}
	return nil
}

func describeComponentChange(a, b *core.Component) string {
	if a == nil || b == nil {
		return ""
	}
	var changes []string
	if a.Entity != b.Entity {
		changes = append(changes, fmt.Sprintf("entity %s -> %s", a.Entity, b.Entity))
	}
	if a.XSpan != b.XSpan || a.YSpan != b.YSpan {
		changes = append(changes, fmt.Sprintf("spans %dx%d -> %dx%d", a.XSpan, a.YSpan, b.XSpan, b.YSpan))
	}
	if !equalStrings(a.Layers, b.Layers) {
		changes = append(changes, fmt.Sprintf("layers %v -> %v", a.Layers, b.Layers))
	}
	if len(a.Ports) != len(b.Ports) {
		changes = append(changes, fmt.Sprintf("ports %d -> %d", len(a.Ports), len(b.Ports)))
	} else {
		for i := range a.Ports {
			if a.Ports[i] != b.Ports[i] {
				changes = append(changes, fmt.Sprintf("port %s moved", a.Ports[i].Label))
				break
			}
		}
	}
	if a.Name != b.Name {
		changes = append(changes, fmt.Sprintf("name %q -> %q", a.Name, b.Name))
	}
	return strings.Join(changes, "; ")
}

func describeConnectionChange(a, b *core.Connection) string {
	if a == nil || b == nil {
		return ""
	}
	var changes []string
	if a.Layer != b.Layer {
		changes = append(changes, fmt.Sprintf("layer %s -> %s", a.Layer, b.Layer))
	}
	if a.Source != b.Source {
		changes = append(changes, fmt.Sprintf("source %s -> %s", a.Source, b.Source))
	}
	if !equalTargets(a.Sinks, b.Sinks) {
		changes = append(changes, fmt.Sprintf("sinks %v -> %v", a.Sinks, b.Sinks))
	}
	return strings.Join(changes, "; ")
}

func diffParams(r *Report, a, b core.Params) {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		av, inA := a[k]
		bv, inB := b[k]
		switch {
		case !inA:
			r.add(Added, "param", k, fmt.Sprintf("= %v", bv))
		case !inB:
			r.add(Removed, "param", k, "")
		case av != bv:
			r.add(Modified, "param", k, fmt.Sprintf("%v -> %v", av, bv))
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalTargets(a, b []core.Target) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
