package diff

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
)

func device(t testing.TB) *core.Device {
	t.Helper()
	b, err := bench.ByName("aquaflex_3b")
	if err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestIdenticalDevicesDiffEmpty(t *testing.T) {
	a, b := device(t), device(t)
	r := Devices(a, b)
	if !r.Same() {
		t.Errorf("identical devices differ:\n%s", r)
	}
	if !strings.Contains(r.String(), "0 difference(s)") {
		t.Errorf("String = %q", r.String())
	}
}

func TestOrderInsensitive(t *testing.T) {
	a := device(t)
	b := device(t)
	// Reverse b's component and connection order.
	for i, j := 0, len(b.Components)-1; i < j; i, j = i+1, j-1 {
		b.Components[i], b.Components[j] = b.Components[j], b.Components[i]
	}
	for i, j := 0, len(b.Connections)-1; i < j; i, j = i+1, j-1 {
		b.Connections[i], b.Connections[j] = b.Connections[j], b.Connections[i]
	}
	if r := Devices(a, b); !r.Same() {
		t.Errorf("reordered device differs:\n%s", r)
	}
}

func TestAddedRemoved(t *testing.T) {
	a := device(t)
	b := device(t)
	b.Components = append(b.Components, core.Component{
		ID: "extra", Entity: core.EntityChamber, Layers: []string{"flow"}, XSpan: 10, YSpan: 10,
	})
	b.Connections = b.Connections[:len(b.Connections)-1]
	r := Devices(a, b)
	if r.Count(Added) != 1 || r.Count(Removed) != 1 {
		t.Errorf("added/removed = %d/%d:\n%s", r.Count(Added), r.Count(Removed), r)
	}
	found := false
	for _, e := range r.Entries {
		if e.Kind == Added && e.Section == "component" && e.ID == "extra" {
			found = true
		}
	}
	if !found {
		t.Errorf("added component not reported:\n%s", r)
	}
}

func TestModifiedComponent(t *testing.T) {
	a := device(t)
	b := device(t)
	ix := b.Index()
	ix.Component("mix1").XSpan = 9999
	ix.Component("v_in1").Entity = core.EntityPump
	ix.Component("in1").Ports[0].X = 1
	r := Devices(a, b)
	if r.Count(Modified) != 3 {
		t.Errorf("modified = %d:\n%s", r.Count(Modified), r)
	}
	joined := r.String()
	for _, frag := range []string{"spans", "entity VALVE -> PUMP", "port port1 moved"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("missing %q in:\n%s", frag, joined)
		}
	}
}

func TestModifiedConnectionAndLayer(t *testing.T) {
	a := device(t)
	b := device(t)
	b.Connections[0].Sinks = append(b.Connections[0].Sinks, core.Target{Component: "out"})
	b.Layers[0].Type = core.LayerControl
	r := Devices(a, b)
	if r.Count(Modified) != 2 {
		t.Errorf("modified = %d:\n%s", r.Count(Modified), r)
	}
}

func TestDeviceNameChange(t *testing.T) {
	a := device(t)
	b := device(t)
	b.Name = "renamed"
	r := Devices(a, b)
	if r.Count(Modified) != 1 || r.Entries[0].Section != "device" {
		t.Errorf("name change = %+v", r.Entries)
	}
}

func TestParamsDiff(t *testing.T) {
	a := device(t)
	b := device(t)
	a.Params = core.Params{"keep": 1, "drop": 2, "change": 3}
	b.Params = core.Params{"keep": 1, "change": 4, "new": 5}
	r := Devices(a, b)
	if r.Count(Added) != 1 || r.Count(Removed) != 1 || r.Count(Modified) != 1 {
		t.Errorf("param diff = %+v", r.Entries)
	}
}

func TestFeatureDiff(t *testing.T) {
	a := device(t)
	b := device(t)
	a.Features = []core.Feature{
		{Kind: core.FeatureComponent, ID: "mix1", Layer: "flow", Location: geom.Pt(0, 0), XSpan: 2000, YSpan: 1000},
	}
	b.Features = []core.Feature{
		{Kind: core.FeatureComponent, ID: "mix1", Layer: "flow", Location: geom.Pt(500, 0), XSpan: 2000, YSpan: 1000},
		{Kind: core.FeatureChannel, ID: "c1_seg0", Connection: "f_in1", Layer: "flow",
			Width: 100, Source: geom.Pt(0, 0), Sink: geom.Pt(10, 0)},
	}
	r := Devices(a, b)
	if r.Count(Modified) != 1 || r.Count(Added) != 1 {
		t.Errorf("feature diff = %+v", r.Entries)
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{Kind: Added, Section: "component", ID: "x"}
	if e.String() != "added component x" {
		t.Errorf("String = %q", e.String())
	}
	e = Entry{Kind: Modified, Section: "param", ID: "w", Detail: "1 -> 2"}
	if e.String() != "modified param w: 1 -> 2" {
		t.Errorf("String = %q", e.String())
	}
}
