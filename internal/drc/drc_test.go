package drc

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/place"
	"repro/internal/pnr"
	"repro/internal/route"
)

// scaffold builds a two-port device whose features the tests overwrite.
func scaffold(t testing.TB) *core.Device {
	t.Helper()
	b := core.NewBuilder("drc-test")
	flow := b.FlowLayer()
	b.IOPort("a", flow, 200)
	b.IOPort("bb", flow, 200)
	b.IOPort("c", flow, 200)
	b.IOPort("dd", flow, 200)
	b.Connect("n1", flow, "a.port1", "bb.port1")
	b.Connect("n2", flow, "c.port1", "dd.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func chanFeat(id, conn string, width int64, x0, y0, x1, y1 int64) core.Feature {
	return core.Feature{
		Kind: core.FeatureChannel, ID: id, Connection: conn, Layer: "flow",
		Width: width, Depth: 10, Source: geom.Pt(x0, y0), Sink: geom.Pt(x1, y1),
	}
}

func compFeat(id string, x, y, w, h int64) core.Feature {
	return core.Feature{
		Kind: core.FeatureComponent, ID: id, Layer: "flow",
		Location: geom.Pt(x, y), XSpan: w, YSpan: h, Depth: 10,
	}
}

func TestCleanDevice(t *testing.T) {
	d := scaffold(t)
	d.Features = []core.Feature{
		compFeat("a", 0, 0, 200, 200),
		compFeat("bb", 2000, 0, 200, 200),
		chanFeat("n1_seg0", "n1", 100, 200, 100, 2000, 100),
	}
	r := Check(d, Rules{})
	if !r.Clean() {
		t.Errorf("clean layout flagged:\n%s", r)
	}
	if !strings.Contains(r.String(), "0 violation(s)") {
		t.Errorf("String = %q", r.String())
	}
}

func TestMinWidth(t *testing.T) {
	d := scaffold(t)
	d.Features = []core.Feature{chanFeat("s", "n1", 20, 0, 0, 1000, 0)}
	r := Check(d, Rules{})
	if r.CountRule(RuleMinWidth) != 1 {
		t.Errorf("min-width = %d:\n%s", r.CountRule(RuleMinWidth), r)
	}
	// Explicit rule value.
	r = Check(d, Rules{MinChannelWidth: 10})
	if r.CountRule(RuleMinWidth) != 0 {
		t.Errorf("relaxed min-width still fires:\n%s", r)
	}
}

func TestCrossingAndSpacing(t *testing.T) {
	d := scaffold(t)
	// n1 horizontal at y=500; n2 vertical crossing it.
	d.Features = []core.Feature{
		chanFeat("n1_seg0", "n1", 100, 0, 500, 2000, 500),
		chanFeat("n2_seg0", "n2", 100, 1000, 0, 1000, 1000),
	}
	r := Check(d, Rules{})
	if r.CountRule(RuleCrossing) != 1 {
		t.Errorf("crossing = %d:\n%s", r.CountRule(RuleCrossing), r)
	}

	// Parallel channels 120 µm apart (boxes 20 µm gap): spacing violation.
	d.Features = []core.Feature{
		chanFeat("n1_seg0", "n1", 100, 0, 500, 2000, 500),
		chanFeat("n2_seg0", "n2", 100, 0, 620, 2000, 620),
	}
	r = Check(d, Rules{})
	if r.CountRule(RuleSpacing) != 1 || r.CountRule(RuleCrossing) != 0 {
		t.Errorf("spacing/crossing = %d/%d:\n%s",
			r.CountRule(RuleSpacing), r.CountRule(RuleCrossing), r)
	}

	// 300 µm apart: clean.
	d.Features = []core.Feature{
		chanFeat("n1_seg0", "n1", 100, 0, 500, 2000, 500),
		chanFeat("n2_seg0", "n2", 100, 0, 800, 2000, 800),
	}
	if r := Check(d, Rules{}); !r.Clean() {
		t.Errorf("separated channels flagged:\n%s", r)
	}
}

func TestSameNetSegmentsExempt(t *testing.T) {
	d := scaffold(t)
	// Two touching segments of one net: an L corner.
	d.Features = []core.Feature{
		chanFeat("n1_seg0", "n1", 100, 0, 0, 1000, 0),
		chanFeat("n1_seg1", "n1", 100, 1000, 0, 1000, 1000),
	}
	if r := Check(d, Rules{}); !r.Clean() {
		t.Errorf("same-net corner flagged:\n%s", r)
	}
}

func TestAdjacentNetsExempt(t *testing.T) {
	// Nets sharing a terminating component may legitimately run close by.
	b := core.NewBuilder("adj")
	flow := b.FlowLayer()
	b.IOPort("a", flow, 200)
	b.IOPort("z", flow, 200)
	b.TwoPort("m", core.EntityMixer, flow, 1000, 500)
	b.Connect("n1", flow, "a.port1", "m.port1")
	b.Connect("n2", flow, "m.port2", "z.port1")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d.Features = []core.Feature{
		chanFeat("n1_seg0", "n1", 100, 0, 100, 1000, 100),
		chanFeat("n2_seg0", "n2", 100, 0, 150, 1000, 150), // overlapping, but adjacent nets
	}
	if r := Check(d, Rules{}); r.CountRule(RuleCrossing) != 0 {
		t.Errorf("adjacent nets flagged:\n%s", r)
	}
}

func TestIncursion(t *testing.T) {
	d := scaffold(t)
	d.Features = []core.Feature{
		compFeat("c", 500, 0, 200, 200),
		// n1 does not terminate on c but runs straight through it.
		chanFeat("n1_seg0", "n1", 100, 0, 100, 2000, 100),
	}
	r := Check(d, Rules{})
	if r.CountRule(RuleIncursion) != 1 {
		t.Errorf("incursion = %d:\n%s", r.CountRule(RuleIncursion), r)
	}
	// The same geometry for a net that terminates on the component is fine.
	d.Features[1] = chanFeat("n2_seg0", "n2", 100, 0, 100, 2000, 100)
	// n2 connects c -> dd, so running through c is legal.
	r = Check(d, Rules{})
	if r.CountRule(RuleIncursion) != 0 {
		t.Errorf("terminating net flagged:\n%s", r)
	}
}

func TestClearance(t *testing.T) {
	d := scaffold(t)
	d.Features = []core.Feature{
		compFeat("a", 0, 0, 200, 200),
		compFeat("bb", 250, 0, 200, 200), // 50 µm gap < 100 µm clearance
	}
	r := Check(d, Rules{})
	if r.CountRule(RuleClearance) != 1 {
		t.Errorf("clearance = %d:\n%s", r.CountRule(RuleClearance), r)
	}
	// Overlapping components are also clearance violations.
	d.Features[1] = compFeat("bb", 100, 0, 200, 200)
	r = Check(d, Rules{})
	if r.CountRule(RuleClearance) != 1 {
		t.Errorf("overlap clearance = %d:\n%s", r.CountRule(RuleClearance), r)
	}
	// Wide spacing is clean.
	d.Features[1] = compFeat("bb", 500, 0, 200, 200)
	if r := Check(d, Rules{}); !r.Clean() {
		t.Errorf("separated components flagged:\n%s", r)
	}
	// Different layers never interact.
	d.Features[1] = compFeat("bb", 100, 0, 200, 200)
	d.Features[1].Layer = "other"
	if r := Check(d, Rules{}); r.CountRule(RuleClearance) != 0 {
		t.Errorf("cross-layer clearance flagged:\n%s", r)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: RuleSpacing, A: "s1", B: "s2", Layer: "flow", Message: "too close"}
	if got := v.String(); got != "channel-spacing [flow] s1 x s2: too close" {
		t.Errorf("String = %q", got)
	}
	v.B = ""
	if !strings.HasPrefix(v.String(), "channel-spacing [flow] s1:") {
		t.Errorf("single String = %q", v.String())
	}
}

func TestRoutedBenchmarkIsMostlyClean(t *testing.T) {
	// The pnr flow's output should not cross channels (hard-blocked grid)
	// nor run channels through unrelated components.
	b, err := bench.ByName("rotary_pcr")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pnr.Run(b.Build(), pnr.Options{
		Placer: place.Annealer{},
		Router: route.AStar{},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := Check(res.Device, Rules{})
	if n := r.CountRule(RuleCrossing); n != 0 {
		t.Errorf("routed device has %d crossings:\n%s", n, r)
	}
	if n := r.CountRule(RuleClearance); n != 0 {
		t.Errorf("placed device has %d clearance violations:\n%s", n, r)
	}
}
