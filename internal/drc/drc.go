// Package drc implements physical design-rule checking for
// feature-annotated ParchMint devices: the geometric layer of validation
// that complements package validate's netlist rules. It checks minimum
// channel width, channel-to-channel clearance, channel crossings, channel
// incursions into unrelated components, and component-to-component
// clearance — the rules a fabricated continuous-flow device must satisfy.
package drc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
)

// Rule identifies a design rule.
type Rule string

// The rule set.
const (
	// RuleMinWidth: channel width below the process minimum.
	RuleMinWidth Rule = "min-width"
	// RuleSpacing: two channels of different nets closer than the minimum
	// clearance.
	RuleSpacing Rule = "channel-spacing"
	// RuleCrossing: two channels of different nets overlapping on one layer.
	RuleCrossing Rule = "channel-crossing"
	// RuleIncursion: a channel running through a component it does not
	// connect to.
	RuleIncursion Rule = "component-incursion"
	// RuleClearance: two placed components closer than the minimum
	// clearance.
	RuleClearance Rule = "component-clearance"
)

// Rules tunes the process design rules, in micrometers.
type Rules struct {
	// MinChannelWidth is the narrowest fabricable channel; 0 means 50.
	MinChannelWidth int64
	// MinChannelSpacing is the smallest channel-to-channel gap; 0 means 50.
	MinChannelSpacing int64
	// MinComponentClearance is the smallest component-to-component gap;
	// 0 means 100.
	MinComponentClearance int64
}

func (r Rules) minWidth() int64 {
	if r.MinChannelWidth <= 0 {
		return 50
	}
	return r.MinChannelWidth
}

func (r Rules) minSpacing() int64 {
	if r.MinChannelSpacing <= 0 {
		return 50
	}
	return r.MinChannelSpacing
}

func (r Rules) minClearance() int64 {
	if r.MinComponentClearance <= 0 {
		return 100
	}
	return r.MinComponentClearance
}

// Violation is one design-rule hit.
type Violation struct {
	Rule Rule
	// A, B name the offending features (B empty for single-feature rules).
	A, B string
	// Layer is where the violation sits.
	Layer string
	// Message describes the measurement.
	Message string
}

// String renders "rule [layer] A x B: message".
func (v Violation) String() string {
	who := v.A
	if v.B != "" {
		who += " x " + v.B
	}
	return fmt.Sprintf("%s [%s] %s: %s", v.Rule, v.Layer, who, v.Message)
}

// Report is the result of one DRC run.
type Report struct {
	Device     string
	Violations []Violation
}

// Clean reports whether no rule fired.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// CountRule returns the number of violations of one rule.
func (r *Report) CountRule(rule Rule) int {
	n := 0
	for _, v := range r.Violations {
		if v.Rule == rule {
			n++
		}
	}
	return n
}

// String renders the report, one violation per line.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "drc %q: %d violation(s)\n", r.Device, len(r.Violations))
	for _, v := range r.Violations {
		sb.WriteString("  ")
		sb.WriteString(v.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// thickSeg is a channel segment expanded to its physical extent.
type thickSeg struct {
	conn  string
	layer string
	id    string
	box   geom.Rect
}

// Check runs the rule set over a device's features.
func Check(d *core.Device, rules Rules) *Report {
	rep := &Report{Device: d.Name}

	// Channel segments as physical boxes.
	var segs []thickSeg
	var comps []*core.Feature
	for i := range d.Features {
		f := &d.Features[i]
		switch f.Kind {
		case core.FeatureChannel:
			if f.Width < rules.minWidth() {
				rep.add(Violation{
					Rule: RuleMinWidth, A: f.ID, Layer: f.Layer,
					Message: fmt.Sprintf("width %d um below minimum %d um", f.Width, rules.minWidth()),
				})
			}
			segs = append(segs, thickSeg{
				conn:  f.Connection,
				layer: f.Layer,
				id:    f.ID,
				box:   f.Footprint().Inflate(f.Width / 2),
			})
		case core.FeatureComponent:
			comps = append(comps, f)
		}
	}

	checkChannelPairs(rep, d, segs, rules)
	checkIncursions(rep, d, segs, comps)
	checkClearance(rep, comps, rules)
	sort.SliceStable(rep.Violations, func(i, j int) bool {
		a, b := rep.Violations[i], rep.Violations[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return rep
}

func (r *Report) add(v Violation) { r.Violations = append(r.Violations, v) }

// checkChannelPairs flags crossings (overlap) and spacing (gap below
// minimum) between segments of different nets on the same layer. Nets
// that terminate on a common component are exempt from pairwise checks:
// their endpoints sit on adjacent ports of that component by design, and
// flagging that proximity would bury real violations in noise.
func checkChannelPairs(rep *Report, d *core.Device, segs []thickSeg, rules Rules) {
	ends := make(map[string]map[string]bool, len(d.Connections))
	for i := range d.Connections {
		cn := &d.Connections[i]
		set := make(map[string]bool, 1+len(cn.Sinks))
		for _, t := range cn.Targets() {
			set[t.Component] = true
		}
		ends[cn.ID] = set
	}
	adjacentNets := func(a, b string) bool {
		ea, eb := ends[a], ends[b]
		if len(eb) < len(ea) {
			ea, eb = eb, ea
		}
		for c := range ea {
			if eb[c] {
				return true
			}
		}
		return false
	}
	spacing := rules.minSpacing()
	for i := 0; i < len(segs); i++ {
		for j := i + 1; j < len(segs); j++ {
			a, b := &segs[i], &segs[j]
			if a.layer != b.layer || a.conn == b.conn {
				continue
			}
			if adjacentNets(a.conn, b.conn) {
				continue
			}
			if a.box.Overlaps(b.box) {
				rep.add(Violation{
					Rule: RuleCrossing, A: a.id, B: b.id, Layer: a.layer,
					Message: fmt.Sprintf("nets %s and %s overlap", a.conn, b.conn),
				})
				continue
			}
			if a.box.Inflate(spacing).Overlaps(b.box) {
				rep.add(Violation{
					Rule: RuleSpacing, A: a.id, B: b.id, Layer: a.layer,
					Message: fmt.Sprintf("nets %s and %s closer than %d um", a.conn, b.conn, spacing),
				})
			}
		}
	}
}

// checkIncursions flags channels running through components their net
// does not terminate on.
func checkIncursions(rep *Report, d *core.Device, segs []thickSeg, comps []*core.Feature) {
	// Which components does each connection legitimately touch?
	touches := make(map[string]map[string]bool, len(d.Connections))
	for i := range d.Connections {
		cn := &d.Connections[i]
		set := make(map[string]bool, 1+len(cn.Sinks))
		for _, t := range cn.Targets() {
			set[t.Component] = true
		}
		touches[cn.ID] = set
	}
	for _, s := range segs {
		for _, c := range comps {
			if c.Layer != s.layer {
				continue
			}
			if touches[s.conn][c.ID] {
				continue // terminating at (or escaping from) this component
			}
			// Shrink the footprint slightly so a channel that merely kisses
			// the boundary is not an incursion.
			fp := c.Footprint().Inflate(-1)
			if fp.Overlaps(s.box) {
				rep.add(Violation{
					Rule: RuleIncursion, A: s.id, B: c.ID, Layer: s.layer,
					Message: fmt.Sprintf("net %s runs through component %s", s.conn, c.ID),
				})
			}
		}
	}
}

// checkClearance flags same-layer placed components with less than the
// minimum gap between footprints.
func checkClearance(rep *Report, comps []*core.Feature, rules Rules) {
	clearance := rules.minClearance()
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			a, b := comps[i], comps[j]
			if a.Layer != b.Layer {
				continue
			}
			fa, fb := a.Footprint(), b.Footprint()
			if fa.Overlaps(fb) {
				// The semantic validator already errors on overlap; DRC
				// reports it as a zero-gap clearance violation too.
				rep.add(Violation{
					Rule: RuleClearance, A: a.ID, B: b.ID, Layer: a.Layer,
					Message: "footprints overlap",
				})
				continue
			}
			if fa.Inflate(clearance).Overlaps(fb) {
				rep.add(Violation{
					Rule: RuleClearance, A: a.ID, B: b.ID, Layer: a.Layer,
					Message: fmt.Sprintf("gap below %d um", clearance),
				})
			}
		}
	}
}
