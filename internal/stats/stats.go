// Package stats computes the benchmark-characterization metrics the
// paper's tables report and provides the plain-text table/series renderers
// the experiment harness prints. Everything here is presentation and
// aggregation; the underlying numbers come from core, netlist, place, and
// route.
package stats

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/netlist"
)

// Profile is one benchmark's row in the suite characterization (Table 1).
type Profile struct {
	Name        string  `json:"name"`
	Class       string  `json:"class"`
	Layers      int     `json:"layers"`
	Components  int     `json:"components"`
	Connections int     `json:"connections"`
	Ports       int     `json:"ports"`      // chip IO ports (PORT entities)
	Valves      int     `json:"valves"`     // control entities: valves and pumps
	MultiSink   int     `json:"multi_sink"` // connections with fanout > 1
	AvgDegree   float64 `json:"avg_degree"`
	MaxDegree   int     `json:"max_degree"`
	Diameter    int     `json:"diameter"`
}

// ProfileDevice computes a characterization profile.
func ProfileDevice(d *core.Device, class string) Profile {
	g := netlist.Build(d)
	deg := g.Degrees()
	fan := g.Fanouts()
	ctl := 0
	for i := range d.Components {
		if core.IsControlEntity(d.Components[i].Entity) {
			ctl++
		}
	}
	return Profile{
		Name:        d.Name,
		Class:       class,
		Layers:      len(d.Layers),
		Components:  len(d.Components),
		Connections: len(d.Connections),
		Ports:       d.CountEntity(core.EntityPort),
		Valves:      ctl,
		MultiSink:   fan.MultiSink,
		AvgDegree:   deg.Mean,
		MaxDegree:   deg.Max,
		Diameter:    g.Diameter(),
	}
}

// Table is a renderable text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells[:len(t.Columns)])
}

// Render produces an aligned plain-text rendering.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Cell returns the cell at (row, col); empty string when out of range.
func (t *Table) Cell(row int, col string) string {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 || row < 0 || row >= len(t.Rows) {
		return ""
	}
	return t.Rows[row][ci]
}

// RowByFirst returns the first row whose leading cell equals key, or nil.
func (t *Table) RowByFirst(key string) []string {
	for _, row := range t.Rows {
		if len(row) > 0 && row[0] == key {
			return row
		}
	}
	return nil
}

// Series is one named line of (x, y) points in a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a renderable collection of series — the textual equivalent of
// one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends one series.
func (f *Figure) Add(s Series) { f.Series = append(f.Series, s) }

// Render lists each series' points, one "x y" pair per line, preceded by
// the series name — the gnuplot-friendly shape the harness writes out.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n# x: %s, y: %s\n", f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "\n# series %s\n", s.Name)
		for i := range s.X {
			y := 0.0
			if i < len(s.Y) {
				y = s.Y[i]
			}
			fmt.Fprintf(&sb, "%g\t%g\n", s.X[i], y)
		}
	}
	return sb.String()
}

// ByName returns the series with the given name, or nil.
func (f *Figure) ByName(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// Itoa renders an int cell.
func Itoa(v int) string { return fmt.Sprintf("%d", v) }

// I64 renders an int64 cell.
func I64(v int64) string { return fmt.Sprintf("%d", v) }

// F2 renders a float cell with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct renders a ratio as a percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
