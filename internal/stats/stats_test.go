package stats

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

func TestProfileDevice(t *testing.T) {
	b, err := bench.ByName("aquaflex_3b")
	if err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	p := ProfileDevice(d, "assay")
	if p.Name != "aquaflex_3b" || p.Class != "assay" {
		t.Errorf("identity = %q/%q", p.Name, p.Class)
	}
	if p.Layers != 2 {
		t.Errorf("layers = %d", p.Layers)
	}
	if p.Components != len(d.Components) || p.Connections != len(d.Connections) {
		t.Errorf("counts = %d/%d", p.Components, p.Connections)
	}
	if p.Valves != 6 {
		t.Errorf("valves = %d, want 6", p.Valves)
	}
	if p.Ports != d.CountEntity(core.EntityPort) {
		t.Errorf("ports = %d", p.Ports)
	}
	if p.AvgDegree <= 0 || p.MaxDegree < 2 || p.Diameter < 2 {
		t.Errorf("graph stats = %+v", p)
	}
}

func TestProfileCountsPumpsAsControl(t *testing.T) {
	b, err := bench.ByName("chromatin_immunoprecipitation")
	if err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	p := ProfileDevice(d, "assay")
	valves := d.CountEntity(core.EntityValve)
	pumps := d.CountEntity(core.EntityPump)
	if p.Valves != valves+pumps {
		t.Errorf("control count = %d, want %d valves + %d pumps", p.Valves, valves, pumps)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "22")
	tb.AddRow("gamma") // short row padded
	out := tb.Render()
	if !strings.Contains(out, "My Title") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 3 rows
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	// All data lines align: the "value" column starts at the same offset.
	hdr := lines[1]
	col := strings.Index(hdr, "value")
	for _, ln := range lines[3:] {
		if len(ln) < col {
			continue
		}
		if ln[col-1] != ' ' && ln[col-2] != ' ' {
			t.Errorf("misaligned row %q", ln)
		}
	}
}

func TestTableCellAndRowLookup(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta", "2")
	if got := tb.Cell(1, "value"); got != "2" {
		t.Errorf("Cell = %q", got)
	}
	if got := tb.Cell(5, "value"); got != "" {
		t.Errorf("out-of-range Cell = %q", got)
	}
	if got := tb.Cell(0, "nope"); got != "" {
		t.Errorf("unknown column Cell = %q", got)
	}
	row := tb.RowByFirst("beta")
	if row == nil || row[1] != "2" {
		t.Errorf("RowByFirst = %v", row)
	}
	if tb.RowByFirst("ghost") != nil {
		t.Error("missing key should return nil")
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{Title: "Fig X", XLabel: "n", YLabel: "ms"}
	f.Add(Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}})
	f.Add(Series{Name: "b", X: []float64{1}, Y: nil}) // missing y defaults to 0
	out := f.Render()
	for _, frag := range []string{"Fig X", "# x: n, y: ms", "# series a", "1\t10", "2\t20", "# series b", "1\t0"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	if s := f.ByName("b"); s == nil || s.Name != "b" {
		t.Errorf("ByName = %+v", s)
	}
	if f.ByName("ghost") != nil {
		t.Error("missing series should be nil")
	}
}

func TestCellFormatters(t *testing.T) {
	if Itoa(42) != "42" || I64(-7) != "-7" {
		t.Error("integer formatters wrong")
	}
	if F2(3.14159) != "3.14" {
		t.Errorf("F2 = %q", F2(3.14159))
	}
	if Pct(0.756) != "75.6%" {
		t.Errorf("Pct = %q", Pct(0.756))
	}
}
