package geom

import (
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, bounds Rect, pitch int64) *Grid {
	t.Helper()
	g, err := NewGrid(bounds, pitch)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(R(0, 0, 100, 100), 0); err == nil {
		t.Error("pitch 0 should fail")
	}
	if _, err := NewGrid(R(0, 0, 100, 100), -5); err == nil {
		t.Error("negative pitch should fail")
	}
	if _, err := NewGrid(Rect{}, 10); err == nil {
		t.Error("empty bounds should fail")
	}
}

func TestGridDimensions(t *testing.T) {
	g := mustGrid(t, R(0, 0, 100, 60), 10)
	if g.Cols() != 10 || g.Rows() != 6 {
		t.Errorf("dims = %dx%d, want 10x6", g.Cols(), g.Rows())
	}
	if g.NumCells() != 60 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
	// Non-divisible bounds round the cell count up.
	g2 := mustGrid(t, R(0, 0, 105, 61), 10)
	if g2.Cols() != 11 || g2.Rows() != 7 {
		t.Errorf("rounded dims = %dx%d, want 11x7", g2.Cols(), g2.Rows())
	}
}

func TestGridCellOfClamps(t *testing.T) {
	g := mustGrid(t, R(0, 0, 100, 100), 10)
	cases := []struct {
		p    Point
		want Cell
	}{
		{Pt(0, 0), Cell{0, 0}},
		{Pt(99, 99), Cell{9, 9}},
		{Pt(100, 100), Cell{9, 9}}, // on the exclusive max: clamped in
		{Pt(-50, 5), Cell{0, 0}},   // outside: clamped
		{Pt(55, 1000), Cell{5, 9}},
	}
	for _, c := range cases {
		if got := g.CellOf(c.p); got != c.want {
			t.Errorf("CellOf(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestGridCenterOfRoundTrip(t *testing.T) {
	g := mustGrid(t, R(100, 200, 600, 700), 25)
	prop := func(col, row uint8) bool {
		c := Cell{int(col) % g.Cols(), int(row) % g.Rows()}
		return g.CellOf(g.CenterOf(c)) == c
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGridBlocking(t *testing.T) {
	g := mustGrid(t, R(0, 0, 100, 100), 10)
	c := Cell{4, 5}
	if g.Blocked(c) {
		t.Error("fresh grid should be unblocked")
	}
	g.Block(c)
	if !g.Blocked(c) {
		t.Error("Block did not take")
	}
	g.Unblock(c)
	if g.Blocked(c) {
		t.Error("Unblock did not take")
	}
	// Out-of-bounds cells read as blocked and ignore writes.
	oob := Cell{-1, 3}
	if !g.Blocked(oob) {
		t.Error("out-of-bounds should read blocked")
	}
	g.Block(oob)
	g.Unblock(oob) // must not panic
}

func TestGridBlockRect(t *testing.T) {
	g := mustGrid(t, R(0, 0, 100, 100), 10)
	n := g.BlockRect(R(15, 15, 35, 25))
	// Covers columns 1..3 (x 15..35 touches cells 1,2,3) and rows 1..2.
	if n != 6 {
		t.Errorf("BlockRect blocked %d cells, want 6", n)
	}
	if !g.Blocked(Cell{1, 1}) || !g.Blocked(Cell{3, 2}) {
		t.Error("expected corner cells blocked")
	}
	if g.Blocked(Cell{4, 1}) || g.Blocked(Cell{1, 3}) {
		t.Error("cells outside the rect must stay free")
	}
	// Re-blocking the same region blocks nothing new.
	if n := g.BlockRect(R(15, 15, 35, 25)); n != 0 {
		t.Errorf("re-BlockRect blocked %d, want 0", n)
	}
	// A rect fully outside the grid is a no-op.
	if n := g.BlockRect(R(500, 500, 600, 600)); n != 0 {
		t.Errorf("outside BlockRect blocked %d, want 0", n)
	}
	if g.FreeCells() != 100-6 {
		t.Errorf("FreeCells = %d, want 94", g.FreeCells())
	}
}

func TestGridBlockRectExactBoundary(t *testing.T) {
	g := mustGrid(t, R(0, 0, 100, 100), 10)
	// A rect ending exactly on a cell boundary must not bleed into the next cell.
	g.BlockRect(R(0, 0, 10, 10))
	if !g.Blocked(Cell{0, 0}) {
		t.Error("cell (0,0) should be blocked")
	}
	if g.Blocked(Cell{1, 0}) || g.Blocked(Cell{0, 1}) {
		t.Error("boundary-aligned rect bled into neighbor cells")
	}
}

func TestGridCost(t *testing.T) {
	g := mustGrid(t, R(0, 0, 50, 50), 10)
	c := Cell{2, 2}
	g.AddCost(c, 7)
	if got := g.Cost(c); got != 7 {
		t.Errorf("Cost = %d, want 7", got)
	}
	g.AddCost(c, -100) // clamps at zero
	if got := g.Cost(c); got != 0 {
		t.Errorf("clamped Cost = %d, want 0", got)
	}
	if got := g.Cost(Cell{-1, -1}); got != 0 {
		t.Errorf("out-of-bounds Cost = %d, want 0", got)
	}
	g.AddCost(Cell{99, 99}, 5) // must not panic
}

func TestGridNeighbors4(t *testing.T) {
	g := mustGrid(t, R(0, 0, 30, 30), 10) // 3x3
	mid := g.Neighbors4(nil, Cell{1, 1})
	if len(mid) != 4 {
		t.Errorf("center has %d neighbors, want 4", len(mid))
	}
	corner := g.Neighbors4(nil, Cell{0, 0})
	if len(corner) != 2 {
		t.Errorf("corner has %d neighbors, want 2", len(corner))
	}
	edge := g.Neighbors4(nil, Cell{1, 0})
	if len(edge) != 3 {
		t.Errorf("edge has %d neighbors, want 3", len(edge))
	}
	// Append semantics: reuses dst.
	buf := make([]Cell, 0, 4)
	buf = g.Neighbors4(buf, Cell{2, 2})
	if len(buf) != 2 {
		t.Errorf("bottom-right corner has %d neighbors, want 2", len(buf))
	}
}

func TestGridClone(t *testing.T) {
	g := mustGrid(t, R(0, 0, 40, 40), 10)
	g.Block(Cell{1, 1})
	g.AddCost(Cell{2, 2}, 3)
	c := g.Clone()
	if !c.Blocked(Cell{1, 1}) || c.Cost(Cell{2, 2}) != 3 {
		t.Error("clone did not copy state")
	}
	c.Block(Cell{3, 3})
	c.AddCost(Cell{2, 2}, 5)
	if g.Blocked(Cell{3, 3}) {
		t.Error("mutating clone blocked original")
	}
	if g.Cost(Cell{2, 2}) != 3 {
		t.Error("mutating clone changed original cost")
	}
}
