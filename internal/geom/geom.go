// Package geom provides the planar geometry primitives shared by every
// subsystem in the repository: integer points, rectangles, spans, Manhattan
// metrics, and the occupancy grids used by the maze routers.
//
// ParchMint devices express all physical quantities in micrometers (µm).
// Following the format, coordinates are kept as int64 micrometers so that
// round-tripping a device through JSON is exact.
package geom

import "fmt"

// Point is a location on a device layer, in micrometers.
type Point struct {
	X int64 `json:"x"`
	Y int64 `json:"y"`
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y int64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int64 {
	return abs64(p.X-q.X) + abs64(p.Y-q.Y)
}

// String renders the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is inclusive, Max is exclusive,
// mirroring image.Rectangle semantics so that Dx/Dy are the spans.
type Rect struct {
	Min Point `json:"min"`
	Max Point `json:"max"`
}

// R constructs the rectangle with corners (x0,y0) and (x1,y1), normalizing
// the corner order so Min ≤ Max on both axes.
func R(x0, y0, x1, y1 int64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// RectAt returns the rectangle whose top-left corner is at origin with the
// given spans. Negative spans are treated as zero.
func RectAt(origin Point, xSpan, ySpan int64) Rect {
	if xSpan < 0 {
		xSpan = 0
	}
	if ySpan < 0 {
		ySpan = 0
	}
	return Rect{Min: origin, Max: Point{origin.X + xSpan, origin.Y + ySpan}}
}

// Dx returns the width of r.
func (r Rect) Dx() int64 { return r.Max.X - r.Min.X }

// Dy returns the height of r.
func (r Rect) Dy() int64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r in µm².
func (r Rect) Area() int64 { return r.Dx() * r.Dy() }

// Empty reports whether r encloses no area.
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Center returns the midpoint of r (rounded toward Min).
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (Min inclusive, Max exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// ContainsClosed reports whether p lies inside r with both bounds inclusive.
// Ports sit on component boundaries, so boundary points count as inside.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Overlaps reports whether r and s share any interior area.
func (r Rect) Overlaps(s Rect) bool {
	return !r.Empty() && !s.Empty() &&
		r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// Union returns the smallest rectangle containing both r and s. An empty
// rectangle is the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Min: Point{min64(r.Min.X, s.Min.X), min64(r.Min.Y, s.Min.Y)},
		Max: Point{max64(r.Max.X, s.Max.X), max64(r.Max.Y, s.Max.Y)},
	}
}

// Intersect returns the largest rectangle contained in both r and s; if they
// do not overlap the result is empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Point{max64(r.Min.X, s.Min.X), max64(r.Min.Y, s.Min.Y)},
		Max: Point{min64(r.Max.X, s.Max.X), min64(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Inflate grows r by d on every side (shrinks when d is negative). The
// result is clamped to an empty rectangle rather than turning inside out.
func (r Rect) Inflate(d int64) Rect {
	out := Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
	if out.Empty() {
		return Rect{Min: out.Min, Max: out.Min}
	}
	return out
}

// Translate returns r shifted by delta.
func (r Rect) Translate(delta Point) Rect {
	return Rect{Min: r.Min.Add(delta), Max: r.Max.Add(delta)}
}

// String renders the rectangle as "[(x0,y0) (x1,y1)]".
func (r Rect) String() string { return fmt.Sprintf("[%v %v]", r.Min, r.Max) }

// BoundingBox returns the smallest rectangle containing every point in pts.
// The zero Rect is returned for an empty slice.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = min64(r.Min.X, p.X)
		r.Min.Y = min64(r.Min.Y, p.Y)
		r.Max.X = max64(r.Max.X, p.X)
		r.Max.Y = max64(r.Max.Y, p.Y)
	}
	return r
}

// HPWL returns the half-perimeter wire length of pts: the semi-perimeter of
// their bounding box, the standard placement wirelength estimate.
func HPWL(pts []Point) int64 {
	if len(pts) < 2 {
		return 0
	}
	bb := BoundingBox(pts)
	return bb.Dx() + bb.Dy()
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
