package geom

import (
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, -4)
	q := Pt(10, 2)
	if got := p.Add(q); got != Pt(13, -2) {
		t.Errorf("Add = %v, want (13,-2)", got)
	}
	if got := q.Sub(p); got != Pt(7, 6) {
		t.Errorf("Sub = %v, want (7,6)", got)
	}
	if got := p.Manhattan(q); got != 13 {
		t.Errorf("Manhattan = %d, want 13", got)
	}
	if got := p.Manhattan(p); got != 0 {
		t.Errorf("Manhattan self = %d, want 0", got)
	}
}

func TestManhattanProperties(t *testing.T) {
	// Symmetry and non-negativity over arbitrary points.
	sym := func(ax, ay, bx, by int32) bool {
		p, q := Pt(int64(ax), int64(ay)), Pt(int64(bx), int64(by))
		d := p.Manhattan(q)
		return d >= 0 && d == q.Manhattan(p)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	// Triangle inequality.
	tri := func(ax, ay, bx, by, cx, cy int16) bool {
		p, q, r := Pt(int64(ax), int64(ay)), Pt(int64(bx), int64(by)), Pt(int64(cx), int64(cy))
		return p.Manhattan(r) <= p.Manhattan(q)+q.Manhattan(r)
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(10, 20, 2, 5)
	if r.Min != Pt(2, 5) || r.Max != Pt(10, 20) {
		t.Errorf("R did not normalize corners: %v", r)
	}
	if r.Dx() != 8 || r.Dy() != 15 {
		t.Errorf("spans = %d,%d want 8,15", r.Dx(), r.Dy())
	}
	if r.Area() != 120 {
		t.Errorf("Area = %d, want 120", r.Area())
	}
}

func TestRectAtClampsNegativeSpans(t *testing.T) {
	r := RectAt(Pt(5, 5), -3, 10)
	if !r.Empty() {
		t.Errorf("rect with negative x-span should be empty, got %v", r)
	}
	if r.Dx() != 0 {
		t.Errorf("Dx = %d, want 0", r.Dx())
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p          Point
		open, shut bool // Contains, ContainsClosed
	}{
		{Pt(0, 0), true, true},
		{Pt(9, 9), true, true},
		{Pt(10, 10), false, true}, // boundary: closed only
		{Pt(10, 5), false, true},
		{Pt(11, 5), false, false},
		{Pt(-1, 0), false, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.open {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.open)
		}
		if got := r.ContainsClosed(c.p); got != c.shut {
			t.Errorf("ContainsClosed(%v) = %v, want %v", c.p, got, c.shut)
		}
	}
}

func TestRectOverlaps(t *testing.T) {
	a := R(0, 0, 10, 10)
	cases := []struct {
		b    Rect
		want bool
	}{
		{R(5, 5, 15, 15), true},
		{R(10, 0, 20, 10), false}, // touching edges do not overlap
		{R(0, 10, 10, 20), false},
		{R(-5, -5, 1, 1), true},
		{R(3, 3, 3, 8), false}, // degenerate: empty never overlaps
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps is asymmetric for %v", c.b)
		}
	}
}

func TestRectUnionIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 20, 8)
	u := a.Union(b)
	if u != R(0, 0, 20, 10) {
		t.Errorf("Union = %v", u)
	}
	i := a.Intersect(b)
	if i != R(5, 5, 10, 8) {
		t.Errorf("Intersect = %v", i)
	}
	if got := a.Intersect(R(50, 50, 60, 60)); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
	// Empty rect is the identity for Union.
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty Union = %v, want %v", got, a)
	}
}

func TestRectUnionProperties(t *testing.T) {
	mk := func(x0, y0, x1, y1 int16) Rect {
		return R(int64(x0), int64(y0), int64(x1), int64(y1))
	}
	containsBoth := func(x0, y0, x1, y1, x2, y2, x3, y3 int16) bool {
		a, b := mk(x0, y0, x1, y1), mk(x2, y2, x3, y3)
		u := a.Union(b)
		// Union must contain both inputs' corners (when non-empty).
		if !a.Empty() && (!u.ContainsClosed(a.Min) || !u.ContainsClosed(a.Max)) {
			return false
		}
		if !b.Empty() && (!u.ContainsClosed(b.Min) || !u.ContainsClosed(b.Max)) {
			return false
		}
		return true
	}
	if err := quick.Check(containsBoth, nil); err != nil {
		t.Error(err)
	}
	commutes := func(x0, y0, x1, y1, x2, y2, x3, y3 int16) bool {
		a, b := mk(x0, y0, x1, y1), mk(x2, y2, x3, y3)
		return a.Union(b) == b.Union(a)
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Error(err)
	}
}

func TestRectInflate(t *testing.T) {
	r := R(10, 10, 20, 20)
	if got := r.Inflate(5); got != R(5, 5, 25, 25) {
		t.Errorf("Inflate(5) = %v", got)
	}
	if got := r.Inflate(-3); got != R(13, 13, 17, 17) {
		t.Errorf("Inflate(-3) = %v", got)
	}
	// Over-shrinking collapses to empty instead of inverting.
	if got := r.Inflate(-6); !got.Empty() {
		t.Errorf("Inflate(-6) = %v, want empty", got)
	}
}

func TestRectTranslateCenter(t *testing.T) {
	r := R(0, 0, 10, 4)
	if got := r.Translate(Pt(5, 7)); got != R(5, 7, 15, 11) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.Center(); got != Pt(5, 2) {
		t.Errorf("Center = %v", got)
	}
}

func TestBoundingBoxAndHPWL(t *testing.T) {
	if got := BoundingBox(nil); got != (Rect{}) {
		t.Errorf("BoundingBox(nil) = %v", got)
	}
	pts := []Point{Pt(3, 7), Pt(-2, 4), Pt(10, 5)}
	bb := BoundingBox(pts)
	if bb.Min != Pt(-2, 4) || bb.Max != Pt(10, 7) {
		t.Errorf("BoundingBox = %v", bb)
	}
	if got := HPWL(pts); got != 12+3 {
		t.Errorf("HPWL = %d, want 15", got)
	}
	if got := HPWL(pts[:1]); got != 0 {
		t.Errorf("HPWL of one point = %d, want 0", got)
	}
	// Two-point HPWL equals Manhattan distance.
	prop := func(ax, ay, bx, by int32) bool {
		p, q := Pt(int64(ax), int64(ay)), Pt(int64(bx), int64(by))
		return HPWL([]Point{p, q}) == p.Manhattan(q)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if got := Pt(1, 2).String(); got != "(1,2)" {
		t.Errorf("Point.String = %q", got)
	}
	if got := R(0, 0, 1, 1).String(); got != "[(0,0) (1,1)]" {
		t.Errorf("Rect.String = %q", got)
	}
	if got := (Cell{3, 4}).String(); got != "c3r4" {
		t.Errorf("Cell.String = %q", got)
	}
}
