package geom

import "fmt"

// Cell addresses one square of a Grid in column/row space.
type Cell struct {
	Col, Row int
}

// String renders the cell as "c<col>r<row>".
func (c Cell) String() string { return fmt.Sprintf("c%dr%d", c.Col, c.Row) }

// Grid discretizes a device region into square cells of Pitch micrometers,
// tracking which cells are blocked by placed geometry. Routers operate on
// this occupancy view rather than on raw coordinates.
type Grid struct {
	bounds  Rect
	pitch   int64
	cols    int
	rows    int
	blocked []bool
	// cost holds per-cell additive routing cost (congestion penalties from
	// rip-up-and-reroute); zero means free.
	cost []int32
}

// NewGrid builds an occupancy grid covering bounds with the given pitch.
// The pitch must be positive; bounds must be non-empty.
func NewGrid(bounds Rect, pitch int64) (*Grid, error) {
	if pitch <= 0 {
		return nil, fmt.Errorf("geom: grid pitch must be positive, got %d", pitch)
	}
	if bounds.Empty() {
		return nil, fmt.Errorf("geom: grid bounds %v are empty", bounds)
	}
	cols := int((bounds.Dx() + pitch - 1) / pitch)
	rows := int((bounds.Dy() + pitch - 1) / pitch)
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("geom: grid %v at pitch %d has no cells", bounds, pitch)
	}
	return &Grid{
		bounds:  bounds,
		pitch:   pitch,
		cols:    cols,
		rows:    rows,
		blocked: make([]bool, cols*rows),
		cost:    make([]int32, cols*rows),
	}, nil
}

// Cols returns the number of grid columns.
func (g *Grid) Cols() int { return g.cols }

// Rows returns the number of grid rows.
func (g *Grid) Rows() int { return g.rows }

// Pitch returns the cell size in micrometers.
func (g *Grid) Pitch() int64 { return g.pitch }

// Bounds returns the region the grid covers.
func (g *Grid) Bounds() Rect { return g.bounds }

// NumCells returns the total cell count.
func (g *Grid) NumCells() int { return g.cols * g.rows }

// InBounds reports whether c addresses a cell inside the grid.
func (g *Grid) InBounds(c Cell) bool {
	return c.Col >= 0 && c.Col < g.cols && c.Row >= 0 && c.Row < g.rows
}

func (g *Grid) index(c Cell) int { return c.Row*g.cols + c.Col }

// CellOf maps a device-space point to its containing cell. Points outside
// the bounds are clamped to the nearest edge cell so that ports sitting
// exactly on the device boundary remain routable.
func (g *Grid) CellOf(p Point) Cell {
	col := int((p.X - g.bounds.Min.X) / g.pitch)
	row := int((p.Y - g.bounds.Min.Y) / g.pitch)
	if col < 0 {
		col = 0
	}
	if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return Cell{Col: col, Row: row}
}

// CenterOf maps a cell back to the device-space point at its center.
func (g *Grid) CenterOf(c Cell) Point {
	return Point{
		X: g.bounds.Min.X + int64(c.Col)*g.pitch + g.pitch/2,
		Y: g.bounds.Min.Y + int64(c.Row)*g.pitch + g.pitch/2,
	}
}

// Block marks the single cell c as occupied. Out-of-bounds cells are ignored.
func (g *Grid) Block(c Cell) {
	if g.InBounds(c) {
		g.blocked[g.index(c)] = true
	}
}

// Unblock clears the occupied mark on c. Out-of-bounds cells are ignored.
func (g *Grid) Unblock(c Cell) {
	if g.InBounds(c) {
		g.blocked[g.index(c)] = false
	}
}

// Blocked reports whether c is occupied. Out-of-bounds cells count as
// blocked so that router neighbor expansion never escapes the grid.
func (g *Grid) Blocked(c Cell) bool {
	if !g.InBounds(c) {
		return true
	}
	return g.blocked[g.index(c)]
}

// BlockRect marks every cell intersecting r (in device space) as occupied.
// It returns the number of cells newly blocked.
func (g *Grid) BlockRect(r Rect) int {
	clipped := r.Intersect(g.bounds)
	if clipped.Empty() {
		return 0
	}
	lo := g.CellOf(clipped.Min)
	// Max is exclusive: back off one micrometer to find the last covered cell.
	hi := g.CellOf(Point{clipped.Max.X - 1, clipped.Max.Y - 1})
	n := 0
	for row := lo.Row; row <= hi.Row; row++ {
		for col := lo.Col; col <= hi.Col; col++ {
			i := row*g.cols + col
			if !g.blocked[i] {
				g.blocked[i] = true
				n++
			}
		}
	}
	return n
}

// AddCost adds delta to the routing cost of c; negative deltas are clamped
// so the stored cost never goes below zero.
func (g *Grid) AddCost(c Cell, delta int32) {
	if !g.InBounds(c) {
		return
	}
	i := g.index(c)
	v := g.cost[i] + delta
	if v < 0 {
		v = 0
	}
	g.cost[i] = v
}

// Cost returns the additive routing cost of c (zero when out of bounds).
func (g *Grid) Cost(c Cell) int32 {
	if !g.InBounds(c) {
		return 0
	}
	return g.cost[g.index(c)]
}

// FreeCells returns the number of unblocked cells.
func (g *Grid) FreeCells() int {
	n := 0
	for _, b := range g.blocked {
		if !b {
			n++
		}
	}
	return n
}

// Neighbors4 appends the in-bounds von Neumann neighbors of c to dst and
// returns the extended slice. Using an append-style API lets routers reuse
// one scratch buffer across millions of expansions.
func (g *Grid) Neighbors4(dst []Cell, c Cell) []Cell {
	candidates := [4]Cell{
		{c.Col + 1, c.Row},
		{c.Col - 1, c.Row},
		{c.Col, c.Row + 1},
		{c.Col, c.Row - 1},
	}
	for _, n := range candidates {
		if g.InBounds(n) {
			dst = append(dst, n)
		}
	}
	return dst
}

// Clone returns a deep copy of the grid, including occupancy and cost.
func (g *Grid) Clone() *Grid {
	out := &Grid{
		bounds:  g.bounds,
		pitch:   g.pitch,
		cols:    g.cols,
		rows:    g.rows,
		blocked: make([]bool, len(g.blocked)),
		cost:    make([]int32, len(g.cost)),
	}
	copy(out.blocked, g.blocked)
	copy(out.cost, g.cost)
	return out
}
