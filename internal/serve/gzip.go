package serve

import (
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Transparent response compression. A wrapped endpoint whose client
// offers Accept-Encoding: gzip gets its body compressed through a pooled
// gzip.Writer at BestSpeed; the uncompressed bytes fed to the compressor
// are exactly the bytes an identity response would carry, so
// decompressing a gzip response reproduces the identity response
// byte-for-byte (TestGzipByteIdentity). The SSE job event stream opts
// out (wrapOpts.noCompress): its value is incremental delivery, which
// compression buffering would defeat. /metrics and /debug/trace sit
// outside the middleware entirely and are never compressed.

var gzipPool = sync.Pool{New: func() any {
	w, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
	return w
}}

var (
	gzipEncodingVal = []string{"gzip"}
	varyAcceptVal   = []string{"Accept-Encoding"}
)

// acceptsGzip reports whether the request's Accept-Encoding header names
// gzip (or a wildcard) with a nonzero quality.
func acceptsGzip(r *http.Request) bool {
	ae := r.Header.Get("Accept-Encoding")
	if ae == "" {
		return false
	}
	for ae != "" {
		var enc string
		enc, ae, _ = strings.Cut(ae, ",")
		name, params, hasParams := strings.Cut(enc, ";")
		name = strings.TrimSpace(name)
		if !strings.EqualFold(name, "gzip") && name != "*" {
			continue
		}
		if hasParams {
			if q, ok := strings.CutPrefix(strings.TrimSpace(params), "q="); ok {
				if v, err := strconv.ParseFloat(strings.TrimSpace(q), 64); err == nil && v == 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

// gzipWriter funnels a handler's writes through a gzip stream into the
// status-capturing writer. The Content-Encoding and Vary headers are set
// by the middleware before the handler runs, so whichever write flushes
// the header block first — the handler's, an error body's, or the
// compressor's own close — the response is consistently labeled.
type gzipWriter struct {
	sw *statusWriter
	gz *gzip.Writer
}

func (g *gzipWriter) Header() http.Header { return g.sw.Header() }

func (g *gzipWriter) WriteHeader(code int) { g.sw.WriteHeader(code) }

func (g *gzipWriter) Write(b []byte) (int, error) { return g.gz.Write(b) }

// Flush drains the compressor and flushes the connection, preserving
// http.Flusher for compressed endpoints.
func (g *gzipWriter) Flush() {
	_ = g.gz.Flush()
	g.sw.Flush()
}

// Note the deliberate absence of Unwrap: exposing the underlying writer
// to http.NewResponseController would let a flush bypass the compressor
// and interleave raw bytes into the gzip stream.
var _ http.Flusher = (*gzipWriter)(nil)

// runHandler invokes the endpoint handler with the pooled gzip writer's
// cleanup pinned to a defer, so the writer returns to the pool exactly
// once on every exit path. The normal path flushes the stream's trailer
// with Close (a failure means the client is gone, which the status
// already reflects); a panicking handler instead gets its mid-stream
// compressor state discarded with Reset before the writer is pooled, and
// the panic continues to net/http's connection recovery. Without the
// reset-on-panic, a later request could Get a writer still holding
// buffered state and a dangling output reference.
func runHandler(ctx context.Context, h apiHandler, hw http.ResponseWriter, r *http.Request, gzw *gzipWriter) {
	if gzw != nil {
		defer func() {
			p := recover()
			if p != nil {
				gzw.gz.Reset(io.Discard)
			} else {
				_ = gzw.gz.Close()
			}
			gzipPool.Put(gzw.gz)
			if p != nil {
				panic(p)
			}
		}()
	}
	if err := h(hw, r); err != nil {
		writeError(ctx, hw, r, err)
	}
}
