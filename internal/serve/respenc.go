package serve

import (
	"strconv"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/stats"
)

// Hand encoders for the cached response shapes. Each append function
// produces exactly the bytes json.Marshal would for the same value —
// pinned by TestResponseEncodersMatchStd — writing into a pooled scratch
// buffer instead of allocating through reflection. The entry
// materialization then makes the one allocation the cache actually
// needs: a right-sized owned body.

var encScratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// entryFromScratch finishes a hand-encoded body into a cache entry: one
// right-sized copy out of the scratch, plus the trailing newline every
// JSON response body carries.
func entryFromScratch(b []byte) cache.Entry {
	body := make([]byte, len(b)+1)
	copy(body, b)
	body[len(b)] = '\n'
	return cache.Entry{ContentType: "application/json", Body: body}
}

func appendValidateResponse(dst []byte, v *validateResponse) []byte {
	dst = append(dst, `{"device":`...)
	dst = core.AppendJSONString(dst, v.Device)
	dst = append(dst, `,"ok":`...)
	dst = strconv.AppendBool(dst, v.OK)
	dst = append(dst, `,"errors":`...)
	dst = strconv.AppendInt(dst, int64(v.Errors), 10)
	dst = append(dst, `,"warnings":`...)
	dst = strconv.AppendInt(dst, int64(v.Warnings), 10)
	dst = append(dst, `,"diagnostics":`...)
	if v.Diagnostics == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i := range v.Diagnostics {
			if i > 0 {
				dst = append(dst, ',')
			}
			d := &v.Diagnostics[i]
			dst = append(dst, `{"severity":`...)
			dst = core.AppendJSONString(dst, d.Severity)
			dst = append(dst, `,"code":`...)
			dst = core.AppendJSONString(dst, d.Code)
			dst = append(dst, `,"path":`...)
			dst = core.AppendJSONString(dst, d.Path)
			dst = append(dst, `,"message":`...)
			dst = core.AppendJSONString(dst, d.Message)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if len(v.Schema) > 0 {
		dst = append(dst, `,"schema":`...)
		dst = appendStringArray(dst, v.Schema)
	}
	return append(dst, '}')
}

func appendConvertResponse(dst []byte, v *convertResponse) []byte {
	dst = append(dst, `{"target":`...)
	dst = core.AppendJSONString(dst, v.Target)
	if v.Output != "" {
		dst = append(dst, `,"output":`...)
		dst = core.AppendJSONString(dst, v.Output)
	}
	if len(v.Device) > 0 {
		dst = append(dst, `,"device":`...)
		dst = core.AppendCompactJSON(dst, v.Device)
	}
	dst = append(dst, `,"lossless":`...)
	dst = strconv.AppendBool(dst, v.Lossless)
	if len(v.Notes) > 0 {
		dst = append(dst, `,"notes":`...)
		dst = appendStringArray(dst, v.Notes)
	}
	return append(dst, '}')
}

func appendPNRResponse(dst []byte, v *pnrResponse) ([]byte, error) {
	dst = append(dst, `{"device":`...)
	if len(v.Device) == 0 {
		dst = append(dst, `null`...)
	} else {
		dst = core.AppendCompactJSON(dst, v.Device)
	}
	dst = append(dst, `,"seed":`...)
	dst = strconv.AppendUint(dst, v.Seed, 10)
	dst = append(dst, `,"placer":`...)
	dst = core.AppendJSONString(dst, v.Placer)
	dst = append(dst, `,"router":`...)
	dst = core.AppendJSONString(dst, v.Router)
	dst = append(dst, `,"place":{"hpwl_um":`...)
	dst = strconv.AppendInt(dst, v.Place.HPWL, 10)
	dst = append(dst, `,"area_um2":`...)
	dst = strconv.AppendInt(dst, v.Place.Area, 10)
	dst = append(dst, `,"overlaps":`...)
	dst = strconv.AppendInt(dst, int64(v.Place.Overlaps), 10)
	dst = append(dst, `,"placed":`...)
	dst = strconv.AppendInt(dst, int64(v.Place.Placed), 10)
	dst = append(dst, `},"route":{"routed":`...)
	dst = strconv.AppendInt(dst, int64(v.Route.Routed), 10)
	dst = append(dst, `,"total":`...)
	dst = strconv.AppendInt(dst, int64(v.Route.Total), 10)
	dst = append(dst, `,"completion_rate":`...)
	dst, err := core.AppendJSONFloat(dst, v.Route.Completion)
	if err != nil {
		return nil, err
	}
	dst = append(dst, `,"total_length_um":`...)
	dst = strconv.AppendInt(dst, v.Route.Length, 10)
	dst = append(dst, `,"expansions":`...)
	dst = strconv.AppendInt(dst, int64(v.Route.Expansions), 10)
	dst = append(dst, `,"rounds":`...)
	dst = strconv.AppendInt(dst, int64(v.Route.Rounds), 10)
	return append(dst, `}}`...), nil
}

func appendStatsProfile(dst []byte, v *stats.Profile) ([]byte, error) {
	dst = append(dst, `{"name":`...)
	dst = core.AppendJSONString(dst, v.Name)
	dst = append(dst, `,"class":`...)
	dst = core.AppendJSONString(dst, v.Class)
	dst = append(dst, `,"layers":`...)
	dst = strconv.AppendInt(dst, int64(v.Layers), 10)
	dst = append(dst, `,"components":`...)
	dst = strconv.AppendInt(dst, int64(v.Components), 10)
	dst = append(dst, `,"connections":`...)
	dst = strconv.AppendInt(dst, int64(v.Connections), 10)
	dst = append(dst, `,"ports":`...)
	dst = strconv.AppendInt(dst, int64(v.Ports), 10)
	dst = append(dst, `,"valves":`...)
	dst = strconv.AppendInt(dst, int64(v.Valves), 10)
	dst = append(dst, `,"multi_sink":`...)
	dst = strconv.AppendInt(dst, int64(v.MultiSink), 10)
	dst = append(dst, `,"avg_degree":`...)
	dst, err := core.AppendJSONFloat(dst, v.AvgDegree)
	if err != nil {
		return nil, err
	}
	dst = append(dst, `,"max_degree":`...)
	dst = strconv.AppendInt(dst, int64(v.MaxDegree), 10)
	dst = append(dst, `,"diameter":`...)
	dst = strconv.AppendInt(dst, int64(v.Diameter), 10)
	return append(dst, '}'), nil
}

func appendStringArray(dst []byte, ss []string) []byte {
	dst = append(dst, '[')
	for i, s := range ss {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = core.AppendJSONString(dst, s)
	}
	return append(dst, ']')
}
