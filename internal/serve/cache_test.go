package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// newCachedServer builds a server with the result cache enabled and
// returns it alongside its handler, so tests can reach the cache stats.
func newCachedServer(t *testing.T, cfg Config) (*Server, http.Handler) {
	t.Helper()
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = BaseSeedDefault
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 16 << 20
	}
	s := New(cfg)
	return s, s.Handler()
}

// TestCacheMissThenHitByteIdentical is the acceptance check on the
// tentpole: the first request computes (miss), the second replays (hit),
// and the cached bytes equal both the fresh bytes and the bytes a
// cache-less server computes for the same body.
func TestCacheMissThenHitByteIdentical(t *testing.T) {
	const body = `{"bench":"aquaflex_3b","placer":"greedy"}`
	_, cached := newCachedServer(t, Config{Workers: 2})
	first := do(t, cached, "POST", "/v1/pnr", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first: status = %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get(cacheHeader); got != "miss" {
		t.Errorf("first %s = %q, want miss", cacheHeader, got)
	}
	second := do(t, cached, "POST", "/v1/pnr", body)
	if second.Code != http.StatusOK {
		t.Fatalf("second: status = %d: %s", second.Code, second.Body)
	}
	if got := second.Header().Get(cacheHeader); got != "hit" {
		t.Errorf("second %s = %q, want hit", cacheHeader, got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cached response differs from freshly computed response")
	}
	// A cache-less server must produce the same bytes: the cache can only
	// replay what determinism already guarantees.
	plain := do(t, newTestServer(2), "POST", "/v1/pnr", body)
	if plain.Code != http.StatusOK {
		t.Fatalf("uncached: status = %d: %s", plain.Code, plain.Body)
	}
	if h := plain.Header().Get(cacheHeader); h != "" {
		t.Errorf("cache-off server sent %s = %q, want none", cacheHeader, h)
	}
	if !bytes.Equal(plain.Body.Bytes(), first.Body.Bytes()) {
		t.Error("cache-on and cache-off responses differ")
	}
}

// TestCacheHammerSingleExecution drives one request body from many
// goroutines at once; under -race this doubles as the data-race check on
// the cache. Exactly one pipeline execution may happen (the singleflight
// counter), and every response must be a byte-identical 200.
func TestCacheHammerSingleExecution(t *testing.T) {
	s, h := newCachedServer(t, Config{Workers: 4})
	const body = `{"bench":"aquaflex_3b","placer":"greedy"}`
	const goroutines = 12
	bodies := make([][]byte, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := do(t, h, "POST", "/v1/pnr", body)
			if w.Code != http.StatusOK {
				t.Errorf("goroutine %d: status %d: %s", g, w.Code, w.Body)
				return
			}
			if o := w.Header().Get(cacheHeader); o != "miss" && o != "hit" && o != "coalesced" {
				t.Errorf("goroutine %d: %s = %q", g, cacheHeader, o)
			}
			bodies[g] = w.Body.Bytes()
		}(g)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if bodies[i] != nil && !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs under concurrency", i)
		}
	}
	st := s.cache.Stats()
	if st.Misses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 pipeline execution", st.Misses)
	}
	if st.Hits+st.Coalesced != goroutines-1 {
		t.Errorf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, goroutines-1)
	}
	text := do(t, h, "GET", "/metrics", "").Body.String()
	for _, needle := range []string{
		`parchmint_cache_requests_total{endpoint="pnr",outcome="miss"} 1`,
		"# TYPE parchmint_cache_evictions_total counter",
		"parchmint_cache_entries 1",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("metrics missing %q\n%s", needle, text)
		}
	}
}

// TestCacheKeyCanonicalization: request bodies that decode to the same
// envelope — reordered fields, extra whitespace, unknown fields — share
// one cache entry, because the key hashes the canonical form.
func TestCacheKeyCanonicalization(t *testing.T) {
	s, h := newCachedServer(t, Config{Workers: 2})
	variants := []string{
		`{"bench":"rotary_pcr"}`,
		`{ "bench" : "rotary_pcr" }`,
		`{"bench":"rotary_pcr","unknown_field":42}`,
	}
	var first []byte
	for i, body := range variants {
		w := do(t, h, "POST", "/v1/stats", body)
		if w.Code != http.StatusOK {
			t.Fatalf("variant %d: status = %d: %s", i, w.Code, w.Body)
		}
		want := "hit"
		if i == 0 {
			want = "miss"
			first = w.Body.Bytes()
		} else if !bytes.Equal(w.Body.Bytes(), first) {
			t.Errorf("variant %d body differs", i)
		}
		if got := w.Header().Get(cacheHeader); got != want {
			t.Errorf("variant %d: %s = %q, want %q", i, cacheHeader, got, want)
		}
	}
	if st := s.cache.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1 shared entry", st.Entries)
	}
}

// TestCacheKeySeparatesOptionsAndSeeds: envelopes that change the output
// (engine choice, explicit seed, endpoint) must not share entries.
func TestCacheKeySeparatesOptionsAndSeeds(t *testing.T) {
	s, h := newCachedServer(t, Config{Workers: 2})
	for i, req := range []struct{ path, body string }{
		{"/v1/pnr", `{"bench":"aquaflex_3b","placer":"greedy"}`},
		{"/v1/pnr", `{"bench":"aquaflex_3b","placer":"greedy","seed":7}`},
		{"/v1/stats", `{"bench":"aquaflex_3b"}`},
	} {
		w := do(t, h, "POST", req.path, req.body)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status = %d: %s", i, w.Code, w.Body)
		}
		if got := w.Header().Get(cacheHeader); got != "miss" {
			t.Errorf("request %d: %s = %q, want miss", i, cacheHeader, got)
		}
	}
	if st := s.cache.Stats(); st.Entries != 3 {
		t.Errorf("entries = %d, want 3 distinct entries", st.Entries)
	}
}

// TestCacheErrorResponsesNotCached: failures pass through uncached, so a
// transient error cannot be replayed to later healthy requests.
func TestCacheErrorResponsesNotCached(t *testing.T) {
	s, h := newCachedServer(t, Config{Workers: 2})
	for rep := 0; rep < 2; rep++ {
		w := do(t, h, "POST", "/v1/stats", `{"bench":"nope"}`)
		if w.Code != http.StatusNotFound {
			t.Fatalf("rep %d: status = %d", rep, w.Code)
		}
		if hdr := w.Header().Get(cacheHeader); hdr != "" {
			t.Errorf("rep %d: error response carries %s = %q", rep, cacheHeader, hdr)
		}
	}
	if st := s.cache.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d after errors only, want 0", st.Entries)
	}
}

// saturate occupies every worker slot and fills the wait queue so the
// next admission sheds. It returns a release func that drains everything.
func saturate(t *testing.T, s *Server, queued int) func() {
	t.Helper()
	release := make(chan struct{})
	var wg sync.WaitGroup
	workers := s.gate.Workers()
	for i := 0; i < workers; i++ {
		held := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.gate.Do(context.Background(), "hold", func(uint64) error {
				close(held)
				<-release
				return nil
			})
		}()
		<-held
	}
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.gate.Do(context.Background(), "queued", func(uint64) error { return nil })
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.Waiting() < queued {
		if time.Now().After(deadline) {
			t.Fatalf("gate never reached %d waiters", queued)
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		close(release)
		wg.Wait()
	}
}

// TestShedding429 pins the load-shedding contract: a request that would
// queue past the configured depth is refused with 429, a Retry-After
// hint, the stable "overloaded" error code, and a shed counter sample.
func TestShedding429(t *testing.T) {
	s, h := newCachedServer(t, Config{Workers: 1, QueueDepth: 1})
	defer saturate(t, s, 1)()
	w := do(t, h, "POST", "/v1/pnr", `{"bench":"rotary_pcr"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", w.Code, w.Body)
	}
	ra := w.Header().Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", ra)
	}
	var eb struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Code != "overloaded" {
		t.Errorf("error body = %s (err %v), want code overloaded", w.Body, err)
	}
	text := do(t, h, "GET", "/metrics", "").Body.String()
	if !strings.Contains(text, `parchmint_shed_total{endpoint="pnr"} 1`) {
		t.Errorf("metrics missing shed counter:\n%s", text)
	}
	if !strings.Contains(text, "parchmint_queue_waiting 1") {
		t.Errorf("metrics missing queue_waiting gauge:\n%s", text)
	}
}

// TestHealthzUnderSaturatedGate: health and catalog endpoints never gate
// on the worker pool, so probes keep answering while the pipeline sheds.
func TestHealthzUnderSaturatedGate(t *testing.T) {
	s, h := newCachedServer(t, Config{Workers: 1, QueueDepth: 1, RequestTimeout: time.Hour})
	defer saturate(t, s, 1)()
	if w := do(t, h, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Errorf("healthz under saturation: status = %d", w.Code)
	}
	if w := do(t, h, "GET", "/v1/bench", ""); w.Code != http.StatusOK {
		t.Errorf("bench list under saturation: status = %d", w.Code)
	}
	// The pipeline itself sheds, proving the gate really is saturated.
	if w := do(t, h, "POST", "/v1/pnr", `{"bench":"rotary_pcr"}`); w.Code != http.StatusTooManyRequests {
		t.Errorf("pnr under saturation: status = %d, want 429", w.Code)
	}
}

// upgradableWriter wraps the recorder with the optional interfaces real
// network ResponseWriters implement.
type upgradableWriter struct {
	*httptest.ResponseRecorder
	readFrom bool
}

func (u *upgradableWriter) ReadFrom(src io.Reader) (int64, error) {
	u.readFrom = true
	return io.Copy(u.ResponseRecorder.Body, src)
}

// TestStatusWriterPreservesUpgrades pins the middleware interface-upgrade
// fix: wrapping must not hide http.Flusher (streaming) or io.ReaderFrom
// (sendfile) from handlers, whether asserted directly or discovered via
// http.NewResponseController.
func TestStatusWriterPreservesUpgrades(t *testing.T) {
	s := New(Config{Workers: 1})
	u := &upgradableWriter{ResponseRecorder: httptest.NewRecorder()}
	h := s.wrap("probe", func(w http.ResponseWriter, r *http.Request) error {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("wrap hides http.Flusher")
		}
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("ResponseController.Flush: %v", err)
		}
		rf, ok := w.(io.ReaderFrom)
		if !ok {
			t.Fatal("wrap hides io.ReaderFrom")
		}
		if _, err := rf.ReadFrom(strings.NewReader("streamed")); err != nil {
			t.Errorf("ReadFrom: %v", err)
		}
		return nil
	})
	h.ServeHTTP(u, httptest.NewRequest("GET", "/probe", nil))
	if !u.Flushed {
		t.Error("flush did not reach the underlying writer")
	}
	if !u.readFrom {
		t.Error("ReadFrom did not reach the underlying writer")
	}
	if got := u.Body.String(); got != "streamed" {
		t.Errorf("body = %q, want streamed", got)
	}
	if u.Code != http.StatusOK {
		t.Errorf("status = %d, want 200", u.Code)
	}
}

// TestWrapExemptions pins the middleware admission fixes: body-less GET
// endpoints skip the body limiter, health endpoints skip the pipeline
// deadline, and regular endpoints keep both.
func TestWrapExemptions(t *testing.T) {
	s := New(Config{Workers: 1, MaxBodyBytes: 8, RequestTimeout: time.Hour})
	probe := func(o wrapOpts) (hasDeadline bool, readErr error) {
		h := s.wrapWith("probe", func(w http.ResponseWriter, r *http.Request) error {
			_, hasDeadline = r.Context().Deadline()
			_, readErr = io.ReadAll(r.Body)
			return nil
		}, o)
		h.ServeHTTP(httptest.NewRecorder(),
			httptest.NewRequest("POST", "/probe", strings.NewReader(strings.Repeat("x", 64))))
		return
	}
	if hasDeadline, readErr := probe(wrapOpts{}); !hasDeadline {
		t.Error("default wrap lost the pipeline deadline")
	} else if readErr == nil {
		t.Error("default wrap did not enforce the body limit")
	}
	if hasDeadline, _ := probe(wrapOpts{noTimeout: true}); hasDeadline {
		t.Error("noTimeout wrap still sets a pipeline deadline")
	}
	if _, readErr := probe(wrapOpts{noBodyLimit: true}); readErr != nil {
		t.Errorf("noBodyLimit wrap still limits bodies: %v", readErr)
	}
}

var bootIDPattern = regexp.MustCompile(`^req-[0-9a-f]{8}-\d{8,}$`)

// TestRequestIDsCarryBootNonce pins the restart-collision fix: IDs embed
// a per-boot nonce, so two server instances (two boots) mint disjoint ID
// spaces even though both sequences restart at 1.
func TestRequestIDsCarryBootNonce(t *testing.T) {
	a := New(Config{Workers: 1})
	b := New(Config{Workers: 1})
	idOf := func(s *Server) string {
		w := do(t, s.Handler(), "GET", "/healthz", "")
		return w.Header().Get("X-Request-Id")
	}
	idA, idB := idOf(a), idOf(b)
	for _, id := range []string{idA, idB} {
		if !bootIDPattern.MatchString(id) {
			t.Errorf("X-Request-Id = %q, want req-<8 hex>-<seq>", id)
		}
	}
	if idA == idB {
		t.Errorf("first IDs of two boots collide: %q", idA)
	}
}
