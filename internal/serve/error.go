package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/validate"
)

// StatusClientClosedRequest is the nonstandard (nginx-convention) status
// reported when the client cancels a request mid-pipeline.
const StatusClientClosedRequest = 499

// errBadRequest marks malformed request envelopes (as opposed to
// malformed device payloads, which carry *core.ParseError).
var errBadRequest = errors.New("bad request")

// errNotFound marks absent serve-owned resources (flight records) the
// way bench.ErrNotFound and job.ErrNotFound mark theirs.
var errNotFound = errors.New("not found")

// OverloadedError reports that admission shed the request instead of
// queueing it: the worker gate's wait queue was full, or the estimated
// queueing delay already exceeded the request's deadline. It maps to 429
// with a Retry-After header carrying the wait hint.
type OverloadedError struct {
	// RetryAfter is the client guidance surfaced in the Retry-After
	// header; always at least one second.
	RetryAfter time.Duration
	cause      error
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("service overloaded, retry in %s", e.RetryAfter)
}

// Code returns the stable machine-readable identifier for error bodies.
func (e *OverloadedError) Code() string { return "overloaded" }

// Unwrap exposes the underlying gate saturation error.
func (e *OverloadedError) Unwrap() error { return e.cause }

// retryAfterHint rounds a wait estimate up to whole seconds (the
// Retry-After unit), with a floor of one second so a cold estimator never
// tells clients to hammer immediately.
func retryAfterHint(estimate time.Duration) time.Duration {
	if estimate <= 0 {
		return time.Second
	}
	return time.Duration((estimate + time.Second - 1) / time.Second * time.Second)
}

// retryAfterMS is the single source both renderings of the retry hint
// derive from: the stored duration in milliseconds, floored to one second
// so no surface ever tells a client to retry immediately. The Retry-After
// header is retryAfterSeconds — the ceiling of this value in seconds —
// which pins header == ceil(retry_after_ms/1000) by construction; before
// this derivation existed, the header truncated (900ms rendered as
// "Retry-After: 0" while the body said 900) and the two agreed only when
// constructors happened to pre-round.
func (e *OverloadedError) retryAfterMS() int64 {
	if ms := e.RetryAfter.Milliseconds(); ms > 0 {
		return ms
	}
	return 1000
}

// retryAfterSeconds renders the hint for the Retry-After header: whole
// seconds, rounded up, never below 1.
func (e *OverloadedError) retryAfterSeconds() int {
	return int((e.retryAfterMS() + 999) / 1000)
}

// coded is implemented by the typed pipeline errors; Code() is the stable
// machine-readable identifier surfaced in error response bodies.
type coded interface{ Code() string }

// httpStatus maps a pipeline error onto an HTTP status. The typed error
// hierarchy does the classification: parse failures are the client's
// fault (400), semantically invalid devices are unprocessable (422),
// unknown benchmarks are absent resources (404), oversized bodies are 413,
// shed admissions are 429, and context expiry distinguishes server
// deadline (504) from client cancellation (499). Anything else is a
// server fault (500).
func httpStatus(err error) int {
	var tooBig *http.MaxBytesError
	var over *OverloadedError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &over):
		return http.StatusTooManyRequests
	case errors.Is(err, bench.ErrNotFound), errors.Is(err, job.ErrNotFound),
		errors.Is(err, errNotFound):
		return http.StatusNotFound
	case errors.Is(err, job.ErrNotFinished):
		return http.StatusConflict
	case errors.Is(err, job.ErrTooManyJobs):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrParse), errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, validate.ErrInvalid):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// errorBody is the JSON rendering of a failed request: the human-readable
// message, the stable machine code, the request ID for log correlation,
// and — on overload — the retry hint in milliseconds, mirroring the
// Retry-After header for surfaces (batch slots, job documents) where
// headers do not exist.
type errorBody struct {
	Error        string `json:"error"`
	Code         string `json:"code,omitempty"`
	RequestID    string `json:"request_id,omitempty"`
	TraceID      string `json:"trace_id,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// errorCode resolves the stable machine code for err: the typed error's
// own Code() when it defines one, else a per-status fallback, so every
// non-2xx body carries a code.
func errorCode(err error, status int) string {
	var c coded
	if errors.As(err, &c) {
		return c.Code()
	}
	switch status {
	case http.StatusBadRequest:
		return "bad-request"
	case http.StatusNotFound:
		return "not-found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "body-too-large"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusTooManyRequests:
		return "overloaded"
	case StatusClientClosedRequest:
		return "client-closed"
	case http.StatusGatewayTimeout:
		return "deadline-exceeded"
	default:
		return "internal"
	}
}

// newErrorBody renders err into the standard error envelope, stamping the
// context's request ID and trace ID so clients can quote either back at
// the logs, the trace ring, or the flight recorder.
func newErrorBody(ctx context.Context, err error) errorBody {
	status := httpStatus(err)
	body := errorBody{
		Error:     err.Error(),
		Code:      errorCode(err, status),
		RequestID: obs.RequestID(ctx),
		TraceID:   obs.TraceID(ctx),
	}
	var over *OverloadedError
	if errors.As(err, &over) {
		body.RetryAfterMS = over.retryAfterMS()
	}
	return body
}

// writeError renders err as a JSON error response. A cancelled client is
// likely gone, but the write is attempted anyway — it is harmless and
// keeps the status visible to tests and proxies. Shed requests carry a
// Retry-After header so well-behaved clients back off instead of
// retrying into the same saturated gate.
func writeError(ctx context.Context, w http.ResponseWriter, r *http.Request, err error) {
	var over *OverloadedError
	if errors.As(err, &over) {
		w.Header().Set("Retry-After", strconv.Itoa(over.retryAfterSeconds()))
	}
	_ = writeJSON(w, r, httpStatus(err), newErrorBody(ctx, err))
}

// withTimeout bounds a request context; d <= 0 means no limit.
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}
