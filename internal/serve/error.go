package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/validate"
)

// StatusClientClosedRequest is the nonstandard (nginx-convention) status
// reported when the client cancels a request mid-pipeline.
const StatusClientClosedRequest = 499

// errBadRequest marks malformed request envelopes (as opposed to
// malformed device payloads, which carry *core.ParseError).
var errBadRequest = errors.New("bad request")

// coded is implemented by the typed pipeline errors; Code() is the stable
// machine-readable identifier surfaced in error response bodies.
type coded interface{ Code() string }

// httpStatus maps a pipeline error onto an HTTP status. The typed error
// hierarchy does the classification: parse failures are the client's
// fault (400), semantically invalid devices are unprocessable (422),
// unknown benchmarks are absent resources (404), oversized bodies are 413,
// and context expiry distinguishes server deadline (504) from client
// cancellation (499). Anything else is a server fault (500).
func httpStatus(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, bench.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, core.ErrParse), errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, validate.ErrInvalid):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// errorBody is the JSON rendering of a failed request.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// writeError renders err as a JSON error response. A cancelled client is
// likely gone, but the write is attempted anyway — it is harmless and
// keeps the status visible to tests and proxies.
func writeError(w http.ResponseWriter, err error) {
	body := errorBody{Error: err.Error()}
	var c coded
	if errors.As(err, &c) {
		body.Code = c.Code()
	}
	_ = writeJSON(w, httpStatus(err), body)
}

// withTimeout bounds a request context; d <= 0 means no limit.
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}
