package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/runner"
)

// maxBatchItems caps one batch request; larger workloads should shard
// across requests so a single body cannot monopolize the pool forever.
const maxBatchItems = 256

// batchItem is one pipeline request inside a batch: the shared envelope
// plus the operation selecting the endpoint logic to run it through.
type batchItem struct {
	// Op selects the operation: "validate", "convert", "pnr", or "stats".
	// ("render" is excluded: its SVG body is not JSON-embeddable.)
	Op string `json:"op"`
	request
}

type batchRequest struct {
	Items []batchItem `json:"items"`
}

// batchResult is one item's outcome, in the same slot order as the
// request. Exactly one of Body and Error is set; Status carries the HTTP
// status the item would have received as a standalone request.
type batchResult struct {
	Op     string          `json:"op"`
	Status int             `json:"status"`
	Cache  string          `json:"cache,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	Error  *errorBody      `json:"error,omitempty"`
}

type batchResponse struct {
	Items []batchResult `json:"items"`
}

// handleBatch fans a list of pipeline requests through the worker pool.
// Items run concurrently (at most the gate's worker count at once) but
// results land in request order, and each item takes exactly the path its
// standalone endpoint would: the same seed derivation, the same result
// cache (identical items inside one batch coalesce to a single
// computation), the same admission gate and load shedding. Item failures
// are values in the response — the batch itself is a 200 unless the
// envelope is malformed.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) error {
	body, err := requestBody(r)
	if err != nil {
		return badBody("batch body", err)
	}
	var breq batchRequest
	if err := parseBatchRequest(body, &breq); err != nil {
		return badBody("batch body", err)
	}
	if len(breq.Items) == 0 {
		return fmt.Errorf("%w: batch requires at least one item", errBadRequest)
	}
	if len(breq.Items) > maxBatchItems {
		return fmt.Errorf("%w: batch of %d items exceeds the limit of %d", errBadRequest, len(breq.Items), maxBatchItems)
	}
	ctx := r.Context()
	results := make([]batchResult, len(breq.Items))
	tasks := make([]runner.Task, len(breq.Items))
	for i := range breq.Items {
		i := i
		tasks[i] = runner.Task{
			ID: fmt.Sprintf("item-%d", i),
			Run: func(runner.Task) error {
				results[i] = s.runBatchItem(ctx, &breq.Items[i])
				return nil
			},
		}
	}
	// Item errors are captured in the result slots, so the pool never
	// reports one; its only job here is bounded, order-stable fan-out.
	_ = runner.NewPool(s.gate.Workers()).Run(tasks)
	return writeJSON(w, r, http.StatusOK, batchResponse{Items: results})
}

// parseBatchRequest decodes the batch envelope with json.Decoder
// semantics (see parseRequest). Each item flattens the shared request
// envelope plus its "op" member, exactly as the embedded-struct
// reflective decoding did.
func parseBatchRequest(data []byte, breq *batchRequest) error {
	p := core.NewParser(data)
	defer p.Release()
	if p.AtEOF() {
		return io.EOF
	}
	if p.TryNull() {
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !core.FoldEq(key, "ITEMS") {
			if err := p.SkipValue(); err != nil {
				return err
			}
			continue
		}
		if p.TryNull() {
			breq.Items = nil
			continue
		}
		if err := p.BeginArray(); err != nil {
			return err
		}
		items := breq.Items[:0]
		afirst := true
		for {
			more, err := p.ArrayNext(&afirst)
			if err != nil {
				return err
			}
			if !more {
				break
			}
			items = append(items, batchItem{})
			if err := parseBatchItem(p, &items[len(items)-1]); err != nil {
				return err
			}
		}
		if items == nil {
			items = make([]batchItem, 0)
		}
		breq.Items = items
	}
}

func parseBatchItem(p *core.Parser, item *batchItem) error {
	if p.TryNull() {
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if core.FoldEq(key, "OP") {
			if err := envString(p, &item.Op); err != nil {
				return err
			}
			continue
		}
		if err := applyRequestField(p, key, &item.request); err != nil {
			return err
		}
	}
}

// runBatchItem executes one item through the shared operation table and
// cached-execution path, folding failures into the result value.
func (s *Server) runBatchItem(ctx context.Context, item *batchItem) batchResult {
	fail := func(err error) batchResult {
		body := newErrorBody(ctx, err)
		return batchResult{Op: item.Op, Status: httpStatus(err), Error: &body}
	}
	op, err := operationByName(item.Op)
	if err != nil {
		return fail(err)
	}
	if !op.Batchable {
		return fail(fmt.Errorf("%w: op %q is not batchable (its body does not embed in JSON); call its endpoint or submit a job", errBadRequest, item.Op))
	}
	if err := op.validate(&item.request); err != nil {
		return fail(err)
	}
	ent, outcome, err := s.runCached(ctx, op, &item.request)
	if err != nil {
		return fail(err)
	}
	return batchResult{Op: item.Op, Status: http.StatusOK, Cache: outcome, Body: json.RawMessage(ent.Body)}
}
