package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/runner"
)

// maxBatchItems caps one batch request; larger workloads should shard
// across requests so a single body cannot monopolize the pool forever.
const maxBatchItems = 256

// batchItem is one pipeline request inside a batch: the shared envelope
// plus the operation selecting the endpoint logic to run it through.
type batchItem struct {
	// Op selects the operation: "validate", "convert", "pnr", or "stats".
	// ("render" is excluded: its SVG body is not JSON-embeddable.)
	Op string `json:"op"`
	request
}

type batchRequest struct {
	Items []batchItem `json:"items"`
}

// batchResult is one item's outcome, in the same slot order as the
// request. Exactly one of Body and Error is set; Status carries the HTTP
// status the item would have received as a standalone request.
type batchResult struct {
	Op     string          `json:"op"`
	Status int             `json:"status"`
	Cache  string          `json:"cache,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	Error  *errorBody      `json:"error,omitempty"`
}

type batchResponse struct {
	Items []batchResult `json:"items"`
}

// handleBatch fans a list of pipeline requests through the worker pool.
// Items run concurrently (at most the gate's worker count at once) but
// results land in request order, and each item takes exactly the path its
// standalone endpoint would: the same seed derivation, the same result
// cache (identical items inside one batch coalesce to a single
// computation), the same admission gate and load shedding. Item failures
// are values in the response — the batch itself is a 200 unless the
// envelope is malformed.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) error {
	var breq batchRequest
	if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return err
		}
		return fmt.Errorf("%w: decoding batch body: %v", errBadRequest, err)
	}
	if len(breq.Items) == 0 {
		return fmt.Errorf("%w: batch requires at least one item", errBadRequest)
	}
	if len(breq.Items) > maxBatchItems {
		return fmt.Errorf("%w: batch of %d items exceeds the limit of %d", errBadRequest, len(breq.Items), maxBatchItems)
	}
	ctx := r.Context()
	results := make([]batchResult, len(breq.Items))
	tasks := make([]runner.Task, len(breq.Items))
	for i := range breq.Items {
		i := i
		tasks[i] = runner.Task{
			ID: fmt.Sprintf("item-%d", i),
			Run: func(runner.Task) error {
				results[i] = s.runBatchItem(ctx, &breq.Items[i])
				return nil
			},
		}
	}
	// Item errors are captured in the result slots, so the pool never
	// reports one; its only job here is bounded, order-stable fan-out.
	_ = runner.NewPool(s.gate.Workers()).Run(tasks)
	return writeJSON(w, http.StatusOK, batchResponse{Items: results})
}

// runBatchItem executes one item through the shared operation table and
// cached-execution path, folding failures into the result value.
func (s *Server) runBatchItem(ctx context.Context, item *batchItem) batchResult {
	fail := func(err error) batchResult {
		body := newErrorBody(ctx, err)
		return batchResult{Op: item.Op, Status: httpStatus(err), Error: &body}
	}
	op, err := operationByName(item.Op)
	if err != nil {
		return fail(err)
	}
	if !op.Batchable {
		return fail(fmt.Errorf("%w: op %q is not batchable (its body does not embed in JSON); call its endpoint or submit a job", errBadRequest, item.Op))
	}
	if err := op.validate(&item.request); err != nil {
		return fail(err)
	}
	ent, outcome, err := s.runCached(ctx, op, &item.request)
	if err != nil {
		return fail(err)
	}
	return batchResult{Op: item.Op, Status: http.StatusOK, Cache: outcome, Body: json.RawMessage(ent.Body)}
}
