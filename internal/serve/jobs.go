package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/obs"
)

// The async job surface: POST /v1/jobs submits one operation from the
// shared table for background execution and answers immediately with the
// job document; GET /v1/jobs/{id} polls it; GET /v1/jobs/{id}/events
// streams lifecycle transitions and live solver progress as Server-Sent
// Events; GET /v1/jobs/{id}/result replays the materialized bytes; DELETE
// /v1/jobs/{id} cancels. Jobs run through exactly the cached execution
// path the synchronous endpoints use — same gate, same singleflight, same
// content address — so a job whose key is already cached completes
// instantly and identical jobs coalesce onto one computation.

// jobSubmitRequest is the POST /v1/jobs body: the shared envelope plus
// the operation name.
type jobSubmitRequest struct {
	Op string `json:"op"`
	request
}

// jobResultDTO locates and sizes a completed job's materialized result.
type jobResultDTO struct {
	URL         string `json:"url"`
	ContentType string `json:"content_type"`
	Bytes       int    `json:"bytes"`
}

// jobErrorDTO is a failed job's stored error, in the same vocabulary the
// synchronous endpoint would have answered with.
type jobErrorDTO struct {
	Error      string `json:"error"`
	Code       string `json:"code,omitempty"`
	HTTPStatus int    `json:"http_status,omitempty"`
}

// jobDTO is the job document served by the submit, get, list, and cancel
// responses.
type jobDTO struct {
	ID       string `json:"id"`
	Op       string `json:"op"`
	Status   string `json:"status"`
	CacheKey string `json:"cache_key"`
	// Cache is the completed job's cache outcome ("hit", "miss",
	// "coalesced"); replayed-from-journal jobs report "hit".
	Cache      string        `json:"cache,omitempty"`
	CreatedAt  string        `json:"created_at,omitempty"`
	StartedAt  string        `json:"started_at,omitempty"`
	FinishedAt string        `json:"finished_at,omitempty"`
	EventsURL  string        `json:"events_url"`
	Result     *jobResultDTO `json:"result,omitempty"`
	Error      *jobErrorDTO  `json:"error,omitempty"`
}

func jobTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func jobEventsPath(id string) string { return "/v1/jobs/" + id + "/events" }
func jobResultPath(id string) string { return "/v1/jobs/" + id + "/result" }

func jobDocument(snap job.Snapshot) jobDTO {
	doc := jobDTO{
		ID:         snap.ID,
		Op:         snap.Op,
		Status:     string(snap.Status),
		CacheKey:   snap.Key,
		Cache:      snap.Outcome,
		CreatedAt:  jobTime(snap.Created),
		StartedAt:  jobTime(snap.Started),
		FinishedAt: jobTime(snap.Finished),
		EventsURL:  jobEventsPath(snap.ID),
	}
	switch snap.Status {
	case job.StatusCompleted:
		doc.Result = &jobResultDTO{
			URL:         jobResultPath(snap.ID),
			ContentType: snap.ContentType,
			Bytes:       snap.Size,
		}
	case job.StatusFailed:
		doc.Error = &jobErrorDTO{Error: snap.ErrMsg, Code: snap.ErrCode, HTTPStatus: snap.ErrStatus}
	}
	return doc
}

// jobExec is the job store's execution path: resolve the journaled
// operation name, decode the canonical envelope, attach the job's
// progress sink as a tap on the server's recorder, and run through the
// shared cached execution (gate, singleflight, LRU). Validation already
// happened at submit time, so a replayed envelope runs exactly as the
// original would have.
func (s *Server) jobExec(ctx context.Context, opName string, envelope json.RawMessage) (cache.Entry, string, error) {
	op, err := operationByName(opName)
	if err != nil {
		return cache.Entry{}, "", err
	}
	var req request
	if err := parseRequest(envelope, &req); err != nil {
		return cache.Entry{}, "", fmt.Errorf("%w: decoding job envelope: %v", errBadRequest, err)
	}
	rec := s.rec
	if prog := job.ProgressFromContext(ctx); prog != nil {
		rec = rec.WithTap(prog)
	}
	ctx = obs.WithRecorder(ctx, rec)
	return s.runCached(ctx, op, &req)
}

// handleJobSubmit accepts one operation for async execution. The job is
// journaled before the 202 is written, so an acknowledged submission
// survives an immediate crash; the response carries the job document with
// its content address, which clients can use to correlate with the
// synchronous endpoints' cache headers.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) error {
	body, err := requestBody(r)
	if err != nil {
		return badBody("job body", err)
	}
	var jreq jobSubmitRequest
	if err := parseJobSubmit(body, &jreq); err != nil {
		return badBody("job body", err)
	}
	op, err := operationByName(jreq.Op)
	if err != nil {
		return err
	}
	if err := op.validate(&jreq.request); err != nil {
		return err
	}
	// The canonical envelope is the journal's replay unit and (with the
	// op and seed) the cache address; re-encoding the decoded struct
	// drops unknown fields and formatting, exactly as cacheKey does. It
	// is an owned allocation — the journal retains it past this request,
	// so it must not alias the pooled body buffer.
	envelope, err := appendRequestJSON(nil, &jreq.request)
	if err != nil {
		return fmt.Errorf("serve: encoding job envelope: %w", err)
	}
	key := s.cacheKey(op.Name, &jreq.request)
	if s.cluster != nil {
		// Jobs route to the key's owner so the journal record, the cache
		// entry, and any coalescing all land on one node — which is what
		// makes a dead owner's journal a complete handoff unit. A failed
		// hop falls back to running the job here; determinism makes the
		// result identical either way.
		owner := s.cluster.Route(key)
		w.Header()[cluster.ShardHeader] = []string{owner}
		if s.forwardable(r, owner) &&
			s.forwardTo(w, r, owner, "application/json", jobSubmitBody(op.Name, envelope)) {
			return nil
		}
	}
	snap, err := s.jobs.Submit(op.Name, envelope, key, obs.Traceparent(r.Context()))
	if errors.Is(err, job.ErrTooManyJobs) {
		return &OverloadedError{RetryAfter: time.Second, cause: err}
	}
	if err != nil {
		return err
	}
	return writeJSON(w, r, http.StatusAccepted, jobDocument(snap))
}

// parseJobSubmit decodes the submit body with json.Decoder semantics
// (see parseRequest): the shared envelope flattened with its "op"
// member, as the embedded-struct reflective decoding did.
func parseJobSubmit(data []byte, jreq *jobSubmitRequest) error {
	p := core.NewParser(data)
	defer p.Release()
	if p.AtEOF() {
		return io.EOF
	}
	if p.TryNull() {
		return nil
	}
	if err := p.BeginObject(); err != nil {
		return err
	}
	first := true
	for {
		key, ok, err := p.NextKey(&first)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if core.FoldEq(key, "OP") {
			if err := envString(p, &jreq.Op); err != nil {
				return err
			}
			continue
		}
		if err := applyRequestField(p, key, &jreq.request); err != nil {
			return err
		}
	}
}

// jobListResponse is the GET /v1/jobs envelope.
type jobListResponse struct {
	Items []jobDTO `json:"items"`
	Total int      `json:"total"`
}

// handleJobList returns every retained job in submission order;
// ?status= narrows to one lifecycle state.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) error {
	want := r.URL.Query().Get("status")
	items := make([]jobDTO, 0)
	for _, snap := range s.jobs.List() {
		if want != "" && string(snap.Status) != want {
			continue
		}
		items = append(items, jobDocument(snap))
	}
	return writeJSON(w, r, http.StatusOK, jobListResponse{Items: items, Total: len(items)})
}

// handleJobGet serves one job's current document. Job IDs are node-local,
// so in cluster mode an unknown ID is resolved against the peers before
// answering 404 — a client may poll a different node than the one whose
// store holds the job.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) error {
	snap, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, job.ErrNotFound) && s.peerJobRelay(w, r) {
			return nil
		}
		return err
	}
	return writeJSON(w, r, http.StatusOK, jobDocument(snap))
}

// handleJobResult replays a completed job's materialized bytes — the
// exact bytes the synchronous endpoint would have written, with the cache
// outcome in the same header. A queued or running job answers 409; a
// failed job replays its stored error with the status the synchronous
// request would have received.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	ent, outcome, err := s.jobs.Result(id)
	if err != nil {
		if errors.Is(err, job.ErrNotFound) && s.peerJobRelay(w, r) {
			return nil
		}
		if errors.Is(err, job.ErrNotFinished) {
			if snap, gerr := s.jobs.Get(id); gerr == nil && snap.Status == job.StatusFailed {
				status := snap.ErrStatus
				if status == 0 {
					status = http.StatusInternalServerError
				}
				return writeJSON(w, r, status, errorBody{
					Error:     snap.ErrMsg,
					Code:      snap.ErrCode,
					RequestID: obs.RequestID(r.Context()),
				})
			}
		}
		return err
	}
	if outcome != "" {
		w.Header().Set(cacheHeader, outcome)
	}
	w.Header().Set("Content-Type", ent.ContentType)
	w.WriteHeader(http.StatusOK)
	_, err = w.Write(ent.Body)
	return err
}

// handleJobCancel requests cancellation and returns the post-request
// document: a queued job dies immediately, a running one aborts at its
// solver's next batch boundary, a terminal one is unchanged.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) error {
	snap, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, job.ErrNotFound) && s.peerJobRelay(w, r) {
			return nil
		}
		return err
	}
	return writeJSON(w, r, http.StatusOK, jobDocument(snap))
}

// lastEventSeq extracts the SSE resume position: the Last-Event-ID header
// a reconnecting EventSource sends, or the ?after= query for manual
// clients. Unparseable values restart from the beginning.
func lastEventSeq(r *http.Request) int {
	arg := r.Header.Get("Last-Event-ID")
	if v := r.URL.Query().Get("after"); v != "" {
		arg = v
	}
	if arg == "" {
		return 0
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// handleJobEvents streams one job's event log as Server-Sent Events:
// every past event immediately, then live events as they publish, comment
// heartbeats in between, ending with the terminal "done" event. Event IDs
// are the job's dense sequence numbers, so Last-Event-ID reconnection
// resumes without loss. A watcher owns the job it streams: client
// disconnect before the terminal event cancels the job, releasing its
// worker slot (pass ?detach=1 to watch without owning).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	next := lastEventSeq(r)
	// Fail as a regular JSON error before committing to the stream.
	if _, _, _, err := s.jobs.Events(id, next); err != nil {
		return err
	}
	detach := r.URL.Query().Get("detach") == "1"

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	heartbeat := time.NewTicker(s.cfg.jobHeartbeat())
	defer heartbeat.Stop()
	for {
		evs, terminal, changed, err := s.jobs.Events(id, next)
		if err != nil {
			// The job was evicted mid-stream; nothing more will publish.
			return nil
		}
		for _, ev := range evs {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data); err != nil {
				s.disconnectJob(id, detach)
				return nil
			}
			next = ev.Seq
		}
		if err := rc.Flush(); err != nil {
			s.disconnectJob(id, detach)
			return nil
		}
		if terminal {
			return nil
		}
		select {
		case <-changed:
		case <-heartbeat.C:
			// An SSE comment keeps intermediaries from idling the
			// connection out and lets the server notice dead clients.
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				s.disconnectJob(id, detach)
				return nil
			}
			if err := rc.Flush(); err != nil {
				s.disconnectJob(id, detach)
				return nil
			}
		case <-r.Context().Done():
			s.disconnectJob(id, detach)
			return nil
		}
	}
}

// disconnectJob handles a watcher going away mid-stream: unless the
// watcher detached, the job is canceled so an abandoned computation
// cannot hold a worker slot with nobody waiting for it.
func (s *Server) disconnectJob(id string, detach bool) {
	if detach {
		return
	}
	_, _ = s.jobs.Cancel(id)
}
