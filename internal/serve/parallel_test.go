package serve

import (
	"bytes"
	"net/http"
	"testing"
)

// TestPNRRouteWorkersInvisible pins the router's determinism contract at
// the service boundary: a server configured with speculative route
// workers answers byte-for-byte what a sequential server answers, and the
// two share cache keys (the knob takes no part in the address).
func TestPNRRouteWorkersInvisible(t *testing.T) {
	seqSrv := New(Config{Workers: 2, BaseSeed: BaseSeedDefault})
	parSrv := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, RouteWorkers: 4})
	const body = `{"bench":"aquaflex_3b"}`
	seq := do(t, seqSrv.Handler(), http.MethodPost, "/v1/pnr", body)
	par := do(t, parSrv.Handler(), http.MethodPost, "/v1/pnr", body)
	if seq.Code != http.StatusOK || par.Code != http.StatusOK {
		t.Fatalf("status = %d / %d", seq.Code, par.Code)
	}
	if !bytes.Equal(seq.Body.Bytes(), par.Body.Bytes()) {
		t.Error("route-workers changed response bytes")
	}
	req := &request{Bench: "aquaflex_3b"}
	if seqSrv.cacheKey(opPNR, req) != parSrv.cacheKey(opPNR, req) {
		t.Error("route-workers changed the cache key")
	}
}

// TestPNRReplicasSelectSearch pins the replica knob's semantics: the
// count is part of the request surface (different N, different search,
// different cache address; same N, byte-identical response), and
// single-replica keys match the pre-knob form exactly.
func TestPNRReplicasSelectSearch(t *testing.T) {
	srv := New(Config{Workers: 2, BaseSeed: BaseSeedDefault})
	h := srv.Handler()
	const plain = `{"bench":"aquaflex_3b"}`
	const rep = `{"bench":"aquaflex_3b","replicas":2}`
	base := do(t, h, http.MethodPost, "/v1/pnr", plain)
	first := do(t, h, http.MethodPost, "/v1/pnr", rep)
	again := do(t, h, http.MethodPost, "/v1/pnr", rep)
	if base.Code != http.StatusOK || first.Code != http.StatusOK || again.Code != http.StatusOK {
		t.Fatalf("status = %d / %d / %d", base.Code, first.Code, again.Code)
	}
	if !bytes.Equal(first.Body.Bytes(), again.Body.Bytes()) {
		t.Error("same replica count produced different responses")
	}

	// A server default of 1 (or 0) keeps the address servers used before
	// the knob existed; a multi-replica default moves pnr addresses.
	legacy := New(Config{Workers: 2, BaseSeed: BaseSeedDefault})
	single := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, Replicas: 1})
	multi := New(Config{Workers: 2, BaseSeed: BaseSeedDefault, Replicas: 4})
	req := &request{Bench: "aquaflex_3b"}
	if legacy.cacheKey(opPNR, req) != single.cacheKey(opPNR, req) {
		t.Error("Replicas=1 changed the single-replica cache key")
	}
	if legacy.cacheKey(opPNR, req) == multi.cacheKey(opPNR, req) {
		t.Error("Replicas=4 shares a cache key with the single-replica flow")
	}
	// Replicas never move addresses of operations they cannot reach.
	if legacy.cacheKey(opStats, req) != multi.cacheKey(opStats, req) {
		t.Error("replica default leaked into the stats cache key")
	}
}
